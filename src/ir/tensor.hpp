// Tensor descriptors for the tensor-dependency IR.
//
// Tensors carry global rank names ("m", "n", "k", ...) so the scheduler can
// reason about which ranks are shared between a producer and a consumer, and
// whether a consumer's dominant rank appears in the tensor at all (the
// "unshared dominance" test of Algorithm 2 in the paper).
#pragma once

#include <string>

#include "common/error.hpp"
#include "common/types.hpp"
#include "ir/arena.hpp"

namespace cello::ir {

using TensorId = i32;
inline constexpr TensorId kInvalidTensor = -1;

/// Storage format of a tensor operand.
enum class Storage {
  Dense,
  CompressedSparse,  ///< CSR/CSC; bytes derived from nnz (values + column ids + row pointers)
};

struct TensorDesc {
  TensorDesc() = default;
  /// Arena-bound node (TensorDag::new_tensor()): rank/dim payloads bump-
  /// allocate straight into the DAG's arena instead of the heap.
  explicit TensorDesc(Arena& arena) : ranks(&arena), dims(&arena) {}

  TensorId id = kInvalidTensor;
  std::string name;

  /// Rank names in layout-major order (outermost first), e.g. {"m", "n"}.
  ArenaVector<std::string> ranks;
  /// Extent of each rank, aligned with `ranks`.
  ArenaVector<i64> dims;

  Bytes word_bytes = 4;
  Storage storage = Storage::Dense;
  /// Number of stored non-zeros (CompressedSparse only).
  i64 nnz = 0;
  /// Final result the workload must drain to memory (e.g. the CG solution X).
  /// Dead non-result intermediates need never be written back by a scheduler
  /// that knows tensor liveness (SCORE does; op-by-op baselines do not).
  bool is_result = false;
  /// Append-only base annotation (KV-cache decode): instances of the base
  /// form a chain where each step's version extends — never rewrites — the
  /// previous one.  `append_prev` links to the preceding instance in the
  /// chain (kInvalidTensor for the chain head), so a buffer policy can price
  /// the step's write as `bytes() - prev.bytes()` instead of the full
  /// footprint.  Set via TensorDag::mark_append.
  bool append_only = false;
  TensorId append_prev = kInvalidTensor;

  i64 elements() const {
    if (storage == Storage::CompressedSparse) return nnz;
    i64 e = 1;
    for (i64 d : dims) e *= d;
    return e;
  }

  /// Footprint in bytes as moved over the memory system.  Compressed tensors
  /// account for values, coordinate metadata (4B per nnz) and row pointers.
  Bytes bytes() const {
    if (storage == Storage::CompressedSparse) {
      const Bytes values = static_cast<Bytes>(nnz) * word_bytes;
      const Bytes coords = static_cast<Bytes>(nnz) * 4;
      const Bytes rowptr = (dims.empty() ? 0 : static_cast<Bytes>(dims.front()) + 1) * 4;
      return values + coords + rowptr;
    }
    return static_cast<Bytes>(elements()) * word_bytes;
  }

  bool has_rank(const std::string& r) const {
    for (const auto& x : ranks)
      if (x == r) return true;
    return false;
  }

  i64 dim_of(const std::string& r) const {
    for (size_t i = 0; i < ranks.size(); ++i)
      if (ranks[i] == r) return dims[i];
    CELLO_CHECK_MSG(false, "tensor " << name << " has no rank " << r);
    return 0;
  }
};

}  // namespace cello::ir
