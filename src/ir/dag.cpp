#include "ir/dag.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"

namespace cello::ir {

TensorId TensorDag::add_tensor(TensorDesc t) {
  t.id = static_cast<TensorId>(tensors_.size());
  CELLO_CHECK_MSG(t.ranks.size() == t.dims.size(),
                  "tensor " << t.name << ": ranks/dims size mismatch");
  tensors_.push_back(std::move(t));
  return tensors_.back().id;
}

OpId TensorDag::add_op(EinsumOp op) {
  op.id = static_cast<OpId>(ops_.size());
  for (TensorId in : op.inputs) CELLO_CHECK(in >= 0 && in < static_cast<i32>(tensors_.size()));
  CELLO_CHECK(op.output >= 0 && op.output < static_cast<i32>(tensors_.size()));
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

EdgeId TensorDag::add_edge(OpId src, OpId dst, TensorId tensor) {
  CELLO_CHECK(src >= 0 && src < static_cast<i32>(ops_.size()));
  CELLO_CHECK(dst >= 0 && dst < static_cast<i32>(ops_.size()));
  CELLO_CHECK_MSG(ops_[src].output == tensor,
                  "edge tensor " << tensors_[tensor].name << " is not the output of "
                                 << ops_[src].name);
  Edge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.tensor = tensor;
  edges_.push_back(e);
  return e.id;
}

const TensorDesc& TensorDag::tensor(TensorId t) const {
  CELLO_CHECK(t >= 0 && t < static_cast<i32>(tensors_.size()));
  return tensors_[t];
}

const EinsumOp& TensorDag::op(OpId o) const {
  CELLO_CHECK(o >= 0 && o < static_cast<i32>(ops_.size()));
  return ops_[o];
}

const Edge& TensorDag::edge(EdgeId e) const {
  CELLO_CHECK(e >= 0 && e < static_cast<i32>(edges_.size()));
  return edges_[e];
}

std::vector<EdgeId> TensorDag::out_edges(OpId o) const {
  std::vector<EdgeId> out;
  for (const auto& e : edges_)
    if (e.src == o) out.push_back(e.id);
  return out;
}

std::vector<EdgeId> TensorDag::in_edges(OpId o) const {
  std::vector<EdgeId> in;
  for (const auto& e : edges_)
    if (e.dst == o) in.push_back(e.id);
  return in;
}

std::vector<OpId> TensorDag::consumers(TensorId t) const {
  std::vector<OpId> cs;
  for (const auto& o : ops_)
    if (std::find(o.inputs.begin(), o.inputs.end(), t) != o.inputs.end()) cs.push_back(o.id);
  return cs;
}

std::optional<OpId> TensorDag::producer(TensorId t) const {
  for (const auto& o : ops_)
    if (o.output == t) return o.id;
  return std::nullopt;
}

std::vector<OpId> TensorDag::topo_order() const {
  std::vector<i32> indeg(ops_.size(), 0);
  for (const auto& e : edges_) ++indeg[e.dst];
  // Min-id queue keeps the order stable and aligned with construction order
  // (which workload builders emit in program order).
  std::priority_queue<OpId, std::vector<OpId>, std::greater<>> ready;
  for (const auto& o : ops_)
    if (indeg[o.id] == 0) ready.push(o.id);
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const OpId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const auto& e : edges_)
      if (e.src == u && --indeg[e.dst] == 0) ready.push(e.dst);
  }
  CELLO_CHECK_MSG(order.size() == ops_.size(), "DAG has a cycle");
  return order;
}

i64 TensorDag::longest_path_len(OpId src, OpId dst) const {
  return static_cast<i64>(longest_path(src, dst).size()) - 1;
}

std::vector<OpId> TensorDag::longest_path(OpId src, OpId dst) const {
  const auto order = topo_order();
  std::vector<i64> dist(ops_.size(), -1);
  std::vector<OpId> pred(ops_.size(), kInvalidOp);
  dist[src] = 0;
  for (OpId u : order) {
    if (dist[u] < 0) continue;
    for (const auto& e : edges_) {
      if (e.src != u) continue;
      if (dist[u] + 1 > dist[e.dst]) {
        dist[e.dst] = dist[u] + 1;
        pred[e.dst] = u;
      }
    }
  }
  if (dist[dst] < 0) return {};
  std::vector<OpId> path;
  for (OpId v = dst; v != kInvalidOp; v = pred[v]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

i64 TensorDag::schedule_distance(const Edge& e, const std::vector<OpId>& order) const {
  std::vector<i64> pos(ops_.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<i64>(i);
  CELLO_CHECK(pos[e.src] >= 0 && pos[e.dst] >= 0);
  return pos[e.dst] - pos[e.src];
}

void TensorDag::validate() const {
  for (const auto& e : edges_) {
    const EinsumOp& s = op(e.src);
    const EinsumOp& d = op(e.dst);
    CELLO_CHECK_MSG(s.output == e.tensor, "edge tensor not produced by source op " << s.name);
    CELLO_CHECK_MSG(std::find(d.inputs.begin(), d.inputs.end(), e.tensor) != d.inputs.end(),
                    "edge tensor not consumed by destination op " << d.name);
  }
  (void)topo_order();  // throws on cycles
}

std::string TensorDag::to_dot() const {
  std::ostringstream os;
  os << "digraph cello {\n  rankdir=LR;\n";
  for (const auto& o : ops_)
    os << "  n" << o.id << " [label=\"" << o.name << "\\n" << to_string(o.dominance())
       << "\"];\n";
  for (const auto& e : edges_)
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"" << tensor(e.tensor).name
       << (is_transitive(e) ? " (T)" : "") << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace cello::ir
