#include "ir/dag.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"

namespace cello::ir {

TensorDag::TensorDag(const TensorDag& other)
    : arena_(std::make_unique<Arena>()),
      tensors_(other.tensors_),
      ops_(other.ops_),
      edges_(other.edges_),
      external_(other.external_),
      producer_of_(other.producer_of_) {
  // The member copies are self-owned (ArenaVector copies never alias the
  // source arena); re-intern them so the copy is arena-backed like any DAG.
  for (auto& t : tensors_) {
    t.ranks.intern(*arena_);
    t.dims.intern(*arena_);
  }
  for (auto& op : ops_) {
    op.ranks.intern(*arena_);
    op.inputs.intern(*arena_);
  }
  // Adjacency lists are rebuilt against the copy's own arena.
  consumers_of_ = other.consumers_of_;
  tensor_edges_ = other.tensor_edges_;
  out_edges_ = other.out_edges_;
  in_edges_ = other.in_edges_;
  for (auto& v : consumers_of_) v.intern(*arena_);
  for (auto& v : tensor_edges_) v.intern(*arena_);
  for (auto& v : out_edges_) v.intern(*arena_);
  for (auto& v : in_edges_) v.intern(*arena_);
}

TensorDag& TensorDag::operator=(TensorDag&& other) noexcept {
  if (this != &other) {
    // Arena-resident payloads must die before their arena: a defaulted
    // member-wise move assigns arena_ first, freeing the chunks this DAG's
    // nodes still point into.
    tensors_.clear();
    ops_.clear();
    edges_.clear();
    external_.clear();
    producer_of_.clear();
    consumers_of_.clear();
    tensor_edges_.clear();
    out_edges_.clear();
    in_edges_.clear();
    arena_ = std::move(other.arena_);
    tensors_ = std::move(other.tensors_);
    ops_ = std::move(other.ops_);
    edges_ = std::move(other.edges_);
    external_ = std::move(other.external_);
    producer_of_ = std::move(other.producer_of_);
    consumers_of_ = std::move(other.consumers_of_);
    tensor_edges_ = std::move(other.tensor_edges_);
    out_edges_ = std::move(other.out_edges_);
    in_edges_ = std::move(other.in_edges_);
  }
  return *this;
}

TensorDag& TensorDag::operator=(const TensorDag& other) {
  if (this != &other) {
    TensorDag copy(other);
    *this = std::move(copy);
  }
  return *this;
}

TensorId TensorDag::add_tensor(TensorDesc t) {
  t.id = static_cast<TensorId>(tensors_.size());
  CELLO_CHECK_MSG(t.ranks.size() == t.dims.size(),
                  "tensor " << t.name << ": ranks/dims size mismatch");
  t.ranks.intern(*arena_);
  t.dims.intern(*arena_);
  tensors_.push_back(std::move(t));
  producer_of_.push_back(kInvalidOp);
  consumers_of_.emplace_back(arena_.get());
  tensor_edges_.emplace_back(arena_.get());
  return tensors_.back().id;
}

OpId TensorDag::add_op(EinsumOp op) {
  op.id = static_cast<OpId>(ops_.size());
  for (TensorId in : op.inputs) CELLO_CHECK(in >= 0 && in < static_cast<i32>(tensors_.size()));
  CELLO_CHECK(op.output >= 0 && op.output < static_cast<i32>(tensors_.size()));
  // First producing op wins, matching the old first-match scan of ops().
  if (producer_of_[op.output] == kInvalidOp) producer_of_[op.output] = op.id;
  for (size_t i = 0; i < op.inputs.size(); ++i) {
    bool repeat = false;  // an op consuming a tensor twice (R^T R) lists once
    for (size_t j = 0; j < i; ++j) repeat = repeat || op.inputs[j] == op.inputs[i];
    if (!repeat) consumers_of_[op.inputs[i]].push_back(op.id);
  }
  op.ranks.intern(*arena_);
  op.inputs.intern(*arena_);
  ops_.push_back(std::move(op));
  out_edges_.emplace_back(arena_.get());
  in_edges_.emplace_back(arena_.get());
  return ops_.back().id;
}

EdgeId TensorDag::add_edge(OpId src, OpId dst, TensorId tensor) {
  CELLO_CHECK(src >= 0 && src < static_cast<i32>(ops_.size()));
  CELLO_CHECK(dst >= 0 && dst < static_cast<i32>(ops_.size()));
  CELLO_CHECK_MSG(ops_[src].output == tensor,
                  "edge tensor " << tensors_[tensor].name << " is not the output of "
                                 << ops_[src].name);
  Edge e;
  e.id = static_cast<EdgeId>(edges_.size());
  e.src = src;
  e.dst = dst;
  e.tensor = tensor;
  edges_.push_back(e);
  out_edges_[src].push_back(e.id);
  in_edges_[dst].push_back(e.id);
  tensor_edges_[tensor].push_back(e.id);
  return e.id;
}

void TensorDag::mark_append(TensorId prev, TensorId next) {
  CELLO_CHECK(prev >= 0 && prev < static_cast<i32>(tensors_.size()));
  CELLO_CHECK(next >= 0 && next < static_cast<i32>(tensors_.size()));
  CELLO_CHECK_MSG(prev != next, "append chain cannot self-link " << tensors_[next].name);
  CELLO_CHECK_MSG(tensors_[next].append_prev == kInvalidTensor,
                  "tensor " << tensors_[next].name << " already has an append predecessor");
  CELLO_CHECK_MSG(tensors_[next].bytes() >= tensors_[prev].bytes(),
                  "append-only base shrinks: " << tensors_[prev].name << " -> "
                                               << tensors_[next].name);
  tensors_[prev].append_only = true;
  tensors_[next].append_only = true;
  tensors_[next].append_prev = prev;
}

Bytes TensorDag::appended_bytes(TensorId t) const {
  const TensorDesc& desc = tensor(t);
  if (desc.append_prev == kInvalidTensor) return desc.bytes();
  return desc.bytes() - tensor(desc.append_prev).bytes();
}

const TensorDesc& TensorDag::tensor(TensorId t) const {
  CELLO_CHECK(t >= 0 && t < static_cast<i32>(tensors_.size()));
  return tensors_[t];
}

const EinsumOp& TensorDag::op(OpId o) const {
  CELLO_CHECK(o >= 0 && o < static_cast<i32>(ops_.size()));
  return ops_[o];
}

const Edge& TensorDag::edge(EdgeId e) const {
  CELLO_CHECK(e >= 0 && e < static_cast<i32>(edges_.size()));
  return edges_[e];
}

std::vector<OpId> TensorDag::topo_order() const {
  std::vector<i32> indeg(ops_.size(), 0);
  for (const auto& e : edges_) ++indeg[e.dst];
  // Min-id queue keeps the order stable and aligned with construction order
  // (which workload builders emit in program order).
  std::priority_queue<OpId, std::vector<OpId>, std::greater<>> ready;
  for (const auto& o : ops_)
    if (indeg[o.id] == 0) ready.push(o.id);
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!ready.empty()) {
    const OpId u = ready.top();
    ready.pop();
    order.push_back(u);
    for (const EdgeId eid : out_edges_[u])
      if (--indeg[edges_[eid].dst] == 0) ready.push(edges_[eid].dst);
  }
  CELLO_CHECK_MSG(order.size() == ops_.size(), "DAG has a cycle");
  return order;
}

i64 TensorDag::longest_path_len(OpId src, OpId dst) const {
  return static_cast<i64>(longest_path(src, dst).size()) - 1;
}

std::vector<OpId> TensorDag::longest_path(OpId src, OpId dst) const {
  const auto order = topo_order();
  std::vector<i64> dist(ops_.size(), -1);
  std::vector<OpId> pred(ops_.size(), kInvalidOp);
  dist[src] = 0;
  for (OpId u : order) {
    if (dist[u] < 0) continue;
    for (const EdgeId eid : out_edges_[u]) {
      const Edge& e = edges_[eid];
      if (dist[u] + 1 > dist[e.dst]) {
        dist[e.dst] = dist[u] + 1;
        pred[e.dst] = u;
      }
    }
  }
  if (dist[dst] < 0) return {};
  std::vector<OpId> path;
  for (OpId v = dst; v != kInvalidOp; v = pred[v]) {
    path.push_back(v);
    if (v == src) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

i64 TensorDag::schedule_distance(const Edge& e, const std::vector<OpId>& order) const {
  std::vector<i64> pos(ops_.size(), -1);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<i64>(i);
  CELLO_CHECK(pos[e.src] >= 0 && pos[e.dst] >= 0);
  return pos[e.dst] - pos[e.src];
}

void TensorDag::validate() const {
  for (const auto& e : edges_) {
    const EinsumOp& s = op(e.src);
    const EinsumOp& d = op(e.dst);
    CELLO_CHECK_MSG(s.output == e.tensor, "edge tensor not produced by source op " << s.name);
    CELLO_CHECK_MSG(std::find(d.inputs.begin(), d.inputs.end(), e.tensor) != d.inputs.end(),
                    "edge tensor not consumed by destination op " << d.name);
  }
  for (const auto& t : tensors_) {
    if (t.append_prev == kInvalidTensor) continue;
    const TensorDesc& prev = tensor(t.append_prev);
    CELLO_CHECK_MSG(t.append_only && prev.append_only,
                    "append chain " << prev.name << " -> " << t.name
                                    << " lost its append_only flag");
    CELLO_CHECK_MSG(t.bytes() >= prev.bytes(),
                    "append-only base shrinks: " << prev.name << " -> " << t.name);
  }
  (void)topo_order();  // throws on cycles
}

std::string TensorDag::to_dot() const {
  std::ostringstream os;
  os << "digraph cello {\n  rankdir=LR;\n";
  for (const auto& o : ops_)
    os << "  n" << o.id << " [label=\"" << o.name << "\\n" << to_string(o.dominance())
       << "\"];\n";
  for (const auto& e : edges_)
    os << "  n" << e.src << " -> n" << e.dst << " [label=\"" << tensor(e.tensor).name
       << (is_transitive(e) ? " (T)" : "") << "\"];\n";
  os << "}\n";
  return os.str();
}

}  // namespace cello::ir
