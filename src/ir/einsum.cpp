#include "ir/einsum.hpp"

#include "common/error.hpp"

namespace cello::ir {

const char* to_string(OpKind k) {
  switch (k) {
    case OpKind::TensorMac: return "tensor_mac";
    case OpKind::Elementwise: return "elementwise";
    case OpKind::Inverse: return "inverse";
  }
  return "?";
}

const char* to_string(Dominance d) {
  switch (d) {
    case Dominance::Uncontracted: return "U";
    case Dominance::Contracted: return "C";
    case Dominance::Balanced: return "bal";
  }
  return "?";
}

i64 EinsumOp::macs() const {
  if (macs_override >= 0) return macs_override;
  i64 m = 1;
  for (const auto& r : ranks) m *= r.effective();
  return m;
}

const OpRank& EinsumOp::dominant_rank() const {
  CELLO_CHECK_MSG(!ranks.empty(), "op " << name << " has no ranks");
  const OpRank* best = &ranks.front();
  for (const auto& r : ranks)
    if (r.effective() > best->effective()) best = &r;
  return *best;
}

Dominance EinsumOp::dominance() const {
  const OpRank& dom = dominant_rank();
  // Balanced when no rank exceeds the others by more than kDominanceRatio —
  // e.g. the conv GEMMs of a ResNet block (784/512/128) are 'bal' while the
  // skewed CG GEMMs (1e6 vs 16) are not.
  i64 min_eff = dom.effective();
  for (const auto& r : ranks) min_eff = std::min(min_eff, r.effective());
  if (static_cast<double>(dom.effective()) <
      kDominanceRatio * static_cast<double>(std::max<i64>(min_eff, 1)))
    return Dominance::Balanced;
  return dom.contracted ? Dominance::Contracted : Dominance::Uncontracted;
}

}  // namespace cello::ir
