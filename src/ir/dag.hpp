// Tensor-dependency DAG: einsum operators connected by edges that each carry
// the tensor flowing from producer to consumer (Fig. 1 of the paper).
//
// The DAG provides the structural analyses SCORE needs:
//  * topological order (the execution order of a temporally scheduled DAG),
//  * longest paths between node pairs,
//  * the transitive-edge test of Algorithm 2 (footnote 5: "a transitive edge
//    is the edge not on the longest path between the source and the
//    destination"),
//  * schedule distance (number of scheduled steps an edge spans), which
//    generalizes transitivity to cross-iteration back-to-self dependencies
//    such as X(line 3, iter i) -> X(line 3, iter i+1) in CG.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ir/arena.hpp"
#include "ir/einsum.hpp"
#include "ir/tensor.hpp"

namespace cello::ir {

using EdgeId = i32;

struct Edge {
  EdgeId id = -1;
  OpId src = kInvalidOp;
  OpId dst = kInvalidOp;
  TensorId tensor = kInvalidTensor;
};

class TensorDag {
 public:
  // ---- construction -------------------------------------------------------
  // Every node's variable-length payload (rank names, dims, operand lists)
  // ends up in one bump arena owned by the DAG: new_tensor()/new_op() hand
  // out nodes whose payloads allocate there directly (the zero-heap-churn
  // builder path), while free-standing TensorDesc/EinsumOp values are
  // interned — copied into the arena — by add_tensor()/add_op().  Either way
  // the stored nodes are arena-backed, so traversal is cache-friendly and
  // destruction frees a handful of chunks instead of one block per node.
  TensorDag() : arena_(std::make_unique<Arena>()) {}
  TensorDag(TensorDag&&) noexcept = default;
  /// Member-wise move would replace the arena before the old node vectors
  /// (whose payloads live in it) are destroyed — drop them first.
  TensorDag& operator=(TensorDag&& other) noexcept;
  /// Deep copy: nodes are re-interned into the copy's own arena, so copies
  /// never alias the source DAG's storage.
  TensorDag(const TensorDag& other);
  TensorDag& operator=(const TensorDag& other);

  /// A node pre-bound to this DAG's arena (fill fields, then add_tensor).
  TensorDesc new_tensor() { return TensorDesc(*arena_); }
  /// A node pre-bound to this DAG's arena (fill fields, then add_op).
  EinsumOp new_op() { return EinsumOp(*arena_); }

  TensorId add_tensor(TensorDesc t);
  OpId add_op(EinsumOp op);
  /// Connect producer `src` to consumer `dst` through `tensor`.
  EdgeId add_edge(OpId src, OpId dst, TensorId tensor);

  /// Mark a tensor as an external input (produced before the DAG starts;
  /// consumers read it without a producing node), e.g. the sparse matrix A.
  void mark_external(TensorId t) { external_.push_back(t); }

  /// Mark a tensor as a final result that must be drained to memory.
  void mark_result(TensorId t) { tensors_[t].is_result = true; }

  /// Declare `next` the append-only successor of `prev`: both instances of
  /// the same growing base (KV cache), with `next` extending `prev` by
  /// `appended_bytes(next)`.  Extents must be non-shrinking.
  void mark_append(TensorId prev, TensorId next);

  /// Bytes `t` adds over its append-predecessor: the whole footprint for a
  /// chain head (or a non-append tensor), the extent delta otherwise.
  Bytes appended_bytes(TensorId t) const;

  // ---- accessors ----------------------------------------------------------
  const std::vector<TensorDesc>& tensors() const { return tensors_; }
  const std::vector<EinsumOp>& ops() const { return ops_; }
  const std::vector<Edge>& edges() const { return edges_; }
  const std::vector<TensorId>& external_tensors() const { return external_; }

  const TensorDesc& tensor(TensorId t) const;
  const EinsumOp& op(OpId o) const;
  const Edge& edge(EdgeId e) const;

  // Adjacency queries are O(1) lookups into incrementally-maintained,
  // arena-backed index lists (ascending-id order, matching what a full scan
  // of edges()/ops() used to produce) — schedule construction and per-run
  // routing consult them on their hot paths.
  const ArenaVector<EdgeId>& out_edges(OpId o) const { return out_edges_[o]; }
  const ArenaVector<EdgeId>& in_edges(OpId o) const { return in_edges_[o]; }
  /// Consumers of tensor `t` (ops that list it as input; each op once).
  const ArenaVector<OpId>& consumers(TensorId t) const { return consumers_of_[t]; }
  /// Edges carrying tensor `t`.
  const ArenaVector<EdgeId>& tensor_edges(TensorId t) const { return tensor_edges_[t]; }
  /// Producer of tensor `t` within the DAG, or nullopt for external inputs.
  std::optional<OpId> producer(TensorId t) const {
    return producer_of_[t] == kInvalidOp ? std::nullopt : std::optional<OpId>(producer_of_[t]);
  }

  // ---- structural analyses ------------------------------------------------
  /// Kahn topological order; throws cello::Error on cycles.
  std::vector<OpId> topo_order() const;

  /// Length (in edges) of the longest src->dst path, or -1 if unreachable.
  i64 longest_path_len(OpId src, OpId dst) const;
  /// Node sequence (inclusive of endpoints) of one longest src->dst path.
  std::vector<OpId> longest_path(OpId src, OpId dst) const;

  /// True iff a longer path than the direct edge exists (footnote 5).
  bool is_transitive(const Edge& e) const { return longest_path_len(e.src, e.dst) > 1; }

  /// Number of scheduled steps between the edge's endpoints under `order`
  /// (positions are indices into `order`).  An edge spanning more than one
  /// step cannot be serviced by simple producer/consumer pipelining.
  i64 schedule_distance(const Edge& e, const std::vector<OpId>& order) const;

  /// Sanity checks: edges reference valid nodes/tensors, edge tensors match
  /// producer outputs and consumer inputs, graph is acyclic.
  void validate() const;

  /// Graphviz DOT with nodes annotated by dominance (Fig. 7 style).
  std::string to_dot() const;

  /// The backing store for node payloads; alive exactly as long as the DAG.
  const Arena& arena() const { return *arena_; }

 private:
  // Declared first so node payloads (which live in arena chunks) are
  // destroyed before the arena itself releases the memory.
  std::unique_ptr<Arena> arena_;  ///< unique_ptr: stable address across moves
  std::vector<TensorDesc> tensors_;
  std::vector<EinsumOp> ops_;
  std::vector<Edge> edges_;
  std::vector<TensorId> external_;

  // Incremental adjacency (see the accessor block above).
  std::vector<OpId> producer_of_;                ///< per tensor; kInvalidOp = external
  std::vector<ArenaVector<OpId>> consumers_of_;  ///< per tensor
  std::vector<ArenaVector<EdgeId>> tensor_edges_;  ///< per tensor
  std::vector<ArenaVector<EdgeId>> out_edges_;   ///< per op
  std::vector<ArenaVector<EdgeId>> in_edges_;    ///< per op
};

}  // namespace cello::ir
