// Einsum operator nodes of the tensor-dependency DAG.
//
// Each operator lists its ranks (with extents and contraction roles) and the
// tensors it reads/writes.  Dominance — which rank class the operator's
// largest rank belongs to — drives the dependency classification of SCORE
// (Algorithm 2): 'U' uncontracted-dominant, 'C' contracted-dominant, 'bal'
// when all ranks are of comparable magnitude (Fig. 7 in the paper).
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "ir/tensor.hpp"

namespace cello::ir {

using OpId = i32;
inline constexpr OpId kInvalidOp = -1;

enum class OpKind {
  TensorMac,    ///< dense or sparse multiply-accumulate einsum
  Elementwise,  ///< add/sub/scale, no contraction
  Inverse,      ///< small-matrix inversion (lines 2b and 6 of CG)
};

enum class Dominance { Uncontracted, Contracted, Balanced };

const char* to_string(OpKind k);
const char* to_string(Dominance d);

/// One rank of an einsum operator.
struct OpRank {
  std::string name;
  i64 size = 1;
  bool contracted = false;
  /// Effective traversal extent when the rank is stored compressed (e.g. the
  /// contracted rank of an SpMM walks nnz-per-row elements, not the full
  /// dimension).  Defaults to `size`.
  i64 effective_size = -1;

  i64 effective() const { return effective_size >= 0 ? effective_size : size; }
};

struct EinsumOp {
  EinsumOp() = default;
  /// Arena-bound node (TensorDag::new_op()): rank/operand payloads bump-
  /// allocate straight into the DAG's arena instead of the heap.
  explicit EinsumOp(Arena& arena) : ranks(&arena), inputs(&arena) {}

  OpId id = kInvalidOp;
  std::string name;
  OpKind kind = OpKind::TensorMac;

  ArenaVector<OpRank> ranks;
  ArenaVector<TensorId> inputs;
  TensorId output = kInvalidTensor;

  /// Multiply-accumulate count; derived from rank extents unless overridden
  /// (sparse operators set this to nnz * uncontracted extents).
  i64 macs_override = -1;

  /// Ratio above which the largest rank is considered to dominate the others.
  static constexpr double kDominanceRatio = 16.0;

  i64 macs() const;
  /// Name of the rank with the largest effective extent.
  const OpRank& dominant_rank() const;
  Dominance dominance() const;
};

}  // namespace cello::ir
