// Bump arena backing store for the tensor-dependency IR.
//
// A TensorDag owns one Arena; every node's variable-length payload (rank
// names, dims, operand lists) lands in it contiguously, in construction
// order.  Builds touch one warm region instead of scattering dozens of small
// heap blocks, and tearing a DAG down frees a handful of chunks instead of
// one allocation per node — which is what makes WorkloadRegistry::resolve()
// and sweep/test DAG churn cheap (see ROADMAP "Arena allocation").
//
// ArenaVector<T> is the payload container.  It has two modes:
//  * heap (default-constructed): owns a malloc'd block, full value semantics —
//    this is what builder code that constructs a free-standing TensorDesc /
//    EinsumOp gets, so existing call sites keep working unchanged;
//  * arena (bound via TensorDag::new_tensor()/new_op(), or interned by
//    add_tensor()/add_op()): elements live in the DAG's arena and the vector
//    never frees — destruction only runs element destructors (a no-op for
//    trivial payloads and SSO strings).
// Growth in arena mode re-bumps and abandons the old block; IR payloads are
// assign-once, so waste is negligible.  Arena-mode vectors are frozen by the
// DAG after add — treat spans obtained from a DAG as valid exactly as long as
// the DAG (or a copy chain's owning DAG) is alive.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace cello::ir {

class Arena {
 public:
  Arena() = default;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Bump-allocate `bytes` with `align` (<= alignof(max_align_t)).
  void* allocate(size_t bytes, size_t align) {
    std::byte* p = align_up(cur_, align);
    // Signed headroom: alignment may push p past end_ (or both are null
    // before the first chunk), so never form p + bytes until it fits.
    if (p == nullptr || end_ - p < static_cast<std::ptrdiff_t>(bytes)) {
      grow(bytes + align);
      p = align_up(cur_, align);
    }
    cur_ = p + bytes;
    used_ += bytes;
    return p;
  }

  template <typename T>
  T* allocate_array(size_t n) {
    static_assert(alignof(T) <= alignof(std::max_align_t));
    return n == 0 ? nullptr : static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Payload bytes handed out (excludes alignment pad and chunk slack).
  size_t bytes_used() const { return used_; }
  /// Total chunk bytes reserved from the heap.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const auto& c : chunks_) total += c.size;
    return total;
  }

 private:
  static std::byte* align_up(std::byte* p, size_t align) {
    const auto a = static_cast<uintptr_t>(align);
    return reinterpret_cast<std::byte*>((reinterpret_cast<uintptr_t>(p) + (a - 1)) & ~(a - 1));
  }

  void grow(size_t min_bytes) {
    size_t want = chunks_.empty() ? kFirstChunkBytes : chunks_.back().size * 2;
    if (want > kMaxChunkBytes) want = kMaxChunkBytes;
    if (want < min_bytes) want = min_bytes;
    chunks_.push_back({std::make_unique<std::byte[]>(want), want});
    cur_ = chunks_.back().data.get();
    end_ = cur_ + want;
  }

  static constexpr size_t kFirstChunkBytes = 4 * 1024;
  static constexpr size_t kMaxChunkBytes = 256 * 1024;

  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    size_t size = 0;
  };
  std::vector<Chunk> chunks_;
  std::byte* cur_ = nullptr;
  std::byte* end_ = nullptr;
  size_t used_ = 0;
};

template <typename T>
class ArenaVector {
 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  ArenaVector() = default;
  /// Arena-bound and empty: subsequent assigns/push_backs bump-allocate.
  explicit ArenaVector(Arena* arena) : arena_(arena) {}
  ArenaVector(std::initializer_list<T> init) { assign(init.begin(), init.end()); }
  /// Copies are always self-owned (heap mode) — a copy never aliases or
  /// outlives another DAG's arena.
  ArenaVector(const ArenaVector& other) { assign(other.begin(), other.end()); }
  ArenaVector(ArenaVector&& other) noexcept
      : data_(other.data_),
        size_(other.size_),
        cap_(other.cap_),
        arena_(other.arena_),
        owns_(other.owns_) {
    other.release();
  }
  ~ArenaVector() { destroy(); }

  ArenaVector& operator=(const ArenaVector& other) {
    if (this != &other) assign(other.begin(), other.end());
    return *this;
  }
  ArenaVector& operator=(ArenaVector&& other) noexcept {
    if (this != &other) {
      destroy();
      data_ = other.data_;
      size_ = other.size_;
      cap_ = other.cap_;
      arena_ = other.arena_;
      owns_ = other.owns_;
      other.release();
    }
    return *this;
  }
  ArenaVector& operator=(std::initializer_list<T> init) {
    assign(init.begin(), init.end());
    return *this;
  }
  /// Interop with std::vector-built payloads (e.g. an operand list assembled
  /// in a loop before being handed to an op).
  ArenaVector& operator=(const std::vector<T>& v) {
    assign(v.begin(), v.end());
    return *this;
  }
  ArenaVector& operator=(std::vector<T>&& v) {
    assign(std::make_move_iterator(v.begin()), std::make_move_iterator(v.end()));
    return *this;
  }

  void reserve(size_t n) { ensure_capacity(n); }
  void clear() {
    destroy_elements();
    size_ = 0;
  }
  void push_back(const T& v) {
    if (size_ == cap_) {
      // The argument may alias an element about to be relocated (std::vector
      // guarantees this works) — secure the value before growing.
      T copy(v);
      ensure_capacity(size_ + 1);
      new (data_ + size_) T(std::move(copy));
    } else {
      new (data_ + size_) T(v);
    }
    ++size_;
  }
  void push_back(T&& v) {
    if (size_ == cap_) {
      T moved(std::move(v));
      ensure_capacity(size_ + 1);
      new (data_ + size_) T(std::move(moved));
    } else {
      new (data_ + size_) T(std::move(v));
    }
    ++size_;
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const T* data() const { return data_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }
  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T& operator[](size_t i) const { return data_[i]; }
  T& operator[](size_t i) { return data_[i]; }
  const T& front() const { return data_[0]; }
  const T& back() const { return data_[size_ - 1]; }

  /// True when the payload lives in `arena` (and will die with it).
  bool interned_in(const Arena& arena) const {
    return !owns_ && (data_ == nullptr || arena_ == &arena);
  }

  /// Move the payload into `arena` and freeze there: element storage becomes
  /// arena memory, any owned heap block is released.  No-op when already
  /// interned in this arena.  TensorDag calls this on every added node, so
  /// stored nodes never own heap payloads regardless of how they were built.
  void intern(Arena& arena) {
    if (interned_in(arena)) {
      arena_ = &arena;
      return;
    }
    T* moved = arena.allocate_array<T>(size_);
    for (size_t i = 0; i < size_; ++i) new (moved + i) T(std::move(data_[i]));
    const size_t n = size_;
    destroy();
    data_ = moved;
    size_ = static_cast<u32>(n);
    cap_ = static_cast<u32>(n);
    arena_ = &arena;
    owns_ = false;
  }

 private:
  template <typename It>
  void assign(It first, It last) {
    destroy_elements();
    size_ = 0;
    const size_t n = static_cast<size_t>(std::distance(first, last));
    ensure_capacity(n);
    for (T* out = data_; first != last; ++first, ++out) new (out) T(*first);
    size_ = static_cast<u32>(n);
  }

  void ensure_capacity(size_t n) {
    if (n <= cap_) return;
    size_t want = cap_ == 0 ? n : cap_ * 2;
    if (want < n) want = n;
    T* fresh = arena_ != nullptr
                   ? arena_->allocate_array<T>(want)
                   : static_cast<T*>(::operator new(want * sizeof(T), std::align_val_t(alignof(T))));
    for (size_t i = 0; i < size_; ++i) {
      new (fresh + i) T(std::move(data_[i]));
      data_[i].~T();
    }
    if (owns_) free_block();
    data_ = fresh;
    cap_ = static_cast<u32>(want);
    owns_ = arena_ == nullptr;
  }

  void destroy_elements() {
    if constexpr (!std::is_trivially_destructible_v<T>) {
      for (size_t i = 0; i < size_; ++i) data_[i].~T();
    }
  }
  void free_block() {
    ::operator delete(static_cast<void*>(data_), std::align_val_t(alignof(T)));
  }
  void destroy() {
    destroy_elements();
    if (owns_ && data_ != nullptr) free_block();
  }
  /// Forget the payload (after a move-out); keeps the arena binding so a
  /// moved-from builder node can be refilled.
  void release() {
    data_ = nullptr;
    size_ = 0;
    cap_ = 0;
    owns_ = false;
  }

  T* data_ = nullptr;
  u32 size_ = 0;
  u32 cap_ = 0;
  Arena* arena_ = nullptr;  ///< allocation source; null = heap mode
  bool owns_ = false;       ///< data_ is a heap block this vector must free
};

}  // namespace cello::ir
