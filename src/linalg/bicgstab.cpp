#include "linalg/bicgstab.hpp"

#include <cmath>

namespace cello::linalg {
namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace

BiCgStabResult bicgstab(const sparse::CsrMatrix& a, std::span<const double> b,
                        const BiCgStabOptions& opts) {
  const i64 n = a.rows();
  CELLO_CHECK(a.cols() == n && static_cast<i64>(b.size()) == n);

  BiCgStabResult res;
  res.x.assign(static_cast<size_t>(n), 0.0);

  std::vector<double> r(b.begin(), b.end());  // r0 = b - A*0
  std::vector<double> r_hat = r;              // shadow residual
  std::vector<double> p(static_cast<size_t>(n), 0.0), v(static_cast<size_t>(n), 0.0);
  std::vector<double> s(static_cast<size_t>(n)), t(static_cast<size_t>(n));

  double rho_prev = 1.0, alpha = 1.0, omega = 1.0;
  const double bnorm = std::max(norm2(b), 1e-300);

  for (i64 it = 0; it < opts.max_iterations; ++it) {
    const double rho = dot(r_hat, r);
    CELLO_CHECK_MSG(std::abs(rho) > 1e-300, "BiCGStab breakdown (rho = 0)");
    const double beta = (rho / rho_prev) * (alpha / omega);
    for (i64 i = 0; i < n; ++i) p[i] = r[i] + beta * (p[i] - omega * v[i]);

    a.spmv(p, v);
    alpha = rho / dot(r_hat, v);
    for (i64 i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    if (norm2(s) / bnorm < opts.tolerance && !opts.fixed_iterations) {
      for (i64 i = 0; i < n; ++i) res.x[i] += alpha * p[i];
      res.residual_history.push_back(norm2(s));
      res.iterations = it + 1;
      res.converged = true;
      return res;
    }

    a.spmv(s, t);
    const double tt = dot(t, t);
    omega = tt > 0 ? dot(t, s) / tt : 0.0;
    for (i64 i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i] + omega * s[i];
      r[i] = s[i] - omega * t[i];
    }
    res.residual_history.push_back(norm2(r));
    res.iterations = it + 1;
    if (norm2(r) / bnorm < opts.tolerance) {
      res.converged = true;
      if (!opts.fixed_iterations) return res;
    }
    rho_prev = rho;
  }
  return res;
}

}  // namespace cello::linalg
