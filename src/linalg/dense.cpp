#include "linalg/dense.hpp"

#include <cmath>

namespace cello::linalg {

double DenseMatrix::frobenius_norm() const {
  double s = 0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double DenseMatrix::max_col_norm() const {
  double best = 0;
  for (i64 c = 0; c < cols_; ++c) {
    double s = 0;
    for (i64 r = 0; r < rows_; ++r) s += (*this)(r, c) * (*this)(r, c);
    best = std::max(best, std::sqrt(s));
  }
  return best;
}

void gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c, bool transpose_a,
          bool transpose_b, double alpha, bool accumulate) {
  const i64 m = transpose_a ? a.cols() : a.rows();
  const i64 k = transpose_a ? a.rows() : a.cols();
  const i64 kb = transpose_b ? b.cols() : b.rows();
  const i64 n = transpose_b ? b.rows() : b.cols();
  CELLO_CHECK_MSG(k == kb, "gemm contraction mismatch: " << k << " vs " << kb);
  CELLO_CHECK(c.rows() == m && c.cols() == n);

  auto at = [&](i64 i, i64 j) { return transpose_a ? a(j, i) : a(i, j); };
  auto bt = [&](i64 i, i64 j) { return transpose_b ? b(j, i) : b(i, j); };

  for (i64 i = 0; i < m; ++i) {
    for (i64 j = 0; j < n; ++j) {
      double acc = accumulate ? c(i, j) : 0.0;
      for (i64 p = 0; p < k; ++p) acc += alpha * at(i, p) * bt(p, j);
      c(i, j) = acc;
    }
  }
}

void add_product(const DenseMatrix& a, const DenseMatrix& b, const DenseMatrix& s,
                 DenseMatrix& c, double sign) {
  CELLO_CHECK(a.rows() == b.rows() && b.cols() == s.rows() && a.cols() == s.cols());
  CELLO_CHECK(c.rows() == a.rows() && c.cols() == a.cols());
  // c may alias a or b (e.g. "P = R + P*Phi" writes into P): stage each output
  // row so reads of the current row complete before it is overwritten.
  std::vector<double> tmp(static_cast<size_t>(a.cols()));
  for (i64 i = 0; i < a.rows(); ++i) {
    for (i64 j = 0; j < a.cols(); ++j) {
      double acc = a(i, j);
      for (i64 p = 0; p < b.cols(); ++p) acc += sign * b(i, p) * s(p, j);
      tmp[static_cast<size_t>(j)] = acc;
    }
    auto out = c.row(i);
    for (i64 j = 0; j < a.cols(); ++j) out[j] = tmp[static_cast<size_t>(j)];
  }
}

DenseMatrix inverse(const DenseMatrix& m) {
  CELLO_CHECK_MSG(m.rows() == m.cols(), "inverse requires a square matrix");
  const i64 n = m.rows();
  DenseMatrix a = m;
  DenseMatrix inv(n, n);
  for (i64 i = 0; i < n; ++i) inv(i, i) = 1.0;

  for (i64 col = 0; col < n; ++col) {
    i64 pivot = col;
    for (i64 r = col + 1; r < n; ++r)
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    CELLO_CHECK_MSG(std::abs(a(pivot, col)) > 1e-300, "singular matrix in inverse()");
    if (pivot != col) {
      for (i64 c = 0; c < n; ++c) {
        std::swap(a(pivot, c), a(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = a(col, col);
    for (i64 c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (i64 r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (i64 c = 0; c < n; ++c) {
        a(r, c) -= f * a(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  CELLO_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  double best = 0;
  for (i64 r = 0; r < a.rows(); ++r)
    for (i64 c = 0; c < a.cols(); ++c) best = std::max(best, std::abs(a(r, c) - b(r, c)));
  return best;
}

}  // namespace cello::linalg
