// Block Conjugate Gradient exactly as Algorithm 1 of the paper: N right-hand
// sides advanced simultaneously, with the Greek-letter N×N tensors (Delta,
// Lambda, Gamma, Phi) computed via small inverses.
//
// The solver doubles as the *functional* reference for the workload DAG: an
// optional OpTraceHook receives one callback per significant tensor operation
// (lines 1..7), letting tests verify the scheduler's DAG matches what the
// numerical algorithm actually executes.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cello::linalg {

struct CgOptions {
  i64 max_iterations = 100;
  double tolerance = 1e-8;
  /// Stop after exactly max_iterations even if converged (the paper's traffic
  /// experiments run a fixed 10 iterations).
  bool fixed_iterations = false;
};

struct CgResult {
  DenseMatrix x;
  i64 iterations = 0;
  bool converged = false;
  /// max over columns of ||r_j||_2, one entry per iteration.
  std::vector<double> residual_history;
};

/// Called once per executed tensor operation with the Algorithm 1 line label
/// ("1", "2a", "2b", ... "7") and the output tensor name.
using OpTraceHook = std::function<void(const std::string& line, const std::string& output)>;

/// Solve A * X = B for N right-hand sides with block CG (Algorithm 1).
CgResult block_cg(const sparse::CsrMatrix& a, const DenseMatrix& b, const CgOptions& opts = {},
                  const OpTraceHook& hook = nullptr);

}  // namespace cello::linalg
