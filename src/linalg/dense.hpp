// Row-major dense matrices and the small kernels the CG/BiCGStab substrate
// needs: GEMM (with optional transposes), AXPY-style updates, and a small
// Gauss–Jordan inverse for the Greek-letter N×N tensors of Algorithm 1.
#pragma once

#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cello::linalg {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(i64 rows, i64 cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(static_cast<size_t>(rows * cols), fill) {}

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }

  double& operator()(i64 r, i64 c) { return data_[static_cast<size_t>(r * cols_ + c)]; }
  double operator()(i64 r, i64 c) const { return data_[static_cast<size_t>(r * cols_ + c)]; }

  std::span<double> row(i64 r) { return {data_.data() + r * cols_, static_cast<size_t>(cols_)}; }
  std::span<const double> row(i64 r) const {
    return {data_.data() + r * cols_, static_cast<size_t>(cols_)};
  }
  std::span<double> data() { return data_; }
  std::span<const double> data() const { return data_; }

  double frobenius_norm() const;
  /// max_j sqrt(sum_i m(i,j)^2): per-column 2-norm maximum (residual check).
  double max_col_norm() const;

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<double> data_;
};

/// C (+)= alpha * op(A) * op(B).  transpose_a/b transpose the logical operand.
void gemm(const DenseMatrix& a, const DenseMatrix& b, DenseMatrix& c, bool transpose_a = false,
          bool transpose_b = false, double alpha = 1.0, bool accumulate = false);

/// C = A + B * S (the "P = R + P*Phi" / "X = X + P*Lambda" update shape).
void add_product(const DenseMatrix& a, const DenseMatrix& b, const DenseMatrix& s,
                 DenseMatrix& c, double sign = 1.0);

/// In-place Gauss–Jordan inverse with partial pivoting; throws on singular.
DenseMatrix inverse(const DenseMatrix& m);

/// Max |a-b| over all entries.
double max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

}  // namespace cello::linalg
