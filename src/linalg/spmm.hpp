// Sparse (CSR) × dense kernels — the line-1 SpMM of CG and the A·X of GCN.
#pragma once

#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cello::linalg {

/// C = A * B where A is M×K CSR and B is K×N dense.
void spmm(const sparse::CsrMatrix& a, const DenseMatrix& b, DenseMatrix& c);

/// MAC count of an SpMM (nnz times the dense width) — the simulator's
/// compute-cost input for sparse operators.
i64 spmm_macs(const sparse::CsrMatrix& a, i64 dense_cols);

}  // namespace cello::linalg
