#include "linalg/block_cg.hpp"

#include "linalg/spmm.hpp"

namespace cello::linalg {

CgResult block_cg(const sparse::CsrMatrix& a, const DenseMatrix& b, const CgOptions& opts,
                  const OpTraceHook& hook) {
  const i64 m = a.rows();
  const i64 n = b.cols();
  CELLO_CHECK(a.cols() == m && b.rows() == m);

  auto trace = [&](const char* line, const char* out) {
    if (hook) hook(line, out);
  };

  CgResult res;
  res.x = DenseMatrix(m, n);  // X0 = 0

  // R = B - A*X = B (X0 = 0); Gamma = R^T R; P = R.
  DenseMatrix r = b;
  DenseMatrix gamma(n, n);
  gemm(r, r, gamma, /*transpose_a=*/true);
  DenseMatrix p = r;

  DenseMatrix s(m, n), delta(n, n), lambda(n, n), phi(n, n), gamma_next(n, n);

  for (i64 it = 0; it < opts.max_iterations; ++it) {
    // Line 1: S = A * P (SpMM).
    spmm(a, p, s);
    trace("1", "S");

    // Line 2a: Delta = P^T * S;  2b: Lambda = Delta^{-1} * Gamma.
    gemm(p, s, delta, /*transpose_a=*/true);
    trace("2a", "Delta");
    DenseMatrix delta_inv = inverse(delta);
    gemm(delta_inv, gamma, lambda);
    trace("2b", "Lambda");

    // Line 3: X = X + P * Lambda.
    add_product(res.x, p, lambda, res.x, +1.0);
    trace("3", "X");

    // Line 4: R = R - S * Lambda.
    add_product(r, s, lambda, r, -1.0);
    trace("4", "R");

    // Line 5: Gamma' = R^T * R.
    gemm(r, r, gamma_next, /*transpose_a=*/true);
    trace("5", "Gamma");

    res.residual_history.push_back(r.max_col_norm());
    ++res.iterations;

    bool all_converged = true;
    for (i64 j = 0; j < n; ++j)
      if (gamma_next(j, j) > opts.tolerance * opts.tolerance) all_converged = false;
    if (all_converged && !opts.fixed_iterations) {
      res.converged = true;
      return res;
    }

    // Line 6: Phi = Gamma_prev^{-1} * Gamma'.
    DenseMatrix gamma_inv = inverse(gamma);
    gemm(gamma_inv, gamma_next, phi);
    trace("6", "Phi");

    // Line 7: P = R + P * Phi.
    add_product(r, p, phi, p, +1.0);
    trace("7", "P");

    gamma = gamma_next;
  }
  // Converged flag when the fixed-iteration loop happened to converge too.
  bool all_converged = true;
  for (i64 j = 0; j < n; ++j)
    if (gamma_next(j, j) > opts.tolerance * opts.tolerance) all_converged = false;
  res.converged = all_converged;
  return res;
}

}  // namespace cello::linalg
