#include "linalg/spmm.hpp"

namespace cello::linalg {

void spmm(const sparse::CsrMatrix& a, const DenseMatrix& b, DenseMatrix& c) {
  CELLO_CHECK(a.cols() == b.rows());
  CELLO_CHECK(c.rows() == a.rows() && c.cols() == b.cols());
  const i64 n = b.cols();
  for (i64 r = 0; r < a.rows(); ++r) {
    auto out = c.row(r);
    for (i64 j = 0; j < n; ++j) out[j] = 0.0;
    for (i64 k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const double v = a.values()[k];
      const auto brow = b.row(a.col_idx()[k]);
      for (i64 j = 0; j < n; ++j) out[j] += v * brow[j];
    }
  }
}

i64 spmm_macs(const sparse::CsrMatrix& a, i64 dense_cols) { return a.nnz() * dense_cols; }

}  // namespace cello::linalg
