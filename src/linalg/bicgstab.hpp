// BiCGStab (van der Vorst 1992), the second PDE-solver workload of Fig. 13.
// Solved per right-hand side (the paper evaluates BiCGStab at N=1).
#pragma once

#include <vector>

#include "linalg/dense.hpp"
#include "sparse/csr.hpp"

namespace cello::linalg {

struct BiCgStabOptions {
  i64 max_iterations = 200;
  double tolerance = 1e-8;
  bool fixed_iterations = false;
};

struct BiCgStabResult {
  std::vector<double> x;
  i64 iterations = 0;
  bool converged = false;
  std::vector<double> residual_history;
};

/// Solve A x = b with unpreconditioned BiCGStab.
BiCgStabResult bicgstab(const sparse::CsrMatrix& a, std::span<const double> b,
                        const BiCgStabOptions& opts = {});

}  // namespace cello::linalg
