#include "score/search_space.hpp"

#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace cello::score {

double log10_binomial(double n, double k) {
  if (k < 0 || k > n) return -std::numeric_limits<double>::infinity();
  return (std::lgamma(n + 1) - std::lgamma(k + 1) - std::lgamma(n - k + 1)) / std::log(10.0);
}

double log10_factorial(double n) { return std::lgamma(n + 1) / std::log(10.0); }

double SearchSpaceModel::log10_slice_allocation() const {
  CELLO_CHECK(buffer_words > 0 && num_tensors > 0);
  return log10_binomial(static_cast<double>(buffer_words + num_tensors - 1),
                        static_cast<double>(num_tensors - 1));
}

double SearchSpaceModel::log10_line_arrangements() const {
  return log10_factorial(static_cast<double>(buffer_words));
}

double SearchSpaceModel::log10_block_arrangements() const {
  return log10_factorial(static_cast<double>(num_tensors));
}

double SearchSpaceModel::log10_element_choices(std::span<const i64> tensor_words,
                                               std::span<const i64> slice_words) const {
  CELLO_CHECK(tensor_words.size() == slice_words.size());
  double sum = 0;
  for (size_t i = 0; i < tensor_words.size(); ++i)
    sum += log10_binomial(static_cast<double>(tensor_words[i]),
                          static_cast<double>(slice_words[i]));
  return sum;
}

double SearchSpaceModel::log10_contiguous_choices(std::span<const i64> tensor_words,
                                                  std::span<const i64> slice_words) const {
  CELLO_CHECK(tensor_words.size() == slice_words.size());
  double sum = 0;
  for (size_t i = 0; i < tensor_words.size(); ++i) {
    const double c = static_cast<double>(tensor_words[i] - slice_words[i] + 1);
    sum += std::log10(std::max(1.0, c));
  }
  return sum;
}

double SearchSpaceModel::log10_op_by_op(i64 buffer_words, i64 num_ops, i64 tensors_per_op) {
  // Op-by-op searches are independent, so the total search size is additive
  // across ops: num_ops * size^(t-1) * loop-order permutations.  For a
  // 7-operator DAG on a 2^20-word buffer with 3 operand tiles and 5 loops
  // this lands at ~10^15, matching the paper's quoted baseline.
  const double per_op = static_cast<double>(tensors_per_op - 1) *
                        std::log10(static_cast<double>(buffer_words));
  const double loop_orders = log10_factorial(5.0);
  return std::log10(static_cast<double>(num_ops)) + per_op + loop_orders;
}

}  // namespace cello::score
