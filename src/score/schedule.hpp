// SCORE scheduling (Sec. V-B / V-C of the paper).
//
// Given the classified DAG, SCORE:
//  * orders operations (program order — the builders emit Algorithm 1 order),
//  * picks per-op loop orders: the dominant rank goes outermost so the large
//    tensor stays stationary and the small tensor streams from the register
//    file; ops participating in pipelining instead get an uncontracted rank
//    shared with the pipelined tensor outermost (the codependence conditions),
//  * chooses one layout per tensor to minimize layout transformation
//    (swizzle) across its consumers,
//  * verifies which pipelineable edges are *realized* (codependence holds and
//    the shared tensor is not swizzled) — unrealized ones demote to
//    sequential (operand written back),
//  * binds every tensor to a residency class: register file (small tensors,
//    no search needed), pipeline buffer (all consumers pipeline/hold), CHORD
//    (delayed-writeback/sequential consumers), or DRAM (dead outputs),
//  * computes the coarse-grained reuse metadata (per-use frequency and
//    distance) that SCORE hands to CHORD's RIFF policy.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "score/dependency.hpp"

namespace cello::score {

enum class Residency { RegisterFile, PipelineBuffer, Chord, Dram };

const char* to_string(Residency r);

struct OpSchedule {
  ir::OpId op = ir::kInvalidOp;
  /// Rank names, outermost first.
  std::vector<std::string> loop_order;
  /// Ops sharing a group id pipeline together (rate-limited jointly).
  i32 pipeline_group = -1;
};

struct ScheduleOptions {
  Bytes rf_bytes = 64 * 1024;     ///< register-file capacity for "small" tensors
  bool enable_pipelining = true;  ///< off = pure op-by-op (best-intra baselines)
  bool minimize_swizzle = true;   ///< off = producer-preferred layout (ablation)

  /// Equal options build identical schedules for a given DAG — callers that
  /// cache schedules (SweepRunner) key on this equality.
  bool operator==(const ScheduleOptions&) const = default;
};

struct Schedule {
  std::vector<OpSchedule> steps;       ///< execution order
  Classification deps;                 ///< per-edge kinds after demotion
  std::vector<bool> edge_realized;     ///< per EdgeId: serviced by pipeline buffer
  std::vector<Residency> residency;    ///< per TensorId
  std::vector<std::string> layout;     ///< per TensorId: stored major rank ("" = any)
  i32 swizzle_count = 0;               ///< layout transforms the schedule could not avoid

  /// Per TensorId: step indices at which the tensor is consumed.
  std::vector<std::vector<i64>> use_positions;

  /// Number of consumptions strictly after step `pos` (RIFF frequency).
  i32 remaining_uses_after(ir::TensorId t, i64 pos) const;
  /// Distance (in steps) from `pos` to the next consumption, or -1 (RIFF distance).
  i64 next_use_distance(ir::TensorId t, i64 pos) const;
  /// Step index of an op.
  i64 position_of(ir::OpId op) const;
};

Schedule build_schedule(const ir::TensorDag& dag, const ScheduleOptions& opts = {});

}  // namespace cello::score
