#include "score/reuse_index.hpp"

#include "common/error.hpp"

namespace cello::score {

ReuseIndex ReuseIndex::build(const ir::TensorDag& dag, const Schedule& sched,
                             const std::vector<i32>& base_of, size_t num_bases) {
  CELLO_CHECK_MSG(base_of.size() >= dag.tensors().size(),
                  "base mapping covers " << base_of.size() << " tensors, DAG has "
                                         << dag.tensors().size());
  ReuseIndex r;
  r.offsets_.assign(num_bases + 1, 0);

  // Counting pass: one slot per use event.  Duplicate operands of one op
  // count twice, exactly like Schedule::use_positions records them.
  for (const auto& step : sched.steps)
    for (ir::TensorId in : dag.op(step.op).inputs) ++r.offsets_[static_cast<size_t>(base_of[in]) + 1];
  for (size_t b = 1; b <= num_bases; ++b) r.offsets_[b] += r.offsets_[b - 1];

  // Stable fill in step order: positions land ascending within each base.
  r.positions_.resize(r.offsets_[num_bases]);
  std::vector<u32> fill(r.offsets_.begin(), r.offsets_.end() - 1);
  for (size_t i = 0; i < sched.steps.size(); ++i)
    for (ir::TensorId in : dag.op(sched.steps[i].op).inputs)
      r.positions_[fill[base_of[in]]++] = static_cast<i64>(i);
  return r;
}

}  // namespace cello::score
