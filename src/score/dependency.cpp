#include "score/dependency.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cello::score {

const char* to_string(DepKind k) {
  switch (k) {
    case DepKind::Sequential: return "sequential";
    case DepKind::Pipelineable: return "pipelineable";
    case DepKind::DelayedHold: return "delayed_hold";
    case DepKind::DelayedWriteback: return "delayed_writeback";
  }
  return "?";
}

bool dominance_unshared(const ir::EinsumOp& dst, const ir::TensorDesc& tensor) {
  return !tensor.has_rank(dst.dominant_rank().name);
}

namespace {

/// The non-transitive (adjacent) rules of Algorithm 2, shared by both
/// classifiers: pipelineable iff the source is an uncontracted/balanced MAC
/// and the destination's dominant rank indexes the edge tensor.
DepKind adjacent_kind(const ir::TensorDag& dag, const ir::Edge& e) {
  const ir::EinsumOp& src = dag.op(e.src);
  const ir::EinsumOp& dst = dag.op(e.dst);
  const ir::TensorDesc& t = dag.tensor(e.tensor);
  if (src.dominance() == ir::Dominance::Contracted) return DepKind::Sequential;
  if (src.kind != ir::OpKind::TensorMac) return DepKind::Sequential;
  if (dominance_unshared(dst, t)) return DepKind::Sequential;
  return DepKind::Pipelineable;
}

Classification init(const ir::TensorDag& dag) {
  Classification c;
  c.edge_kind.assign(dag.edges().size(), DepKind::Sequential);
  c.numcast.assign(dag.ops().size(), 0);
  c.parallel_multicast.assign(dag.ops().size(), false);
  return c;
}

void fill_multicast(const ir::TensorDag& dag, Classification& c,
                    const std::vector<bool>& transitive) {
  for (const auto& e : dag.edges())
    if (!transitive[e.id]) ++c.numcast[e.src];
  for (const auto& op : dag.ops()) c.parallel_multicast[op.id] = c.numcast[op.id] > 1;
}

}  // namespace

Classification classify(const ir::TensorDag& dag) {
  Classification c = init(dag);

  std::vector<bool> transitive(dag.edges().size(), false);
  for (const auto& e : dag.edges()) transitive[e.id] = dag.is_transitive(e);
  fill_multicast(dag, c, transitive);

  for (const auto& e : dag.edges()) {
    if (!transitive[e.id]) {
      c.edge_kind[e.id] = adjacent_kind(dag, e);
      continue;
    }
    // Transitive edge.  If the adjacent-rule preconditions fail the edge is
    // plain sequential; otherwise walk the longest path: delayed_hold when
    // every hop pipelines, delayed_writeback when any hop breaks the chain.
    if (adjacent_kind(dag, e) == DepKind::Sequential) {
      c.edge_kind[e.id] = DepKind::Sequential;
      continue;
    }
    const auto path = dag.longest_path(e.src, e.dst);
    CELLO_CHECK(path.size() >= 3);  // transitive => at least one intermediate node
    bool all_pipeline = true;
    for (size_t i = 0; i + 1 < path.size() && all_pipeline; ++i) {
      // Every consecutive pair on a longest path is joined by a direct edge.
      bool hop_ok = false;
      for (const ir::EdgeId eid : dag.out_edges(path[i])) {
        const ir::Edge& hop = dag.edge(eid);
        if (hop.dst != path[i + 1]) continue;
        if (adjacent_kind(dag, hop) == DepKind::Pipelineable) hop_ok = true;
      }
      all_pipeline = hop_ok;
    }
    c.edge_kind[e.id] = all_pipeline ? DepKind::DelayedHold : DepKind::DelayedWriteback;
  }
  return c;
}

Classification classify_scheduled(const ir::TensorDag& dag, const std::vector<ir::OpId>& order) {
  CELLO_CHECK_MSG(order.size() == dag.ops().size(), "order must cover every op");
  std::vector<i64> pos(dag.ops().size(), -1);
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<i64>(i);
  for (const auto& e : dag.edges())
    CELLO_CHECK_MSG(pos[e.src] < pos[e.dst], "order is not topological for edge "
                                                 << dag.op(e.src).name << " -> "
                                                 << dag.op(e.dst).name);

  Classification c = init(dag);
  // An edge is "adjacent" when its endpoints are consecutive scheduled steps;
  // everything wider is delayed (this subsumes graph transitivity).
  std::vector<bool> distant(dag.edges().size(), false);
  for (const auto& e : dag.edges()) distant[e.id] = (pos[e.dst] - pos[e.src]) > 1;
  fill_multicast(dag, c, distant);

  // Precompute pipelineability of each consecutive scheduled hop: hop p is
  // pipelineable when a direct edge order[p] -> order[p+1] exists and passes
  // the adjacent rules.
  std::vector<bool> hop_pipes(order.size(), false);
  for (size_t p = 0; p + 1 < order.size(); ++p) {
    for (const ir::EdgeId eid : dag.out_edges(order[p])) {
      const ir::Edge& e = dag.edge(eid);
      if (e.dst != order[p + 1]) continue;
      if (adjacent_kind(dag, e) == DepKind::Pipelineable) hop_pipes[p] = true;
    }
  }

  for (const auto& e : dag.edges()) {
    if (!distant[e.id]) {
      c.edge_kind[e.id] = adjacent_kind(dag, e);
      continue;
    }
    if (adjacent_kind(dag, e) == DepKind::Sequential) {
      c.edge_kind[e.id] = DepKind::Sequential;
      continue;
    }
    bool all_pipeline = true;
    for (i64 p = pos[e.src]; p < pos[e.dst]; ++p)
      all_pipeline = all_pipeline && hop_pipes[static_cast<size_t>(p)];
    c.edge_kind[e.id] = all_pipeline ? DepKind::DelayedHold : DepKind::DelayedWriteback;
  }
  return c;
}

}  // namespace cello::score
