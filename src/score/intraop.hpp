// Intra-operation mapping (tiling) cost model — a Timeloop/MAESTRO-lite.
//
// The paper's "Best Intra-layer" baseline assumes the oracle op-by-op
// dataflow whose DRAM traffic is exactly one pass over every operand
// (M*K + K*N + M*N words, Eq. 3).  This model makes that assumption
// *checkable*: it evaluates the DRAM traffic of any tiled GEMM mapping on a
// buffer of given capacity and searches the tile space for the best one.
// For the skewed GEMMs of CG the search confirms two facts the paper builds
// on:  (1) the oracle traffic is achievable because the small tensor fits
// on chip, and (2) no mapping can push arithmetic intensity past N/2
// ops/word (Eq. 4) — intra-op scheduling alone cannot fix skewed shapes.
#pragma once

#include <string>

#include "common/types.hpp"

namespace cello::score {

struct GemmShape {
  i64 m = 0, k = 0, n = 0;
  Bytes word_bytes = 4;
};

/// One tiling of the (m, k, n) iteration space; tiles must fit the buffer:
///   Tm*Tk + Tk*Tn + Tm*Tn  <=  capacity_words.
struct GemmMapping {
  i64 tm = 1, tk = 1, tn = 1;

  bool fits(const GemmShape& s, Bytes buffer_bytes) const {
    const i64 words = static_cast<i64>(buffer_bytes / s.word_bytes);
    return tm * tk + tk * tn + tm * tn <= words;
  }
  std::string to_string() const;
};

/// DRAM words moved by a tiled GEMM under the classic reuse analysis:
///   A (m x k): re-streamed once per n-tile          -> m*k * ceil(n/Tn)
///   B (k x n): re-streamed once per m-tile          -> k*n * ceil(m/Tm)
///   Z (m x n): partial sums spill once per k-tile   -> m*n * (2*ceil(k/Tk) - 1)
double dram_words(const GemmShape& s, const GemmMapping& map);

/// Oracle lower bound: every operand moves exactly once (Eq. 3).
double oracle_words(const GemmShape& s);

/// Best achievable arithmetic intensity in ops/word (Eq. 3 numerator over
/// oracle words).
double oracle_intensity_ops_per_word(const GemmShape& s);

struct MappingSearchResult {
  GemmMapping best;
  double best_words = 0;
  double oracle = 0;
  i64 mappings_evaluated = 0;
  /// True when the search reached the oracle (small tensor fits on chip).
  bool oracle_achieved() const { return best_words <= oracle * 1.0001; }
};

/// Exhaustive search over power-of-two tile sizes (clamped to the shape).
MappingSearchResult search_best_mapping(const GemmShape& s, Bytes buffer_bytes);

}  // namespace cello::score
