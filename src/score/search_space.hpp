// Buffer-allocation search-space cost model (Sec. VI-B of the paper).
//
// Quantifies why explicit scratchpad allocation over a DAG is intractable and
// how CHORD collapses it: log10 of the number of allocation choices for
//  (1) slicing the buffer across T tensors (stars-and-bars),
//  (2) arranging the slices (T! with contiguity, size! without),
//  (3) choosing which elements go in each slice (binomial per tensor;
//      contiguous slices reduce it to a start offset),
//  (4) re-allocating over program time steps (exponentiation).
// CHORD replaces all of this with RIFF decisions driven by high-level DAG
// information: O(nodes + edges) — about 10^2 for CG-sized DAGs versus the
// paper's headline ~10^80 for a 4 MB scratchpad and five tensors.
#pragma once

#include <span>

#include "common/types.hpp"

namespace cello::score {

/// log10 of C(n, k) via lgamma (exact enough for 10^80-scale comparisons).
double log10_binomial(double n, double k);
/// log10 of n!.
double log10_factorial(double n);

struct SearchSpaceModel {
  i64 buffer_words = 0;  ///< e.g. 4 MiB / 4 B = 2^20 words
  i64 num_tensors = 0;   ///< contending tensors (paper example: 5)

  /// (1) choices of slice sizes: C(size + T - 1, T - 1) ~ size^(T-1).
  double log10_slice_allocation() const;
  /// (2a) arranging lines freely: log10(size!).
  double log10_line_arrangements() const;
  /// (2b) arranging contiguous tensor blocks: log10(T!).
  double log10_block_arrangements() const;
  /// (3a) choosing slice elements freely: sum_i log10 C(Ti, Ti_slice).
  double log10_element_choices(std::span<const i64> tensor_words,
                               std::span<const i64> slice_words) const;
  /// (3b) contiguous slices: sum_i log10(Ti - Ti_slice + 1).
  double log10_contiguous_choices(std::span<const i64> tensor_words,
                                  std::span<const i64> slice_words) const;
  /// (4) static plan re-chosen at each of `time_steps` allocation epochs.
  double log10_time_varying(double log10_static, i64 time_steps) const {
    return log10_static * static_cast<double>(time_steps);
  }

  /// Baseline: op-by-op tiling search per op (intra-op only) — the paper
  /// quotes ~10^15 for a 7-operator DAG.
  static double log10_op_by_op(i64 buffer_words, i64 num_ops, i64 tensors_per_op = 3);

  /// CHORD: RIFF policy only consults DAG-level reuse metadata.
  static double chord_choices(i64 nodes, i64 edges) {
    return static_cast<double>(nodes + edges);
  }
};

}  // namespace cello::score
