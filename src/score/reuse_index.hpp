// score::ReuseIndex — the immutable half of the per-base-tensor reuse table
// the simulator consults for RIFF metadata (remaining uses, next-use
// distance) and retirement decisions.
//
// For every base buffer (per-iteration instances share their base's slot) it
// holds the union of the schedule's use positions, flattened CSR-style:
// positions of base b are positions()[offsets()[b] .. offsets()[b+1]), in
// ascending step order.  The index depends only on (DAG, schedule, base
// mapping), so one copy serves every run of a (workload, schedule-policy)
// pair — SweepRunner builds it once next to the shared Schedule + AddressMap
// instead of once per sweep cell.
//
// The mutable half is ReuseCursor: one monotone cursor per base (the
// simulator queries at non-decreasing step positions, so lookups are O(1)
// amortized instead of a binary search).  A cursor is per-run state; reset()
// it against the index before every replay.
#pragma once

#include <vector>

#include "ir/dag.hpp"
#include "score/schedule.hpp"

namespace cello::score {

class ReuseIndex {
 public:
  /// Build from a schedule and a tensor->base mapping (`base_of[t]` for every
  /// ir::TensorId, e.g. sim::AddressMap::base_of).  Single counting pass over
  /// the scheduled ops plus a stable fill — steps are walked in ascending
  /// order, so each base's positions come out sorted without any per-base
  /// sort, bit-identical to sorting the interleaved per-tensor lists.
  static ReuseIndex build(const ir::TensorDag& dag, const Schedule& sched,
                          const std::vector<i32>& base_of, size_t num_bases);

  size_t num_bases() const { return offsets_.size() - 1; }
  /// Total use events of base `b`.
  u32 count(i32 b) const { return offsets_[static_cast<size_t>(b) + 1] - offsets_[b]; }

  const std::vector<u32>& offsets() const { return offsets_; }
  const std::vector<i64>& positions() const { return positions_; }

 private:
  std::vector<u32> offsets_;    ///< per base id, size num_bases + 1
  std::vector<i64> positions_;  ///< ascending step positions, per-base slices
};

/// Per-run cursor state over a (shared) ReuseIndex.  Cheap to reset between
/// runs: the vector keeps its capacity, so pooled callers reallocate nothing.
class ReuseCursor {
 public:
  /// Size to `index` and rewind every base's cursor to the start of its
  /// CSR slice (cursors are indexes into the flattened positions() array).
  void reset(const ReuseIndex& index) {
    cursor_.assign(index.offsets().begin(), index.offsets().end() - 1);
  }

  /// Number of uses of `base` strictly after step `pos` (RIFF frequency).
  i32 remaining_after(const ReuseIndex& index, i32 base, i64 pos) {
    return static_cast<i32>(index.offsets()[static_cast<size_t>(base) + 1] -
                            advance(index, base, pos));
  }
  /// Steps from `pos` to the next use of `base`, or -1 (RIFF distance).
  i64 next_distance(const ReuseIndex& index, i32 base, i64 pos) {
    const u32 c = advance(index, base, pos);
    return c == index.offsets()[static_cast<size_t>(base) + 1] ? -1
                                                               : index.positions()[c] - pos;
  }

 private:
  /// First index into positions() with positions()[i] > pos (monotone in pos).
  u32 advance(const ReuseIndex& index, i32 base, i64 pos) {
    const i64* p = index.positions().data();
    const u32 end = index.offsets()[static_cast<size_t>(base) + 1];
    u32 c = cursor_[base];
    while (c < end && p[c] <= pos) ++c;
    cursor_[base] = c;
    return c;
  }

  std::vector<u32> cursor_;  ///< per base id: first index beyond the last queried pos
};

}  // namespace cello::score
