#include "score/schedule.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace cello::score {

const char* to_string(Residency r) {
  switch (r) {
    case Residency::RegisterFile: return "register_file";
    case Residency::PipelineBuffer: return "pipeline_buffer";
    case Residency::Chord: return "chord";
    case Residency::Dram: return "dram";
  }
  return "?";
}

i32 Schedule::remaining_uses_after(ir::TensorId t, i64 pos) const {
  i32 n = 0;
  for (i64 p : use_positions[t])
    if (p > pos) ++n;
  return n;
}

i64 Schedule::next_use_distance(ir::TensorId t, i64 pos) const {
  for (i64 p : use_positions[t])
    if (p > pos) return p - pos;
  return -1;
}

i64 Schedule::position_of(ir::OpId op) const {
  for (size_t i = 0; i < steps.size(); ++i)
    if (steps[i].op == op) return static_cast<i64>(i);
  return -1;
}

namespace {

/// Loop order: ranks by descending effective extent (dominant outermost, so
/// the large tensor is stationary and the small tensor streams from the RF).
/// Pipeline *sources* additionally put their largest uncontracted rank
/// outermost — the codependence condition of Sec. V-B requires the producer
/// to emit the shared tensor along an uncontracted rank.
std::vector<std::string> pick_loop_order(const ir::EinsumOp& op, bool is_pipe_source) {
  std::vector<const ir::OpRank*> ranked;
  ranked.reserve(op.ranks.size());
  for (const auto& r : op.ranks) ranked.push_back(&r);
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const ir::OpRank* a, const ir::OpRank* b) {
                     return a->effective() > b->effective();
                   });
  if (is_pipe_source) {
    // Move the largest uncontracted rank to the front if it is not already.
    for (size_t i = 0; i < ranked.size(); ++i) {
      if (!ranked[i]->contracted) {
        std::rotate(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(i),
                    ranked.begin() + static_cast<std::ptrdiff_t>(i) + 1);
        break;
      }
    }
  }
  std::vector<std::string> names;
  names.reserve(ranked.size());
  for (const auto* r : ranked) names.push_back(r->name);
  return names;
}

/// Outermost rank of `order` that indexes tensor `t` ("" if none): the layout
/// the op would like the tensor stored in.
std::string preferred_major(const std::vector<std::string>& order, const ir::TensorDesc& t) {
  for (const auto& r : order)
    if (t.has_rank(r)) return r;
  return "";
}

}  // namespace

Schedule build_schedule(const ir::TensorDag& dag, const ScheduleOptions& opts) {
  dag.validate();
  Schedule s;

  // Execution order: the builders emit ops in program (Algorithm 1) order;
  // ids are assigned in that order and topo_order() tie-breaks by id, so this
  // is both topological and faithful to the paper's schedule (Fig. 8).
  const std::vector<ir::OpId> order = dag.topo_order();
  s.deps = classify_scheduled(dag, order);

  // Which ops source a pipelineable/hold edge (affects their loop order).
  std::vector<bool> pipe_source(dag.ops().size(), false);
  if (opts.enable_pipelining) {
    for (const auto& e : dag.edges()) {
      const DepKind k = s.deps.edge_kind[e.id];
      if (k == DepKind::Pipelineable || k == DepKind::DelayedHold) pipe_source[e.src] = true;
    }
  }

  s.steps.reserve(order.size());
  for (ir::OpId o : order) {
    OpSchedule step;
    step.op = o;
    step.loop_order = pick_loop_order(dag.op(o), pipe_source[o]);
    s.steps.push_back(std::move(step));
  }

  // ---- layout / swizzle minimization ---------------------------------------
  s.layout.assign(dag.tensors().size(), "");
  std::vector<std::vector<std::string>> op_loop(dag.ops().size());
  for (const auto& step : s.steps) op_loop[step.op] = step.loop_order;

  for (const auto& t : dag.tensors()) {
    // RF-resident tensors stream whole from the register file; their layout
    // never materializes in on-chip memory, so they cannot need a swizzle.
    const bool counts_for_swizzle = t.bytes() > opts.rf_bytes;
    // Votes: the producer's generation order plus every consumer's desire.
    std::map<std::string, int> votes;
    std::string producer_major;
    if (auto p = dag.producer(t.id)) {
      producer_major = preferred_major(op_loop[*p], t);
      if (!producer_major.empty()) ++votes[producer_major];
    }
    std::vector<std::string> consumer_major;
    for (ir::OpId c : dag.consumers(t.id)) {
      const std::string m = preferred_major(op_loop[c], t);
      consumer_major.push_back(m);
      if (!m.empty()) ++votes[m];
    }
    std::string chosen = producer_major;
    if (opts.minimize_swizzle) {
      int best = -1;
      for (const auto& [major, n] : votes) {
        if (n > best) {
          best = n;
          chosen = major;
        }
      }
    }
    s.layout[t.id] = chosen;
    if (counts_for_swizzle) {
      if (!producer_major.empty() && !chosen.empty() && producer_major != chosen)
        ++s.swizzle_count;
      for (const auto& m : consumer_major)
        if (!m.empty() && !chosen.empty() && m != chosen) ++s.swizzle_count;
    }
  }

  // ---- pipeline realization -------------------------------------------------
  // A pipelineable/hold edge is realized when the codependence conditions of
  // Sec. V-B hold: source streams an uncontracted rank outermost, the
  // destination's outermost shared rank matches, and the shared tensor is not
  // swizzled between them.  Unrealized edges demote to sequential/writeback.
  std::vector<i64> pos(dag.ops().size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<i64>(i);

  s.edge_realized.assign(dag.edges().size(), false);
  for (const auto& e : dag.edges()) {
    DepKind& k = s.deps.edge_kind[e.id];
    if (k != DepKind::Pipelineable && k != DepKind::DelayedHold) continue;
    if (!opts.enable_pipelining) {
      k = (k == DepKind::Pipelineable) ? DepKind::Sequential : DepKind::DelayedWriteback;
      continue;
    }
    const ir::TensorDesc& t = dag.tensor(e.tensor);
    const auto& src_order = op_loop[e.src];
    const auto& dst_order = op_loop[e.dst];
    bool ok = !src_order.empty() && !dst_order.empty();
    if (ok) {
      // Source outermost rank must be uncontracted and index the tensor.
      const ir::EinsumOp& src = dag.op(e.src);
      bool src_ok = false;
      for (const auto& r : src.ranks)
        if (r.name == src_order.front()) src_ok = !r.contracted && t.has_rank(r.name);
      // Destination's *outermost loop* must be the shared rank (strict
      // codependence: consumer walks the tensor in production order).
      const std::string src_major = preferred_major(src_order, t);
      ok = src_ok && t.has_rank(dst_order.front()) && dst_order.front() == src_major;
      // The shared tensor must be consumed in the produced layout (no swizzle).
      ok = ok && (s.layout[t.id].empty() || s.layout[t.id] == src_major);
    }
    if (ok) {
      s.edge_realized[e.id] = true;
    } else {
      k = (k == DepKind::Pipelineable) ? DepKind::Sequential : DepKind::DelayedWriteback;
    }
  }

  // ---- pipeline groups -------------------------------------------------------
  // Maximal runs of consecutive steps joined by realized adjacent edges.
  i32 group = 0;
  for (size_t i = 0; i < s.steps.size(); ++i) {
    if (i > 0) {
      bool joined = false;
      for (const ir::EdgeId eid : dag.out_edges(s.steps[i - 1].op)) {
        const ir::Edge& e = dag.edge(eid);
        if (e.dst == s.steps[i].op && s.edge_realized[e.id] && pos[e.dst] - pos[e.src] == 1)
          joined = true;
      }
      if (!joined) ++group;
    }
    s.steps[i].pipeline_group = group;
  }

  // ---- use positions ----------------------------------------------------------
  s.use_positions.assign(dag.tensors().size(), {});
  for (size_t i = 0; i < s.steps.size(); ++i)
    for (ir::TensorId in : dag.op(s.steps[i].op).inputs)
      s.use_positions[in].push_back(static_cast<i64>(i));

  // ---- residency binding --------------------------------------------------------
  s.residency.assign(dag.tensors().size(), Residency::Dram);
  for (const auto& t : dag.tensors()) {
    const auto consumers = dag.consumers(t.id);
    if (consumers.empty()) {
      s.residency[t.id] = Residency::Dram;  // final outputs drain to memory
      continue;
    }
    if (t.bytes() <= opts.rf_bytes) {
      s.residency[t.id] = Residency::RegisterFile;
      continue;
    }
    bool all_pipelined = dag.producer(t.id).has_value();
    for (const ir::EdgeId eid : dag.tensor_edges(t.id))
      if (!s.edge_realized[eid]) all_pipelined = false;
    s.residency[t.id] = all_pipelined ? Residency::PipelineBuffer : Residency::Chord;
  }
  return s;
}

}  // namespace cello::score
