// SCORE dependency classification — Algorithm 2 of the paper.
//
// Every DAG edge is classified as one of:
//  * Sequential:       source does not pipeline with the destination (source
//                      is contracted-dominant, is not a MAC op, or the
//                      destination's dominant rank is unshared with the
//                      edge tensor).  Operand goes through memory.
//  * Pipelineable:     adjacent producer/consumer tile pipelining is legal.
//  * DelayedHold:      transitive consumer, but the whole path to it
//                      pipelines — hold the tile in the pipeline buffer.
//  * DelayedWriteback: transitive consumer behind a non-pipelineable path —
//                      the tensor must be written back (CHORD territory).
//
// Two classifiers are provided:
//  * classify():            the literal Algorithm 2, using graph transitivity
//                           (footnote 5: an edge is transitive iff a longer
//                           path than the direct edge exists).
//  * classify_scheduled():  generalizes transitivity to *schedule distance* —
//                           an edge spanning more than one scheduled step is
//                           delayed even when no longer graph path exists.
//                           This covers cross-iteration self-dependencies
//                           such as X(line 3) -> X(line 3, next iteration) in
//                           CG, which the paper's CHORD example tracks with
//                           reuse distance 7.  The two coincide on DAGs whose
//                           schedule follows the longest path.
#pragma once

#include <vector>

#include "ir/dag.hpp"

namespace cello::score {

enum class DepKind { Sequential, Pipelineable, DelayedHold, DelayedWriteback };

const char* to_string(DepKind k);

struct Classification {
  /// Indexed by EdgeId.
  std::vector<DepKind> edge_kind;
  /// Indexed by OpId: number of non-transitive (direct) out-edges.
  std::vector<i32> numcast;
  /// Indexed by OpId: true when numcast > 1 (tensor multicast to parallel consumers).
  std::vector<bool> parallel_multicast;
};

/// True when the destination op's dominant rank does not index the tensor —
/// the "unshared dominance" test of Algorithm 2.
bool dominance_unshared(const ir::EinsumOp& dst, const ir::TensorDesc& tensor);

/// Literal Algorithm 2 (graph transitivity).
Classification classify(const ir::TensorDag& dag);

/// Algorithm 2 with transitivity generalized to schedule distance under
/// `order` (a topological execution order).
Classification classify_scheduled(const ir::TensorDag& dag, const std::vector<ir::OpId>& order);

}  // namespace cello::score
