#include "score/intraop.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"

namespace cello::score {
namespace {

/// Power-of-two candidates up to and including `limit` (plus `limit` itself).
std::vector<i64> tile_candidates(i64 limit) {
  std::vector<i64> c;
  for (i64 t = 1; t < limit; t *= 2) c.push_back(t);
  c.push_back(limit);
  return c;
}

}  // namespace

std::string GemmMapping::to_string() const {
  std::ostringstream os;
  os << "Tm=" << tm << " Tk=" << tk << " Tn=" << tn;
  return os.str();
}

double dram_words(const GemmShape& s, const GemmMapping& map) {
  CELLO_CHECK(map.tm >= 1 && map.tk >= 1 && map.tn >= 1);
  // An operand whose tile covers the whole tensor stays resident across the
  // outer loops and moves exactly once (the RF-held small tensor of the
  // paper's skewed GEMMs is the canonical case).
  const bool a_resident = map.tm >= s.m && map.tk >= s.k;
  const bool b_resident = map.tk >= s.k && map.tn >= s.n;
  const bool z_resident = map.tm >= s.m && map.tn >= s.n;

  const double a = static_cast<double>(s.m) * static_cast<double>(s.k) *
                   (a_resident ? 1.0 : static_cast<double>(ceil_div(s.n, map.tn)));
  const double b = static_cast<double>(s.k) * static_cast<double>(s.n) *
                   (b_resident ? 1.0 : static_cast<double>(ceil_div(s.m, map.tm)));
  const double k_tiles = static_cast<double>(ceil_div(s.k, map.tk));
  const double z = static_cast<double>(s.m) * static_cast<double>(s.n) *
                   (z_resident ? 1.0 : 2.0 * k_tiles - 1.0);
  return a + b + z;
}

double oracle_words(const GemmShape& s) {
  return static_cast<double>(s.m) * static_cast<double>(s.k) +
         static_cast<double>(s.k) * static_cast<double>(s.n) +
         static_cast<double>(s.m) * static_cast<double>(s.n);
}

double oracle_intensity_ops_per_word(const GemmShape& s) {
  const double macs = static_cast<double>(s.m) * static_cast<double>(s.k) *
                      static_cast<double>(s.n);
  return macs / oracle_words(s);
}

MappingSearchResult search_best_mapping(const GemmShape& s, Bytes buffer_bytes) {
  CELLO_CHECK(s.m > 0 && s.k > 0 && s.n > 0);
  MappingSearchResult r;
  r.oracle = oracle_words(s);
  r.best_words = std::numeric_limits<double>::infinity();

  for (i64 tm : tile_candidates(s.m)) {
    for (i64 tk : tile_candidates(s.k)) {
      for (i64 tn : tile_candidates(s.n)) {
        const GemmMapping map{tm, tk, tn};
        if (!map.fits(s, buffer_bytes)) continue;
        ++r.mappings_evaluated;
        const double w = dram_words(s, map);
        if (w < r.best_words) {
          r.best_words = w;
          r.best = map;
        }
      }
    }
  }
  CELLO_CHECK_MSG(r.mappings_evaluated > 0, "buffer too small for any tile");
  return r;
}

}  // namespace cello::score
