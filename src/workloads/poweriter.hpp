// Power iteration (dominant eigenvector): per iteration
//   y      = A . x          SpMV ('U*', compressed contraction)
//   sigma  = y^T y          contracted dot ('C', register file)
//   x'     = y / sqrt(sigma) scale ('U')
// A compact third HPC pattern: y has a delayed-writeback consumer (the scale
// runs after the contracted dot breaks the pipeline chain) and A is reused by
// every iteration — the CHORD sweet spot, with a DAG smaller than CG.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct PowerIterShape {
  i64 m = 0;
  i64 nnz = 0;
  i64 iterations = 10;
  Bytes word_bytes = 4;
};

ir::TensorDag build_power_iteration_dag(const PowerIterShape& shape);

}  // namespace cello::workloads
