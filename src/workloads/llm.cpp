#include "workloads/llm.hpp"

#include <string>

#include "common/error.hpp"

namespace cello::workloads {

namespace {

using ir::OpKind;
using ir::OpRank;
using ir::TensorDag;
using ir::TensorDesc;
using ir::TensorId;

}  // namespace

ir::TensorDag build_llm_decode_dag(const LlmShape& shape) {
  CELLO_CHECK(shape.layers > 0 && shape.heads > 0 && shape.d_model > 0);
  CELLO_CHECK_MSG(shape.d_model % shape.heads == 0,
                  "d_model " << shape.d_model << " not divisible by heads " << shape.heads);
  CELLO_CHECK(shape.seq >= 0 && shape.decode_steps > 0);
  const i64 kv_heads = shape.gqa > 0 ? shape.gqa : shape.heads;
  CELLO_CHECK_MSG(kv_heads <= shape.heads && shape.heads % kv_heads == 0,
                  "gqa " << kv_heads << " must divide heads " << shape.heads);
  const i64 d_ff = shape.d_ff > 0 ? shape.d_ff : 4 * shape.d_model;

  TensorDag dag;
  const i64 d = shape.d_model;
  const i64 kv_width = (d / shape.heads) * kv_heads;  ///< K (or V) row width, words
  const i64 T = shape.decode_steps;
  const Bytes w = shape.word_bytes;

  auto add_vec = [&](const std::string& name, const std::string& col_rank, i64 cols) {
    TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", col_rank};
    t.dims = {1, cols};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };
  auto add_weight = [&](const std::string& name, const std::string& row_rank, i64 rows,
                        const std::string& col_rank, i64 cols) {
    TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {row_rank, col_rank};
    t.dims = {rows, cols};
    t.word_bytes = w;
    const TensorId id = dag.add_tensor(std::move(t));
    dag.mark_external(id);
    return id;
  };
  auto add_cache = [&](const std::string& base, i64 extent, i64 t_idx) {
    TensorDesc t = dag.new_tensor();
    t.name = base + "@" + std::to_string(t_idx);
    t.ranks = {"j", "dk"};
    t.dims = {extent, kv_width};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };

  // Layer-input hidden states: h0@t are the external token embeddings, hl@t
  // (l >= 1) the outputs of layer l — updated (with their producing op) as
  // the layer loop runs.
  std::vector<TensorId> h(static_cast<size_t>(T), ir::kInvalidTensor);
  std::vector<ir::OpId> h_op(static_cast<size_t>(T), ir::kInvalidOp);
  for (i64 t = 0; t < T; ++t) {
    h[t] = add_vec("h0@" + std::to_string(t), "k", d);
    dag.mark_external(h[t]);
  }

  for (i64 l = 1; l <= shape.layers; ++l) {
    const std::string L = "_" + std::to_string(l);
    // '_' layer suffixes keep each layer's weights and caches distinct bases;
    // '@' step suffixes fold a layer's per-step instances onto one base.
    const TensorId Wqkv = add_weight("Wqkv" + L, "k", d, "n", d + 2 * kv_width);
    const TensorId Wo = add_weight("Wo" + L, "k", d, "n", d);
    const TensorId W1 = add_weight("W1" + L, "k", d, "f", d_ff);
    const TensorId W2 = add_weight("W2" + L, "f", d_ff, "n", d);

    // Prefill cache: extent `seq` before the first decode step (empty when
    // seq = 0 — the chain head then contributes zero bytes).
    TensorId K_prev = add_cache("K" + L, shape.seq, 0);
    TensorId V_prev = add_cache("V" + L, shape.seq, 0);
    dag.mark_external(K_prev);
    dag.mark_external(V_prev);
    ir::OpId k_prev_op = ir::kInvalidOp;
    ir::OpId v_prev_op = ir::kInvalidOp;

    for (i64 t = 0; t < T; ++t) {
      const std::string S = "@" + std::to_string(t);
      const i64 extent = shape.seq + t + 1;  ///< cache rows visible to step t

      // Fused Q/K/V projection of the step's single token.
      const TensorId qkv = add_vec("qkv" + L + S, "n", d + 2 * kv_width);
      ir::OpId qkv_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "qkv" + L + S;
        op.inputs = {h[t], Wqkv};
        op.output = qkv;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"k", d, true, -1},
                    OpRank{"n", d + 2 * kv_width, false, -1}};
        qkv_op = dag.add_op(std::move(op));
      }
      if (h_op[t] != ir::kInvalidOp) dag.add_edge(h_op[t], qkv_op, h[t]);

      // Cache appends: the step's new K/V rows extend the previous extent.
      const TensorId K = add_cache("K" + L, extent, t + 1);
      const TensorId V = add_cache("V" + L, extent, t + 1);
      dag.mark_append(K_prev, K);
      dag.mark_append(V_prev, V);
      ir::OpId k_op, v_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "k_append" + L + S;
        op.kind = OpKind::Elementwise;
        op.inputs = {K_prev, qkv};
        op.output = K;
        op.ranks = {OpRank{"j", extent, false, -1}, OpRank{"dk", kv_width, false, -1}};
        op.macs_override = kv_width;  // one appended row
        k_op = dag.add_op(std::move(op));
        dag.add_edge(qkv_op, k_op, qkv);
        if (k_prev_op != ir::kInvalidOp) dag.add_edge(k_prev_op, k_op, K_prev);
      }
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "v_append" + L + S;
        op.kind = OpKind::Elementwise;
        op.inputs = {V_prev, qkv};
        op.output = V;
        op.ranks = {OpRank{"j", extent, false, -1}, OpRank{"dk", kv_width, false, -1}};
        op.macs_override = kv_width;
        v_op = dag.add_op(std::move(op));
        dag.add_edge(qkv_op, v_op, qkv);
        if (v_prev_op != ir::kInvalidOp) dag.add_edge(v_prev_op, v_op, V_prev);
      }

      // q_t . K^T over the grown extent (all heads: seq-extent x d_model MACs
      // regardless of how many KV heads the queries share under GQA).
      const TensorId att = add_vec("att" + L + S, "j", extent);
      ir::OpId att_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "attn" + L + S;
        op.inputs = {qkv, K};
        op.output = att;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"j", extent, false, -1},
                    OpRank{"dk", kv_width, true, -1}};
        op.macs_override = extent * d;
        att_op = dag.add_op(std::move(op));
        dag.add_edge(qkv_op, att_op, qkv);
        dag.add_edge(k_op, att_op, K);
      }

      // softmax(att) . V: aggregate the cached values through the scores.
      const TensorId ctx = add_vec("ctx" + L + S, "k", d);
      ir::OpId ctx_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "ctx" + L + S;
        op.inputs = {att, V};
        op.output = ctx;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"j", extent, true, -1},
                    OpRank{"k", d, false, -1}};
        op.macs_override = extent * d;
        ctx_op = dag.add_op(std::move(op));
        dag.add_edge(att_op, ctx_op, att);
        dag.add_edge(v_op, ctx_op, V);
      }

      // Output projection, then the two MLP GEMMs.
      const TensorId out = add_vec("out" + L + S, "n", d);
      ir::OpId proj_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "proj" + L + S;
        op.inputs = {ctx, Wo};
        op.output = out;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"k", d, true, -1},
                    OpRank{"n", d, false, -1}};
        proj_op = dag.add_op(std::move(op));
        dag.add_edge(ctx_op, proj_op, ctx);
      }
      const TensorId f = add_vec("f" + L + S, "f", d_ff);
      ir::OpId mlp1_op;
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "mlp1" + L + S;
        op.inputs = {out, W1};
        op.output = f;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"k", d, true, -1},
                    OpRank{"f", d_ff, false, -1}};
        mlp1_op = dag.add_op(std::move(op));
        dag.add_edge(proj_op, mlp1_op, out);
      }
      const TensorId y = add_vec("h" + std::to_string(l) + S, "k", d);
      {
        ir::EinsumOp op = dag.new_op();
        op.name = "mlp2" + L + S;
        op.inputs = {f, W2};
        op.output = y;
        op.ranks = {OpRank{"m", 1, false, -1}, OpRank{"f", d_ff, true, -1},
                    OpRank{"n", d, false, -1}};
        const ir::OpId mlp2_op = dag.add_op(std::move(op));
        dag.add_edge(mlp1_op, mlp2_op, f);
        h[t] = y;  // layer l's output is layer l+1's input for this step
        h_op[t] = mlp2_op;
      }

      K_prev = K;
      V_prev = V;
      k_prev_op = k_op;
      v_prev_op = v_op;
    }
  }

  // The decoded sequence: every step's final-layer hidden state.
  for (i64 t = 0; t < T; ++t) dag.mark_result(h[t]);

  dag.validate();
  return dag;
}

}  // namespace cello::workloads
