#include "workloads/resnet.hpp"

#include "common/error.hpp"

namespace cello::workloads {

ir::TensorDag build_resnet_block_dag(const ResNetBlockShape& shape) {
  CELLO_CHECK(shape.spatial > 0 && shape.in_channels > 0 && shape.bottleneck > 0);
  ir::TensorDag dag;
  const i64 m = shape.spatial;
  const i64 c_in = shape.in_channels;
  const i64 c_mid = shape.bottleneck;
  const Bytes w = shape.word_bytes;

  auto add_fmap = [&](const std::string& name, const std::string& chan_rank, i64 channels) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", chan_rank};
    t.dims = {m, channels};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };
  auto add_weight = [&](const std::string& name, const std::string& rin, i64 cin,
                        const std::string& rout, i64 cout) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {rin, rout};
    t.dims = {cin, cout};
    t.word_bytes = w;
    const ir::TensorId id = dag.add_tensor(std::move(t));
    dag.mark_external(id);
    return id;
  };

  // Producer of the block input (last conv of the previous block).
  const ir::TensorId Tprev = add_fmap("T_prev", "c_p", c_in);
  dag.mark_external(Tprev);
  const ir::TensorId W0 = add_weight("W0", "c_p", c_in, "c0", c_in);
  const ir::TensorId T0 = add_fmap("T0", "c0", c_in);

  const ir::TensorId W1 = add_weight("W1", "c0", c_in, "c1", c_mid);
  const ir::TensorId T1 = add_fmap("T1", "c1", c_mid);
  const ir::TensorId W2 = add_weight("W2", "c1", c_mid, "c2", c_mid);
  const ir::TensorId T2 = add_fmap("T2", "c2", c_mid);
  const ir::TensorId W3 = add_weight("W3", "c2", c_mid, "c3", c_in);
  const ir::TensorId T3 = add_fmap("T3", "c3", c_in);
  const ir::TensorId Out = add_fmap("Out", "c3", c_in);

  auto conv = [&](const std::string& name, ir::TensorId in, ir::TensorId weight,
                  ir::TensorId out, const std::string& rin, i64 cin, const std::string& rout,
                  i64 cout, i64 window) {
    ir::EinsumOp op = dag.new_op();
    op.name = name;
    op.inputs = {in, weight};
    op.output = out;
    // Contracted rank keeps the input channel-rank name; a kh*kw window
    // multiplies its effective traversal extent (im2col).
    op.ranks = {ir::OpRank{"m", m, false, -1},
                ir::OpRank{rin, cin, true, cin * window},
                ir::OpRank{rout, cout, false, -1}};
    op.macs_override = m * cin * window * cout;
    const ir::OpId o = dag.add_op(std::move(op));
    if (auto p = dag.producer(in)) dag.add_edge(*p, o, in);
    return o;
  };

  conv("conv0", Tprev, W0, T0, "c_p", c_in, "c0", c_in, 1);
  conv("conv1", T0, W1, T1, "c0", c_in, "c1", c_mid, 1);
  conv("conv2", T1, W2, T2, "c1", c_mid, "c2", c_mid, shape.kernel * shape.kernel);
  conv("conv3", T2, W3, T3, "c2", c_mid, "c3", c_in, 1);

  {
    // Elementwise residual add: Out = T3 + T0 (the skip consumer).
    ir::EinsumOp op = dag.new_op();
    op.name = "add";
    op.kind = ir::OpKind::TensorMac;  // modelled as a MAC op so it can pipeline
    op.inputs = {T3, T0};
    op.output = Out;
    op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"c3", c_in, false, -1}};
    op.macs_override = m * c_in;
    const ir::OpId o = dag.add_op(std::move(op));
    dag.add_edge(*dag.producer(T3), o, T3);
    dag.add_edge(*dag.producer(T0), o, T0);
  }
  dag.mark_result(Out);

  dag.validate();
  return dag;
}

ir::TensorDag build_resnet_stack_dag(const ResNetBlockShape& shape, i64 blocks) {
  CELLO_CHECK(blocks >= 1);
  ir::TensorDag dag;
  const i64 m = shape.spatial;
  const i64 c_in = shape.in_channels;
  const i64 c_mid = shape.bottleneck;
  const Bytes w = shape.word_bytes;

  auto add_fmap = [&](const std::string& name, const std::string& chan_rank, i64 channels) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", chan_rank};
    t.dims = {m, channels};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };
  auto add_weight = [&](const std::string& name, const std::string& rin, i64 cin,
                        const std::string& rout, i64 cout) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {rin, rout};
    t.dims = {cin, cout};
    t.word_bytes = w;
    const ir::TensorId id = dag.add_tensor(std::move(t));
    dag.mark_external(id);
    return id;
  };
  auto conv = [&](const std::string& name, ir::TensorId in, ir::TensorId weight,
                  ir::TensorId out, const std::string& rin, i64 cin, const std::string& rout,
                  i64 cout, i64 window) {
    ir::EinsumOp op = dag.new_op();
    op.name = name;
    op.inputs = {in, weight};
    op.output = out;
    op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{rin, cin, true, cin * window},
                ir::OpRank{rout, cout, false, -1}};
    op.macs_override = m * cin * window * cout;
    const ir::OpId o = dag.add_op(std::move(op));
    if (auto p = dag.producer(in)) dag.add_edge(*p, o, in);
    return o;
  };

  // Stack input from a producing conv so the first skip is a real hold edge.
  ir::TensorId in_prev = add_fmap("T_prev", "c_p0", c_in);
  dag.mark_external(in_prev);
  const ir::TensorId W_in = add_weight("W_in", "c_p0", c_in, "cB0", c_in);
  ir::TensorId block_in = add_fmap("B0_in", "cB0", c_in);
  conv("stem", in_prev, W_in, block_in, "c_p0", c_in, "cB0", c_in, 1);
  std::string in_rank = "cB0";

  for (i64 b = 1; b <= blocks; ++b) {
    const std::string v = "_b" + std::to_string(b);
    const std::string r1 = "c1" + v, r2 = "c2" + v, r3 = "cB" + std::to_string(b);
    const ir::TensorId W1 = add_weight("W1" + v, in_rank, c_in, r1, c_mid);
    const ir::TensorId T1 = add_fmap("T1" + v, r1, c_mid);
    const ir::TensorId W2 = add_weight("W2" + v, r1, c_mid, r2, c_mid);
    const ir::TensorId T2 = add_fmap("T2" + v, r2, c_mid);
    const ir::TensorId W3 = add_weight("W3" + v, r2, c_mid, r3, c_in);
    const ir::TensorId T3 = add_fmap("T3" + v, r3, c_in);
    const ir::TensorId Out = add_fmap("B" + std::to_string(b) + "_out", r3, c_in);

    conv("conv1" + v, block_in, W1, T1, in_rank, c_in, r1, c_mid, 1);
    conv("conv2" + v, T1, W2, T2, r1, c_mid, r2, c_mid, shape.kernel * shape.kernel);
    conv("conv3" + v, T2, W3, T3, r2, c_mid, r3, c_in, 1);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "add" + v;
      op.inputs = {T3, block_in};
      op.output = Out;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{r3, c_in, false, -1}};
      op.macs_override = m * c_in;
      const ir::OpId o = dag.add_op(std::move(op));
      dag.add_edge(*dag.producer(T3), o, T3);
      dag.add_edge(*dag.producer(block_in), o, block_in);
    }
    block_in = Out;
    in_rank = r3;
  }
  dag.mark_result(block_in);
  dag.validate();
  return dag;
}

}  // namespace cello::workloads
