// Transformer autoregressive decode: per-layer attention + MLP blocks over
// an append-only KV cache.
//
// Each decode step t (t = 0..decode_steps-1) processes ONE token through
// every layer l:
//   qkv_l@t = x_l@t . Wqkv_l          fused Q/K/V projection
//   K_l@{t+1} = append(K_l@t, k_t)    cache append — extent grows to seq+t+1
//   V_l@{t+1} = append(V_l@t, v_t)
//   att_l@t = q_t . K_l@{t+1}^T       QK^T against the cached keys
//   ctx_l@t = softmax(att_l@t) . V_l@{t+1}
//   out_l@t = ctx_l@t . Wo_l
//   f_l@t   = out_l@t . W1_l          MLP up-projection
//   y_l@t   = f_l@t . W2_l            MLP down-projection -> x_{l+1}@t
//
// The K/V instances follow the '@' versioning convention, so the AddressMap
// folds each layer's chain onto one base whose footprint is the FINAL extent,
// while every instance carries its true per-step extent (seq + t) — and the
// chain is annotated append-only via TensorDag::mark_append, so KV-aware
// buffer policies price each step's write as one appended row instead of a
// full cache rewrite.  Weights are externals re-read every step: exactly the
// residency battle (weights vs growing cache) real decode accelerators fight.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct LlmShape {
  i64 layers = 2;        ///< transformer layers
  i64 heads = 8;         ///< attention (query) heads
  i64 d_model = 512;     ///< model width; head_dim = d_model / heads
  i64 seq = 128;         ///< prefill context length (KV extent at step 0)
  i64 decode_steps = 8;  ///< autoregressive decode steps
  i64 d_ff = 0;          ///< MLP hidden width; 0 = 4 * d_model
  i64 gqa = 0;           ///< KV heads (grouped-query attention); 0 = heads
  Bytes word_bytes = 2;
};

ir::TensorDag build_llm_decode_dag(const LlmShape& shape);

}  // namespace cello::workloads
