// GCN layer workload (Table VI: cora, protein): Y = (A_hat . X) . W.
// Two operators — an SpMM over the normalized adjacency and a dense GEMM —
// joined by a single pipelineable edge (the paper: "the only tensor to be
// reused across operations in a GNN layer is pipelineable", so Cello matches
// FLAT here).
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct GnnShape {
  i64 vertices = 0;      ///< M
  i64 nnz = 0;           ///< adjacency non-zeros
  i64 in_features = 0;   ///< N
  i64 out_features = 0;  ///< O
  Bytes word_bytes = 4;
};

ir::TensorDag build_gnn_dag(const GnnShape& shape);

/// Multi-layer GCN: layer l computes H_l = (A_hat . H_{l-1}) . W_l with a
/// shared hidden width.  The adjacency A_hat is reused by every layer's
/// aggregation — a delayed external reuse CHORD captures — while each H_l
/// pipelines into its transform.
ir::TensorDag build_gnn_multilayer_dag(const GnnShape& shape, i64 layers,
                                       i64 hidden_features = 64);

}  // namespace cello::workloads
