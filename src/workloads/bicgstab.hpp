// BiCGStab workload DAG (Fig. 13 of the paper, N = 1).
//
// Nine operators per iteration: two SpMVs against the external matrix A,
// three contracted-dominant dot products (rho, alpha, omega — 'C' nodes whose
// outputs live in the register file), and four skewed vector updates.  Like
// CG, the vectors p, r, s, v, x all have delayed downstream consumers, so the
// workload exercises CHORD's delayed-writeback path heavily.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct BiCgStabShape {
  i64 m = 0;
  i64 nnz = 0;
  i64 n = 1;  ///< right-hand sides (the paper evaluates N = 1)
  i64 iterations = 10;
  Bytes word_bytes = 4;
};

ir::TensorDag build_bicgstab_dag(const BiCgStabShape& shape);

}  // namespace cello::workloads
