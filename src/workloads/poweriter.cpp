#include "workloads/poweriter.hpp"

#include "common/error.hpp"

namespace cello::workloads {

ir::TensorDag build_power_iteration_dag(const PowerIterShape& shape) {
  CELLO_CHECK(shape.m > 0 && shape.nnz > 0 && shape.iterations > 0);
  ir::TensorDag dag;
  const i64 m = shape.m;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.m);

  ir::TensorDesc a = dag.new_tensor();
  a.name = "A";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = ir::Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const ir::TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  auto add_vec = [&](const std::string& name) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", "n"};
    t.dims = {m, 1};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };
  auto add_scalar = [&](const std::string& name) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"n'", "n"};
    t.dims = {1, 1};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };

  ir::TensorId x_prev = add_vec("x@0");
  dag.mark_external(x_prev);

  for (i64 it = 1; it <= shape.iterations; ++it) {
    const std::string v = "@" + std::to_string(it);

    const ir::TensorId y = add_vec("y" + v);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "spmv" + v;
      op.inputs = {A, x_prev};
      op.output = y;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"k", m, true, occupancy},
                  ir::OpRank{"n", 1, false, -1}};
      op.macs_override = shape.nnz;
      const ir::OpId o = dag.add_op(std::move(op));
      if (auto p = dag.producer(x_prev)) dag.add_edge(*p, o, x_prev);
    }

    const ir::TensorId sigma = add_scalar("sigma" + v);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "norm" + v;
      op.inputs = {y};
      op.output = sigma;
      op.ranks = {ir::OpRank{"m", m, true, -1}, ir::OpRank{"n'", 1, false, -1},
                  ir::OpRank{"n", 1, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      dag.add_edge(*dag.producer(y), o, y);
    }

    const ir::TensorId x = add_vec("x" + v);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "scale" + v;
      op.inputs = {y, sigma};
      op.output = x;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"j", 1, true, -1},
                  ir::OpRank{"n", 1, false, -1}};
      op.macs_override = m;
      const ir::OpId o = dag.add_op(std::move(op));
      dag.add_edge(*dag.producer(y), o, y);
      dag.add_edge(*dag.producer(sigma), o, sigma);
    }
    x_prev = x;
  }
  dag.mark_result(x_prev);
  dag.validate();
  return dag;
}

}  // namespace cello::workloads
