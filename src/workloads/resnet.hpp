// ResNet residual block (Sec. VII-C1: ImageNet conv3_x block 1, 16-bit words).
//
// Convolutions are modelled as im2col GEMMs over M = H*W spatial positions.
// The skip connection makes the block's input tensor a *delayed-hold*
// dependency (Fig. 7, cyan): the whole path to the elementwise add pipelines,
// so the tile is held in the pipeline buffer — the capability SET shares with
// Cello, and FLAT lacks.
//
// Window ranks keep the source channel-rank identity ("c1" with effective
// extent c1*kh*kw), so the shared-rank tests of Algorithm 2 see through the
// im2col transformation.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct ResNetBlockShape {
  i64 spatial = 28 * 28;  ///< H*W of conv3_x
  i64 in_channels = 512;
  i64 bottleneck = 128;
  i64 kernel = 3;         ///< middle conv kernel size
  Bytes word_bytes = 2;   ///< Table VII: 16-bit words for ResNet
};

ir::TensorDag build_resnet_block_dag(const ResNetBlockShape& shape = {});

/// A chain of `blocks` residual blocks (conv3_x has four): each block's add
/// output feeds both the next block's first conv (adjacent) and that block's
/// add (delayed hold), so the stack exercises repeated hold dependencies.
ir::TensorDag build_resnet_stack_dag(const ResNetBlockShape& shape, i64 blocks);

}  // namespace cello::workloads
