// Block Conjugate Gradient workload DAG (Algorithm 1 / Fig. 1 of the paper).
//
// Each CG loop iteration contributes eight operator nodes (the paper's line
// numbers, with line 2 split into its two multiplications as in Fig. 8):
//   1   S      = A (.) P          SpMM, skewed M x N, compressed contraction
//   2a  Delta  = P^T S            contracted-dominant GEMM (K = M)
//   2b  Lambda = Delta^{-1} Gamma small inverse (N x N')
//   3   X      = X + P Lambda     skewed update (delayed self-dependency)
//   4   R      = R - S Lambda     skewed update
//   5   Gamma  = R^T R            contracted-dominant GEMM
//   6   Phi    = Gamma_prev^{-1} Gamma   small inverse
//   7   P      = R + P Phi        skewed update (P feeds 4 ops next iteration)
//
// Tensors carry a stable "base" identity across iterations (S@2 and S@3 are
// versions of the same buffer), which is what CHORD tracks.
#pragma once

#include <string>

#include "ir/dag.hpp"

namespace cello::workloads {

struct CgShape {
  i64 m = 0;          ///< large dimension (matrix rows)
  i64 n = 8;          ///< right-hand sides (paper sweeps 1 and 16)
  i64 nnz = 0;        ///< stored non-zeros of A
  i64 iterations = 10;
  Bytes word_bytes = 4;
};

/// Base tensor name of a per-iteration instance ("S@3" -> "S").
std::string base_name(const std::string& instance_name);

/// Build the CG tensor-dependency DAG over `shape.iterations` loop iterations.
ir::TensorDag build_cg_dag(const CgShape& shape);

}  // namespace cello::workloads
