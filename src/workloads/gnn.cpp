#include "workloads/gnn.hpp"

#include "common/error.hpp"

namespace cello::workloads {

ir::TensorDag build_gnn_dag(const GnnShape& shape) {
  CELLO_CHECK(shape.vertices > 0 && shape.nnz > 0 && shape.in_features > 0 &&
              shape.out_features > 0);
  ir::TensorDag dag;
  const i64 m = shape.vertices, n = shape.in_features, o = shape.out_features;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.vertices);

  ir::TensorDesc a = dag.new_tensor();
  a.name = "A_hat";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = ir::Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const ir::TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  ir::TensorDesc x = dag.new_tensor();
  x.name = "X";
  x.ranks = {"m", "n"};
  x.dims = {m, n};
  x.word_bytes = w;
  const ir::TensorId X = dag.add_tensor(std::move(x));
  dag.mark_external(X);

  ir::TensorDesc wt = dag.new_tensor();
  wt.name = "W";
  wt.ranks = {"n", "o"};
  wt.dims = {n, o};
  wt.word_bytes = w;
  const ir::TensorId W = dag.add_tensor(std::move(wt));
  dag.mark_external(W);

  ir::TensorDesc h = dag.new_tensor();
  h.name = "H";
  h.ranks = {"m", "n"};
  h.dims = {m, n};
  h.word_bytes = w;
  const ir::TensorId H = dag.add_tensor(std::move(h));

  ir::TensorDesc y = dag.new_tensor();
  y.name = "Y";
  y.ranks = {"m", "o"};
  y.dims = {m, o};
  y.word_bytes = w;
  const ir::TensorId Y = dag.add_tensor(std::move(y));

  {
    ir::EinsumOp op = dag.new_op();
    op.name = "aggregate";
    op.inputs = {A, X};
    op.output = H;
    op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"k", m, true, occupancy},
                ir::OpRank{"n", n, false, -1}};
    op.macs_override = shape.nnz * n;
    dag.add_op(std::move(op));
  }
  {
    ir::EinsumOp op = dag.new_op();
    op.name = "transform";
    op.inputs = {H, W};
    op.output = Y;
    op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"n", n, true, -1},
                ir::OpRank{"o", o, false, -1}};
    const ir::OpId t = dag.add_op(std::move(op));
    dag.add_edge(0, t, H);
  }
  dag.mark_result(Y);
  dag.validate();
  return dag;
}

ir::TensorDag build_gnn_multilayer_dag(const GnnShape& shape, i64 layers, i64 hidden_features) {
  CELLO_CHECK(shape.vertices > 0 && shape.nnz > 0 && shape.in_features > 0 &&
              shape.out_features > 0 && layers >= 1);
  ir::TensorDag dag;
  const i64 m = shape.vertices;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.vertices);

  ir::TensorDesc a = dag.new_tensor();
  a.name = "A_hat";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = ir::Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const ir::TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  auto add_fmap = [&](const std::string& name, i64 feats) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", "n"};
    t.dims = {m, feats};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };

  ir::TensorId h_prev = add_fmap("H@0", shape.in_features);
  dag.mark_external(h_prev);
  i64 feats_prev = shape.in_features;

  for (i64 l = 1; l <= layers; ++l) {
    const i64 feats_out = (l == layers) ? shape.out_features : hidden_features;
    const std::string v = "@" + std::to_string(l);

    ir::TensorDesc wt = dag.new_tensor();
    wt.name = "W" + v;
    wt.ranks = {"n", "o"};
    wt.dims = {feats_prev, feats_out};
    wt.word_bytes = w;
    const ir::TensorId W = dag.add_tensor(std::move(wt));
    dag.mark_external(W);

    const ir::TensorId G = add_fmap("G" + v, feats_prev);  // aggregated features
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "aggregate" + v;
      op.inputs = {A, h_prev};
      op.output = G;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"k", m, true, occupancy},
                  ir::OpRank{"n", feats_prev, false, -1}};
      op.macs_override = shape.nnz * feats_prev;
      const ir::OpId o = dag.add_op(std::move(op));
      if (auto p = dag.producer(h_prev)) dag.add_edge(*p, o, h_prev);
    }
    const ir::TensorId H = add_fmap("H" + v, feats_out);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "transform" + v;
      op.inputs = {G, W};
      op.output = H;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"n", feats_prev, true, -1},
                  ir::OpRank{"o", feats_out, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      dag.add_edge(*dag.producer(G), o, G);
    }
    h_prev = H;
    feats_prev = feats_out;
  }
  dag.mark_result(h_prev);
  dag.validate();
  return dag;
}

}  // namespace cello::workloads
