#include "workloads/cg.hpp"

#include "common/error.hpp"

namespace cello::workloads {

std::string base_name(const std::string& instance_name) {
  const auto at = instance_name.find('@');
  return at == std::string::npos ? instance_name : instance_name.substr(0, at);
}

namespace {

using ir::OpKind;
using ir::OpRank;
using ir::Storage;
using ir::TensorDag;
using ir::TensorDesc;
using ir::TensorId;

TensorId add_skewed(TensorDag& dag, const std::string& name, i64 m, i64 n, Bytes word) {
  TensorDesc t = dag.new_tensor();
  t.name = name;
  t.ranks = {"m", "n"};
  t.dims = {m, n};
  t.word_bytes = word;
  return dag.add_tensor(std::move(t));
}

TensorId add_small(TensorDag& dag, const std::string& name, i64 n1, i64 n2, Bytes word) {
  TensorDesc t = dag.new_tensor();
  t.name = name;
  t.ranks = {"n'", "n"};
  t.dims = {n1, n2};
  t.word_bytes = word;
  return dag.add_tensor(std::move(t));
}

}  // namespace

ir::TensorDag build_cg_dag(const CgShape& shape) {
  CELLO_CHECK(shape.m > 0 && shape.n > 0 && shape.nnz > 0 && shape.iterations > 0);
  TensorDag dag;
  const i64 m = shape.m, n = shape.n;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.m);

  // External inputs: the sparse matrix A and the iteration-0 state.
  TensorDesc a = dag.new_tensor();
  a.name = "A";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  TensorId P_prev = add_skewed(dag, "P@0", m, n, w);
  TensorId R_prev = add_skewed(dag, "R@0", m, n, w);
  TensorId X_prev = add_skewed(dag, "X@0", m, n, w);
  TensorId G_prev = add_small(dag, "Gamma@0", n, n, w);
  dag.mark_external(P_prev);
  dag.mark_external(R_prev);
  dag.mark_external(X_prev);
  dag.mark_external(G_prev);

  auto maybe_edge = [&](ir::OpId dst, TensorId t) {
    if (auto p = dag.producer(t)) dag.add_edge(*p, dst, t);
  };

  for (i64 it = 1; it <= shape.iterations; ++it) {
    const std::string v = "@" + std::to_string(it);

    // Line 1: S = A (.) P  — SpMM; the contracted rank is compressed, so its
    // effective traversal extent is the row occupancy and the op stays
    // uncontracted-dominant (the 'U*' node of Fig. 7).
    const TensorId S = add_skewed(dag, "S" + v, m, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "1" + v;
      op.inputs = {A, P_prev};
      op.output = S;
      op.ranks = {OpRank{"m", m, false, -1}, OpRank{"k", m, true, occupancy},
                  OpRank{"n", n, false, -1}};
      op.macs_override = shape.nnz * n;
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, P_prev);
    }

    // Line 2a: Delta = P^T S — contraction over the big m rank ('C' node).
    const TensorId Delta = add_small(dag, "Delta" + v, n, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "2a" + v;
      op.inputs = {P_prev, S};
      op.output = Delta;
      op.ranks = {OpRank{"m", m, true, -1}, OpRank{"n'", n, false, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, P_prev);
      maybe_edge(o, S);
    }

    // Line 2b: Lambda = Delta^{-1} Gamma — small inverse-and-multiply.
    const TensorId Lambda = add_small(dag, "Lambda" + v, n, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "2b" + v;
      op.kind = OpKind::Inverse;
      op.inputs = {Delta, G_prev};
      op.output = Lambda;
      op.ranks = {OpRank{"n'", n, false, -1}, OpRank{"j", n, true, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, Delta);
      maybe_edge(o, G_prev);
    }

    // Line 3: X = X + P Lambda — the delayed self-dependency tensor.
    const TensorId X = add_skewed(dag, "X" + v, m, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "3" + v;
      op.inputs = {X_prev, P_prev, Lambda};
      op.output = X;
      op.ranks = {OpRank{"m", m, false, -1}, OpRank{"j", n, true, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, X_prev);
      maybe_edge(o, P_prev);
      maybe_edge(o, Lambda);
    }

    // Line 4: R = R - S Lambda.
    const TensorId R = add_skewed(dag, "R" + v, m, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "4" + v;
      op.inputs = {R_prev, S, Lambda};
      op.output = R;
      op.ranks = {OpRank{"m", m, false, -1}, OpRank{"j", n, true, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, R_prev);
      maybe_edge(o, S);
      maybe_edge(o, Lambda);
    }

    // Line 5: Gamma = R^T R ('C' node).
    const TensorId Gamma = add_small(dag, "Gamma" + v, n, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "5" + v;
      op.inputs = {R};
      op.output = Gamma;
      op.ranks = {OpRank{"m", m, true, -1}, OpRank{"n'", n, false, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, R);
    }

    // Line 6: Phi = Gamma_prev^{-1} Gamma — small inverse ('inv' node).
    const TensorId Phi = add_small(dag, "Phi" + v, n, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "6" + v;
      op.kind = OpKind::Inverse;
      op.inputs = {G_prev, Gamma};
      op.output = Phi;
      op.ranks = {OpRank{"n'", n, false, -1}, OpRank{"j", n, true, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, G_prev);
      maybe_edge(o, Gamma);
    }

    // Line 7: P = R + P Phi — the new search direction.
    const TensorId P = add_skewed(dag, "P" + v, m, n, w);
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "7" + v;
      op.inputs = {R, P_prev, Phi};
      op.output = P;
      op.ranks = {OpRank{"m", m, false, -1}, OpRank{"j", n, true, -1},
                  OpRank{"n", n, false, -1}};
      const ir::OpId o = dag.add_op(std::move(op));
      maybe_edge(o, R);
      maybe_edge(o, P_prev);
      maybe_edge(o, Phi);
    }

    P_prev = P;
    R_prev = R;
    X_prev = X;
    G_prev = Gamma;
  }

  // The last iteration's X is the solution and must land in memory.
  dag.mark_result(X_prev);

  dag.validate();
  return dag;
}

}  // namespace cello::workloads
