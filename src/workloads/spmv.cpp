#include "workloads/spmv.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cello::workloads {

ir::TensorDag build_spmv_dag(const SpmvShape& shape) {
  CELLO_CHECK(shape.m > 0 && shape.nnz > 0 && shape.n > 0 && shape.iterations > 0);
  ir::TensorDag dag;
  const i64 m = shape.m, n = shape.n;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.m);

  ir::TensorDesc a = dag.new_tensor();
  a.name = "A";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = ir::Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const ir::TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  auto add_iterate = [&](const std::string& name) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {"m", "n"};
    t.dims = {m, n};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };

  ir::TensorId x_prev = add_iterate("x@0");
  dag.mark_external(x_prev);

  for (i64 it = 1; it <= shape.iterations; ++it) {
    const ir::TensorId x = add_iterate("x@" + std::to_string(it));
    ir::EinsumOp op = dag.new_op();
    op.name = "spmv@" + std::to_string(it);
    op.inputs = {A, x_prev};
    op.output = x;
    op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"k", m, true, occupancy},
                ir::OpRank{"n", n, false, -1}};
    op.macs_override = shape.nnz * n;
    const ir::OpId o = dag.add_op(std::move(op));
    if (auto p = dag.producer(x_prev)) dag.add_edge(*p, o, x_prev);
    x_prev = x;
  }

  dag.mark_result(x_prev);
  dag.validate();
  return dag;
}

}  // namespace cello::workloads
