// Standalone SpMV/SpMM streaming workload: per iteration
//   x@{i} = A . x@{i-1}         ('U*', compressed contraction)
//
// The simplest matrix-reuse pattern the paper's buffer policies disagree on:
// A is re-read by every iteration (the delayed external reuse CHORD's PRELUDE
// captures) while each iterate pipelines straight into the next SpMV, with no
// intervening dots or scales (contrast build_power_iteration_dag, which
// breaks the chain with a contracted reduction per step).  n > 1 makes every
// operator an SpMM over n simultaneous vectors.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct SpmvShape {
  i64 m = 0;          ///< matrix rows
  i64 nnz = 0;        ///< stored non-zeros of A
  i64 n = 1;          ///< simultaneous right-hand vectors (1 = classic SpMV)
  i64 iterations = 10;
  Bytes word_bytes = 4;
};

ir::TensorDag build_spmv_dag(const SpmvShape& shape);

}  // namespace cello::workloads
