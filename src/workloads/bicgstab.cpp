#include "workloads/bicgstab.hpp"

#include "common/error.hpp"

namespace cello::workloads {
namespace {

using ir::OpRank;
using ir::TensorDag;
using ir::TensorDesc;
using ir::TensorId;

TensorId add_vector(TensorDag& dag, const std::string& name, i64 m, i64 n, Bytes w) {
  TensorDesc t = dag.new_tensor();
  t.name = name;
  t.ranks = {"m", "n"};
  t.dims = {m, n};
  t.word_bytes = w;
  return dag.add_tensor(std::move(t));
}

TensorId add_scalar(TensorDag& dag, const std::string& name, i64 n, Bytes w) {
  TensorDesc t = dag.new_tensor();
  t.name = name;
  t.ranks = {"n'", "n"};
  t.dims = {n, n};
  t.word_bytes = w;
  return dag.add_tensor(std::move(t));
}

}  // namespace

ir::TensorDag build_bicgstab_dag(const BiCgStabShape& shape) {
  CELLO_CHECK(shape.m > 0 && shape.nnz > 0 && shape.iterations > 0);
  TensorDag dag;
  const i64 m = shape.m, n = shape.n;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.m);

  TensorDesc a = dag.new_tensor();
  a.name = "A";
  a.ranks = {"m", "k"};
  a.dims = {m, m};
  a.word_bytes = w;
  a.storage = ir::Storage::CompressedSparse;
  a.nnz = shape.nnz;
  const TensorId A = dag.add_tensor(std::move(a));
  dag.mark_external(A);

  const TensorId Rhat = add_vector(dag, "r_hat", m, n, w);
  dag.mark_external(Rhat);
  TensorId r_prev = add_vector(dag, "r@0", m, n, w);
  TensorId p_prev = add_vector(dag, "p@0", m, n, w);
  TensorId v_prev = add_vector(dag, "v@0", m, n, w);
  TensorId x_prev = add_vector(dag, "x@0", m, n, w);
  dag.mark_external(r_prev);
  dag.mark_external(p_prev);
  dag.mark_external(v_prev);
  dag.mark_external(x_prev);

  auto maybe_edge = [&](ir::OpId dst, TensorId t) {
    if (auto p = dag.producer(t)) dag.add_edge(*p, dst, t);
  };
  auto dot_op = [&](const std::string& name, std::vector<TensorId> ins, TensorId out) {
    ir::EinsumOp op = dag.new_op();
    op.name = name;
    op.inputs = std::move(ins);
    op.output = out;
    op.ranks = {OpRank{"m", m, true, -1}, OpRank{"n'", n, false, -1}, OpRank{"n", n, false, -1}};
    const ir::OpId o = dag.add_op(std::move(op));
    for (TensorId t : dag.op(o).inputs) maybe_edge(o, t);
    return o;
  };
  auto update_op = [&](const std::string& name, std::vector<TensorId> ins, TensorId out) {
    ir::EinsumOp op = dag.new_op();
    op.name = name;
    op.inputs = std::move(ins);
    op.output = out;
    // Vector update = degenerate skewed GEMM (contracted rank of extent n).
    op.ranks = {OpRank{"m", m, false, -1}, OpRank{"j", n, true, -1}, OpRank{"n", n, false, -1}};
    const ir::OpId o = dag.add_op(std::move(op));
    for (TensorId t : dag.op(o).inputs) maybe_edge(o, t);
    return o;
  };
  auto spmv_op = [&](const std::string& name, TensorId in, TensorId out) {
    ir::EinsumOp op = dag.new_op();
    op.name = name;
    op.inputs = {A, in};
    op.output = out;
    op.ranks = {OpRank{"m", m, false, -1}, OpRank{"k", m, true, occupancy},
                OpRank{"n", n, false, -1}};
    op.macs_override = shape.nnz * n;
    const ir::OpId o = dag.add_op(std::move(op));
    maybe_edge(o, in);
    return o;
  };

  for (i64 it = 1; it <= shape.iterations; ++it) {
    const std::string v = "@" + std::to_string(it);

    const TensorId rho = add_scalar(dag, "rho" + v, n, w);
    dot_op("rho" + v, {Rhat, r_prev}, rho);

    const TensorId p = add_vector(dag, "p" + v, m, n, w);
    update_op("pupd" + v, {r_prev, p_prev, v_prev, rho}, p);

    const TensorId vv = add_vector(dag, "v" + v, m, n, w);
    spmv_op("spmv_v" + v, p, vv);

    const TensorId alpha = add_scalar(dag, "alpha" + v, n, w);
    dot_op("alpha" + v, {Rhat, vv, rho}, alpha);

    const TensorId s = add_vector(dag, "s" + v, m, n, w);
    update_op("supd" + v, {r_prev, vv, alpha}, s);

    const TensorId t = add_vector(dag, "t" + v, m, n, w);
    spmv_op("spmv_t" + v, s, t);

    const TensorId omega = add_scalar(dag, "omega" + v, n, w);
    dot_op("omega" + v, {t, s}, omega);

    const TensorId x = add_vector(dag, "x" + v, m, n, w);
    update_op("xupd" + v, {x_prev, p, s, alpha, omega}, x);

    const TensorId r = add_vector(dag, "r" + v, m, n, w);
    update_op("rupd" + v, {s, t, omega}, r);

    r_prev = r;
    p_prev = p;
    v_prev = vv;
    x_prev = x;
  }
  dag.mark_result(x_prev);

  dag.validate();
  return dag;
}

}  // namespace cello::workloads
