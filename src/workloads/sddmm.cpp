#include "workloads/sddmm.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cello::workloads {

ir::TensorDag build_sddmm_dag(const SddmmShape& shape) {
  CELLO_CHECK(shape.rows > 0 && shape.nnz > 0 && shape.features > 0 && shape.heads > 0);
  ir::TensorDag dag;
  const i64 m = shape.rows, d = shape.features;
  const Bytes w = shape.word_bytes;
  const i64 occupancy = std::max<i64>(1, shape.nnz / shape.rows);

  ir::TensorDesc mask = dag.new_tensor();
  mask.name = "M";
  mask.ranks = {"m", "j"};
  mask.dims = {m, m};
  mask.word_bytes = w;
  mask.storage = ir::Storage::CompressedSparse;
  mask.nnz = shape.nnz;
  const ir::TensorId M = dag.add_tensor(std::move(mask));
  dag.mark_external(M);

  auto add_dense = [&](const std::string& name, const std::string& row_rank) {
    ir::TensorDesc t = dag.new_tensor();
    t.name = name;
    t.ranks = {row_rank, "d"};
    t.dims = {m, d};
    t.word_bytes = w;
    return dag.add_tensor(std::move(t));
  };

  for (i64 h = 1; h <= shape.heads; ++h) {
    // '_' rather than the '@' versioning convention: each head's projections
    // are distinct buffers, and '@' suffixes would make the AddressMap alias
    // them onto one shared base (only the mask M is genuinely shared).
    const std::string v = "_" + std::to_string(h);
    const ir::TensorId Q = add_dense("Q" + v, "m");
    dag.mark_external(Q);
    const ir::TensorId K = add_dense("K" + v, "j");
    dag.mark_external(K);

    ir::TensorDesc s = dag.new_tensor();
    s.name = "S" + v;
    s.ranks = {"m", "j"};
    s.dims = {m, m};
    s.word_bytes = w;
    s.storage = ir::Storage::CompressedSparse;
    s.nnz = shape.nnz;
    const ir::TensorId S = dag.add_tensor(std::move(s));

    ir::OpId sddmm;
    {
      // Only the mask's nnz positions are computed: the "j" rank traverses
      // the row occupancy, and the contraction runs over the d features.
      ir::EinsumOp op = dag.new_op();
      op.name = "sddmm" + v;
      op.inputs = {M, Q, K};
      op.output = S;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"j", m, false, occupancy},
                  ir::OpRank{"d", d, true, -1}};
      op.macs_override = shape.nnz * d;
      sddmm = dag.add_op(std::move(op));
    }

    if (!shape.with_spmm) {
      dag.mark_result(S);
      continue;
    }

    const ir::TensorId V = add_dense("V" + v, "j");
    dag.mark_external(V);
    const ir::TensorId O = add_dense("O" + v, "m");
    {
      ir::EinsumOp op = dag.new_op();
      op.name = "spmm" + v;
      op.inputs = {S, V};
      op.output = O;
      op.ranks = {ir::OpRank{"m", m, false, -1}, ir::OpRank{"j", m, true, occupancy},
                  ir::OpRank{"d", d, false, -1}};
      op.macs_override = shape.nnz * d;
      const ir::OpId o = dag.add_op(std::move(op));
      dag.add_edge(sddmm, o, S);
    }
    dag.mark_result(O);
  }

  dag.validate();
  return dag;
}

}  // namespace cello::workloads
