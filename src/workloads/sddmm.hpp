// Sparse-attention building block: SDDMM followed (optionally) by SpMM.
//
// Per attention head h over a shared sparsity mask M (the graph / attention
// pattern, stored compressed):
//   S@h = M (.) (Q@h K@h^T)     SDDMM — only the nnz positions of M are
//                               computed, contracting the feature rank d
//   O@h = S@h . V@h             SpMM — aggregate values through the scores
//
// The two operators are joined by a pipelineable sparse intermediate (S@h),
// while the mask M is re-read by every head — the same delayed external
// reuse as the solver matrices, at GNN-like operator counts.  SDDMM + SpMM
// is the kernel pair behind sparse transformers and GAT-style models, built
// here from the same src/sparse + src/linalg modelling vocabulary as the
// solver workloads.
#pragma once

#include "ir/dag.hpp"

namespace cello::workloads {

struct SddmmShape {
  i64 rows = 0;            ///< sequence length / graph vertices (M)
  i64 nnz = 0;             ///< stored non-zeros of the mask
  i64 features = 64;       ///< head feature dimension d
  i64 heads = 1;           ///< independent attention heads sharing the mask
  Bytes word_bytes = 4;
  bool with_spmm = true;   ///< false = SDDMM kernels only (no aggregation)
};

ir::TensorDag build_sddmm_dag(const SddmmShape& shape);

}  // namespace cello::workloads
