#include "cache/cache.hpp"

#include "common/error.hpp"

namespace cello::cache {

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Lru: return "LRU";
    case Policy::Brrip: return "BRRIP";
  }
  return "?";
}

SetAssocCache::SetAssocCache(Bytes capacity, u32 line_bytes, u32 associativity, Policy policy)
    : capacity_(capacity), line_bytes_(line_bytes), assoc_(associativity), policy_(policy) {
  CELLO_CHECK(line_bytes_ > 0 && assoc_ > 0);
  const u64 lines = capacity_ / line_bytes_;
  CELLO_CHECK_MSG(lines % assoc_ == 0, "capacity not divisible into sets");
  sets_ = lines / assoc_;
  CELLO_CHECK(sets_ > 0);
  ways_.resize(sets_ * assoc_);
}

size_t SetAssocCache::victim_in_set(u64 set) {
  Way* base = &ways_[set * assoc_];
  // Invalid way first.
  for (u32 w = 0; w < assoc_; ++w)
    if (!base[w].valid) return w;

  if (policy_ == Policy::Lru) {
    size_t victim = 0;
    for (u32 w = 1; w < assoc_; ++w)
      if (base[w].lru_stamp < base[victim].lru_stamp) victim = w;
    return victim;
  }
  // BRRIP: evict the first way predicted "distant" (RRPV==3); if none, age
  // the whole set and rescan — guaranteed to terminate within 3 rounds.
  for (;;) {
    for (u32 w = 0; w < assoc_; ++w)
      if (base[w].rrpv == 3) return w;
    for (u32 w = 0; w < assoc_; ++w) ++base[w].rrpv;
  }
}

void SetAssocCache::access(Addr addr, bool is_write) {
  ++stats_.accesses;
  ++stats_.tag_lookups;
  ++stats_.data_accesses;
  ++clock_;

  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  Way* base = &ways_[set * assoc_];

  for (u32 w = 0; w < assoc_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      ++stats_.hits;
      base[w].lru_stamp = clock_;
      base[w].rrpv = 0;  // near-immediate re-reference on hit
      base[w].dirty = base[w].dirty || is_write;
      return;
    }
  }

  // Miss: allocate (write-allocate for stores too).
  ++stats_.misses;
  stats_.dram_read_bytes += line_bytes_;
  const size_t v = victim_in_set(set);
  Way& way = base[v];
  if (way.valid) {
    ++stats_.evictions;
    if (way.dirty) {
      ++stats_.writebacks;
      stats_.dram_write_bytes += line_bytes_;
    }
  }
  way.valid = true;
  way.tag = tag;
  way.dirty = is_write;
  way.lru_stamp = clock_;
  if (policy_ == Policy::Brrip) {
    // Bimodal insertion: distant (3) most of the time, long (2) every 32nd
    // fill — deterministic counter in place of the paper's epsilon dice.
    way.rrpv = (++brrip_insert_counter_ % 32 == 0) ? 2 : 3;
  } else {
    way.rrpv = 2;
  }
}

void SetAssocCache::access_range(Addr addr, Bytes len, bool is_write) {
  if (len == 0) return;
  const Addr first = addr / line_bytes_;
  const Addr last = (addr + len - 1) / line_bytes_;
  for (Addr line = first; line <= last; ++line) access(line * line_bytes_, is_write);
}

void SetAssocCache::flush() {
  for (auto& w : ways_) {
    if (w.valid && w.dirty) {
      ++stats_.writebacks;
      stats_.dram_write_bytes += line_bytes_;
    }
    w = Way{};
  }
}

bool SetAssocCache::contains(Addr addr) const {
  const u64 set = set_of(addr);
  const u64 tag = tag_of(addr);
  const Way* base = &ways_[set * assoc_];
  for (u32 w = 0; w < assoc_; ++w)
    if (base[w].valid && base[w].tag == tag) return true;
  return false;
}

}  // namespace cello::cache
