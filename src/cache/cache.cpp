#include "cache/cache.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"

namespace cello::cache {

namespace {

bool avx2_disabled_by_env() {
  const char* e = std::getenv("CELLO_DISABLE_AVX2");
  return e != nullptr && *e != '\0' && *e != '0';
}

}  // namespace

const char* to_string(Policy p) {
  switch (p) {
    case Policy::Lru: return "LRU";
    case Policy::Brrip: return "BRRIP";
  }
  return "?";
}

SetAssocCache::SetAssocCache(Bytes capacity, u32 line_bytes, u32 associativity, Policy policy)
    : capacity_(capacity), line_bytes_(line_bytes), assoc_(associativity), policy_(policy) {
  CELLO_CHECK(line_bytes_ > 0 && assoc_ > 0);
  const u64 lines = capacity_ / line_bytes_;
  CELLO_CHECK_MSG(lines % assoc_ == 0, "capacity not divisible into sets");
  sets_ = lines / assoc_;
  CELLO_CHECK(sets_ > 0);
  fast8_ = assoc_ == 8;
#if defined(CELLO_HAVE_AVX2)
  simd_ = fast8_ && __builtin_cpu_supports("avx2") && !avx2_disabled_by_env();
#else
  (void)avx2_disabled_by_env;
#endif
  if (std::has_single_bit(line_bytes_))
    line_shift_ = static_cast<i32>(std::countr_zero(line_bytes_));
  if (std::has_single_bit(sets_)) {
    set_shift_ = static_cast<i32>(std::countr_zero(sets_));
    set_mask_ = sets_ - 1;
  }
  reset();
}

void SetAssocCache::reset() {
  if (fast8_) {
    tags32_.assign(sets_ * assoc_, kInvalidTag32);
    // LRU keeps recency + dirty in the rank words; only BRRIP needs the
    // meta byte lane.  Any initial permutation works for the ranks (fills
    // re-promote in fill order); the identity keeps it readable.
    if (policy_ == Policy::Lru)
      lru_rank_.assign(sets_, 0x0706050403020100ull);
    else
      meta_.assign(sets_ * assoc_, 3);  // clean, RRPV distant
  } else {
    tags_.assign(sets_ * assoc_, kInvalidTag);
    meta_.assign(sets_ * assoc_, 3);
    if (policy_ == Policy::Lru) lru_stamp_.assign(sets_ * assoc_, 0);
  }
  mru_way_.assign(sets_, 0);
  stats_ = CacheStats{};
  clock_ = 0;
  brrip_insert_counter_ = 0;
}

// ---- generic path: any associativity ---------------------------------------

size_t SetAssocCache::victim_in_set_generic(u64 set) {
  const u64* tags = &tags_[set * assoc_];
  // Invalid way first.
  for (u32 w = 0; w < assoc_; ++w)
    if (tags[w] == kInvalidTag) return w;

  if (policy_ == Policy::Lru) {
    const u64* stamps = &lru_stamp_[set * assoc_];
    size_t victim = 0;
    for (u32 w = 1; w < assoc_; ++w)
      if (stamps[w] < stamps[victim]) victim = w;
    return victim;
  }
  // BRRIP: evict the first way predicted "distant" (RRPV==3); if none, age
  // the whole set and rescan — guaranteed to terminate within 3 rounds.
  u8* meta = &meta_[set * assoc_];
  for (;;) {
    for (u32 w = 0; w < assoc_; ++w)
      if ((meta[w] & kRrpvMask) == 3) return w;
    for (u32 w = 0; w < assoc_; ++w) ++meta[w];
  }
}

bool SetAssocCache::touch_line_generic(u64 set, u64 tag, bool is_write) {
  ++clock_;
  const size_t base = set * assoc_;
  u64* tags = &tags_[base];
  const u8 dirty = is_write ? kDirtyBit : 0;

  // MRU probe first, then the associativity-wide scan: a tag lives in at
  // most one way, so the probe order cannot change the hit/miss outcome.
  // (A tag match implies validity: empty ways hold kInvalidTag.)
  u32 w = mru_way_[set];
  if (tags[w] != tag) {
    u32 found = assoc_;
    for (u32 i = 0; i < assoc_; ++i)
      if (tags[i] == tag) {
        found = i;
        break;
      }
    if (found == assoc_) {
      // Miss: allocate (write-allocate for stores too).
      ++stats_.misses;
      stats_.dram_read_bytes += line_bytes_;
      const size_t v = victim_in_set_generic(set);
      if (tags[v] != kInvalidTag) {
        ++stats_.evictions;
        if (meta_[base + v] & kDirtyBit) {
          ++stats_.writebacks;
          stats_.dram_write_bytes += line_bytes_;
        }
      }
      u8 rrpv = 2;
      if (policy_ == Policy::Brrip) {
        // Bimodal insertion: distant (3) most of the time, long (2) every
        // 32nd fill — deterministic counter in place of the paper's epsilon
        // dice.
        rrpv = (++brrip_insert_counter_ % 32 == 0) ? 2 : 3;
      } else {
        lru_stamp_[base + v] = clock_;
      }
      tags[v] = tag;
      meta_[base + v] = dirty | rrpv;
      mru_way_[set] = static_cast<u32>(v);
      return false;
    }
    w = found;
    mru_way_[set] = w;
  }

  // Hit: refresh recency, predict near-immediate re-reference, absorb write.
  if (policy_ == Policy::Lru) lru_stamp_[base + w] = clock_;
  meta_[base + w] = (meta_[base + w] & kDirtyBit) | dirty;
  return true;
}

void SetAssocCache::check_tag32(u64 tag) const {
  CELLO_CHECK_MSG(tag < kInvalidTag32,
                  "address space too large for the compact 8-way tag lane");
}

// ---- 8-way fast path, scalar probe -----------------------------------------

bool SetAssocCache::touch_line8(u64 set, u64 tag, bool is_write) {
  const u32 tag32 = static_cast<u32>(tag);
  const u32* tags = &tags32_[set * 8];

  u32 w = mru_way_[set];
  if (tags[w] != tag32) {
    u32 found = 8;
    for (u32 i = 0; i < 8; ++i)
      if (tags[i] == tag32) {
        found = i;
        break;
      }
    if (found == 8) {
      u32 invalid = 0;
      for (u32 i = 0; i < 8; ++i)
        if (tags[i] == kInvalidTag32) {
          invalid = 1u << i;
          break;
        }
      mru_way_[set] = fill8(set, tag32, invalid, is_write);
      return false;
    }
    w = found;
    mru_way_[set] = w;
  }
  hit_update8(set, w, is_write);
  return true;
}

// ---- public access API ------------------------------------------------------

void SetAssocCache::access(Addr addr, bool is_write) { access_line(line_of(addr), is_write); }

void SetAssocCache::access_line(u64 line, bool is_write) {
  ++stats_.accesses;
  ++stats_.tag_lookups;
  ++stats_.data_accesses;
  const u64 set = set_of_line(line);
  const u64 tag = tag_of_line(line);
  if (fast8_) check_tag32(tag);
  bool hit;
#if defined(CELLO_HAVE_AVX2)
  if (simd_)
    hit = touch_line8_simd(set, tag, is_write);
  else
#endif
    hit = fast8_ ? touch_line8(set, tag, is_write) : touch_line_generic(set, tag, is_write);
  if (hit) ++stats_.hits;
}

void SetAssocCache::access_lines(u64 first_line, u64 count, bool is_write) {
  if (count == 0) return;
  // Tags only grow along the walk: checking the last line covers them all.
  if (fast8_) check_tag32(tag_of_line(first_line + count - 1));
#if defined(CELLO_HAVE_AVX2)
  if (simd_) {
    access_lines_simd(first_line, count, is_write);
    return;
  }
#endif
  stats_.accesses += count;
  stats_.tag_lookups += count;
  stats_.data_accesses += count;

  if (fast8_)
    stats_.hits += walk_lines(first_line, count, [&](u64 set, u64 tag) {
      return touch_line8(set, tag, is_write);
    });
  else
    stats_.hits += walk_lines(first_line, count, [&](u64 set, u64 tag) {
      return touch_line_generic(set, tag, is_write);
    });
}

void SetAssocCache::access_range(Addr addr, Bytes len, bool is_write) {
  if (len == 0) return;
  const u64 first = line_of(addr);
  const u64 last = line_of(addr + len - 1);
  access_lines(first, last - first + 1, is_write);
}

void SetAssocCache::flush() {
  const size_t total = sets_ * assoc_;
  const bool packed_lru = fast8_ && policy_ == Policy::Lru;
  for (size_t i = 0; i < total; ++i) {
    const bool valid = fast8_ ? tags32_[i] != kInvalidTag32 : tags_[i] != kInvalidTag;
    const bool dirty = packed_lru ? ((lru_rank_[i >> 3] >> (8 * (i & 7))) & kRankDirty) != 0
                                  : (meta_[i] & kDirtyBit) != 0;
    if (valid && dirty) {
      ++stats_.writebacks;
      stats_.dram_write_bytes += line_bytes_;
    }
  }
  // Invalidation = resetting the tag lane; stale recency/RRPV metadata is
  // never read before the next fill overwrites it (rank words stay
  // permutations, and fills re-promote in fill order).
  if (fast8_)
    std::fill(tags32_.begin(), tags32_.end(), kInvalidTag32);
  else
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  std::fill(mru_way_.begin(), mru_way_.end(), 0u);
}

u64 SetAssocCache::valid_lines() const {
  u64 n = 0;
  if (fast8_) {
    for (const u32 tag : tags32_) n += tag != kInvalidTag32;
  } else {
    for (const u64 tag : tags_) n += tag != kInvalidTag;
  }
  return n;
}

bool SetAssocCache::contains_line(u64 line) const {
  const u64 tag = tag_of_line(line);
  const u64 set = set_of_line(line);
  if (fast8_) {
    if (tag >= kInvalidTag32) return false;
    const u32 tag32 = static_cast<u32>(tag);
    const u32* tags = &tags32_[set * 8];
    for (u32 w = 0; w < 8; ++w)
      if (tags[w] == tag32) return true;
    return false;
  }
  const u64* tags = &tags_[set * assoc_];
  for (u32 w = 0; w < assoc_; ++w)
    if (tags[w] == tag) return true;
  return false;
}

#if !defined(CELLO_HAVE_AVX2)
// Stubs so the class links when the AVX2 translation unit is compiled out;
// simd_ is never set in that configuration.
bool SetAssocCache::touch_line8_simd(u64, u64, bool) { return false; }
void SetAssocCache::access_lines_simd(u64, u64, bool) {}
#endif

}  // namespace cello::cache
