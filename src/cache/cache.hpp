// Set-associative cache simulator with LRU and BRRIP replacement — the
// implicit-buffer baselines of Table IV (Flex+LRU, Flex+BRRIP).
//
// Write-allocate, write-back.  Every access pays an associativity-wide tag
// lookup (tracked for the Fig. 15 energy comparison); misses fill a line from
// DRAM and dirty evictions write one back.
//
// The hot path is engineered for trace-driven throughput while staying
// bit-identical to the straightforward model.  The default 8-way geometry
// runs a compact struct-of-arrays layout sized to stay resident in the host
// L2 even for multi-MiB simulated caches:
//  * a u32 tag lane (validity folded in as a sentinel) — one 32-byte vector
//    compare probes the whole set on AVX2 hosts (runtime dispatch, see
//    cache_simd.cpp), a scalar early-exit scan elsewhere;
//  * LRU recency as packed byte ranks, one u64 per set: promoting a way and
//    finding the oldest are a handful of branchless SWAR ops instead of an
//    associativity-wide stamp argmin over a second 64-byte lane;
//  * BRRIP RRPVs packed next to the dirty bit in a byte lane; the victim
//    search and the aging rounds are SWAR over one u64;
//  * access_lines() walks consecutive lines by stepping the (set, tag) pair
//    instead of re-decomposing each address, coalesces the per-access stats
//    bumps into one update per run, and prefetch_range() lets trace-driven
//    callers (the SpMM gather) hide metadata latency for irregular accesses.
// Power-of-two line sizes and set counts use shift/mask addressing, and a
// division/u64 fallback path covers every other geometry.
//
// Every layout and dispatch target makes identical replacement decisions, so
// stats and metrics do not depend on the host CPU (set CELLO_DISABLE_AVX2=1
// to force the scalar probe; tests assert the paths agree).
#pragma once

#include <bit>
#include <cstring>
#include <vector>

#include "common/types.hpp"

namespace cello::cache {

enum class Policy {
  Lru,
  Brrip,  ///< bimodal RRIP (Jaleel et al.): 2-bit RRPV, mostly-distant insert
};

const char* to_string(Policy p);

class StreamReplayer;

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;
  Bytes dram_read_bytes = 0;
  Bytes dram_write_bytes = 0;
  u64 tag_lookups = 0;  ///< one per access (reads `assoc` tags in parallel)
  u64 data_accesses = 0;

  Bytes dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  SetAssocCache(Bytes capacity, u32 line_bytes, u32 associativity, Policy policy);

  /// One word/line-granule access; the cache operates on aligned lines.
  void access(Addr addr, bool is_write);
  /// Access every line overlapping [addr, addr+len).
  void access_range(Addr addr, Bytes len, bool is_write);

  // ---- line-granularity API (what trace-driven policies use) ---------------
  /// The line index covering `addr`.
  u64 line_of(Addr addr) const {
    return line_shift_ >= 0 ? addr >> line_shift_ : addr / line_bytes_;
  }
  /// One access to line `line` (== access(line * line_bytes, w)).
  void access_line(u64 line, bool is_write);
  /// Access `count` consecutive lines starting at `first_line`, walking the
  /// (set, tag) pair and coalescing the stats updates into one bump.
  void access_lines(u64 first_line, u64 count, bool is_write);
  /// Hint that [addr, addr+len) is about to be accessed: pulls the covering
  /// sets' tag + recency lanes toward the host caches.  No simulated effect.
  void prefetch_range(Addr addr, Bytes len) const {
#if defined(__GNUC__) || defined(__clang__)
    if (len == 0 || !fast8_) return;
    const u64 first_set = set_of_line(line_of(addr));
    const u64 last_set = set_of_line(line_of(addr + len - 1));
    __builtin_prefetch(&tags32_[first_set * 8], 1, 1);
    if (last_set != first_set) __builtin_prefetch(&tags32_[last_set * 8], 1, 1);
    if (policy_ == Policy::Lru)
      __builtin_prefetch(&lru_rank_[first_set], 1, 1);
    else
      __builtin_prefetch(&meta_[first_set * 8], 1, 1);
#else
    (void)addr;
    (void)len;
#endif
  }

  /// Write back all dirty lines (end-of-run drain) and invalidate.
  void flush();

  /// Restore the exact freshly-constructed state — tags invalidated, recency
  /// and RRPV lanes re-seeded, stats and deterministic counters zeroed —
  /// without reallocating the lanes.  Pooled trace-driven policies reset
  /// between runs instead of rebuilding multi-MiB simulated caches.
  void reset();

  bool contains(Addr addr) const { return contains_line(line_of(addr)); }
  bool contains_line(u64 line) const;
  /// Lines currently holding valid data — an on-demand tag-lane scan, meant
  /// for occupancy observability (BufferPolicy::occupancy_bytes), not the
  /// replay hot path.  Keeps the fill paths untouched.
  u64 valid_lines() const;
  const CacheStats& stats() const { return stats_; }

  u32 line_bytes() const { return line_bytes_; }
  u64 num_sets() const { return sets_; }
  u32 associativity() const { return assoc_; }

 private:
  /// The stream replayer (cache_replay.cpp) reproduces this cache's exact
  /// replacement state from a captured access stream: it reads and writes the
  /// lanes directly so snapshots, fast-forward restores, and the compact
  /// AVX-512 engine's final write-back stay bit-identical to direct access.
  friend class StreamReplayer;

  /// Tag-lane sentinels for an empty way.  The 8-way fast path stores tags
  /// as u32 and checks the bound per access: a simulated footprint would
  /// need to exceed line_bytes * sets * 2^32 bytes (petabytes for any real
  /// geometry) to collide.
  static constexpr u64 kInvalidTag = ~0ull;
  static constexpr u32 kInvalidTag32 = ~0u;
  // meta_ byte layout (BRRIP + generic): bit 7 = dirty, bits 0..1 = RRPV.
  static constexpr u8 kDirtyBit = 0x80;
  static constexpr u8 kRrpvMask = 0x03;
  static constexpr u64 kLane = 0x0101010101010101ull;   ///< 1 in every byte
  static constexpr u64 kHigh = 0x8080808080808080ull;   ///< bit 7 of every byte
  // lru_rank_ byte layout (8-way LRU): bits 0..2 = recency rank (0 = MRU),
  // bit 6 = dirty — so a hit is a single read-modify-write of one u64.
  static constexpr u64 kRankLanes = 0x0707070707070707ull;
  static constexpr u64 kRankDirty = 0x40;

  u64 set_of_line(u64 line) const { return set_shift_ >= 0 ? line & set_mask_ : line % sets_; }
  u64 tag_of_line(u64 line) const { return set_shift_ >= 0 ? line >> set_shift_ : line / sets_; }

  // The per-line state machines: return true on hit.  They bump the
  // per-event stats (misses, evictions, writebacks, DRAM bytes) immediately —
  // policies read DRAM deltas mid-run — but leave accesses/hits/tag_lookups/
  // data_accesses to the caller, which coalesces them over a whole run.
  bool touch_line_generic(u64 set, u64 tag, bool is_write);  ///< any associativity
  bool touch_line8(u64 set, u64 tag, bool is_write);         ///< 8-way, scalar probe
  size_t victim_in_set_generic(u64 set);

  // AVX2 twins, defined in cache_simd.cpp (built only when the compiler
  // supports -mavx2; selected at runtime when the CPU does too).
  bool touch_line8_simd(u64 set, u64 tag, bool is_write);
  void access_lines_simd(u64 first_line, u64 count, bool is_write);

  /// Walk `count` consecutive lines, calling touch(set, tag) for each and
  /// returning the number of hits.  The single home of the wrap logic —
  /// every access_lines variant (scalar fast8/generic, AVX2) walks through
  /// here so the bit-identity-critical stepping cannot drift between them.
  template <typename TouchFn>
  u64 walk_lines(u64 first_line, u64 count, TouchFn&& touch) {
    u64 hits = 0;
    if (set_shift_ >= 0) {
      // Power-of-two sets: branch-free (set, tag) from the running line.
      for (u64 line = first_line; line < first_line + count; ++line)
        hits += touch(line & set_mask_, line >> set_shift_) ? 1 : 0;
    } else {
      u64 set = set_of_line(first_line);
      u64 tag = tag_of_line(first_line);
      for (u64 i = 0; i < count; ++i) {
        hits += touch(set, tag) ? 1 : 0;
        // The next consecutive line: sets advance round-robin; the tag
        // bumps on each wrap (line = tag * sets + set).
        if (++set == sets_) {
          set = 0;
          ++tag;
        }
      }
    }
    return hits;
  }

  /// Promote way `w` to MRU in a packed rank word: every byte ranked more
  /// recently (value < rank[w]) ages by one, then rank[w] becomes 0.  Ranks
  /// stay a permutation of 0..7, so LRU order is total and the victim is
  /// unique — exactly the recency order a per-way stamp would give.  The
  /// per-byte dirty bits ride along untouched: the +1 lands in bytes whose
  /// rank is <= 6, so it never carries past bit 2.
  static void rank_promote(u64& ranks, u32 w) {
    const u64 r = (ranks >> (8 * w)) & kRankLanes & 0xFF;
    const u64 geq = ((ranks & kRankLanes) | kHigh) - r * kLane;  // bit7 iff rank >= r
    ranks += (~geq & kHigh) >> 7;                                // +1 where rank < r
    ranks &= ~(kRankLanes & (0xFFull << (8 * w)));               // way w -> rank 0 (MRU)
  }

  /// Index of the unique byte whose rank equals `value` in a packed rank
  /// word.  Borrows in the zero-byte detect only propagate upward, so the
  /// lowest flagged byte is the (unique) zero.
  static u32 rank_find(u64 ranks, u64 value) {
    const u64 x = (ranks & kRankLanes) ^ (value * kLane);
    const u64 z = (x - kLane) & ~x & kHigh;
    return static_cast<u32>(std::countr_zero(z)) >> 3;
  }

  /// Branchless victim among 8 valid ways (no empty way in the set).
  /// Defined inline so both the scalar and the AVX2 translation units fold
  /// it into their miss paths.
  size_t victim_full_set8(u64 set) {
    if (policy_ == Policy::Lru) return rank_find(lru_rank_[set], 7);
    // BRRIP: evict the first way predicted "distant" (RRPV==3); if none, age
    // the whole set and rescan — terminates within 3 rounds.  SWAR over the
    // packed meta lane; aging only runs when every RRPV <= 2, so the
    // per-byte +1 never carries into the dirty bit or a neighboring lane.
    u64 m;
    std::memcpy(&m, &meta_[set * 8], 8);
    size_t v;
    for (;;) {
      const u64 distant = m & (m >> 1) & kLane;  // bit0 set where RRPV == 3
      if (distant != 0) {
        v = static_cast<size_t>(std::countr_zero(distant)) >> 3;
        break;
      }
      m += kLane;
    }
    std::memcpy(&meta_[set * 8], &m, 8);
    return v;
  }

  /// Shared 8-way hit bookkeeping (way `w` of `set` matched).
  void hit_update8(u64 set, u32 w, bool is_write) {
    if (policy_ == Policy::Lru) {
      // One RMW: promote recency and absorb the write's dirty bit.
      u64 ranks = lru_rank_[set];
      rank_promote(ranks, w);
      if (is_write) ranks |= kRankDirty << (8 * w);
      lru_rank_[set] = ranks;
    } else {
      // RRPV -> 0 (near-immediate re-reference), dirty absorbed.
      u8& m = meta_[set * 8 + w];
      m = (m & kDirtyBit) | (is_write ? kDirtyBit : 0);
    }
  }

  /// Shared 8-way miss tail: pick a victim (first way of `invalid_mask` if
  /// any), account the eviction, install the new tag.  Returns the way used.
  u32 fill8(u64 set, u64 tag32, u32 invalid_mask, bool is_write) {
    const size_t base = set * 8;
    ++stats_.misses;
    stats_.dram_read_bytes += line_bytes_;
    const bool lru = policy_ == Policy::Lru;
    size_t v;
    if (invalid_mask != 0) {
      v = static_cast<size_t>(std::countr_zero(invalid_mask));  // first empty way
    } else {
      v = victim_full_set8(set);
      ++stats_.evictions;
      const bool was_dirty = lru ? ((lru_rank_[set] >> (8 * v)) & kRankDirty) != 0
                                 : (meta_[base + v] & kDirtyBit) != 0;
      if (was_dirty) {
        ++stats_.writebacks;
        stats_.dram_write_bytes += line_bytes_;
      }
    }
    tags32_[base + v] = static_cast<u32>(tag32);
    if (lru) {
      u64 ranks = lru_rank_[set];
      rank_promote(ranks, static_cast<u32>(v));
      ranks &= ~(kRankDirty << (8 * v));
      if (is_write) ranks |= kRankDirty << (8 * v);
      lru_rank_[set] = ranks;
    } else {
      // Bimodal insertion: distant (3) most of the time, long (2) every 32nd
      // fill — deterministic counter in place of the paper's epsilon dice.
      const u8 rrpv = (++brrip_insert_counter_ % 32 == 0) ? 2 : 3;
      meta_[base + v] = (is_write ? kDirtyBit : 0) | rrpv;
    }
    return static_cast<u32>(v);
  }

  /// The 8-way layout stores u32 tags; enforce the (petabyte-scale) bound.
  /// Out-of-line so the cold throw machinery never bloats the touch loops —
  /// callers check once per walk (tags only grow along a line walk).
  void check_tag32(u64 tag) const;

  Bytes capacity_;
  u32 line_bytes_;
  u32 assoc_;
  u64 sets_;
  Policy policy_;
  bool fast8_ = false;   ///< assoc == 8: compact layout + branchless victims
  bool simd_ = false;    ///< fast8 + compiled-in + CPU-supported AVX2 probe
  i32 line_shift_ = -1;  ///< log2(line_bytes) when a power of two, else -1
  i32 set_shift_ = -1;   ///< log2(sets) when a power of two, else -1
  u64 set_mask_ = 0;
  // Set-major state.  The 8-way fast path uses {tags32_, meta_, lru_rank_};
  // every other associativity uses {tags_, meta_, lru_stamp_}.
  std::vector<u32> tags32_;     ///< fast8: kInvalidTag32 = empty way
  std::vector<u64> tags_;       ///< generic: kInvalidTag = empty way
  std::vector<u8> meta_;        ///< dirty | RRPV, sets_ * assoc_
  std::vector<u64> lru_rank_;   ///< fast8 LRU: packed recency ranks, one u64 per set
  std::vector<u64> lru_stamp_;  ///< generic LRU: per-way recency clock
  std::vector<u32> mru_way_;    ///< scalar probes: per set, way of the last hit/fill
  CacheStats stats_;
  u64 clock_ = 0;
  u64 brrip_insert_counter_ = 0;
};

}  // namespace cello::cache
