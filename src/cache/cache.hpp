// Set-associative cache simulator with LRU and BRRIP replacement — the
// implicit-buffer baselines of Table IV (Flex+LRU, Flex+BRRIP).
//
// Write-allocate, write-back.  Every access pays an associativity-wide tag
// lookup (tracked for the Fig. 15 energy comparison); misses fill a line from
// DRAM and dirty evictions write one back.
#pragma once

#include <vector>

#include "common/types.hpp"

namespace cello::cache {

enum class Policy {
  Lru,
  Brrip,  ///< bimodal RRIP (Jaleel et al.): 2-bit RRPV, mostly-distant insert
};

const char* to_string(Policy p);

struct CacheStats {
  u64 accesses = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;
  Bytes dram_read_bytes = 0;
  Bytes dram_write_bytes = 0;
  u64 tag_lookups = 0;  ///< one per access (reads `assoc` tags in parallel)
  u64 data_accesses = 0;

  Bytes dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
  double hit_rate() const {
    return accesses == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(accesses);
  }
};

class SetAssocCache {
 public:
  SetAssocCache(Bytes capacity, u32 line_bytes, u32 associativity, Policy policy);

  /// One word/line-granule access; the cache operates on aligned lines.
  void access(Addr addr, bool is_write);
  /// Access every line overlapping [addr, addr+len).
  void access_range(Addr addr, Bytes len, bool is_write);

  /// Write back all dirty lines (end-of-run drain) and invalidate.
  void flush();

  bool contains(Addr addr) const;
  const CacheStats& stats() const { return stats_; }

  u32 line_bytes() const { return line_bytes_; }
  u64 num_sets() const { return sets_; }
  u32 associativity() const { return assoc_; }

 private:
  struct Way {
    u64 tag = 0;
    bool valid = false;
    bool dirty = false;
    u64 lru_stamp = 0;   ///< LRU
    u32 rrpv = 3;        ///< BRRIP (2-bit re-reference prediction value)
  };

  u64 set_of(Addr addr) const { return (addr / line_bytes_) % sets_; }
  u64 tag_of(Addr addr) const { return (addr / line_bytes_) / sets_; }
  size_t victim_in_set(u64 set);

  Bytes capacity_;
  u32 line_bytes_;
  u32 assoc_;
  u64 sets_;
  Policy policy_;
  std::vector<Way> ways_;  // sets_ * assoc_, set-major
  CacheStats stats_;
  u64 clock_ = 0;
  u64 brrip_insert_counter_ = 0;
};

}  // namespace cello::cache
