#include "cache/cache_replay.hpp"

#include <algorithm>
#include <cstring>

#include "common/error.hpp"

namespace cello::cache {

namespace {

CacheStats stats_add(const CacheStats& a, const CacheStats& b) {
  CacheStats r;
  r.accesses = a.accesses + b.accesses;
  r.hits = a.hits + b.hits;
  r.misses = a.misses + b.misses;
  r.evictions = a.evictions + b.evictions;
  r.writebacks = a.writebacks + b.writebacks;
  r.dram_read_bytes = a.dram_read_bytes + b.dram_read_bytes;
  r.dram_write_bytes = a.dram_write_bytes + b.dram_write_bytes;
  r.tag_lookups = a.tag_lookups + b.tag_lookups;
  r.data_accesses = a.data_accesses + b.data_accesses;
  return r;
}

CacheStats stats_sub(const CacheStats& a, const CacheStats& b) {
  CacheStats r;
  r.accesses = a.accesses - b.accesses;
  r.hits = a.hits - b.hits;
  r.misses = a.misses - b.misses;
  r.evictions = a.evictions - b.evictions;
  r.writebacks = a.writebacks - b.writebacks;
  r.dram_read_bytes = a.dram_read_bytes - b.dram_read_bytes;
  r.dram_write_bytes = a.dram_write_bytes - b.dram_write_bytes;
  r.tag_lookups = a.tag_lookups - b.tag_lookups;
  r.data_accesses = a.data_accesses - b.data_accesses;
  return r;
}

CacheStats stats_scale(const CacheStats& a, u64 m) {
  CacheStats r;
  r.accesses = a.accesses * m;
  r.hits = a.hits * m;
  r.misses = a.misses * m;
  r.evictions = a.evictions * m;
  r.writebacks = a.writebacks * m;
  r.dram_read_bytes = a.dram_read_bytes * m;
  r.dram_write_bytes = a.dram_write_bytes * m;
  r.tag_lookups = a.tag_lookups * m;
  r.data_accesses = a.data_accesses * m;
  return r;
}

u64 blob_hash(const std::vector<u8>& blob) {
  // FNV-1a over u64 words; save_state blobs of one replayer share a size, so
  // the tail handling only has to be consistent, not canonical.
  u64 h = 0xcbf29ce484222325ull;
  size_t i = 0;
  for (; i + 8 <= blob.size(); i += 8) {
    u64 w;
    std::memcpy(&w, blob.data() + i, 8);
    h = (h ^ w) * 0x100000001b3ull;
  }
  u64 tail = 0;
  if (i < blob.size()) {
    std::memcpy(&tail, blob.data() + i, blob.size() - i);
    h = (h ^ tail) * 0x100000001b3ull;
  }
  return h;
}

/// Stored snapshots are capped: every snapshot must stay addressable by
/// occurrence index for the fast-forward arithmetic, so once the cap is hit
/// the replayer gives up on cycle detection instead of evicting.  BRRIP's
/// bimodal counter bounds real cycles at 32 occurrences; LRU converges in a
/// handful.
constexpr size_t kMaxSnapshots = 40;

}  // namespace

StreamReplayer::StreamReplayer(SetAssocCache& cache, const ReplaySpans& spans)
    : cache_(cache), spans_(spans) {
  CELLO_CHECK_MSG(cache_.stats_.accesses == 0 && cache_.stats_.misses == 0,
                  "stream replay requires a freshly reset cache");
  // Compact-engine eligibility: the 8-way shift/mask geometry on an AVX-512
  // host, with every tag the stream can touch rebasable into the u8 lane
  // (0xFF is the empty-way sentinel).
  bool compact = cache_.fast8_ && cache_.line_shift_ >= 0 && cache_.set_shift_ >= 0 &&
                 spans_.addr != nullptr && detail::avx512_runtime();
  if (compact) {
    const u64 min_line = spans_.min_addr >> cache_.line_shift_;
    const u64 max_line = spans_.max_addr >> cache_.line_shift_;
    // Set-aligned base so rebasing shifts tags without disturbing set bits.
    const u64 base_line = min_line & ~cache_.set_mask_;
    const u64 base_tag = base_line >> cache_.set_shift_;
    const u64 max_tag = max_line >> cache_.set_shift_;
    compact = max_tag < SetAssocCache::kInvalidTag32 && max_tag - base_tag < 0xFF;
    if (compact) {
      state_.sets = cache_.sets_;
      state_.set_mask = cache_.set_mask_;
      state_.set_shift = cache_.set_shift_;
      state_.line_shift = cache_.line_shift_;
      state_.line_bytes = cache_.line_bytes_;
      state_.base_tag = static_cast<u32>(base_tag);
      state_.policy = cache_.policy_;
      // +64B / +8 words of tail padding keep the masked group loads inside
      // the allocations at the last sets.
      state_.tags.assign(state_.sets * 8 + 64, 0xFF);
      state_.aux.assign(state_.sets + 8, state_.policy == Policy::Lru
                                             ? 0x0706050403020100ull   // identity ranks
                                             : 0x0303030303030303ull); // clean, distant
    }
  }
  compact_ = compact;
  // The generic (non-8-way) layout stamps recency with a monotonic clock, so
  // its state never revisits itself — no point snapshotting.
  can_cycle_ = compact_ || cache_.fast8_;
}

void StreamReplayer::run_steps(size_t step_begin, size_t step_end, ReplayService* out) {
  if (step_begin == step_end) return;
  const u32* op_end = spans_.op_end;
  size_t span = step_begin == 0 ? 0 : op_end[step_begin - 1];
  if (compact_) {
    for (size_t i = step_begin; i < step_end; ++i) {
      const size_t e = op_end[i];
      const Bytes r0 = state_.s.dram_read, w0 = state_.s.dram_write;
      detail::replay_spans_avx512(state_, spans_.addr, spans_.len, spans_.write, span, e);
      out[i - step_begin] = {state_.s.dram_read - r0, state_.s.dram_write - w0};
      span = e;
    }
    return;
  }
  const size_t total = op_end[step_end - 1];
  for (size_t i = step_begin; i < step_end; ++i) {
    const size_t e = op_end[i];
    const Bytes r0 = cache_.stats_.dram_read_bytes, w0 = cache_.stats_.dram_write_bytes;
    for (size_t j = span; j < e; ++j) {
      // The capture drops prefetch hints; replay re-issues its own lookahead.
      if (j + 4 < total) cache_.prefetch_range(spans_.addr[j + 4], spans_.len[j + 4]);
      cache_.access_range(spans_.addr[j], spans_.len[j], spans_.write[j] != 0);
    }
    out[i - step_begin] = {cache_.stats_.dram_read_bytes - r0,
                          cache_.stats_.dram_write_bytes - w0};
    span = e;
  }
}

namespace {

/// Canonicalize one LRU set: emit valid (tag, dirty) pairs in recency order,
/// invalid ways last, ranks re-seated as the identity permutation.
///
/// LRU outcomes are invariant under way permutation — a hit is a tag lookup,
/// the eviction victim is the rank-7 *tag*, and fills into invalid ways pick
/// by way index but only decide placement, never traffic.  Identical access
/// sequences therefore drive permuted states to permuted (equivalent) states
/// forever: raw way-major blobs never repeat even when the replacement state
/// has converged.  The canonical form is the unique equivalent concrete state
/// with ranks 0..7 seated at ways 0..7 (so restore stays a straight memcpy);
/// under it the stack property makes CG-style periodic streams converge after
/// one or two occurrences.  BRRIP gets no such form — its RRPV==3 victim scan
/// picks the lowest way *index*, so placement does change future traffic.
template <typename TagT>
void canonicalize_lru_set(const TagT* tags_in, u64 rank_word, TagT invalid, u8 dirty_bit,
                          TagT* tags_out, u8* rank_out) {
  TagT by_rank_tag[8];
  u8 by_rank_dirty[8];
  u8 by_rank_valid[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  for (int w = 0; w < 8; ++w) {
    const u8 a = static_cast<u8>(rank_word >> (8 * w));
    const u8 r = a & 7;
    by_rank_tag[r] = tags_in[w];
    by_rank_dirty[r] = a & dirty_bit;
    by_rank_valid[r] = tags_in[w] != invalid;
  }
  int pos = 0;
  for (int r = 0; r < 8; ++r) {
    if (!by_rank_valid[r]) continue;
    tags_out[pos] = by_rank_tag[r];
    rank_out[pos] = static_cast<u8>(pos) | by_rank_dirty[r];
    ++pos;
  }
  for (; pos < 8; ++pos) {
    tags_out[pos] = invalid;
    rank_out[pos] = static_cast<u8>(pos);
  }
}

}  // namespace

void StreamReplayer::save_state(std::vector<u8>& blob) const {
  // The blob is everything future replacement decisions can read: tags, the
  // recency/RRPV + dirty lane, and the bimodal counter modulo its period.
  // LRU lanes are canonicalized (see canonicalize_lru_set); mru_way_ is a
  // probe-order hint — it cannot change any outcome, and including it would
  // hide real cycles.
  if (compact_) {
    const size_t nt = state_.sets * 8;
    blob.resize(nt + nt + 1);
    if (state_.policy == Policy::Lru) {
      for (u64 s = 0; s < state_.sets; ++s)
        canonicalize_lru_set<u8>(&state_.tags[s * 8], state_.aux[s], u8{0xFF}, u8{0x40},
                                 blob.data() + s * 8, blob.data() + nt + s * 8);
    } else {
      std::memcpy(blob.data(), state_.tags.data(), nt);
      std::memcpy(blob.data() + nt, state_.aux.data(), nt);
    }
    blob[nt + nt] = static_cast<u8>(state_.counter % 32);
    return;
  }
  const size_t nt = cache_.sets_ * 8 * sizeof(u32);
  const bool lru = cache_.policy_ == Policy::Lru;
  const size_t na = cache_.sets_ * 8;  // rank words and meta bytes: 8B per set
  blob.resize(nt + na + 1);
  if (lru) {
    for (u64 s = 0; s < cache_.sets_; ++s) {
      u32 ct[8];
      canonicalize_lru_set<u32>(&cache_.tags32_[s * 8], cache_.lru_rank_[s],
                                SetAssocCache::kInvalidTag32,
                                static_cast<u8>(SetAssocCache::kRankDirty), ct,
                                blob.data() + nt + s * 8);
      std::memcpy(blob.data() + s * 8 * sizeof(u32), ct, sizeof(ct));
    }
  } else {
    std::memcpy(blob.data(), cache_.tags32_.data(), nt);
    std::memcpy(blob.data() + nt, cache_.meta_.data(), na);
  }
  blob[nt + na] = static_cast<u8>(cache_.brrip_insert_counter_ % 32);
}

void StreamReplayer::restore_state(const std::vector<u8>& blob) {
  // Lanes only; the counter byte is mod-32 (detection needs no more) and the
  // absolute counter is restored from the misses invariant by the caller.
  if (compact_) {
    const size_t nt = state_.sets * 8;
    std::memcpy(state_.tags.data(), blob.data(), nt);
    std::memcpy(state_.aux.data(), blob.data() + nt, nt);
    return;
  }
  const size_t nt = cache_.sets_ * 8 * sizeof(u32);
  const bool lru = cache_.policy_ == Policy::Lru;
  const size_t na = cache_.sets_ * 8;
  std::memcpy(cache_.tags32_.data(), blob.data(), nt);
  std::memcpy(lru ? reinterpret_cast<u8*>(cache_.lru_rank_.data()) : cache_.meta_.data(),
              blob.data() + nt, na);
}

CacheStats StreamReplayer::current_stats() const {
  if (!compact_) return cache_.stats_;
  CacheStats c;
  c.accesses = c.tag_lookups = c.data_accesses = state_.s.lines;
  c.hits = state_.s.hits;
  c.misses = state_.s.misses;
  c.evictions = state_.s.evictions;
  c.writebacks = state_.s.writebacks;
  c.dram_read_bytes = state_.s.dram_read;
  c.dram_write_bytes = state_.s.dram_write;
  return c;
}

void StreamReplayer::set_stats(const CacheStats& st) {
  if (!compact_) {
    cache_.stats_ = st;
    return;
  }
  state_.s.lines = st.accesses;
  state_.s.hits = st.hits;
  state_.s.misses = st.misses;
  state_.s.evictions = st.evictions;
  state_.s.writebacks = st.writebacks;
  state_.s.dram_read = st.dram_read_bytes;
  state_.s.dram_write = st.dram_write_bytes;
}

void StreamReplayer::run_prefix() {
  pre_v_.resize(spans_.prefix_steps);
  run_steps(0, spans_.prefix_steps, pre_v_.data());
  if (can_cycle_ && spans_.period_steps != 0 && spans_.period_count != 0) {
    Snapshot s0;
    save_state(s0.blob);
    s0.hash = blob_hash(s0.blob);
    s0.stats = current_stats();
    snaps_.push_back(std::move(s0));
  }
}

void StreamReplayer::run_occurrence() {
  if (converged_ || spans_.period_steps == 0 || occ_ >= spans_.period_count) return;
  const size_t L = spans_.period_steps;
  const size_t executed = static_cast<size_t>(occ_);
  occ_v_.resize((executed + 1) * L);
  run_steps(spans_.prefix_steps, spans_.prefix_steps + L, occ_v_.data() + executed * L);
  ++occ_;
  if (!can_cycle_ || snaps_.empty()) return;

  Snapshot cur;
  save_state(cur.blob);
  cur.hash = blob_hash(cur.blob);
  cur.stats = current_stats();
  for (size_t j = 0; j < snaps_.size(); ++j) {
    if (snaps_[j].hash == cur.hash && snaps_[j].blob == cur.blob) {
      fast_forward(j, cur.stats);
      return;
    }
  }
  if (snaps_.size() < kMaxSnapshots) {
    snaps_.push_back(std::move(cur));
  } else {
    can_cycle_ = false;
    snaps_.clear();
    snaps_.shrink_to_fit();
  }
}

void StreamReplayer::fast_forward(u64 j, const CacheStats& c_k) {
  // snaps_[i] is (state, stats) after i occurrences; the state after occ_
  // occurrences just matched snaps_[j], so occurrences advance the state
  // through a cycle of length occ_ - j from here on.
  const u64 k = occ_;
  const u64 cyc = k - j;
  const u64 remaining = spans_.period_count - k;
  const u64 full = remaining / cyc;
  const u64 rem = remaining % cyc;
  const CacheStats cycle_delta = stats_sub(c_k, snaps_[j].stats);
  CacheStats fin = stats_add(c_k, stats_scale(cycle_delta, full));
  fin = stats_add(fin, stats_sub(snaps_[j + rem].stats, snaps_[j].stats));
  restore_state(snaps_[j + rem].blob);
  set_stats(fin);
  // The bimodal fill counter bumps exactly once per miss (and only under
  // BRRIP), so the absolute counter is recoverable from the final stats.
  if (compact_) {
    if (state_.policy == Policy::Brrip) state_.counter = state_.s.misses;
  } else if (cache_.policy_ == Policy::Brrip) {
    cache_.brrip_insert_counter_ = cache_.stats_.misses;
  }
  cycle_from_ = j;
  cycle_len_ = cyc;
  converged_ = true;
  occ_ = spans_.period_count;
  snaps_.clear();
  snaps_.shrink_to_fit();
}

void StreamReplayer::run_suffix() {
  suf_v_.resize(spans_.suffix_steps);
  const size_t b = spans_.prefix_steps + spans_.period_steps;
  run_steps(b, b + spans_.suffix_steps, suf_v_.data());
}

void StreamReplayer::finish(std::vector<ReplayService>& services) {
  const size_t P = spans_.prefix_steps;
  const size_t L = spans_.period_steps;
  const size_t N = spans_.period_count;
  services.resize(spans_.schedule_steps);
  std::copy(pre_v_.begin(), pre_v_.end(), services.begin());
  const size_t executed = L == 0 ? 0 : occ_v_.size() / L;
  for (size_t o = 0; o < N; ++o) {
    // Skipped occurrences replay the services of their cycle twin: equal
    // starting states produce equal per-op traffic.
    const size_t src =
        o < executed ? o : cycle_from_ + (o - cycle_from_) % cycle_len_;
    std::copy(occ_v_.begin() + src * L, occ_v_.begin() + (src + 1) * L,
              services.begin() + P + o * L);
  }
  std::copy(suf_v_.begin(), suf_v_.end(), services.begin() + P + N * L);

  if (!compact_) return;
  // Expand the compact state back into the cache's own lanes so flush(),
  // contains(), valid_lines() and stats() behave exactly as after a direct
  // run.  (mru_way_ stays at its reset value: it is a probe hint only.)
  const size_t n = state_.sets * 8;
  for (size_t i = 0; i < n; ++i) {
    const u8 t8 = state_.tags[i];
    cache_.tags32_[i] =
        t8 == 0xFF ? SetAssocCache::kInvalidTag32 : state_.base_tag + t8;
  }
  if (state_.policy == Policy::Lru) {
    std::memcpy(cache_.lru_rank_.data(), state_.aux.data(), state_.sets * sizeof(u64));
  } else {
    std::memcpy(cache_.meta_.data(), state_.aux.data(), state_.sets * 8);
    cache_.brrip_insert_counter_ = state_.s.misses;
  }
  cache_.stats_ = current_stats();
}

void StreamReplayer::run(std::vector<ReplayService>& services) {
  run_prefix();
  for (u64 o = 0; o < spans_.period_count && !converged_; ++o) run_occurrence();
  run_suffix();
  finish(services);
}

}  // namespace cello::cache
