// AVX2 hot loop for the default 8-way geometry: the whole u32 tag lane of a
// set is one 32-byte load, so the match-way and empty-way masks come out of
// one vector compare each with no mispredicting scan.  Compiled with -mavx2
// for this translation unit only; SetAssocCache dispatches here at runtime
// when the CPU supports it (see simd_ in the constructor).
//
// Replacement decisions are identical to the scalar path — victim choice,
// RRPV aging, rank promotion and the BRRIP insertion counter evolve
// bit-identically — so simulation results never depend on the host CPU.
#include "cache/cache.hpp"

#if defined(CELLO_HAVE_AVX2)

#include <immintrin.h>

namespace cello::cache {

namespace {

/// One bit per way: which of the 8 u32 tags equal `needle`.
inline u32 match_mask8(const u32* tags, u32 needle) {
  const __m256i lane = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(tags));
  const __m256i eq = _mm256_cmpeq_epi32(lane, _mm256_set1_epi32(static_cast<int>(needle)));
  return static_cast<u32>(_mm256_movemask_ps(_mm256_castsi256_ps(eq)));
}

}  // namespace

bool SetAssocCache::touch_line8_simd(u64 set, u64 tag, bool is_write) {
  const u32 tag32 = static_cast<u32>(tag);
  const u32* tags = &tags32_[set * 8];
  const u32 match = match_mask8(tags, tag32);
  if (match != 0) {
    hit_update8(set, static_cast<u32>(std::countr_zero(match)), is_write);
    return true;
  }
  fill8(set, tag32, match_mask8(tags, kInvalidTag32), is_write);
  return false;
}

void SetAssocCache::access_lines_simd(u64 first_line, u64 count, bool is_write) {
  stats_.accesses += count;
  stats_.tag_lookups += count;
  stats_.data_accesses += count;

  stats_.hits += walk_lines(first_line, count, [&](u64 set, u64 tag) {
    return touch_line8_simd(set, tag, is_write);
  });
}

}  // namespace cello::cache

#endif  // CELLO_HAVE_AVX2
