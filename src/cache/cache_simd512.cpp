// AVX-512 group kernels for the compact replay engine (StreamReplayer).
//
// Replay walks consecutive lines through consecutive sets with a constant
// tag, so the unit of work is a *group*: up to 8 consecutive sets, one line
// each, processed as one 512-bit lane-parallel step over the compact
// struct-of-arrays state (a u8 tag per way + one aux u64 per set).  Per
// group, each 8-byte lane holds one set; hit detect, invalid-way pick, LRU
// victim/promote and BRRIP victim/aging are SWAR + masked vector ops with no
// per-way branching:
//  * LRU: the packed rank word ages via one masked add (+1 where rank <
//    rank[selected]); the selected way's lane collapses to rank 0 (MRU) with
//    the dirty bit absorbed in the same blend.
//  * BRRIP: the scalar "age until some RRPV == 3" loop is replaced by its
//    closed form — each full missing set ages by (3 - its max RRPV) in one
//    masked add; the bimodal long-vs-distant insert lands on the exact fill
//    the deterministic counter selects via a PDEP over the miss mask.
// Both make bit-for-bit the replacement decisions of SetAssocCache's scalar
// and AVX2 paths (tests assert full-stats identity through replay).
//
// Tags are stored rebased against the stream's address window (tag8 = tag -
// base_tag, 0xFF = empty) so real multi-GiB address spaces fit the byte
// lane; eligibility is checked at StreamReplayer construction.
//
// This TU is compiled with -mavx512f/bw/dq -mbmi2 when the compiler supports
// them (CELLO_HAVE_AVX512); the CPU is probed at runtime and
// CELLO_DISABLE_AVX512=1 forces the portable direct engine.
#include "cache/cache_replay.hpp"

#include <cstdlib>

namespace cello::cache::detail {

namespace {

bool avx512_disabled_by_env() {
  const char* e = std::getenv("CELLO_DISABLE_AVX512");
  return e != nullptr && *e != '\0' && *e != '0';
}

}  // namespace

#if defined(CELLO_HAVE_AVX512)

bool avx512_runtime() {
  // Called once per replayer; re-reads the env so tests can toggle engines.
  return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("bmi2") &&
         !avx512_disabled_by_env();
}

#else

bool avx512_runtime() {
  (void)avx512_disabled_by_env;
  return false;
}

/// Never reached: StreamReplayer only selects the compact engine when
/// avx512_runtime() is true.
void replay_spans_avx512(CompactState&, const Addr*, const u32*, const u8*, size_t, size_t) {}

#endif

}  // namespace cello::cache::detail

#if defined(CELLO_HAVE_AVX512)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace cello::cache::detail {

namespace {

constexpr u64 kLane = 0x0101010101010101ull;  ///< 1 in every byte
constexpr u64 kHigh = 0x8080808080808080ull;  ///< bit 7 of every byte

/// Byte-broadcast within each 8-byte lane: shuffle control replicating lane
/// byte 0 (where the or/max-reduce below lands) across its lane.
inline __m512i lane_bcast0() {
  return _mm512_broadcast_i32x4(_mm_set_epi8(8, 8, 8, 8, 8, 8, 8, 8, 0, 0, 0, 0, 0, 0, 0, 0));
}

/// One group of `k` consecutive LRU sets (lines), all probing `tag8`.
inline void group_lru(CompactState& st, u64 set, u8 tag8, bool w, unsigned k) {
  const u64 slotm = k == 8 ? ~0ull : ((1ull << (8 * k)) - 1);
  u8* tp = &st.tags[set * 8];
  const __m512i T = _mm512_set1_epi8(static_cast<char>(tag8));
  const __m512i K7 = _mm512_set1_epi8(7);
  const __m512i K40 = _mm512_set1_epi8(0x40);
  __m512i Z = _mm512_maskz_loadu_epi8(static_cast<__mmask64>(slotm), tp);
  __m512i R = _mm512_maskz_loadu_epi8(static_cast<__mmask64>(slotm), &st.aux[set]);
  const u64 hit = _mm512_mask_cmpeq_epi8_mask(static_cast<__mmask64>(slotm), Z, T);
  // Collapse the per-way hit bits to one flag byte per set lane.
  u64 hb = hit | (hit >> 4);
  hb |= hb >> 2;
  hb |= hb >> 1;
  hb &= kLane;
  const __m512i Rr = _mm512_and_si512(R, K7);
  const u64 lanem = kLane & slotm;
  u64 sel, sel_miss = 0, victim = 0, mbx = 0, ibx = 0;
  if (hb == lanem) {
    sel = hit;  // every set hit: promote-only fast path
  } else {
    const u64 inv =
        _mm512_mask_cmpeq_epi8_mask(static_cast<__mmask64>(slotm), Z, _mm512_set1_epi8(-1));
    u64 ib = inv | (inv >> 4);
    ib |= ib >> 2;
    ib |= ib >> 1;
    ib &= kLane;
    ibx = ib * 0xFF;                  // byte-expanded "set has an empty way"
    mbx = ((~hb) & lanem) * 0xFF;     // byte-expanded "set missed"
    // Lowest empty way per lane: the borrow of the SWAR decrement only
    // propagates upward, so it clears exactly the bits above the lowest one.
    const u64 invlo = inv & ~((inv | kHigh) - kLane);
    const u64 k7m = _mm512_cmpeq_epi8_mask(Rr, K7);  // rank 7 == LRU way
    victim = (invlo & ibx) | (k7m & ~ibx);
    sel_miss = victim & mbx;
    sel = hit | sel_miss;
  }
  // Age: +1 for every way ranked more recently than the selected way.  The
  // selected way's rank is or-reduced to lane byte 0, then broadcast.
  __m512i rsel = _mm512_maskz_mov_epi8(static_cast<__mmask64>(sel), Rr);
  rsel = _mm512_or_si512(rsel, _mm512_srli_epi64(rsel, 32));
  rsel = _mm512_or_si512(rsel, _mm512_srli_epi64(rsel, 16));
  rsel = _mm512_or_si512(rsel, _mm512_srli_epi64(rsel, 8));
  const __m512i rb = _mm512_shuffle_epi8(rsel, lane_bcast0());
  const u64 klt = _mm512_mask_cmplt_epu8_mask(static_cast<__mmask64>(slotm), Rr, rb);
  const __m512i R2 = _mm512_mask_add_epi8(R, static_cast<__mmask64>(klt), R, _mm512_set1_epi8(1));
  // Selected lane: rank 0 (MRU), dirty preserved on hits / rebuilt on fills.
  const __m512i WV = _mm512_set1_epi8(w ? 0x40 : 0);
  __m512i ch = _mm512_and_si512(_mm512_maskz_mov_epi8(static_cast<__mmask64>(hit), K40), R2);
  ch = _mm512_or_si512(ch, WV);
  _mm512_mask_storeu_epi8(&st.aux[set], static_cast<__mmask64>(slotm),
                          _mm512_mask_mov_epi8(R2, static_cast<__mmask64>(sel), ch));
  const u64 nh = static_cast<u64>(std::popcount(hit));
  st.s.lines += k;
  st.s.hits += nh;
  st.s.misses += k - nh;
  st.s.dram_read += (k - nh) * st.line_bytes;
  if (sel_miss != 0) {
    _mm512_mask_storeu_epi8(tp, static_cast<__mmask64>(sel_miss), T);
    const u64 evsets = mbx & ~ibx;  // missed with no empty way -> eviction
    st.s.evictions += static_cast<u64>(std::popcount(evsets & kLane));
    const u64 kd = _mm512_test_epi8_mask(R, K40);  // pre-update dirty bits
    const u64 wbk = static_cast<u64>(std::popcount(kd & victim & evsets));
    st.s.writebacks += wbk;
    st.s.dram_write += wbk * st.line_bytes;
  }
}

/// One group of `k` consecutive BRRIP sets (lines), all probing `tag8`.
inline void group_brrip(CompactState& st, u64 set, u8 tag8, bool w, unsigned k) {
  const u64 slotm = k == 8 ? ~0ull : ((1ull << (8 * k)) - 1);
  u8* tp = &st.tags[set * 8];
  u8* mp = reinterpret_cast<u8*>(&st.aux[set]);
  const __m512i T = _mm512_set1_epi8(static_cast<char>(tag8));
  const __m512i K3 = _mm512_set1_epi8(3);
  const __m512i K80 = _mm512_set1_epi8(static_cast<char>(0x80));
  const __m512i Z = _mm512_maskz_loadu_epi8(static_cast<__mmask64>(slotm), tp);
  __m512i M = _mm512_maskz_loadu_epi8(static_cast<__mmask64>(slotm), mp);
  const u64 hit = _mm512_mask_cmpeq_epi8_mask(static_cast<__mmask64>(slotm), Z, T);
  u64 hb = hit | (hit >> 4);
  hb |= hb >> 2;
  hb |= hb >> 1;
  hb &= kLane;
  const u64 lanem = kLane & slotm;
  const u64 nh = static_cast<u64>(std::popcount(hit));
  st.s.lines += k;
  st.s.hits += nh;
  st.s.misses += k - nh;
  st.s.dram_read += (k - nh) * st.line_bytes;
  const __m512i WV = _mm512_set1_epi8(w ? static_cast<char>(0x80) : 0);
  if (hb == lanem) {
    // Every set hit: RRPV -> 0, dirty absorbed.
    const __m512i ch = _mm512_or_si512(_mm512_and_si512(M, K80), WV);
    _mm512_mask_storeu_epi8(mp, static_cast<__mmask64>(hit), ch);
    return;
  }
  const u64 inv =
      _mm512_mask_cmpeq_epi8_mask(static_cast<__mmask64>(slotm), Z, _mm512_set1_epi8(-1));
  u64 ib = inv | (inv >> 4);
  ib |= ib >> 2;
  ib |= ib >> 1;
  ib &= kLane;
  const u64 ibx = ib * 0xFF;
  const u64 mbx = ((~hb) & lanem) * 0xFF;
  const u64 invlo = inv & ~((inv | kHigh) - kLane);
  const u64 fullm = mbx & ~ibx;
  if (fullm != 0) {
    // Closed-form aging: each full missing set ages by (3 - its max RRPV) —
    // exactly the number of +1 rounds the scalar victim search would run.
    const __m512i Mr = _mm512_and_si512(M, K3);
    __m512i mx = _mm512_max_epu8(Mr, _mm512_srli_epi64(Mr, 32));
    mx = _mm512_max_epu8(mx, _mm512_srli_epi64(mx, 16));
    mx = _mm512_max_epu8(mx, _mm512_srli_epi64(mx, 8));
    const __m512i mxb = _mm512_shuffle_epi8(mx, lane_bcast0());
    const __m512i add = _mm512_sub_epi8(K3, mxb);
    M = _mm512_mask_add_epi8(M, static_cast<__mmask64>(fullm), M, add);
  }
  const __m512i Mr2 = _mm512_and_si512(M, K3);
  const u64 d3 = _mm512_cmpeq_epi8_mask(Mr2, K3);
  const u64 d3lo = d3 & ~((d3 | kHigh) - kLane);  // first distant way per lane
  const u64 victim = (invlo & ibx) | (d3lo & ~ibx);
  const u64 sel_miss = victim & mbx;
  const __m512i ch = _mm512_or_si512(_mm512_and_si512(M, K80), WV);
  st.s.evictions += static_cast<u64>(std::popcount(fullm & kLane));
  const u64 kd = _mm512_test_epi8_mask(M, K80);  // post-aging == pre-fill dirty
  const u64 wbk = static_cast<u64>(std::popcount(kd & victim & fullm));
  st.s.writebacks += wbk;
  st.s.dram_write += wbk * st.line_bytes;
  // Bimodal insertion: fills land RRPV 3 except the one the deterministic
  // counter picks (every 32nd overall), which lands RRPV 2.  Misses resolve
  // in set order, so the chosen fill is the jstar-th set bit of the miss
  // mask — a single PDEP.
  const u64 nf = k - nh;
  const u64 jstar = 32 - st.counter % 32;
  st.counter += nf;
  __m512i M2 = _mm512_mask_mov_epi8(M, static_cast<__mmask64>(sel_miss),
                                    _mm512_or_si512(WV, K3));
  if (jstar <= nf) {
    const u64 onehot = _pdep_u64(1ull << (jstar - 1), sel_miss);
    M2 = _mm512_mask_mov_epi8(M2, static_cast<__mmask64>(onehot),
                              _mm512_or_si512(WV, _mm512_set1_epi8(2)));
  }
  const __m512i M3 = _mm512_mask_mov_epi8(M2, static_cast<__mmask64>(hit), ch);
  _mm512_mask_storeu_epi8(mp, static_cast<__mmask64>(slotm), M3);
  if (sel_miss != 0) _mm512_mask_storeu_epi8(tp, static_cast<__mmask64>(sel_miss), T);
}

/// Walk `count` consecutive lines: segment at set wraps (the rebased tag is
/// constant within a segment), then feed 8-set groups to the kernel.
template <typename GroupFn>
inline void walk_lines(CompactState& st, u64 first_line, u64 count, bool w, GroupFn&& group) {
  u64 line = first_line, remaining = count;
  while (remaining != 0) {
    u64 set = line & st.set_mask;
    const u64 tag = (line >> st.set_shift) - st.base_tag;
    const u64 n = std::min(remaining, st.sets - set);
    const u8 tag8 = static_cast<u8>(tag);
    u64 left = n;
    while (left != 0) {
      const unsigned k = static_cast<unsigned>(std::min<u64>(left, 8));
      group(st, set, tag8, w, k);
      set += k;
      left -= k;
    }
    line += n;
    remaining -= n;
  }
}

}  // namespace

void replay_spans_avx512(CompactState& st, const Addr* addr, const u32* len, const u8* write,
                         size_t begin, size_t end) {
  const i32 ls = st.line_shift;
  const bool lru = st.policy == Policy::Lru;
  for (size_t si = begin; si < end; ++si) {
    if (si + 4 < end) {
      // Same lookahead the direct path's prefetch_range provides: pull the
      // upcoming span's first set's tag + aux lanes toward the host caches.
      const u64 nset = (addr[si + 4] >> ls) & st.set_mask;
      _mm_prefetch(reinterpret_cast<const char*>(&st.tags[nset * 8]), _MM_HINT_T0);
      _mm_prefetch(reinterpret_cast<const char*>(&st.aux[nset]), _MM_HINT_T0);
    }
    const u64 first = addr[si] >> ls;
    const u64 last = (addr[si] + len[si] - 1) >> ls;
    const bool w = write[si] != 0;
    if (lru)
      walk_lines(st, first, last - first + 1, w, group_lru);
    else
      walk_lines(st, first, last - first + 1, w, group_brrip);
  }
}

}  // namespace cello::cache::detail

#endif  // CELLO_HAVE_AVX512
