// StreamReplayer: the replay half of the capture/replay split.
//
// Consumes a pre-captured access-span view (see sim::AccessStream) and drives
// one SetAssocCache to the exact state + stats the equivalent sequence of
// access_range calls would produce, while converting span traffic back into
// per-scheduled-op DRAM service totals at the recorded op boundaries.
//
// Two engines, selected per cache geometry at construction:
//  * compact: the default 8-way power-of-two geometry on AVX-512 hosts runs a
//    u8 tag lane + one u64 rank/meta lane per set, 8 sets per masked 512-bit
//    group — branch-light, ~3x the per-line throughput of the shipped AVX2
//    probe (see cache_simd512.cpp).  Tags are rebased against the stream's
//    address window so they fit the byte lane; finish() expands the compact
//    state back into the cache's own lanes.
//  * direct: every other geometry (or CELLO_DISABLE_AVX512=1) feeds the spans
//    through the cache's public access_range — trivially bit-identical.
//
// Periodic fast-forward: iterative workloads repeat the same span block per
// iteration (AccessStream detects this at capture).  After each occurrence
// the replayer snapshots the replacement state; once a snapshot repeats the
// remaining occurrences are pure arithmetic — stats advance by the cycle's
// delta times the skipped cycles, per-op services copy cyclically, and the
// state restores from the snapshot the final occurrence would land on.  Both
// engines fast-forward (the direct engine for the 8-way layout); this, not
// raw line throughput, is where the order-of-magnitude sweep speedups on
// CG-style workloads come from.
#pragma once

#include <cstddef>
#include <vector>

#include "cache/cache.hpp"

namespace cello::cache {

/// Borrowed struct-of-arrays view of a captured stream (sim::AccessStream
/// provides one; the cache layer stays independent of sim).
struct ReplaySpans {
  const Addr* addr = nullptr;
  const u32* len = nullptr;
  const u8* write = nullptr;
  const u32* op_end = nullptr;  ///< per materialized step: exclusive span index
  u64 prefix_steps = 0;
  u64 period_steps = 0;   ///< 0 = linear stream
  u64 period_count = 0;
  u64 suffix_steps = 0;
  u64 schedule_steps = 0; ///< prefix + period * count + suffix
  Addr min_addr = 0;
  Addr max_addr = 0;
};

/// Per-scheduled-op DRAM traffic the replayed spans incurred.
struct ReplayService {
  Bytes dram_read = 0;
  Bytes dram_write = 0;
};

namespace detail {

/// Compact-engine counters; expanded into CacheStats at finish() (accesses,
/// tag lookups and data accesses all equal the walked line count).
struct CompactStats {
  u64 lines = 0;
  u64 hits = 0;
  u64 misses = 0;
  u64 evictions = 0;
  u64 writebacks = 0;
  Bytes dram_read = 0;
  Bytes dram_write = 0;
};

/// Compact replacement state: one u8 tag (0xFF = invalid) and one aux byte
/// per way, set-major — 16 bytes per set, L2-resident for multi-MiB caches.
/// aux is the packed LRU rank word (recency in bits 0..2, dirty in 0x40) or
/// the packed BRRIP meta bytes (RRPV in bits 0..1, dirty in 0x80).
struct CompactState {
  u64 sets = 0;
  u64 set_mask = 0;
  i32 set_shift = 0;
  i32 line_shift = 0;
  u32 line_bytes = 0;
  u32 base_tag = 0;  ///< tags stored rebased: tag8 = (line >> set_shift) - base_tag
  Policy policy = Policy::Lru;
  std::vector<u8> tags;
  std::vector<u64> aux;
  u64 counter = 0;  ///< BRRIP bimodal fill counter (always equals misses)
  CompactStats s;
};

/// True when this host can run the AVX-512 group kernels (compiled in,
/// CPU-supported, not disabled via CELLO_DISABLE_AVX512).
bool avx512_runtime();

/// Run spans [begin, end) through the compact state (cache_simd512.cpp).
void replay_spans_avx512(CompactState& st, const Addr* addr, const u32* len, const u8* write,
                         size_t begin, size_t end);

}  // namespace detail

class StreamReplayer {
 public:
  /// Binds one cache (which must be in freshly-reset state) to one span view.
  /// The view must outlive the replayer.
  StreamReplayer(SetAssocCache& cache, const ReplaySpans& spans);

  /// Whole-stream convenience: prefix + every occurrence + suffix + finish.
  void run(std::vector<ReplayService>& services);

  // ---- lockstep interface (replay_many drives N replayers per phase so the
  // shared period block stays hot across engines) ----
  void run_prefix();
  /// One period occurrence; call period_count times.  No-op after the state
  /// cycle is detected and fast-forward has been applied.
  void run_occurrence();
  void run_suffix();
  /// True once the period's cache-state cycle was detected and the remaining
  /// occurrences were fast-forwarded (run_occurrence is a no-op from then on).
  bool converged() const { return converged_; }
  /// Write compact state + stats back into the cache and expand the recorded
  /// per-occurrence services into schedule order (services.size() ==
  /// schedule_steps afterwards).
  void finish(std::vector<ReplayService>& services);

 private:
  /// Replay the spans of materialized steps [step_begin, step_end), recording
  /// one service per step into `out` (contiguous).
  void run_steps(size_t step_begin, size_t step_end, ReplayService* out);
  /// State after `occ_` occurrences matched snapshot `j`: advance stats and
  /// state over the remaining occurrences arithmetically.
  void fast_forward(u64 j, const CacheStats& c_k);
  void save_state(std::vector<u8>& blob) const;
  void restore_state(const std::vector<u8>& blob);
  CacheStats current_stats() const;
  void set_stats(const CacheStats& st);

  SetAssocCache& cache_;
  const ReplaySpans& spans_;
  bool compact_ = false;      ///< AVX-512 compact engine active
  bool can_cycle_ = false;    ///< snapshot/compare supported for this geometry
  detail::CompactState state_;

  // Occurrence bookkeeping.
  u64 occ_ = 0;               ///< occurrences executed or skipped so far
  bool converged_ = false;    ///< fast-forward applied; run_occurrence is a no-op
  struct Snapshot {
    u64 hash = 0;
    std::vector<u8> blob;
    CacheStats stats;
  };
  std::vector<Snapshot> snaps_;        ///< snaps_[j] = state after j occurrences
  std::vector<ReplayService> occ_v_;   ///< per executed occurrence: period_steps services
  std::vector<ReplayService> pre_v_;   ///< prefix services
  std::vector<ReplayService> suf_v_;   ///< suffix services
  u64 cycle_from_ = 0;  ///< j: occurrence index the cycle re-enters
  u64 cycle_len_ = 0;   ///< k - j; 0 until detected
};

}  // namespace cello::cache
