#include "cello/cello.hpp"

#include "common/format.hpp"

namespace cello {

sim::RunMetrics run(const ir::TensorDag& dag, sim::ConfigKind kind,
                    const sim::AcceleratorConfig& arch, const sparse::CsrMatrix* matrix) {
  return sim::Simulator(arch, matrix).run(dag, sim::ConfigRegistry::preset(kind));
}

sim::RunMetrics run(const ir::TensorDag& dag, const sim::Configuration& config,
                    const sim::AcceleratorConfig& arch, const sparse::CsrMatrix* matrix) {
  return sim::Simulator(arch, matrix).run(dag, config);
}

const std::vector<sim::ConfigKind>& all_configs() {
  static const std::vector<sim::ConfigKind> kConfigs = {
      sim::ConfigKind::Flexagon, sim::ConfigKind::FlexLru,     sim::ConfigKind::FlexBrrip,
      sim::ConfigKind::Flat,     sim::ConfigKind::Set,         sim::ConfigKind::PreludeOnly,
      sim::ConfigKind::Cello,
  };
  return kConfigs;
}

std::vector<std::pair<std::string, sim::RunMetrics>> run_all(const ir::TensorDag& dag,
                                                             const sim::AcceleratorConfig& arch,
                                                             const sparse::CsrMatrix* matrix) {
  const sim::Simulator simulator(arch, matrix);
  const auto& registry = sim::ConfigRegistry::global();
  std::vector<std::pair<std::string, sim::RunMetrics>> out;
  for (const std::string& name : sim::ConfigRegistry::table4_names())
    out.emplace_back(name, simulator.run(dag, registry.at(name)));
  return out;
}

std::string compare_table(const ir::TensorDag& dag, const sim::AcceleratorConfig& arch,
                          const sparse::CsrMatrix* matrix) {
  const auto results = run_all(dag, arch, matrix);
  const double base_time = results.front().second.seconds;
  const double base_energy = results.front().second.offchip_energy_pj;

  TextTable table({"config", "GMACs/s", "time", "DRAM traffic", "AI (MACs/B)",
                   "speedup vs Flexagon", "off-chip energy vs Flexagon"});
  for (const auto& [name, m] : results) {
    table.add_row({name, format_double(m.gmacs_per_sec(), 2),
                   format_double(m.seconds * 1e6, 1) + " us", format_bytes(static_cast<double>(m.dram_bytes)),
                   format_double(m.intensity(), 2), format_double(base_time / m.seconds, 2) + "x",
                   format_double(m.offchip_energy_pj / base_energy, 3)});
  }
  return table.to_string();
}

}  // namespace cello
