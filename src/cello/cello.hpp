// Cello public facade: build a workload DAG, schedule it with SCORE, run it
// on a Table IV configuration, and report metrics.
//
// Quickstart:
//   auto dag  = cello::workloads::build_cg_dag({.m = 81920, .n = 16, .nnz = 327680});
//   cello::sim::AcceleratorConfig arch;           // Table V defaults
//   auto cello_m = cello::run(dag, cello::sim::ConfigKind::Cello, arch);
//   auto flex_m  = cello::run(dag, cello::sim::ConfigKind::Flexagon, arch);
//   std::cout << cello::compare_table(dag, arch);  // all seven configurations
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ir/dag.hpp"
#include "sim/config.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace cello {

/// Simulate one configuration (thin alias over sim::simulate).
sim::RunMetrics run(const ir::TensorDag& dag, sim::ConfigKind kind,
                    const sim::AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix = nullptr);

/// All Table IV configurations this build evaluates, in paper order.
const std::vector<sim::ConfigKind>& all_configs();

/// Run every configuration and return (name, metrics) pairs.
std::vector<std::pair<std::string, sim::RunMetrics>> run_all(
    const ir::TensorDag& dag, const sim::AcceleratorConfig& arch,
    const sparse::CsrMatrix* matrix = nullptr);

/// Render a paper-style comparison table (throughput, traffic, energy, and
/// speedup / energy ratio relative to the Flexagon baseline).
std::string compare_table(const ir::TensorDag& dag, const sim::AcceleratorConfig& arch,
                          const sparse::CsrMatrix* matrix = nullptr);

}  // namespace cello
