// Cello public facade: resolve a workload by name, schedule it with SCORE,
// run it under a named or custom-composed configuration, and report metrics.
//
// Quickstart (composable API — both axes of the sweep grid are registries):
//   // Workloads are named, parameterized specs resolved to immutable DAGs.
//   auto& workloads = cello::sim::WorkloadRegistry::global();
//   auto cg  = workloads.resolve("cg:m=81920,n=16,iters=10");  // shape-only
//   auto gnn = workloads.resolve("gnn:cora");                  // dataset preset
//
//   cello::sim::AcceleratorConfig arch;                  // Table V defaults
//   cello::sim::Simulator simulator(arch, cg.matrix.get());
//   auto& registry = cello::sim::ConfigRegistry::global();
//   auto cello_m = simulator.run(*cg.dag, registry.at("Cello"));
//   auto novel_m = simulator.run(*cg.dag, registry.at("SCORE+LRU"));  // novel combo
//
//   // Transformer decode: append-only KV-cache chains in the DAG, priced by
//   // the KV-aware buffer (see sim/policies/kv_cache_policy.hpp).
//   auto llm = workloads.resolve("llm:d_model=512,seq=2048,decode_steps=8,layers=2");
//   auto kv_m = cello::sim::Simulator(arch).run(*llm.dag, registry.at("Flex+KV"));
//
//   // Custom pairing: any SchedulePolicy x BufferPolicy combination.
//   auto mine = cello::sim::make_configuration(
//       "mine", cello::sim::SchedulePolicy::Score, cello::sim::brrip_cache(), "BRRIP");
//   auto mine_m = simulator.run(*cg.dag, mine);
//
//   // Multi-chip scale-out (Sec. V-B): set a node count and a topology spec
//   // ("mesh:4x4", "torus:8x8", "ring:16", "crossbar:8") on the arch and the
//   // same run() shards the dominant rank, simulates one node's slice, and
//   // folds routed per-link NoC traffic back into whole-system metrics
//   // (noc_bytes, noc_seconds, max_link_utilization, parallel_efficiency):
//   cello::sim::AcceleratorConfig multi = arch;
//   multi.nodes = 16;
//   multi.topology = "torus:4x4";
//   auto scaled = cello::sim::Simulator(multi, gnn.matrix.get())
//                     .run(*gnn.dag, registry.at("Cello"));
//
//   // Parallel {workloads} x {configs} grid with deterministic ordering;
//   // each workload's DAG, schedule, address map and reuse index are built
//   // once and shared read-only across the pool, and each pool worker
//   // resets (not reallocates) its per-run scratch between cells:
//   cello::sim::SweepRunner sweep;
//   auto cells = sweep.run({"cg", "gnn:cora", "spmv", "sddmm:heads=4"},
//                          registry.names(), arch);
//
//   // Drivers doing their own cell loops share the same immutable artifacts
//   // through one sim::RunArtifacts bundle (bit-identical to the one-shot
//   // run above).  This bundle IS the run API: every optional input —
//   // prebuilt schedule/map/reuse/router tables, pooled scratch, trace sink —
//   // rides in it, and run(dag, config) is just the empty-bundle default.
//   auto sched = simulator.make_schedule(*cg.dag, registry.at("Cello"));
//   auto map   = cello::sim::AddressMap::build(*cg.dag);
//   auto reuse = cello::score::ReuseIndex::build(*cg.dag, sched, map.base_of,
//                                                map.entries.size());
//   cello::sim::RunScratch scratch;  // pooled per-run state, reset per run
//   cello::sim::RunArtifacts art;
//   art.schedule = &sched; art.address_map = &map;
//   art.reuse_index = &reuse; art.scratch = &scratch;
//   auto fast_m = simulator.run(*cg.dag, registry.at("Cello"), art);
//
//   // Op-level observability: arm a trace sink and the same run writes a
//   // Perfetto-loadable Chrome trace_event file (simulated timestamps, fully
//   // deterministic; see trace/trace.hpp and the README's Observability
//   // section).  `cello_cli run --trace out.json` is this in flag form.
//   std::ofstream out("trace.json", std::ios::binary);
//   cello::trace::ChromeTraceWriter writer(out);
//   cello::sim::RunArtifacts traced;
//   traced.trace = &writer;
//   simulator.run(*cg.dag, registry.at("Cello"), traced);
//
//   std::cout << cello::compare_table(*cg.dag, arch);    // the seven Table IV rows
//
// Workload DAGs can still be built directly (build_cg_dag & friends); the
// ConfigKind enum and cello::run/run_all/compare_table below are thin shims
// over the registries, kept for the paper-reproduction benches.
//
// Migration (PR 9): Simulator::run now has exactly one real signature,
// run(dag, config, artifacts = {}).  The old overloads — run(dag, name),
// run(dag, kind), run(dag, config, sched, map[, reuse, scratch]) — still
// compile as [[deprecated]] shims over the bundle; resolve names through
// ConfigRegistry::global().at(...) / ::preset(kind) and move prebuilt inputs
// into RunArtifacts fields.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ir/dag.hpp"
#include "noc/topology.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/engine.hpp"
#include "sim/metrics.hpp"
#include "sim/partition.hpp"
#include "sim/policies/cache_policy.hpp"
#include "sim/policies/chord_policy.hpp"
#include "sim/policies/explicit_buffers.hpp"
#include "sim/registry.hpp"
#include "sim/result_io.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/workload_registry.hpp"
#include "sim/workload_spec.hpp"
#include "sparse/csr.hpp"
#include "trace/trace.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/llm.hpp"
#include "workloads/resnet.hpp"
#include "workloads/sddmm.hpp"
#include "workloads/spmv.hpp"

namespace cello {

/// Simulate one Table IV configuration (thin shim over sim::Simulator).
sim::RunMetrics run(const ir::TensorDag& dag, sim::ConfigKind kind,
                    const sim::AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix = nullptr);

/// Simulate an arbitrary composed configuration.
sim::RunMetrics run(const ir::TensorDag& dag, const sim::Configuration& config,
                    const sim::AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix = nullptr);

/// All Table IV configurations this build evaluates, in paper order.
const std::vector<sim::ConfigKind>& all_configs();

/// Run every Table IV configuration and return (name, metrics) pairs.
std::vector<std::pair<std::string, sim::RunMetrics>> run_all(
    const ir::TensorDag& dag, const sim::AcceleratorConfig& arch,
    const sparse::CsrMatrix* matrix = nullptr);

/// Render a paper-style comparison table (throughput, traffic, energy, and
/// speedup / energy ratio relative to the Flexagon baseline).
std::string compare_table(const ir::TensorDag& dag, const sim::AcceleratorConfig& arch,
                          const sparse::CsrMatrix* matrix = nullptr);

}  // namespace cello
