// Roofline model (Williams et al.) and arithmetic-intensity analytics used
// throughout the motivation section (Fig. 2) and as the per-op timing model.
#pragma once

#include "common/types.hpp"

namespace cello::mem {

struct Roofline {
  double peak_flops_per_sec = 0;        ///< MACs/s * 1 (we count fused MACs as 1 op)
  double bandwidth_bytes_per_sec = 0;

  /// Attainable throughput (ops/s) at the given arithmetic intensity.
  double attainable(double ops_per_byte) const {
    const double mem_bound = ops_per_byte * bandwidth_bytes_per_sec;
    return mem_bound < peak_flops_per_sec ? mem_bound : peak_flops_per_sec;
  }

  /// Intensity at which compute and memory limits meet (the ridge point).
  double ridge_ops_per_byte() const { return peak_flops_per_sec / bandwidth_bytes_per_sec; }

  bool memory_bound(double ops_per_byte) const { return ops_per_byte < ridge_ops_per_byte(); }
};

/// Best-case arithmetic intensity of a dense GEMM where every operand is read
/// from / written to DRAM exactly once (Eq. 3-4 of the paper):
///   AI = M*K*N / ((M*K + K*N + M*N) * word_bytes)   [ops per byte]
double gemm_best_intensity(i64 m, i64 k, i64 n, Bytes word_bytes);

/// The skewed-GEMM limit of Eq. 4: K/M -> 0 with K == N gives N/2 ops/word.
double skewed_gemm_limit_ops_per_word(i64 n);

}  // namespace cello::mem
