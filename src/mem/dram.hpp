// Off-chip memory model: bandwidth-limited transfer time plus per-byte access
// energy.  The paper's headline results are memory-bandwidth bound, so this
// model together with the buffer hierarchy determines performance.
#pragma once

#include "common/types.hpp"

namespace cello::mem {

struct DramModel {
  double bandwidth_bytes_per_sec = 1e12;  ///< Table V: 250 GB/s or 1 TB/s
  double energy_pj_per_byte = 31.2;       ///< ~3.9 pJ/bit HBM2-class transfer

  double seconds_for(Bytes bytes) const {
    return static_cast<double>(bytes) / bandwidth_bytes_per_sec;
  }
  double energy_pj(Bytes bytes) const { return static_cast<double>(bytes) * energy_pj_per_byte; }
};

}  // namespace cello::mem
