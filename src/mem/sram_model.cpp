#include "mem/sram_model.hpp"

#include <cmath>

namespace cello::mem {
namespace {

// Data-array density calibrated so 4 MiB = 6.59 mm^2 (paper Fig. 15).
constexpr double kDataMm2PerMiB = 6.59 / 4.0;
// Data access energy for a 16 B line read in a multi-bank 4 MiB array.
constexpr double kDataPjPerLineAt4MiB = 28.0;

/// SRAM access energy grows roughly with sqrt(capacity) (wordline/bitline
/// length); normalize at the 4 MiB calibration point.
double capacity_energy_scale(Bytes capacity) {
  return std::sqrt(static_cast<double>(capacity) / (4.0 * 1024 * 1024));
}

}  // namespace

const char* to_string(BufferKind k) {
  switch (k) {
    case BufferKind::Cache: return "cache";
    case BufferKind::Scratchpad: return "scratchpad";
    case BufferKind::Buffet: return "buffet";
    case BufferKind::Chord: return "chord";
  }
  return "?";
}

AreaBreakdown SramModel::area(BufferKind kind) const {
  const double mib = static_cast<double>(geom_.capacity) / (1024.0 * 1024.0);
  AreaBreakdown a;
  a.data_mm2 = kDataMm2PerMiB * mib;

  switch (kind) {
    case BufferKind::Cache: {
      // Tag array: one tag + state entry per line, 8-way lookup datapath.
      // Calibrated to 1.85 mm^2 at 4 MiB / 16 B lines / 28-bit tags, scaling
      // with the number of lines and the tag width.
      const double lines = static_cast<double>(geom_.capacity) / geom_.line_bytes;
      const double ref_lines = 4.0 * 1024 * 1024 / 16.0;
      a.tag_mm2 = 1.85 * (lines / ref_lines) * (static_cast<double>(geom_.tag_bits) / 28.0);
      // Controller/peripheral logic (MSHRs, replacement state machines):
      // 9.87 - 6.59 - 1.85 = 1.43 mm^2 at the 4 MiB calibration point.
      a.controller_mm2 = 1.43 * mib / 4.0;
      break;
    }
    case BufferKind::Scratchpad:
      a.controller_mm2 = 0.02 * a.data_mm2;  // address decode only ([33]: ~2%)
      break;
    case BufferKind::Buffet:
      a.controller_mm2 = 0.02 * a.data_mm2;  // credit scoreboard ~2% ([33])
      break;
    case BufferKind::Chord: {
      // Buffet-like base plus the RIFF-index table: 64 entries x 512 bits =
      // 4 KiB of storage, ~0.01x the cache tag array (paper: 6.74 mm^2 total).
      const double riff_table_mm2 = 0.01 * 1.85;
      a.controller_mm2 = 0.02 * a.data_mm2 + riff_table_mm2;
      break;
    }
  }
  return a;
}

AccessEnergy SramModel::access_energy(BufferKind kind) const {
  const double scale = capacity_energy_scale(geom_.capacity);
  AccessEnergy e;
  e.data_pj = kDataPjPerLineAt4MiB * scale;
  switch (kind) {
    case BufferKind::Cache:
      // Set-associative lookup reads `assoc` tags in parallel and compares;
      // with large tag arrays this approaches the data-access energy
      // (Sec. VI-B: "tag access energy is comparable to data access energy").
      e.tag_pj = e.data_pj * 0.85 * (static_cast<double>(geom_.associativity) / 8.0);
      break;
    case BufferKind::Scratchpad:
    case BufferKind::Buffet:
      break;  // data only
    case BufferKind::Chord:
      // Hits compute the buffer index from one 512-bit metadata entry; the
      // table is ~100x smaller than a cache tag array, so per-access energy
      // is small and only misses touch it again.
      e.metadata_pj = 0.4;
      break;
  }
  return e;
}

}  // namespace cello::mem
