// Analytic SRAM area/energy model standing in for CACTI 7 (DESIGN.md §2).
//
// Calibration anchors, straight from the paper's Fig. 15 discussion at 4 MiB:
//  * cache:   9.87 mm^2 total = 6.59 mm^2 data array + 1.85 mm^2 tag array
//             (remainder: controller/peripheral logic),
//  * buffets: data array + ~2% controller overhead = 6.72 mm^2,
//  * CHORD:   6.74 mm^2 — buffet-like data array plus a 64-entry, 512-bit
//             RIFF-index table (~0.01x of the cache tag array area).
// Energies follow the same structure: cache pays a tag lookup comparable to a
// data access on every reference; scratchpad/buffet/CHORD pay data only.
#pragma once

#include "common/types.hpp"

namespace cello::mem {

enum class BufferKind { Cache, Scratchpad, Buffet, Chord };

struct SramGeometry {
  Bytes capacity = 4ull * 1024 * 1024;
  u32 line_bytes = 16;   ///< Table V cache line
  u32 associativity = 8; ///< Table V
  u32 tag_bits = 28;     ///< derived from a 40-bit physical address space
};

struct AreaBreakdown {
  double data_mm2 = 0;
  double tag_mm2 = 0;        ///< caches only
  double controller_mm2 = 0; ///< peripheral logic / credit scoreboard / index table
  double total() const { return data_mm2 + tag_mm2 + controller_mm2; }
};

struct AccessEnergy {
  double data_pj = 0;
  double tag_pj = 0;       ///< caches: read assoc-many tags + compare
  double metadata_pj = 0;  ///< CHORD: one RIFF-index-table entry on miss paths
  double total() const { return data_pj + tag_pj + metadata_pj; }
};

class SramModel {
 public:
  explicit SramModel(SramGeometry geom = {}) : geom_(geom) {}

  AreaBreakdown area(BufferKind kind) const;
  /// Energy of one line-sized access.
  AccessEnergy access_energy(BufferKind kind) const;

  const SramGeometry& geometry() const { return geom_; }

 private:
  SramGeometry geom_;
};

const char* to_string(BufferKind k);

}  // namespace cello::mem
