#include "mem/roofline.hpp"

namespace cello::mem {

double gemm_best_intensity(i64 m, i64 k, i64 n, Bytes word_bytes) {
  const double macs = static_cast<double>(m) * static_cast<double>(k) * static_cast<double>(n);
  const double words = static_cast<double>(m) * static_cast<double>(k) +
                       static_cast<double>(k) * static_cast<double>(n) +
                       static_cast<double>(m) * static_cast<double>(n);
  return macs / (words * static_cast<double>(word_bytes));
}

double skewed_gemm_limit_ops_per_word(i64 n) { return static_cast<double>(n) / 2.0; }

}  // namespace cello::mem
