// sim::WorkloadRegistry: named, parameterized workload kinds resolved from
// WorkloadSpec strings into immutable, shareable DAGs.
//
// Mirrors the ConfigRegistry design on the workload axis of the sweep grid:
// construction pre-registers the repo's workload kinds (cg, bicgstab, gnn,
// power, resnet, spmv, sddmm); users register their own with add().
//
//   auto& registry = sim::WorkloadRegistry::global();
//   auto cg   = registry.resolve("cg:m=65536,n=16,iters=10");  // shape-only
//   auto gnn  = registry.resolve("gnn:cora");                  // dataset preset
//   auto real = registry.resolve("spmv:mm=matrix.mtx");        // Matrix Market
//
// resolve() builds each distinct (canonical) spec exactly once per process
// and returns shared_ptr<const ...> handles, so sweep cells, benches and
// tests share one immutable DAG + matrix instead of rebuilding per cell.
//
// Matrix sources, common to every matrix-backed kind (exactly one):
//   dataset=<name>   Table VI preset, instantiated synthetically (a bare
//                    token is shorthand: "gnn:cora" == "gnn:dataset=cora")
//   mm=<path>        Matrix Market file
//   gen=<style>      synthetic generator (fem | circuit | graph) over
//                    m=, nnz= (default 8*m), seed=
//   m=<rows>         shape-only: analytic statistics, no backing matrix
// With no source parameter at all, the kind's default dataset applies.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "sim/workload_spec.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

/// A resolved, immutable workload: share freely across threads.
struct Workload {
  std::string name;  ///< canonical spec string (WorkloadSpec::to_string())
  std::string kind;
  std::shared_ptr<const ir::TensorDag> dag;
  /// Real sparsity pattern for the trace-driven policies; null when the
  /// spec is shape-only (analytic statistics without a backing matrix).
  std::shared_ptr<const sparse::CsrMatrix> matrix;
};

/// Typed accessor over a spec's parameters, handed to kind builders.  Every
/// getter records its key; after the builder returns, the registry rejects
/// any parameter no getter looked at, so "itres=5" fails loudly instead of
/// silently falling back to the default.
class WorkloadParams {
 public:
  explicit WorkloadParams(const WorkloadSpec& spec) : spec_(spec) {}

  /// Integer parameter; throws cello::Error on a malformed number.
  i64 get_i64(const std::string& key, i64 fallback);
  std::string get_string(const std::string& key, std::string fallback);

  const WorkloadSpec& spec() const { return spec_; }
  /// Throws cello::Error listing parameters no getter consumed.
  void check_all_consumed() const;

 private:
  const WorkloadSpec& spec_;
  std::set<std::string> consumed_;
};

/// Documentation of one parameter a workload kind accepts.
struct WorkloadParamDoc {
  std::string name;
  std::string default_value;  ///< human-readable ("16", "dataset nnz", ...)
  std::string doc;
};

/// A registered workload kind: a name, its parameter catalog, and the
/// builder turning parameters into a DAG (+ optional matrix context).
struct WorkloadKind {
  std::string name;
  std::string description;
  std::vector<WorkloadParamDoc> params;
  /// Fills Workload::dag / Workload::matrix; name/kind are set by resolve().
  std::function<Workload(WorkloadParams&)> build;
};

class WorkloadRegistry {
 public:
  /// Pre-populated with the built-in kinds.
  WorkloadRegistry();

  /// Process-wide shared registry (thread-safe).
  static WorkloadRegistry& global();

  /// Register a kind under kind.name.  Throws cello::Error on a duplicate
  /// name or a missing builder.
  void add(WorkloadKind kind);

  /// Lookup by kind name; nullptr when absent.  The pointer stays valid for
  /// the registry's lifetime.
  const WorkloadKind* find(const std::string& kind_name) const;
  /// Lookup that throws cello::Error, listing the registered kinds.
  const WorkloadKind& at(const std::string& kind_name) const;

  /// Registered kind names, registration order.
  std::vector<std::string> names() const;

  /// Build (or fetch the cached build of) the workload a spec describes.
  /// Each canonical spec is built exactly once; concurrent resolves of the
  /// same spec return handles to the same immutable DAG.  Cached builds are
  /// held strongly for the registry's lifetime — a driver iterating many
  /// distinct large specs should clear_cache() between batches.
  Workload resolve(const WorkloadSpec& spec) const;
  Workload resolve(const std::string& spec_text) const;

  /// Drop every cached build.  Outstanding Workload handles stay valid (they
  /// share ownership); subsequent resolves rebuild.
  void clear_cache() const;

 private:
  mutable std::mutex mu_;        ///< guards kinds_/by_name_
  std::deque<WorkloadKind> kinds_;
  std::map<std::string, size_t> by_name_;

  mutable std::mutex cache_mu_;  ///< guards cache_
  mutable std::map<std::string, Workload> cache_;  ///< canonical spec -> built
};

}  // namespace cello::sim
