// DAG partitioning for multi-chip scale-out (Sec. V-B "Scalable Dataflow").
//
// SCORE's scaling argument: shard the dominant uncontracted rank across
// nodes so every pipeline stays cluster-local, and only tensors *without*
// that rank cross the NoC — contracted-dominant partials as reductions,
// small shared operands as broadcasts.  The alternative (splitting a
// pipeline across nodes) ships the skewed sharded intermediates; we track
// that as `naive_bytes` so the score-vs-naive traffic gap is visible in
// every multi-node RunMetrics.
//
// `build_partition` emits ONE node's shard as a structurally identical
// TensorDag (same ids, same edges, sharded extents) via the arena builders,
// so the existing Simulator/policy machinery runs it unchanged.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"
#include "ir/dag.hpp"
#include "noc/topology.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"

namespace cello::sim {

/// How a tensor relates to the shard boundary.
enum class ShardClass {
  Local,      ///< carries the shard rank (or never crosses the fabric)
  Reduce,     ///< contracted-dominant partial: per-node copies combine at a root
  Broadcast,  ///< shard-rank-free operand every node needs a full copy of
};

const char* to_string(ShardClass c);

struct Partition {
  i64 nodes = 1;
  std::string shard_rank;
  /// One node's slice of the workload (ids match the full DAG's).
  ir::TensorDag shard;
  /// Classification per TensorId of the full DAG.
  std::vector<ShardClass> tensor_class;

  /// One cross-fabric collective (a Reduce or Broadcast tensor), in
  /// ascending tensor-id order — the deterministic NoC pricing input.
  struct Transfer {
    ir::TensorId tensor = ir::kInvalidTensor;
    Bytes bytes = 0;  ///< payload per node (the full unsharded tensor)
    ShardClass cls = ShardClass::Local;
  };
  std::vector<Transfer> transfers;

  /// Traffic of the naive split: ship every produced shard-rank tensor to
  /// wherever the next pipeline stage runs (bytes * nodes).
  Bytes naive_bytes = 0;
};

/// The rank to shard on: the largest rank that appears uncontracted in at
/// least one op (ties broken by first appearance in op/rank order).  Throws
/// if the DAG has no uncontracted rank with extent > 1.
std::string pick_shard_rank(const ir::TensorDag& dag);

/// Split `dag` across `nodes` chips on pick_shard_rank(dag).  Extents divide
/// as ceil(extent / nodes) (the straggler node's slice — we price the
/// critical path); nodes beyond the shard extent are rejected.
Partition build_partition(const ir::TensorDag& dag, i64 nodes);

/// NoC cost of a partition's collectives on a concrete fabric.
struct NocCost {
  Bytes byte_hops = 0;        ///< sum over transfers of bytes * hops traversed
  Bytes max_link_bytes = 0;   ///< busiest directed link's accumulated bytes
  double seconds = 0;         ///< tree-depth latency + busiest-link serialization
};

/// Price `transfers` on `topo`: reductions converge on node 0 and broadcast
/// back, broadcasts fan out from node 0, every leg routed hop-by-hop with
/// per-link byte accounting (no in-network combining/multicast — links
/// serialize, so fabric saturation shows up as a busiest-link term).
NocCost price_noc(const std::vector<Partition::Transfer>& transfers, const noc::Topology& topo,
                  const AcceleratorConfig& arch);

/// Fold one node's shard metrics into whole-system multi-node metrics:
/// aggregate counters scale by `nodes`, NoC time/traffic from `price_noc`
/// lands next to DRAM traffic, and parallel_efficiency compares against the
/// 1-node baseline `baseline_seconds`.
RunMetrics fold_multinode(const RunMetrics& per_node, double baseline_seconds,
                          const Partition& part, const noc::Topology& topo,
                          const AcceleratorConfig& arch);

}  // namespace cello::sim
