// Global address map: per-iteration tensor instances ("P@3") share the
// storage of their base tensor ("P"), which is what CHORD and the caches see.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"

namespace cello::sim {

struct AddressMap {
  struct Entry {
    std::string base;   ///< base tensor name
    Addr start = 0;
    Bytes bytes = 0;    ///< max footprint over the base's instances
  };

  std::vector<Entry> entries;
  /// Per ir::TensorId: index into `entries`.
  std::vector<i32> base_of;

  const Entry& of(ir::TensorId t) const { return entries[base_of[t]]; }
  i32 base_id(ir::TensorId t) const { return base_of[t]; }

  static AddressMap build(const ir::TensorDag& dag, u32 align_bytes = 64);
};

}  // namespace cello::sim
