// SweepRunner: fan a {workloads} x {configurations} grid across a
// std::thread pool.  Results come back in deterministic row-major order
// (workload-major, configuration-minor) regardless of thread scheduling, and
// every cell is bit-identical to a serial Simulator::run.
//
// Workloads enter the grid as registry specs ("cg:m=65536,n=16", "gnn:cora")
// or as resolved sim::Workload handles; each spec's DAG is built once per
// sweep and shared immutably across its row.  Per (workload, schedule-policy)
// pair the runner also builds one immutable score::Schedule + AddressMap +
// score::ReuseIndex — plus one sim::RouterTables per distinct routing key and
// one captured sim::AccessStream per (DAG, routing key) any trace-driven
// replay-capable cell touches — and shares them read-only across the pool:
// configurations differing only in their buffer policy reuse the same
// schedule, reuse table, routing tables and access stream instead of
// rebuilding them per cell (the cache presets replay one stream; see
// sim/access_stream.hpp).  Mutable per-run state lives in one
// RunScratch per pool worker (reuse cursors, attribution scratch, pooled
// reset-between-cells buffer policies); workers never share it.  Cells are
// handed out in configuration-major run-length chunks (worker-affine tiling),
// so consecutive cells on one worker usually share a pooled policy and reset
// it instead of rebuilding — results still land in row-major order and every
// cell stays bit-identical to a fresh serial run at any thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sim/workload_registry.hpp"
#include "sparse/csr.hpp"

namespace cello::trace {
class TraceSink;
}  // namespace cello::trace

namespace cello::sim {

struct SweepGrid;  // sim/shard.hpp: full grid definition for distributed sweeps
struct ShardPlan;  // sim/shard.hpp: one shard's slice of the grid

/// Legacy pre-built-DAG row (thin shim; prefer WorkloadSpec / Workload).
struct SweepWorkload {
  std::string name;
  ir::TensorDag dag;
  const sparse::CsrMatrix* matrix = nullptr;  ///< real sparsity; may be null
};

/// One grid cell's outcome: metrics on success, or a quarantined failure
/// record (error non-empty, metrics zeroed) when the cell threw under
/// SweepOptions::keep_going.  The error message always names the cell — its
/// flattened index, workload spec and configuration name — so a failure in a
/// million-cell sweep is attributable without re-running anything.
struct SweepResult {
  std::string workload;
  std::string config;
  /// Canonical fabric spec ("1", "mesh:2x2", ...) when the grid carries a
  /// fabric axis (SweepGrid::fabrics beyond the single-chip default); empty
  /// on classic two-axis grids, keeping their serialized form unchanged.
  std::string fabric;
  RunMetrics metrics;
  std::string error;  ///< empty = success

  bool ok() const { return error.empty(); }
};

/// Fault-tolerance and observability knobs for a sweep (see sim/checkpoint.hpp
/// for the journal format).  Defaults reproduce the historical behavior: no
/// journal, abort on the first failing cell, no retries, no tracing.
struct SweepOptions {
  /// Quarantine failing cells as error records instead of aborting the sweep;
  /// every other cell completes bit-identically to a clean run.
  bool keep_going = false;
  /// Re-run a failing cell up to this many extra times (deterministically, on
  /// the same worker, before its error is recorded or rethrown) — transient
  /// faults survive, persistent ones still fail with full context.
  u32 retries = 0;
  /// Append-only cell journal path; empty = no checkpointing.  Only valid for
  /// shard-scoped runs (run_shard), whose grid fingerprint keys the journal.
  std::string checkpoint;
  /// Load an existing journal at `checkpoint` (skipping completed cells and
  /// truncating any torn tail) instead of refusing to touch it.  A missing
  /// journal file simply starts fresh, so retry loops can always pass this.
  bool resume = false;
  /// Flattened row-major grid cell to trace, or -1 for none.  Requires
  /// trace_sink; exactly one cell writes to it, so the sweep stays
  /// deterministic, and its events equal a direct Simulator::run of the same
  /// workload/fabric/configuration with the same sink.  A checkpoint-recovered
  /// traced cell is skipped like any other and emits nothing.
  i64 trace_cell = -1;
  /// Sink the traced cell writes to (borrowed; must outlive the sweep).
  trace::TraceSink* trace_sink = nullptr;
  /// Multi-cell tracing: called once per executed cell with its flattened
  /// row-major id; a non-null return traces that cell into the returned sink
  /// (borrowed; must outlive the sweep).  Called concurrently from pool
  /// workers, so the callback must be thread-safe.  Checkpoint-recovered
  /// cells are never consulted (they re-emit nothing, like trace_cell).
  /// Mutually exclusive with trace_cell / trace_sink.
  std::function<trace::TraceSink*(size_t cell)> trace_sink_for;
};

class SweepRunner {
 public:
  /// @param threads  worker count; 0 = std::thread::hardware_concurrency().
  explicit SweepRunner(u32 threads = 0) : threads_(threads) {}

  /// Run every workload under every configuration.  Result i*configs+j holds
  /// workload i under configuration j.  The first exception thrown by any
  /// cell is rethrown — wrapped with the failing cell's index, workload and
  /// configuration — once the workers stop; a failure makes every worker
  /// abandon the remaining cells instead of burning through the grid.
  std::vector<SweepResult> run(const std::vector<Workload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;

  /// Same grid with fault-tolerance knobs: keep_going quarantines failing
  /// cells as error records, retries re-runs transient failures.  Options
  /// requesting a checkpoint journal are rejected here — journals are keyed
  /// by a grid fingerprint, so they require the shard-scoped entry point.
  std::vector<SweepResult> run(const std::vector<Workload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch,
                               const SweepOptions& options) const;

  /// Convenience: resolve configuration names in the global ConfigRegistry.
  std::vector<SweepResult> run(const std::vector<Workload>& workloads,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  /// Resolve workload specs in the global WorkloadRegistry (each distinct
  /// spec's DAG is built once), then run the grid.
  std::vector<SweepResult> run(const std::vector<WorkloadSpec>& specs,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;

  /// Fully name-driven grid: workload spec strings x configuration names.
  std::vector<SweepResult> run(const std::vector<std::string>& workload_specs,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  /// Shard-scoped entry point for distributed sweeps (see sim/shard.hpp):
  /// resolve the grid's workload specs and configuration names, then run only
  /// the plan's cells, in plan order.  The intra-sweep schedule cache is
  /// scoped to the shard — only the (workload, schedule-policy) pairs the
  /// shard actually touches are built — and every cell is bit-identical to
  /// the same cell of a full-grid run, so merge_shards() reassembles the
  /// exact single-process result vector.
  std::vector<SweepResult> run_shard(const SweepGrid& grid, const ShardPlan& plan) const;

  /// Shard run with fault tolerance: options.checkpoint appends every
  /// completed cell to a crash-safe journal (sim/checkpoint.hpp) keyed by the
  /// grid fingerprint; options.resume loads it, skips completed cells and
  /// truncates any torn tail, making an interrupted-then-resumed shard
  /// byte-identical to an uninterrupted one.  keep_going / retries behave as
  /// in run(..., options).
  std::vector<SweepResult> run_shard(const SweepGrid& grid, const ShardPlan& plan,
                                     const SweepOptions& options) const;

  /// Legacy pre-built-DAG overloads (shims over the Workload path).
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  u32 threads() const { return threads_; }

 private:
  u32 threads_;
};

}  // namespace cello::sim
