// SweepRunner: fan a {workloads} x {configurations} grid across a
// std::thread pool.  Results come back in deterministic row-major order
// (workload-major, configuration-minor) regardless of thread scheduling, and
// every cell is bit-identical to a serial Simulator::run — each run gets its
// own freshly constructed BufferPolicy, so cells share no mutable state.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

struct SweepWorkload {
  std::string name;
  ir::TensorDag dag;
  const sparse::CsrMatrix* matrix = nullptr;  ///< real sparsity; may be null
};

struct SweepResult {
  std::string workload;
  std::string config;
  RunMetrics metrics;
};

class SweepRunner {
 public:
  /// @param threads  worker count; 0 = std::thread::hardware_concurrency().
  explicit SweepRunner(u32 threads = 0) : threads_(threads) {}

  /// Run every workload under every configuration.  Result i*configs+j holds
  /// workload i under configuration j.  The first exception thrown by any
  /// cell is rethrown once the workers stop; a failure makes every worker
  /// abandon the remaining cells instead of burning through the grid.
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;

  /// Convenience: resolve configuration names in the global ConfigRegistry.
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  u32 threads() const { return threads_; }

 private:
  u32 threads_;
};

}  // namespace cello::sim
