// SweepRunner: fan a {workloads} x {configurations} grid across a
// std::thread pool.  Results come back in deterministic row-major order
// (workload-major, configuration-minor) regardless of thread scheduling, and
// every cell is bit-identical to a serial Simulator::run.
//
// Workloads enter the grid as registry specs ("cg:m=65536,n=16", "gnn:cora")
// or as resolved sim::Workload handles; each spec's DAG is built once per
// sweep and shared immutably across its row.  Per (workload, schedule-policy)
// pair the runner also builds one immutable score::Schedule + AddressMap +
// score::ReuseIndex and shares them read-only across the pool —
// configurations differing only in their buffer policy reuse the same
// schedule and reuse table instead of rebuilding them per cell.  Mutable
// per-run state lives in one RunScratch per pool worker (reuse cursors,
// attribution scratch, pooled reset-between-cells buffer policies); workers
// never share it, and every cell stays bit-identical to a fresh serial run.
#pragma once

#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sim/workload_registry.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

struct SweepGrid;  // sim/shard.hpp: full grid definition for distributed sweeps
struct ShardPlan;  // sim/shard.hpp: one shard's slice of the grid

/// Legacy pre-built-DAG row (thin shim; prefer WorkloadSpec / Workload).
struct SweepWorkload {
  std::string name;
  ir::TensorDag dag;
  const sparse::CsrMatrix* matrix = nullptr;  ///< real sparsity; may be null
};

struct SweepResult {
  std::string workload;
  std::string config;
  RunMetrics metrics;
};

class SweepRunner {
 public:
  /// @param threads  worker count; 0 = std::thread::hardware_concurrency().
  explicit SweepRunner(u32 threads = 0) : threads_(threads) {}

  /// Run every workload under every configuration.  Result i*configs+j holds
  /// workload i under configuration j.  The first exception thrown by any
  /// cell is rethrown once the workers stop; a failure makes every worker
  /// abandon the remaining cells instead of burning through the grid.
  std::vector<SweepResult> run(const std::vector<Workload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;

  /// Convenience: resolve configuration names in the global ConfigRegistry.
  std::vector<SweepResult> run(const std::vector<Workload>& workloads,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  /// Resolve workload specs in the global WorkloadRegistry (each distinct
  /// spec's DAG is built once), then run the grid.
  std::vector<SweepResult> run(const std::vector<WorkloadSpec>& specs,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;

  /// Fully name-driven grid: workload spec strings x configuration names.
  std::vector<SweepResult> run(const std::vector<std::string>& workload_specs,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  /// Shard-scoped entry point for distributed sweeps (see sim/shard.hpp):
  /// resolve the grid's workload specs and configuration names, then run only
  /// the plan's cells, in plan order.  The intra-sweep schedule cache is
  /// scoped to the shard — only the (workload, schedule-policy) pairs the
  /// shard actually touches are built — and every cell is bit-identical to
  /// the same cell of a full-grid run, so merge_shards() reassembles the
  /// exact single-process result vector.
  std::vector<SweepResult> run_shard(const SweepGrid& grid, const ShardPlan& plan) const;

  /// Legacy pre-built-DAG overloads (shims over the Workload path).
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<Configuration>& configs,
                               const AcceleratorConfig& arch) const;
  std::vector<SweepResult> run(const std::vector<SweepWorkload>& workloads,
                               const std::vector<std::string>& config_names,
                               const AcceleratorConfig& arch) const;

  u32 threads() const { return threads_; }

 private:
  u32 threads_;
};

}  // namespace cello::sim
