#include "sim/workload_spec.hpp"

#include "common/error.hpp"

namespace cello::sim {

namespace {

[[noreturn]] void bad_spec(const std::string& text, const std::string& why) {
  throw Error("workload spec '" + text + "': " + why);
}

}  // namespace

WorkloadSpec WorkloadSpec::parse(const std::string& text) {
  WorkloadSpec spec;
  const auto colon = text.find(':');
  spec.kind = text.substr(0, colon);
  if (spec.kind.empty()) bad_spec(text, "missing workload kind");

  if (colon == std::string::npos) return spec;
  const std::string rest = text.substr(colon + 1);
  if (rest.empty()) bad_spec(text, "trailing ':'");

  size_t start = 0;
  while (start <= rest.size()) {
    const size_t comma = std::min(rest.find(',', start), rest.size());
    const std::string token = rest.substr(start, comma - start);
    if (token.empty()) bad_spec(text, "empty parameter");
    const auto eq = token.find('=');
    // A bare token is dataset-preset shorthand: "gnn:cora" == "gnn:dataset=cora".
    const std::string key = eq == std::string::npos ? "dataset" : token.substr(0, eq);
    const std::string value = eq == std::string::npos ? token : token.substr(eq + 1);
    if (key.empty() || value.empty()) bad_spec(text, "malformed parameter '" + token + "'");
    if (spec.params.count(key)) bad_spec(text, "duplicate parameter '" + key + "'");
    spec.params[key] = value;
    start = comma + 1;
  }
  return spec;
}

std::string WorkloadSpec::to_string() const {
  std::string out = kind;
  char sep = ':';
  for (const auto& [key, value] : params) {
    out += sep;
    out += key + "=" + value;
    sep = ',';
  }
  return out;
}

}  // namespace cello::sim
