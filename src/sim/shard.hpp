// Deterministic partitioning of a {workload x configuration} sweep grid into
// self-describing shards, and the merge that recombines shard result files
// into exactly the row-major order SweepRunner produces.
//
// A SweepGrid pins the full grid definition: canonical workload spec strings,
// registered configuration names, and the accelerator architecture.  Its
// fingerprint also folds in each configuration's schedule options and buffer
// composition, so two machines only produce mergeable shards when they agree
// on the *meaning* of the grid, not just its names — a drifted registry or
// arch refuses to merge loudly instead of interleaving incomparable rows.
//
// Shards are planned, never enumerated by hand: plan_shard(grid, i, k, mode)
// assigns every flattened row-major cell id (workload-major, fabric, then
// configuration — see SweepGrid) to
// exactly one shard i in 1..k, either as one contiguous span per shard or
// strided round-robin.  Shard files store only (i, k, mode) plus the grid;
// the cell list is rederived on load, so a file cannot lie about which cells
// it holds.  merge_shards() then recombines any arrival order into the exact
// row-major result vector a single-process SweepRunner::run of the same grid
// returns, bit for bit.
//
//   grid  = make_grid({"cg:m=9604,n=16", "gnn:cora"}, registry.names(), arch);
//   plan  = plan_shard(grid, /*index=*/2, /*count=*/3);
//   cells = SweepRunner().run_shard(grid, plan);          // this machine's slice
//   text  = shard_to_json({grid, plan, cells});           // ship anywhere
//   ...
//   merged = merge_shards({shard_from_json(f1), ...});    // any order; validated
#pragma once

#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/sweep.hpp"

namespace cello::sim {

enum class ShardMode {
  Contiguous,  ///< shard i holds one contiguous span of row-major cell ids
  Strided,     ///< shard i holds cells i-1, i-1+k, i-1+2k, ... (round-robin)
};

const char* to_string(ShardMode m);
/// Inverse of to_string ("contiguous" / "strided"); throws cello::Error.
ShardMode shard_mode_from_string(const std::string& text);

/// The full grid definition every shard of a distributed sweep must share.
/// Cells are flattened row-major over (workload, fabric, configuration):
/// cell = (wi * fabrics.size() + fi) * configs.size() + ci.  The default
/// single-entry {"1"} fabric axis keeps two-axis grids — their cell ids,
/// fingerprints and serialized form — exactly as before.
struct SweepGrid {
  std::vector<std::string> workloads;  ///< canonical WorkloadSpec strings
  std::vector<std::string> fabrics{"1"};  ///< canonical noc::TopologySpec strings
  std::vector<std::string> configs;    ///< registered configuration names
  AcceleratorConfig arch;
  u64 fingerprint = 0;  ///< grid_fingerprint() of the fields above

  size_t cells() const { return workloads.size() * fabrics.size() * configs.size(); }
  /// True when the grid sweeps fabrics beyond the single-chip default.
  bool has_fabric_axis() const { return fabrics.size() != 1 || fabrics[0] != "1"; }
};

/// Canonicalize and validate a grid: every spec is parsed to its canonical
/// string and every configuration name resolved (and normalized) in the
/// global ConfigRegistry, then the fingerprint is computed.  `fabrics` are
/// noc::TopologySpec strings ("1", "mesh:2x2", "torus:16", ...); empty =
/// the single-chip default.  Throws cello::Error on an empty axis, a
/// malformed or duplicate spec, an unknown config, or a multi-node `arch`
/// (node counts ride the fabric axis, not the shared arch).
SweepGrid make_grid(const std::vector<std::string>& workload_specs,
                    const std::vector<std::string>& config_names,
                    const AcceleratorConfig& arch,
                    const std::vector<std::string>& fabrics = {});

/// FNV-1a over the canonical grid definition: spec strings, configuration
/// names plus their schedule options / buffer composition / knob overrides,
/// and every architecture parameter (doubles in hexfloat).  Shards whose
/// recorded fingerprints differ refuse to merge.
u64 grid_fingerprint(const SweepGrid& grid);

/// One shard's slice of the grid, fully determined by (index, count, mode).
struct ShardPlan {
  u32 index = 1;  ///< 1-based shard id, in [1, count]
  u32 count = 1;
  ShardMode mode = ShardMode::Contiguous;
  std::vector<size_t> cells;  ///< ascending flattened row-major cell ids
};

/// Deterministically partition the grid: over i = 1..count the plans cover
/// every cell exactly once.  Contiguous splits differ in length by at most
/// one cell; strided deals cells round-robin.  A count of 1 canonicalizes to
/// Contiguous (both modes are the full grid), keeping full and merged result
/// files byte-identical whatever mode the sweeps ran with.  Throws
/// cello::Error when index is outside [1, count].
ShardPlan plan_shard(const SweepGrid& grid, u32 index, u32 count,
                     ShardMode mode = ShardMode::Contiguous);

/// A shard's results (plan.cells order) plus everything needed to validate a
/// merge.  A full single-process run is simply shard 1 of count 1.
struct ShardResult {
  SweepGrid grid;
  ShardPlan plan;
  std::vector<SweepResult> results;
};

/// Serialize to the self-describing shard-file JSON ("cello-sweep/1").
/// Byte-deterministic, so a merged file and a full single-process sweep of
/// the same grid are byte-identical.
std::string shard_to_json(const ShardResult& shard);

/// Parse and validate a shard file: format tag, grid, plan bounds, result
/// count, and that every result row names exactly the grid cell its plan
/// position claims.  Throws cello::Error on any mismatch.  Fail-point site
/// "shard.parse" can inject a load failure for recovery-path tests.
ShardResult shard_from_json(const std::string& text);

/// Read + parse one shard file.  Every failure — unreadable file, truncated
/// or malformed JSON, grid/plan mismatch — is rethrown with the file path
/// prefixed, so a merge over many shards quarantines (names) the bad file
/// instead of leaving the operator to bisect an anonymous parse error.
ShardResult shard_from_json_file(const std::string& path);

/// Recombine shards (any order) into the exact row-major order a full
/// SweepRunner::run of the grid produces.  Throws cello::Error when shards
/// disagree on the grid (fingerprint, axes, arch), counts or modes differ, a
/// shard is missing or duplicated, or any cell is left unfilled.  Takes the
/// shards by value and moves the result payloads out; std::move() the vector
/// in when the shards are no longer needed.
std::vector<SweepResult> merge_shards(std::vector<ShardResult> shards);

}  // namespace cello::sim
