// Legacy enum-based entry points, kept as thin shims over the composable API
// (sim::Configuration + sim::ConfigRegistry + sim::Simulator — see
// sim/simulator.hpp).  Each ConfigKind resolves to the identically named
// registry preset; new code should use the Simulator directly.
//
// Analytic configurations (Flexagon, FLAT, SET, PRELUDE-only, Cello) account
// traffic at tensor granularity per scheduled op — faithful because the
// skewed operands are streamed sequentially, so per-op traffic equals
// footprint times the (hit/miss) service split.  The cache configurations
// (Flex+LRU, Flex+BRRIP) are trace-driven at cache-line granularity,
// including the gather pattern of the SpMM (using the real sparse matrix
// when provided).
#pragma once

#include "ir/dag.hpp"
#include "score/schedule.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

/// Schedule the DAG the way the given configuration would (pipelining only
/// for FLAT/SET/Cello; op-by-op otherwise).
score::Schedule make_schedule(const ir::TensorDag& dag, ConfigKind kind,
                              const AcceleratorConfig& arch);

/// Simulate one configuration.  `matrix` (optional) supplies the real sparse
/// structure for the SpMM gather trace of the cache configurations.
RunMetrics simulate(const ir::TensorDag& dag, ConfigKind kind, const AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix = nullptr);

}  // namespace cello::sim
