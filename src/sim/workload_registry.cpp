#include "sim/workload_registry.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/llm.hpp"
#include "workloads/poweriter.hpp"
#include "workloads/resnet.hpp"
#include "workloads/sddmm.hpp"
#include "workloads/spmv.hpp"

namespace cello::sim {

namespace {

/// Expected-input validation failures (not internal invariants): a clean
/// cello::Error the CLI can surface verbatim.
[[noreturn]] void bad_spec(const WorkloadSpec& spec, const std::string& why) {
  throw Error("workload spec '" + spec.to_string() + "': " + why);
}

}  // namespace

i64 WorkloadParams::get_i64(const std::string& key, i64 fallback) {
  consumed_.insert(key);
  const auto it = spec_.params.find(key);
  if (it == spec_.params.end()) return fallback;
  const std::string& v = it->second;
  char* end = nullptr;
  errno = 0;
  const long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0' || errno != 0)
    bad_spec(spec_, "parameter '" + key + "' expects an integer, got '" + v + "'");
  return static_cast<i64>(parsed);
}

std::string WorkloadParams::get_string(const std::string& key, std::string fallback) {
  consumed_.insert(key);
  const auto it = spec_.params.find(key);
  return it == spec_.params.end() ? std::move(fallback) : it->second;
}

void WorkloadParams::check_all_consumed() const {
  std::string unknown;
  for (const auto& [key, value] : spec_.params)
    if (!consumed_.count(key)) {
      if (!unknown.empty()) unknown += ", ";
      unknown += key;
    }
  if (unknown.empty()) return;
  // The consumed set is exactly the keys the kind's builder looked at, so a
  // typo'd key names its valid neighbors ("llm:layer=12" lists "layers").
  std::string allowed;
  for (const auto& key : consumed_) {
    if (!allowed.empty()) allowed += ", ";
    allowed += key;
  }
  bad_spec(spec_, "unknown parameter(s): " + unknown + " (allowed keys for kind '" +
                      spec_.kind + "': " + allowed + ")");
}

namespace {

/// Resolved matrix context shared by every matrix-backed kind.
struct MatrixSource {
  std::shared_ptr<const sparse::CsrMatrix> matrix;  ///< null in shape-only mode
  i64 rows = 0;
  i64 nnz = 0;
  const sparse::DatasetSpec* dataset = nullptr;  ///< set for dataset presets
};

/// Exactly one of mm= / dataset= / gen= / shape-only m=; with none given the
/// kind's default dataset applies (see the header comment for the grammar).
MatrixSource resolve_matrix(WorkloadParams& p, const char* default_dataset) {
  const std::string mm = p.get_string("mm", "");
  const std::string dataset = p.get_string("dataset", "");
  const std::string gen = p.get_string("gen", "");
  const i64 m = p.get_i64("m", 0);
  const i64 nnz = p.get_i64("nnz", 0);
  const i64 seed = p.get_i64("seed", 1);
  // Presence, not value, decides the mode: an explicit m=0 is an error, not
  // a silent fall-through to the default dataset.
  const bool has_m = p.spec().params.count("m") > 0;
  const bool has_nnz = p.spec().params.count("nnz") > 0;
  if (has_m && m <= 0) bad_spec(p.spec(), "m= must be positive, got " + std::to_string(m));
  if (has_nnz && nnz <= 0)
    bad_spec(p.spec(), "nnz= must be positive, got " + std::to_string(nnz));
  const i64 default_nnz = 8 * m;  // shape-only / gen default occupancy

  const int sources = int(!mm.empty()) + int(!dataset.empty()) + int(!gen.empty());
  if (sources > 1)
    bad_spec(p.spec(), "mm=, dataset= and gen= are mutually exclusive matrix sources");
  if (gen.empty() && p.spec().params.count("seed"))
    bad_spec(p.spec(), "seed= only applies to gen= mode");

  MatrixSource out;
  if (!mm.empty()) {
    if (has_m || has_nnz)
      bad_spec(p.spec(), "m=/nnz= conflict with mm= (the file defines the shape)");
    auto matrix = std::make_shared<sparse::CsrMatrix>(sparse::read_matrix_market_file(mm));
    out.rows = matrix->rows();
    out.nnz = matrix->nnz();
    out.matrix = std::move(matrix);
    return out;
  }
  if (!gen.empty()) {
    if (!has_m) bad_spec(p.spec(), "gen= needs m=<rows>");
    const i64 target = has_nnz ? nnz : default_nnz;
    Rng rng(static_cast<u64>(seed));
    sparse::CsrMatrix built;
    if (gen == "fem") {
      built = sparse::make_fem_banded(m, target, rng);
    } else if (gen == "circuit") {
      built = sparse::make_circuit(m, target, rng);
    } else if (gen == "graph") {
      built = sparse::make_powerlaw_graph(m, target, rng);
    } else {
      bad_spec(p.spec(), "unknown gen='" + gen + "' (fem | circuit | graph)");
    }
    auto matrix = std::make_shared<sparse::CsrMatrix>(std::move(built));
    out.rows = matrix->rows();
    out.nnz = matrix->nnz();
    out.matrix = std::move(matrix);
    return out;
  }
  if (!dataset.empty() || !has_m) {
    if (!dataset.empty()) {
      if (has_m || has_nnz)
        bad_spec(p.spec(), "m=/nnz= conflict with dataset= (the preset defines the shape)");
    } else if (has_nnz) {
      bad_spec(p.spec(), "nnz= needs m= (shape-only mode)");
    }
    const auto& spec = sparse::dataset_by_name(dataset.empty() ? default_dataset : dataset);
    auto matrix = std::make_shared<sparse::CsrMatrix>(sparse::instantiate(spec));
    out.dataset = &spec;
    out.rows = matrix->rows();
    out.nnz = matrix->nnz();
    out.matrix = std::move(matrix);
    return out;
  }
  // Shape-only: analytic statistics without a backing matrix (trace-driven
  // policies then fall back to their synthetic occupancy model).
  out.rows = m;
  out.nnz = has_nnz ? nnz : default_nnz;
  return out;
}

std::shared_ptr<const ir::TensorDag> share(ir::TensorDag dag) {
  return std::make_shared<const ir::TensorDag>(std::move(dag));
}

Bytes word_bytes(WorkloadParams& p, i64 fallback) {
  const i64 words = p.get_i64("words", fallback);
  if (words <= 0)
    bad_spec(p.spec(), "words= must be positive, got " + std::to_string(words));
  return static_cast<Bytes>(words);
}

const std::vector<WorkloadParamDoc>& matrix_source_docs() {
  static const std::vector<WorkloadParamDoc> kDocs = {
      {"dataset", "(per kind)", "Table VI preset name (bare token shorthand)"},
      {"mm", "-", "Matrix Market file path"},
      {"gen", "-", "synthetic generator: fem | circuit | graph (with m=, nnz=, seed=)"},
      {"m", "-", "rows; without dataset=/mm=/gen= this selects shape-only mode"},
      {"nnz", "8*m", "stored non-zeros (shape-only and gen= modes)"},
      {"seed", "1", "generator seed (gen= mode)"},
  };
  return kDocs;
}

std::vector<WorkloadParamDoc> with_matrix_docs(std::vector<WorkloadParamDoc> own,
                                               const char* default_dataset) {
  auto docs = matrix_source_docs();
  docs.front().default_value = default_dataset;
  own.insert(own.end(), docs.begin(), docs.end());
  return own;
}

}  // namespace

WorkloadRegistry::WorkloadRegistry() {
  add({"cg",
       "block conjugate gradient (Algorithm 1), 8 ops per iteration",
       with_matrix_docs({{"n", "16", "right-hand sides"},
                         {"iters", "10", "CG iterations"},
                         {"words", "4", "bytes per word"}},
                        "shallow_water1"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "shallow_water1");
         workloads::CgShape shape;
         shape.m = src.rows;
         shape.nnz = src.nnz;
         shape.n = p.get_i64("n", 16);
         shape.iterations = p.get_i64("iters", 10);
         shape.word_bytes = word_bytes(p, 4);
         Workload w;
         w.dag = share(workloads::build_cg_dag(shape));
         w.matrix = src.matrix;
         return w;
       }});
  add({"bicgstab",
       "BiCGStab solver (Fig. 13), 9 ops per iteration",
       with_matrix_docs({{"n", "1", "right-hand sides"},
                         {"iters", "10", "solver iterations"},
                         {"words", "4", "bytes per word"}},
                        "nasa4704"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "nasa4704");
         workloads::BiCgStabShape shape;
         shape.m = src.rows;
         shape.nnz = src.nnz;
         shape.n = p.get_i64("n", 1);
         shape.iterations = p.get_i64("iters", 10);
         shape.word_bytes = word_bytes(p, 4);
         Workload w;
         w.dag = share(workloads::build_bicgstab_dag(shape));
         w.matrix = src.matrix;
         return w;
       }});
  add({"gnn",
       "GCN layer(s): H_l = (A_hat . H_{l-1}) . W_l",
       with_matrix_docs({{"in", "dataset N (else 64)", "input feature width"},
                         {"out", "dataset O (else 16)", "output feature width"},
                         {"layers", "1", "GCN layers (>1 reuses A_hat per layer)"},
                         {"hidden", "64", "hidden width (only valid with layers > 1)"},
                         {"words", "4", "bytes per word"}},
                        "cora"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "cora");
         const bool has_features = src.dataset != nullptr && src.dataset->gnn_in_features > 0;
         workloads::GnnShape shape;
         shape.vertices = src.rows;
         shape.nnz = src.nnz;
         shape.in_features = p.get_i64("in", has_features ? src.dataset->gnn_in_features : 64);
         shape.out_features =
             p.get_i64("out", has_features ? src.dataset->gnn_out_features : 16);
         shape.word_bytes = word_bytes(p, 4);
         const i64 layers = p.get_i64("layers", 1);
         Workload w;
         if (layers == 1) {
           // hidden= is deliberately NOT consumed here, so a single-layer
           // spec carrying it fails loudly instead of silently ignoring it.
           w.dag = share(workloads::build_gnn_dag(shape));
         } else {
           w.dag = share(
               workloads::build_gnn_multilayer_dag(shape, layers, p.get_i64("hidden", 64)));
         }
         w.matrix = src.matrix;
         return w;
       }});
  add({"power",
       "power iteration: SpMV + contracted dot + scale per step",
       with_matrix_docs({{"iters", "10", "iterations"}, {"words", "4", "bytes per word"}},
                        "G2_circuit"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "G2_circuit");
         workloads::PowerIterShape shape;
         shape.m = src.rows;
         shape.nnz = src.nnz;
         shape.iterations = p.get_i64("iters", 10);
         shape.word_bytes = word_bytes(p, 4);
         Workload w;
         w.dag = share(workloads::build_power_iteration_dag(shape));
         w.matrix = src.matrix;
         return w;
       }});
  add({"resnet",
       "ResNet residual block(s) as im2col GEMMs (skip = delayed hold)",
       {{"spatial", "784", "H*W spatial positions"},
        {"channels", "512", "block input channels"},
        {"bottleneck", "128", "bottleneck channels"},
        {"kernel", "3", "middle conv kernel size"},
        {"blocks", "1", "chained residual blocks"},
        {"words", "2", "bytes per word"}},
       [](WorkloadParams& p) {
         workloads::ResNetBlockShape shape;
         shape.spatial = p.get_i64("spatial", shape.spatial);
         shape.in_channels = p.get_i64("channels", shape.in_channels);
         shape.bottleneck = p.get_i64("bottleneck", shape.bottleneck);
         shape.kernel = p.get_i64("kernel", shape.kernel);
         shape.word_bytes = word_bytes(p, 2);
         const i64 blocks = p.get_i64("blocks", 1);
         Workload w;
         w.dag = share(blocks == 1 ? workloads::build_resnet_block_dag(shape)
                                   : workloads::build_resnet_stack_dag(shape, blocks));
         return w;
       }});
  add({"spmv",
       "standalone SpMV/SpMM stream: x@{i} = A . x@{i-1}",
       with_matrix_docs({{"n", "1", "simultaneous vectors (>1 = SpMM)"},
                         {"iters", "10", "chained products"},
                         {"words", "4", "bytes per word"}},
                        "shallow_water1"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "shallow_water1");
         workloads::SpmvShape shape;
         shape.m = src.rows;
         shape.nnz = src.nnz;
         shape.n = p.get_i64("n", 1);
         shape.iterations = p.get_i64("iters", 10);
         shape.word_bytes = word_bytes(p, 4);
         Workload w;
         w.dag = share(workloads::build_spmv_dag(shape));
         w.matrix = src.matrix;
         return w;
       }});
  add({"sddmm",
       "sparse attention block: SDDMM (+ SpMM) per head over a shared mask",
       with_matrix_docs({{"d", "64", "head feature dimension"},
                         {"heads", "1", "attention heads sharing the mask"},
                         {"spmm", "1", "0 = SDDMM kernels only"},
                         {"words", "4", "bytes per word"}},
                        "cora"),
       [](WorkloadParams& p) {
         const MatrixSource src = resolve_matrix(p, "cora");
         workloads::SddmmShape shape;
         shape.rows = src.rows;
         shape.nnz = src.nnz;
         shape.features = p.get_i64("d", 64);
         shape.heads = p.get_i64("heads", 1);
         shape.word_bytes = word_bytes(p, 4);
         shape.with_spmm = p.get_i64("spmm", 1) != 0;
         Workload w;
         w.dag = share(workloads::build_sddmm_dag(shape));
         w.matrix = src.matrix;
         return w;
       }});
  add({"llm",
       "transformer decode: attention + MLP per layer over an append-only KV cache",
       {{"layers", "2", "transformer layers"},
        {"heads", "8", "attention (query) heads"},
        {"d_model", "512", "model width (head_dim = d_model / heads)"},
        {"seq", "128", "prefill context length (KV extent at step 0)"},
        {"decode_steps", "8", "autoregressive decode steps"},
        {"d_ff", "4*d_model", "MLP hidden width"},
        {"gqa", "heads", "KV heads (grouped-query attention)"},
        {"words", "2", "bytes per word"}},
       [](WorkloadParams& p) {
         workloads::LlmShape shape;
         shape.layers = p.get_i64("layers", shape.layers);
         shape.heads = p.get_i64("heads", shape.heads);
         shape.d_model = p.get_i64("d_model", shape.d_model);
         shape.seq = p.get_i64("seq", shape.seq);
         shape.decode_steps = p.get_i64("decode_steps", shape.decode_steps);
         shape.d_ff = p.get_i64("d_ff", 0);
         shape.gqa = p.get_i64("gqa", 0);
         shape.word_bytes = word_bytes(p, 2);
         Workload w;
         w.dag = share(workloads::build_llm_decode_dag(shape));
         return w;
       }});
}

WorkloadRegistry& WorkloadRegistry::global() {
  static WorkloadRegistry registry;
  return registry;
}

void WorkloadRegistry::add(WorkloadKind kind) {
  CELLO_CHECK_MSG(!kind.name.empty(), "workload kind needs a name");
  CELLO_CHECK_MSG(static_cast<bool>(kind.build),
                  "workload kind '" << kind.name << "' has no builder");
  std::lock_guard<std::mutex> lock(mu_);
  CELLO_CHECK_MSG(!by_name_.count(kind.name),
                  "workload kind '" << kind.name << "' already registered");
  kinds_.push_back(std::move(kind));
  by_name_[kinds_.back().name] = kinds_.size() - 1;
}

const WorkloadKind* WorkloadRegistry::find(const std::string& kind_name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_name_.find(kind_name);
  return it == by_name_.end() ? nullptr : &kinds_[it->second];
}

const WorkloadKind& WorkloadRegistry::at(const std::string& kind_name) const {
  const WorkloadKind* k = find(kind_name);
  if (k != nullptr) return *k;
  std::string known;
  for (const auto& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw Error("unknown workload kind '" + kind_name + "' (registered: " + known + ")");
}

std::vector<std::string> WorkloadRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(kinds_.size());
  for (const auto& k : kinds_) out.push_back(k.name);
  return out;
}

Workload WorkloadRegistry::resolve(const WorkloadSpec& spec) const {
  const std::string canonical = spec.to_string();
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    const auto it = cache_.find(canonical);
    if (it != cache_.end()) return it->second;
  }
  const WorkloadKind& kind = at(spec.kind);
  WorkloadParams params(spec);
  Workload built = kind.build(params);
  params.check_all_consumed();
  CELLO_CHECK_MSG(built.dag != nullptr, "workload kind '" << kind.name << "' built no DAG");
  built.name = canonical;
  built.kind = kind.name;
  std::lock_guard<std::mutex> lock(cache_mu_);
  // A concurrent resolve of the same spec may have finished first; share its
  // build so every caller holds the same immutable DAG.
  return cache_.emplace(canonical, std::move(built)).first->second;
}

Workload WorkloadRegistry::resolve(const std::string& spec_text) const {
  return resolve(WorkloadSpec::parse(spec_text));
}

void WorkloadRegistry::clear_cache() const {
  std::lock_guard<std::mutex> lock(cache_mu_);
  cache_.clear();
}

}  // namespace cello::sim
