#include "sim/address_map.hpp"

#include <map>

#include "common/error.hpp"
#include "workloads/cg.hpp"

namespace cello::sim {

AddressMap AddressMap::build(const ir::TensorDag& dag, u32 align_bytes) {
  AddressMap m;
  m.base_of.assign(dag.tensors().size(), -1);

  std::map<std::string, i32> index;
  for (const auto& t : dag.tensors()) {
    const std::string base = workloads::base_name(t.name);
    auto [it, inserted] = index.try_emplace(base, static_cast<i32>(m.entries.size()));
    if (inserted) m.entries.push_back({base, 0, t.bytes()});
    Entry& e = m.entries[it->second];
    e.bytes = std::max(e.bytes, t.bytes());
    m.base_of[t.id] = it->second;
  }

  Addr cursor = 0x1000'0000ull;  // leave page zero unmapped, as hardware would
  for (auto& e : m.entries) {
    e.start = cursor;
    const Bytes padded = (e.bytes + align_bytes - 1) / align_bytes * align_bytes;
    cursor += padded + align_bytes;  // guard gap between tensors
  }
  return m;
}

}  // namespace cello::sim
