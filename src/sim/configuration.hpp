// sim::Configuration: a composable simulation configuration — one schedule
// policy paired with one buffer policy, plus pipeline-style and hold-budget
// knobs.  The seven Table IV rows are presets of this type (see
// ConfigRegistry); any other pairing (SCORE+LRU, FLAT+CHORD, ...) is equally
// expressible.
#pragma once

#include <optional>
#include <string>

#include "sim/config.hpp"
#include "sim/policies/buffer_policy.hpp"
#include "sim/policies/schedule_policy.hpp"

namespace cello::sim {

struct Configuration {
  std::string name;
  SchedulePolicy schedule = SchedulePolicy::OpByOp;
  BufferPolicyFactory buffers;  ///< required; see explicit_buffers() et al.
  std::string buffer_name;      ///< display label of the buffer policy

  /// AdjacentPipeline only: may the pipeline buffer hold a tensor for a
  /// delayed consumer (SET) or is pipelining strictly adjacent (FLAT)?
  /// SCORE always supports holds, bounded by the hold budget.
  bool allow_delayed_hold = false;

  /// Knobs overriding the AcceleratorConfig for this configuration.
  std::optional<PipelineStyle> pipeline_style;
  std::optional<Bytes> hold_budget_bytes;
  /// Multi-chip knobs (Sec. V-B): shard across `nodes` chips wired as
  /// `topology` (a noc::TopologySpec string or bare kind).  Unset = inherit
  /// the arch (whose default is the classic single chip).
  std::optional<i64> nodes;
  std::optional<std::string> topology;

  /// "<schedule> + <buffer>" summary, e.g. "SCORE + CHORD".
  std::string describe() const;
};

/// Convenience builder for user-defined combinations.
Configuration make_configuration(std::string name, SchedulePolicy schedule,
                                 BufferPolicyFactory buffers, std::string buffer_name,
                                 bool allow_delayed_hold = false);

}  // namespace cello::sim
