#include "sim/shard.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>

#include <fstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "noc/topology.hpp"
#include "score/schedule.hpp"
#include "sim/registry.hpp"
#include "sim/result_io.hpp"
#include "sim/simulator.hpp"
#include "sim/workload_spec.hpp"

namespace cello::sim {

namespace {

const char* kFormatTag = "cello-sweep/1";

const char* pipeline_style_name(PipelineStyle s) {
  return s == PipelineStyle::Parallel ? "parallel" : "sequential";
}

PipelineStyle pipeline_style_from_name(const std::string& text) {
  if (text == "parallel") return PipelineStyle::Parallel;
  if (text == "sequential") return PipelineStyle::Sequential;
  throw Error("unknown pipeline style '" + text + "' (expected parallel|sequential)");
}

std::string fingerprint_string(u64 fp) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(fp));
  return buf;
}

u64 fingerprint_from_string(const std::string& text) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x')
    throw Error("malformed grid fingerprint '" + text + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str() + 2, &end, 16);
  if (end != text.c_str() + text.size())
    throw Error("malformed grid fingerprint '" + text + "'");
  return static_cast<u64>(v);
}

/// FNV-1a 64-bit over one token, folding a terminator so "ab"+"c" and
/// "a"+"bc" hash differently.
u64 fnv1a(u64 h, const std::string& token) {
  for (const unsigned char c : token) {
    h ^= c;
    h *= 1099511628211ull;
  }
  h ^= 0xffu;
  h *= 1099511628211ull;
  return h;
}

void arch_to_json(std::string& out, const AcceleratorConfig& a, int indent) {
  const std::string in(static_cast<size_t>(indent), ' ');
  const std::string in2(static_cast<size_t>(indent) + 2, ' ');
  out += "{\n";
  out += in2 + "\"sram_bytes\": " + std::to_string(a.sram_bytes) + ",\n";
  out += in2 + "\"num_macs\": " + std::to_string(a.num_macs) + ",\n";
  out += in2 + "\"clock_hz\": \"" + hex_double(a.clock_hz) + "\",\n";
  out += in2 + "\"line_bytes\": " + std::to_string(a.line_bytes) + ",\n";
  out += in2 + "\"cache_associativity\": " + std::to_string(a.cache_associativity) + ",\n";
  out += in2 + "\"dram_bytes_per_sec\": \"" + hex_double(a.dram_bytes_per_sec) + "\",\n";
  out += in2 + "\"dram_energy_pj_per_byte\": \"" + hex_double(a.dram_energy_pj_per_byte) +
         "\",\n";
  out += in2 + "\"rf_bytes\": " + std::to_string(a.rf_bytes) + ",\n";
  out += in2 + "\"hold_budget_bytes\": " + std::to_string(a.hold_budget_bytes) + ",\n";
  out += in2 + "\"chord_entries\": " + std::to_string(a.chord_entries) + ",\n";
  out += in2 + "\"pipeline_style\": \"" + pipeline_style_name(a.pipeline_style) + "\"";
  // Multi-chip parameters are emitted only when they differ from the
  // single-chip defaults, so classic grids keep their serialized form (and
  // fingerprints, which hash this JSON) byte-identical.
  const AcceleratorConfig defaults;
  if (a.nodes != defaults.nodes) out += ",\n" + in2 + "\"nodes\": " + std::to_string(a.nodes);
  if (a.topology != defaults.topology)
    out += ",\n" + in2 + "\"topology\": \"" + json_escape(a.topology) + "\"";
  if (a.noc_link_bytes_per_sec != defaults.noc_link_bytes_per_sec)
    out += ",\n" + in2 + "\"noc_link_bytes_per_sec\": \"" + hex_double(a.noc_link_bytes_per_sec) +
           "\"";
  if (a.noc_hop_seconds != defaults.noc_hop_seconds)
    out += ",\n" + in2 + "\"noc_hop_seconds\": \"" + hex_double(a.noc_hop_seconds) + "\"";
  if (a.noc_energy_pj_per_byte != defaults.noc_energy_pj_per_byte)
    out += ",\n" + in2 + "\"noc_energy_pj_per_byte\": \"" +
           hex_double(a.noc_energy_pj_per_byte) + "\"";
  out += "\n" + in + "}";
}

std::string arch_json(const AcceleratorConfig& a) {
  std::string out;
  arch_to_json(out, a, 0);
  return out;
}

AcceleratorConfig arch_from_json(const JsonValue& v) {
  if (v.type != JsonValue::Type::Object) throw Error("arch: expected a JSON object");
  reject_unknown_keys(v,
                      {"sram_bytes", "num_macs", "clock_hz", "line_bytes",
                       "cache_associativity", "dram_bytes_per_sec",
                       "dram_energy_pj_per_byte", "rf_bytes", "hold_budget_bytes",
                       "chord_entries", "pipeline_style", "nodes", "topology",
                       "noc_link_bytes_per_sec", "noc_hop_seconds", "noc_energy_pj_per_byte"},
                      "arch");
  AcceleratorConfig a;
  a.sram_bytes = v.at("sram_bytes").as_u64();
  a.num_macs = v.at("num_macs").as_i64();
  a.clock_hz = v.at("clock_hz").as_double();
  a.line_bytes = static_cast<u32>(v.at("line_bytes").as_u64());
  a.cache_associativity = static_cast<u32>(v.at("cache_associativity").as_u64());
  a.dram_bytes_per_sec = v.at("dram_bytes_per_sec").as_double();
  a.dram_energy_pj_per_byte = v.at("dram_energy_pj_per_byte").as_double();
  a.rf_bytes = v.at("rf_bytes").as_u64();
  a.hold_budget_bytes = v.at("hold_budget_bytes").as_u64();
  a.chord_entries = static_cast<u32>(v.at("chord_entries").as_u64());
  a.pipeline_style = pipeline_style_from_name(v.at("pipeline_style").as_string());
  // Conditionally-emitted multi-chip parameters: absent = defaults.
  if (const JsonValue* nodes = v.find("nodes")) a.nodes = nodes->as_i64();
  if (const JsonValue* topology = v.find("topology")) a.topology = topology->as_string();
  if (const JsonValue* bw = v.find("noc_link_bytes_per_sec"))
    a.noc_link_bytes_per_sec = bw->as_double();
  if (const JsonValue* hop = v.find("noc_hop_seconds")) a.noc_hop_seconds = hop->as_double();
  if (const JsonValue* e = v.find("noc_energy_pj_per_byte"))
    a.noc_energy_pj_per_byte = e->as_double();
  return a;
}

/// Full grid agreement: fingerprint AND the definition it summarizes, so a
/// fingerprint collision cannot silently merge different grids.
bool same_grid(const SweepGrid& a, const SweepGrid& b) {
  return a.fingerprint == b.fingerprint && a.workloads == b.workloads &&
         a.fabrics == b.fabrics && a.configs == b.configs &&
         arch_json(a.arch) == arch_json(b.arch);
}

std::string shard_label(const ShardPlan& plan) {
  return std::to_string(plan.index) + "/" + std::to_string(plan.count);
}

}  // namespace

const char* to_string(ShardMode m) {
  return m == ShardMode::Contiguous ? "contiguous" : "strided";
}

ShardMode shard_mode_from_string(const std::string& text) {
  if (text == "contiguous") return ShardMode::Contiguous;
  if (text == "strided") return ShardMode::Strided;
  throw Error("unknown shard mode '" + text + "' (expected contiguous|strided)");
}

u64 grid_fingerprint(const SweepGrid& grid) {
  u64 h = 14695981039346656037ull;
  h = fnv1a(h, kFormatTag);
  for (const std::string& spec : grid.workloads) h = fnv1a(h, "w:" + spec);
  // The fabric axis folds in only when present, so classic two-axis grids
  // keep the fingerprints their existing shard files and journals carry.
  if (grid.has_fabric_axis())
    for (const std::string& fabric : grid.fabrics) h = fnv1a(h, "f:" + fabric);
  const Simulator scheduler(grid.arch);
  const auto& registry = ConfigRegistry::global();
  for (const std::string& name : grid.configs) {
    const Configuration& c = registry.at(name);
    const score::ScheduleOptions opts = scheduler.schedule_options(c);
    std::ostringstream os;
    os << "c:" << c.name << '|' << to_string(c.schedule) << '|' << c.buffer_name << '|'
       << c.allow_delayed_hold << '|'
       << (c.pipeline_style ? pipeline_style_name(*c.pipeline_style) : "-") << '|'
       << (c.hold_budget_bytes ? std::to_string(*c.hold_budget_bytes) : "-") << '|'
       << opts.rf_bytes << '|' << opts.enable_pipelining << '|' << opts.minimize_swizzle;
    // Multi-chip knobs fold in only when set, preserving historical hashes.
    if (c.nodes) os << "|nodes:" << *c.nodes;
    if (c.topology) os << "|topology:" << *c.topology;
    h = fnv1a(h, os.str());
  }
  h = fnv1a(h, "arch:" + arch_json(grid.arch));
  return h;
}

SweepGrid make_grid(const std::vector<std::string>& workload_specs,
                    const std::vector<std::string>& config_names,
                    const AcceleratorConfig& arch,
                    const std::vector<std::string>& fabrics) {
  CELLO_CHECK_MSG(!workload_specs.empty() && !config_names.empty(),
                  "a sweep grid needs at least one workload and one configuration");
  CELLO_CHECK_MSG(arch.nodes == 1,
                  "grid arch must be single-node; sweep node counts via the fabric axis");
  SweepGrid grid;
  grid.workloads.reserve(workload_specs.size());
  for (const std::string& text : workload_specs)
    grid.workloads.push_back(WorkloadSpec::parse(text).to_string());
  if (!fabrics.empty()) {
    grid.fabrics.clear();
    for (const std::string& text : fabrics) {
      const std::string canonical = noc::TopologySpec::parse(text).to_string();
      CELLO_CHECK_MSG(std::find(grid.fabrics.begin(), grid.fabrics.end(), canonical) ==
                          grid.fabrics.end(),
                      "duplicate fabric '" << text << "' (canonical '" << canonical
                                           << "') in the sweep grid");
      grid.fabrics.push_back(canonical);
    }
  }
  grid.configs.reserve(config_names.size());
  const auto& registry = ConfigRegistry::global();
  for (const std::string& name : config_names)
    grid.configs.push_back(registry.at(name).name);  // normalized registered name
  grid.arch = arch;
  grid.fingerprint = grid_fingerprint(grid);
  return grid;
}

ShardPlan plan_shard(const SweepGrid& grid, u32 index, u32 count, ShardMode mode) {
  CELLO_CHECK_MSG(count >= 1, "shard count must be >= 1");
  CELLO_CHECK_MSG(index >= 1 && index <= count,
                  "shard index " << index << " outside 1.." << count);
  // A 1/1 plan holds every cell under either mode; canonicalize it so full
  // and merged result files are byte-identical regardless of the --shard-mode
  // the sweeps ran with.
  if (count == 1) mode = ShardMode::Contiguous;
  ShardPlan plan;
  plan.index = index;
  plan.count = count;
  plan.mode = mode;
  const size_t n = grid.cells();
  const size_t z = index - 1;  // 0-based
  if (mode == ShardMode::Contiguous) {
    const size_t base = n / count;
    const size_t rem = n % count;
    const size_t begin = z * base + std::min<size_t>(z, rem);
    const size_t len = base + (z < rem ? 1 : 0);
    plan.cells.reserve(len);
    for (size_t j = 0; j < len; ++j) plan.cells.push_back(begin + j);
  } else {
    plan.cells.reserve(n / count + 1);
    for (size_t c = z; c < n; c += count) plan.cells.push_back(c);
  }
  return plan;
}

std::string shard_to_json(const ShardResult& shard) {
  const SweepGrid& grid = shard.grid;
  std::string out = "{\n";
  out += "  \"format\": \"" + std::string(kFormatTag) + "\",\n";
  out += "  \"grid\": {\n";
  out += "    \"fingerprint\": \"" + fingerprint_string(grid.fingerprint) + "\",\n";
  out += "    \"workloads\": [\n";
  for (size_t i = 0; i < grid.workloads.size(); ++i)
    out += "      \"" + json_escape(grid.workloads[i]) + "\"" +
           (i + 1 < grid.workloads.size() ? ",\n" : "\n");
  out += "    ],\n";
  if (grid.has_fabric_axis()) {
    // Like the NoC arch keys: emitted only when the axis is swept, so
    // classic two-axis shard files stay byte-identical.
    out += "    \"fabrics\": [\n";
    for (size_t i = 0; i < grid.fabrics.size(); ++i)
      out += "      \"" + json_escape(grid.fabrics[i]) + "\"" +
             (i + 1 < grid.fabrics.size() ? ",\n" : "\n");
    out += "    ],\n";
  }
  out += "    \"configs\": [\n";
  for (size_t i = 0; i < grid.configs.size(); ++i)
    out += "      \"" + json_escape(grid.configs[i]) + "\"" +
           (i + 1 < grid.configs.size() ? ",\n" : "\n");
  out += "    ],\n";
  out += "    \"arch\": ";
  arch_to_json(out, grid.arch, 4);
  out += "\n  },\n";
  out += "  \"shard\": { \"index\": " + std::to_string(shard.plan.index) +
         ", \"count\": " + std::to_string(shard.plan.count) + ", \"mode\": \"" +
         to_string(shard.plan.mode) + "\" },\n";
  out += "  \"results\": [";
  if (shard.results.empty()) {
    out += "]\n";
  } else {
    out += "\n";
    for (size_t i = 0; i < shard.results.size(); ++i) {
      out += "    ";
      result_to_json(out, shard.results[i], 4);
      out += (i + 1 < shard.results.size()) ? ",\n" : "\n";
    }
    out += "  ]\n";
  }
  out += "}\n";
  return out;
}

ShardResult shard_from_json(const std::string& text) {
  failpoint::maybe_throw("shard.parse");
  const JsonValue doc = json_parse(text);
  if (doc.type != JsonValue::Type::Object) throw Error("shard file: expected a JSON object");
  reject_unknown_keys(doc, {"format", "grid", "shard", "results"}, "shard file");
  const std::string& format = doc.at("format").as_string();
  if (format != kFormatTag)
    throw Error("shard file: format '" + format + "' is not '" + kFormatTag + "'");

  ShardResult shard;
  const JsonValue& grid_v = doc.at("grid");
  reject_unknown_keys(grid_v, {"fingerprint", "workloads", "fabrics", "configs", "arch"},
                      "shard file grid");
  shard.grid.fingerprint = fingerprint_from_string(grid_v.at("fingerprint").as_string());
  const JsonValue& workloads_v = grid_v.at("workloads");
  const JsonValue& configs_v = grid_v.at("configs");
  if (workloads_v.type != JsonValue::Type::Array || configs_v.type != JsonValue::Type::Array)
    throw Error("shard file grid: workloads/configs must be arrays");
  for (const JsonValue& w : workloads_v.items) shard.grid.workloads.push_back(w.as_string());
  for (const JsonValue& c : configs_v.items) shard.grid.configs.push_back(c.as_string());
  if (shard.grid.workloads.empty() || shard.grid.configs.empty())
    throw Error("shard file grid: empty workload or configuration axis");
  if (const JsonValue* fabrics_v = grid_v.find("fabrics")) {
    if (fabrics_v->type != JsonValue::Type::Array || fabrics_v->items.empty())
      throw Error("shard file grid: fabrics must be a non-empty array");
    shard.grid.fabrics.clear();
    for (const JsonValue& f : fabrics_v->items) {
      const std::string& text = f.as_string();
      // Parse to validate AND require the canonical spelling: a file saying
      // "mesh:4" where the canonical axis says "mesh:2x2" is grid drift.
      if (noc::TopologySpec::parse(text).to_string() != text)
        throw Error("shard file grid: fabric '" + text + "' is not canonical");
      shard.grid.fabrics.push_back(text);
    }
  }
  shard.grid.arch = arch_from_json(grid_v.at("arch"));

  const JsonValue& shard_v = doc.at("shard");
  reject_unknown_keys(shard_v, {"index", "count", "mode"}, "shard file shard");
  const u64 index = shard_v.at("index").as_u64();
  const u64 count = shard_v.at("count").as_u64();
  // The u32 narrowing below must not wrap: a file claiming shard 2^32+1 of
  // 2^32+2 would otherwise be silently reinterpreted as shard 1/2.
  if (count < 1 || index < 1 || index > count || count > 0xffffffffull)
    throw Error("shard file: shard " + std::to_string(index) + "/" + std::to_string(count) +
                " is not a valid 1-based shard of its count");
  const ShardMode mode = shard_mode_from_string(shard_v.at("mode").as_string());
  // Rederive the cell list from (index, count, mode): the file cannot claim
  // cells its plan does not own.
  shard.plan = plan_shard(shard.grid, static_cast<u32>(index), static_cast<u32>(count), mode);

  const JsonValue& results_v = doc.at("results");
  if (results_v.type != JsonValue::Type::Array)
    throw Error("shard file: results must be an array");
  shard.results.reserve(results_v.items.size());
  for (const JsonValue& r : results_v.items) shard.results.push_back(result_from_json(r));

  if (shard.results.size() != shard.plan.cells.size())
    throw Error("shard file " + shard_label(shard.plan) + ": holds " +
                std::to_string(shard.results.size()) + " results but its plan has " +
                std::to_string(shard.plan.cells.size()) + " cells");
  const size_t n_fabrics = shard.grid.fabrics.size();
  const size_t n_configs = shard.grid.configs.size();
  const bool fabric_axis = shard.grid.has_fabric_axis();
  for (size_t j = 0; j < shard.results.size(); ++j) {
    const size_t cell = shard.plan.cells[j];
    const std::string& workload = shard.grid.workloads[cell / (n_fabrics * n_configs)];
    const std::string& fabric =
        fabric_axis ? shard.grid.fabrics[(cell / n_configs) % n_fabrics] : std::string();
    const std::string& config = shard.grid.configs[cell % n_configs];
    if (shard.results[j].workload != workload || shard.results[j].fabric != fabric ||
        shard.results[j].config != config)
      throw Error("shard file " + shard_label(shard.plan) + ": result " + std::to_string(j) +
                  " names (" + shard.results[j].workload + ", " + shard.results[j].fabric +
                  ", " + shard.results[j].config + ") but cell " + std::to_string(cell) +
                  " is (" + workload + ", " + fabric + ", " + config + ")");
  }
  return shard;
}

ShardResult shard_from_json_file(const std::string& path) {
  std::string text;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw Error("shard file '" + path + "': cannot read");
    std::ostringstream buf;
    buf << in.rdbuf();
    text = buf.str();
  }
  try {
    return shard_from_json(text);
  } catch (const std::exception& e) {
    throw Error("shard file '" + path + "': " + e.what());
  }
}

std::vector<SweepResult> merge_shards(std::vector<ShardResult> shards) {
  CELLO_CHECK_MSG(!shards.empty(), "merge needs at least one shard");
  const ShardResult& first = shards.front();
  const u32 count = first.plan.count;
  if (shards.size() != count)
    throw Error("merge: grid is split " + std::to_string(count) + " ways but " +
                std::to_string(shards.size()) + " shard(s) were provided");

  std::vector<char> seen(count, 0);
  std::vector<SweepResult> out(first.grid.cells());
  std::vector<char> filled(out.size(), 0);
  for (ShardResult& shard : shards) {
    if (!same_grid(shard.grid, first.grid))
      throw Error("merge: shard " + shard_label(shard.plan) +
                  " was built against a different grid (fingerprint " +
                  fingerprint_string(shard.grid.fingerprint) + " vs " +
                  fingerprint_string(first.grid.fingerprint) + ")");
    if (shard.plan.count != count)
      throw Error("merge: shard " + shard_label(shard.plan) + " disagrees on the shard count " +
                  std::to_string(count));
    if (shard.plan.mode != first.plan.mode)
      throw Error("merge: shard " + shard_label(shard.plan) + " uses mode " +
                  to_string(shard.plan.mode) + " but the set started with " +
                  to_string(first.plan.mode));
    if (seen[shard.plan.index - 1])
      throw Error("merge: duplicate shard " + shard_label(shard.plan));
    seen[shard.plan.index - 1] = 1;
    // Never trust a hand-built cell list: rederive it from (index, count, mode).
    const ShardPlan plan =
        plan_shard(shard.grid, shard.plan.index, shard.plan.count, shard.plan.mode);
    if (shard.results.size() != plan.cells.size())
      throw Error("merge: shard " + shard_label(shard.plan) + " holds " +
                  std::to_string(shard.results.size()) + " results but its plan has " +
                  std::to_string(plan.cells.size()) + " cells");
    for (size_t j = 0; j < plan.cells.size(); ++j) {
      const size_t cell = plan.cells[j];
      if (filled[cell])
        throw Error("merge: cell " + std::to_string(cell) + " provided twice");
      out[cell] = std::move(shard.results[j]);  // only results move; grids stay valid
      filled[cell] = 1;
    }
  }
  for (u32 i = 0; i < count; ++i)
    if (!seen[i])
      throw Error("merge: missing shard " + std::to_string(i + 1) + "/" +
                  std::to_string(count));
  for (size_t cell = 0; cell < filled.size(); ++cell)
    if (!filled[cell]) throw Error("merge: cell " + std::to_string(cell) + " left unfilled");
  return out;
}

}  // namespace cello::sim
