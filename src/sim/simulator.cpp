#include "sim/simulator.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"
#include "sim/access_stream.hpp"
#include "sim/address_map.hpp"
#include "sim/partition.hpp"
#include "sim/policies/schedule_policy.hpp"
#include "sim/registry.hpp"
#include "trace/trace.hpp"

namespace cello::sim {

namespace {

using score::Schedule;

// Track layout of a traced run: one pid, fixed tid lanes.
constexpr i32 kTracePid = 0;
constexpr i32 kScheduleTid = 0;  ///< per-step compute spans
constexpr i32 kDramTid = 1;      ///< per-group DRAM spans + end-of-run drain
constexpr i32 kBufferTid = 2;    ///< buffer-occupancy counter samples
constexpr i32 kNocTid = 3;       ///< multi-node collective spans

/// Per-step observations collected (only when a sink is armed) during the
/// loop and replayed into events once the group times are final — a group's
/// duration is max(compute, dram) and is only known when the group closes.
struct TraceStep {
  i32 group = 0;
  Bytes dram = 0;       ///< DRAM bytes this step moved
  Bytes occupancy = 0;  ///< policy occupancy after the step retired its inputs
};

/// Serialize one single-chip run: per-step compute spans laid back-to-back
/// inside their pipeline group on the schedule track, one aggregated DRAM
/// span per group (the model prices DRAM per group, not per op), occupancy
/// counter samples at each step's compute end, and the end-of-run drain.
void emit_run_trace(trace::TraceSink& sink, const ir::TensorDag& dag, const Schedule& sched,
                    const AcceleratorConfig& arch, const std::vector<TraceStep>& steps,
                    const std::vector<double>& group_compute,
                    const std::vector<double>& group_dram, bool drained, Bytes drained_bytes,
                    Bytes final_occupancy) {
  sink.track(kTracePid, kScheduleTid, "cello-sim", "schedule");
  sink.track(kTracePid, kDramTid, "cello-sim", "dram");
  sink.track(kTracePid, kBufferTid, "cello-sim", "buffer");

  // Groups serialize; within a group compute and DRAM overlap, so group g
  // starts at the sum of max(compute, dram) over the groups before it.
  std::vector<double> gstart(group_compute.size() + 1, 0.0);
  for (size_t g = 0; g < group_compute.size(); ++g)
    gstart[g + 1] = gstart[g] + std::max(group_compute[g], group_dram[g]);

  std::vector<Bytes> gbytes(group_compute.size(), 0);
  i32 cur = -1;
  double cursor = 0;
  for (size_t i = 0; i < steps.size(); ++i) {
    const TraceStep& ts = steps[i];
    if (ts.group != cur) {
      cur = ts.group;
      cursor = gstart[cur];
    }
    gbytes[cur] += ts.dram;
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    const double dur = arch.compute_seconds(op.macs());
    sink.span(kTracePid, kScheduleTid, op.name, cursor, dur,
              {trace::arg("step", static_cast<u64>(i)), trace::arg("group", i64{cur}),
               trace::arg("macs", op.macs()), trace::arg("dram_bytes", ts.dram)});
    cursor += dur;
    sink.counter(kTracePid, kBufferTid, "buffer_occupancy", cursor, ts.occupancy);
  }

  // The drain, when present, is the one trailing group without steps.
  const size_t run_groups = group_compute.size() - (drained ? 1 : 0);
  for (size_t g = 0; g < run_groups; ++g)
    if (group_dram[g] > 0)
      sink.span(kTracePid, kDramTid, "dram", gstart[g], group_dram[g],
                {trace::arg("group", static_cast<u64>(g)), trace::arg("bytes", gbytes[g])});
  if (drained)
    sink.span(kTracePid, kDramTid, "drain", gstart[run_groups], group_dram[run_groups],
              {trace::arg("bytes", drained_bytes)});
  sink.counter(kTracePid, kBufferTid, "buffer_occupancy", gstart[group_compute.size()],
               final_occupancy);
}

/// CELLO_DISABLE_REPLAY=1 forces per-op servicing even when a stream is
/// available — the escape hatch for isolating replay from a regression.
/// Re-read per run (not cached) so tests can toggle it.
bool replay_disabled_by_env() {
  const char* e = std::getenv("CELLO_DISABLE_REPLAY");
  return e != nullptr && *e != '\0' && *e != '0';
}

}  // namespace

void trace_collectives(trace::TraceSink& sink, const RunMetrics& folded,
                       double per_node_seconds) {
  sink.track(kTracePid, kNocTid, "cello-sim", "noc");
  sink.span(kTracePid, kNocTid, "collectives", per_node_seconds, folded.noc_seconds,
            {trace::arg("nodes", folded.nodes), trace::arg("noc_bytes", folded.noc_bytes),
             trace::arg("max_link_utilization", folded.max_link_utilization)});
}

// Out-of-line so the header can hold BufferPolicy by forward declaration.
RunScratch::RunScratch() = default;
RunScratch::~RunScratch() = default;
RunScratch::RunScratch(RunScratch&&) noexcept = default;
RunScratch& RunScratch::operator=(RunScratch&&) noexcept = default;

AcceleratorConfig Simulator::effective_arch(const Configuration& config) const {
  AcceleratorConfig arch = arch_;
  if (config.pipeline_style) arch.pipeline_style = *config.pipeline_style;
  if (config.hold_budget_bytes) arch.hold_budget_bytes = *config.hold_budget_bytes;
  if (config.nodes) arch.nodes = *config.nodes;
  if (config.topology) arch.topology = *config.topology;
  return arch;
}

score::ScheduleOptions Simulator::schedule_options(const Configuration& config) const {
  const AcceleratorConfig arch = effective_arch(config);
  score::ScheduleOptions opts;
  opts.rf_bytes = arch.rf_bytes;
  opts.enable_pipelining = config.schedule != SchedulePolicy::OpByOp;
  return opts;
}

score::Schedule Simulator::make_schedule(const ir::TensorDag& dag,
                                         const Configuration& config) const {
  return score::build_schedule(dag, schedule_options(config));
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config,
                          const RunArtifacts& artifacts) const {
  const AcceleratorConfig arch = effective_arch(config);
  if (arch.nodes > 1) {
    // Multi-chip path (Sec. V-B): shard the dominant rank, run one node's
    // slice through the exact single-chip machinery, then fold NoC traffic
    // and the 1-node baseline into whole-system metrics.  Any sparse-matrix
    // context describes the full workload; the shard run keeps it as an
    // approximation of one node's slice of the sparsity structure.
    CELLO_CHECK_MSG(artifacts.schedule == nullptr && artifacts.address_map == nullptr &&
                        artifacts.reuse_index == nullptr && artifacts.router_tables == nullptr &&
                        artifacts.access_stream == nullptr,
                    "prebuilt artifacts describe one DAG and are single-chip; multi-node runs "
                    "build per-node shard artifacts themselves");
    const noc::Topology topo =
        noc::Topology::build(noc::resolve_topology(arch.topology, arch.nodes));
    const Partition part = build_partition(dag, arch.nodes);
    AcceleratorConfig single = arch;
    single.nodes = 1;
    Configuration inner = config;
    inner.nodes.reset();
    inner.topology.reset();
    const Simulator node_sim(single, matrix_);
    // The node's shard run carries the trace; the 1-node baseline stays
    // untraced (its only contribution is the parallel-efficiency scalar).
    RunArtifacts shard_artifacts;
    shard_artifacts.scratch = artifacts.scratch;
    shard_artifacts.trace = artifacts.trace;
    const RunMetrics per_node = node_sim.run(part.shard, inner, shard_artifacts);
    const RunMetrics baseline = node_sim.run(dag, inner, RunArtifacts{});
    RunMetrics folded = fold_multinode(per_node, baseline.seconds, part, topo, arch);
    if (artifacts.trace != nullptr) trace_collectives(*artifacts.trace, folded, per_node.seconds);
    return folded;
  }
  CELLO_CHECK_MSG((artifacts.schedule == nullptr) == (artifacts.address_map == nullptr),
                  "RunArtifacts::schedule and ::address_map travel together: both or neither");
  CELLO_CHECK_MSG(artifacts.schedule != nullptr ||
                      (artifacts.reuse_index == nullptr && artifacts.router_tables == nullptr &&
                       artifacts.access_stream == nullptr),
                  "a prebuilt reuse index / router tables / access stream need their schedule "
                  "alongside");
  if (artifacts.schedule == nullptr) {
    const Schedule sched = make_schedule(dag, config);
    const AddressMap map = AddressMap::build(dag);
    const score::ReuseIndex reuse =
        score::ReuseIndex::build(dag, sched, map.base_of, map.entries.size());
    return run_impl(dag, config, arch, sched, map, reuse, nullptr, artifacts.scratch,
                    artifacts.trace, nullptr);
  }
  if (artifacts.reuse_index == nullptr) {
    const score::ReuseIndex reuse = score::ReuseIndex::build(
        dag, *artifacts.schedule, artifacts.address_map->base_of,
        artifacts.address_map->entries.size());
    return run_impl(dag, config, arch, *artifacts.schedule, *artifacts.address_map, reuse,
                    artifacts.router_tables, artifacts.scratch, artifacts.trace,
                    artifacts.access_stream);
  }
  return run_impl(dag, config, arch, *artifacts.schedule, *artifacts.address_map,
                  *artifacts.reuse_index, artifacts.router_tables, artifacts.scratch,
                  artifacts.trace, artifacts.access_stream);
}

// ---- deprecated shims (call through to the RunArtifacts signature) ---------
RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config,
                          const Schedule& sched, const AddressMap& map) const {
  RunArtifacts artifacts;
  artifacts.schedule = &sched;
  artifacts.address_map = &map;
  return run(dag, config, artifacts);
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config,
                          const Schedule& sched, const AddressMap& map,
                          const score::ReuseIndex& reuse, RunScratch* scratch) const {
  RunArtifacts artifacts;
  artifacts.schedule = &sched;
  artifacts.address_map = &map;
  artifacts.reuse_index = &reuse;
  artifacts.scratch = scratch;
  return run(dag, config, artifacts);
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const std::string& config_name) const {
  return run(dag, ConfigRegistry::global().at(config_name), RunArtifacts{});
}

RunMetrics Simulator::run(const ir::TensorDag& dag, ConfigKind kind) const {
  return run(dag, ConfigRegistry::preset(kind), RunArtifacts{});
}

RunMetrics Simulator::run_impl(const ir::TensorDag& dag, const Configuration& config,
                               const AcceleratorConfig& arch, const Schedule& sched,
                               const AddressMap& map, const score::ReuseIndex& reuse_index,
                               const RouterTables* tables, RunScratch* scratch,
                               trace::TraceSink* sink, const AccessStream* stream) const {
  CELLO_CHECK_MSG(static_cast<bool>(config.buffers),
                  "configuration '" << config.name << "' has no buffer policy factory");
  CELLO_CHECK_MSG(reuse_index.num_bases() == map.entries.size(),
                  "reuse index covers " << reuse_index.num_bases() << " bases, address map "
                                        << map.entries.size()
                                        << " — artifacts from different workloads?");
  CELLO_CHECK_MSG(tables == nullptr || tables->pipelined.size() == dag.tensors().size(),
                  "router tables cover " << (tables ? tables->pipelined.size() : 0)
                                         << " tensors, DAG has " << dag.tensors().size()
                                         << " — artifacts from a different workload?");
  const Router router =
      tables != nullptr
          ? Router(dag, sched, config.schedule, *tables)
          : Router(dag, sched, config.schedule, config.allow_delayed_hold, arch);
  const size_t n_bases = map.entries.size();

  // All per-run mutable state lives in a RunScratch; without a caller-owned
  // one this run uses a private scratch (identical behavior, fresh storage).
  RunScratch local;
  RunScratch& s = scratch != nullptr ? *scratch : local;

  // The buffer policy: pooled policies are reset to constructed state instead
  // of reconstructed (cache arrays, CHORD tables keep their storage); configs
  // whose policy cannot guarantee that — or whose effective arch changed
  // since the pooled instance was built — get a fresh instance.
  RunScratch::PooledPolicy& slot = s.policies_[config.name];
  if (slot.policy != nullptr && slot.policy->reusable() && slot.arch == arch) {
    slot.policy->reset();
  } else {
    slot.policy = config.buffers(arch);
    slot.arch = arch;
  }
  BufferPolicy* const policy = slot.policy.get();
  const bool trace = policy->trace_driven();

  // Stream replay: consume the pre-captured access stream in one pass up
  // front instead of regenerating per-op accesses inside the loop.  Traced
  // runs stay on the direct path — their per-step occupancy samples need the
  // cache state to evolve stepwise.  policy->replay re-checks geometry
  // compatibility and falls back (returns false) on mismatch, so a stale
  // stream can slow a run down but never skew it.
  const std::vector<BufferService>* replayed = nullptr;
  if (trace && stream != nullptr && sink == nullptr && policy->supports_replay() &&
      !replay_disabled_by_env()) {
    CELLO_CHECK_MSG(stream->schedule_steps == sched.steps.size(),
                    "access stream captured over a different schedule ("
                        << stream->schedule_steps << " steps, schedule has "
                        << sched.steps.size() << ")");
    std::vector<BufferService>& services = s.replay_services_;
    services.clear();
    if (policy->replay(*stream, services)) replayed = &services;
  }

  score::ReuseCursor& reuse = s.cursor_;
  reuse.reset(reuse_index);

  RunMetrics metrics;
  metrics.reserve_steps(sched.steps.size());

  // DRAM traffic attribution, accumulated per base id during the run and
  // materialized into the name-keyed map once at the end (no string-keyed
  // map lookups on the hot path).  `touched` preserves which bases appeared,
  // so zero-byte attributions still materialize like they used to.
  std::vector<Bytes>& traffic = s.traffic_;
  traffic.assign(n_bases, 0);
  std::vector<u8>& traffic_touched = s.traffic_touched_;
  traffic_touched.assign(n_bases, 0);

  auto attribute_read = [&](Bytes b, i32 base) {
    metrics.dram_read_bytes += b;
    traffic[base] += b;
    traffic_touched[base] = 1;
  };
  auto attribute_write = [&](Bytes b, i32 base) {
    metrics.dram_write_bytes += b;
    traffic[base] += b;
    traffic_touched[base] = 1;
  };

  auto meta_for = [&](const ir::TensorDesc& t, i64 step) {
    chord::TensorMeta m;
    m.id = map.base_id(t.id);
    m.name = map.of(t.id).base;
    m.start_addr = map.of(t.id).start;
    m.bytes = t.bytes();
    m.remaining_uses = reuse.remaining_after(reuse_index, m.id, step);
    m.next_use_distance = reuse.next_distance(reuse_index, m.id, step);
    if (t.append_only) {
      m.append_only = true;
      m.appended_bytes = dag.appended_bytes(t.id);
    }
    return m;
  };

  // External register-file-resident bases already fetched once.
  std::vector<u8>& rf_loaded = s.rf_loaded_;
  rf_loaded.assign(n_bases, 0);

  // Bases whose final version is a result stay resident until the
  // end-of-run drain instead of being retired at their last consumption.
  std::vector<u8>& result_base = s.result_base_;
  result_base.assign(n_bases, 0);
  for (const auto& t : dag.tensors())
    if (t.is_result) result_base[map.base_id(t.id)] = 1;

  // Per-pipeline-group timing accumulators: consecutive steps linked by an
  // on-chip serviced edge share a group (Parallel pipeline style only);
  // everything else is op-by-op.
  std::vector<double>& group_compute = s.group_compute_;
  std::vector<double>& group_dram = s.group_dram_;
  group_compute.clear();
  group_dram.clear();
  group_compute.reserve(sched.steps.size() + 1);
  group_dram.reserve(sched.steps.size() + 1);
  i32 cur_group = -1;

  // Scratch for per-step input-base dedup (op arity is tiny; sorted so the
  // retirement order matches the old std::set iteration).
  std::vector<i32>& retire_bases = s.retire_bases_;
  retire_bases.clear();
  retire_bases.reserve(8);

  u64 pipeline_sram_lines = 0;  ///< pipeline-buffer staging accesses

  // Armed only when a sink is present: per-step observations for the trace,
  // replayed into events after the loop once group durations are final.
  std::vector<TraceStep> tsteps;
  if (sink != nullptr) tsteps.reserve(sched.steps.size());

  // Hoisted per-step trace descriptor: only the op fields change per step,
  // so the operand list's storage is reused across the whole run.
  OpTrace op_trace;
  op_trace.dag = &dag;
  op_trace.map = &map;
  op_trace.matrix = matrix_;

  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    const i64 step = static_cast<i64>(i);

    bool joined = false;
    if (i > 0 && arch.pipeline_style == PipelineStyle::Parallel && router.pipelines())
      joined = router.linked_onchip(sched.steps[i - 1].op, sched.steps[i].op);
    if (!joined) {
      group_compute.push_back(0);
      group_dram.push_back(0);
      ++cur_group;
    }
    group_compute[cur_group] += arch.compute_seconds(op.macs());
    metrics.total_macs += op.macs();

    Bytes op_dram = 0;
    op_trace.inputs.clear();  // refilled only for trace-driven policies

    // ---- inputs ----
    for (size_t ii = 0; ii < op.inputs.size(); ++ii) {
      const ir::TensorId in = op.inputs[ii];
      // Same tensor used twice (R^T R): only the first occurrence is serviced.
      bool repeat = false;
      for (size_t jj = 0; jj < ii; ++jj) repeat = repeat || op.inputs[jj] == in;
      if (repeat) continue;
      // In-place append (KV-cache decode): the op extends this operand into
      // its own output — same growing base, untouched prefix.  No data moves
      // for the prefix, so the operand is not serviced; the output write
      // prices whatever the policy charges for the step's growth.
      if (dag.tensor(op.output).append_prev == in) continue;
      const ir::TensorDesc& t = dag.tensor(in);
      const Bytes b = t.bytes();
      const i32 base = map.base_id(in);

      switch (router.route_input(op, in)) {
        case Route::PipelineBuffer:
          pipeline_sram_lines += ceil_div<Bytes>(b, arch.line_bytes);
          break;
        case Route::RegisterFile:
          // Externals cost one cold fetch; on-chip-produced stay in the RF.
          if (!dag.producer(in).has_value() && !rf_loaded[base]) {
            rf_loaded[base] = 1;
            attribute_read(b, base);
            op_dram += b;
          }
          break;
        case Route::Buffer:
          if (trace) {
            if (replayed == nullptr) op_trace.inputs.push_back(in);
          } else {
            const BufferService s = policy->read_tensor(meta_for(t, step));
            if (s.dram_read > 0) attribute_read(s.dram_read, base);
            if (s.dram_write > 0) attribute_write(s.dram_write, base);
            op_dram += s.total();
          }
          break;
        case Route::DirectDram:
        case Route::Discard:
          break;  // not produced by route_input
      }
    }

    // ---- output ----
    const Route out_route = router.route_output(op);
    {
      const ir::TensorDesc& t = dag.tensor(op.output);
      const Bytes b = t.bytes();
      const i32 base = map.base_id(op.output);

      switch (out_route) {
        case Route::PipelineBuffer:
          pipeline_sram_lines += ceil_div<Bytes>(b, arch.line_bytes);
          break;
        case Route::RegisterFile:
        case Route::Discard:
          break;
        case Route::DirectDram:
          attribute_write(b, base);
          op_dram += b;
          break;
        case Route::Buffer:
          if (!trace) {
            const BufferService s = policy->write_tensor(meta_for(t, step));
            if (s.dram_read > 0) attribute_read(s.dram_read, base);
            if (s.dram_write > 0) attribute_write(s.dram_write, base);
            op_dram += s.total();
          }
          break;
      }
    }

    if (trace) {
      if (replayed != nullptr) {
        // The replay already drove the cache; per-step traffic was recorded
        // at the stream's op boundaries.
        op_dram += (*replayed)[i].total();
      } else {
        op_trace.op = &op;
        op_trace.service_output = out_route == Route::Buffer;
        op_dram += policy->service_op(op_trace).total();
      }
    }

    metrics.per_op.push_back({op.name, op.macs(), op_dram});

    // ---- retirement: free buffer space of bases with no further use ----
    retire_bases.clear();
    for (ir::TensorId in : op.inputs) {
      const i32 base = map.base_id(in);
      if (std::find(retire_bases.begin(), retire_bases.end(), base) == retire_bases.end())
        retire_bases.push_back(base);
    }
    std::sort(retire_bases.begin(), retire_bases.end());
    for (i32 base : retire_bases)
      if (reuse.remaining_after(reuse_index, base, step) == 0 && !result_base[base])
        policy->retire(base);

    group_dram[cur_group] += arch.dram_seconds(op_dram);
    if (sink != nullptr) tsteps.push_back({cur_group, op_dram, policy->occupancy_bytes()});
  }

  // ---- end-of-run drain (resident result prefixes / dirty cache lines) ----
  bool did_drain = false;
  Bytes drained_bytes = 0;
  {
    DrainContext ctx;
    ctx.dag = &dag;
    ctx.map = &map;
    ctx.results_written_through = config.schedule == SchedulePolicy::Score;
    if (auto items = policy->drain(ctx)) {
      Bytes drained = 0;
      for (const auto& item : *items) {
        drained += item.dram_write;
        // Empty base = timing only; the policy's finalize() owns the totals.
        if (!item.base.empty()) {
          metrics.dram_write_bytes += item.dram_write;
          metrics.traffic_by_tensor[item.base] += item.dram_write;
        }
      }
      group_compute.push_back(0);
      group_dram.push_back(arch.dram_seconds(drained));
      did_drain = true;
      drained_bytes = drained;
    }
  }

  // Materialize the name-keyed attribution map (drain entries are already
  // in it; a base drained *and* touched during the run merges by name, same
  // as when every attribution went through the map).
  for (size_t b = 0; b < n_bases; ++b)
    if (traffic_touched[b]) metrics.traffic_by_tensor[map.entries[b].base] += traffic[b];

  for (size_t g = 0; g < group_compute.size(); ++g)
    metrics.seconds += std::max(group_compute[g], group_dram[g]);
  metrics.dram_bytes = metrics.dram_read_bytes + metrics.dram_write_bytes;

  policy->finalize(arch, pipeline_sram_lines, metrics);
  metrics.offchip_energy_pj =
      static_cast<double>(metrics.dram_bytes) * arch.dram_energy_pj_per_byte;
  if (sink != nullptr)
    emit_run_trace(*sink, dag, sched, arch, tsteps, group_compute, group_dram, did_drain,
                   drained_bytes, policy->occupancy_bytes());
  return metrics;
}

}  // namespace cello::sim
