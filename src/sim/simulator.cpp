#include "sim/simulator.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/types.hpp"
#include "noc/topology.hpp"
#include "sim/address_map.hpp"
#include "sim/partition.hpp"
#include "sim/policies/schedule_policy.hpp"
#include "sim/registry.hpp"

namespace cello::sim {

namespace {

using score::Schedule;

}  // namespace

// Out-of-line so the header can hold BufferPolicy by forward declaration.
RunScratch::RunScratch() = default;
RunScratch::~RunScratch() = default;
RunScratch::RunScratch(RunScratch&&) noexcept = default;
RunScratch& RunScratch::operator=(RunScratch&&) noexcept = default;

AcceleratorConfig Simulator::effective_arch(const Configuration& config) const {
  AcceleratorConfig arch = arch_;
  if (config.pipeline_style) arch.pipeline_style = *config.pipeline_style;
  if (config.hold_budget_bytes) arch.hold_budget_bytes = *config.hold_budget_bytes;
  if (config.nodes) arch.nodes = *config.nodes;
  if (config.topology) arch.topology = *config.topology;
  return arch;
}

score::ScheduleOptions Simulator::schedule_options(const Configuration& config) const {
  const AcceleratorConfig arch = effective_arch(config);
  score::ScheduleOptions opts;
  opts.rf_bytes = arch.rf_bytes;
  opts.enable_pipelining = config.schedule != SchedulePolicy::OpByOp;
  return opts;
}

score::Schedule Simulator::make_schedule(const ir::TensorDag& dag,
                                         const Configuration& config) const {
  return score::build_schedule(dag, schedule_options(config));
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const std::string& config_name) const {
  return run(dag, ConfigRegistry::global().at(config_name));
}

RunMetrics Simulator::run(const ir::TensorDag& dag, ConfigKind kind) const {
  return run(dag, ConfigRegistry::preset(kind));
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config) const {
  const AcceleratorConfig arch = effective_arch(config);
  if (arch.nodes > 1) {
    // Multi-chip path (Sec. V-B): shard the dominant rank, run one node's
    // slice through the exact single-chip machinery, then fold NoC traffic
    // and the 1-node baseline into whole-system metrics.  Any sparse-matrix
    // context describes the full workload; the shard run keeps it as an
    // approximation of one node's slice of the sparsity structure.
    const noc::Topology topo =
        noc::Topology::build(noc::resolve_topology(arch.topology, arch.nodes));
    const Partition part = build_partition(dag, arch.nodes);
    AcceleratorConfig single = arch;
    single.nodes = 1;
    Configuration inner = config;
    inner.nodes.reset();
    inner.topology.reset();
    const Simulator node_sim(single, matrix_);
    const RunMetrics per_node = node_sim.run(part.shard, inner);
    const RunMetrics baseline = node_sim.run(dag, inner);
    return fold_multinode(per_node, baseline.seconds, part, topo, arch);
  }
  const Schedule sched = make_schedule(dag, config);
  const AddressMap map = AddressMap::build(dag);
  return run(dag, config, sched, map);
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config,
                          const Schedule& sched, const AddressMap& map) const {
  const score::ReuseIndex reuse =
      score::ReuseIndex::build(dag, sched, map.base_of, map.entries.size());
  return run(dag, config, sched, map, reuse, nullptr);
}

RunMetrics Simulator::run(const ir::TensorDag& dag, const Configuration& config,
                          const Schedule& sched, const AddressMap& map,
                          const score::ReuseIndex& reuse_index, RunScratch* scratch) const {
  CELLO_CHECK_MSG(static_cast<bool>(config.buffers),
                  "configuration '" << config.name << "' has no buffer policy factory");
  CELLO_CHECK_MSG(reuse_index.num_bases() == map.entries.size(),
                  "reuse index covers " << reuse_index.num_bases() << " bases, address map "
                                        << map.entries.size()
                                        << " — artifacts from different workloads?");
  const AcceleratorConfig arch = effective_arch(config);
  CELLO_CHECK_MSG(arch.nodes <= 1,
                  "prebuilt-artifact runs are single-chip; multi-node runs go through "
                  "Simulator::run(dag, config) or the sweep fabric axis");
  const Router router(dag, sched, config.schedule, config.allow_delayed_hold, arch);
  const size_t n_bases = map.entries.size();

  // All per-run mutable state lives in a RunScratch; without a caller-owned
  // one this run uses a private scratch (identical behavior, fresh storage).
  RunScratch local;
  RunScratch& s = scratch != nullptr ? *scratch : local;

  // The buffer policy: pooled policies are reset to constructed state instead
  // of reconstructed (cache arrays, CHORD tables keep their storage); configs
  // whose policy cannot guarantee that — or whose effective arch changed
  // since the pooled instance was built — get a fresh instance.
  RunScratch::PooledPolicy& slot = s.policies_[config.name];
  if (slot.policy != nullptr && slot.policy->reusable() && slot.arch == arch) {
    slot.policy->reset();
  } else {
    slot.policy = config.buffers(arch);
    slot.arch = arch;
  }
  BufferPolicy* const policy = slot.policy.get();
  const bool trace = policy->trace_driven();

  score::ReuseCursor& reuse = s.cursor_;
  reuse.reset(reuse_index);

  RunMetrics metrics;
  metrics.reserve_steps(sched.steps.size());

  // DRAM traffic attribution, accumulated per base id during the run and
  // materialized into the name-keyed map once at the end (no string-keyed
  // map lookups on the hot path).  `touched` preserves which bases appeared,
  // so zero-byte attributions still materialize like they used to.
  std::vector<Bytes>& traffic = s.traffic_;
  traffic.assign(n_bases, 0);
  std::vector<u8>& traffic_touched = s.traffic_touched_;
  traffic_touched.assign(n_bases, 0);

  auto attribute_read = [&](Bytes b, i32 base) {
    metrics.dram_read_bytes += b;
    traffic[base] += b;
    traffic_touched[base] = 1;
  };
  auto attribute_write = [&](Bytes b, i32 base) {
    metrics.dram_write_bytes += b;
    traffic[base] += b;
    traffic_touched[base] = 1;
  };

  auto meta_for = [&](const ir::TensorDesc& t, i64 step) {
    chord::TensorMeta m;
    m.id = map.base_id(t.id);
    m.name = map.of(t.id).base;
    m.start_addr = map.of(t.id).start;
    m.bytes = t.bytes();
    m.remaining_uses = reuse.remaining_after(reuse_index, m.id, step);
    m.next_use_distance = reuse.next_distance(reuse_index, m.id, step);
    if (t.append_only) {
      m.append_only = true;
      m.appended_bytes = dag.appended_bytes(t.id);
    }
    return m;
  };

  // External register-file-resident bases already fetched once.
  std::vector<u8>& rf_loaded = s.rf_loaded_;
  rf_loaded.assign(n_bases, 0);

  // Bases whose final version is a result stay resident until the
  // end-of-run drain instead of being retired at their last consumption.
  std::vector<u8>& result_base = s.result_base_;
  result_base.assign(n_bases, 0);
  for (const auto& t : dag.tensors())
    if (t.is_result) result_base[map.base_id(t.id)] = 1;

  // Per-pipeline-group timing accumulators: consecutive steps linked by an
  // on-chip serviced edge share a group (Parallel pipeline style only);
  // everything else is op-by-op.
  std::vector<double>& group_compute = s.group_compute_;
  std::vector<double>& group_dram = s.group_dram_;
  group_compute.clear();
  group_dram.clear();
  group_compute.reserve(sched.steps.size() + 1);
  group_dram.reserve(sched.steps.size() + 1);
  i32 cur_group = -1;

  // Scratch for per-step input-base dedup (op arity is tiny; sorted so the
  // retirement order matches the old std::set iteration).
  std::vector<i32>& retire_bases = s.retire_bases_;
  retire_bases.clear();
  retire_bases.reserve(8);

  u64 pipeline_sram_lines = 0;  ///< pipeline-buffer staging accesses

  // Hoisted per-step trace descriptor: only the op fields change per step,
  // so the operand list's storage is reused across the whole run.
  OpTrace op_trace;
  op_trace.dag = &dag;
  op_trace.map = &map;
  op_trace.matrix = matrix_;

  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    const i64 step = static_cast<i64>(i);

    bool joined = false;
    if (i > 0 && arch.pipeline_style == PipelineStyle::Parallel && router.pipelines())
      joined = router.linked_onchip(sched.steps[i - 1].op, sched.steps[i].op);
    if (!joined) {
      group_compute.push_back(0);
      group_dram.push_back(0);
      ++cur_group;
    }
    group_compute[cur_group] += arch.compute_seconds(op.macs());
    metrics.total_macs += op.macs();

    Bytes op_dram = 0;
    op_trace.inputs.clear();  // refilled only for trace-driven policies

    // ---- inputs ----
    for (size_t ii = 0; ii < op.inputs.size(); ++ii) {
      const ir::TensorId in = op.inputs[ii];
      // Same tensor used twice (R^T R): only the first occurrence is serviced.
      bool repeat = false;
      for (size_t jj = 0; jj < ii; ++jj) repeat = repeat || op.inputs[jj] == in;
      if (repeat) continue;
      // In-place append (KV-cache decode): the op extends this operand into
      // its own output — same growing base, untouched prefix.  No data moves
      // for the prefix, so the operand is not serviced; the output write
      // prices whatever the policy charges for the step's growth.
      if (dag.tensor(op.output).append_prev == in) continue;
      const ir::TensorDesc& t = dag.tensor(in);
      const Bytes b = t.bytes();
      const i32 base = map.base_id(in);

      switch (router.route_input(op, in)) {
        case Route::PipelineBuffer:
          pipeline_sram_lines += ceil_div<Bytes>(b, arch.line_bytes);
          break;
        case Route::RegisterFile:
          // Externals cost one cold fetch; on-chip-produced stay in the RF.
          if (!dag.producer(in).has_value() && !rf_loaded[base]) {
            rf_loaded[base] = 1;
            attribute_read(b, base);
            op_dram += b;
          }
          break;
        case Route::Buffer:
          if (trace) {
            op_trace.inputs.push_back(in);
          } else {
            const BufferService s = policy->read_tensor(meta_for(t, step));
            if (s.dram_read > 0) attribute_read(s.dram_read, base);
            if (s.dram_write > 0) attribute_write(s.dram_write, base);
            op_dram += s.total();
          }
          break;
        case Route::DirectDram:
        case Route::Discard:
          break;  // not produced by route_input
      }
    }

    // ---- output ----
    const Route out_route = router.route_output(op);
    {
      const ir::TensorDesc& t = dag.tensor(op.output);
      const Bytes b = t.bytes();
      const i32 base = map.base_id(op.output);

      switch (out_route) {
        case Route::PipelineBuffer:
          pipeline_sram_lines += ceil_div<Bytes>(b, arch.line_bytes);
          break;
        case Route::RegisterFile:
        case Route::Discard:
          break;
        case Route::DirectDram:
          attribute_write(b, base);
          op_dram += b;
          break;
        case Route::Buffer:
          if (!trace) {
            const BufferService s = policy->write_tensor(meta_for(t, step));
            if (s.dram_read > 0) attribute_read(s.dram_read, base);
            if (s.dram_write > 0) attribute_write(s.dram_write, base);
            op_dram += s.total();
          }
          break;
      }
    }

    if (trace) {
      op_trace.op = &op;
      op_trace.service_output = out_route == Route::Buffer;
      op_dram += policy->service_op(op_trace).total();
    }

    metrics.per_op.push_back({op.name, op.macs(), op_dram});

    // ---- retirement: free buffer space of bases with no further use ----
    retire_bases.clear();
    for (ir::TensorId in : op.inputs) {
      const i32 base = map.base_id(in);
      if (std::find(retire_bases.begin(), retire_bases.end(), base) == retire_bases.end())
        retire_bases.push_back(base);
    }
    std::sort(retire_bases.begin(), retire_bases.end());
    for (i32 base : retire_bases)
      if (reuse.remaining_after(reuse_index, base, step) == 0 && !result_base[base])
        policy->retire(base);

    group_dram[cur_group] += arch.dram_seconds(op_dram);
  }

  // ---- end-of-run drain (resident result prefixes / dirty cache lines) ----
  {
    DrainContext ctx;
    ctx.dag = &dag;
    ctx.map = &map;
    ctx.results_written_through = config.schedule == SchedulePolicy::Score;
    if (auto items = policy->drain(ctx)) {
      Bytes drained = 0;
      for (const auto& item : *items) {
        drained += item.dram_write;
        // Empty base = timing only; the policy's finalize() owns the totals.
        if (!item.base.empty()) {
          metrics.dram_write_bytes += item.dram_write;
          metrics.traffic_by_tensor[item.base] += item.dram_write;
        }
      }
      group_compute.push_back(0);
      group_dram.push_back(arch.dram_seconds(drained));
    }
  }

  // Materialize the name-keyed attribution map (drain entries are already
  // in it; a base drained *and* touched during the run merges by name, same
  // as when every attribution went through the map).
  for (size_t b = 0; b < n_bases; ++b)
    if (traffic_touched[b]) metrics.traffic_by_tensor[map.entries[b].base] += traffic[b];

  for (size_t g = 0; g < group_compute.size(); ++g)
    metrics.seconds += std::max(group_compute[g], group_dram[g]);
  metrics.dram_bytes = metrics.dram_read_bytes + metrics.dram_write_bytes;

  policy->finalize(arch, pipeline_sram_lines, metrics);
  metrics.offchip_energy_pj =
      static_cast<double>(metrics.dram_bytes) * arch.dram_energy_pj_per_byte;
  return metrics;
}

}  // namespace cello::sim
