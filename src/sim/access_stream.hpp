// AccessStream: the capture half of the trace-driven cache path's
// capture/replay split.
//
// A stream is the config-independent, byte-granular access sequence of one
// (workload DAG, schedule, AddressMap, router) slot: every span a
// CachePolicy::service_op sequence would drive through the cache — CSR
// segments, gather runs resolved through row_ptr/col_idx exactly once,
// small-operand re-streams, output writebacks — in struct-of-arrays form with
// per-scheduled-op boundary markers.  Replaying the stream against any cache
// geometry sharing the capture's (line_bytes, rf_bytes) reproduces direct
// simulation bit-for-bit (see cache::StreamReplayer / CachePolicy::replay),
// so one capture amortizes address generation across a whole column of sweep
// configs — the ChampSim-style trace-vs-model decoupling the design-space
// autotuner needs.
//
// Iterative workloads (CG, BiCGStab, decode loops) touch the SAME addresses
// every iteration: AddressMap aliases per-iteration tensor instances onto
// their base tensor.  capture() detects that periodicity at the scheduled-op
// level and materializes only prefix + one period + suffix; the replayer
// loops the period block and fast-forwards once the cache state itself
// becomes periodic.  A stream with period_steps == 0 is simply linear
// (everything lives in the prefix).
#pragma once

#include <vector>

#include "ir/dag.hpp"
#include "score/schedule.hpp"
#include "sim/address_map.hpp"
#include "sim/config.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

class Router;

struct AccessStream {
  // ---- geometry the spans were derived under ----
  // Span derivation reads exactly these two architecture knobs (operand
  // partitioning + gather-run mergeability); replay under any arch sharing
  // them is exact, which is what lets one stream serve every cache geometry
  // in a sweep column.
  u32 line_bytes = 0;
  Bytes rf_bytes = 0;

  // ---- periodic structure over scheduled ops ----
  u64 schedule_steps = 0;  ///< steps in the source schedule
  u64 prefix_steps = 0;    ///< materialized leading steps
  u64 period_steps = 0;    ///< steps per occurrence; 0 = no period (linear)
  u64 period_count = 0;    ///< occurrences the schedule contains (>= 2 when periodic)
  u64 suffix_steps = 0;    ///< materialized trailing steps

  // ---- spans of the materialized steps (prefix, one period, suffix) ----
  std::vector<Addr> addr;
  std::vector<u32> len;
  std::vector<u8> write;
  /// Per materialized step: exclusive span index — step s owns spans
  /// [op_end[s-1], op_end[s]).  These are the op boundary markers replay
  /// converts span traffic back into per-step BufferServices at.
  std::vector<u32> op_end;

  Addr min_addr = 0;   ///< lowest byte any span touches
  Addr max_addr = 0;   ///< highest byte any span touches (inclusive)
  u64 total_lines = 0;  ///< line count over the whole schedule (periods expanded)

  u64 materialized_steps() const { return prefix_steps + period_steps + suffix_steps; }
  size_t spans() const { return addr.size(); }

  /// True when `arch` matches the capture-time span-derivation inputs.
  bool compatible(const AcceleratorConfig& arch) const {
    return line_bytes == arch.line_bytes && rf_bytes == arch.rf_bytes;
  }

  /// Order-sensitive digest of the full stream (header + every span array);
  /// two captures of the same slot are identical iff fingerprints match.
  u64 fingerprint() const;

  /// Derive the stream for one (dag, schedule, map, router) slot.  `matrix`
  /// may be null (synthetic gather); `router` must be built over the same
  /// dag + schedule.  Deterministic: equal inputs produce equal streams.
  static AccessStream capture(const ir::TensorDag& dag, const score::Schedule& sched,
                              const AddressMap& map, const sparse::CsrMatrix* matrix,
                              const AcceleratorConfig& arch, const Router& router);
};

}  // namespace cello::sim
