#include "sim/report.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

#include "common/format.hpp"

namespace cello::sim {

std::string per_op_report(const RunMetrics& m, const AcceleratorConfig& arch,
                          size_t max_rows) {
  TextTable t({"op", "MACs", "DRAM bytes", "AI (MACs/B)", "bound"});
  size_t shown = 0;
  for (const auto& row : m.per_op) {
    if (shown++ >= max_rows) break;
    const double compute_s = arch.compute_seconds(row.macs);
    const double dram_s = arch.dram_seconds(row.dram_bytes);
    const double ai = row.dram_bytes > 0
                          ? static_cast<double>(row.macs) / static_cast<double>(row.dram_bytes)
                          : 0.0;
    t.add_row({row.op, std::to_string(row.macs),
               format_bytes(static_cast<double>(row.dram_bytes)), format_double(ai, 2),
               dram_s > compute_s ? "memory" : "compute"});
  }
  std::ostringstream os;
  os << t.to_string();
  if (m.per_op.size() > max_rows)
    os << "... (" << m.per_op.size() - max_rows << " more ops)\n";
  return os.str();
}

std::string per_tensor_report(const RunMetrics& m, size_t max_rows) {
  std::vector<std::pair<std::string, Bytes>> rows(m.traffic_by_tensor.begin(),
                                                  m.traffic_by_tensor.end());
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  TextTable t({"tensor", "DRAM traffic", "share"});
  size_t shown = 0;
  for (const auto& [base, bytes] : rows) {
    if (shown++ >= max_rows) break;
    const double share =
        m.dram_bytes > 0 ? 100.0 * static_cast<double>(bytes) / static_cast<double>(m.dram_bytes)
                         : 0.0;
    t.add_row({base, format_bytes(static_cast<double>(bytes)), format_double(share, 1) + "%"});
  }
  return t.to_string();
}

std::string per_op_csv(const RunMetrics& m) {
  std::ostringstream os;
  os << "op,macs,dram_bytes\n";
  for (const auto& row : m.per_op) os << row.op << ',' << row.macs << ',' << row.dram_bytes << '\n';
  return os.str();
}

}  // namespace cello::sim
