#include "sim/partition.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cello::sim {

const char* to_string(ShardClass c) {
  switch (c) {
    case ShardClass::Local: return "local";
    case ShardClass::Reduce: return "reduce";
    case ShardClass::Broadcast: return "broadcast";
  }
  return "?";
}

std::string pick_shard_rank(const ir::TensorDag& dag) {
  std::string best;
  i64 best_size = 1;
  for (const auto& op : dag.ops()) {
    for (const auto& r : op.ranks) {
      if (r.contracted || r.size <= best_size) continue;
      best = r.name;
      best_size = r.size;
    }
  }
  CELLO_CHECK_MSG(!best.empty(), "cannot shard: no op has an uncontracted rank with extent > 1");
  return best;
}

Partition build_partition(const ir::TensorDag& dag, i64 nodes) {
  CELLO_CHECK_MSG(nodes >= 1, "partition: nodes must be >= 1 (got " << nodes << ")");
  Partition part;
  part.nodes = nodes;
  part.shard_rank = pick_shard_rank(dag);
  const std::string& rank = part.shard_rank;

  i64 extent = 0;
  for (const auto& op : dag.ops()) {
    for (const auto& r : op.ranks) {
      if (!r.contracted && r.name == rank) extent = std::max(extent, r.size);
    }
  }
  CELLO_CHECK_MSG(nodes <= extent, "partition: " << nodes << " nodes exceed the shard rank '"
                                                 << rank << "' extent " << extent);

  // One node's slice, rebuilt node-for-node through the arena builders so
  // ids, edges and marks line up with the full DAG.  Every extent of the
  // shard rank divides as ceil(extent / nodes): the straggler's share, since
  // whole-system time is the slowest node's.
  for (const auto& src : dag.tensors()) {
    ir::TensorDesc t = part.shard.new_tensor();
    t.name = src.name;
    t.word_bytes = src.word_bytes;
    t.storage = src.storage;
    t.nnz = src.nnz;
    t.is_result = src.is_result;
    t.append_only = src.append_only;
    t.append_prev = src.append_prev;
    for (size_t i = 0; i < src.ranks.size(); ++i) {
      t.ranks.push_back(src.ranks[i]);
      t.dims.push_back(src.ranks[i] == rank ? ceil_div(src.dims[i], nodes) : src.dims[i]);
    }
    // Compressed tensors sharded on their row rank keep 1/nodes of the
    // stored entries (balanced row distribution — the model's assumption).
    if (src.storage == ir::Storage::CompressedSparse && !src.ranks.empty() &&
        src.ranks.front() == rank) {
      t.nnz = ceil_div(src.nnz, nodes);
    }
    const ir::TensorId id = part.shard.add_tensor(std::move(t));
    CELLO_CHECK(id == src.id);
  }
  for (const auto& src : dag.ops()) {
    ir::EinsumOp op = part.shard.new_op();
    op.name = src.name;
    op.kind = src.kind;
    op.output = src.output;
    op.macs_override = src.macs_override;
    bool has_shard = false;
    for (const auto& r : src.ranks) {
      ir::OpRank nr = r;
      if (r.name == rank) {
        has_shard = true;
        nr.size = ceil_div(r.size, nodes);
        if (r.effective_size >= 0) nr.effective_size = ceil_div(r.effective_size, nodes);
      }
      op.ranks.push_back(nr);
    }
    if (has_shard && src.macs_override >= 0) op.macs_override = ceil_div(src.macs_override, nodes);
    for (ir::TensorId in : src.inputs) op.inputs.push_back(in);
    const ir::OpId id = part.shard.add_op(std::move(op));
    CELLO_CHECK(id == src.id);
  }
  for (const auto& e : dag.edges()) part.shard.add_edge(e.src, e.dst, e.tensor);
  for (ir::TensorId t : dag.external_tensors()) part.shard.mark_external(t);
  part.shard.validate();

  // Classify every tensor against the shard boundary (Algorithm 2's rank
  // test, applied across chips instead of across buffer levels):
  //  * shard-rank tensors are node-local slices — zero fabric traffic under
  //    SCORE, but exactly what the naive pipeline split would ship;
  //  * shard-rank-free *produced* tensors whose producer contracts the shard
  //    rank hold per-node partials — a reduction;
  //  * shard-rank-free *external* operands read by a shard-rank op must be
  //    replicated — a broadcast;
  //  * everything else is replicated computation with no traffic.
  part.tensor_class.assign(dag.tensors().size(), ShardClass::Local);
  for (const auto& full_t : dag.tensors()) {
    const auto prod = dag.producer(full_t.id);
    if (full_t.has_rank(rank)) {
      if (prod && nodes > 1) {
        part.naive_bytes += part.shard.tensor(full_t.id).bytes() * static_cast<Bytes>(nodes);
      }
      continue;
    }
    ShardClass cls = ShardClass::Local;
    if (prod) {
      for (const auto& r : dag.op(*prod).ranks) {
        if (r.contracted && r.name == rank) cls = ShardClass::Reduce;
      }
    } else {
      for (ir::OpId consumer : dag.consumers(full_t.id)) {
        for (const auto& r : dag.op(consumer).ranks) {
          if (r.name == rank) cls = ShardClass::Broadcast;
        }
      }
    }
    part.tensor_class[static_cast<size_t>(full_t.id)] = cls;
    if (cls != ShardClass::Local && nodes > 1) {
      part.transfers.push_back({full_t.id, full_t.bytes(), cls});
    }
  }
  return part;
}

NocCost price_noc(const std::vector<Partition::Transfer>& transfers, const noc::Topology& topo,
                  const AcceleratorConfig& arch) {
  NocCost cost;
  const i64 p = topo.nodes();
  if (p <= 1 || transfers.empty()) return cost;
  std::vector<Bytes> link_bytes(topo.num_links(), 0);
  for (const auto& x : transfers) {
    if (x.cls == ShardClass::Reduce) {
      // Partials converge on node 0, the combined tensor fans back out.
      for (i64 s = 1; s < p; ++s) {
        const i32 node = static_cast<i32>(s);
        cost.byte_hops += x.bytes * static_cast<Bytes>(topo.route(node, 0, x.bytes, &link_bytes));
        cost.byte_hops += x.bytes * static_cast<Bytes>(topo.route(0, node, x.bytes, &link_bytes));
      }
      cost.seconds += 2.0 * topo.depth() * arch.noc_hop_seconds;
    } else {
      for (i64 s = 1; s < p; ++s) {
        cost.byte_hops +=
            x.bytes * static_cast<Bytes>(topo.route(0, static_cast<i32>(s), x.bytes, &link_bytes));
      }
      cost.seconds += topo.depth() * arch.noc_hop_seconds;
    }
  }
  if (!link_bytes.empty()) {
    cost.max_link_bytes = *std::max_element(link_bytes.begin(), link_bytes.end());
  }
  // Links serialize: the busiest directed link bounds collective throughput.
  if (arch.noc_link_bytes_per_sec > 0) {
    cost.seconds += static_cast<double>(cost.max_link_bytes) / arch.noc_link_bytes_per_sec;
  }
  return cost;
}

RunMetrics fold_multinode(const RunMetrics& per_node, double baseline_seconds,
                          const Partition& part, const noc::Topology& topo,
                          const AcceleratorConfig& arch) {
  const i64 p = part.nodes;
  CELLO_CHECK(p == topo.nodes());
  RunMetrics m = per_node;
  if (p <= 1) return m;
  const NocCost cost = price_noc(part.transfers, topo, arch);
  const Bytes bp = static_cast<Bytes>(p);
  m.nodes = p;
  m.total_macs *= p;
  m.dram_bytes *= bp;
  m.dram_read_bytes *= bp;
  m.dram_write_bytes *= bp;
  m.sram_line_accesses *= bp;
  m.onchip_energy_pj *= static_cast<double>(p);
  for (auto& [name, bytes] : m.traffic_by_tensor) bytes *= bp;
  for (auto& op : m.per_op) {
    op.macs *= p;
    op.dram_bytes *= bp;
  }
  m.noc_bytes = cost.byte_hops;
  m.naive_noc_bytes = part.naive_bytes;
  m.noc_seconds = cost.seconds;
  m.seconds = per_node.seconds + cost.seconds;
  m.offchip_energy_pj = per_node.offchip_energy_pj * static_cast<double>(p) +
                        static_cast<double>(cost.byte_hops) * arch.noc_energy_pj_per_byte;
  if (m.seconds > 0 && arch.noc_link_bytes_per_sec > 0) {
    m.max_link_utilization =
        static_cast<double>(cost.max_link_bytes) / arch.noc_link_bytes_per_sec / m.seconds;
  }
  if (m.seconds > 0) m.parallel_efficiency = baseline_seconds / (static_cast<double>(p) * m.seconds);
  return m;
}

}  // namespace cello::sim
