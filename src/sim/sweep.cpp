#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <deque>
#include <exception>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <thread>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "noc/topology.hpp"
#include "score/schedule.hpp"
#include "sim/access_stream.hpp"
#include "sim/checkpoint.hpp"
#include "sim/partition.hpp"
#include "sim/policies/buffer_policy.hpp"
#include "sim/policies/schedule_policy.hpp"
#include "sim/registry.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"

namespace cello::sim {

namespace {

/// Borrowed view of one grid row; both the Workload and the legacy
/// SweepWorkload overloads funnel into this.
struct WorkloadView {
  const std::string* name;
  const ir::TensorDag* dag;
  const sparse::CsrMatrix* matrix;  ///< may be null
};

/// Mirror of the Simulator::run escape hatch: when CELLO_DISABLE_REPLAY is
/// set the sweep skips stream capture too, instead of capturing streams the
/// runs would then ignore.
bool replay_disabled_by_env() {
  const char* e = std::getenv("CELLO_DISABLE_REPLAY");
  return e != nullptr && *e != '\0' && *e != '0';
}

/// Worker-pool size for `total` jobs (parallel_for uses exactly this many).
u32 worker_count(u32 threads, size_t total) {
  u32 n = threads != 0 ? threads : std::thread::hardware_concurrency();
  return std::max<u32>(1, std::min<u32>(n, static_cast<u32>(total)));
}

/// Run body(0..total) over a pool of `threads` workers; `worker` identifies
/// the executing worker (0..worker_count-1), so callers can hand each one
/// private reusable state.  The first exception thrown by any job makes
/// every worker abandon the remaining jobs instead of burning through them;
/// it is rethrown once the workers stop.
void parallel_for(u32 threads, size_t total,
                  const std::function<void(size_t job, u32 worker)>& body) {
  if (total == 0) return;
  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&](u32 me) {
    for (size_t job; (job = next.fetch_add(1)) < total;) {
      if (failed.load(std::memory_order_relaxed)) return;
      try {
        body(job, me);
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  const u32 n = worker_count(threads, total);
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (u32 t = 0; t + 1 < n; ++t) pool.emplace_back(worker, t);
  worker(n - 1);  // the calling thread is the n-th worker
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
}

/// One grid row after the fabric axis is applied: a (workload, fabric) pair.
/// Multi-node rows run the workload's shard DAG (one node's slice) and fold
/// the NoC cost in afterwards; single-node rows are the workload unchanged.
struct RowView {
  const ir::TensorDag* dag = nullptr;   ///< effective DAG (shard for nodes > 1)
  const Partition* part = nullptr;      ///< non-null exactly when nodes > 1
  std::string error;                    ///< partition failure, reported per cell
};

/// `cells`, when non-null, restricts the run to those flattened row-major
/// cell ids (shard-scoped sweep): results come back in `cells` order and only
/// the schedules/address maps those cells touch are prebuilt.  Null runs the
/// whole grid in row-major order.  `fabrics`, when non-null, inserts the
/// fabric axis between workloads and configs (canonical TopologySpec strings;
/// requires `cells`).  `grid`/`plan` carry the shard identity a checkpoint
/// journal is keyed by; they are non-null exactly when the caller is
/// run_shard.
std::vector<SweepResult> run_grid(u32 threads, const std::vector<WorkloadView>& workloads,
                                  const std::vector<Configuration>& configs,
                                  const AcceleratorConfig& arch,
                                  const std::vector<std::string>* fabrics = nullptr,
                                  const std::vector<size_t>* cells = nullptr,
                                  const SweepOptions& opts = {},
                                  const SweepGrid* grid = nullptr,
                                  const ShardPlan* plan = nullptr) {
  static const std::vector<std::string> kSingleChip{"1"};
  const std::vector<std::string>& fabs =
      fabrics != nullptr && !fabrics->empty() ? *fabrics : kSingleChip;
  const bool fabric_axis = fabs.size() != 1 || fabs[0] != "1";
  CELLO_CHECK_MSG(fabrics == nullptr || cells != nullptr,
                  "a fabric axis requires a shard-scoped run");
  const size_t F = fabs.size();
  const size_t C = configs.size();
  const size_t grid_size = workloads.size() * F * C;
  const size_t total = cells != nullptr ? cells->size() : grid_size;
  std::vector<SweepResult> out(total);
  if (total == 0) return out;
  if (cells != nullptr)
    for (const size_t cell : *cells)
      CELLO_CHECK_MSG(cell < grid_size,
                      "shard cell " << cell << " outside the " << grid_size << "-cell grid");
  CELLO_CHECK_MSG((opts.trace_cell >= 0) == (opts.trace_sink != nullptr),
                  "SweepOptions::trace_cell and ::trace_sink travel together: both or neither");
  CELLO_CHECK_MSG(!opts.trace_sink_for || opts.trace_cell < 0,
                  "SweepOptions::trace_sink_for excludes trace_cell/trace_sink: one selector");
  CELLO_CHECK_MSG(opts.trace_cell < 0 || static_cast<size_t>(opts.trace_cell) < grid_size,
                  "trace cell " << opts.trace_cell << " outside the " << grid_size
                                << "-cell grid");

  // Parse each fabric once; nodes > 1 fabrics carry the routed topology the
  // fold prices collectives against.
  struct FabricInfo {
    i64 nodes = 1;
    std::optional<noc::Topology> topo;
  };
  std::vector<FabricInfo> finfo(F);
  for (size_t fi = 0; fi < F; ++fi) {
    const noc::TopologySpec spec = noc::TopologySpec::parse(fabs[fi]);
    finfo[fi].nodes = spec.nodes();
    if (finfo[fi].nodes > 1) finfo[fi].topo = noc::Topology::build(spec);
  }

  // ---- checkpoint journal ----
  // Cells recovered from an existing journal are marked done up front: they
  // skip simulation entirely (their hexfloat-exact journal payloads are
  // bit-identical to re-running them) and the prebuild below only builds what
  // the still-pending cells touch.
  CheckpointJournal journal;
  std::vector<char> done(total, 0);
  if (!opts.checkpoint.empty()) {
    CELLO_CHECK_MSG(grid != nullptr && plan != nullptr,
                    "checkpointing requires a shard-scoped run (SweepRunner::run_shard): the "
                    "journal is keyed by the grid fingerprint");
    CheckpointState state;
    journal = CheckpointJournal::open(opts.checkpoint, *grid, *plan, opts.resume, &state);
    std::map<size_t, size_t> job_of;  // flattened cell id -> index into `out`
    for (size_t j = 0; j < cells->size(); ++j) job_of.emplace((*cells)[j], j);
    for (auto& [cell, result] : state.completed) {
      const size_t job = job_of.at(cell);  // read_journal validated membership
      out[job] = std::move(result);
      done[job] = 1;
    }
  }

  // ---- shared immutable prebuild ----
  // One AddressMap per distinct DAG and one score::Schedule per (DAG,
  // schedule-options) pair present in the grid.  The cache key is
  // Simulator::schedule_options(config) — by construction exactly the
  // scheduling inputs make_schedule consumes — so configurations with equal
  // options (today: all pipelining policies share one slot, op-by-op the
  // other) replay against the same read-only copy, bit-identically to a
  // per-cell rebuild, and a future config knob that feeds scheduling splits
  // the slots automatically.
  const Simulator scheduler(arch);  // matrix context is irrelevant to scheduling
  std::vector<score::ScheduleOptions> opt_keys;  ///< distinct options, first-seen order
  std::vector<size_t> config_slot(configs.size());
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const score::ScheduleOptions opts = scheduler.schedule_options(configs[ci]);
    const auto it = std::find(opt_keys.begin(), opt_keys.end(), opts);
    config_slot[ci] = static_cast<size_t>(it - opt_keys.begin());
    if (it == opt_keys.end()) opt_keys.push_back(opts);
  }

  // Router tables key on everything RouterTables::build consumes beyond the
  // DAG: the schedule slot plus the policy / hold-flag / effective-arch
  // triple.  Configurations sharing a schedule slot (FLAT vs Cello) can still
  // need distinct tables, so this is a finer partition than config_slot.
  struct RouterKey {
    size_t sched_slot;
    SchedulePolicy policy;
    bool allow_delayed_hold;
    AcceleratorConfig arch;
    bool operator==(const RouterKey&) const = default;
  };
  std::vector<RouterKey> router_keys;  ///< distinct keys, first-seen order
  std::vector<size_t> config_rslot(configs.size());
  for (size_t ci = 0; ci < configs.size(); ++ci) {
    const RouterKey key{config_slot[ci], configs[ci].schedule, configs[ci].allow_delayed_hold,
                        scheduler.effective_arch(configs[ci])};
    const auto it = std::find(router_keys.begin(), router_keys.end(), key);
    config_rslot[ci] = static_cast<size_t>(it - router_keys.begin());
    if (it == router_keys.end()) router_keys.push_back(key);
  }

  // ---- fabric rows ----
  // Partition each workload once per distinct (DAG, node count): two fabrics
  // with equal node counts (mesh:2x2 and torus:2x2) share one shard DAG, and
  // a partition that cannot be built (more nodes than the shard rank has
  // extent) quarantines its cells instead of killing the shard.  Serial and
  // in row order, so shard DAG construction is deterministic.
  std::deque<Partition> partitions;  // deque: stable addresses as it grows
  std::map<std::pair<const ir::TensorDag*, i64>, const Partition*> part_cache;
  std::vector<char> row_used(workloads.size() * F, cells == nullptr ? 1 : 0);
  if (cells != nullptr)
    for (size_t j = 0; j < cells->size(); ++j)
      if (!done[j]) row_used[(*cells)[j] / C] = 1;
  std::vector<RowView> rows(workloads.size() * F);
  for (size_t wi = 0; wi < workloads.size(); ++wi) {
    for (size_t fi = 0; fi < F; ++fi) {
      const size_t rf = wi * F + fi;
      RowView& row = rows[rf];
      row.dag = workloads[wi].dag;
      if (!row_used[rf] || row.dag == nullptr || finfo[fi].nodes <= 1) continue;
      const auto key = std::make_pair(row.dag, finfo[fi].nodes);
      auto it = part_cache.find(key);
      if (it == part_cache.end()) {
        try {
          partitions.push_back(build_partition(*row.dag, finfo[fi].nodes));
          it = part_cache.emplace(key, &partitions.back()).first;
        } catch (const std::exception& e) {
          it = part_cache.emplace(key, nullptr).first;
          row.error = e.what();
        }
      }
      row.part = it->second;
      if (row.part != nullptr) {
        row.dag = &row.part->shard;
      } else if (row.error.empty()) {
        // A later row hitting an already-failed cache entry re-derives the
        // message so its cells still explain themselves.
        try {
          build_partition(*workloads[wi].dag, finfo[fi].nodes);
        } catch (const std::exception& e) {
          row.error = e.what();
        }
        row.dag = nullptr;
      } else {
        row.dag = nullptr;
      }
    }
  }

  // Prebuilds key on DAG identity, not grid row: listing the same resolved
  // workload twice shares its AddressMap and schedules too.  Multi-node rows
  // register their shard DAG; the original full DAG is registered separately
  // below for the parallel-efficiency baseline those rows also need.
  std::map<const ir::TensorDag*, size_t> unique_dag;
  std::vector<size_t> dag_slot(rows.size());
  for (size_t rf = 0; rf < rows.size(); ++rf)
    dag_slot[rf] = unique_dag.emplace(rows[rf].dag, unique_dag.size()).first->second;

  // The 1-node baseline runs once per (workload, config) any pending
  // multi-node cell touches.
  std::set<std::pair<size_t, size_t>> baseline_keys;
  std::vector<size_t> wl_dag_slot(workloads.size(), SIZE_MAX);
  for (size_t j = 0; j < total; ++j) {
    if (done[j]) continue;
    const size_t cell = cells != nullptr ? (*cells)[j] : j;
    const size_t rf = cell / C;
    if (rows[rf].part == nullptr) continue;
    const size_t wi = rf / F;
    baseline_keys.emplace(wi, cell % C);
    if (wl_dag_slot[wi] == SIZE_MAX)
      wl_dag_slot[wi] = unique_dag.emplace(workloads[wi].dag, unique_dag.size()).first->second;
  }

  std::vector<std::optional<AddressMap>> maps(unique_dag.size());
  std::vector<std::vector<std::optional<score::Schedule>>> scheds(
      unique_dag.size(), std::vector<std::optional<score::Schedule>>(opt_keys.size()));
  // The immutable reuse index rides next to its schedule: it derives from
  // (schedule, address map), so it shares their (DAG, options) cache slots
  // and the same read-only-across-the-pool lifetime.
  std::vector<std::vector<std::optional<score::ReuseIndex>>> reuse(
      unique_dag.size(), std::vector<std::optional<score::ReuseIndex>>(opt_keys.size()));
  // Shared immutable router tables, one per (DAG, router key).
  std::vector<std::vector<std::optional<RouterTables>>> rtables(
      unique_dag.size(), std::vector<std::optional<RouterTables>>(router_keys.size()));

  // A cell-restricted (shard) run prebuilds only what its *pending* cells
  // touch — checkpoint-recovered cells need no schedule — while a full run
  // touches every (DAG, options) pair by construction.
  const char all_needed = cells == nullptr ? 1 : 0;
  std::vector<char> map_needed(unique_dag.size(), all_needed);
  std::vector<std::vector<char>> sched_needed(unique_dag.size(),
                                              std::vector<char>(opt_keys.size(), all_needed));
  std::vector<std::vector<char>> rtable_needed(
      unique_dag.size(), std::vector<char>(router_keys.size(), all_needed));
  if (cells != nullptr) {
    for (size_t j = 0; j < cells->size(); ++j) {
      if (done[j]) continue;
      const size_t cell = (*cells)[j];
      const size_t rf = cell / C;
      if (rows[rf].dag == nullptr) continue;  // unresolved row or failed partition
      const size_t di = dag_slot[rf];
      const size_t ki = config_slot[cell % C];
      const size_t ri = config_rslot[cell % C];
      map_needed[di] = 1;
      sched_needed[di][ki] = 1;
      rtable_needed[di][ri] = 1;
      if (rows[rf].part != nullptr) {
        // Multi-node cells also replay the full DAG once for the baseline.
        const size_t bdi = wl_dag_slot[rf / F];
        map_needed[bdi] = 1;
        sched_needed[bdi][ki] = 1;
        rtable_needed[bdi][ri] = 1;
      }
    }
  }

  struct PrebuildJob {
    const ir::TensorDag* dag;
    size_t di;  ///< unique-DAG index
    i32 slot;   ///< index into scheds[di] / opt_keys, or -1 for the AddressMap
  };
  std::vector<PrebuildJob> jobs;
  jobs.reserve(unique_dag.size() * (1 + opt_keys.size()));
  for (const auto& [dag, di] : unique_dag) {
    if (map_needed[di]) jobs.push_back({dag, di, -1});
    for (size_t k = 0; k < opt_keys.size(); ++k)
      if (sched_needed[di][k]) jobs.push_back({dag, di, static_cast<i32>(k)});
  }

  parallel_for(threads, jobs.size(), [&](size_t j, u32 /*worker*/) {
    const PrebuildJob& job = jobs[j];
    if (job.slot < 0) {
      maps[job.di].emplace(AddressMap::build(*job.dag));
    } else {
      scheds[job.di][job.slot].emplace(score::build_schedule(*job.dag, opt_keys[job.slot]));
    }
  });

  // Second prebuild wave: reuse indexes and router tables both derive from a
  // built schedule (reuse also needs the address map), so they build once
  // those exist.  `router` distinguishes the two job kinds; `slot` indexes
  // opt_keys for reuse jobs and router_keys for table jobs.
  struct DerivedJob {
    const ir::TensorDag* dag;
    size_t di;
    size_t slot;
    bool router;
  };
  std::vector<DerivedJob> derived_jobs;
  derived_jobs.reserve(unique_dag.size() * (opt_keys.size() + router_keys.size()));
  for (const auto& [dag, di] : unique_dag) {
    for (size_t k = 0; k < opt_keys.size(); ++k)
      if (sched_needed[di][k]) derived_jobs.push_back({dag, di, k, false});
    for (size_t r = 0; r < router_keys.size(); ++r)
      if (rtable_needed[di][r]) derived_jobs.push_back({dag, di, r, true});
  }
  parallel_for(threads, derived_jobs.size(), [&](size_t j, u32 /*worker*/) {
    const DerivedJob& job = derived_jobs[j];
    if (job.router) {
      const RouterKey& key = router_keys[job.slot];
      rtables[job.di][job.slot].emplace(RouterTables::build(
          *job.dag, *scheds[job.di][key.sched_slot], key.policy, key.allow_delayed_hold,
          key.arch));
    } else {
      reuse[job.di][job.slot].emplace(
          score::ReuseIndex::build(*job.dag, *scheds[job.di][job.slot],
                                   maps[job.di]->base_of, maps[job.di]->entries.size()));
    }
  });

  // ---- access streams (third prebuild wave) ----
  // One captured AccessStream per (DAG, router key) any pending single-node
  // trace-driven replay-capable cell touches.  Capture is config-independent
  // — only the schedule shape and routing decisions enter the stream — so
  // configurations sharing a router slot (e.g. the Table IV cache presets on
  // the op-by-op schedule) replay one stream: address generation is paid once
  // per column instead of once per cell.  Simulator::run picks replay up
  // automatically from RunArtifacts; traced cells stay on the direct path
  // (run_impl gates replay on the absence of a sink), and multi-node rows
  // keep their historical path untouched.
  std::vector<char> config_replayable(C, 0);
  if (!replay_disabled_by_env()) {
    for (size_t ci = 0; ci < C; ++ci) {
      if (!configs[ci].buffers) continue;
      const auto probe = configs[ci].buffers(router_keys[config_rslot[ci]].arch);
      config_replayable[ci] =
          probe != nullptr && probe->trace_driven() && probe->supports_replay();
    }
  }
  std::vector<std::vector<std::optional<AccessStream>>> streams(
      unique_dag.size(), std::vector<std::optional<AccessStream>>(router_keys.size()));
  std::vector<std::vector<char>> stream_needed(unique_dag.size(),
                                               std::vector<char>(router_keys.size(), 0));
  std::vector<const sparse::CsrMatrix*> dag_matrix(unique_dag.size(), nullptr);
  for (size_t j = 0; j < total; ++j) {
    if (done[j]) continue;
    const size_t cell = cells != nullptr ? (*cells)[j] : j;
    const size_t rf = cell / C;
    const size_t ci = cell % C;
    if (!config_replayable[ci]) continue;
    if (rows[rf].part != nullptr || rows[rf].dag == nullptr) continue;
    const size_t di = dag_slot[rf];
    stream_needed[di][config_rslot[ci]] = 1;
    dag_matrix[di] = workloads[rf / F].matrix;
  }
  struct StreamJob {
    const ir::TensorDag* dag;
    size_t di;
    size_t ri;
  };
  std::vector<StreamJob> stream_jobs;
  for (const auto& [dag, di] : unique_dag)
    for (size_t r = 0; r < router_keys.size(); ++r)
      if (stream_needed[di][r]) stream_jobs.push_back({dag, di, r});
  parallel_for(threads, stream_jobs.size(), [&](size_t j, u32 /*worker*/) {
    const StreamJob& job = stream_jobs[j];
    const RouterKey& key = router_keys[job.ri];
    const score::Schedule& sched = *scheds[job.di][key.sched_slot];
    const Router router(*job.dag, sched, key.policy, *rtables[job.di][job.ri]);
    streams[job.di][job.ri].emplace(AccessStream::capture(
        *job.dag, sched, *maps[job.di], dag_matrix[job.di], key.arch, router));
  });

  // ---- the grid ----
  // Each pool worker owns one RunScratch: per-cell mutable state (reuse
  // cursors, attribution scratch, pooled buffer policies) is reset, not
  // reallocated, between the cells that worker executes.
  std::vector<RunScratch> scratches(worker_count(threads, total));

  // ---- 1-node baselines ----
  // Parallel-efficiency needs "the whole workload on one chip" per (workload,
  // config); run those once up front against the same shared artifacts, so a
  // {1,4,16,64}-node column reuses one baseline instead of re-simulating it
  // per fabric.  A baseline failure quarantines only the cells that fold it.
  struct Baseline {
    double seconds = 0;
    std::string error;
  };
  std::map<std::pair<size_t, size_t>, Baseline> baselines;
  std::vector<std::pair<size_t, size_t>> bkeys(baseline_keys.begin(), baseline_keys.end());
  for (const auto& key : bkeys) baselines.emplace(key, Baseline{});
  parallel_for(threads, bkeys.size(), [&](size_t j, u32 worker) {
    const auto [wi, ci] = bkeys[j];
    const size_t di = wl_dag_slot[wi];
    const size_t ki = config_slot[ci];
    Baseline& base = baselines.find(bkeys[j])->second;
    try {
      const Simulator simulator(arch, workloads[wi].matrix);
      RunArtifacts art;
      art.schedule = &*scheds[di][ki];
      art.address_map = &*maps[di];
      art.reuse_index = &*reuse[di][ki];
      art.router_tables = &*rtables[di][config_rslot[ci]];
      art.scratch = &scratches[worker];
      base.seconds = simulator.run(*workloads[wi].dag, configs[ci], art).seconds;
    } catch (const std::exception& e) {
      base.error = e.what();
    }
  });

  auto run_cell = [&](size_t job, u32 worker) {
    if (done[job]) return;  // recovered from the checkpoint journal
    const size_t cell = cells != nullptr ? (*cells)[job] : job;
    const size_t rf = cell / C;
    const size_t ci = cell % C;
    const size_t fi = rf % F;
    const size_t wi = rf / F;
    const RowView& row = rows[rf];
    const WorkloadView& wl = workloads[wi];
    SweepResult result{*wl.name, configs[ci].name, {}, {}, {}};
    if (fabric_axis) result.fabric = fabs[fi];
    trace::TraceSink* sink = nullptr;
    if (opts.trace_sink_for) {
      sink = opts.trace_sink_for(cell);
    } else if (opts.trace_sink != nullptr && opts.trace_cell == static_cast<i64>(cell)) {
      sink = opts.trace_sink;
    }
    const bool traced = sink != nullptr;
    // Deterministic bounded retries: attempts run back-to-back on the same
    // worker, so the final outcome is independent of thread scheduling.
    std::string error;
    for (u32 attempt = 0; attempt <= opts.retries; ++attempt) {
      error.clear();
      try {
        failpoint::maybe_throw("sweep.cell", std::to_string(cell));
        if (!row.error.empty()) throw Error(row.error);
        const Simulator simulator(arch, wl.matrix);
        RunArtifacts art;
        art.schedule = &*scheds[dag_slot[rf]][config_slot[ci]];
        art.address_map = &*maps[dag_slot[rf]];
        art.reuse_index = &*reuse[dag_slot[rf]][config_slot[ci]];
        art.router_tables = &*rtables[dag_slot[rf]][config_rslot[ci]];
        art.scratch = &scratches[worker];
        const auto& stream = streams[dag_slot[rf]][config_rslot[ci]];
        if (stream.has_value()) art.access_stream = &*stream;
        if (traced) art.trace = sink;
        result.metrics = simulator.run(*row.dag, configs[ci], art);
        if (row.part != nullptr) {
          const Baseline& base = baselines.at({wi, ci});
          if (!base.error.empty())
            throw Error("1-node baseline failed: " + base.error);
          // Captured before the fold so a traced cell places its collective
          // span where the direct multi-node run would.
          const double per_node_seconds = result.metrics.seconds;
          result.metrics = fold_multinode(result.metrics, base.seconds, *row.part,
                                          *finfo[fi].topo, arch);
          if (traced) trace_collectives(*sink, result.metrics, per_node_seconds);
        }
        break;
      } catch (const std::exception& e) {
        error = e.what();
      }
    }
    if (!error.empty()) {
      // Every cell-level throw carries its full grid coordinates: a failure
      // in a million-cell sweep names exactly what died and under what.
      std::string context = "sweep cell " + std::to_string(cell) + " (workload '" + *wl.name +
                            "'";
      if (fabric_axis) context += ", fabric '" + fabs[fi] + "'";
      context += ", config '" + configs[ci].name + "') failed";
      if (opts.retries > 0)
        context += " after " + std::to_string(opts.retries + 1) + " attempts";
      context += ": " + error;
      if (!opts.keep_going) throw Error(context);
      result.metrics = RunMetrics{};
      result.error = std::move(context);
    }
    const bool completed = result.ok();
    out[job] = std::move(result);
    // Only successes are journaled: a quarantined failure stays pending, so a
    // later resume (possibly with the fault fixed) re-runs it.
    if (journal.active() && completed) journal.append(cell, out[job]);
  };

  // ---- worker-affine tiling ----
  // Jobs are claimed in configuration-major run-length chunks instead of one
  // by one: a worker executing a chunk runs the same configuration repeatedly,
  // so its scratch's pooled buffer policy is reset — not rebuilt — between
  // consecutive cells.  Each configuration run splits into at most
  // worker_count pieces to keep the pool load-balanced.  Results are written
  // by job index and each cell's simulation is untouched, so output order and
  // bits match the one-job-at-a-time claiming at any thread count.
  const u32 nworkers = worker_count(threads, total);
  std::vector<size_t> order(total);
  for (size_t j = 0; j < total; ++j) order[j] = j;
  auto config_of = [&](size_t job) { return (cells != nullptr ? (*cells)[job] : job) % C; };
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return config_of(a) < config_of(b); });
  struct Chunk {
    size_t begin, end;  ///< half-open range into `order`
  };
  std::vector<Chunk> chunks;
  for (size_t s = 0; s < total;) {
    size_t e = s;
    while (e < total && config_of(order[e]) == config_of(order[s])) ++e;
    const size_t pieces = std::min<size_t>(nworkers, e - s);
    const size_t step = (e - s + pieces - 1) / pieces;
    for (size_t p = s; p < e; p += step) chunks.push_back({p, std::min(p + step, e)});
    s = e;
  }
  parallel_for(threads, chunks.size(), [&](size_t cj, u32 worker) {
    for (size_t k = chunks[cj].begin; k < chunks[cj].end; ++k) run_cell(order[k], worker);
  });
  return out;
}

std::vector<Configuration> named_configs(const std::vector<std::string>& names) {
  std::vector<Configuration> configs;
  configs.reserve(names.size());
  for (const auto& name : names) configs.push_back(ConfigRegistry::global().at(name));
  return configs;
}

}  // namespace

std::vector<SweepResult> SweepRunner::run(const std::vector<Workload>& workloads,
                                          const std::vector<Configuration>& configs,
                                          const AcceleratorConfig& arch) const {
  return run(workloads, configs, arch, SweepOptions{});
}

std::vector<SweepResult> SweepRunner::run(const std::vector<Workload>& workloads,
                                          const std::vector<Configuration>& configs,
                                          const AcceleratorConfig& arch,
                                          const SweepOptions& options) const {
  CELLO_CHECK_MSG(options.checkpoint.empty(),
                  "checkpointing requires a shard-scoped run (SweepRunner::run_shard): the "
                  "journal is keyed by the grid fingerprint");
  std::vector<WorkloadView> views;
  views.reserve(workloads.size());
  for (const auto& w : workloads) {
    CELLO_CHECK_MSG(w.dag != nullptr, "sweep workload '" << w.name << "' has no DAG");
    views.push_back({&w.name, w.dag.get(), w.matrix.get()});
  }
  return run_grid(threads_, views, configs, arch, nullptr, nullptr, options);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<Workload>& workloads,
                                          const std::vector<std::string>& config_names,
                                          const AcceleratorConfig& arch) const {
  return run(workloads, named_configs(config_names), arch);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<WorkloadSpec>& specs,
                                          const std::vector<Configuration>& configs,
                                          const AcceleratorConfig& arch) const {
  // resolve() caches by canonical spec, so duplicate specs share one DAG.
  std::vector<Workload> workloads;
  workloads.reserve(specs.size());
  for (const auto& spec : specs) workloads.push_back(WorkloadRegistry::global().resolve(spec));
  return run(workloads, configs, arch);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<std::string>& workload_specs,
                                          const std::vector<std::string>& config_names,
                                          const AcceleratorConfig& arch) const {
  std::vector<Workload> workloads;
  workloads.reserve(workload_specs.size());
  for (const auto& text : workload_specs)
    workloads.push_back(WorkloadRegistry::global().resolve(text));
  return run(workloads, named_configs(config_names), arch);
}

std::vector<SweepResult> SweepRunner::run_shard(const SweepGrid& grid,
                                                const ShardPlan& plan) const {
  return run_shard(grid, plan, SweepOptions{});
}

std::vector<SweepResult> SweepRunner::run_shard(const SweepGrid& grid, const ShardPlan& plan,
                                                const SweepOptions& options) const {
  // Resolve (build the DAG of, load the matrix of) only the workloads the
  // shard's cells actually touch: a shard of a dataset-heavy grid must not
  // pay — or even require access to — the other shards' datasets.  Untouched
  // rows keep null views; run_grid never dereferences a row no cell selects,
  // and their names come from the grid's canonical spec strings (identical
  // to the resolved names by construction).
  const size_t row_cells = grid.fabrics.size() * grid.configs.size();
  std::vector<char> needed(grid.workloads.size(), 0);
  for (const size_t cell : plan.cells)
    if (row_cells != 0 && cell / row_cells < grid.workloads.size())
      needed[cell / row_cells] = 1;
  std::vector<Workload> workloads(grid.workloads.size());
  for (size_t wi = 0; wi < grid.workloads.size(); ++wi)
    if (needed[wi]) workloads[wi] = WorkloadRegistry::global().resolve(grid.workloads[wi]);
  const std::vector<Configuration> configs = named_configs(grid.configs);
  std::vector<WorkloadView> views;
  views.reserve(workloads.size());
  for (size_t wi = 0; wi < grid.workloads.size(); ++wi)
    views.push_back(
        {&grid.workloads[wi], workloads[wi].dag.get(), workloads[wi].matrix.get()});
  return run_grid(threads_, views, configs, grid.arch, &grid.fabrics, &plan.cells, options,
                  &grid, &plan);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepWorkload>& workloads,
                                          const std::vector<Configuration>& configs,
                                          const AcceleratorConfig& arch) const {
  std::vector<WorkloadView> views;
  views.reserve(workloads.size());
  for (const auto& w : workloads) views.push_back({&w.name, &w.dag, w.matrix});
  return run_grid(threads_, views, configs, arch);
}

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepWorkload>& workloads,
                                          const std::vector<std::string>& config_names,
                                          const AcceleratorConfig& arch) const {
  return run(workloads, named_configs(config_names), arch);
}

}  // namespace cello::sim
