#include "sim/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace cello::sim {

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepWorkload>& workloads,
                                          const std::vector<Configuration>& configs,
                                          const AcceleratorConfig& arch) const {
  const size_t total = workloads.size() * configs.size();
  std::vector<SweepResult> out(total);
  if (total == 0) return out;

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto worker = [&]() {
    for (size_t job; (job = next.fetch_add(1)) < total;) {
      // A cell already failed: the grid's result is a rethrow, so burning
      // the remaining cells only wastes wall time.
      if (failed.load(std::memory_order_relaxed)) return;
      const size_t wi = job / configs.size();
      const size_t ci = job % configs.size();
      const SweepWorkload& wl = workloads[wi];
      try {
        const Simulator simulator(arch, wl.matrix);
        out[job] = {wl.name, configs[ci].name, simulator.run(wl.dag, configs[ci])};
      } catch (...) {
        failed.store(true, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
    }
  };

  u32 n = threads_ != 0 ? threads_ : std::thread::hardware_concurrency();
  n = std::max<u32>(1, std::min<u32>(n, static_cast<u32>(total)));
  std::vector<std::thread> pool;
  pool.reserve(n - 1);
  for (u32 t = 0; t + 1 < n; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is the n-th worker
  for (auto& th : pool) th.join();

  if (first_error) std::rethrow_exception(first_error);
  return out;
}

std::vector<SweepResult> SweepRunner::run(const std::vector<SweepWorkload>& workloads,
                                          const std::vector<std::string>& config_names,
                                          const AcceleratorConfig& arch) const {
  std::vector<Configuration> configs;
  configs.reserve(config_names.size());
  for (const auto& name : config_names) configs.push_back(ConfigRegistry::global().at(name));
  return run(workloads, configs, arch);
}

}  // namespace cello::sim
