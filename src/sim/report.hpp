// Human-readable and CSV reports over simulation metrics: per-op compute vs
// traffic breakdown (which stage is memory-bound and why) and per-tensor
// traffic attribution (which operand pays for the DRAM bytes).
#pragma once

#include <string>

#include "sim/config.hpp"
#include "sim/metrics.hpp"

namespace cello::sim {

/// Per-op table: MACs, DRAM bytes, intensity, and the binding constraint
/// (compute vs memory) under the given architecture.
std::string per_op_report(const RunMetrics& m, const AcceleratorConfig& arch,
                          size_t max_rows = 24);

/// Per-tensor traffic attribution, largest consumer first.
std::string per_tensor_report(const RunMetrics& m, size_t max_rows = 16);

/// Machine-readable CSV: one row per op ("op,macs,dram_bytes").
std::string per_op_csv(const RunMetrics& m);

}  // namespace cello::sim
