#include "sim/registry.hpp"

#include <cctype>

#include "common/error.hpp"
#include "sim/policies/cache_policy.hpp"
#include "sim/policies/chord_policy.hpp"
#include "sim/policies/explicit_buffers.hpp"
#include "sim/policies/kv_cache_policy.hpp"

namespace cello::sim {

namespace {

/// Lowercased alphanumerics only: "Flex+LRU" == "flex+lru" == "flexlru".
std::string normalize(const std::string& name) {
  std::string out;
  for (char c : name)
    if (std::isalnum(static_cast<unsigned char>(c)))
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace

const std::vector<std::string>& ConfigRegistry::table4_names() {
  static const std::vector<std::string> kNames = {
      "Flexagon", "Flex+LRU", "Flex+BRRIP", "FLAT", "SET", "Prelude-only", "Cello",
  };
  return kNames;
}

Configuration ConfigRegistry::preset(ConfigKind kind) {
  switch (kind) {
    case ConfigKind::Flexagon:
      return make_configuration("Flexagon", SchedulePolicy::OpByOp, explicit_buffers(),
                                "explicit");
    case ConfigKind::FlexLru:
      return make_configuration("Flex+LRU", SchedulePolicy::OpByOp, lru_cache(), "LRU");
    case ConfigKind::FlexBrrip:
      return make_configuration("Flex+BRRIP", SchedulePolicy::OpByOp, brrip_cache(), "BRRIP");
    case ConfigKind::Flat:
      return make_configuration("FLAT", SchedulePolicy::AdjacentPipeline, explicit_buffers(),
                                "explicit", /*allow_delayed_hold=*/false);
    case ConfigKind::Set:
      return make_configuration("SET", SchedulePolicy::AdjacentPipeline, explicit_buffers(),
                                "explicit", /*allow_delayed_hold=*/true);
    case ConfigKind::PreludeOnly:
      return make_configuration("Prelude-only", SchedulePolicy::OpByOp, prelude_only(),
                                "PRELUDE");
    case ConfigKind::Cello:
      return make_configuration("Cello", SchedulePolicy::Score, chord_buffer(), "CHORD",
                                /*allow_delayed_hold=*/true);
  }
  throw Error("unknown ConfigKind");
}

ConfigRegistry::ConfigRegistry() {
  // The seven Table IV rows, paper order.
  for (ConfigKind k : {ConfigKind::Flexagon, ConfigKind::FlexLru, ConfigKind::FlexBrrip,
                       ConfigKind::Flat, ConfigKind::Set, ConfigKind::PreludeOnly,
                       ConfigKind::Cello})
    add(preset(k));
  // Combinations the ConfigKind enum could not express.
  add(make_configuration("SCORE+LRU", SchedulePolicy::Score, lru_cache(), "LRU",
                         /*allow_delayed_hold=*/true));
  add(make_configuration("SCORE+BRRIP", SchedulePolicy::Score, brrip_cache(), "BRRIP",
                         /*allow_delayed_hold=*/true));
  add(make_configuration("FLAT+CHORD", SchedulePolicy::AdjacentPipeline, chord_buffer(),
                         "CHORD", /*allow_delayed_hold=*/false));
  add(make_configuration("SET+CHORD", SchedulePolicy::AdjacentPipeline, chord_buffer(), "CHORD",
                         /*allow_delayed_hold=*/true));
  add(make_configuration("SCORE+explicit", SchedulePolicy::Score, explicit_buffers(),
                         "explicit", /*allow_delayed_hold=*/true));
  // KV-cache decode row: Flexagon-style op-by-op scheduling over the
  // append-aware KV buffer (see kv_cache_policy.hpp).
  add(make_configuration("Flex+KV", SchedulePolicy::OpByOp, kv_cache_buffer(), "KV"));
  // "Cello" spelled as its composition, for symmetry with the combos above.
  add_alias("SCORE+CHORD", "Cello");
}

ConfigRegistry& ConfigRegistry::global() {
  static ConfigRegistry registry;
  return registry;
}

void ConfigRegistry::add(Configuration config) {
  CELLO_CHECK_MSG(!config.name.empty(), "configuration needs a name");
  CELLO_CHECK_MSG(static_cast<bool>(config.buffers),
                  "configuration '" << config.name << "' has no buffer policy factory");
  const std::string key = normalize(config.name);
  std::lock_guard<std::mutex> lock(mu_);
  CELLO_CHECK_MSG(!by_normalized_.count(key),
                  "configuration '" << config.name << "' already registered");
  configs_.push_back(std::move(config));
  by_normalized_[key] = configs_.size() - 1;
}

void ConfigRegistry::add_alias(const std::string& alias, const std::string& existing) {
  const std::string key = normalize(alias);
  std::lock_guard<std::mutex> lock(mu_);
  CELLO_CHECK_MSG(!by_normalized_.count(key), "alias '" << alias << "' already registered");
  const auto it = by_normalized_.find(normalize(existing));
  CELLO_CHECK_MSG(it != by_normalized_.end(),
                  "alias '" << alias << "' targets unknown configuration '" << existing << "'");
  by_normalized_[key] = it->second;
}

const Configuration* ConfigRegistry::find(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = by_normalized_.find(normalize(name));
  return it == by_normalized_.end() ? nullptr : &configs_[it->second];
}

const Configuration& ConfigRegistry::at(const std::string& name) const {
  const Configuration* c = find(name);
  if (c != nullptr) return *c;
  std::string known;
  for (const auto& n : names()) {
    if (!known.empty()) known += ", ";
    known += n;
  }
  throw Error("unknown configuration '" + name + "' (registered: " + known + ")");
}

std::vector<std::string> ConfigRegistry::names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(configs_.size());
  for (const auto& c : configs_) out.push_back(c.name);
  return out;
}

}  // namespace cello::sim
