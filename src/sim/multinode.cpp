#include "sim/multinode.hpp"

#include "common/error.hpp"
#include "noc/topology.hpp"
#include "sim/partition.hpp"

namespace cello::sim {

MultiNodeMetrics simulate_multinode(const std::function<ir::TensorDag(i64)>& shard_builder,
                                    ConfigKind kind, const AcceleratorConfig& arch, i64 nodes,
                                    double noc_bytes_per_sec) {
  CELLO_CHECK(nodes >= 1);
  MultiNodeMetrics mm;
  mm.nodes = nodes;

  const ir::TensorDag shard = shard_builder(nodes);
  mm.per_node = simulate(shard, kind, arch);
  double baseline_seconds = mm.per_node.seconds;

  if (nodes > 1) {
    // SCORE strategy: every small (RF-class) tensor produced by the shard is
    // the node's partial result of a contracted operator — it is reduced
    // across nodes and the combined value broadcast back.  The naive
    // strategy splits pipelines across nodes instead, so each skewed
    // intermediate crosses the NoC at least once per production.
    std::vector<Partition::Transfer> transfers;
    Bytes naive = 0;
    for (const auto& t : shard.tensors()) {
      if (!shard.producer(t.id).has_value()) continue;
      if (t.bytes() <= arch.rf_bytes) {
        transfers.push_back({t.id, t.bytes(), ShardClass::Reduce});
      } else {
        naive += t.bytes() * static_cast<Bytes>(nodes);  // all shards move
      }
    }
    const noc::Topology topo = noc::Topology::build(noc::resolve_topology("mesh", nodes));
    AcceleratorConfig pricing = arch;
    pricing.noc_link_bytes_per_sec = noc_bytes_per_sec;
    const NocCost cost = price_noc(transfers, topo, pricing);
    mm.noc_bytes = cost.byte_hops;
    mm.naive_noc_bytes = naive;
    mm.noc_seconds = cost.seconds;

    // Efficiency against the single-node run of the full problem — computed
    // only when there is actual scale-out; a 1-node call IS the baseline.
    baseline_seconds = simulate(shard_builder(1), kind, arch).seconds;
  }
  mm.seconds = mm.per_node.seconds + mm.noc_seconds;

  const double total_macs = static_cast<double>(mm.per_node.total_macs) *
                            static_cast<double>(nodes);
  mm.total_gmacs_per_sec = total_macs / mm.seconds / 1e9;

  const double speedup = baseline_seconds / mm.seconds;
  mm.parallel_efficiency = speedup / static_cast<double>(nodes);
  return mm;
}

}  // namespace cello::sim
