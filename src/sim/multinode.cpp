#include "sim/multinode.hpp"

#include "common/error.hpp"
#include "workloads/cg.hpp"

namespace cello::sim {

MultiNodeMetrics simulate_multinode(const std::function<ir::TensorDag(i64)>& shard_builder,
                                    ConfigKind kind, const AcceleratorConfig& arch, i64 nodes,
                                    double noc_bytes_per_sec) {
  CELLO_CHECK(nodes >= 1);
  MultiNodeMetrics mm;
  mm.nodes = nodes;

  const ir::TensorDag shard = shard_builder(nodes);
  mm.per_node = simulate(shard, kind, arch);

  noc::MeshNoc mesh;
  mesh.nodes = nodes;
  if (nodes > 1) {
    // SCORE strategy: every small (RF-class) tensor produced by the shard is
    // the node's partial result of a contracted operator — it is reduced
    // across nodes and the combined value broadcast back.
    const i64 hops = mesh.broadcast_hops() + mesh.reduce_hops();
    for (const auto& t : shard.tensors()) {
      if (!shard.producer(t.id).has_value()) continue;
      if (t.bytes() > arch.rf_bytes) continue;
      mm.noc_bytes += t.bytes() * static_cast<Bytes>(hops);
    }
    // Naive strategy: pipelines span nodes, so each skewed intermediate
    // crosses the NoC at least once per production.
    for (const auto& t : shard.tensors()) {
      if (!shard.producer(t.id).has_value()) continue;
      if (t.bytes() <= arch.rf_bytes) continue;
      mm.naive_noc_bytes += t.bytes() * static_cast<Bytes>(nodes);  // all shards move
    }
  }
  mm.noc_seconds = static_cast<double>(mm.noc_bytes) / noc_bytes_per_sec;
  mm.seconds = mm.per_node.seconds + mm.noc_seconds;

  const double total_macs = static_cast<double>(mm.per_node.total_macs) *
                            static_cast<double>(nodes);
  mm.total_gmacs_per_sec = total_macs / mm.seconds / 1e9;

  // Efficiency against the single-node run of the full problem.
  const ir::TensorDag full = shard_builder(1);
  const RunMetrics one = simulate(full, kind, arch);
  const double speedup = one.seconds / mm.seconds;
  mm.parallel_efficiency = speedup / static_cast<double>(nodes);
  return mm;
}

}  // namespace cello::sim
