// Simulation outputs: runtime, throughput, traffic and energy.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cello::sim {

struct RunMetrics {
  double seconds = 0;
  i64 total_macs = 0;
  Bytes dram_bytes = 0;          ///< off-chip traffic (reads + writes)
  Bytes dram_read_bytes = 0;
  Bytes dram_write_bytes = 0;
  double offchip_energy_pj = 0;
  double onchip_energy_pj = 0;
  u64 sram_line_accesses = 0;

  // ---- multi-chip scale-out (nodes > 1 only; defaults = single chip) ------
  i64 nodes = 1;                  ///< chips that cooperated on this run
  Bytes noc_bytes = 0;            ///< cross-chip traffic in byte-hops (SCORE sharding)
  Bytes naive_noc_bytes = 0;      ///< what shipping the sharded intermediates would move
  double noc_seconds = 0;         ///< collective latency + busiest-link serialization
  double max_link_utilization = 0;  ///< busiest link's share of its bandwidth-time
  double parallel_efficiency = 0;   ///< 1-node seconds / (nodes * multi-node seconds)

  /// Per base-tensor DRAM traffic, for traffic-attribution studies.
  std::map<std::string, Bytes> traffic_by_tensor;

  /// Per scheduled op: name, compute work and off-chip traffic — the rows of
  /// the sim::report breakdown.
  struct OpTraffic {
    std::string op;
    i64 macs = 0;
    Bytes dram_bytes = 0;
  };
  std::vector<OpTraffic> per_op;

  /// Pre-size the per-op breakdown for a known schedule length (the simulator
  /// calls this once up front so the step loop never reallocates).
  void reserve_steps(size_t steps) { per_op.reserve(steps); }

  double gmacs_per_sec() const { return seconds > 0 ? static_cast<double>(total_macs) / seconds / 1e9 : 0; }
  /// Achieved arithmetic intensity (MACs per DRAM byte).
  double intensity() const {
    return dram_bytes > 0 ? static_cast<double>(total_macs) / static_cast<double>(dram_bytes)
                          : 0;
  }
  double total_energy_pj() const { return offchip_energy_pj + onchip_energy_pj; }
};

}  // namespace cello::sim
