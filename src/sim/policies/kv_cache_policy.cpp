#include "sim/policies/kv_cache_policy.hpp"

#include <algorithm>

#include "mem/sram_model.hpp"

namespace cello::sim {

void KvCachePolicy::reset() {
  ring_.clear();
  bases_.clear();
  resident_total_ = 0;
  sram_lines_ = 0;
  stats_ = {};
}

KvCachePolicy::BaseState& KvCachePolicy::base_state(const chord::TensorMeta& t) {
  BaseState& b = bases_[t.id];
  if (b.name.empty()) b.name = t.name;
  return b;
}

Bytes KvCachePolicy::admit(BaseState& b, i32 base, Bytes bytes, bool dirty) {
  if (bytes == 0) return 0;
  ring_.push_back({base, bytes, dirty});
  b.resident += bytes;
  if (dirty) b.dirty_resident += bytes;
  resident_total_ += bytes;
  stats_.peak_resident_bytes = std::max(stats_.peak_resident_bytes, resident_total_);
  // FIFO ring: evict oldest pinned segments until the budget holds again.
  // A segment admitted at <= the budget is never its own victim.
  Bytes spilled = 0;
  while (resident_total_ > arch_.sram_bytes && !ring_.empty()) {
    const Segment seg = ring_.front();
    ring_.pop_front();
    BaseState& owner = bases_[seg.base];
    owner.resident -= seg.bytes;
    resident_total_ -= seg.bytes;
    ++stats_.ring_evictions;
    if (seg.dirty) {
      owner.dirty_resident -= seg.bytes;
      spilled += seg.bytes;
      stats_.kv_spill_bytes += seg.bytes;
    }
  }
  return spilled;
}

BufferService KvCachePolicy::read_tensor(const chord::TensorMeta& t) {
  sram_lines_ += ceil_div<Bytes>(t.bytes, arch_.line_bytes);
  if (!t.append_only) return {.dram_read = t.bytes, .dram_write = 0};

  BaseState& b = base_state(t);
  const Bytes hit = std::min(b.resident, t.bytes);
  const Bytes miss = t.bytes - hit;
  stats_.kv_read_hit_bytes += hit;
  stats_.kv_read_miss_bytes += miss;
  // Re-install the fetched tail (clean — DRAM already holds it) so later
  // steps hit; never more than the budget can hold.
  Bytes spill = 0;
  if (miss > 0) spill = admit(b, t.id, std::min<Bytes>(miss, arch_.sram_bytes), false);
  return {.dram_read = miss, .dram_write = spill};
}

BufferService KvCachePolicy::write_tensor(const chord::TensorMeta& t) {
  if (!t.append_only) {
    sram_lines_ += ceil_div<Bytes>(t.bytes, arch_.line_bytes);
    return {.dram_read = 0, .dram_write = t.bytes};
  }
  // Only the appended rows move: they pin on chip dirty (no write-through).
  BaseState& b = base_state(t);
  const Bytes add = std::min<Bytes>(t.appended_bytes, arch_.sram_bytes);
  const Bytes overflow = t.appended_bytes - add;  // cannot pin: write through
  sram_lines_ += ceil_div<Bytes>(t.appended_bytes, arch_.line_bytes);
  const Bytes spill = admit(b, t.id, add, /*dirty=*/true);
  return {.dram_read = 0, .dram_write = spill + overflow};
}

void KvCachePolicy::retire(i32 base_id) {
  const auto it = bases_.find(base_id);
  if (it == bases_.end() || it->second.resident == 0) return;
  // Dead data: release residency without writeback (same liveness argument
  // that lets SCORE skip draining dead intermediates).
  for (auto seg = ring_.begin(); seg != ring_.end();) {
    if (seg->base == base_id) {
      resident_total_ -= seg->bytes;
      seg = ring_.erase(seg);
    } else {
      ++seg;
    }
  }
  it->second.resident = 0;
  it->second.dirty_resident = 0;
}

std::optional<std::vector<DrainItem>> KvCachePolicy::drain(const DrainContext&) {
  // Still-live dirty cache rows (result-marked or never-retired bases)
  // persist to DRAM at the end of the run.
  std::vector<std::pair<i32, const BaseState*>> dirty;
  for (const auto& [id, b] : bases_)
    if (b.dirty_resident > 0) dirty.emplace_back(id, &b);
  if (dirty.empty()) return std::nullopt;
  std::sort(dirty.begin(), dirty.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<DrainItem> items;
  items.reserve(dirty.size());
  for (const auto& [id, b] : dirty) items.push_back({b->name, b->dirty_resident});
  for (auto& [id, b] : bases_) b.dirty_resident = 0;
  for (auto& seg : ring_) seg.dirty = false;
  return items;
}

void KvCachePolicy::finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                             RunMetrics& m) const {
  // Explicitly managed, tag-free storage: buffet-class energy per line.
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Buffet);
  m.sram_line_accesses = sram_lines_ + pipeline_sram_lines;
  m.onchip_energy_pj = static_cast<double>(m.sram_line_accesses) * e.data_pj;
}

BufferPolicyFactory kv_cache_buffer() {
  return [](const AcceleratorConfig& arch) { return std::make_unique<KvCachePolicy>(arch); };
}

}  // namespace cello::sim
