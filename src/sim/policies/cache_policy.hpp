// CachePolicy: the implicit-buffer baselines (Flex+LRU, Flex+BRRIP) behind
// the BufferPolicy interface.  Trace-driven at cache-line granularity: every
// routed op is replayed as a chunked access stream, including the SpMM
// gather pattern against the real sparse matrix when one is provided.
//
// service_op is allocation-free on the steady path: operand partitions live
// in member scratch vectors and every per-chunk address decomposition that is
// loop-invariant (base addresses, row strides, small-operand line ranges) is
// hoisted out of the row loops and fed to the cache's line-granularity API.
#pragma once

#include <vector>

#include "cache/cache.hpp"
#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

class CachePolicy final : public BufferPolicy {
 public:
  CachePolicy(const AcceleratorConfig& arch, cache::Policy replacement)
      : arch_(arch),
        replacement_(replacement),
        cache_(arch.sram_bytes, arch.line_bytes, arch.cache_associativity, replacement) {}

  const char* name() const override {
    return replacement_ == cache::Policy::Lru ? "LRU" : "BRRIP";
  }
  bool trace_driven() const override { return true; }

  bool reusable() const override { return true; }
  void reset() override {
    cache_.reset();
    large_in_.clear();
    small_in_.clear();
  }

  BufferService service_op(const OpTrace& trace) override;

  /// End-of-run flush of dirty lines.
  std::optional<std::vector<DrainItem>> drain(const DrainContext& ctx) override;

  Bytes occupancy_bytes() const override {
    return static_cast<Bytes>(cache_.valid_lines()) * cache_.line_bytes();
  }

  void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                RunMetrics& m) const override;

  const cache::SetAssocCache& cache() const { return cache_; }

 private:
  AcceleratorConfig arch_;
  cache::Policy replacement_;
  cache::SetAssocCache cache_;

  /// Precomputed whole-tensor line range, re-streamed once per chunk.
  struct LineRange {
    u64 first_line = 0;
    u64 count = 0;
  };
  // Reused scratch (cleared per op) — service_op allocates nothing steady-state.
  std::vector<const ir::TensorDesc*> large_in_;
  std::vector<LineRange> small_in_;
};

BufferPolicyFactory lru_cache();
BufferPolicyFactory brrip_cache();

}  // namespace cello::sim
