// CachePolicy: the implicit-buffer baselines (Flex+LRU, Flex+BRRIP) behind
// the BufferPolicy interface.  Trace-driven at cache-line granularity: every
// routed op is replayed as a chunked access stream, including the SpMM
// gather pattern against the real sparse matrix when one is provided.
//
// Two servicing paths, bit-identical by construction:
//  * service_op drives the cache directly through the shared span emitter
//    (sim/policies/access_gen.hpp), allocation-free on the steady path;
//  * replay() consumes a pre-captured AccessStream of the same spans through
//    cache::StreamReplayer — one capture amortizes address generation across
//    every cache geometry in a sweep column, and periodic streams
//    fast-forward once the cache state cycles.  replay_many() batches N
//    pooled policies over a single stream pass.
#pragma once

#include <vector>

#include "cache/cache.hpp"
#include "sim/policies/access_gen.hpp"
#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

class CachePolicy final : public BufferPolicy {
 public:
  CachePolicy(const AcceleratorConfig& arch, cache::Policy replacement)
      : arch_(arch),
        replacement_(replacement),
        cache_(arch.sram_bytes, arch.line_bytes, arch.cache_associativity, replacement) {}

  const char* name() const override {
    return replacement_ == cache::Policy::Lru ? "LRU" : "BRRIP";
  }
  bool trace_driven() const override { return true; }

  bool reusable() const override { return true; }
  void reset() override {
    cache_.reset();
    scratch_.large_in.clear();
    scratch_.small_in.clear();
  }

  BufferService service_op(const OpTrace& trace) override;

  bool supports_replay() const override { return true; }
  /// Stream replay; requires a compatible stream and a freshly reset cache
  /// (returns false otherwise — the caller falls back to service_op).
  bool replay(const AccessStream& stream, std::vector<BufferService>& services) override;

  /// Batched replay: run every policy over one pass of the stream in
  /// occurrence lockstep, so N cache geometries (LRU/BRRIP x SRAM budgets)
  /// share each hot period block while it is resident in the host caches.
  /// Equivalent to N independent replay() calls; all-or-nothing (returns
  /// false with every policy untouched when any one is ineligible).
  static bool replay_many(const AccessStream& stream, const std::vector<CachePolicy*>& policies,
                          std::vector<std::vector<BufferService>>& services);

  /// End-of-run flush of dirty lines.
  std::optional<std::vector<DrainItem>> drain(const DrainContext& ctx) override;

  Bytes occupancy_bytes() const override {
    return static_cast<Bytes>(cache_.valid_lines()) * cache_.line_bytes();
  }

  void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                RunMetrics& m) const override;

  const cache::SetAssocCache& cache() const { return cache_; }

 private:
  AcceleratorConfig arch_;
  cache::Policy replacement_;
  cache::SetAssocCache cache_;

  // Reused operand-partition scratch — service_op allocates nothing
  // steady-state.
  OpAccessScratch scratch_;
};

BufferPolicyFactory lru_cache();
BufferPolicyFactory brrip_cache();

}  // namespace cello::sim
