// BufferPolicy: the on-chip buffer hierarchy half of a sim::Configuration.
//
// A policy services the operand accesses the schedule routes to it (see
// Router) and owns the corresponding on-chip energy model.  Two servicing
// styles exist:
//  * analytic (tensor granularity): ExplicitBuffers, PreludeOnly, Chord —
//    read_tensor / write_tensor are called once per routed operand;
//  * trace-driven (cache-line granularity): LruCache, BrripCache —
//    service_op replays the whole op's access trace, including the SpMM
//    gather pattern against the real sparse matrix when provided.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "chord/chord.hpp"
#include "ir/dag.hpp"
#include "sim/address_map.hpp"
#include "sim/config.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

struct AccessStream;

/// DRAM traffic incurred by one serviced access (or one whole op for
/// trace-driven policies).
struct BufferService {
  Bytes dram_read = 0;
  Bytes dram_write = 0;

  Bytes total() const { return dram_read + dram_write; }
};

/// Everything a trace-driven policy needs to replay one scheduled op.
struct OpTrace {
  const ir::TensorDag* dag = nullptr;
  const ir::EinsumOp* op = nullptr;
  const AddressMap* map = nullptr;
  const sparse::CsrMatrix* matrix = nullptr;  ///< real sparsity; may be null
  /// Unique inputs routed to this policy, in operand order (the schedule may
  /// service the others on chip).
  std::vector<ir::TensorId> inputs;
  bool service_output = true;  ///< false when the output stays on chip
};

struct DrainContext {
  const ir::TensorDag* dag = nullptr;
  const AddressMap* map = nullptr;
  /// True when the schedule already routed final results straight to DRAM
  /// (SCORE), leaving nothing resident to drain.
  bool results_written_through = false;
};

/// One per-base-tensor slice of the end-of-run drain.  An empty base name
/// contributes drain timing without per-tensor attribution (cache flush).
struct DrainItem {
  std::string base;
  Bytes dram_write = 0;
};

class BufferPolicy {
 public:
  virtual ~BufferPolicy() = default;

  virtual const char* name() const = 0;
  virtual bool trace_driven() const { return false; }

  /// True when reset() restores the exact freshly-constructed state, making
  /// the instance safe to pool across runs (sim::RunScratch reuses such
  /// policies reset-not-reconstructed between sweep cells).  Policies that
  /// cannot guarantee this keep the default and are rebuilt per run.
  virtual bool reusable() const { return false; }
  /// Restore constructed state without releasing storage.  Only meaningful
  /// when reusable() is true; runs through a pool must be bit-identical to
  /// runs on a fresh instance.
  virtual void reset() {}

  // ---- analytic interface (tensor granularity) -----------------------------
  virtual BufferService read_tensor(const chord::TensorMeta&) { return {}; }
  virtual BufferService write_tensor(const chord::TensorMeta&) { return {}; }
  /// The base tensor's last consumer ran: release any residency it held.
  virtual void retire(i32 /*base_id*/) {}

  // ---- trace-driven interface (op granularity) -----------------------------
  virtual BufferService service_op(const OpTrace&) { return {}; }

  /// True when this policy can consume a pre-captured AccessStream instead of
  /// per-op service_op calls (see sim/access_stream.hpp).
  virtual bool supports_replay() const { return false; }
  /// Replay a captured stream end to end, filling one BufferService per
  /// scheduled step — the exact values the equivalent service_op sequence
  /// would have returned, with the policy left in the same final state.
  /// Returns false (with the policy untouched) when the stream is not
  /// replayable here, e.g. a geometry mismatch; the caller then falls back to
  /// direct servicing.
  virtual bool replay(const AccessStream& /*stream*/,
                      std::vector<BufferService>& /*services*/) {
    return false;
  }

  /// Bytes of on-chip buffer capacity currently holding live data: pinned /
  /// resident tensor bytes for the analytic policies, valid lines x line size
  /// for the trace-driven caches.  Pure observability (the trace subsystem
  /// samples it per step into a counter track) — implementations must not
  /// perturb policy state.  Streaming policies that retain nothing report 0.
  virtual Bytes occupancy_bytes() const { return 0; }

  /// Drain still-resident state (dirty lines, resident result prefixes) at
  /// the end of the run.  nullopt = no drain stage for this policy.
  virtual std::optional<std::vector<DrainItem>> drain(const DrainContext&) {
    return std::nullopt;
  }

  /// Fill the on-chip side of the metrics (sram_line_accesses,
  /// onchip_energy_pj) and, for trace-driven policies, fold in the
  /// authoritative DRAM totals.  `pipeline_sram_lines` counts the pipeline
  /// buffer staging accesses issued by the simulator itself.
  virtual void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                        RunMetrics& m) const = 0;
};

/// Configurations hold a factory, not an instance: every run gets a fresh,
/// independently stateful policy (which is what makes SweepRunner's parallel
/// fan-out safe).
using BufferPolicyFactory =
    std::function<std::unique_ptr<BufferPolicy>(const AcceleratorConfig&)>;

}  // namespace cello::sim
