// KvCachePolicy: a KV-cache-aware buffer for autoregressive decode.
//
// Append-only bases (ir::TensorDag::mark_append chains, surfaced through
// chord::TensorMeta::append_only) get cache semantics tuned to how a KV cache
// is actually used:
//  * a step's write pins only the APPENDED rows on chip (the previous extent
//    is already resident or already spilled — never rewritten),
//  * a read hits on the resident bytes and fetches just the missing tail
//    from DRAM, re-installing it for later steps when space allows,
//  * residency is a global FIFO ring over pinned segments: when the SRAM
//    budget is exceeded the oldest segments are evicted — dirty ones (pinned
//    on write, never spilled) pay their DRAM writeback at that moment, so
//    spill traffic is priced through the same roofline as everything else.
//
// Everything that is NOT an append-only base (weights, activations) streams
// at full footprint like ExplicitBuffersPolicy: the policy spends its entire
// SRAM budget on the cache, which is the design point real decode
// accelerators pick once the KV footprint dominates.
//
// reset() restores constructed state without releasing storage, so the
// policy pools in sim::RunScratch across sweep cells like cache/explicit/
// CHORD.
#pragma once

#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

struct KvCacheStats {
  Bytes kv_read_hit_bytes = 0;   ///< cache reads served from resident rows
  Bytes kv_read_miss_bytes = 0;  ///< cache reads fetched from DRAM
  Bytes kv_spill_bytes = 0;      ///< dirty rows written back on ring eviction
  u64 ring_evictions = 0;        ///< segments evicted to honor the budget
  Bytes peak_resident_bytes = 0; ///< high-water mark of pinned KV residency
};

class KvCachePolicy final : public BufferPolicy {
 public:
  explicit KvCachePolicy(const AcceleratorConfig& arch) : arch_(arch) {}

  const char* name() const override { return "KV-cache"; }

  bool reusable() const override { return true; }
  void reset() override;

  BufferService read_tensor(const chord::TensorMeta& t) override;
  BufferService write_tensor(const chord::TensorMeta& t) override;
  void retire(i32 base_id) override;

  std::optional<std::vector<DrainItem>> drain(const DrainContext& ctx) override;

  Bytes occupancy_bytes() const override { return resident_total_; }

  void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                RunMetrics& m) const override;

  const KvCacheStats& stats() const { return stats_; }
  Bytes resident_bytes() const { return resident_total_; }

 private:
  /// One pinned run of cache rows; FIFO order in ring_ is append order.
  struct Segment {
    i32 base = -1;
    Bytes bytes = 0;
    bool dirty = false;  ///< pinned on write, not yet spilled to DRAM
  };
  /// Per-base residency bookkeeping (extent known on chip).
  struct BaseState {
    std::string name;          ///< base name, for drain attribution
    Bytes resident = 0;        ///< pinned bytes of this base
    Bytes dirty_resident = 0;  ///< pinned bytes never written to DRAM
  };

  BaseState& base_state(const chord::TensorMeta& t);
  /// Pin `bytes` of `t`'s base, FIFO-evicting to the SRAM budget.  Returns
  /// the dirty bytes the evictions spilled to DRAM.
  Bytes admit(BaseState& b, i32 base, Bytes bytes, bool dirty);

  AcceleratorConfig arch_;
  std::deque<Segment> ring_;
  std::unordered_map<i32, BaseState> bases_;
  Bytes resident_total_ = 0;
  u64 sram_lines_ = 0;  ///< staging accesses (cache rows + streamed tensors)
  KvCacheStats stats_;
};

BufferPolicyFactory kv_cache_buffer();

}  // namespace cello::sim
