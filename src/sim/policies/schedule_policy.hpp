// Schedule policies: how a configuration orders ops and which producer ->
// consumer edges it services on chip.
//
// The policy is orthogonal to the buffer hierarchy (see BufferPolicy): a
// Configuration pairs one of each.  The Router turns a policy plus a built
// SCORE schedule into per-operand routing decisions the simulator executes.
#pragma once

#include <vector>

#include "ir/dag.hpp"
#include "score/schedule.hpp"
#include "sim/config.hpp"

namespace cello::sim {

enum class SchedulePolicy {
  OpByOp,            ///< no pipelining: every op begins and ends in the buffer hierarchy
  AdjacentPipeline,  ///< tensor-level pipelining of realized producer/consumer chains
                     ///< (FLAT; SET when delayed holds are allowed)
  Score,             ///< SCORE: per-edge servicing + residency classes (register
                     ///< file / pipeline buffer / CHORD / DRAM)
};

const char* to_string(SchedulePolicy p);

/// Where one operand access is serviced.
enum class Route {
  PipelineBuffer,  ///< on-chip pipeline buffer (producer/consumer chaining)
  RegisterFile,    ///< small-tensor register file (externals pay one cold fetch)
  Buffer,          ///< the configuration's BufferPolicy
  DirectDram,      ///< bypass the hierarchy (SCORE draining a final result)
  Discard,         ///< dead output SCORE proves is never needed again
};

/// Immutable per-tensor routing tables: the pipelining and (hold-budget
/// demoted) residency vectors the Router consults per operand access.  They
/// depend only on (dag, schedule, policy, allow_delayed_hold, arch) — the
/// same inputs the sweep's schedule cache keys by — so one build can serve
/// every run sharing those inputs read-only (see
/// sim::RunArtifacts::router_tables); SweepRunner prebuilds one per slot next
/// to Schedule/ReuseIndex instead of rebuilding them per cell.
struct RouterTables {
  std::vector<bool> pipelined;  ///< per TensorId: every consumer serviced on chip
  /// Per TensorId, after demoting pipeline-buffer residents that cannot
  /// actually stay (hold budget, unrealized edge) to the buffer hierarchy.
  std::vector<score::Residency> residency;

  static RouterTables build(const ir::TensorDag& dag, const score::Schedule& sched,
                            SchedulePolicy policy, bool allow_delayed_hold,
                            const AcceleratorConfig& arch);
};

/// Per-run routing oracle: binds a SchedulePolicy to one DAG + schedule.
class Router {
 public:
  /// Build private tables for this run.
  Router(const ir::TensorDag& dag, const score::Schedule& sched, SchedulePolicy policy,
         bool allow_delayed_hold, const AcceleratorConfig& arch);
  /// Borrow shared immutable tables; `tables` must equal RouterTables::build
  /// of the same (dag, sched, policy, hold flag, arch) inputs and outlive the
  /// Router.  Routing decisions are bit-identical to the building constructor.
  Router(const ir::TensorDag& dag, const score::Schedule& sched, SchedulePolicy policy,
         const RouterTables& tables);

  Route route_input(const ir::EinsumOp& op, ir::TensorId in) const;
  Route route_output(const ir::EinsumOp& op) const;

  /// True when an edge between two consecutively scheduled ops is serviced on
  /// chip — the steps then share a pipeline timing group.
  bool linked_onchip(ir::OpId prev, ir::OpId cur) const;
  bool pipelines() const { return policy_ != SchedulePolicy::OpByOp; }

  /// Tensors serviced entirely by the pipeline buffer (tensor-level view).
  const std::vector<bool>& pipelined() const { return tables_->pipelined; }

 private:
  const ir::TensorDag& dag_;
  const score::Schedule& sched_;
  SchedulePolicy policy_;
  RouterTables own_;            ///< populated only by the building constructor
  const RouterTables* tables_;  ///< &own_, or the borrowed shared copy
};

}  // namespace cello::sim
