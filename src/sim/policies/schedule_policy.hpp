// Schedule policies: how a configuration orders ops and which producer ->
// consumer edges it services on chip.
//
// The policy is orthogonal to the buffer hierarchy (see BufferPolicy): a
// Configuration pairs one of each.  The Router turns a policy plus a built
// SCORE schedule into per-operand routing decisions the simulator executes.
#pragma once

#include <vector>

#include "ir/dag.hpp"
#include "score/schedule.hpp"
#include "sim/config.hpp"

namespace cello::sim {

enum class SchedulePolicy {
  OpByOp,            ///< no pipelining: every op begins and ends in the buffer hierarchy
  AdjacentPipeline,  ///< tensor-level pipelining of realized producer/consumer chains
                     ///< (FLAT; SET when delayed holds are allowed)
  Score,             ///< SCORE: per-edge servicing + residency classes (register
                     ///< file / pipeline buffer / CHORD / DRAM)
};

const char* to_string(SchedulePolicy p);

/// Where one operand access is serviced.
enum class Route {
  PipelineBuffer,  ///< on-chip pipeline buffer (producer/consumer chaining)
  RegisterFile,    ///< small-tensor register file (externals pay one cold fetch)
  Buffer,          ///< the configuration's BufferPolicy
  DirectDram,      ///< bypass the hierarchy (SCORE draining a final result)
  Discard,         ///< dead output SCORE proves is never needed again
};

/// Per-run routing oracle: binds a SchedulePolicy to one DAG + schedule.
class Router {
 public:
  Router(const ir::TensorDag& dag, const score::Schedule& sched, SchedulePolicy policy,
         bool allow_delayed_hold, const AcceleratorConfig& arch);

  Route route_input(const ir::EinsumOp& op, ir::TensorId in) const;
  Route route_output(const ir::EinsumOp& op) const;

  /// True when an edge between two consecutively scheduled ops is serviced on
  /// chip — the steps then share a pipeline timing group.
  bool linked_onchip(ir::OpId prev, ir::OpId cur) const;
  bool pipelines() const { return policy_ != SchedulePolicy::OpByOp; }

  /// Tensors serviced entirely by the pipeline buffer (tensor-level view).
  const std::vector<bool>& pipelined() const { return piped_; }

 private:
  const ir::TensorDag& dag_;
  const score::Schedule& sched_;
  SchedulePolicy policy_;
  std::vector<bool> piped_;              ///< per TensorId
  std::vector<score::Residency> res_;    ///< per TensorId, after hold-budget demotion
};

}  // namespace cello::sim
