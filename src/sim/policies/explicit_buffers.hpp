// ExplicitBuffers: the Flexagon-style hierarchy — every routed operand moves
// between DRAM and a scratchpad-managed staging buffer, full footprint, every
// time.  No implicit reuse.
#pragma once

#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

class ExplicitBuffersPolicy final : public BufferPolicy {
 public:
  explicit ExplicitBuffersPolicy(const AcceleratorConfig& arch) : arch_(arch) {}

  const char* name() const override { return "explicit"; }

  bool reusable() const override { return true; }
  void reset() override { sram_lines_ = 0; }

  BufferService read_tensor(const chord::TensorMeta& t) override;
  BufferService write_tensor(const chord::TensorMeta& t) override;

  void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                RunMetrics& m) const override;

 private:
  AcceleratorConfig arch_;
  u64 sram_lines_ = 0;  ///< scratchpad staging accesses
};

BufferPolicyFactory explicit_buffers();

}  // namespace cello::sim
