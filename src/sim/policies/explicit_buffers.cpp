#include "sim/policies/explicit_buffers.hpp"

#include "mem/sram_model.hpp"

namespace cello::sim {

BufferService ExplicitBuffersPolicy::read_tensor(const chord::TensorMeta& t) {
  sram_lines_ += ceil_div<Bytes>(t.bytes, arch_.line_bytes);
  return {.dram_read = t.bytes, .dram_write = 0};
}

BufferService ExplicitBuffersPolicy::write_tensor(const chord::TensorMeta& t) {
  sram_lines_ += ceil_div<Bytes>(t.bytes, arch_.line_bytes);
  return {.dram_read = 0, .dram_write = t.bytes};
}

void ExplicitBuffersPolicy::finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                                     RunMetrics& m) const {
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Scratchpad);
  m.sram_line_accesses = sram_lines_ + pipeline_sram_lines;
  m.onchip_energy_pj = static_cast<double>(m.sram_line_accesses) * e.data_pj;
}

BufferPolicyFactory explicit_buffers() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<ExplicitBuffersPolicy>(arch);
  };
}

}  // namespace cello::sim
