#include "sim/policies/schedule_policy.hpp"

namespace cello::sim {

const char* to_string(SchedulePolicy p) {
  switch (p) {
    case SchedulePolicy::OpByOp: return "op-by-op";
    case SchedulePolicy::AdjacentPipeline: return "adjacent-pipeline";
    case SchedulePolicy::Score: return "SCORE";
  }
  return "?";
}

namespace {

using score::DepKind;
using score::Residency;

/// Tensor-level pipelining decisions: a tensor stays on chip only when
/// *every* consumer is serviced by the pipeline buffer.  AdjacentPipeline
/// without holds (FLAT) additionally requires strictly adjacent realized
/// pipelining; with holds (SET) and under SCORE, delayed holds are allowed up
/// to the hold budget.
std::vector<bool> pipelined_tensors(const ir::TensorDag& dag, const score::Schedule& sched,
                                    SchedulePolicy policy, bool allow_delayed_hold,
                                    const AcceleratorConfig& arch) {
  std::vector<bool> piped(dag.tensors().size(), false);
  if (policy == SchedulePolicy::OpByOp) return piped;
  const bool adjacent_only = policy == SchedulePolicy::AdjacentPipeline && !allow_delayed_hold;

  std::vector<i64> pos(dag.ops().size());
  for (size_t i = 0; i < sched.steps.size(); ++i) pos[sched.steps[i].op] = static_cast<i64>(i);

  for (const auto& t : dag.tensors()) {
    if (!dag.producer(t.id).has_value()) continue;
    if (dag.consumers(t.id).empty()) continue;
    bool ok = true;
    bool uses_hold = false;
    for (const ir::EdgeId eid : dag.tensor_edges(t.id)) {
      const ir::Edge& e = dag.edge(eid);
      if (!sched.edge_realized[e.id]) {
        ok = false;
        break;
      }
      const DepKind k = sched.deps.edge_kind[e.id];
      if (k == DepKind::DelayedHold) uses_hold = true;
      if (adjacent_only && (k != DepKind::Pipelineable || pos[e.dst] - pos[e.src] != 1)) {
        ok = false;  // FLAT: strictly adjacent pipelining, no hold
        break;
      }
    }
    if (uses_hold && t.bytes() > arch.hold_budget_bytes) ok = false;
    piped[t.id] = ok;
  }
  return piped;
}

}  // namespace

RouterTables RouterTables::build(const ir::TensorDag& dag, const score::Schedule& sched,
                                 SchedulePolicy policy, bool allow_delayed_hold,
                                 const AcceleratorConfig& arch) {
  RouterTables t;
  t.pipelined = pipelined_tensors(dag, sched, policy, allow_delayed_hold, arch);
  t.residency = sched.residency;
  // A tensor SCORE bound to the pipeline buffer that cannot actually stay
  // there (hold budget, unrealized edge) demotes to the buffer hierarchy.
  for (const auto& desc : dag.tensors())
    if (t.residency[desc.id] == Residency::PipelineBuffer && !t.pipelined[desc.id])
      t.residency[desc.id] = Residency::Chord;
  return t;
}

Router::Router(const ir::TensorDag& dag, const score::Schedule& sched, SchedulePolicy policy,
               bool allow_delayed_hold, const AcceleratorConfig& arch)
    : dag_(dag),
      sched_(sched),
      policy_(policy),
      own_(RouterTables::build(dag, sched, policy, allow_delayed_hold, arch)),
      tables_(&own_) {}

Router::Router(const ir::TensorDag& dag, const score::Schedule& sched, SchedulePolicy policy,
               const RouterTables& tables)
    : dag_(dag), sched_(sched), policy_(policy), tables_(&tables) {}

Route Router::route_input(const ir::EinsumOp& op, ir::TensorId in) const {
  switch (policy_) {
    case SchedulePolicy::OpByOp:
      return Route::Buffer;
    case SchedulePolicy::AdjacentPipeline:
      return tables_->pipelined[in] ? Route::PipelineBuffer : Route::Buffer;
    case SchedulePolicy::Score: {
      if (auto p = dag_.producer(in)) {
        for (const ir::EdgeId eid : dag_.out_edges(*p)) {
          const ir::Edge& e = dag_.edge(eid);
          if (e.dst == op.id && e.tensor == in && sched_.edge_realized[e.id])
            return Route::PipelineBuffer;
        }
      }
      if (tables_->residency[in] == Residency::RegisterFile) return Route::RegisterFile;
      return Route::Buffer;
    }
  }
  return Route::Buffer;
}

Route Router::route_output(const ir::EinsumOp& op) const {
  switch (policy_) {
    case SchedulePolicy::OpByOp:
      return Route::Buffer;
    case SchedulePolicy::AdjacentPipeline:
      return tables_->pipelined[op.output] ? Route::PipelineBuffer : Route::Buffer;
    case SchedulePolicy::Score: {
      if (dag_.consumers(op.output).empty()) {
        // SCORE knows liveness: results drain to memory, dead intermediates
        // are never written.
        return dag_.tensor(op.output).is_result ? Route::DirectDram : Route::Discard;
      }
      if (tables_->residency[op.output] == Residency::RegisterFile) return Route::RegisterFile;
      if (tables_->residency[op.output] == Residency::PipelineBuffer) return Route::PipelineBuffer;
      return Route::Buffer;
    }
  }
  return Route::Buffer;
}

bool Router::linked_onchip(ir::OpId prev, ir::OpId cur) const {
  for (const ir::EdgeId eid : dag_.out_edges(prev)) {
    const ir::Edge& e = dag_.edge(eid);
    if (e.dst != cur) continue;
    const bool onchip =
        policy_ == SchedulePolicy::Score ? sched_.edge_realized[e.id] : tables_->pipelined[e.tensor];
    if (onchip) return true;
  }
  return false;
}

}  // namespace cello::sim
