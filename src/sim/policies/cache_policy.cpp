#include "sim/policies/cache_policy.hpp"

#include <algorithm>

#include "mem/sram_model.hpp"

namespace cello::sim {

BufferService CachePolicy::service_op(const OpTrace& trace) {
  const ir::TensorDag& dag = *trace.dag;
  const ir::EinsumOp& op = *trace.op;
  const AddressMap& map = *trace.map;
  const sparse::CsrMatrix* matrix = trace.matrix;

  const Bytes read_before = cache_.stats().dram_read_bytes;
  const Bytes write_before = cache_.stats().dram_write_bytes;

  constexpr i64 kChunkRows = 512;

  // Identify the sparse operand (if any) and split the rest by size.
  const ir::TensorDesc* sparse_in = nullptr;
  std::vector<const ir::TensorDesc*> large_in, small_in;
  for (ir::TensorId in : trace.inputs) {
    const ir::TensorDesc& t = dag.tensor(in);
    if (t.storage == ir::Storage::CompressedSparse)
      sparse_in = &t;
    else if (t.bytes() > arch_.rf_bytes)
      large_in.push_back(&t);
    else
      small_in.push_back(&t);
  }
  const ir::TensorDesc& out = dag.tensor(op.output);

  // The op's iteration space along the large (row) dimension.
  i64 rows = 1;
  for (const auto& r : op.ranks) rows = std::max(rows, r.size);
  if (sparse_in == nullptr && large_in.empty() && out.bytes() <= arch_.rf_bytes) rows = 1;

  auto row_bytes = [&](const ir::TensorDesc& t) -> Bytes {
    const i64 r = t.dims.empty() ? 1 : t.dims.front();
    return std::max<Bytes>(1, t.bytes() / std::max<i64>(1, r));
  };

  for (i64 r0 = 0; r0 < rows; r0 += kChunkRows) {
    const i64 r1 = std::min(rows, r0 + kChunkRows);

    if (sparse_in != nullptr) {
      // CSR segment of the chunk: values + columns stream sequentially.
      const Addr a_start = map.of(sparse_in->id).start;
      Bytes seg_off = 0, seg_len = 0;
      if (matrix != nullptr && matrix->rows() == rows) {
        const i64 k0 = matrix->row_ptr()[r0], k1 = matrix->row_ptr()[r1];
        seg_off = static_cast<Bytes>(k0) * 8;
        seg_len = static_cast<Bytes>(k1 - k0) * 8;
      } else {
        const Bytes per_row = sparse_in->bytes() / std::max<i64>(1, rows);
        seg_off = static_cast<Bytes>(r0) * per_row;
        seg_len = static_cast<Bytes>(r1 - r0) * per_row;
      }
      cache_.access_range(a_start + seg_off, seg_len, false);

      // Gather the dense operand rows indexed by the chunk's non-zeros.
      if (!large_in.empty()) {
        const ir::TensorDesc& dense = *large_in.front();
        const Addr d_start = map.of(dense.id).start;
        const Bytes rb = row_bytes(dense);
        if (matrix != nullptr && matrix->rows() == rows) {
          for (i64 r = r0; r < r1; ++r)
            for (i64 k = matrix->row_ptr()[r]; k < matrix->row_ptr()[r + 1]; ++k)
              cache_.access_range(d_start + static_cast<Bytes>(matrix->col_idx()[k]) * rb, rb,
                                  false);
        } else {
          // Synthetic banded gather when no matrix is supplied.
          const i64 occ = std::max<i64>(1, sparse_in->nnz / std::max<i64>(1, rows));
          for (i64 r = r0; r < r1; ++r)
            for (i64 k = 0; k < occ; ++k) {
              const i64 c = std::min<i64>(rows - 1, std::max<i64>(0, r + k - occ / 2));
              cache_.access_range(d_start + static_cast<Bytes>(c) * rb, rb, false);
            }
        }
      }
    } else {
      for (const auto* t : large_in) {
        const Bytes rb = row_bytes(*t);
        cache_.access_range(map.of(t->id).start + static_cast<Bytes>(r0) * rb,
                            static_cast<Bytes>(r1 - r0) * rb, false);
      }
    }

    // Small operands re-streamed per chunk (they hit once resident).
    for (const auto* t : small_in)
      cache_.access_range(map.of(t->id).start, t->bytes(), false);

    // Output chunk: skewed outputs stream; small outputs accumulate (RMW).
    if (trace.service_output) {
      if (out.bytes() > arch_.rf_bytes) {
        const Bytes rb = row_bytes(out);
        cache_.access_range(map.of(out.id).start + static_cast<Bytes>(r0) * rb,
                            static_cast<Bytes>(r1 - r0) * rb, true);
      } else {
        cache_.access_range(map.of(out.id).start, out.bytes(), true);
      }
    }
  }

  return {.dram_read = cache_.stats().dram_read_bytes - read_before,
          .dram_write = cache_.stats().dram_write_bytes - write_before};
}

std::optional<std::vector<DrainItem>> CachePolicy::drain(const DrainContext&) {
  const Bytes before = cache_.stats().dram_bytes();
  cache_.flush();
  return std::vector<DrainItem>{{std::string(), cache_.stats().dram_bytes() - before}};
}

void CachePolicy::finalize(const AcceleratorConfig& arch, u64 /*pipeline_sram_lines*/,
                           RunMetrics& m) const {
  const auto& cs = cache_.stats();
  // The cache's line-granularity accounting is authoritative for the traffic
  // it serviced; fold it into whatever the schedule moved directly (register
  // file cold fetches, SCORE result drains).
  m.dram_read_bytes += cs.dram_read_bytes;
  m.dram_write_bytes += cs.dram_write_bytes;
  m.dram_bytes = m.dram_read_bytes + m.dram_write_bytes;
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Cache);
  m.sram_line_accesses = cs.data_accesses;
  m.onchip_energy_pj = static_cast<double>(cs.data_accesses) * e.data_pj +
                       static_cast<double>(cs.tag_lookups) * e.tag_pj;
}

BufferPolicyFactory lru_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Lru);
  };
}

BufferPolicyFactory brrip_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Brrip);
  };
}

}  // namespace cello::sim
