#include "sim/policies/cache_policy.hpp"

#include <memory>

#include "cache/cache_replay.hpp"
#include "mem/sram_model.hpp"
#include "sim/access_stream.hpp"

namespace cello::sim {

namespace {

cache::ReplaySpans spans_view(const AccessStream& s) {
  cache::ReplaySpans v;
  v.addr = s.addr.data();
  v.len = s.len.data();
  v.write = s.write.data();
  v.op_end = s.op_end.data();
  v.prefix_steps = s.prefix_steps;
  v.period_steps = s.period_steps;
  v.period_count = s.period_count;
  v.suffix_steps = s.suffix_steps;
  v.schedule_steps = s.schedule_steps;
  v.min_addr = s.min_addr;
  v.max_addr = s.max_addr;
  return v;
}

void convert_services(const std::vector<cache::ReplayService>& in,
                      std::vector<BufferService>& out) {
  out.resize(in.size());
  for (size_t i = 0; i < in.size(); ++i) out[i] = {in[i].dram_read, in[i].dram_write};
}

}  // namespace

BufferService CachePolicy::service_op(const OpTrace& trace) {
  const Bytes read_before = cache_.stats().dram_read_bytes;
  const Bytes write_before = cache_.stats().dram_write_bytes;

  emit_op_accesses(
      trace, arch_, scratch_,
      [&](Addr a, Bytes l, bool w) { cache_.access_range(a, l, w); },
      [&](Addr a, Bytes l) { cache_.prefetch_range(a, l); });

  return {.dram_read = cache_.stats().dram_read_bytes - read_before,
          .dram_write = cache_.stats().dram_write_bytes - write_before};
}

bool CachePolicy::replay(const AccessStream& stream, std::vector<BufferService>& services) {
  if (!stream.compatible(arch_) || cache_.stats().accesses != 0) return false;
  const cache::ReplaySpans view = spans_view(stream);
  cache::StreamReplayer rep(cache_, view);
  std::vector<cache::ReplayService> rs;
  rep.run(rs);
  convert_services(rs, services);
  return true;
}

bool CachePolicy::replay_many(const AccessStream& stream,
                              const std::vector<CachePolicy*>& policies,
                              std::vector<std::vector<BufferService>>& services) {
  for (CachePolicy* p : policies)
    if (!stream.compatible(p->arch_) || p->cache_.stats().accesses != 0) return false;
  const cache::ReplaySpans view = spans_view(stream);
  std::vector<std::unique_ptr<cache::StreamReplayer>> reps;
  reps.reserve(policies.size());
  for (CachePolicy* p : policies)
    reps.push_back(std::make_unique<cache::StreamReplayer>(p->cache_, view));
  for (auto& r : reps) r->run_prefix();
  // Occurrence lockstep: every engine consumes the same period block before
  // the stream moves on, so the block's spans stay hot across all of them.
  // Engines converge (fast-forward) independently and then no-op.
  for (u64 o = 0; o < stream.period_count; ++o) {
    bool live = false;
    for (auto& r : reps) {
      r->run_occurrence();
      live = live || !r->converged();
    }
    if (!live) break;
  }
  services.resize(reps.size());
  std::vector<cache::ReplayService> rs;
  for (size_t i = 0; i < reps.size(); ++i) {
    reps[i]->run_suffix();
    rs.clear();
    reps[i]->finish(rs);
    convert_services(rs, services[i]);
  }
  return true;
}

std::optional<std::vector<DrainItem>> CachePolicy::drain(const DrainContext&) {
  const Bytes before = cache_.stats().dram_bytes();
  cache_.flush();
  return std::vector<DrainItem>{{std::string(), cache_.stats().dram_bytes() - before}};
}

void CachePolicy::finalize(const AcceleratorConfig& arch, u64 /*pipeline_sram_lines*/,
                           RunMetrics& m) const {
  const auto& cs = cache_.stats();
  // The cache's line-granularity accounting is authoritative for the traffic
  // it serviced; fold it into whatever the schedule moved directly (register
  // file cold fetches, SCORE result drains).
  m.dram_read_bytes += cs.dram_read_bytes;
  m.dram_write_bytes += cs.dram_write_bytes;
  m.dram_bytes = m.dram_read_bytes + m.dram_write_bytes;
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Cache);
  m.sram_line_accesses = cs.data_accesses;
  m.onchip_energy_pj = static_cast<double>(cs.data_accesses) * e.data_pj +
                       static_cast<double>(cs.tag_lookups) * e.tag_pj;
}

BufferPolicyFactory lru_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Lru);
  };
}

BufferPolicyFactory brrip_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Brrip);
  };
}

}  // namespace cello::sim
