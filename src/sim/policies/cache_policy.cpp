#include "sim/policies/cache_policy.hpp"

#include <algorithm>

#include "mem/sram_model.hpp"

namespace cello::sim {

BufferService CachePolicy::service_op(const OpTrace& trace) {
  const ir::TensorDag& dag = *trace.dag;
  const ir::EinsumOp& op = *trace.op;
  const AddressMap& map = *trace.map;
  const sparse::CsrMatrix* matrix = trace.matrix;

  const Bytes read_before = cache_.stats().dram_read_bytes;
  const Bytes write_before = cache_.stats().dram_write_bytes;

  constexpr i64 kChunkRows = 512;

  auto line_range = [&](Addr start, Bytes len) -> LineRange {
    if (len == 0) return {};
    const u64 first = cache_.line_of(start);
    return {first, cache_.line_of(start + len - 1) - first + 1};
  };

  // Identify the sparse operand (if any) and split the rest by size.  The
  // partitions live in member scratch so the steady path never allocates.
  const ir::TensorDesc* sparse_in = nullptr;
  large_in_.clear();
  small_in_.clear();
  for (ir::TensorId in : trace.inputs) {
    const ir::TensorDesc& t = dag.tensor(in);
    if (t.storage == ir::Storage::CompressedSparse)
      sparse_in = &t;
    else if (t.bytes() > arch_.rf_bytes)
      large_in_.push_back(&t);
    else
      small_in_.push_back(line_range(map.of(t.id).start, t.bytes()));
  }
  const ir::TensorDesc& out = dag.tensor(op.output);

  // The op's iteration space along the large (row) dimension.
  i64 rows = 1;
  for (const auto& r : op.ranks) rows = std::max(rows, r.size);
  if (sparse_in == nullptr && large_in_.empty() && out.bytes() <= arch_.rf_bytes) rows = 1;

  auto row_bytes = [&](const ir::TensorDesc& t) -> Bytes {
    const i64 r = t.dims.empty() ? 1 : t.dims.front();
    return std::max<Bytes>(1, t.bytes() / std::max<i64>(1, r));
  };

  // Loop-invariant address bases, resolved once per op rather than per chunk
  // (and, for the CSR gather, per nonzero).
  const Addr sparse_start = sparse_in != nullptr ? map.of(sparse_in->id).start : 0;
  const bool real_trace =
      sparse_in != nullptr && matrix != nullptr && matrix->rows() == rows;
  const i64* row_ptr = real_trace ? matrix->row_ptr().data() : nullptr;
  const i64* col_idx = real_trace ? matrix->col_idx().data() : nullptr;
  const ir::TensorDesc* gather_dense = nullptr;
  Addr gather_start = 0;
  Bytes gather_rb = 0;
  if (sparse_in != nullptr && !large_in_.empty()) {
    gather_dense = large_in_.front();
    gather_start = map.of(gather_dense->id).start;
    gather_rb = row_bytes(*gather_dense);
  }
  const bool out_serviced = trace.service_output;
  const bool out_large = out.bytes() > arch_.rf_bytes;
  const Addr out_start = out_serviced ? map.of(out.id).start : 0;
  const Bytes out_rb = out_serviced && out_large ? row_bytes(out) : 0;
  const LineRange out_small =
      out_serviced && !out_large ? line_range(out_start, out.bytes()) : LineRange{};

  for (i64 r0 = 0; r0 < rows; r0 += kChunkRows) {
    const i64 r1 = std::min(rows, r0 + kChunkRows);

    if (sparse_in != nullptr) {
      // CSR segment of the chunk: values + columns stream sequentially.
      Bytes seg_off = 0, seg_len = 0;
      if (real_trace) {
        const i64 k0 = row_ptr[r0], k1 = row_ptr[r1];
        seg_off = static_cast<Bytes>(k0) * 8;
        seg_len = static_cast<Bytes>(k1 - k0) * 8;
      } else {
        const Bytes per_row = sparse_in->bytes() / std::max<i64>(1, rows);
        seg_off = static_cast<Bytes>(r0) * per_row;
        seg_len = static_cast<Bytes>(r1 - r0) * per_row;
      }
      cache_.access_range(sparse_start + seg_off, seg_len, false);

      // Gather the dense operand rows indexed by the chunk's non-zeros.
      if (gather_dense != nullptr) {
        // When dense rows are whole aligned cache lines, byte ranges of
        // consecutive columns are contiguous and share no line — so a run of
        // consecutive columns replays as ONE range walk, touching exactly
        // the same lines in the same order as per-column calls.  Banded
        // matrices (most of Table VI) are nearly all such runs.
        const bool mergeable =
            gather_rb % arch_.line_bytes == 0 && gather_start % arch_.line_bytes == 0;
        if (real_trace) {
          // The column sequence is irregular, so tell the cache model which
          // sets are coming: prefetching the metadata lanes a few gathers
          // ahead hides their host-memory latency.
          constexpr i64 kPrefetchAhead = 16;
          const i64 k1 = row_ptr[r1];
          for (i64 k = row_ptr[r0]; k < k1;) {
            if (k + kPrefetchAhead < k1)
              cache_.prefetch_range(
                  gather_start + static_cast<Bytes>(col_idx[k + kPrefetchAhead]) * gather_rb,
                  gather_rb);
            const i64 c0 = col_idx[k];
            i64 c_end = c0 + 1;
            ++k;
            if (mergeable)
              while (k < k1 && col_idx[k] == c_end) {
                ++c_end;
                ++k;
              }
            cache_.access_range(gather_start + static_cast<Bytes>(c0) * gather_rb,
                                static_cast<Bytes>(c_end - c0) * gather_rb, false);
          }
        } else {
          // Synthetic banded gather when no matrix is supplied: row r touches
          // the clamped column band [r - occ/2, r + occ/2).
          const i64 occ = std::max<i64>(1, sparse_in->nnz / std::max<i64>(1, rows));
          for (i64 r = r0; r < r1; ++r) {
            i64 k = 0;
            while (k < occ) {
              const i64 c0 = std::min<i64>(rows - 1, std::max<i64>(0, r + k - occ / 2));
              i64 c_end = c0 + 1;
              ++k;
              if (mergeable)
                while (k < occ &&
                       std::min<i64>(rows - 1, std::max<i64>(0, r + k - occ / 2)) == c_end) {
                  ++c_end;
                  ++k;
                }
              cache_.access_range(gather_start + static_cast<Bytes>(c0) * gather_rb,
                                  static_cast<Bytes>(c_end - c0) * gather_rb, false);
            }
          }
        }
      }
    } else {
      for (const auto* t : large_in_) {
        const Bytes rb = row_bytes(*t);
        cache_.access_range(map.of(t->id).start + static_cast<Bytes>(r0) * rb,
                            static_cast<Bytes>(r1 - r0) * rb, false);
      }
    }

    // Small operands re-streamed per chunk (they hit once resident).
    for (const LineRange& t : small_in_) cache_.access_lines(t.first_line, t.count, false);

    // Output chunk: skewed outputs stream; small outputs accumulate (RMW).
    if (out_serviced) {
      if (out_large) {
        cache_.access_range(out_start + static_cast<Bytes>(r0) * out_rb,
                            static_cast<Bytes>(r1 - r0) * out_rb, true);
      } else {
        cache_.access_lines(out_small.first_line, out_small.count, true);
      }
    }
  }

  return {.dram_read = cache_.stats().dram_read_bytes - read_before,
          .dram_write = cache_.stats().dram_write_bytes - write_before};
}

std::optional<std::vector<DrainItem>> CachePolicy::drain(const DrainContext&) {
  const Bytes before = cache_.stats().dram_bytes();
  cache_.flush();
  return std::vector<DrainItem>{{std::string(), cache_.stats().dram_bytes() - before}};
}

void CachePolicy::finalize(const AcceleratorConfig& arch, u64 /*pipeline_sram_lines*/,
                           RunMetrics& m) const {
  const auto& cs = cache_.stats();
  // The cache's line-granularity accounting is authoritative for the traffic
  // it serviced; fold it into whatever the schedule moved directly (register
  // file cold fetches, SCORE result drains).
  m.dram_read_bytes += cs.dram_read_bytes;
  m.dram_write_bytes += cs.dram_write_bytes;
  m.dram_bytes = m.dram_read_bytes + m.dram_write_bytes;
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Cache);
  m.sram_line_accesses = cs.data_accesses;
  m.onchip_energy_pj = static_cast<double>(cs.data_accesses) * e.data_pj +
                       static_cast<double>(cs.tag_lookups) * e.tag_pj;
}

BufferPolicyFactory lru_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Lru);
  };
}

BufferPolicyFactory brrip_cache() {
  return [](const AcceleratorConfig& arch) {
    return std::make_unique<CachePolicy>(arch, cache::Policy::Brrip);
  };
}

}  // namespace cello::sim
