// Shared byte-granular access-span generation for the trace-driven cache
// path.  One templated emitter derives the op's whole access sequence —
// sequential CSR segments, gather runs resolved through row_ptr/col_idx,
// small-operand re-streams, output writebacks — and hands each span to a
// caller-supplied sink.  CachePolicy::service_op drives the cache with the
// spans directly; AccessStream::capture records them for replay.  Sharing the
// generator is what makes capture->replay bit-identical to direct simulation
// by construction: there is exactly one place that decides which bytes an op
// touches and in which order.
//
// Every per-chunk decision that does not depend on the row range — the
// gather-run mergeability test, the real-vs-synthetic trace selection, the
// synthetic band occupancy, base addresses and row strides — is resolved once
// per op ahead of the chunk loop.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

/// Reusable operand-partition scratch so emission allocates nothing on the
/// steady path (op arity is tiny; capacity persists across ops).
struct OpAccessScratch {
  std::vector<const ir::TensorDesc*> large_in;
  std::vector<std::pair<Addr, Bytes>> small_in;  ///< (start, bytes)
};

/// Emit the byte-granular access spans of one scheduled op.
///   span(Addr start, Bytes len, bool write)  — one access range (len may be 0)
///   prefetch(Addr start, Bytes len)          — gather lookahead hint; a sink
///     driving a cache forwards it to prefetch_range, a recording sink drops
///     it (replay issues its own lookahead).  Never affects modeled state.
template <class SpanFn, class PrefetchFn>
void emit_op_accesses(const OpTrace& trace, const AcceleratorConfig& arch,
                      OpAccessScratch& scratch, SpanFn&& span, PrefetchFn&& prefetch) {
  const ir::TensorDag& dag = *trace.dag;
  const ir::EinsumOp& op = *trace.op;
  const AddressMap& map = *trace.map;
  const sparse::CsrMatrix* matrix = trace.matrix;

  constexpr i64 kChunkRows = 512;

  // Identify the sparse operand (if any) and split the rest by size.
  const ir::TensorDesc* sparse_in = nullptr;
  auto& large_in = scratch.large_in;
  auto& small_in = scratch.small_in;
  large_in.clear();
  small_in.clear();
  for (ir::TensorId in : trace.inputs) {
    const ir::TensorDesc& t = dag.tensor(in);
    if (t.storage == ir::Storage::CompressedSparse)
      sparse_in = &t;
    else if (t.bytes() > arch.rf_bytes)
      large_in.push_back(&t);
    else
      small_in.push_back({map.of(t.id).start, t.bytes()});
  }
  const ir::TensorDesc& out = dag.tensor(op.output);

  // The op's iteration space along the large (row) dimension.
  i64 rows = 1;
  for (const auto& r : op.ranks) rows = std::max(rows, r.size);
  if (sparse_in == nullptr && large_in.empty() && out.bytes() <= arch.rf_bytes) rows = 1;

  auto row_bytes = [](const ir::TensorDesc& t) -> Bytes {
    const i64 r = t.dims.empty() ? 1 : t.dims.front();
    return std::max<Bytes>(1, t.bytes() / std::max<i64>(1, r));
  };

  // Loop-invariant address bases and per-chunk decisions, resolved once per
  // op rather than per 512-row chunk (and, for the CSR gather, per nonzero).
  const Addr sparse_start = sparse_in != nullptr ? map.of(sparse_in->id).start : 0;
  const bool real_trace =
      sparse_in != nullptr && matrix != nullptr && matrix->rows() == rows;
  const i64* row_ptr = real_trace ? matrix->row_ptr().data() : nullptr;
  const i64* col_idx = real_trace ? matrix->col_idx().data() : nullptr;
  const ir::TensorDesc* gather_dense = nullptr;
  Addr gather_start = 0;
  Bytes gather_rb = 0;
  if (sparse_in != nullptr && !large_in.empty()) {
    gather_dense = large_in.front();
    gather_start = map.of(gather_dense->id).start;
    gather_rb = row_bytes(*gather_dense);
  }
  // When dense rows are whole aligned cache lines, byte ranges of consecutive
  // columns are contiguous and share no line — so a run of consecutive
  // columns emits as ONE range, touching exactly the same lines in the same
  // order as per-column spans.  Banded matrices (most of Table VI) are nearly
  // all such runs.
  const bool mergeable = gather_dense != nullptr &&
                         gather_rb % arch.line_bytes == 0 &&
                         gather_start % arch.line_bytes == 0;
  const Bytes synth_per_row =
      sparse_in != nullptr && !real_trace ? sparse_in->bytes() / std::max<i64>(1, rows) : 0;
  const i64 synth_occ = sparse_in != nullptr && !real_trace
                            ? std::max<i64>(1, sparse_in->nnz / std::max<i64>(1, rows))
                            : 0;
  const bool out_serviced = trace.service_output;
  const bool out_large = out.bytes() > arch.rf_bytes;
  const Addr out_start = out_serviced ? map.of(out.id).start : 0;
  const Bytes out_rb = out_serviced && out_large ? row_bytes(out) : 0;

  for (i64 r0 = 0; r0 < rows; r0 += kChunkRows) {
    const i64 r1 = std::min(rows, r0 + kChunkRows);

    if (sparse_in != nullptr) {
      // CSR segment of the chunk: values + columns stream sequentially.
      Bytes seg_off = 0, seg_len = 0;
      if (real_trace) {
        const i64 k0 = row_ptr[r0], k1 = row_ptr[r1];
        seg_off = static_cast<Bytes>(k0) * 8;
        seg_len = static_cast<Bytes>(k1 - k0) * 8;
      } else {
        seg_off = static_cast<Bytes>(r0) * synth_per_row;
        seg_len = static_cast<Bytes>(r1 - r0) * synth_per_row;
      }
      span(sparse_start + seg_off, seg_len, false);

      // Gather the dense operand rows indexed by the chunk's non-zeros.
      if (gather_dense != nullptr) {
        if (real_trace) {
          // The column sequence is irregular, so announce which sets are
          // coming: prefetching a few gathers ahead hides the cache model's
          // own metadata latency.
          constexpr i64 kPrefetchAhead = 16;
          const i64 k1 = row_ptr[r1];
          for (i64 k = row_ptr[r0]; k < k1;) {
            if (k + kPrefetchAhead < k1)
              prefetch(gather_start + static_cast<Bytes>(col_idx[k + kPrefetchAhead]) * gather_rb,
                       gather_rb);
            const i64 c0 = col_idx[k];
            i64 c_end = c0 + 1;
            ++k;
            if (mergeable)
              while (k < k1 && col_idx[k] == c_end) {
                ++c_end;
                ++k;
              }
            span(gather_start + static_cast<Bytes>(c0) * gather_rb,
                 static_cast<Bytes>(c_end - c0) * gather_rb, false);
          }
        } else {
          // Synthetic banded gather when no matrix is supplied: row r touches
          // the clamped column band [r - occ/2, r + occ/2).
          for (i64 r = r0; r < r1; ++r) {
            i64 k = 0;
            while (k < synth_occ) {
              const i64 c0 = std::min<i64>(rows - 1, std::max<i64>(0, r + k - synth_occ / 2));
              i64 c_end = c0 + 1;
              ++k;
              if (mergeable)
                while (k < synth_occ &&
                       std::min<i64>(rows - 1, std::max<i64>(0, r + k - synth_occ / 2)) ==
                           c_end) {
                  ++c_end;
                  ++k;
                }
              span(gather_start + static_cast<Bytes>(c0) * gather_rb,
                   static_cast<Bytes>(c_end - c0) * gather_rb, false);
            }
          }
        }
      }
    } else {
      for (const auto* t : large_in) {
        const Bytes rb = row_bytes(*t);
        span(map.of(t->id).start + static_cast<Bytes>(r0) * rb,
             static_cast<Bytes>(r1 - r0) * rb, false);
      }
    }

    // Small operands re-streamed per chunk (they hit once resident).
    for (const auto& [a, b] : small_in) span(a, b, false);

    // Output chunk: skewed outputs stream; small outputs accumulate (RMW).
    if (out_serviced) {
      if (out_large) {
        span(out_start + static_cast<Bytes>(r0) * out_rb,
             static_cast<Bytes>(r1 - r0) * out_rb, true);
      } else {
        span(out_start, out.bytes(), true);
      }
    }
  }
}

}  // namespace cello::sim
