#include "sim/policies/chord_policy.hpp"

#include <algorithm>

#include "mem/sram_model.hpp"

namespace cello::sim {

BufferService ChordPolicy::read_tensor(const chord::TensorMeta& t) {
  const auto r = buf_.read_tensor(t);
  return {.dram_read = r.dram_bytes, .dram_write = 0};
}

BufferService ChordPolicy::write_tensor(const chord::TensorMeta& t) {
  const auto r = buf_.write_tensor(t);
  return {.dram_read = 0, .dram_write = r.dram_bytes};
}

std::optional<std::vector<DrainItem>> ChordPolicy::drain(const DrainContext& ctx) {
  // Under SCORE the schedule wrote final results straight to DRAM as they
  // died; nothing resident needs draining.
  if (ctx.results_written_through) return std::nullopt;
  // Results written through the buffer keep a resident prefix that still has
  // to reach memory at the end of the run.
  std::vector<DrainItem> items;
  for (const auto& t : ctx.dag->tensors()) {
    if (!t.is_result) continue;
    const Bytes resident = buf_.resident_bytes(ctx.map->base_id(t.id));
    items.push_back({ctx.map->of(t.id).base, std::min<Bytes>(resident, t.bytes())});
  }
  return items;
}

void ChordPolicy::finalize(const AcceleratorConfig& arch, u64 /*pipeline_sram_lines*/,
                           RunMetrics& m) const {
  // CHORD pays data-array plus RIFF-index-table metadata energy; the pipeline
  // buffer's staging lines are part of the datapath, not the CHORD array.
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Chord);
  const auto& cs = buf_.stats();
  m.sram_line_accesses = cs.sram_read_lines + cs.sram_write_lines;
  m.onchip_energy_pj = static_cast<double>(m.sram_line_accesses) * e.data_pj +
                       static_cast<double>(cs.metadata_reads) * e.metadata_pj;
}

BufferPolicyFactory chord_buffer() {
  return [](const AcceleratorConfig& arch) { return std::make_unique<ChordPolicy>(arch, true); };
}

BufferPolicyFactory prelude_only() {
  return [](const AcceleratorConfig& arch) { return std::make_unique<ChordPolicy>(arch, false); };
}

}  // namespace cello::sim
