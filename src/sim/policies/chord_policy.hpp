// ChordPolicy: the CHORD hybrid buffer (PRELUDE fill + optional RIFF
// replacement) behind the BufferPolicy interface.  With RIFF disabled this is
// the paper's PRELUDE-only configuration.
#pragma once

#include "chord/chord.hpp"
#include "sim/policies/buffer_policy.hpp"

namespace cello::sim {

class ChordPolicy final : public BufferPolicy {
 public:
  ChordPolicy(const AcceleratorConfig& arch, bool enable_riff)
      : riff_(enable_riff),
        buf_(arch.sram_bytes, arch.line_bytes, enable_riff, arch.chord_entries) {}

  const char* name() const override { return riff_ ? "CHORD" : "PRELUDE"; }

  bool reusable() const override { return true; }
  void reset() override { buf_.reset(); }

  BufferService read_tensor(const chord::TensorMeta& t) override;
  BufferService write_tensor(const chord::TensorMeta& t) override;
  void retire(i32 base_id) override { buf_.retire(base_id); }

  std::optional<std::vector<DrainItem>> drain(const DrainContext& ctx) override;

  Bytes occupancy_bytes() const override { return buf_.occupied_bytes(); }

  void finalize(const AcceleratorConfig& arch, u64 pipeline_sram_lines,
                RunMetrics& m) const override;

  const chord::ChordBuffer& buffer() const { return buf_; }

 private:
  bool riff_;
  chord::ChordBuffer buf_;
};

/// CHORD with RIFF replacement (the Cello buffer).
BufferPolicyFactory chord_buffer();
/// CHORD with PRELUDE as the only policy (Sec. VII-C3 ablation).
BufferPolicyFactory prelude_only();

}  // namespace cello::sim
