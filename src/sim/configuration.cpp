#include "sim/configuration.hpp"

namespace cello::sim {

std::string Configuration::describe() const {
  std::string out = to_string(schedule);
  out += " + ";
  out += buffer_name.empty() ? "?" : buffer_name;
  if (schedule == SchedulePolicy::AdjacentPipeline && allow_delayed_hold) out += " (hold)";
  return out;
}

Configuration make_configuration(std::string name, SchedulePolicy schedule,
                                 BufferPolicyFactory buffers, std::string buffer_name,
                                 bool allow_delayed_hold) {
  Configuration c;
  c.name = std::move(name);
  c.schedule = schedule;
  c.buffers = std::move(buffers);
  c.buffer_name = std::move(buffer_name);
  c.allow_delayed_hold = allow_delayed_hold;
  return c;
}

}  // namespace cello::sim
