// Machine-readable result I/O: JSON and CSV serialization of RunMetrics /
// SweepResult rows, exact to the bit.
//
// Doubles are emitted as C99 hexadecimal floating-point literals ("%a", e.g.
// "0x1.5c28f5c28f5c3p-3") inside JSON strings, because decimal JSON numbers
// only round-trip approximately; strtod parses a hexfloat back bit-exactly.
// All output is byte-deterministic for a given input (fixed key order, sorted
// traffic maps, locale-independent formatting), which is what lets sharded
// sweep result files be merged and diffed byte-for-byte (see sim/shard.hpp).
#pragma once

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "sim/metrics.hpp"
#include "sim/sweep.hpp"

namespace cello::sim {

/// Exact double -> string: C99 hexfloat ("%a").  Deterministic per value.
std::string hex_double(double v);
/// Exact string -> double via strtod (accepts hexfloat and decimal).  Throws
/// cello::Error when the text is not exactly one float literal.
double parse_hex_double(const std::string& text);

/// Minimal JSON document model — arrays, objects, strings, bools, null and
/// number tokens — just enough for the sweep result formats.  Numbers keep
/// their literal token; the typed getters convert (and throw cello::Error on
/// a type or syntax mismatch).
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  std::string scalar;  ///< Number: literal token; String: decoded value
  std::vector<JsonValue> items;                            ///< Array elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< Object, file order

  /// Object member lookup; nullptr when absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object member lookup that throws cello::Error when absent.
  const JsonValue& at(const std::string& key) const;

  const std::string& as_string() const;
  bool as_bool() const;
  i64 as_i64() const;
  u64 as_u64() const;
  /// Number token, or a String holding a hexfloat/decimal literal.
  double as_double() const;
};

/// Parse one JSON document; throws cello::Error with the byte offset on any
/// syntax error or trailing garbage.
JsonValue json_parse(const std::string& text);

/// Escape for embedding inside a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

/// Throws cello::Error when the object holds a key outside `allowed` —
/// format drift fails loudly instead of being silently ignored.  `what`
/// names the context in the message.
void reject_unknown_keys(const JsonValue& v, std::initializer_list<const char*> allowed,
                         const char* what);

/// Append `m` as a JSON object at `indent` spaces of enclosing indentation.
/// Fixed key order; doubles as hexfloat strings; traffic_by_tensor in sorted
/// (std::map) key order — byte-deterministic.
void metrics_to_json(std::string& out, const RunMetrics& m, int indent);
/// Inverse of metrics_to_json.  Every field is required and unknown keys are
/// rejected, so format drift fails loudly instead of zero-filling.
RunMetrics metrics_from_json(const JsonValue& v);

/// Append one sweep cell: {"workload": ..., "config": ..., "metrics": {...}}.
void result_to_json(std::string& out, const SweepResult& r, int indent);
SweepResult result_from_json(const JsonValue& v);

/// CSV export of sweep cells, one row per cell, with the same bit-exact
/// hexfloat doubles.  Nested fields are packed into single cells
/// ("tensor=bytes;..." / "op:macs:bytes|...") so the round-trip stays exact;
/// tensor/op names containing CSV- or packing-reserved characters are
/// rejected at serialization time.
std::string results_to_csv(const std::vector<SweepResult>& rows);
std::vector<SweepResult> results_from_csv(const std::string& text);

}  // namespace cello::sim
