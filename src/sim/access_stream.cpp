#include "sim/access_stream.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "sim/policies/access_gen.hpp"
#include "sim/policies/schedule_policy.hpp"

namespace cello::sim {

namespace {

// FNV-1a lane pair: two independent 64-bit accumulators over the same words.
// Signatures gate the period search; the search result is additionally
// confirmed by comparing the actual spans of the first two occurrences, so a
// collision would have to survive both to matter.
struct Sig {
  u64 a = 0xcbf29ce484222325ull;
  u64 b = 0x2545f4914f6cdd1dull;
  void mix(u64 v) {
    a = (a ^ v) * 0x100000001b3ull;
    b = (b ^ v) * 0xc2b2ae3d27d4eb4full;
  }
  bool operator==(const Sig&) const = default;
};

/// Everything span emission reads about one scheduled op, hashed.  Two steps
/// with equal signatures emit equal spans: emit_op_accesses is a pure
/// function of (these fields, the shared matrix, the shared arch).
Sig step_signature(const ir::TensorDag& dag, const AddressMap& map, const ir::EinsumOp& op,
                   const std::vector<ir::TensorId>& inputs, bool service_output) {
  Sig s;
  for (const auto& r : op.ranks) s.mix(static_cast<u64>(r.size));
  for (ir::TensorId in : inputs) {
    const ir::TensorDesc& t = dag.tensor(in);
    s.mix(map.of(t.id).start);
    s.mix(static_cast<u64>(t.bytes()));
    s.mix(static_cast<u64>(t.storage));
    s.mix(static_cast<u64>(t.nnz));
    s.mix(static_cast<u64>(t.dims.empty() ? 1 : t.dims.front()));
  }
  const ir::TensorDesc& out = dag.tensor(op.output);
  s.mix(service_output ? 1 : 0);
  s.mix(map.of(out.id).start);
  s.mix(static_cast<u64>(out.bytes()));
  s.mix(static_cast<u64>(out.dims.empty() ? 1 : out.dims.front()));
  return s;
}

/// Best (prefix, L, count) decomposition: scheduled ops = prefix + L x count +
/// suffix with the periodic region's signatures exactly repeating.  Minimizes
/// materialized steps (prefix + L + suffix); count < 2 means "no period".
struct Period {
  size_t prefix = 0, steps = 0, count = 0;
};
Period find_period(const std::vector<Sig>& sig) {
  const size_t n = sig.size();
  Period best;
  size_t best_mat = n;
  // O(n * L_max) scan; capped so pathological schedules don't stall capture.
  constexpr size_t kMaxSteps = 65536, kMaxL = 2048;
  if (n < 4 || n > kMaxSteps) return best;
  for (size_t L = 1; L <= std::min(n / 2, kMaxL); ++L) {
    // Longest run of consecutive i with sig[i] == sig[i - L].
    size_t run_lo = 0, run_hi = 0;
    for (size_t i = L; i < n;) {
      if (sig[i] == sig[i - L]) {
        size_t j = i + 1;
        while (j < n && sig[j] == sig[j - L]) ++j;
        if (j - i > run_hi - run_lo) {
          run_lo = i;
          run_hi = j;
        }
        i = j;
      } else {
        ++i;
      }
    }
    if (run_hi == run_lo) continue;
    const size_t a = run_lo - L;  // periodic region start
    const size_t count = (run_hi - a) / L;
    if (count < 2) continue;
    const size_t mat = a + L + (n - a - count * L);
    if (mat < best_mat) {
      best_mat = mat;
      best = {a, L, count};
    }
  }
  return best;
}

}  // namespace

u64 AccessStream::fingerprint() const {
  Sig s;
  s.mix(line_bytes);
  s.mix(rf_bytes);
  s.mix(schedule_steps);
  s.mix(prefix_steps);
  s.mix(period_steps);
  s.mix(period_count);
  s.mix(suffix_steps);
  s.mix(min_addr);
  s.mix(max_addr);
  s.mix(total_lines);
  for (Addr a : addr) s.mix(a);
  for (u32 l : len) s.mix(l);
  for (u8 w : write) s.mix(w);
  for (u32 e : op_end) s.mix(e);
  return s.a ^ (s.b * 0x9e3779b97f4a7c15ull);
}

AccessStream AccessStream::capture(const ir::TensorDag& dag, const score::Schedule& sched,
                                   const AddressMap& map, const sparse::CsrMatrix* matrix,
                                   const AcceleratorConfig& arch, const Router& router) {
  AccessStream s;
  s.line_bytes = arch.line_bytes;
  s.rf_bytes = arch.rf_bytes;
  const size_t n = sched.steps.size();
  s.schedule_steps = n;
  if (n == 0) return s;

  // ---- pass 1: resolve each step's serviced inputs + signature ----
  // Input selection mirrors Simulator::run_impl exactly: duplicate operands
  // serviced once, in-place-append operands skipped, only Route::Buffer
  // operands reach the policy.
  std::vector<ir::TensorId> in_flat;
  std::vector<u32> in_end(n);
  std::vector<u8> svc_out(n);
  std::vector<Sig> sig(n);
  std::vector<ir::TensorId> step_inputs;
  for (size_t i = 0; i < n; ++i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    step_inputs.clear();
    for (size_t ii = 0; ii < op.inputs.size(); ++ii) {
      const ir::TensorId in = op.inputs[ii];
      bool repeat = false;
      for (size_t jj = 0; jj < ii; ++jj) repeat = repeat || op.inputs[jj] == in;
      if (repeat) continue;
      if (dag.tensor(op.output).append_prev == in) continue;
      if (router.route_input(op, in) == Route::Buffer) step_inputs.push_back(in);
    }
    svc_out[i] = router.route_output(op) == Route::Buffer;
    sig[i] = step_signature(dag, map, op, step_inputs, svc_out[i] != 0);
    in_flat.insert(in_flat.end(), step_inputs.begin(), step_inputs.end());
    in_end[i] = static_cast<u32>(in_flat.size());
  }

  // ---- pass 2: span emission (prefix + one period + suffix) ----
  OpTrace t;
  t.dag = &dag;
  t.map = &map;
  t.matrix = matrix;
  OpAccessScratch scratch;
  u64 block_lines = 0;
  auto emit_step = [&](size_t i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    t.op = &op;
    t.service_output = svc_out[i] != 0;
    const u32 b = i == 0 ? 0 : in_end[i - 1];
    t.inputs.assign(in_flat.begin() + b, in_flat.begin() + in_end[i]);
    emit_op_accesses(
        t, arch, scratch,
        [&](Addr a, Bytes l, bool w) {
          if (l == 0) return;
          CELLO_CHECK_MSG(l <= 0xffffffffull, "access span exceeds the stream's 32-bit length");
          if (s.addr.empty() || a < s.min_addr) s.min_addr = a;
          if (s.addr.empty() || a + l - 1 > s.max_addr) s.max_addr = a + l - 1;
          s.addr.push_back(a);
          s.len.push_back(static_cast<u32>(l));
          s.write.push_back(w ? 1 : 0);
          block_lines +=
              (a + l - 1) / s.line_bytes - a / s.line_bytes + 1;
        },
        [](Addr, Bytes) {});
    s.op_end.push_back(static_cast<u32>(s.addr.size()));
  };

  Period p = find_period(sig);
  if (p.count >= 2) {
    for (size_t i = 0; i < p.prefix; ++i) emit_step(i);
    const u64 prefix_lines = block_lines;

    block_lines = 0;
    const size_t period_span_begin = s.addr.size();
    const size_t period_op_begin = s.op_end.size();
    for (size_t i = p.prefix; i < p.prefix + p.steps; ++i) emit_step(i);
    const u64 period_lines = block_lines;
    const size_t period_span_end = s.addr.size();
    const size_t period_op_end = s.op_end.size();

    // Confirm the signature match with the real thing: occurrence 2 must
    // emit byte-identical spans at the same op boundaries.  (Induction to
    // the remaining occurrences rides on the two-lane signatures.)
    block_lines = 0;
    for (size_t i = p.prefix + p.steps; i < p.prefix + 2 * p.steps; ++i) emit_step(i);
    const size_t nspans = period_span_end - period_span_begin;
    bool periodic =
        s.addr.size() - period_span_end == nspans &&
        std::equal(s.addr.begin() + period_span_begin, s.addr.begin() + period_span_end,
                   s.addr.begin() + period_span_end) &&
        std::equal(s.len.begin() + period_span_begin, s.len.begin() + period_span_end,
                   s.len.begin() + period_span_end) &&
        std::equal(s.write.begin() + period_span_begin, s.write.begin() + period_span_end,
                   s.write.begin() + period_span_end);
    if (periodic)
      for (size_t k = 0; k < p.steps; ++k)
        periodic = periodic && s.op_end[period_op_end + k] - period_span_end ==
                                   s.op_end[period_op_begin + k] - period_span_begin;

    if (periodic) {
      // Drop the verification block and keep the periodic decomposition.
      s.addr.resize(period_span_end);
      s.len.resize(period_span_end);
      s.write.resize(period_span_end);
      s.op_end.resize(period_op_end);
      block_lines = 0;
      for (size_t i = p.prefix + p.count * p.steps; i < n; ++i) emit_step(i);
      s.prefix_steps = p.prefix;
      s.period_steps = p.steps;
      s.period_count = p.count;
      s.suffix_steps = n - p.prefix - p.count * p.steps;
      s.total_lines = prefix_lines + period_lines * p.count + block_lines;
      return s;
    }
    // The signatures lied (or the emission is genuinely step-dependent):
    // keep the spans emitted so far and fall through to linear.
    for (size_t i = p.prefix + 2 * p.steps; i < n; ++i) emit_step(i);
    s.prefix_steps = n;
    s.total_lines = prefix_lines + period_lines + block_lines;
    return s;
  }

  for (size_t i = 0; i < n; ++i) emit_step(i);
  s.prefix_steps = n;
  s.total_lines = block_lines;
  return s;
}

}  // namespace cello::sim
