// sim::Simulator: owns the accelerator architecture plus the (optional) real
// sparse-matrix context and evaluates a DAG under any sim::Configuration.
//
//   sim::Simulator simulator(arch, &matrix);
//   auto cello = simulator.run(dag, sim::ConfigRegistry::global().at("Cello"));
//   auto novel = simulator.run(dag, "SCORE+LRU");   // registry lookup
//
// One unified loop serves every configuration: the Router (schedule policy)
// decides where each operand access is serviced and the BufferPolicy models
// the buffer hierarchy.  Analytic policies account traffic at tensor
// granularity per scheduled op; trace-driven cache policies replay a
// line-granularity access trace.  run() is const and reentrant — a fresh
// BufferPolicy is built per run — which is what SweepRunner exploits.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "score/reuse_index.hpp"
#include "score/schedule.hpp"
#include "sim/address_map.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

class BufferPolicy;

/// Reusable per-run state: the simulator's per-base scratch vectors, the
/// reuse cursors, and a pool of reset-instead-of-reconstructed BufferPolicy
/// instances (keyed by configuration name + the constructing arch, so a
/// scratch reused across architectures rebuilds instead of replaying stale
/// geometry).  One RunScratch belongs to one caller thread at a time and to
/// one configuration set — names must identify policies uniquely, since a
/// pooled policy is reused whenever its configuration name recurs.
/// SweepRunner owns one per pool worker, so a sweep cell's setup reuses the
/// previous cell's capacity instead of reallocating.
/// Runs through a scratch are bit-identical to fresh-state runs: every vector
/// is re-assigned per run and pooled policies must restore constructed state
/// in reset() (see BufferPolicy::reusable()).
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(RunScratch&&) noexcept;
  RunScratch& operator=(RunScratch&&) noexcept;
  RunScratch(const RunScratch&) = delete;
  RunScratch& operator=(const RunScratch&) = delete;

 private:
  friend class Simulator;
  score::ReuseCursor cursor_;
  std::vector<Bytes> traffic_;
  std::vector<u8> traffic_touched_;
  std::vector<u8> rf_loaded_;
  std::vector<u8> result_base_;
  std::vector<double> group_compute_;
  std::vector<double> group_dram_;
  std::vector<i32> retire_bases_;
  /// Pooled policies by configuration name.  The constructing arch rides
  /// along so a reuse with a different effective arch rebuilds instead of
  /// silently replaying against stale geometry.
  struct PooledPolicy {
    std::unique_ptr<BufferPolicy> policy;
    AcceleratorConfig arch;
  };
  std::map<std::string, PooledPolicy> policies_;
};

class Simulator {
 public:
  explicit Simulator(AcceleratorConfig arch, const sparse::CsrMatrix* matrix = nullptr)
      : arch_(arch), matrix_(matrix) {}

  /// Evaluate one configuration.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config) const;
  /// Evaluate with a precomputed, shared schedule + address map.  `sched`
  /// must equal make_schedule(dag, config) and `map` AddressMap::build(dag);
  /// both are read-only here, so one immutable copy can serve many
  /// concurrent runs — SweepRunner builds them once per (workload,
  /// schedule-policy) pair instead of once per sweep cell.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const score::Schedule& sched, const AddressMap& map) const;
  /// Fully shared setup: additionally takes the immutable ReuseIndex
  /// (score::ReuseIndex::build(dag, sched, map.base_of, map.entries.size()))
  /// and, optionally, a RunScratch whose vectors and pooled policies are
  /// reset — not reallocated — for this run.  Bit-identical to the overloads
  /// above; this is the per-cell fast path SweepRunner drives.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const score::Schedule& sched, const AddressMap& map,
                 const score::ReuseIndex& reuse, RunScratch* scratch = nullptr) const;
  /// Convenience: resolve `config_name` in the global ConfigRegistry (throws
  /// cello::Error for unknown names).
  RunMetrics run(const ir::TensorDag& dag, const std::string& config_name) const;
  /// Legacy Table IV enum entry point.
  RunMetrics run(const ir::TensorDag& dag, ConfigKind kind) const;

  /// The schedule the configuration's schedule policy would build.
  score::Schedule make_schedule(const ir::TensorDag& dag, const Configuration& config) const;

  /// The exact scheduling inputs make_schedule derives from a configuration.
  /// Configurations with equal options build identical schedules for a given
  /// DAG — this is the cache key SweepRunner shares schedules by, so any
  /// future knob that affects scheduling must be folded in here.
  score::ScheduleOptions schedule_options(const Configuration& config) const;

  /// Architecture after applying the configuration's knob overrides.
  AcceleratorConfig effective_arch(const Configuration& config) const;

  const AcceleratorConfig& arch() const { return arch_; }
  const sparse::CsrMatrix* matrix() const { return matrix_; }

 private:
  AcceleratorConfig arch_;
  const sparse::CsrMatrix* matrix_;
};

}  // namespace cello::sim
