// sim::Simulator: owns the accelerator architecture plus the (optional) real
// sparse-matrix context and evaluates a DAG under any sim::Configuration.
//
//   sim::Simulator simulator(arch, &matrix);
//   auto cello = simulator.run(dag, sim::ConfigRegistry::global().at("Cello"));
//
// One unified loop serves every configuration: the Router (schedule policy)
// decides where each operand access is serviced and the BufferPolicy models
// the buffer hierarchy.  Analytic policies account traffic at tensor
// granularity per scheduled op; trace-driven cache policies replay a
// line-granularity access trace.  run() is const and reentrant — a fresh
// BufferPolicy is built per run — which is what SweepRunner exploits.
//
// Every optional per-run input travels in one RunArtifacts bundle (shared
// immutable schedule/address-map/reuse-index/router-tables, a pooled
// RunScratch, a trace sink), so run() has exactly one real signature:
//
//   sim::RunArtifacts art;
//   art.schedule = &sched; art.address_map = &map;   // prebuilt, shared
//   art.trace = &writer;                             // op-level Perfetto trace
//   auto m = simulator.run(dag, config, art);
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ir/dag.hpp"
#include "score/reuse_index.hpp"
#include "score/schedule.hpp"
#include "sim/address_map.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::trace {
class TraceSink;
}  // namespace cello::trace

namespace cello::sim {

class BufferPolicy;
struct BufferService;  // sim/policies/buffer_policy.hpp
struct RouterTables;   // sim/policies/schedule_policy.hpp
struct AccessStream;   // sim/access_stream.hpp

/// Reusable per-run state: the simulator's per-base scratch vectors, the
/// reuse cursors, and a pool of reset-instead-of-reconstructed BufferPolicy
/// instances (keyed by configuration name + the constructing arch, so a
/// scratch reused across architectures rebuilds instead of replaying stale
/// geometry).  One RunScratch belongs to one caller thread at a time and to
/// one configuration set — names must identify policies uniquely, since a
/// pooled policy is reused whenever its configuration name recurs.
/// SweepRunner owns one per pool worker, so a sweep cell's setup reuses the
/// previous cell's capacity instead of reallocating.
/// Runs through a scratch are bit-identical to fresh-state runs: every vector
/// is re-assigned per run and pooled policies must restore constructed state
/// in reset() (see BufferPolicy::reusable()).
class RunScratch {
 public:
  RunScratch();
  ~RunScratch();
  RunScratch(RunScratch&&) noexcept;
  RunScratch& operator=(RunScratch&&) noexcept;
  RunScratch(const RunScratch&) = delete;
  RunScratch& operator=(const RunScratch&) = delete;

 private:
  friend class Simulator;
  score::ReuseCursor cursor_;
  std::vector<Bytes> traffic_;
  std::vector<u8> traffic_touched_;
  std::vector<u8> rf_loaded_;
  std::vector<u8> result_base_;
  std::vector<double> group_compute_;
  std::vector<double> group_dram_;
  std::vector<i32> retire_bases_;
  /// Pooled policies by configuration name.  The constructing arch rides
  /// along so a reuse with a different effective arch rebuilds instead of
  /// silently replaying against stale geometry.
  struct PooledPolicy {
    std::unique_ptr<BufferPolicy> policy;
    AcceleratorConfig arch;
  };
  std::map<std::string, PooledPolicy> policies_;
  /// Per-step services of a stream replay (capacity pooled across runs).
  std::vector<BufferService> replay_services_;
};

/// Every optional per-run input to Simulator::run, in one bundle — adding a
/// cross-cutting input (a scratch, a trace sink, ...) extends this struct
/// instead of multiplying overloads.  All pointers are borrowed and may be
/// null; a default-constructed RunArtifacts reproduces the classic
/// build-everything-fresh run.
struct RunArtifacts {
  /// Precomputed schedule; must equal make_schedule(dag, config).  Travels
  /// with address_map: both or neither.  Read-only here, so one immutable
  /// copy serves many concurrent runs — SweepRunner builds one per
  /// (workload, schedule-options) slot instead of one per cell.
  const score::Schedule* schedule = nullptr;
  /// AddressMap::build(dag); required exactly when `schedule` is set.
  const AddressMap* address_map = nullptr;
  /// score::ReuseIndex::build(dag, *schedule, map.base_of, map.entries
  /// .size()); optional — derived from schedule + address_map when null.
  const score::ReuseIndex* reuse_index = nullptr;
  /// RouterTables::build(dag, *schedule, config.schedule,
  /// config.allow_delayed_hold, effective_arch(config)); optional — the
  /// Router builds private tables when null.
  const RouterTables* router_tables = nullptr;
  /// Reusable per-run mutable state: vectors and pooled buffer policies are
  /// reset — not reallocated — for this run.  Bit-identical to running
  /// without one.
  RunScratch* scratch = nullptr;
  /// Op-level trace sink (see trace/trace.hpp); null = no tracing, at the
  /// cost of one pointer test per scheduled step.  Traced runs return the
  /// exact metrics of untraced ones.
  trace::TraceSink* trace = nullptr;
  /// Pre-captured access stream of (`schedule`, `address_map`) — see
  /// AccessStream::capture; requires `schedule` alongside.  When the
  /// configuration's buffer policy can replay it (CachePolicy under a
  /// matching geometry), the run consumes the stream instead of regenerating
  /// per-op accesses — bit-identical metrics, several-fold faster.  Ignored
  /// (with automatic fallback to direct servicing) for policies or runs that
  /// cannot replay: analytic policies, traced runs (per-step occupancy
  /// samples need stepwise cache state), geometry mismatches, or
  /// CELLO_DISABLE_REPLAY=1 in the environment.
  const AccessStream* access_stream = nullptr;
};

class Simulator {
 public:
  explicit Simulator(AcceleratorConfig arch, const sparse::CsrMatrix* matrix = nullptr)
      : arch_(arch), matrix_(matrix) {}

  /// Evaluate one configuration.  THE run signature: every optional input
  /// (shared immutable setup, pooled scratch, trace sink) rides in
  /// `artifacts`; the default bundle builds everything fresh.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const RunArtifacts& artifacts = {}) const;

  // ---- legacy entry points (deprecated shims over RunArtifacts) ------------
  [[deprecated("pass RunArtifacts{.schedule = &sched, .address_map = &map} instead")]]
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const score::Schedule& sched, const AddressMap& map) const;
  [[deprecated("pass RunArtifacts{.schedule, .address_map, .reuse_index, .scratch} instead")]]
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const score::Schedule& sched, const AddressMap& map,
                 const score::ReuseIndex& reuse, RunScratch* scratch = nullptr) const;
  [[deprecated("resolve the name via ConfigRegistry::global().at(config_name)")]]
  RunMetrics run(const ir::TensorDag& dag, const std::string& config_name) const;
  [[deprecated("resolve the kind via ConfigRegistry::preset(kind)")]]
  RunMetrics run(const ir::TensorDag& dag, ConfigKind kind) const;

  /// The schedule the configuration's schedule policy would build.
  score::Schedule make_schedule(const ir::TensorDag& dag, const Configuration& config) const;

  /// The exact scheduling inputs make_schedule derives from a configuration.
  /// Configurations with equal options build identical schedules for a given
  /// DAG — this is the cache key SweepRunner shares schedules by, so any
  /// future knob that affects scheduling must be folded in here.
  score::ScheduleOptions schedule_options(const Configuration& config) const;

  /// Architecture after applying the configuration's knob overrides.
  AcceleratorConfig effective_arch(const Configuration& config) const;

  const AcceleratorConfig& arch() const { return arch_; }
  const sparse::CsrMatrix* matrix() const { return matrix_; }

 private:
  /// The unified single-chip loop; every public run() lands here with the
  /// artifacts fully resolved.
  RunMetrics run_impl(const ir::TensorDag& dag, const Configuration& config,
                      const AcceleratorConfig& arch, const score::Schedule& sched,
                      const AddressMap& map, const score::ReuseIndex& reuse_index,
                      const RouterTables* tables, RunScratch* scratch,
                      trace::TraceSink* sink, const AccessStream* stream) const;

  AcceleratorConfig arch_;
  const sparse::CsrMatrix* matrix_;
};

/// Emit the NoC collective span of a folded multi-node run onto `sink`'s noc
/// track: the routed collectives occupy [per_node_seconds, per_node_seconds +
/// folded.noc_seconds).  Shared by the direct multi-node path and a traced
/// sweep cell (which folds NoC cost itself), so their traces agree.
void trace_collectives(trace::TraceSink& sink, const RunMetrics& folded,
                       double per_node_seconds);

}  // namespace cello::sim
