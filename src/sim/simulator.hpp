// sim::Simulator: owns the accelerator architecture plus the (optional) real
// sparse-matrix context and evaluates a DAG under any sim::Configuration.
//
//   sim::Simulator simulator(arch, &matrix);
//   auto cello = simulator.run(dag, sim::ConfigRegistry::global().at("Cello"));
//   auto novel = simulator.run(dag, "SCORE+LRU");   // registry lookup
//
// One unified loop serves every configuration: the Router (schedule policy)
// decides where each operand access is serviced and the BufferPolicy models
// the buffer hierarchy.  Analytic policies account traffic at tensor
// granularity per scheduled op; trace-driven cache policies replay a
// line-granularity access trace.  run() is const and reentrant — a fresh
// BufferPolicy is built per run — which is what SweepRunner exploits.
#pragma once

#include "ir/dag.hpp"
#include "score/schedule.hpp"
#include "sim/address_map.hpp"
#include "sim/config.hpp"
#include "sim/configuration.hpp"
#include "sim/metrics.hpp"
#include "sparse/csr.hpp"

namespace cello::sim {

class Simulator {
 public:
  explicit Simulator(AcceleratorConfig arch, const sparse::CsrMatrix* matrix = nullptr)
      : arch_(arch), matrix_(matrix) {}

  /// Evaluate one configuration.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config) const;
  /// Evaluate with a precomputed, shared schedule + address map.  `sched`
  /// must equal make_schedule(dag, config) and `map` AddressMap::build(dag);
  /// both are read-only here, so one immutable copy can serve many
  /// concurrent runs — SweepRunner builds them once per (workload,
  /// schedule-policy) pair instead of once per sweep cell.
  RunMetrics run(const ir::TensorDag& dag, const Configuration& config,
                 const score::Schedule& sched, const AddressMap& map) const;
  /// Convenience: resolve `config_name` in the global ConfigRegistry (throws
  /// cello::Error for unknown names).
  RunMetrics run(const ir::TensorDag& dag, const std::string& config_name) const;
  /// Legacy Table IV enum entry point.
  RunMetrics run(const ir::TensorDag& dag, ConfigKind kind) const;

  /// The schedule the configuration's schedule policy would build.
  score::Schedule make_schedule(const ir::TensorDag& dag, const Configuration& config) const;

  /// The exact scheduling inputs make_schedule derives from a configuration.
  /// Configurations with equal options build identical schedules for a given
  /// DAG — this is the cache key SweepRunner shares schedules by, so any
  /// future knob that affects scheduling must be folded in here.
  score::ScheduleOptions schedule_options(const Configuration& config) const;

  /// Architecture after applying the configuration's knob overrides.
  AcceleratorConfig effective_arch(const Configuration& config) const;

  const AcceleratorConfig& arch() const { return arch_; }
  const sparse::CsrMatrix* matrix() const { return matrix_; }

 private:
  AcceleratorConfig arch_;
  const sparse::CsrMatrix* matrix_;
};

}  // namespace cello::sim
