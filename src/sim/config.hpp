// Accelerator architecture parameters (Table V) and the evaluated
// schedule/buffer configurations (Table IV).
#pragma once

#include <string>

#include "common/types.hpp"

namespace cello::sim {

/// The seven schedule x buffer-hierarchy combinations of Table IV.
enum class ConfigKind {
  Flexagon,     ///< best intra-op schedule, explicit buffers, all ops begin/end in DRAM
  FlexLru,      ///< best intra-op schedule, every access through an LRU cache
  FlexBrrip,    ///< best intra-op schedule, every access through a BRRIP cache
  Flat,         ///< adjacent pipelining when the tensor has no delayed consumer
  Set,          ///< pipelining + delayed-hold support (SET-like)
  PreludeOnly,  ///< best intra-op schedule, SRAM with PRELUDE as the only policy
  Cello,        ///< SCORE schedule + pipeline buffer + CHORD (PRELUDE + RIFF)
};

const char* to_string(ConfigKind k);

/// Table IV footnote: FLAT's paper dataflow is Parallel Pipeline (stages run
/// concurrently; group time = max over compute/memory aggregates) while its
/// hardware implementation is Sequential Pipeline (stages time-multiplex the
/// array).  The choice changes timing only — DRAM traffic is identical.
enum class PipelineStyle { Parallel, Sequential };

struct AcceleratorConfig {
  Bytes sram_bytes = 4ull * 1024 * 1024;  ///< on-chip buffer (cache / CHORD) capacity
  i64 num_macs = 16384;
  double clock_hz = 1e9;
  u32 line_bytes = 16;
  u32 cache_associativity = 8;
  double dram_bytes_per_sec = 1e12;       ///< Table V: 250 GB/s and 1 TB/s
  double dram_energy_pj_per_byte = 31.2;
  Bytes rf_bytes = 64 * 1024;             ///< register file: small tensors live here
  /// Largest tensor the pipeline buffer will *hold* for a delayed-hold
  /// consumer (SET and Cello); larger tensors fall back to writeback.
  Bytes hold_budget_bytes = 2ull * 1024 * 1024;
  u32 chord_entries = 64;
  PipelineStyle pipeline_style = PipelineStyle::Parallel;

  // ---- multi-chip scale-out (Sec. V-B) ------------------------------------
  /// Chips cooperating on one run; 1 = the classic single-chip model.
  i64 nodes = 1;
  /// NoC spec string resolved against `nodes` (see noc/topology.hpp): a bare
  /// kind ("mesh", "torus", "ring", "crossbar") is auto-shaped, an explicit
  /// spec ("mesh:4x4") must match `nodes` exactly.
  std::string topology = "mesh";
  double noc_link_bytes_per_sec = 256e9;  ///< per directed fabric link
  double noc_hop_seconds = 50e-9;         ///< per-hop router+wire latency
  double noc_energy_pj_per_byte = 0.2;    ///< per byte per hop (0.8 pJ/word)

  double compute_seconds(i64 macs) const {
    return static_cast<double>(macs) / (static_cast<double>(num_macs) * clock_hz);
  }
  double dram_seconds(Bytes b) const { return static_cast<double>(b) / dram_bytes_per_sec; }

  /// Field-wise equality — RunScratch keys its pooled buffer policies on the
  /// effective arch so a scratch reused across architectures rebuilds instead
  /// of silently replaying against stale geometry.
  bool operator==(const AcceleratorConfig&) const = default;
};

}  // namespace cello::sim
