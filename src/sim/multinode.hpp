// Multi-node execution model (Sec. V-B "Scalable Dataflow") — legacy shim.
//
// SCORE parallelizes the *dominant* rank across nodes: every node owns an
// M/p shard of each skewed tensor (and of the sparse matrix's rows), keeps
// its pipelines cluster-local, and only the small register-file tensors
// cross the NoC — reductions for contracted-dominant operators (Delta and
// Gamma in CG) and broadcasts of their small results (Lambda, Phi).
//
// The contrast is the naive strategy that splits producer/consumer pipelines
// across nodes and therefore ships the skewed intermediate itself.
//
// This entry point predates the Simulator multi-node path (set
// AcceleratorConfig::nodes/topology, or the Configuration knobs, and
// Simulator::run shards the DAG itself via sim/partition).  It survives as a
// thin shim for callers that pre-shard through workload builders; transfers
// are priced on an auto-shaped mesh by the same noc::Topology router.
#pragma once

#include <functional>

#include "ir/dag.hpp"
#include "noc/mesh.hpp"
#include "sim/engine.hpp"

namespace cello::sim {

struct MultiNodeMetrics {
  i64 nodes = 1;
  RunMetrics per_node;        ///< one node's shard simulation
  Bytes noc_bytes = 0;        ///< SCORE strategy: small tensors x hops (byte-hops)
  Bytes naive_noc_bytes = 0;  ///< naive strategy: skewed intermediates x 1 hop min
  double noc_seconds = 0;
  double seconds = 0;         ///< per-node time + NoC serialization
  double total_gmacs_per_sec = 0;
  /// Speedup over 1 node divided by node count (1.0 = perfect scaling).
  double parallel_efficiency = 0;
};

/// Simulate `kind` on `nodes` nodes.  `shard_builder(nodes)` must return the
/// DAG of ONE node's shard (the workload builders parameterize M and nnz, so
/// callers divide by the node count); `shard_builder(1)` is the full 1-node
/// DAG, evaluated once for the efficiency baseline — and not at all when
/// `nodes == 1`, where the shard run IS the baseline.
MultiNodeMetrics simulate_multinode(const std::function<ir::TensorDag(i64 nodes)>& shard_builder,
                                    ConfigKind kind, const AcceleratorConfig& arch, i64 nodes,
                                    double noc_bytes_per_sec = 256e9);

}  // namespace cello::sim
