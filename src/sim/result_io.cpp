#include "sim/result_io.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"

namespace cello::sim {

// ---- exact float text -------------------------------------------------------

// Hand-rolled rather than printf("%a"): the exact text "%a" emits (leading
// digit, digit count, denormal normalization) is implementation-defined, and
// shard files written on different machines must be byte-identical.  This
// canonical form — sign, "0x1." + mantissa with trailing zeros trimmed,
// "p" + signed decimal exponent, denormals normalized to a 1.x mantissa —
// happens to match glibc for normal values and parses back bit-exactly with
// strtod on any platform.
std::string hex_double(double v) {
  const u64 bits = std::bit_cast<u64>(v);
  const int biased = static_cast<int>((bits >> 52) & 0x7ff);
  u64 frac = bits & 0xfffffffffffffull;
  std::string out = (bits >> 63) ? "-" : "";
  if (biased == 0x7ff) return out + (frac != 0 ? "nan" : "inf");
  if (biased == 0 && frac == 0) return out + "0x0p+0";
  int exp;
  if (biased == 0) {
    // Denormal: shift the top set bit into the implicit-1 position so the
    // mantissa is 1.f like every other value.
    const int shift = std::countl_zero(frac) - 11;
    frac = (frac << shift) & 0xfffffffffffffull;
    exp = -1022 - shift;
  } else {
    exp = biased - 1023;
  }
  out += "0x1";
  if (frac != 0) {
    char digits[16];
    std::snprintf(digits, sizeof digits, "%013llx", static_cast<unsigned long long>(frac));
    int len = 13;
    while (len > 0 && digits[len - 1] == '0') --len;
    out += '.';
    out.append(digits, static_cast<size_t>(len));
  }
  out += 'p';
  if (exp >= 0) out += '+';
  out += std::to_string(exp);
  return out;
}

double parse_hex_double(const std::string& text) {
  if (text.empty()) throw Error("empty float literal");
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size())
    throw Error("malformed float literal '" + text + "'");
  return v;
}

// ---- JSON value -------------------------------------------------------------

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type != Type::Object) return nullptr;
  for (const auto& [k, v] : members)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type != Type::Object) throw Error("JSON: expected an object holding key '" + key + "'");
  if (const JsonValue* v = find(key)) return *v;
  throw Error("JSON: missing key '" + key + "'");
}

const std::string& JsonValue::as_string() const {
  if (type != Type::String) throw Error("JSON: expected a string");
  return scalar;
}

bool JsonValue::as_bool() const {
  if (type != Type::Bool) throw Error("JSON: expected a boolean");
  return boolean;
}

i64 JsonValue::as_i64() const {
  if (type != Type::Number) throw Error("JSON: expected a number");
  char* end = nullptr;
  const long long v = std::strtoll(scalar.c_str(), &end, 10);
  if (end != scalar.c_str() + scalar.size())
    throw Error("JSON: malformed integer '" + scalar + "'");
  return static_cast<i64>(v);
}

u64 JsonValue::as_u64() const {
  if (type != Type::Number) throw Error("JSON: expected a number");
  if (!scalar.empty() && scalar[0] == '-')
    throw Error("JSON: expected a non-negative integer, got '" + scalar + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(scalar.c_str(), &end, 10);
  if (end != scalar.c_str() + scalar.size())
    throw Error("JSON: malformed integer '" + scalar + "'");
  return static_cast<u64>(v);
}

double JsonValue::as_double() const {
  if (type == Type::String || type == Type::Number) return parse_hex_double(scalar);
  throw Error("JSON: expected a float (hexfloat string or number)");
}

// ---- JSON parser ------------------------------------------------------------

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
  // The deepest legitimate document (shard file -> results -> metrics ->
  // per_op entry) nests ~6 levels; 64 leaves headroom while keeping a
  // hostile "[[[[..." file a cello::Error instead of a stack overflow.
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& why) const {
    throw Error("JSON parse error at offset " + std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() const {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  void literal(const char* word) {
    for (const char* p = word; *p; ++p) expect(*p);
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{' || c == '[') {
      if (++depth_ > kMaxDepth) fail("nesting deeper than " + std::to_string(kMaxDepth));
      JsonValue v = c == '{' ? object() : array();
      --depth_;
      return v;
    }
    if (c == '"') {
      JsonValue v;
      v.type = JsonValue::Type::String;
      v.scalar = string();
      return v;
    }
    if (c == 't' || c == 'f') {
      JsonValue v;
      v.type = JsonValue::Type::Bool;
      v.boolean = (c == 't');
      literal(c == 't' ? "true" : "false");
      return v;
    }
    if (c == 'n') {
      literal("null");
      return {};
    }
    return number();
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.type = JsonValue::Type::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      // First-wins duplicate keys would silently drop data; fail loudly like
      // every other format deviation.
      if (v.find(key) != nullptr) fail("duplicate key '" + key + "'");
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.type = JsonValue::Type::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("malformed \\u escape");
          }
          // The writer only escapes ASCII control characters; larger code
          // points are out of scope for this format.
          if (code > 0xff) fail("\\u escape beyond latin-1 is not supported");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           ((s_[pos_] >= '0' && s_[pos_] <= '9') || s_[pos_] == '.' || s_[pos_] == 'e' ||
            s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.type = JsonValue::Type::Number;
    v.scalar = s_.substr(start, pos_ - start);
    return v;
  }
};

}  // namespace

JsonValue json_parse(const std::string& text) { return JsonParser(text).parse(); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// ---- RunMetrics / SweepResult JSON ------------------------------------------

void reject_unknown_keys(const JsonValue& v, std::initializer_list<const char*> allowed,
                         const char* what) {
  for (const auto& [key, value] : v.members) {
    (void)value;
    bool known = false;
    for (const char* a : allowed)
      if (key == a) known = true;
    if (!known) throw Error(std::string(what) + ": unknown key '" + key + "'");
  }
}

void metrics_to_json(std::string& out, const RunMetrics& m, int indent) {
  const std::string in(static_cast<size_t>(indent), ' ');
  const std::string in2(static_cast<size_t>(indent) + 2, ' ');
  const std::string in4(static_cast<size_t>(indent) + 4, ' ');
  out += "{\n";
  out += in2 + "\"seconds\": \"" + hex_double(m.seconds) + "\",\n";
  out += in2 + "\"total_macs\": " + std::to_string(m.total_macs) + ",\n";
  out += in2 + "\"dram_bytes\": " + std::to_string(m.dram_bytes) + ",\n";
  out += in2 + "\"dram_read_bytes\": " + std::to_string(m.dram_read_bytes) + ",\n";
  out += in2 + "\"dram_write_bytes\": " + std::to_string(m.dram_write_bytes) + ",\n";
  out += in2 + "\"offchip_energy_pj\": \"" + hex_double(m.offchip_energy_pj) + "\",\n";
  out += in2 + "\"onchip_energy_pj\": \"" + hex_double(m.onchip_energy_pj) + "\",\n";
  out += in2 + "\"sram_line_accesses\": " + std::to_string(m.sram_line_accesses) + ",\n";
  // NoC fields appear only on multi-node runs, so single-chip result files
  // keep the exact bytes (and golden diffs) of the pre-scale-out format.
  if (m.nodes > 1) {
    out += in2 + "\"nodes\": " + std::to_string(m.nodes) + ",\n";
    out += in2 + "\"noc_bytes\": " + std::to_string(m.noc_bytes) + ",\n";
    out += in2 + "\"naive_noc_bytes\": " + std::to_string(m.naive_noc_bytes) + ",\n";
    out += in2 + "\"noc_seconds\": \"" + hex_double(m.noc_seconds) + "\",\n";
    out += in2 + "\"max_link_utilization\": \"" + hex_double(m.max_link_utilization) + "\",\n";
    out += in2 + "\"parallel_efficiency\": \"" + hex_double(m.parallel_efficiency) + "\",\n";
  }
  out += in2 + "\"traffic_by_tensor\": {";
  if (m.traffic_by_tensor.empty()) {
    out += "},\n";
  } else {
    out += "\n";
    size_t i = 0;
    for (const auto& [tensor, bytes] : m.traffic_by_tensor) {
      out += in4 + "\"" + json_escape(tensor) + "\": " + std::to_string(bytes);
      out += (++i < m.traffic_by_tensor.size()) ? ",\n" : "\n";
    }
    out += in2 + "},\n";
  }
  out += in2 + "\"per_op\": [";
  if (m.per_op.empty()) {
    out += "]\n";
  } else {
    out += "\n";
    for (size_t i = 0; i < m.per_op.size(); ++i) {
      const auto& op = m.per_op[i];
      out += in4 + "{ \"op\": \"" + json_escape(op.op) + "\", \"macs\": " +
             std::to_string(op.macs) + ", \"dram_bytes\": " + std::to_string(op.dram_bytes) +
             " }";
      out += (i + 1 < m.per_op.size()) ? ",\n" : "\n";
    }
    out += in2 + "]\n";
  }
  out += in + "}";
}

RunMetrics metrics_from_json(const JsonValue& v) {
  if (v.type != JsonValue::Type::Object) throw Error("metrics: expected a JSON object");
  reject_unknown_keys(v,
                      {"seconds", "total_macs", "dram_bytes", "dram_read_bytes",
                       "dram_write_bytes", "offchip_energy_pj", "onchip_energy_pj",
                       "sram_line_accesses", "nodes", "noc_bytes", "naive_noc_bytes",
                       "noc_seconds", "max_link_utilization", "parallel_efficiency",
                       "traffic_by_tensor", "per_op"},
                      "metrics");
  RunMetrics m;
  m.seconds = v.at("seconds").as_double();
  m.total_macs = v.at("total_macs").as_i64();
  m.dram_bytes = v.at("dram_bytes").as_u64();
  m.dram_read_bytes = v.at("dram_read_bytes").as_u64();
  m.dram_write_bytes = v.at("dram_write_bytes").as_u64();
  m.offchip_energy_pj = v.at("offchip_energy_pj").as_double();
  m.onchip_energy_pj = v.at("onchip_energy_pj").as_double();
  m.sram_line_accesses = v.at("sram_line_accesses").as_u64();
  // Conditionally-emitted multi-node fields: absent = single-chip defaults.
  if (const JsonValue* nodes = v.find("nodes")) {
    m.nodes = nodes->as_i64();
    if (m.nodes <= 1) throw Error("metrics: a nodes key must carry a count > 1");
    m.noc_bytes = v.at("noc_bytes").as_u64();
    m.naive_noc_bytes = v.at("naive_noc_bytes").as_u64();
    m.noc_seconds = v.at("noc_seconds").as_double();
    m.max_link_utilization = v.at("max_link_utilization").as_double();
    m.parallel_efficiency = v.at("parallel_efficiency").as_double();
  } else if (v.find("noc_bytes") != nullptr || v.find("noc_seconds") != nullptr) {
    throw Error("metrics: NoC fields require a nodes key");
  }
  const JsonValue& traffic = v.at("traffic_by_tensor");
  if (traffic.type != JsonValue::Type::Object)
    throw Error("metrics: traffic_by_tensor must be an object");
  for (const auto& [tensor, bytes] : traffic.members) {
    if (!m.traffic_by_tensor.emplace(tensor, bytes.as_u64()).second)
      throw Error("metrics: duplicate tensor '" + tensor + "' in traffic_by_tensor");
  }
  const JsonValue& per_op = v.at("per_op");
  if (per_op.type != JsonValue::Type::Array) throw Error("metrics: per_op must be an array");
  m.per_op.reserve(per_op.items.size());
  for (const JsonValue& entry : per_op.items) {
    if (entry.type != JsonValue::Type::Object)
      throw Error("metrics: per_op entries must be objects");
    reject_unknown_keys(entry, {"op", "macs", "dram_bytes"}, "metrics per_op");
    m.per_op.push_back({entry.at("op").as_string(), entry.at("macs").as_i64(),
                        entry.at("dram_bytes").as_u64()});
  }
  return m;
}

void result_to_json(std::string& out, const SweepResult& r, int indent) {
  const std::string in(static_cast<size_t>(indent), ' ');
  const std::string in2(static_cast<size_t>(indent) + 2, ' ');
  out += "{\n";
  out += in2 + "\"workload\": \"" + json_escape(r.workload) + "\",\n";
  out += in2 + "\"config\": \"" + json_escape(r.config) + "\",\n";
  // The fabric key appears only on rows from grids with a fabric axis, the
  // error key only on quarantined failure records: files from classic
  // all-success sweeps stay byte-identical to the historical format.
  if (!r.fabric.empty()) out += in2 + "\"fabric\": \"" + json_escape(r.fabric) + "\",\n";
  if (!r.error.empty()) out += in2 + "\"error\": \"" + json_escape(r.error) + "\",\n";
  out += in2 + "\"metrics\": ";
  metrics_to_json(out, r.metrics, indent + 2);
  out += "\n" + in + "}";
}

SweepResult result_from_json(const JsonValue& v) {
  if (v.type != JsonValue::Type::Object) throw Error("sweep result: expected a JSON object");
  reject_unknown_keys(v, {"workload", "config", "fabric", "error", "metrics"}, "sweep result");
  SweepResult r;
  r.workload = v.at("workload").as_string();
  r.config = v.at("config").as_string();
  if (const JsonValue* fabric = v.find("fabric")) {
    r.fabric = fabric->as_string();
    if (r.fabric.empty())
      throw Error("sweep result: a fabric key must carry a non-empty spec");
  }
  if (const JsonValue* error = v.find("error")) {
    r.error = error->as_string();
    if (r.error.empty())
      throw Error("sweep result: an error key must carry a non-empty message");
  }
  r.metrics = metrics_from_json(v.at("metrics"));
  return r;
}

// ---- CSV --------------------------------------------------------------------

namespace {

constexpr const char* kCsvHeader =
    "workload,config,fabric,seconds,total_macs,dram_bytes,dram_read_bytes,dram_write_bytes,"
    "offchip_energy_pj,onchip_energy_pj,sram_line_accesses,nodes,noc_bytes,naive_noc_bytes,"
    "noc_seconds,max_link_utilization,parallel_efficiency,traffic_by_tensor,per_op,error";

constexpr size_t kCsvFields = 20;

std::string csv_field(const std::string& raw) {
  if (raw.find_first_of(",\"\n\r") == std::string::npos) return raw;
  std::string quoted = "\"";
  for (const char c : raw) {
    if (c == '"') quoted += '"';
    quoted += c;
  }
  quoted += '"';
  return quoted;
}

/// Packed sub-fields reuse ';', '|', '=' and ':' as separators; a name using
/// one would corrupt the cell, so refuse to serialize it.
void check_packable_name(const std::string& name, const char* what) {
  if (name.find_first_of("=;:|,\"\n\r") != std::string::npos)
    throw Error(std::string(what) + " name '" + name +
                "' contains a CSV-reserved character (one of = ; : | , \" or a newline)");
}

/// Split on `sep`, dropping nothing: "a;b" -> {"a","b"}; "" -> {}.
std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  if (text.empty()) return parts;
  size_t start = 0;
  while (true) {
    const size_t at = text.find(sep, start);
    parts.push_back(text.substr(start, at - start));
    if (at == std::string::npos) return parts;
    start = at + 1;
  }
}

u64 parse_u64(const std::string& text, const char* what) {
  if (text.empty() || text[0] == '-') throw Error(std::string(what) + ": malformed '" + text + "'");
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size())
    throw Error(std::string(what) + ": malformed '" + text + "'");
  return static_cast<u64>(v);
}

i64 parse_i64(const std::string& text, const char* what) {
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size())
    throw Error(std::string(what) + ": malformed '" + text + "'");
  return static_cast<i64>(v);
}

/// Parse CSV text into records of fields, honoring quoted fields.
std::vector<std::vector<std::string>> parse_csv(const std::string& text) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> record;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;  ///< true once the current record has content
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      field_started = true;
    } else if (c == ',') {
      record.push_back(std::move(field));
      field.clear();
      field_started = true;
    } else if (c == '\n' || c == '\r') {
      if (c == '\r' && i + 1 < text.size() && text[i + 1] == '\n') ++i;
      if (field_started || !field.empty() || !record.empty()) {
        record.push_back(std::move(field));
        field.clear();
        records.push_back(std::move(record));
        record.clear();
        field_started = false;
      }
    } else {
      field += c;
      field_started = true;
    }
  }
  if (in_quotes) throw Error("CSV: unterminated quoted field");
  if (field_started || !field.empty() || !record.empty()) {
    record.push_back(std::move(field));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace

std::string results_to_csv(const std::vector<SweepResult>& rows) {
  std::string out = kCsvHeader;
  out += '\n';
  for (const SweepResult& r : rows) {
    std::string traffic;
    for (const auto& [tensor, bytes] : r.metrics.traffic_by_tensor) {
      check_packable_name(tensor, "tensor");
      if (!traffic.empty()) traffic += ';';
      traffic += tensor + "=" + std::to_string(bytes);
    }
    std::string per_op;
    for (const auto& op : r.metrics.per_op) {
      check_packable_name(op.op, "op");
      if (!per_op.empty()) per_op += '|';
      per_op += op.op + ":" + std::to_string(op.macs) + ":" + std::to_string(op.dram_bytes);
    }
    out += csv_field(r.workload) + ',' + csv_field(r.config) + ',' + csv_field(r.fabric) + ',';
    out += hex_double(r.metrics.seconds) + ',';
    out += std::to_string(r.metrics.total_macs) + ',';
    out += std::to_string(r.metrics.dram_bytes) + ',';
    out += std::to_string(r.metrics.dram_read_bytes) + ',';
    out += std::to_string(r.metrics.dram_write_bytes) + ',';
    out += hex_double(r.metrics.offchip_energy_pj) + ',';
    out += hex_double(r.metrics.onchip_energy_pj) + ',';
    out += std::to_string(r.metrics.sram_line_accesses) + ',';
    out += std::to_string(r.metrics.nodes) + ',';
    out += std::to_string(r.metrics.noc_bytes) + ',';
    out += std::to_string(r.metrics.naive_noc_bytes) + ',';
    out += hex_double(r.metrics.noc_seconds) + ',';
    out += hex_double(r.metrics.max_link_utilization) + ',';
    out += hex_double(r.metrics.parallel_efficiency) + ',';
    out += csv_field(traffic) + ',' + csv_field(per_op) + ',' + csv_field(r.error) + '\n';
  }
  return out;
}

std::vector<SweepResult> results_from_csv(const std::string& text) {
  const auto records = parse_csv(text);
  if (records.empty()) throw Error("CSV: empty document");
  {
    std::string header;
    for (size_t i = 0; i < records[0].size(); ++i)
      header += (i ? "," : "") + records[0][i];
    if (header != kCsvHeader)
      throw Error("CSV: unexpected header '" + header + "'");
  }
  std::vector<SweepResult> rows;
  rows.reserve(records.size() - 1);
  for (size_t ri = 1; ri < records.size(); ++ri) {
    const auto& rec = records[ri];
    if (rec.size() != kCsvFields)
      throw Error("CSV: row " + std::to_string(ri) + " has " + std::to_string(rec.size()) +
                  " fields, expected " + std::to_string(kCsvFields));
    SweepResult r;
    r.workload = rec[0];
    r.config = rec[1];
    r.fabric = rec[2];
    r.metrics.seconds = parse_hex_double(rec[3]);
    r.metrics.total_macs = parse_i64(rec[4], "total_macs");
    r.metrics.dram_bytes = parse_u64(rec[5], "dram_bytes");
    r.metrics.dram_read_bytes = parse_u64(rec[6], "dram_read_bytes");
    r.metrics.dram_write_bytes = parse_u64(rec[7], "dram_write_bytes");
    r.metrics.offchip_energy_pj = parse_hex_double(rec[8]);
    r.metrics.onchip_energy_pj = parse_hex_double(rec[9]);
    r.metrics.sram_line_accesses = parse_u64(rec[10], "sram_line_accesses");
    r.metrics.nodes = parse_i64(rec[11], "nodes");
    r.metrics.noc_bytes = parse_u64(rec[12], "noc_bytes");
    r.metrics.naive_noc_bytes = parse_u64(rec[13], "naive_noc_bytes");
    r.metrics.noc_seconds = parse_hex_double(rec[14]);
    r.metrics.max_link_utilization = parse_hex_double(rec[15]);
    r.metrics.parallel_efficiency = parse_hex_double(rec[16]);
    for (const std::string& entry : split(rec[17], ';')) {
      const size_t eq = entry.find('=');
      if (eq == std::string::npos) throw Error("CSV: malformed traffic entry '" + entry + "'");
      if (!r.metrics.traffic_by_tensor
               .emplace(entry.substr(0, eq), parse_u64(entry.substr(eq + 1), "traffic bytes"))
               .second)
        throw Error("CSV: duplicate tensor '" + entry.substr(0, eq) + "' in traffic column");
    }
    for (const std::string& entry : split(rec[18], '|')) {
      const auto parts = split(entry, ':');
      if (parts.size() != 3) throw Error("CSV: malformed per_op entry '" + entry + "'");
      r.metrics.per_op.push_back({parts[0], parse_i64(parts[1], "per_op macs"),
                                  parse_u64(parts[2], "per_op dram_bytes")});
    }
    r.error = rec[19];
    rows.push_back(std::move(r));
  }
  return rows;
}

}  // namespace cello::sim
