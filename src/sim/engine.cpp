#include "sim/engine.hpp"

#include <algorithm>
#include <set>

#include "cache/cache.hpp"
#include "chord/chord.hpp"
#include "common/error.hpp"
#include "mem/sram_model.hpp"
#include "sim/address_map.hpp"
#include "workloads/cg.hpp"

namespace cello::sim {

const char* to_string(ConfigKind k) {
  switch (k) {
    case ConfigKind::Flexagon: return "Flexagon";
    case ConfigKind::FlexLru: return "Flex+LRU";
    case ConfigKind::FlexBrrip: return "Flex+BRRIP";
    case ConfigKind::Flat: return "FLAT";
    case ConfigKind::Set: return "SET";
    case ConfigKind::PreludeOnly: return "Prelude-only";
    case ConfigKind::Cello: return "Cello";
  }
  return "?";
}

score::Schedule make_schedule(const ir::TensorDag& dag, ConfigKind kind,
                              const AcceleratorConfig& arch) {
  score::ScheduleOptions opts;
  opts.rf_bytes = arch.rf_bytes;
  opts.enable_pipelining =
      kind == ConfigKind::Flat || kind == ConfigKind::Set || kind == ConfigKind::Cello;
  return score::build_schedule(dag, opts);
}

namespace {

using score::DepKind;
using score::Residency;
using score::Schedule;

/// Per-base-tensor reuse bookkeeping: the union of the use positions of every
/// per-iteration instance sharing the base buffer.
struct BaseReuse {
  std::vector<std::vector<i64>> uses;  ///< per base id, sorted step positions

  static BaseReuse build(const ir::TensorDag& dag, const Schedule& sched, const AddressMap& map) {
    BaseReuse r;
    r.uses.assign(map.entries.size(), {});
    for (const auto& t : dag.tensors())
      for (i64 p : sched.use_positions[t.id]) r.uses[map.base_id(t.id)].push_back(p);
    for (auto& u : r.uses) std::sort(u.begin(), u.end());
    return r;
  }

  i32 remaining_after(i32 base, i64 pos) const {
    const auto& u = uses[base];
    return static_cast<i32>(u.end() - std::upper_bound(u.begin(), u.end(), pos));
  }
  i64 next_distance(i32 base, i64 pos) const {
    const auto& u = uses[base];
    auto it = std::upper_bound(u.begin(), u.end(), pos);
    return it == u.end() ? -1 : *it - pos;
  }
};

/// Tensor-level pipelining decisions for the FLAT and SET baselines: a tensor
/// stays on chip only when *every* consumer is serviced by the pipeline
/// buffer (FLAT: adjacent realized pipelining only; SET: + delayed hold up to
/// the hold budget).  Cello instead services edges individually (pipeline
/// buffer for realized edges, CHORD for the rest).
std::vector<bool> pipelined_tensors(const ir::TensorDag& dag, const Schedule& sched,
                                    ConfigKind kind, const AcceleratorConfig& arch) {
  std::vector<bool> piped(dag.tensors().size(), false);
  if (kind != ConfigKind::Flat && kind != ConfigKind::Set && kind != ConfigKind::Cello)
    return piped;
  std::vector<i64> pos(dag.ops().size());
  for (size_t i = 0; i < sched.steps.size(); ++i) pos[sched.steps[i].op] = static_cast<i64>(i);

  for (const auto& t : dag.tensors()) {
    if (!dag.producer(t.id).has_value()) continue;
    const auto consumer_ops = dag.consumers(t.id);
    if (consumer_ops.empty()) continue;
    bool ok = true;
    bool uses_hold = false;
    for (const auto& e : dag.edges()) {
      if (e.tensor != t.id) continue;
      if (!sched.edge_realized[e.id]) {
        ok = false;
        break;
      }
      const DepKind k = sched.deps.edge_kind[e.id];
      if (k == DepKind::DelayedHold) uses_hold = true;
      if (kind == ConfigKind::Flat && (k != DepKind::Pipelineable || pos[e.dst] - pos[e.src] != 1)) {
        ok = false;  // FLAT: strictly adjacent pipelining, no hold
        break;
      }
    }
    if (uses_hold && t.bytes() > arch.hold_budget_bytes) ok = false;
    piped[t.id] = ok;
  }
  return piped;
}

/// Shared accounting helpers.
struct Accounting {
  RunMetrics metrics;
  const AcceleratorConfig* arch = nullptr;

  void add_dram_read(Bytes b, const std::string& base) {
    metrics.dram_read_bytes += b;
    metrics.traffic_by_tensor[base] += b;
  }
  void add_dram_write(Bytes b, const std::string& base) {
    metrics.dram_write_bytes += b;
    metrics.traffic_by_tensor[base] += b;
  }
  void finish_timing(const std::vector<double>& group_compute,
                     const std::vector<double>& group_dram) {
    for (size_t g = 0; g < group_compute.size(); ++g)
      metrics.seconds += std::max(group_compute[g], group_dram[g]);
  }
};

/// ---------------------------------------------------------------------------
/// Analytic configurations: Flexagon, FLAT, SET, PRELUDE-only, Cello.
/// ---------------------------------------------------------------------------
RunMetrics simulate_analytic(const ir::TensorDag& dag, ConfigKind kind,
                             const AcceleratorConfig& arch, const Schedule& sched) {
  const AddressMap map = AddressMap::build(dag);
  const BaseReuse reuse = BaseReuse::build(dag, sched, map);
  const auto piped = pipelined_tensors(dag, sched, kind, arch);

  const bool uses_chord = kind == ConfigKind::PreludeOnly || kind == ConfigKind::Cello;
  chord::ChordBuffer chord_buf(arch.sram_bytes, arch.line_bytes,
                               /*enable_riff=*/kind == ConfigKind::Cello, arch.chord_entries);

  Accounting acc;
  acc.arch = &arch;

  // Realized-edge lookup for Cello's per-edge servicing.
  std::vector<i64> pos(dag.ops().size());
  for (size_t i = 0; i < sched.steps.size(); ++i) pos[sched.steps[i].op] = static_cast<i64>(i);
  auto edge_between = [&](ir::OpId src, ir::OpId dst, ir::TensorId t) -> const ir::Edge* {
    for (const auto& e : dag.edges())
      if (e.src == src && e.dst == dst && e.tensor == t) return &e;
    return nullptr;
  };

  // Effective residency: schedule binding, with hold-budget demotion.
  std::vector<Residency> res = sched.residency;
  for (const auto& t : dag.tensors())
    if (res[t.id] == Residency::PipelineBuffer && !piped[t.id]) res[t.id] = Residency::Chord;

  std::set<i32> rf_loaded;  // external RF-resident bases already fetched once

  // Bases whose final version is a result must stay resident until the
  // end-of-run drain instead of being retired at their last consumption.
  std::set<i32> result_bases;
  for (const auto& t : dag.tensors())
    if (t.is_result) result_bases.insert(map.base_id(t.id));

  auto meta_for = [&](const ir::TensorDesc& t, i64 step) {
    chord::TensorMeta m;
    m.id = map.base_id(t.id);
    m.name = map.of(t.id).base;
    m.start_addr = map.of(t.id).start;
    m.bytes = t.bytes();
    m.remaining_uses = reuse.remaining_after(m.id, step);
    m.next_use_distance = reuse.next_distance(m.id, step);
    return m;
  };

  // Per-pipeline-group timing accumulators.  Group structure per config:
  // Cello/FLAT/SET join consecutive steps linked by an on-chip serviced edge;
  // everything else is op-by-op.
  std::vector<double> group_compute, group_dram;
  i32 cur_group = -1;

  u64 sram_lines = 0;  // explicit-buffer staging accesses (non-CHORD configs)

  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    const i64 step = static_cast<i64>(i);

    bool joined = false;
    if (i > 0 && arch.pipeline_style == PipelineStyle::Parallel &&
        (kind == ConfigKind::Flat || kind == ConfigKind::Set || kind == ConfigKind::Cello)) {
      for (const auto& e : dag.edges()) {
        if (e.src != sched.steps[i - 1].op || e.dst != sched.steps[i].op) continue;
        const bool onchip = (kind == ConfigKind::Cello) ? sched.edge_realized[e.id]
                                                        : piped[e.tensor];
        if (onchip) joined = true;
      }
    }
    if (!joined) {
      group_compute.push_back(0);
      group_dram.push_back(0);
      ++cur_group;
    }
    group_compute[cur_group] += arch.compute_seconds(op.macs());
    acc.metrics.total_macs += op.macs();

    Bytes op_dram = 0;

    // ---- inputs ----
    std::set<ir::TensorId> seen;
    for (ir::TensorId in : op.inputs) {
      if (!seen.insert(in).second) continue;  // same tensor used twice (R^T R)
      const ir::TensorDesc& t = dag.tensor(in);
      const Bytes b = t.bytes();
      const std::string& base = map.of(in).base;

      switch (kind) {
        case ConfigKind::Flexagon:
          acc.add_dram_read(b, base);
          op_dram += b;
          sram_lines += b / arch.line_bytes + 1;
          break;
        case ConfigKind::Flat:
        case ConfigKind::Set:
          if (piped[in]) {
            sram_lines += b / arch.line_bytes + 1;
          } else {
            acc.add_dram_read(b, base);
            op_dram += b;
            sram_lines += b / arch.line_bytes + 1;
          }
          break;
        case ConfigKind::PreludeOnly: {
          const auto r = chord_buf.read_tensor(meta_for(t, step));
          acc.add_dram_read(r.dram_bytes, base);
          op_dram += r.dram_bytes;
          break;
        }
        case ConfigKind::Cello: {
          const ir::Edge* e = nullptr;
          if (auto p = dag.producer(in)) e = edge_between(*p, op.id, in);
          if (e != nullptr && sched.edge_realized[e->id]) {
            sram_lines += b / arch.line_bytes + 1;  // pipeline buffer
            break;
          }
          if (res[in] == Residency::RegisterFile) {
            // Externals cost one cold fetch; on-chip-produced stay in the RF.
            if (!dag.producer(in).has_value() && rf_loaded.insert(map.base_id(in)).second) {
              acc.add_dram_read(b, base);
              op_dram += b;
            }
            break;
          }
          const auto r = chord_buf.read_tensor(meta_for(t, step));
          acc.add_dram_read(r.dram_bytes, base);
          op_dram += r.dram_bytes;
          break;
        }
        case ConfigKind::FlexLru:
        case ConfigKind::FlexBrrip:
          CELLO_CHECK_MSG(false, "cache configs use the trace-driven path");
      }
    }

    // ---- output ----
    {
      const ir::TensorDesc& t = dag.tensor(op.output);
      const Bytes b = t.bytes();
      const std::string& base = map.of(op.output).base;
      const bool has_consumers = !dag.consumers(op.output).empty();

      switch (kind) {
        case ConfigKind::Flexagon:
          acc.add_dram_write(b, base);
          op_dram += b;
          sram_lines += b / arch.line_bytes + 1;
          break;
        case ConfigKind::Flat:
        case ConfigKind::Set:
          if (piped[op.output]) {
            sram_lines += b / arch.line_bytes + 1;
          } else {
            acc.add_dram_write(b, base);
            op_dram += b;
            sram_lines += b / arch.line_bytes + 1;
          }
          break;
        case ConfigKind::PreludeOnly: {
          const auto r = chord_buf.write_tensor(meta_for(t, step));
          acc.add_dram_write(r.dram_bytes, base);
          op_dram += r.dram_bytes;
          break;
        }
        case ConfigKind::Cello: {
          if (!has_consumers) {
            // SCORE knows liveness: results drain to memory, dead
            // intermediates (e.g. the last iteration's P) are never written.
            if (t.is_result) {
              acc.add_dram_write(b, base);
              op_dram += b;
            }
            break;
          }
          if (res[op.output] == Residency::RegisterFile) break;
          if (res[op.output] == Residency::PipelineBuffer) {
            sram_lines += b / arch.line_bytes + 1;
            break;
          }
          const auto r = chord_buf.write_tensor(meta_for(t, step));
          acc.add_dram_write(r.dram_bytes, base);
          op_dram += r.dram_bytes;
          break;
        }
        case ConfigKind::FlexLru:
        case ConfigKind::FlexBrrip:
          CELLO_CHECK(false);
      }
    }

    acc.metrics.per_op.push_back({op.name, op.macs(), op_dram});

    // ---- retirement: free CHORD space of bases with no further use ----
    if (uses_chord) {
      std::set<i32> bases;
      for (ir::TensorId in : op.inputs) bases.insert(map.base_id(in));
      for (i32 base : bases)
        if (reuse.remaining_after(base, step) == 0 && !result_bases.count(base))
          chord_buf.retire(base);
    }

    group_dram[cur_group] += arch.dram_seconds(op_dram);
  }

  // PRELUDE-only writes results through the SRAM; the resident portion still
  // has to drain to memory at the end of the run (Cello already routed
  // dead-end results straight to DRAM above).
  if (kind == ConfigKind::PreludeOnly) {
    Bytes drain = 0;
    for (const auto& t : dag.tensors()) {
      if (!t.is_result) continue;
      const Bytes resident = chord_buf.resident_bytes(map.base_id(t.id));
      drain += std::min<Bytes>(resident, t.bytes());
      acc.add_dram_write(std::min<Bytes>(resident, t.bytes()), map.of(t.id).base);
    }
    group_compute.push_back(0);
    group_dram.push_back(arch.dram_seconds(drain));
  }

  acc.finish_timing(group_compute, group_dram);
  acc.metrics.dram_bytes = acc.metrics.dram_read_bytes + acc.metrics.dram_write_bytes;
  acc.metrics.offchip_energy_pj =
      static_cast<double>(acc.metrics.dram_bytes) * arch.dram_energy_pj_per_byte;

  // On-chip energy: CHORD configurations pay data + metadata; explicit
  // configurations stage through scratchpad-style buffers.
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  if (uses_chord) {
    const auto& cs = chord_buf.stats();
    const auto e = sram.access_energy(mem::BufferKind::Chord);
    acc.metrics.sram_line_accesses = cs.sram_read_lines + cs.sram_write_lines;
    acc.metrics.onchip_energy_pj =
        static_cast<double>(acc.metrics.sram_line_accesses) * e.data_pj +
        static_cast<double>(cs.metadata_reads) * e.metadata_pj;
  } else {
    const auto e = sram.access_energy(mem::BufferKind::Scratchpad);
    acc.metrics.sram_line_accesses = sram_lines;
    acc.metrics.onchip_energy_pj = static_cast<double>(sram_lines) * e.data_pj;
  }
  return acc.metrics;
}

/// ---------------------------------------------------------------------------
/// Trace-driven cache configurations: Flex+LRU, Flex+BRRIP.
/// ---------------------------------------------------------------------------
RunMetrics simulate_cache(const ir::TensorDag& dag, ConfigKind kind,
                          const AcceleratorConfig& arch, const Schedule& sched,
                          const sparse::CsrMatrix* matrix) {
  const AddressMap map = AddressMap::build(dag);
  cache::SetAssocCache cache_sim(arch.sram_bytes, arch.line_bytes, arch.cache_associativity,
                                 kind == ConfigKind::FlexLru ? cache::Policy::Lru
                                                             : cache::Policy::Brrip);

  Accounting acc;
  acc.arch = &arch;
  std::vector<double> group_compute, group_dram;

  constexpr i64 kChunkRows = 512;

  for (size_t i = 0; i < sched.steps.size(); ++i) {
    const ir::EinsumOp& op = dag.op(sched.steps[i].op);
    group_compute.push_back(arch.compute_seconds(op.macs()));
    acc.metrics.total_macs += op.macs();
    const Bytes dram_before = cache_sim.stats().dram_bytes();

    // Identify the sparse operand (if any) and split the rest by size.
    const ir::TensorDesc* sparse_in = nullptr;
    std::vector<const ir::TensorDesc*> large_in, small_in;
    std::set<ir::TensorId> seen;
    for (ir::TensorId in : op.inputs) {
      if (!seen.insert(in).second) continue;
      const ir::TensorDesc& t = dag.tensor(in);
      if (t.storage == ir::Storage::CompressedSparse)
        sparse_in = &t;
      else if (t.bytes() > arch.rf_bytes)
        large_in.push_back(&t);
      else
        small_in.push_back(&t);
    }
    const ir::TensorDesc& out = dag.tensor(op.output);

    // The op's iteration space along the large (row) dimension.
    i64 rows = 1;
    for (const auto& r : op.ranks) rows = std::max(rows, r.size);
    if (sparse_in == nullptr && large_in.empty() && out.bytes() <= arch.rf_bytes) rows = 1;

    auto row_bytes = [&](const ir::TensorDesc& t) -> Bytes {
      const i64 r = t.dims.empty() ? 1 : t.dims.front();
      return std::max<Bytes>(1, t.bytes() / std::max<i64>(1, r));
    };

    for (i64 r0 = 0; r0 < rows; r0 += kChunkRows) {
      const i64 r1 = std::min(rows, r0 + kChunkRows);

      if (sparse_in != nullptr) {
        // CSR segment of the chunk: values + columns stream sequentially.
        const Addr a_start = map.of(sparse_in->id).start;
        Bytes seg_off = 0, seg_len = 0;
        if (matrix != nullptr && matrix->rows() == rows) {
          const i64 k0 = matrix->row_ptr()[r0], k1 = matrix->row_ptr()[r1];
          seg_off = static_cast<Bytes>(k0) * 8;
          seg_len = static_cast<Bytes>(k1 - k0) * 8;
        } else {
          const Bytes per_row = sparse_in->bytes() / std::max<i64>(1, rows);
          seg_off = static_cast<Bytes>(r0) * per_row;
          seg_len = static_cast<Bytes>(r1 - r0) * per_row;
        }
        cache_sim.access_range(a_start + seg_off, seg_len, false);

        // Gather the dense operand rows indexed by the chunk's non-zeros.
        if (!large_in.empty()) {
          const ir::TensorDesc& dense = *large_in.front();
          const Addr d_start = map.of(dense.id).start;
          const Bytes rb = row_bytes(dense);
          if (matrix != nullptr && matrix->rows() == rows) {
            for (i64 r = r0; r < r1; ++r)
              for (i64 k = matrix->row_ptr()[r]; k < matrix->row_ptr()[r + 1]; ++k)
                cache_sim.access_range(d_start + static_cast<Bytes>(matrix->col_idx()[k]) * rb,
                                       rb, false);
          } else {
            // Synthetic banded gather when no matrix is supplied.
            const i64 occ = std::max<i64>(1, sparse_in->nnz / std::max<i64>(1, rows));
            for (i64 r = r0; r < r1; ++r)
              for (i64 k = 0; k < occ; ++k) {
                const i64 c = std::min<i64>(rows - 1, std::max<i64>(0, r + k - occ / 2));
                cache_sim.access_range(d_start + static_cast<Bytes>(c) * rb, rb, false);
              }
          }
        }
      } else {
        for (const auto* t : large_in) {
          const Bytes rb = row_bytes(*t);
          cache_sim.access_range(map.of(t->id).start + static_cast<Bytes>(r0) * rb,
                                 static_cast<Bytes>(r1 - r0) * rb, false);
        }
      }

      // Small operands re-streamed per chunk (they hit once resident).
      for (const auto* t : small_in)
        cache_sim.access_range(map.of(t->id).start, t->bytes(), false);

      // Output chunk: skewed outputs stream; small outputs accumulate (RMW).
      if (out.bytes() > arch.rf_bytes) {
        const Bytes rb = row_bytes(out);
        cache_sim.access_range(map.of(out.id).start + static_cast<Bytes>(r0) * rb,
                               static_cast<Bytes>(r1 - r0) * rb, true);
      } else {
        cache_sim.access_range(map.of(out.id).start, out.bytes(), true);
      }
    }

    const Bytes op_dram = cache_sim.stats().dram_bytes() - dram_before;
    group_dram.push_back(arch.dram_seconds(op_dram));
    acc.metrics.per_op.push_back({op.name, op.macs(), op_dram});
  }

  // Drain dirty lines at the end of the run.
  const Bytes before_flush = cache_sim.stats().dram_bytes();
  cache_sim.flush();
  group_compute.push_back(0);
  group_dram.push_back(arch.dram_seconds(cache_sim.stats().dram_bytes() - before_flush));

  acc.finish_timing(group_compute, group_dram);
  const auto& cs = cache_sim.stats();
  acc.metrics.dram_read_bytes = cs.dram_read_bytes;
  acc.metrics.dram_write_bytes = cs.dram_write_bytes;
  acc.metrics.dram_bytes = cs.dram_bytes();
  acc.metrics.offchip_energy_pj =
      static_cast<double>(acc.metrics.dram_bytes) * arch.dram_energy_pj_per_byte;
  mem::SramModel sram({arch.sram_bytes, arch.line_bytes, arch.cache_associativity});
  const auto e = sram.access_energy(mem::BufferKind::Cache);
  acc.metrics.sram_line_accesses = cs.data_accesses;
  acc.metrics.onchip_energy_pj = static_cast<double>(cs.data_accesses) * e.data_pj +
                                 static_cast<double>(cs.tag_lookups) * e.tag_pj;
  return acc.metrics;
}

}  // namespace

RunMetrics simulate(const ir::TensorDag& dag, ConfigKind kind, const AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix) {
  const Schedule sched = make_schedule(dag, kind, arch);
  if (kind == ConfigKind::FlexLru || kind == ConfigKind::FlexBrrip)
    return simulate_cache(dag, kind, arch, sched, matrix);
  return simulate_analytic(dag, kind, arch, sched);
}

}  // namespace cello::sim
