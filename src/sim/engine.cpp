// ConfigKind shims over the composable policy API.  The per-policy servicing
// models that used to live here moved to src/sim/policies/ and the unified
// evaluation loop to src/sim/simulator.cpp.
#include "sim/engine.hpp"

#include "sim/registry.hpp"
#include "sim/simulator.hpp"

namespace cello::sim {

const char* to_string(ConfigKind k) {
  switch (k) {
    case ConfigKind::Flexagon: return "Flexagon";
    case ConfigKind::FlexLru: return "Flex+LRU";
    case ConfigKind::FlexBrrip: return "Flex+BRRIP";
    case ConfigKind::Flat: return "FLAT";
    case ConfigKind::Set: return "SET";
    case ConfigKind::PreludeOnly: return "Prelude-only";
    case ConfigKind::Cello: return "Cello";
  }
  return "?";
}

score::Schedule make_schedule(const ir::TensorDag& dag, ConfigKind kind,
                              const AcceleratorConfig& arch) {
  return Simulator(arch).make_schedule(dag, ConfigRegistry::preset(kind));
}

RunMetrics simulate(const ir::TensorDag& dag, ConfigKind kind, const AcceleratorConfig& arch,
                    const sparse::CsrMatrix* matrix) {
  return Simulator(arch, matrix).run(dag, ConfigRegistry::preset(kind));
}

}  // namespace cello::sim
