// Crash-safe incremental sweep checkpointing: an append-only cell journal
// that lets a killed shard resume instead of restarting, with output
// byte-identical to an uninterrupted run.
//
// Format ("cello-ckpt/1", plain ASCII so a journal is inspectable with less):
//
//   cello-ckpt/1 fp=0x<16 hex> shard=<i>/<k> mode=<mode> sum=0x<16 hex>\n
//   R <cell> <payload_len> 0x<16 hex FNV-1a of payload>\n
//   <payload bytes>\n
//   R ...
//
// The header binds the journal to one (grid fingerprint, shard plan): a
// journal replayed against a drifted grid or the wrong shard refuses loudly.
// Each record is one completed cell — its flattened row-major id plus the
// hexfloat-exact SweepResult JSON from sim/result_io — length-prefixed and
// FNV-checksummed.  Records are appended and fsync'd one at a time, so after
// SIGKILL (or power loss) the file is a valid journal followed by at most one
// torn record; read_journal() stops at the first damaged byte and reports how
// much tail it dropped, and resuming truncates that tail before appending.
// Cells parsed back from the journal are bit-identical to the run that wrote
// them (hexfloat round-trip), which is what makes resume byte-exact.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sim/shard.hpp"

namespace cello::sim {

/// What a journal load recovered.
struct CheckpointState {
  /// Completed cells in journal (= completion) order; every cell id belongs
  /// to the plan and every result is validated against its grid cell.
  std::vector<std::pair<size_t, SweepResult>> completed;
  size_t valid_bytes = 0;    ///< byte offset just past the last intact record
  size_t dropped_bytes = 0;  ///< torn/corrupt tail discarded (0 = clean file)
};

/// Serialize the header line binding a journal to (grid, plan).
std::string checkpoint_header(const SweepGrid& grid, const ShardPlan& plan);

/// Parse journal bytes.  Header mismatches (format tag, fingerprint, shard
/// index/count/mode) and internally inconsistent checksummed records (cell
/// outside the plan, result naming the wrong cell, duplicate cell) throw
/// cello::Error; a damaged *tail* — mid-record EOF, garbled checksum, torn
/// framing — is expected crash fallout and is returned as dropped_bytes
/// instead of an error.
CheckpointState read_journal(const std::string& bytes, const SweepGrid& grid,
                             const ShardPlan& plan);

/// Append-only journal writer.  Copyable handle, one shared file descriptor;
/// append() is thread-safe and durable (fsync per record).
class CheckpointJournal {
 public:
  CheckpointJournal() = default;  ///< inactive: append() is a CHECK failure

  /// Open `path` for appending.  A missing or empty file is initialized with
  /// the header.  An existing journal requires resume=true: its records are
  /// loaded into *state, any torn tail is truncated away, and appending
  /// continues after the last intact record; without resume an existing
  /// non-empty journal throws instead of being silently merged into.
  static CheckpointJournal open(const std::string& path, const SweepGrid& grid,
                                const ShardPlan& plan, bool resume, CheckpointState* state);

  bool active() const { return impl_ != nullptr; }

  /// Durably append one completed cell: write + fsync under a lock.
  /// Fail-point site "checkpoint.append" (key = cell id) can inject a throw
  /// before the write, a short write (half the record, then throw) or a torn
  /// write (full-length record with a garbled payload byte, then throw) to
  /// simulate crashes mid-append.
  void append(size_t cell, const SweepResult& result);

 private:
  struct Impl;
  std::shared_ptr<Impl> impl_;
};

}  // namespace cello::sim
