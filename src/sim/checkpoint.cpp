#include "sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "sim/result_io.hpp"

namespace cello::sim {

namespace {

const char* kJournalTag = "cello-ckpt/1";

u64 fnv1a_bytes(const char* data, size_t len) {
  u64 h = 14695981039346656037ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 1099511628211ull;
  }
  return h;
}

std::string hex_u64(u64 v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%016llx", static_cast<unsigned long long>(v));
  return buf;
}

/// Strict "0x" + 16 hex digits; nullopt (not a throw) on damage, because the
/// record loader treats unparseable framing as a torn tail.
std::optional<u64> parse_hex_u64(const std::string& text) {
  if (text.size() != 18 || text[0] != '0' || text[1] != 'x') return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str() + 2, &end, 16);
  if (end != text.c_str() + text.size()) return std::nullopt;
  return static_cast<u64>(v);
}

std::optional<u64> parse_decimal_u64(const std::string& text) {
  if (text.empty() || text.size() > 19 ||
      text.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::strtoull(text.c_str(), nullptr, 10);
}

void write_all(int fd, const char* data, size_t len, const std::string& path) {
  size_t off = 0;
  while (off < len) {
    const ssize_t n = ::write(fd, data + off, len - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw Error("checkpoint journal '" + path + "': write failed: " + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
}

void fsync_or_throw(int fd, const std::string& path) {
  if (::fsync(fd) != 0)
    throw Error("checkpoint journal '" + path + "': fsync failed: " + std::strerror(errno));
}

}  // namespace

std::string checkpoint_header(const SweepGrid& grid, const ShardPlan& plan) {
  std::string body = std::string(kJournalTag) + " fp=" + hex_u64(grid.fingerprint) +
                     " shard=" + std::to_string(plan.index) + "/" +
                     std::to_string(plan.count) + " mode=" + to_string(plan.mode);
  return body + " sum=" + hex_u64(fnv1a_bytes(body.data(), body.size())) + "\n";
}

CheckpointState read_journal(const std::string& bytes, const SweepGrid& grid,
                             const ShardPlan& plan) {
  // The header must match byte-for-byte what this (grid, plan) would write:
  // tag, fingerprint, shard coordinates, mode and its own checksum.  Anything
  // else is a journal for a different sweep — a hard error, never a "tail".
  const size_t header_end = bytes.find('\n');
  if (bytes.empty())
    throw Error("checkpoint journal is empty (no header); delete it to start fresh");
  if (header_end == std::string::npos)
    throw Error("checkpoint journal: missing header line");
  const std::string header = bytes.substr(0, header_end + 1);
  const std::string expected = checkpoint_header(grid, plan);
  if (header != expected)
    throw Error("checkpoint journal header '" + bytes.substr(0, header_end) +
                "' does not match this sweep ('" + expected.substr(0, expected.size() - 1) +
                "'): the journal belongs to a different grid, shard or format");

  CheckpointState state;
  state.valid_bytes = header_end + 1;

  std::set<size_t> plan_cells(plan.cells.begin(), plan.cells.end());
  std::set<size_t> seen;
  size_t pos = state.valid_bytes;
  while (pos < bytes.size()) {
    // Frame line: "R <cell> <len> <sum>".  Any damage from here on is a torn
    // tail: stop and report, the resume path re-runs the unrecovered cells.
    const size_t frame_end = bytes.find('\n', pos);
    if (frame_end == std::string::npos) break;
    std::istringstream frame(bytes.substr(pos, frame_end - pos));
    std::string tag, cell_text, len_text, sum_text, extra;
    frame >> tag >> cell_text >> len_text >> sum_text;
    if (tag != "R" || (frame >> extra)) break;
    const auto cell = parse_decimal_u64(cell_text);
    const auto len = parse_decimal_u64(len_text);
    const auto sum = parse_hex_u64(sum_text);
    if (!cell || !len || !sum) break;
    const size_t payload_at = frame_end + 1;
    if (payload_at + *len + 1 > bytes.size()) break;            // mid-record EOF
    if (bytes[payload_at + *len] != '\n') break;                // frame/payload mismatch
    if (fnv1a_bytes(bytes.data() + payload_at, *len) != *sum) break;  // garbled payload

    // The record is checksummed and intact; from here inconsistencies mean a
    // corrupt or foreign journal that happens to checksum, and fail loudly.
    if (!plan_cells.count(*cell))
      throw Error("checkpoint journal: cell " + std::to_string(*cell) +
                  " is not part of shard " + std::to_string(plan.index) + "/" +
                  std::to_string(plan.count));
    if (!seen.insert(*cell).second)
      throw Error("checkpoint journal: cell " + std::to_string(*cell) + " recorded twice");
    SweepResult result;
    try {
      result = result_from_json(json_parse(bytes.substr(payload_at, *len)));
    } catch (const std::exception& e) {
      throw Error("checkpoint journal: record for cell " + std::to_string(*cell) +
                  " passes its checksum but does not parse: " + e.what());
    }
    const size_t n_fabrics = grid.fabrics.size();
    const size_t n_configs = grid.configs.size();
    const std::string& workload = grid.workloads[*cell / (n_fabrics * n_configs)];
    const std::string fabric =
        grid.has_fabric_axis() ? grid.fabrics[(*cell / n_configs) % n_fabrics] : std::string();
    const std::string& config = grid.configs[*cell % n_configs];
    if (result.workload != workload || result.fabric != fabric || result.config != config)
      throw Error("checkpoint journal: record for cell " + std::to_string(*cell) +
                  " names (" + result.workload + ", " + result.fabric + ", " + result.config +
                  ") but that cell is (" + workload + ", " + fabric + ", " + config + ")");

    state.completed.emplace_back(static_cast<size_t>(*cell), std::move(result));
    pos = payload_at + *len + 1;
    state.valid_bytes = pos;
  }
  state.dropped_bytes = bytes.size() - state.valid_bytes;
  return state;
}

struct CheckpointJournal::Impl {
  std::string path;
  int fd = -1;
  std::mutex mu;

  ~Impl() {
    if (fd >= 0) ::close(fd);
  }
};

CheckpointJournal CheckpointJournal::open(const std::string& path, const SweepGrid& grid,
                                          const ShardPlan& plan, bool resume,
                                          CheckpointState* state) {
  CELLO_CHECK_MSG(!path.empty(), "checkpoint journal path is empty");
  CELLO_CHECK_MSG(state != nullptr, "checkpoint open needs a CheckpointState out-param");
  *state = CheckpointState{};

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (in) {
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = buf.str();
    }
  }
  if (!bytes.empty()) {
    if (!resume)
      throw Error("checkpoint journal '" + path +
                  "' already exists; pass resume (--resume) to continue from it, or delete it "
                  "to start over");
    *state = read_journal(bytes, grid, plan);
  }

  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0)
    throw Error("cannot open checkpoint journal '" + path + "': " + std::strerror(errno));
  auto impl = std::make_shared<Impl>();
  impl->path = path;
  impl->fd = fd;

  if (bytes.empty()) {
    const std::string header = checkpoint_header(grid, plan);
    if (::ftruncate(fd, 0) != 0)
      throw Error("checkpoint journal '" + path + "': truncate failed: " +
                  std::strerror(errno));
    write_all(fd, header.data(), header.size(), path);
    fsync_or_throw(fd, path);
  } else {
    // Cut away the torn tail a crash mid-append left behind, then continue
    // appending after the last intact record.
    if (::ftruncate(fd, static_cast<off_t>(state->valid_bytes)) != 0)
      throw Error("checkpoint journal '" + path + "': truncate failed: " +
                  std::strerror(errno));
    if (::lseek(fd, 0, SEEK_END) < 0)
      throw Error("checkpoint journal '" + path + "': seek failed: " + std::strerror(errno));
    if (state->dropped_bytes != 0) fsync_or_throw(fd, path);
  }

  CheckpointJournal journal;
  journal.impl_ = std::move(impl);
  return journal;
}

void CheckpointJournal::append(size_t cell, const SweepResult& result) {
  CELLO_CHECK_MSG(impl_ != nullptr, "append on an inactive checkpoint journal");
  std::string payload;
  result_to_json(payload, result, 0);
  std::string record = "R " + std::to_string(cell) + " " + std::to_string(payload.size()) +
                       " " + hex_u64(fnv1a_bytes(payload.data(), payload.size())) + "\n";
  const size_t payload_at = record.size();
  record += payload;
  record += '\n';

  std::lock_guard<std::mutex> lock(impl_->mu);
  if (const auto fault = failpoint::hit("checkpoint.append", std::to_string(cell))) {
    switch (fault->action) {
      case failpoint::Action::Throw:
        throw Error("injected fault at failpoint 'checkpoint.append' (cell " +
                    std::to_string(cell) + ")");
      case failpoint::Action::ShortWrite:
        // Crash mid-write: half the record reaches the file, then the
        // process "dies".  The loader must drop this tail.
        write_all(impl_->fd, record.data(), record.size() / 2, impl_->path);
        fsync_or_throw(impl_->fd, impl_->path);
        throw Error("injected short write at failpoint 'checkpoint.append' (cell " +
                    std::to_string(cell) + ")");
      case failpoint::Action::TornWrite: {
        // Full-length record with a garbled payload byte: framing parses but
        // the checksum must reject it.
        std::string torn = record;
        torn[payload_at + payload.size() / 2] ^= 0x20;
        write_all(impl_->fd, torn.data(), torn.size(), impl_->path);
        fsync_or_throw(impl_->fd, impl_->path);
        throw Error("injected torn write at failpoint 'checkpoint.append' (cell " +
                    std::to_string(cell) + ")");
      }
    }
  }
  write_all(impl_->fd, record.data(), record.size(), impl_->path);
  fsync_or_throw(impl_->fd, impl_->path);
}

}  // namespace cello::sim
