// ConfigRegistry: named Configurations.  Construction pre-registers the
// seven Table IV presets (paper order) plus a couple of novel combinations
// the old ConfigKind enum could not express; users register their own with
// add().  Lookup is tolerant: names match exactly or after normalization
// (case-insensitive, punctuation ignored), so "cello", "Cello" and
// "flex+lru" all resolve.
#pragma once

#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/configuration.hpp"

namespace cello::sim {

class ConfigRegistry {
 public:
  /// Pre-populated with the Table IV presets and the novel combinations.
  ConfigRegistry();

  /// Process-wide shared registry (thread-safe).
  static ConfigRegistry& global();

  /// Register a configuration under config.name.  Throws cello::Error on a
  /// duplicate (normalized) name or a missing buffer factory.
  void add(Configuration config);

  /// Register an alternative name for an existing configuration ("SCORE+CHORD"
  /// resolves to the Cello preset).  Aliases do not appear in names().
  void add_alias(const std::string& alias, const std::string& existing);

  /// Lookup by (normalized) name; nullptr when absent.  The pointer stays
  /// valid for the registry's lifetime.
  const Configuration* find(const std::string& name) const;
  /// Lookup that throws cello::Error, listing the registered names.
  const Configuration& at(const std::string& name) const;

  /// Registered names, registration order (presets first).
  std::vector<std::string> names() const;

  /// The seven Table IV preset names, paper order.
  static const std::vector<std::string>& table4_names();
  /// Build the preset Configuration for a legacy enum value.
  static Configuration preset(ConfigKind kind);

 private:
  mutable std::mutex mu_;
  std::deque<Configuration> configs_;           ///< stable storage, registration order
  std::map<std::string, size_t> by_normalized_;
};

}  // namespace cello::sim
