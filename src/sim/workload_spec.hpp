// sim::WorkloadSpec: a named, parameterized workload description.
//
// A spec is a workload *kind* (a name registered in the WorkloadRegistry,
// e.g. "cg", "gnn", "spmv") plus key=value parameter overrides:
//
//   "cg"                         defaults only
//   "cg:m=65536,n=16,iters=10"   synthetic shape overrides
//   "gnn:cora"                   bare token = dataset preset shorthand
//   "spmv:mm=path.mtx"           Matrix Market file as the matrix source
//
// Specs are pure values: parsing never builds a DAG or touches the
// filesystem, so they are cheap to pass around, compare and serialize.
// to_string() emits the canonical form (parameters in sorted key order),
// which parse() round-trips and the registry uses as its cache key.
#pragma once

#include <map>
#include <string>

namespace cello::sim {

struct WorkloadSpec {
  std::string kind;
  /// key=value overrides; std::map keeps the canonical form deterministic.
  std::map<std::string, std::string> params;

  /// Parse "kind[:k=v,k=v,...]".  A bare token without '=' is shorthand for
  /// "dataset=<token>" ("gnn:cora").  Throws cello::Error on an empty kind,
  /// an empty key or value, or a duplicate key.  Values cannot themselves
  /// contain ',' (the parameter separator) — notably mm= file paths.
  static WorkloadSpec parse(const std::string& text);

  /// Canonical spec string: "kind" or "kind:k=v,..." with sorted keys.
  std::string to_string() const;

  bool operator==(const WorkloadSpec& other) const = default;
};

}  // namespace cello::sim
