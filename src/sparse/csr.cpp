#include "sparse/csr.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace cello::sparse {

CsrMatrix CsrMatrix::from_triplets(i64 rows, i64 cols, std::vector<Triplet> entries) {
  for (const auto& t : entries) {
    CELLO_CHECK_MSG(t.row >= 0 && t.row < rows, "triplet row out of range: " << t.row);
    CELLO_CHECK_MSG(t.col >= 0 && t.col < cols, "triplet col out of range: " << t.col);
  }
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  CsrMatrix m(rows, cols);
  m.col_idx_.reserve(entries.size());
  m.values_.reserve(entries.size());
  for (size_t i = 0; i < entries.size();) {
    size_t j = i;
    double sum = 0.0;
    while (j < entries.size() && entries[j].row == entries[i].row &&
           entries[j].col == entries[i].col) {
      sum += entries[j].value;
      ++j;
    }
    m.col_idx_.push_back(entries[i].col);
    m.values_.push_back(sum);
    ++m.row_ptr_[entries[i].row + 1];
    i = j;
  }
  for (i64 r = 0; r < rows; ++r) m.row_ptr_[r + 1] += m.row_ptr_[r];
  return m;
}

double CsrMatrix::max_row_nnz() const {
  i64 mx = 0;
  for (i64 r = 0; r < rows_; ++r) mx = std::max(mx, row_nnz(r));
  return static_cast<double>(mx);
}

double CsrMatrix::avg_row_nnz() const {
  return rows_ == 0 ? 0.0 : static_cast<double>(nnz()) / static_cast<double>(rows_);
}

CsrMatrix CsrMatrix::transpose() const {
  std::vector<Triplet> ts;
  ts.reserve(values_.size());
  for (i64 r = 0; r < rows_; ++r)
    for (i64 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      ts.push_back({col_idx_[k], r, values_[k]});
  return from_triplets(cols_, rows_, std::move(ts));
}

void CsrMatrix::spmv(std::span<const double> x, std::span<double> y) const {
  CELLO_CHECK(static_cast<i64>(x.size()) == cols_);
  CELLO_CHECK(static_cast<i64>(y.size()) == rows_);
  for (i64 r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (i64 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) acc += values_[k] * x[col_idx_[k]];
    y[r] = acc;
  }
}

void CsrMatrix::validate() const {
  CELLO_CHECK(static_cast<i64>(row_ptr_.size()) == rows_ + 1);
  CELLO_CHECK(row_ptr_.front() == 0);
  CELLO_CHECK(row_ptr_.back() == nnz());
  for (i64 r = 0; r < rows_; ++r) {
    CELLO_CHECK_MSG(row_ptr_[r] <= row_ptr_[r + 1], "row_ptr not monotone at row " << r);
    for (i64 k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      CELLO_CHECK(col_idx_[k] >= 0 && col_idx_[k] < cols_);
      if (k + 1 < row_ptr_[r + 1])
        CELLO_CHECK_MSG(col_idx_[k] < col_idx_[k + 1], "unsorted columns in row " << r);
    }
  }
}

}  // namespace cello::sparse
