// Synthetic sparse-matrix generators.
//
// The paper evaluates on SuiteSparse matrices (fv1, shallow_water1,
// G2_circuit, nasa4704) and OMEGA's GNN graphs (cora, protein).  Those files
// are not available offline, so we generate matrices with the *same shape
// statistics* (rows, nnz, occupancy profile) — the quantities that determine
// traffic and reuse in the simulator.  See DESIGN.md §2 for the substitution
// rationale.
#pragma once

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace cello::sparse {

/// FEM-style banded matrix (stencil neighbourhoods): symmetric positive
/// definite, ~target_nnz stored entries, diagonally dominant so CG converges.
CsrMatrix make_fem_banded(i64 n, i64 target_nnz, Rng& rng);

/// Circuit-simulation style: strong diagonal plus sparse random off-diagonal
/// couplings (irregular row occupancy), SPD-ified by diagonal dominance.
CsrMatrix make_circuit(i64 n, i64 target_nnz, Rng& rng);

/// Power-law (graph adjacency) pattern for GNN datasets; returns the
/// normalized adjacency with self loops (A_hat = A + I, row-normalized).
CsrMatrix make_powerlaw_graph(i64 n, i64 target_nnz, Rng& rng);

/// Make any square matrix strictly diagonally dominant (hence SPD when
/// symmetrized) by lifting its diagonal; used by tests and solvers.
CsrMatrix diagonally_dominant(const CsrMatrix& a, double margin = 1.0);

}  // namespace cello::sparse
