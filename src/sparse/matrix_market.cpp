#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cello::sparse {

namespace {

/// Cap the triplet reservation for a header we have not yet corroborated
/// with actual data: a lying "1 1 9000000000000000000" size line must produce
/// a clean truncation error when the body ends, not a bad_alloc inside
/// reserve().  The vector still grows to any honest nnz.
constexpr size_t kMaxTrustedReserve = size_t{1} << 20;

}  // namespace

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  CELLO_CHECK_MSG(std::getline(in, line), "empty matrix market stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  std::transform(object.begin(), object.end(), object.begin(), ::tolower);
  std::transform(fmt.begin(), fmt.end(), fmt.begin(), ::tolower);
  std::transform(field.begin(), field.end(), field.begin(), ::tolower);
  std::transform(symmetry.begin(), symmetry.end(), symmetry.begin(), ::tolower);
  CELLO_CHECK_MSG(banner == "%%MatrixMarket", "not a MatrixMarket file");
  CELLO_CHECK_MSG(object == "matrix", "unsupported MatrixMarket object: " << object);
  CELLO_CHECK_MSG(fmt == "coordinate", "only coordinate format supported");
  CELLO_CHECK_MSG(field == "real" || field == "double" || field == "integer" ||
                      field == "pattern",
                  "unsupported MatrixMarket field: " << field);
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  CELLO_CHECK_MSG(symmetry == "general" || symmetric, "unsupported symmetry: " << symmetry);

  bool have_size_line = false;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') {
      have_size_line = true;
      break;
    }
  }
  CELLO_CHECK_MSG(have_size_line, "matrix market stream ends before the size line");
  std::istringstream sizes(line);
  i64 rows = 0, cols = 0, nnz = 0;
  CELLO_CHECK_MSG(sizes >> rows >> cols >> nnz, "bad size line: " << line);
  CELLO_CHECK_MSG(rows > 0 && cols > 0 && nnz >= 0, "bad size line: " << line);
  // Division form of nnz <= rows*cols, immune to the i64 overflow a hostile
  // header could provoke in the product.
  CELLO_CHECK_MSG(nnz / cols <= rows, "size line claims " << nnz << " entries for a " << rows
                                                          << " x " << cols << " matrix");

  std::vector<Triplet> ts;
  ts.reserve(std::min(static_cast<size_t>(nnz), kMaxTrustedReserve) * (symmetric ? 2 : 1));
  for (i64 i = 0; i < nnz; ++i) {
    CELLO_CHECK_MSG(std::getline(in, line), "truncated matrix market body at entry " << i);
    std::istringstream entry(line);
    i64 r = 0, c = 0;
    double v = 1.0;
    CELLO_CHECK_MSG(entry >> r >> c, "malformed entry " << i << ": '" << line << "'");
    if (!pattern)
      CELLO_CHECK_MSG(entry >> v, "entry " << i << " is missing its value: '" << line << "'");
    CELLO_CHECK_MSG(r >= 1 && r <= rows,
                    "entry " << i << ": row " << r << " outside [1, " << rows << "]");
    CELLO_CHECK_MSG(c >= 1 && c <= cols,
                    "entry " << i << ": col " << c << " outside [1, " << cols << "]");
    ts.push_back({r - 1, c - 1, v});
    if (symmetric && r != c) ts.push_back({c - 1, r - 1, v});
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(ts));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CELLO_CHECK_MSG(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const CsrMatrix& m, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  for (i64 r = 0; r < m.rows(); ++r)
    for (i64 k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k)
      out << (r + 1) << ' ' << (m.col_idx()[k] + 1) << ' ' << m.values()[k] << '\n';
}

void write_matrix_market_file(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  CELLO_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(m, out);
}

}  // namespace cello::sparse
