#include "sparse/matrix_market.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cello::sparse {

CsrMatrix read_matrix_market(std::istream& in) {
  std::string line;
  CELLO_CHECK_MSG(std::getline(in, line), "empty matrix market stream");
  std::istringstream header(line);
  std::string banner, object, fmt, field, symmetry;
  header >> banner >> object >> fmt >> field >> symmetry;
  std::transform(field.begin(), field.end(), field.begin(), ::tolower);
  std::transform(symmetry.begin(), symmetry.end(), symmetry.begin(), ::tolower);
  CELLO_CHECK_MSG(banner == "%%MatrixMarket", "not a MatrixMarket file");
  CELLO_CHECK_MSG(fmt == "coordinate", "only coordinate format supported");
  const bool pattern = (field == "pattern");
  const bool symmetric = (symmetry == "symmetric");
  CELLO_CHECK_MSG(symmetry == "general" || symmetric, "unsupported symmetry: " << symmetry);

  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream sizes(line);
  i64 rows = 0, cols = 0, nnz = 0;
  sizes >> rows >> cols >> nnz;
  CELLO_CHECK_MSG(rows > 0 && cols > 0 && nnz >= 0, "bad size line: " << line);

  std::vector<Triplet> ts;
  ts.reserve(static_cast<size_t>(symmetric ? 2 * nnz : nnz));
  for (i64 i = 0; i < nnz; ++i) {
    CELLO_CHECK_MSG(std::getline(in, line), "truncated matrix market body at entry " << i);
    std::istringstream entry(line);
    i64 r = 0, c = 0;
    double v = 1.0;
    entry >> r >> c;
    if (!pattern) entry >> v;
    ts.push_back({r - 1, c - 1, v});
    if (symmetric && r != c) ts.push_back({c - 1, r - 1, v});
  }
  return CsrMatrix::from_triplets(rows, cols, std::move(ts));
}

CsrMatrix read_matrix_market_file(const std::string& path) {
  std::ifstream in(path);
  CELLO_CHECK_MSG(in.good(), "cannot open " << path);
  return read_matrix_market(in);
}

void write_matrix_market(const CsrMatrix& m, std::ostream& out) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  for (i64 r = 0; r < m.rows(); ++r)
    for (i64 k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k)
      out << (r + 1) << ' ' << (m.col_idx()[k] + 1) << ' ' << m.values()[k] << '\n';
}

void write_matrix_market_file(const CsrMatrix& m, const std::string& path) {
  std::ofstream out(path);
  CELLO_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  write_matrix_market(m, out);
}

}  // namespace cello::sparse
