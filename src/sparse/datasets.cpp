#include "sparse/datasets.hpp"

#include "common/error.hpp"
#include "sparse/generators.hpp"

namespace cello::sparse {

const std::vector<DatasetSpec>& table6_datasets() {
  static const std::vector<DatasetSpec> kDatasets = {
      {"fv1", "2D/3D problem", 9604, 85264, MatrixStyle::FemBanded, 0, 0},
      {"shallow_water1", "Fluid dynamics", 81920, 327680, MatrixStyle::FemBanded, 0, 0},
      {"G2_circuit", "Circuit sim", 150102, 726674, MatrixStyle::Circuit, 0, 0},
      {"nasa4704", "2D/3D problem (BiCGStab)", 4704, 104756, MatrixStyle::FemBanded, 0, 0},
      {"cora", "GCN layer", 2708, 9464, MatrixStyle::PowerLawGraph, 1433, 7},
      {"protein", "GCN layer", 3786, 14456, MatrixStyle::PowerLawGraph, 29, 2},
  };
  return kDatasets;
}

const DatasetSpec& dataset_by_name(const std::string& name) {
  for (const auto& d : table6_datasets())
    if (d.name == name) return d;
  CELLO_CHECK_MSG(false, "unknown dataset: " << name);
  return table6_datasets().front();
}

CsrMatrix instantiate(const DatasetSpec& spec) {
  // Seed from the dataset name so every run regenerates the identical matrix.
  u64 seed = 0xCE110ull;
  for (char c : spec.name) seed = seed * 131 + static_cast<u64>(c);
  Rng rng(seed);
  switch (spec.style) {
    case MatrixStyle::FemBanded: return make_fem_banded(spec.rows, spec.nnz, rng);
    case MatrixStyle::Circuit: return make_circuit(spec.rows, spec.nnz, rng);
    case MatrixStyle::PowerLawGraph: return make_powerlaw_graph(spec.rows, spec.nnz, rng);
  }
  CELLO_CHECK(false);
  return CsrMatrix{};
}

}  // namespace cello::sparse
