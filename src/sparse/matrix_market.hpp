// Minimal Matrix Market (.mtx) reader/writer so users can drop in real
// SuiteSparse matrices in place of the synthetic generators.
#pragma once

#include <iosfwd>
#include <string>

#include "sparse/csr.hpp"

namespace cello::sparse {

/// Supports "matrix coordinate real|integer|pattern general|symmetric".
CsrMatrix read_matrix_market(std::istream& in);
CsrMatrix read_matrix_market_file(const std::string& path);

void write_matrix_market(const CsrMatrix& m, std::ostream& out);
void write_matrix_market_file(const CsrMatrix& m, const std::string& path);

}  // namespace cello::sparse
