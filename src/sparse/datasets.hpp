// Dataset registry mirroring Table VI of the paper.
//
// Each entry records the published shape statistics (rows M, stored nnz, and
// for GNN datasets the feature widths N and O) plus the generator style used
// to synthesize a matrix with those statistics.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sparse/csr.hpp"

namespace cello::sparse {

enum class MatrixStyle { FemBanded, Circuit, PowerLawGraph };

struct DatasetSpec {
  std::string name;
  std::string workload;  ///< Table VI "Workload" column
  i64 rows = 0;
  i64 nnz = 0;
  MatrixStyle style = MatrixStyle::FemBanded;
  /// GNN feature widths (0 when not applicable).
  i64 gnn_in_features = 0;
  i64 gnn_out_features = 0;
};

/// All Table VI datasets: fv1, shallow_water1, G2_circuit, cora, protein,
/// plus nasa4704 used in the BiCGStab plot of Fig. 13.
const std::vector<DatasetSpec>& table6_datasets();

const DatasetSpec& dataset_by_name(const std::string& name);

/// Instantiate the synthetic matrix for a spec (deterministic per name).
CsrMatrix instantiate(const DatasetSpec& spec);

}  // namespace cello::sparse
