#include "sparse/generators.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/error.hpp"

namespace cello::sparse {
namespace {

/// Symmetrize a triplet list (add the transpose entries, halving values so
/// the diagonal scale stays comparable).
void symmetrize(std::vector<Triplet>& ts) {
  const size_t n = ts.size();
  for (size_t i = 0; i < n; ++i)
    if (ts[i].row != ts[i].col) ts.push_back({ts[i].col, ts[i].row, ts[i].value});
}

}  // namespace

CsrMatrix make_fem_banded(i64 n, i64 target_nnz, Rng& rng) {
  CELLO_CHECK(n > 0 && target_nnz >= n);
  // Average off-diagonal band width that hits the nnz target: nnz ~ n * (1 + 2*halfband_used)
  const i64 per_row = std::max<i64>(1, target_nnz / n);
  const i64 half = std::max<i64>(1, (per_row - 1) / 2);

  std::vector<Triplet> ts;
  ts.reserve(static_cast<size_t>(target_nnz) + n);
  for (i64 r = 0; r < n; ++r) ts.push_back({r, r, 4.0 + rng.uniform()});
  // FEM stencils couple nearby unknowns: offsets 1..half plus an occasional
  // long-range coupling (mesh wrap), keeping rows around per_row entries.
  for (i64 r = 0; r < n; ++r) {
    for (i64 d = 1; d <= half; ++d) {
      const i64 c = r + d;
      if (c < n) {
        const double v = -1.0 / static_cast<double>(d);
        ts.push_back({r, c, v});
        ts.push_back({c, r, v});
      }
    }
  }
  // Top up with random symmetric couplings until we reach the target.
  while (static_cast<i64>(ts.size()) < target_nnz && n > 2) {
    const i64 r = static_cast<i64>(rng.bounded(static_cast<u64>(n)));
    const i64 c = static_cast<i64>(rng.bounded(static_cast<u64>(n)));
    if (r == c) continue;
    ts.push_back({r, c, -0.1});
    ts.push_back({c, r, -0.1});
  }
  auto m = CsrMatrix::from_triplets(n, n, std::move(ts));
  return diagonally_dominant(m);
}

CsrMatrix make_circuit(i64 n, i64 target_nnz, Rng& rng) {
  CELLO_CHECK(n > 0 && target_nnz >= n);
  std::vector<Triplet> ts;
  ts.reserve(static_cast<size_t>(target_nnz) + n);
  for (i64 r = 0; r < n; ++r) ts.push_back({r, r, 2.0});
  // Circuit matrices have highly irregular connectivity: most nodes couple to
  // a couple of neighbours, a few hub nodes (rails) couple to many.
  const i64 off_target = std::max<i64>(0, target_nnz - n) / 2;  // pairs
  i64 made = 0;
  while (made < off_target) {
    i64 r;
    if (rng.uniform() < 0.05) {
      r = static_cast<i64>(rng.bounded(std::max<u64>(1, static_cast<u64>(n) / 100)));  // hub
    } else {
      r = static_cast<i64>(rng.bounded(static_cast<u64>(n)));
    }
    const i64 c = static_cast<i64>(rng.bounded(static_cast<u64>(n)));
    if (r == c) continue;
    ts.push_back({r, c, -0.5 * rng.uniform()});
    ++made;
  }
  symmetrize(ts);
  auto m = CsrMatrix::from_triplets(n, n, std::move(ts));
  return diagonally_dominant(m);
}

CsrMatrix make_powerlaw_graph(i64 n, i64 target_nnz, Rng& rng) {
  CELLO_CHECK(n > 0 && target_nnz >= n);
  std::vector<Triplet> ts;
  for (i64 r = 0; r < n; ++r) ts.push_back({r, r, 1.0});  // self loops (A + I)
  const i64 edges = std::max<i64>(0, (target_nnz - n)) / 2;
  // Preferential-attachment flavoured endpoints: sample with a squared bias
  // toward low ids, producing the heavy-tailed degree profile of citation
  // and PPI graphs.
  std::set<std::pair<i64, i64>> seen;
  i64 made = 0;
  while (made < edges) {
    const double u1 = rng.uniform();
    const i64 a = static_cast<i64>(u1 * u1 * static_cast<double>(n));
    const i64 b = static_cast<i64>(rng.bounded(static_cast<u64>(n)));
    if (a == b || a >= n) continue;
    if (!seen.insert({std::min(a, b), std::max(a, b)}).second) continue;
    ts.push_back({a, b, 1.0});
    ts.push_back({b, a, 1.0});
    ++made;
  }
  // Row-normalize (random-walk normalization used by GCN pipelines).
  auto m = CsrMatrix::from_triplets(n, n, std::move(ts));
  std::vector<Triplet> norm;
  norm.reserve(static_cast<size_t>(m.nnz()));
  for (i64 r = 0; r < n; ++r) {
    const double deg = static_cast<double>(m.row_nnz(r));
    for (i64 k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k)
      norm.push_back({r, m.col_idx()[k], m.values()[k] / deg});
  }
  return CsrMatrix::from_triplets(n, n, std::move(norm));
}

CsrMatrix diagonally_dominant(const CsrMatrix& a, double margin) {
  std::vector<Triplet> ts;
  ts.reserve(static_cast<size_t>(a.nnz()) + a.rows());
  std::vector<double> rowsum(a.rows(), 0.0);
  std::vector<bool> has_diag(a.rows(), false);
  for (i64 r = 0; r < a.rows(); ++r) {
    for (i64 k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      const i64 c = a.col_idx()[k];
      const double v = a.values()[k];
      if (c == r) {
        has_diag[r] = true;
        continue;  // replaced below
      }
      rowsum[r] += std::abs(v);
      ts.push_back({r, c, v});
    }
  }
  for (i64 r = 0; r < a.rows(); ++r) ts.push_back({r, r, rowsum[r] + margin});
  return CsrMatrix::from_triplets(a.rows(), a.cols(), std::move(ts));
}

}  // namespace cello::sparse
