// Compressed sparse row/column matrices — the storage substrate the paper's
// SpMM operator (line 1 of CG) runs on.  CHORD stores data and metadata in
// this format (Sec. V-B "Handling sparsity").
#pragma once

#include <span>
#include <vector>

#include "common/types.hpp"

namespace cello::sparse {

/// One coordinate-format entry used while assembling a matrix.
struct Triplet {
  i64 row = 0;
  i64 col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(i64 rows, i64 cols) : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {}

  /// Build from triplets; duplicate coordinates are summed.
  static CsrMatrix from_triplets(i64 rows, i64 cols, std::vector<Triplet> entries);

  i64 rows() const { return rows_; }
  i64 cols() const { return cols_; }
  i64 nnz() const { return static_cast<i64>(values_.size()); }

  std::span<const i64> row_ptr() const { return row_ptr_; }
  std::span<const i64> col_idx() const { return col_idx_; }
  std::span<const double> values() const { return values_; }

  i64 row_nnz(i64 r) const { return row_ptr_[r + 1] - row_ptr_[r]; }
  double max_row_nnz() const;
  double avg_row_nnz() const;

  /// Bytes moved when streaming this matrix (values + column ids + row ptrs),
  /// matching ir::TensorDesc::bytes for compressed tensors.
  Bytes stream_bytes(Bytes word_bytes = 4) const {
    return static_cast<Bytes>(nnz()) * (word_bytes + 4) + static_cast<Bytes>(rows_ + 1) * 4;
  }

  CsrMatrix transpose() const;

  /// y = A * x for a single dense vector.
  void spmv(std::span<const double> x, std::span<double> y) const;

  /// Structural invariants: sorted column indices per row, monotone row_ptr,
  /// indices in range.  Throws cello::Error on violation.
  void validate() const;

 private:
  i64 rows_ = 0;
  i64 cols_ = 0;
  std::vector<i64> row_ptr_;
  std::vector<i64> col_idx_;
  std::vector<double> values_;
};

}  // namespace cello::sparse
