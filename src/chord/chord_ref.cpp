#include "chord/chord_ref.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace cello::chord {
namespace {

/// Priority rule shared with ChordBuffer: sooner next use wins, then higher
/// remaining frequency; dead tensors (freq <= 0) lose to everything.
struct Priority {
  i64 dist;
  i32 freq;
  bool higher_than(const Priority& o) const {
    const i64 a = dist < 0 ? std::numeric_limits<i64>::max() : dist;
    const i64 b = o.dist < 0 ? std::numeric_limits<i64>::max() : o.dist;
    if (a != b) return a < b;
    return freq > o.freq;
  }
};

Priority priority_of(i32 freq, i64 dist) {
  if (freq <= 0) return {-1, 0};
  return {dist, freq};
}

}  // namespace

ChordRefModel::ChordRefModel(Bytes capacity, u32 word_bytes, bool enable_riff, u32 max_entries)
    : capacity_(capacity), word_bytes_(word_bytes), enable_riff_(enable_riff),
      max_entries_(max_entries) {
  CELLO_CHECK(capacity_ > 0 && word_bytes_ > 0 && max_entries_ > 0);
  slots_.reserve(capacity_ / word_bytes_);
}

ChordRefModel::Entry* ChordRefModel::find(i32 id) {
  for (auto& e : entries_)
    if (e.id == id) return &e;
  return nullptr;
}

const ChordRefModel::Entry* ChordRefModel::find(i32 id) const {
  for (const auto& e : entries_)
    if (e.id == id) return &e;
  return nullptr;
}

i64 ChordRefModel::resident_words(i32 id) const {
  i64 n = 0;
  for (const auto& s : slots_)
    if (s.tensor == id) ++n;
  return n;
}

Bytes ChordRefModel::resident_bytes(i32 tensor_id) const {
  return static_cast<Bytes>(resident_words(tensor_id)) * word_bytes_;
}

Bytes ChordRefModel::occupied_bytes() const {
  return static_cast<Bytes>(slots_.size()) * word_bytes_;
}

void ChordRefModel::update_reuse(i32 tensor_id, i32 remaining_uses, i64 next_use_distance) {
  if (Entry* e = find(tensor_id)) {
    e->freq = remaining_uses;
    e->dist = next_use_distance;
  }
}

void ChordRefModel::retire(i32 tensor_id) {
  entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                [&](const Entry& e) { return e.id == tensor_id; }),
                 entries_.end());
  slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                              [&](const Slot& s) { return s.tensor == tensor_id; }),
               slots_.end());
}

std::optional<i32> ChordRefModel::pick_victim(const TensorMeta& incoming) const {
  const Priority mine = priority_of(incoming.remaining_uses, incoming.next_use_distance);
  const Entry* victim = nullptr;
  for (const auto& cand : entries_) {
    if (cand.id == incoming.id || resident_words(cand.id) == 0) continue;
    if (!mine.higher_than(priority_of(cand.freq, cand.dist))) continue;
    if (victim == nullptr ||
        priority_of(victim->freq, victim->dist).higher_than(priority_of(cand.freq, cand.dist)))
      victim = &cand;
  }
  if (victim == nullptr) return std::nullopt;
  return victim->id;
}

bool ChordRefModel::place_word(const TensorMeta& t, i64 off) {
  ++cycles_;
  const u64 cap_words = capacity_ / word_bytes_;

  if (slots_.size() < cap_words) {
    // Empty space: enqueue in place — right after t's existing slice so the
    // slice stays contiguous (shifting later slices' indices, Fig. 10).
    auto pos = slots_.end();
    for (auto it = slots_.begin(); it != slots_.end(); ++it)
      if (it->tensor == t.id) pos = it + 1;
    slots_.insert(pos, Slot{t.id, off});
    return true;
  }
  if (!enable_riff_) return false;

  // RIFF: replace at the victim's end_index — pop one word from its tail.
  const auto victim = pick_victim(t);
  if (!victim) return false;
  for (auto it = slots_.rbegin(); it != slots_.rend(); ++it) {
    if (it->tensor == *victim) {
      slots_.erase(std::next(it).base());
      break;
    }
  }
  auto pos = slots_.end();
  for (auto it = slots_.begin(); it != slots_.end(); ++it)
    if (it->tensor == t.id) pos = it + 1;
  slots_.insert(pos, Slot{t.id, off});
  return true;
}

AccessResult ChordRefModel::write_tensor(const TensorMeta& t) {
  CELLO_CHECK(t.bytes > 0);
  const i64 total_words = static_cast<i64>((t.bytes + word_bytes_ - 1) / word_bytes_);

  Entry* e = find(t.id);
  if (e == nullptr) {
    if (entries_.size() >= max_entries_) return {0, t.bytes};
    entries_.push_back({t.id, t.start_addr, t.start_addr + t.bytes, t.remaining_uses,
                        t.next_use_distance});
    e = &entries_.back();
  } else {
    // Footprint change between versions: clamp residency to the new extent.
    e->start_tensor = t.start_addr;
    e->end_tensor = t.start_addr + t.bytes;
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [&](const Slot& s) {
                                  return s.tensor == t.id && s.word_off >= total_words;
                                }),
                 slots_.end());
  }
  e->freq = t.remaining_uses;
  e->dist = t.next_use_distance;

  const i64 resident = resident_words(t.id);  // overwritten in place, SRAM
  i64 placed = resident;
  if (t.remaining_uses > 0) {
    for (i64 off = resident; off < total_words; ++off) {
      if (!place_word(t, off)) break;  // PRELUDE: once a word spills, so does the rest
      ++placed;
    }
  }
  AccessResult r;
  r.sram_bytes = std::min<Bytes>(static_cast<Bytes>(placed) * word_bytes_, t.bytes);
  r.dram_bytes = t.bytes - r.sram_bytes;
  cycles_ += static_cast<u64>(resident);
  return r;
}

AccessResult ChordRefModel::read_tensor(const TensorMeta& t) {
  CELLO_CHECK(t.bytes > 0);
  const i64 total_words = static_cast<i64>((t.bytes + word_bytes_ - 1) / word_bytes_);

  Entry* e = find(t.id);
  i64 resident = 0;
  if (e != nullptr) {
    e->start_tensor = t.start_addr;
    e->end_tensor = t.start_addr + t.bytes;
    slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                                [&](const Slot& s) {
                                  return s.tensor == t.id && s.word_off >= total_words;
                                }),
                 slots_.end());
    resident = std::min<i64>(resident_words(t.id), total_words);
    e->freq = t.remaining_uses;
    e->dist = t.next_use_distance;
  }

  AccessResult r;
  r.sram_bytes = std::min<Bytes>(static_cast<Bytes>(resident) * word_bytes_, t.bytes);
  r.dram_bytes = t.bytes - r.sram_bytes;
  cycles_ += static_cast<u64>(total_words);

  // Allocate-on-read for tensors with future uses.
  if (r.dram_bytes > 0 && t.remaining_uses > 0) {
    if (e == nullptr) {
      if (entries_.size() >= max_entries_) return r;
      entries_.push_back({t.id, t.start_addr, t.start_addr + t.bytes, t.remaining_uses,
                          t.next_use_distance});
    }
    for (i64 off = resident; off < total_words; ++off)
      if (!place_word(t, off)) break;
  }
  return r;
}

void ChordRefModel::check_invariants() const {
  CELLO_CHECK(entries_.size() <= max_entries_);
  CELLO_CHECK(occupied_bytes() <= capacity_);
  // Each tensor's slots form exactly one contiguous run of ascending offsets
  // 0..n-1 (a head-first prefix).  Run order follows FIFO (re-)insertion
  // order, which may differ from index-table order after a full eviction and
  // re-enqueue ("if req.id doesn't exist in FIFO yet: enqueue at end").
  std::vector<i32> run_order;
  size_t cursor = 0;
  while (cursor < slots_.size()) {
    const i32 id = slots_[cursor].tensor;
    CELLO_CHECK_MSG(std::find(run_order.begin(), run_order.end(), id) == run_order.end(),
                    "fragmented slice for tensor " << id);
    run_order.push_back(id);
    CELLO_CHECK_MSG(find(id) != nullptr, "slots held by unknown tensor " << id);
    i64 expect_off = 0;
    while (cursor < slots_.size() && slots_[cursor].tensor == id) {
      CELLO_CHECK_MSG(slots_[cursor].word_off == expect_off,
                      "slice of tensor " << id << " not a head-first prefix");
      ++expect_off;
      ++cursor;
    }
  }
}

}  // namespace cello::chord
