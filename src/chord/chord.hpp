// CHORD: the hybrid implicit/explicit on-chip buffer (Sec. VI of the paper).
//
// Coarse-grained *explicit* side — SCORE supplies, per tensor, its global
// address range plus DAG-level reuse metadata (remaining use frequency and
// next-use distance), mirroring the 512-bit RIFF-index-table entries of
// Fig. 10 (64 entries by default).
//
// Cycle-level *implicit* side — two operand-granularity policies:
//  * PRELUDE: a tensor fills the buffer head-first in queue order; whatever
//    does not fit spills straight to DRAM.  The resident part of a tensor is
//    therefore always a contiguous *prefix*, so a hit test is a single
//    compare against end_chord and the buffer index is computed (not
//    searched) from start_index — no per-line tags.
//  * RIFF: when the buffer is full, an incoming tensor with higher priority
//    (sooner next use, then higher remaining frequency) evicts the *tail* of
//    the lowest-priority resident tensor, one element at a time from its end.
//
// The simulator drives CHORD with tensor-granularity read/write events and
// collects SRAM/DRAM traffic for the Table IV configurations.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cello::chord {

/// Per-tensor coarse-grained metadata handed down by SCORE.
struct TensorMeta {
  i32 id = -1;               ///< stable tensor id (one per base tensor)
  std::string name;
  Addr start_addr = 0;       ///< global (DRAM) start address
  Bytes bytes = 0;           ///< full tensor footprint
  i32 remaining_uses = 0;    ///< RIFF frequency (future consumptions)
  i64 next_use_distance = -1;///< RIFF distance in scheduled ops (-1 = never)
  /// Append-only base (KV-cache decode): `bytes` is this step's logical
  /// extent and `appended_bytes` the part new since the previous step (the
  /// whole extent for the chain head).  CHORD itself ignores these; the
  /// KV-cache policy prices appends instead of full rewrites from them.
  bool append_only = false;
  Bytes appended_bytes = 0;
};

/// One RIFF-index-table entry (Fig. 10).  All fields in bytes/words of the
/// modelled address space; history is the 64-op re-reference bitvector.
struct RiffEntry {
  i32 id = -1;
  std::string name;
  Addr start_tensor = 0;  ///< global address of the tensor head
  Addr end_tensor = 0;    ///< global address one past the tensor end
  Addr end_chord = 0;     ///< global address one past the *resident* prefix
  i64 start_index = 0;    ///< position of the head in the data array (words)
  i64 end_index = 0;      ///< position one past the resident tail (words)
  i32 freq = 0;
  i64 dist = -1;
  u64 history = 0;

  Bytes resident_bytes() const { return end_chord - start_tensor; }
};

struct ChordStats {
  u64 sram_read_lines = 0;
  u64 sram_write_lines = 0;
  Bytes dram_read_bytes = 0;
  Bytes dram_write_bytes = 0;
  u64 metadata_reads = 0;
  u64 metadata_updates = 0;
  u64 prelude_spills = 0;     ///< write portions sent straight to DRAM
  u64 riff_replacements = 0;  ///< tail-eviction events
  u64 read_hits = 0;          ///< tensor-read events fully served on chip
  u64 read_misses = 0;        ///< tensor-read events touching DRAM

  Bytes dram_bytes() const { return dram_read_bytes + dram_write_bytes; }
};

/// Outcome of one tensor-granularity access.
struct AccessResult {
  Bytes sram_bytes = 0;  ///< served by the CHORD data array
  Bytes dram_bytes = 0;  ///< spilled to / fetched from DRAM
};

class ChordBuffer {
 public:
  /// @param enable_riff  false models the PRELUDE-only configuration
  ///                     (Sec. VII-C3): fill without priority replacement.
  ChordBuffer(Bytes capacity, u32 line_bytes = 16, bool enable_riff = true,
              u32 max_entries = 64);

  // ---- SCORE interface (coarse-grained explicit) ---------------------------
  /// Refresh a tensor's reuse metadata (called as the schedule advances).
  void update_reuse(i32 tensor_id, i32 remaining_uses, i64 next_use_distance);
  /// The tensor's last consumer has run: release its residency.
  void retire(i32 tensor_id);

  // ---- datapath interface (implicit, operand granularity) ------------------
  /// Producer writes the full tensor (head first).  Resident prefix is
  /// overwritten in place; growth beyond it allocates via PRELUDE/RIFF and
  /// the unplaced tail spills to DRAM.
  AccessResult write_tensor(const TensorMeta& t);
  /// Consumer reads the full tensor.  The resident prefix hits; the rest is
  /// fetched from DRAM and — when the tensor still has future uses — the
  /// fetched tail is installed (extending the prefix) if space allows.
  AccessResult read_tensor(const TensorMeta& t);

  // ---- introspection ---------------------------------------------------------
  Bytes capacity() const { return capacity_; }
  Bytes occupied_bytes() const;
  Bytes free_bytes() const { return capacity_ - occupied_bytes(); }
  Bytes resident_bytes(i32 tensor_id) const;
  std::optional<RiffEntry> entry(i32 tensor_id) const;
  const std::vector<RiffEntry>& entries() const { return entries_; }
  const ChordStats& stats() const { return stats_; }

  /// Structural invariants: prefix residency, occupancy <= capacity, entry
  /// count <= max_entries, consistent index-table bookkeeping.  Throws.
  void check_invariants() const;

  /// Restore the exact freshly-constructed state (empty index table, zeroed
  /// stats and op clock) without releasing the entry storage — pooled
  /// policies reset between runs instead of reconstructing.
  void reset() {
    entries_.clear();
    stats_ = ChordStats{};
    op_clock_ = 0;
  }

 private:
  struct Priority {
    i64 dist;  ///< -1 normalized to +inf
    i32 freq;
    /// Higher priority = sooner reuse, then more frequent reuse.
    bool higher_than(const Priority& other) const;
  };

  Priority priority_of(const RiffEntry& e) const;
  RiffEntry* find(i32 tensor_id);
  const RiffEntry* find(i32 tensor_id) const;
  /// Allocate up to `want` bytes for `t` (appending to its prefix): free
  /// space first, then RIFF tail-eviction of lower-priority victims.
  Bytes allocate(const TensorMeta& t, RiffEntry& e, Bytes want);
  /// Re-anchor an entry whose tensor footprint changed between versions.
  void sync_extent(RiffEntry& e, const TensorMeta& t);
  void rebuild_indices();
  u64 lines(Bytes b) const { return (b + line_bytes_ - 1) / line_bytes_; }

  Bytes capacity_;
  u32 line_bytes_;
  bool enable_riff_;
  u32 max_entries_;
  std::vector<RiffEntry> entries_;  ///< queue (arrival) order
  ChordStats stats_;
  u64 op_clock_ = 0;  ///< advances per access for the history bitvector
};

}  // namespace cello::chord
