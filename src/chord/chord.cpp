#include "chord/chord.hpp"

#include <algorithm>
#include <limits>

#include "common/error.hpp"

namespace cello::chord {

ChordBuffer::ChordBuffer(Bytes capacity, u32 line_bytes, bool enable_riff, u32 max_entries)
    : capacity_(capacity), line_bytes_(line_bytes), enable_riff_(enable_riff),
      max_entries_(max_entries) {
  CELLO_CHECK(capacity_ > 0 && line_bytes_ > 0 && max_entries_ > 0);
}

bool ChordBuffer::Priority::higher_than(const Priority& other) const {
  const i64 a = dist < 0 ? std::numeric_limits<i64>::max() : dist;
  const i64 b = other.dist < 0 ? std::numeric_limits<i64>::max() : other.dist;
  if (a != b) return a < b;   // sooner next use wins
  return freq > other.freq;   // then more frequent reuse
}

ChordBuffer::Priority ChordBuffer::priority_of(const RiffEntry& e) const {
  if (e.freq <= 0) return {-1, 0};  // dead tensors lose to everything
  return {e.dist, e.freq};
}

RiffEntry* ChordBuffer::find(i32 tensor_id) {
  for (auto& e : entries_)
    if (e.id == tensor_id) return &e;
  return nullptr;
}

const RiffEntry* ChordBuffer::find(i32 tensor_id) const {
  for (const auto& e : entries_)
    if (e.id == tensor_id) return &e;
  return nullptr;
}

Bytes ChordBuffer::occupied_bytes() const {
  Bytes total = 0;
  for (const auto& e : entries_) total += e.resident_bytes();
  return total;
}

Bytes ChordBuffer::resident_bytes(i32 tensor_id) const {
  const RiffEntry* e = find(tensor_id);
  return e ? e->resident_bytes() : 0;
}

std::optional<RiffEntry> ChordBuffer::entry(i32 tensor_id) const {
  const RiffEntry* e = find(tensor_id);
  return e ? std::optional<RiffEntry>(*e) : std::nullopt;
}

void ChordBuffer::update_reuse(i32 tensor_id, i32 remaining_uses, i64 next_use_distance) {
  if (RiffEntry* e = find(tensor_id)) {
    e->freq = remaining_uses;
    e->dist = next_use_distance;
    ++stats_.metadata_updates;
  }
}

void ChordBuffer::retire(i32 tensor_id) {
  auto it = std::find_if(entries_.begin(), entries_.end(),
                         [&](const RiffEntry& e) { return e.id == tensor_id; });
  if (it == entries_.end()) return;
  entries_.erase(it);
  rebuild_indices();
  ++stats_.metadata_updates;
}

void ChordBuffer::sync_extent(RiffEntry& e, const TensorMeta& t) {
  // A new version of a tensor may have a different footprint (e.g. a shape
  // change between problems); re-anchor the entry and clamp residency.
  if (e.start_tensor != t.start_addr || e.end_tensor != t.start_addr + t.bytes) {
    e.start_tensor = t.start_addr;
    e.end_tensor = t.start_addr + t.bytes;
    e.end_chord = std::min(std::max(e.end_chord, e.start_tensor), e.end_tensor);
    if (e.end_chord < e.start_tensor) e.end_chord = e.start_tensor;
    rebuild_indices();
  }
}

void ChordBuffer::rebuild_indices() {
  // Resident slices are contiguous and in queue order in the data array
  // (Fig. 10): indices are prefix sums of resident lengths, in words.
  i64 cursor = 0;
  for (auto& e : entries_) {
    const i64 words = static_cast<i64>(e.resident_bytes() / 4);
    e.start_index = cursor;
    e.end_index = cursor + words;
    cursor += words;
  }
}

Bytes ChordBuffer::allocate(const TensorMeta& t, RiffEntry& e, Bytes want) {
  Bytes granted = std::min(want, free_bytes());

  if (enable_riff_ && granted < want) {
    // RIFF: steal tail bytes from strictly lower-priority victims, worst
    // victim first, until satisfied or no victim remains.
    const Priority mine{t.next_use_distance, t.remaining_uses};
    while (granted < want) {
      RiffEntry* victim = nullptr;
      for (auto& cand : entries_) {
        if (cand.id == t.id || cand.resident_bytes() == 0) continue;
        if (!mine.higher_than(priority_of(cand))) continue;
        if (victim == nullptr || priority_of(*victim).higher_than(priority_of(cand)))
          victim = &cand;
      }
      if (victim == nullptr) break;
      const Bytes steal = std::min<Bytes>(want - granted, victim->resident_bytes());
      victim->end_chord -= steal;  // evict from the victim's tail
      ++stats_.riff_replacements;
      granted += steal;
    }
  }

  e.end_chord += granted;
  rebuild_indices();
  if (granted > 0) ++stats_.metadata_updates;
  return granted;
}

AccessResult ChordBuffer::write_tensor(const TensorMeta& t) {
  CELLO_CHECK(t.bytes > 0);
  ++op_clock_;
  ++stats_.metadata_reads;

  RiffEntry* e = find(t.id);
  if (e == nullptr) {
    if (entries_.size() >= max_entries_) {
      // Index table full: the whole tensor streams to DRAM.
      ++stats_.prelude_spills;
      stats_.dram_write_bytes += t.bytes;
      return {0, t.bytes};
    }
    RiffEntry fresh;
    fresh.id = t.id;
    fresh.name = t.name;
    fresh.start_tensor = t.start_addr;
    fresh.end_tensor = t.start_addr + t.bytes;
    fresh.end_chord = t.start_addr;  // nothing resident yet
    entries_.push_back(fresh);
    e = &entries_.back();
    rebuild_indices();
  }
  sync_extent(*e, t);
  e->freq = t.remaining_uses;
  e->dist = t.next_use_distance;
  e->history = (e->history << 1) | 1u;

  // PRELUDE: the resident prefix is overwritten in place; growth beyond it
  // is allocated head-first and the unplaced tail spills to DRAM (Fig. 9).
  const Bytes resident = e->resident_bytes();
  Bytes to_place = t.bytes > resident ? t.bytes - resident : 0;
  Bytes granted = 0;
  if (to_place > 0 && t.remaining_uses > 0) granted = allocate(t, *e, to_place);

  AccessResult r;
  r.sram_bytes = resident + granted;
  r.dram_bytes = t.bytes - r.sram_bytes;
  if (r.dram_bytes > 0) ++stats_.prelude_spills;
  stats_.sram_write_lines += lines(r.sram_bytes);
  stats_.dram_write_bytes += r.dram_bytes;
  return r;
}

AccessResult ChordBuffer::read_tensor(const TensorMeta& t) {
  CELLO_CHECK(t.bytes > 0);
  ++op_clock_;
  ++stats_.metadata_reads;

  RiffEntry* e = find(t.id);
  if (e) sync_extent(*e, t);
  const Bytes resident = e ? std::min<Bytes>(e->resident_bytes(), t.bytes) : 0;
  const Bytes missing = t.bytes - resident;

  AccessResult r;
  r.sram_bytes = resident;
  r.dram_bytes = missing;
  stats_.sram_read_lines += lines(resident);
  stats_.dram_read_bytes += missing;
  if (missing == 0)
    ++stats_.read_hits;
  else
    ++stats_.read_misses;

  if (e) {
    e->freq = t.remaining_uses;
    e->dist = t.next_use_distance;
    e->history = (e->history << 1) | 1u;
  }

  // Allocate-on-read for tensors with future uses: install the fetched tail
  // (for externals like the sparse matrix A this is how the first iteration
  // seeds CHORD for the remaining nine).
  if (missing > 0 && t.remaining_uses > 0) {
    if (e == nullptr) {
      if (entries_.size() >= max_entries_) return r;
      RiffEntry fresh;
      fresh.id = t.id;
      fresh.name = t.name;
      fresh.start_tensor = t.start_addr;
      fresh.end_tensor = t.start_addr + t.bytes;
      fresh.end_chord = t.start_addr;
      fresh.freq = t.remaining_uses;
      fresh.dist = t.next_use_distance;
      entries_.push_back(fresh);
      e = &entries_.back();
      rebuild_indices();
    }
    const Bytes granted = allocate(t, *e, missing);
    stats_.sram_write_lines += lines(granted);
  }
  return r;
}

void ChordBuffer::check_invariants() const {
  CELLO_CHECK(entries_.size() <= max_entries_);
  Bytes total = 0;
  i64 cursor = 0;
  for (const auto& e : entries_) {
    CELLO_CHECK_MSG(e.end_chord >= e.start_tensor, "negative residency for " << e.name);
    CELLO_CHECK_MSG(e.end_chord <= e.end_tensor, "residency beyond tensor end for " << e.name);
    CELLO_CHECK_MSG(e.start_index == cursor, "index table out of sync for " << e.name);
    CELLO_CHECK(e.end_index - e.start_index == static_cast<i64>(e.resident_bytes() / 4));
    cursor = e.end_index;
    total += e.resident_bytes();
  }
  CELLO_CHECK_MSG(total <= capacity_, "occupancy " << total << " exceeds capacity " << capacity_);
}

}  // namespace cello::chord
