// Word-granular reference model of the CHORD hardware mechanism — a literal
// transcription of the Fig. 10 pseudocode, processing one word per "cycle":
//
//   On a request word for tensor t:
//     hit  <- req.addr < end_chord[t]           (single compare, no tag match)
//     on hit: index = (req.addr - start_tensor[t]) + start_index[t]
//     on miss: go to the PRELUDE controller:
//       if empty slot exists: enqueue at end (or in place after t's slice)
//       elif victim_tensor exists (RIFF): replace at end_index[victim],
//            shifting the intervening slices' indices
//       else: send_to_DRAM
//
// The data array is modelled explicitly as a vector of word slots tagged
// with (tensor id, word offset), so tests can check the physical layout:
// slices stay contiguous and ordered, and every bookkeeping index in the
// RIFF table matches the slot contents.
//
// This model is intentionally slow (O(words)); `ChordBuffer` is the fast
// operand-granularity model the simulator uses.  `tests/chord_diff_test.cpp`
// drives both with identical traces and asserts they agree byte-for-byte.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "chord/chord.hpp"

namespace cello::chord {

class ChordRefModel {
 public:
  ChordRefModel(Bytes capacity, u32 word_bytes = 4, bool enable_riff = true,
                u32 max_entries = 64);

  /// Same SCORE-side interface as ChordBuffer.
  void update_reuse(i32 tensor_id, i32 remaining_uses, i64 next_use_distance);
  void retire(i32 tensor_id);

  /// Producer writes the whole tensor, one word per cycle, head first.
  AccessResult write_tensor(const TensorMeta& t);
  /// Consumer reads the whole tensor, one word per cycle.
  AccessResult read_tensor(const TensorMeta& t);

  Bytes resident_bytes(i32 tensor_id) const;
  Bytes occupied_bytes() const;
  u64 cycles() const { return cycles_; }

  /// Physical-layout invariants: each tensor's slots form one contiguous run
  /// holding word offsets [0, n) in order; run boundaries match the derived
  /// index table.  Throws cello::Error on violation.
  void check_invariants() const;

 private:
  struct Slot {
    i32 tensor = -1;   ///< -1 = empty
    i64 word_off = 0;  ///< offset of the held word within its tensor
  };
  struct Entry {
    i32 id = -1;
    Addr start_tensor = 0;
    Addr end_tensor = 0;
    i32 freq = 0;
    i64 dist = -1;
  };

  Entry* find(i32 id);
  const Entry* find(i32 id) const;
  /// Resident prefix length of a tensor, in words.
  i64 resident_words(i32 id) const;
  /// RIFF victim choice: the strictly lower-priority resident tensor with the
  /// worst (latest, then least frequent) reuse.  Matches ChordBuffer.
  std::optional<i32> pick_victim(const TensorMeta& incoming) const;
  /// Place one more word (offset `off`) of tensor t; returns false -> DRAM.
  bool place_word(const TensorMeta& t, i64 off);
  void compact_order();

  Bytes capacity_;
  u32 word_bytes_;
  bool enable_riff_;
  u32 max_entries_;
  std::vector<Slot> slots_;       ///< physical data array, queue-ordered
  std::vector<Entry> entries_;    ///< arrival-ordered index table
  u64 cycles_ = 0;
};

}  // namespace cello::chord
