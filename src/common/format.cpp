#include "common/format.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace cello {

std::string format_bytes(double bytes) {
  static const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  int u = 0;
  while (bytes >= 1024.0 && u < 4) {
    bytes /= 1024.0;
    ++u;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << bytes << ' ' << kUnits[u];
  return os.str();
}

std::string format_rate(double per_second, const std::string& unit) {
  static const char* kPrefix[] = {"", "K", "M", "G", "T", "P"};
  int p = 0;
  while (per_second >= 1000.0 && p < 5) {
    per_second /= 1000.0;
    ++p;
  }
  std::ostringstream os;
  os << std::fixed << std::setprecision(2) << per_second << ' ' << kPrefix[p] << unit;
  return os.str();
}

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string format_sci(double log10_value, int precision) {
  const double exp = std::floor(log10_value);
  const double mant = std::pow(10.0, log10_value - exp);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mant << "e+" << static_cast<long long>(exp);
  return os.str();
}

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {
  CELLO_CHECK(!header_.empty());
}

void TextTable::add_row(std::vector<std::string> row) {
  CELLO_CHECK_MSG(row.size() == header_.size(),
                  "row width " << row.size() << " != header width " << header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::to_string() const {
  std::vector<size_t> width(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_)
    for (size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());

  auto emit_row = [&](const std::vector<std::string>& row, std::ostringstream& os) {
    os << "| ";
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c])) << row[c];
      os << (c + 1 == row.size() ? " |" : " | ");
    }
    os << '\n';
  };

  std::ostringstream os;
  emit_row(header_, os);
  os << '|';
  for (size_t c = 0; c < header_.size(); ++c) os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& row : rows_) emit_row(row, os);
  return os.str();
}

}  // namespace cello
