#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace cello {

double mean(std::span<const double> xs) {
  CELLO_CHECK(!xs.empty());
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double geomean(std::span<const double> xs) {
  CELLO_CHECK(!xs.empty());
  double s = 0;
  for (double x : xs) {
    CELLO_CHECK_MSG(x > 0, "geomean requires positive values, got " << x);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) {
  CELLO_CHECK(!xs.empty());
  std::sort(xs.begin(), xs.end());
  const size_t n = xs.size();
  return (n % 2 == 1) ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

double min_of(std::span<const double> xs) {
  CELLO_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  CELLO_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.mean = mean(xs);
  s.geomean = geomean(xs);
  s.median = median(std::vector<double>(xs.begin(), xs.end()));
  s.min = min_of(xs);
  s.max = max_of(xs);
  return s;
}

}  // namespace cello
