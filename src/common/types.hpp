// Fundamental scalar aliases and unit helpers shared by every Cello module.
#pragma once

#include <cstdint>
#include <cstddef>

namespace cello {

using i32 = std::int32_t;
using i64 = std::int64_t;
using u8 = std::uint8_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Byte counts and addresses in the simulated global address space.
using Addr = u64;
using Bytes = u64;

inline constexpr Bytes operator""_KiB(unsigned long long v) { return v * 1024ull; }
inline constexpr Bytes operator""_MiB(unsigned long long v) { return v * 1024ull * 1024ull; }
inline constexpr Bytes operator""_GiB(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }

/// Integer ceiling division for non-negative operands.
template <typename T>
constexpr T ceil_div(T num, T den) {
  return (num + den - 1) / den;
}

}  // namespace cello
