#include "common/rng.hpp"

#include <cmath>

namespace cello {

double Rng::normal() {
  if (have_cached_) {
    have_cached_ = false;
    return cached_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 1e-300);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_ = r * std::sin(theta);
  have_cached_ = true;
  return r * std::cos(theta);
}

}  // namespace cello
