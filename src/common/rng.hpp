// Deterministic, seedable RNG (xoshiro256**) so every synthetic dataset and
// property test is reproducible across platforms without depending on
// std::mt19937 distribution quirks.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace cello {

class Rng {
 public:
  explicit Rng(u64 seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    u64 s = seed;
    for (auto& w : state_) {
      s += 0x9E3779B97F4A7C15ull;
      u64 z = s;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      w = z ^ (z >> 31);
    }
  }

  u64 next() {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) with rejection sampling (bound > 0).
  u64 bounded(u64 bound) {
    const u64 threshold = (0 - bound) % bound;
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Approximately standard-normal deviate (Box–Muller on cached pairs).
  double normal();

 private:
  static constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

  u64 state_[4]{};
  bool have_cached_ = false;
  double cached_ = 0.0;
};

}  // namespace cello
