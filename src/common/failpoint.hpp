// Deterministic fault injection: a process-global registry of named
// fail-point sites that recovery paths consult at runtime.  Production code
// plants a site (`failpoint::maybe_throw("sweep.cell", key)` or
// `failpoint::hit("checkpoint.append", key)`); tests and CI arm the site with
// a spec describing exactly which hit should fault and how.  Unarmed sites
// cost one relaxed atomic load, so the hooks stay in release builds and the
// recovery paths CI exercises are the recovery paths production runs.
//
// Spec grammar (also accepted via the CELLO_FAILPOINTS environment variable,
// `site=spec[;site=spec...]`, read once on first use):
//
//   spec    := action ['@' trigger]
//   action  := throw | short_write | torn_write
//   trigger := '*'            every hit (default)
//            | <N>            the N-th hit of the site only (1-based)
//            | key=<value>    every hit whose key equals <value>
//
// `throw` raises cello::Error at the site; `short_write` / `torn_write` are
// interpreted by file-writing sites (write a prefix / garble bytes, then
// fail) to simulate crashes mid-write.  Hit counting is per site under one
// lock, so N-th-hit triggers are deterministic for single-threaded runs and
// key triggers are deterministic under any thread count.
#pragma once

#include <optional>
#include <string>

#include "common/types.hpp"

namespace cello::failpoint {

enum class Action { Throw, ShortWrite, TornWrite };

struct Fault {
  Action action;
  std::string site;
};

/// Arm one site.  Throws cello::Error on a malformed spec.  Re-arming a site
/// replaces its spec and resets its hit counter.
void arm(const std::string& site, const std::string& spec);

/// Arm every `site=spec` entry of a ';'-separated list (the CELLO_FAILPOINTS
/// format).  Empty segments are ignored; malformed entries throw.
void arm_from_string(const std::string& config);

void disarm(const std::string& site);
void disarm_all();

/// Hits recorded for an armed site (0 when the site is not armed).
u64 hit_count(const std::string& site);

/// Record one hit of `site` and return the armed fault when its trigger
/// matches this hit.  The caller interprets the action; throw-sites can use
/// maybe_throw below.  CELLO_FAILPOINTS is parsed on the first call.
std::optional<Fault> hit(const std::string& site, const std::string& key = {});

/// hit() + throw cello::Error for Action::Throw; other actions also throw
/// (a pure throw-site has no write to shorten or tear).
void maybe_throw(const std::string& site, const std::string& key = {});

}  // namespace cello::failpoint
