// Lightweight invariant checking. Violations throw cello::Error so tests can
// assert on misuse of the public API without aborting the process.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace cello {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "CELLO_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace cello

#define CELLO_CHECK(expr)                                                       \
  do {                                                                          \
    if (!(expr)) ::cello::detail::throw_check_failure(#expr, __FILE__, __LINE__, {}); \
  } while (0)

#define CELLO_CHECK_MSG(expr, msg)                                              \
  do {                                                                          \
    if (!(expr)) {                                                              \
      std::ostringstream _cello_os;                                             \
      _cello_os << msg;                                                         \
      ::cello::detail::throw_check_failure(#expr, __FILE__, __LINE__, _cello_os.str()); \
    }                                                                           \
  } while (0)
