#include "common/failpoint.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>

#include "common/error.hpp"

namespace cello::failpoint {

namespace {

enum class TriggerKind { Always, NthHit, KeyEquals };

struct ArmedSite {
  Action action = Action::Throw;
  TriggerKind trigger = TriggerKind::Always;
  u64 nth = 0;           ///< NthHit: 1-based hit that faults
  std::string key;       ///< KeyEquals: the key that faults
  u64 hits = 0;
};

std::mutex g_mu;
std::map<std::string, ArmedSite>& sites() {
  static std::map<std::string, ArmedSite> s;
  return s;
}
// Fast path: unarmed processes skip the lock entirely, so sweep inner loops
// pay one relaxed load per site visit.
std::atomic<int> g_armed{0};

Action parse_action(const std::string& text, const std::string& spec) {
  if (text == "throw") return Action::Throw;
  if (text == "short_write") return Action::ShortWrite;
  if (text == "torn_write") return Action::TornWrite;
  throw Error("failpoint: unknown action '" + text + "' in spec '" + spec +
              "' (expected throw|short_write|torn_write)");
}

ArmedSite parse_spec(const std::string& spec) {
  ArmedSite site;
  const size_t at = spec.find('@');
  site.action = parse_action(spec.substr(0, at), spec);
  if (at == std::string::npos) return site;
  const std::string trigger = spec.substr(at + 1);
  if (trigger == "*") return site;
  if (trigger.rfind("key=", 0) == 0) {
    site.trigger = TriggerKind::KeyEquals;
    site.key = trigger.substr(4);
    return site;
  }
  if (trigger.empty() || trigger.find_first_not_of("0123456789") != std::string::npos ||
      trigger.size() > 18)
    throw Error("failpoint: malformed trigger '" + trigger + "' in spec '" + spec +
                "' (expected *, a 1-based hit number, or key=<value>)");
  site.trigger = TriggerKind::NthHit;
  site.nth = std::strtoull(trigger.c_str(), nullptr, 10);
  if (site.nth == 0)
    throw Error("failpoint: hit numbers are 1-based; '" + spec + "' asks for hit 0");
  return site;
}

/// CELLO_FAILPOINTS is folded in exactly once, before the first hit() — so a
/// fail-point-armed CLI run needs no plumbing, while programmatic arm()/
/// disarm_all() calls in tests keep full control afterwards.
void ensure_env_armed() {
  static std::once_flag once;
  std::call_once(once, [] {
    if (const char* env = std::getenv("CELLO_FAILPOINTS")) arm_from_string(env);
  });
}

}  // namespace

void arm(const std::string& site, const std::string& spec) {
  CELLO_CHECK_MSG(!site.empty(), "failpoint: empty site name");
  ArmedSite armed = parse_spec(spec);  // validate before mutating the registry
  std::lock_guard<std::mutex> lock(g_mu);
  auto [it, inserted] = sites().insert_or_assign(site, std::move(armed));
  (void)it;
  if (inserted) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void arm_from_string(const std::string& config) {
  size_t start = 0;
  while (start <= config.size()) {
    const size_t end = config.find(';', start);
    const std::string entry =
        config.substr(start, end == std::string::npos ? std::string::npos : end - start);
    if (!entry.empty()) {
      const size_t eq = entry.find('=');
      // "site=throw@key=X" splits at the FIRST '=': the site name cannot
      // contain one, the trigger may.
      if (eq == std::string::npos || eq == 0)
        throw Error("failpoint: malformed entry '" + entry + "' (expected site=spec)");
      arm(entry.substr(0, eq), entry.substr(eq + 1));
    }
    if (end == std::string::npos) break;
    start = end + 1;
  }
}

void disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (sites().erase(site) != 0) g_armed.fetch_sub(1, std::memory_order_relaxed);
}

void disarm_all() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_armed.fetch_sub(static_cast<int>(sites().size()), std::memory_order_relaxed);
  sites().clear();
}

u64 hit_count(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mu);
  const auto it = sites().find(site);
  return it == sites().end() ? 0 : it->second.hits;
}

std::optional<Fault> hit(const std::string& site, const std::string& key) {
  ensure_env_armed();
  if (g_armed.load(std::memory_order_relaxed) == 0) return std::nullopt;
  std::lock_guard<std::mutex> lock(g_mu);
  const auto it = sites().find(site);
  if (it == sites().end()) return std::nullopt;
  ArmedSite& armed = it->second;
  ++armed.hits;
  switch (armed.trigger) {
    case TriggerKind::Always: break;
    case TriggerKind::NthHit:
      if (armed.hits != armed.nth) return std::nullopt;
      break;
    case TriggerKind::KeyEquals:
      if (key != armed.key) return std::nullopt;
      break;
  }
  return Fault{armed.action, site};
}

void maybe_throw(const std::string& site, const std::string& key) {
  if (const auto fault = hit(site, key)) {
    throw Error("injected fault at failpoint '" + site + "'" +
                (key.empty() ? std::string() : " (key '" + key + "')"));
  }
}

}  // namespace cello::failpoint
