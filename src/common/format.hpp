// Human-readable formatting and a fixed-width text table used by every bench
// binary to print paper-style tables/series.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace cello {

/// "1.50 KiB", "4.00 MiB", ...
std::string format_bytes(double bytes);
/// "123.4 GFLOP/s" style throughput.
std::string format_rate(double per_second, const std::string& unit);
/// Fixed precision double.
std::string format_double(double v, int precision = 3);
/// Scientific notation like "1.0e+80" for search-space sizes.
std::string format_sci(double log10_value, int precision = 1);

/// Minimal aligned-column table printer (markdown-ish output).
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);
  /// Render with column alignment; every row must match the header width.
  std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cello
