// Small statistics helpers used by the benchmark harness when aggregating
// per-dataset results (geomean speedups, means, summaries).
#pragma once

#include <span>
#include <vector>

namespace cello {

double mean(std::span<const double> xs);
double geomean(std::span<const double> xs);
double median(std::vector<double> xs);  // by value: sorts a copy
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

struct Summary {
  double mean = 0, geomean = 0, median = 0, min = 0, max = 0;
};

Summary summarize(std::span<const double> xs);

}  // namespace cello
