#include "noc/topology.hpp"

#include <algorithm>
#include <queue>
#include <sstream>

#include "common/error.hpp"

namespace cello::noc {

namespace {

// Routing tables are O(verts^2); cap the fabric well past any sweep we run
// but below anything that would silently eat memory.
constexpr i64 kMaxNodes = 1024;

i64 parse_count(const std::string& digits, const std::string& whole) {
  CELLO_CHECK_MSG(!digits.empty(), "topology '" << whole << "': missing node count");
  i64 v = 0;
  for (char c : digits) {
    CELLO_CHECK_MSG(c >= '0' && c <= '9',
                    "topology '" << whole << "': '" << digits << "' is not a positive integer");
    v = v * 10 + (c - '0');
    CELLO_CHECK_MSG(v <= kMaxNodes, "topology '" << whole << "': at most " << kMaxNodes
                                                 << " nodes supported");
  }
  CELLO_CHECK_MSG(v >= 1, "topology '" << whole << "': node count must be >= 1");
  return v;
}

/// Squarest factoring r x (n/r) with r <= n/r; primes degrade to a 1xN chain.
std::pair<i64, i64> auto_factor(i64 n) {
  i64 best = 1;
  for (i64 r = 1; r * r <= n; ++r) {
    if (n % r == 0) best = r;
  }
  return {best, n / best};
}

TopoKind parse_kind(const std::string& name, const std::string& whole) {
  if (name == "mesh") return TopoKind::Mesh;
  if (name == "torus") return TopoKind::Torus;
  if (name == "ring") return TopoKind::Ring;
  if (name == "crossbar") return TopoKind::Crossbar;
  throw Error("topology '" + whole + "': unknown kind '" + name +
              "' (expected mesh, torus, ring, or crossbar)");
}

}  // namespace

const char* to_string(TopoKind kind) {
  switch (kind) {
    case TopoKind::Single: return "single";
    case TopoKind::Mesh: return "mesh";
    case TopoKind::Torus: return "torus";
    case TopoKind::Ring: return "ring";
    case TopoKind::Crossbar: return "crossbar";
  }
  return "?";
}

std::string TopologySpec::to_string() const {
  if (kind == TopoKind::Single) return "1";
  std::ostringstream os;
  os << noc::to_string(kind) << ':';
  if (kind == TopoKind::Mesh || kind == TopoKind::Torus) {
    os << rows << 'x' << cols;
  } else {
    os << cols;
  }
  return os.str();
}

TopologySpec TopologySpec::parse(const std::string& text) {
  CELLO_CHECK_MSG(!text.empty(), "topology spec is empty");
  if (text == "1" || text == "single") return TopologySpec{};

  const size_t colon = text.find(':');
  CELLO_CHECK_MSG(colon != std::string::npos,
                  "topology '" << text << "': missing size (e.g. mesh:4x4, ring:16); "
                               << "bare kinds resolve only against an explicit node count");
  const TopoKind kind = parse_kind(text.substr(0, colon), text);
  const std::string shape = text.substr(colon + 1);

  TopologySpec spec;
  spec.kind = kind;
  if (kind == TopoKind::Mesh || kind == TopoKind::Torus) {
    const size_t x = shape.find('x');
    if (x == std::string::npos) {
      // "mesh:12": factor into the squarest grid rather than padding up —
      // every requested node exists, none are invented.
      const i64 n = parse_count(shape, text);
      const auto [r, c] = auto_factor(n);
      spec.rows = r;
      spec.cols = c;
    } else {
      spec.rows = parse_count(shape.substr(0, x), text);
      spec.cols = parse_count(shape.substr(x + 1), text);
      CELLO_CHECK_MSG(spec.rows * spec.cols <= kMaxNodes,
                      "topology '" << text << "': at most " << kMaxNodes << " nodes supported");
    }
  } else {
    CELLO_CHECK_MSG(shape.find('x') == std::string::npos,
                    "topology '" << text << "': " << noc::to_string(kind)
                                 << " takes a node count, not a shape");
    spec.rows = 1;
    spec.cols = parse_count(shape, text);
  }
  CELLO_CHECK_MSG(spec.nodes() >= 2,
                  "topology '" << text << "': needs at least 2 nodes; use '1' for a single chip");
  return spec;
}

TopologySpec resolve_topology(const std::string& text, i64 nodes) {
  CELLO_CHECK_MSG(nodes >= 1, "node count must be >= 1 (got " << nodes << ")");
  CELLO_CHECK_MSG(nodes <= kMaxNodes, "at most " << kMaxNodes << " nodes supported");
  const bool bare = text == "mesh" || text == "torus" || text == "ring" || text == "crossbar";
  if (nodes == 1) {
    CELLO_CHECK_MSG(bare || text == "1" || text == "single",
                    "topology '" << text << "' names a multi-node fabric but nodes=1");
    return TopologySpec{};
  }
  if (bare) {
    TopologySpec spec;
    spec.kind = parse_kind(text, text);
    if (spec.kind == TopoKind::Mesh || spec.kind == TopoKind::Torus) {
      const auto [r, c] = auto_factor(nodes);
      spec.rows = r;
      spec.cols = c;
    } else {
      spec.rows = 1;
      spec.cols = nodes;
    }
    return spec;
  }
  const TopologySpec spec = TopologySpec::parse(text);
  CELLO_CHECK_MSG(spec.nodes() == nodes, "topology '" << text << "' has " << spec.nodes()
                                                      << " nodes but nodes=" << nodes
                                                      << " was requested");
  return spec;
}

Topology Topology::build(const TopologySpec& spec) {
  Topology t;
  t.spec_ = spec;
  const i64 n = spec.nodes();
  const i64 verts = spec.kind == TopoKind::Crossbar ? n + 1 : n;
  t.verts_ = verts;
  t.nbrs_.assign(static_cast<size_t>(verts), {});

  // Neighbor lists in canonical preference order; the BFS tie-break below
  // picks the first neighbor on a shortest path, so this order *is* the
  // routing function.  Mesh/torus list X (column) moves before Y moves:
  // dimension-ordered XY routing, deadlock-free on the mesh.
  auto connect = [&t](i32 v, i32 nb) {
    for (const auto& [existing, link] : t.nbrs_[static_cast<size_t>(v)]) {
      if (existing == nb) return;  // torus wrap on a 2-wide dim folds onto itself
    }
    t.nbrs_[static_cast<size_t>(v)].push_back({nb, t.links_.size()});
    t.links_.push_back(Link{v, nb});
  };

  switch (spec.kind) {
    case TopoKind::Single:
      break;
    case TopoKind::Mesh:
    case TopoKind::Torus: {
      const bool wrap = spec.kind == TopoKind::Torus;
      const i64 rows = spec.rows, cols = spec.cols;
      for (i64 r = 0; r < rows; ++r) {
        for (i64 c = 0; c < cols; ++c) {
          const i32 v = static_cast<i32>(r * cols + c);
          auto at = [&](i64 rr, i64 cc) { return static_cast<i32>(rr * cols + cc); };
          if (c > 0) connect(v, at(r, c - 1));
          else if (wrap && cols > 1) connect(v, at(r, cols - 1));
          if (c + 1 < cols) connect(v, at(r, c + 1));
          else if (wrap && cols > 1) connect(v, at(r, 0));
          if (r > 0) connect(v, at(r - 1, c));
          else if (wrap && rows > 1) connect(v, at(rows - 1, c));
          if (r + 1 < rows) connect(v, at(r + 1, c));
          else if (wrap && rows > 1) connect(v, at(0, c));
        }
      }
      break;
    }
    case TopoKind::Ring:
      for (i64 v = 0; v < n; ++v) {
        connect(static_cast<i32>(v), static_cast<i32>((v + n - 1) % n));
        connect(static_cast<i32>(v), static_cast<i32>((v + 1) % n));
      }
      break;
    case TopoKind::Crossbar: {
      const i32 sw = static_cast<i32>(n);  // internal switch vertex
      for (i64 v = 0; v < n; ++v) {
        connect(static_cast<i32>(v), sw);  // injection port
        connect(sw, static_cast<i32>(v)); // ejection port
      }
      break;
    }
  }

  // All-pairs shortest paths: one BFS per destination (links are symmetric,
  // so forward BFS from the destination yields distances *to* it).
  constexpr i32 kInf = INT32_MAX;
  t.dist_.assign(static_cast<size_t>(verts) * static_cast<size_t>(verts), kInf);
  t.next_.assign(static_cast<size_t>(verts) * static_cast<size_t>(verts), -1);
  for (i32 d = 0; d < verts; ++d) {
    t.dist_[t.idx(d, d)] = 0;
    std::queue<i32> q;
    q.push(d);
    while (!q.empty()) {
      const i32 v = q.front();
      q.pop();
      for (const auto& [nb, link] : t.nbrs_[static_cast<size_t>(v)]) {
        if (t.dist_[t.idx(nb, d)] == kInf) {
          t.dist_[t.idx(nb, d)] = t.dist_[t.idx(v, d)] + 1;
          q.push(nb);
        }
      }
    }
    for (i32 v = 0; v < verts; ++v) {
      if (v == d) continue;
      CELLO_CHECK_MSG(t.dist_[t.idx(v, d)] != kInf,
                      "topology '" << spec.to_string() << "': node " << v << " cannot reach "
                                   << d);
      for (const auto& [nb, link] : t.nbrs_[static_cast<size_t>(v)]) {
        if (t.dist_[t.idx(nb, d)] == t.dist_[t.idx(v, d)] - 1) {
          t.next_[t.idx(v, d)] = nb;
          break;
        }
      }
    }
  }
  for (i64 s = 1; s < n; ++s) {
    t.depth_ = std::max(t.depth_, t.hops(static_cast<i32>(s), 0));
  }
  return t;
}

i64 Topology::route(i32 src, i32 dst, Bytes bytes, std::vector<Bytes>* link_bytes) const {
  CELLO_CHECK(src >= 0 && src < verts_ && dst >= 0 && dst < verts_);
  i64 hops = 0;
  i32 v = src;
  while (v != dst) {
    const i32 nb = next_[idx(v, dst)];
    if (link_bytes != nullptr) {
      for (const auto& [vertex, link] : nbrs_[static_cast<size_t>(v)]) {
        if (vertex == nb) {
          (*link_bytes)[link] += bytes;
          break;
        }
      }
    }
    v = nb;
    ++hops;
    CELLO_CHECK(hops <= verts_);
  }
  return hops;
}

}  // namespace cello::noc
