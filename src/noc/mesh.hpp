// Mesh NoC hop model for the multi-node scalable dataflow of Sec. V-B.
//
// SCORE parallelizes the dominant rank across nodes so pipelines stay inside
// a cluster and only the *small* tensors cross the NoC.  The alternative —
// splitting a pipeline across nodes — moves the skewed M-by-N intermediate.
// This model quantifies both strategies (the Fig. 8 bottom-row argument):
//   naive:  SIZE_R           = M * N                      words moved
//   score:  SIZE_small * hops = N * N' * (hops_bcast + hops_reduce)
#pragma once

#include <cmath>

#include "common/types.hpp"

namespace cello::noc {

struct MeshNoc {
  i64 nodes = 1;           ///< PEs/clusters participating
  double hop_energy_pj_per_word = 0.8;

  i64 side() const { return static_cast<i64>(std::ceil(std::sqrt(static_cast<double>(nodes)))); }

  /// Worst-case hops of a tree broadcast on a 2D mesh: 2*(side-1).
  i64 broadcast_hops() const { return nodes <= 1 ? 0 : 2 * (side() - 1); }
  /// Reduction mirrors the broadcast tree.
  i64 reduce_hops() const { return broadcast_hops(); }
};

struct DataflowTraffic {
  double naive_words = 0;  ///< pipeline split across nodes: move the skewed tensor
  double score_words = 0;  ///< cluster-local pipelines: move small tensors x hops
  double ratio() const { return score_words > 0 ? naive_words / score_words : 0.0; }
};

/// Compare the two multi-node strategies for a skewed-GEMM stage with large
/// rank M and small ranks N, N'.
DataflowTraffic compare_multinode(i64 m, i64 n, i64 nprime, const MeshNoc& mesh);

}  // namespace cello::noc
