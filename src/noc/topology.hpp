// Topology-scripted NoC model for multi-chip scale-out (Sec. V-B).
//
// A topology is named by a spec string, not an enum — the Garnet-standalone
// idiom — so sweeps can treat the fabric as just another axis:
//
//   "1"            single chip (no NoC)
//   "mesh:4x4"     2D mesh, rows x cols (rectangular shapes allowed)
//   "torus:2x8"    2D torus with wraparound links
//   "mesh:12"      auto-factored into the squarest RxC grid (here 3x4)
//   "ring:16"      1D ring
//   "crossbar:8"   single-stage switch (every node one hop from the fabric)
//
// `Topology::build` expands a spec into an explicit node/link graph and
// precomputes all-pairs shortest-path routing tables by per-destination BFS
// with a dimension-ordered tie-break: on mesh/torus the preferred next hop
// exhausts X (column) moves before Y moves, which is exactly XY routing and
// therefore deadlock-free on the mesh (torus/ring additionally assume the
// usual dateline virtual channels).  Transfers are priced by walking routes
// and accumulating per-link byte counts, so link contention and fabric
// saturation are visible instead of being averaged away.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cello::noc {

enum class TopoKind { Single, Mesh, Torus, Ring, Crossbar };

const char* to_string(TopoKind kind);

/// A parsed, canonicalized topology spec.  `to_string(parse(s))` is the
/// canonical spelling: auto-factored counts print their explicit shape
/// ("mesh:12" -> "mesh:3x4"), so equal fabrics compare equal as strings.
struct TopologySpec {
  TopoKind kind = TopoKind::Single;
  i64 rows = 1;  ///< 1 for ring/crossbar/single
  i64 cols = 1;  ///< node count for ring/crossbar

  i64 nodes() const { return rows * cols; }
  std::string to_string() const;

  /// Parse a spec string; throws Error with the offending text on any
  /// malformed kind, shape, or count (including "ring:1" and "mesh:0x4").
  static TopologySpec parse(const std::string& text);

  bool operator==(const TopologySpec&) const = default;
};

/// Resolve a topology for a concrete node count.  `text` may be a bare kind
/// ("mesh", "torus", "ring", "crossbar") — auto-shaped for `nodes` — or an
/// explicit spec, whose node count must then match `nodes` exactly; a
/// mismatch is an error, never a silent pad (the MeshNoc::side() trap).
TopologySpec resolve_topology(const std::string& text, i64 nodes);

/// One directed fabric link.
struct Link {
  i32 src = 0;
  i32 dst = 0;
};

class Topology {
 public:
  static Topology build(const TopologySpec& spec);

  const TopologySpec& spec() const { return spec_; }
  /// Compute nodes (excludes the crossbar's internal switch vertex).
  i64 nodes() const { return spec_.nodes(); }
  size_t num_links() const { return links_.size(); }
  const std::vector<Link>& links() const { return links_; }

  /// Shortest-path hop count between compute nodes.
  i32 hops(i32 src, i32 dst) const { return dist_[idx(src, dst)]; }
  /// First vertex on the preferred shortest path src -> dst (src != dst).
  i32 next_hop(i32 src, i32 dst) const { return next_[idx(src, dst)]; }
  /// Max hops from any node to node 0 — the collective tree depth.
  i32 depth() const { return depth_; }

  /// Walk the routed path src -> dst, adding `bytes` to every traversed
  /// link's entry in `link_bytes` (sized num_links()).  Returns hop count.
  i64 route(i32 src, i32 dst, Bytes bytes, std::vector<Bytes>* link_bytes) const;

 private:
  size_t idx(i32 src, i32 dst) const {
    return static_cast<size_t>(src) * static_cast<size_t>(verts_) + static_cast<size_t>(dst);
  }

  TopologySpec spec_;
  i64 verts_ = 1;  ///< compute nodes + the crossbar switch vertex if any
  std::vector<Link> links_;
  /// Per-vertex neighbors in canonical (dimension-ordered) preference order,
  /// paired with the id of the link to that neighbor.
  std::vector<std::vector<std::pair<i32, size_t>>> nbrs_;
  std::vector<i32> dist_;
  std::vector<i32> next_;
  i32 depth_ = 0;
};

}  // namespace cello::noc
