#include "noc/mesh.hpp"

namespace cello::noc {

DataflowTraffic compare_multinode(i64 m, i64 n, i64 nprime, const MeshNoc& mesh) {
  DataflowTraffic t;
  t.naive_words = static_cast<double>(m) * static_cast<double>(n);
  t.score_words = static_cast<double>(n) * static_cast<double>(nprime) *
                  static_cast<double>(mesh.broadcast_hops() + mesh.reduce_hops());
  return t;
}

}  // namespace cello::noc
