// trace::TraceSink — op-level run observability.
//
// The simulator narrates a run into a sink (per-step compute spans, per-group
// DRAM spans, buffer-occupancy counters, NoC collective spans) when one is
// armed through sim::RunArtifacts::trace; a null sink costs one pointer test
// per scheduled step.  Timestamps are *simulated* seconds — never wallclock —
// so the same run always produces the same events: traces are deterministic,
// diffable, and safe to check in as goldens.
//
// ChromeTraceWriter serializes the events as Chrome trace_event JSON
// ({"traceEvents":[...]}, the "Trace Event Format"), which loads directly in
// Perfetto (https://ui.perfetto.dev) and chrome://tracing with zero custom
// viewer code.  See the README's Observability section for a walkthrough.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace cello::trace {

/// One event argument: a key plus a pre-rendered JSON value token ("3",
/// "1.5", "\"cg\"").  Pre-rendering keeps the sink interface free of a
/// variant type and makes the emitted bytes deterministic by construction.
struct TraceArg {
  std::string key;
  std::string json;
};

TraceArg arg(const std::string& key, i64 value);
TraceArg arg(const std::string& key, u64 value);
TraceArg arg(const std::string& key, double value);
TraceArg arg(const std::string& key, const std::string& value);

/// Consumer of one run's trace events.  (pid, tid) pairs name "tracks": the
/// simulator uses one pid per run with tid lanes for the schedule (compute),
/// DRAM, buffer occupancy and — on multi-node runs — NoC collectives.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// Declare a (pid, tid) track before events appear on it: `process` names
  /// the pid group ("cello-sim"), `name` the tid lane ("schedule", "dram").
  virtual void track(i32 pid, i32 tid, const std::string& process,
                     const std::string& name) = 0;

  /// Complete event ("ph":"X"): `name` occupies [ts, ts + dur) on (pid, tid).
  virtual void span(i32 pid, i32 tid, const std::string& name, double ts_seconds,
                    double dur_seconds, const std::vector<TraceArg>& args) = 0;

  /// Counter sample ("ph":"C"): `series` has `value` from ts onward.
  virtual void counter(i32 pid, i32 tid, const std::string& series, double ts_seconds,
                       Bytes value) = 0;
};

/// Streaming Chrome trace_event writer: every event is serialized to the
/// stream as it arrives (one JSON object per line inside "traceEvents"), so
/// arbitrarily long runs trace in constant memory.  finish() closes the
/// array; the destructor implies it.  Timestamps convert to the format's
/// microsecond unit with fixed decimal formatting (hexfloat — the repo's
/// result-file idiom — is not valid JSON).
class ChromeTraceWriter final : public TraceSink {
 public:
  explicit ChromeTraceWriter(std::ostream& out) : out_(&out) {}
  ~ChromeTraceWriter() override { finish(); }
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;

  void track(i32 pid, i32 tid, const std::string& process,
             const std::string& name) override;
  void span(i32 pid, i32 tid, const std::string& name, double ts_seconds,
            double dur_seconds, const std::vector<TraceArg>& args) override;
  void counter(i32 pid, i32 tid, const std::string& series, double ts_seconds,
               Bytes value) override;

  /// Close the traceEvents array and flush the stream; idempotent.
  void finish();

  u64 events() const { return events_; }

 private:
  /// Open the document / separate from the previous event, then position the
  /// stream at the start of a new event object.
  std::ostream& begin_event();

  std::ostream* out_;
  std::vector<i32> named_pids_;  ///< pids whose process_name metadata went out
  u64 events_ = 0;
  bool finished_ = false;
};

}  // namespace cello::trace
