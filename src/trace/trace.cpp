#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace cello::trace {

namespace {

/// Deterministic decimal rendering for JSON number tokens.  %.12g is stable
/// for a given double on every libc we build against and keeps timestamps
/// readable; exactness to the bit is not required here (metrics files own
/// that contract via hexfloat — which JSON numbers cannot carry).
std::string render(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.12g", v);
  return buf;
}

std::string render(i64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string render(u64 v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

/// Escape for a JSON string literal (quotes included in the result).
std::string quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

/// Simulated seconds -> the trace_event format's microsecond unit.
std::string render_us(double seconds) { return render(seconds * 1e6); }

void write_args(std::ostream& out, const std::vector<TraceArg>& args) {
  out << ",\"args\":{";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ',';
    out << quote(args[i].key) << ':' << args[i].json;
  }
  out << '}';
}

}  // namespace

TraceArg arg(const std::string& key, i64 value) { return {key, render(value)}; }
TraceArg arg(const std::string& key, u64 value) { return {key, render(value)}; }
TraceArg arg(const std::string& key, double value) { return {key, render(value)}; }
TraceArg arg(const std::string& key, const std::string& value) {
  return {key, quote(value)};
}

std::ostream& ChromeTraceWriter::begin_event() {
  std::ostream& out = *out_;
  out << (events_ == 0 ? "{\"traceEvents\":[\n" : ",\n");
  ++events_;
  return out;
}

void ChromeTraceWriter::track(i32 pid, i32 tid, const std::string& process,
                              const std::string& name) {
  // One process_name metadata event per pid, then the thread_name lane.
  if (std::find(named_pids_.begin(), named_pids_.end(), pid) == named_pids_.end()) {
    named_pids_.push_back(pid);
    begin_event() << "{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
                  << ",\"tid\":" << tid << ",\"args\":{\"name\":" << quote(process) << "}}";
  }
  begin_event() << "{\"name\":\"thread_name\",\"ph\":\"M\",\"ts\":0,\"pid\":" << pid
                << ",\"tid\":" << tid << ",\"args\":{\"name\":" << quote(name) << "}}";
}

void ChromeTraceWriter::span(i32 pid, i32 tid, const std::string& name, double ts_seconds,
                             double dur_seconds, const std::vector<TraceArg>& args) {
  std::ostream& out = begin_event();
  out << "{\"name\":" << quote(name) << ",\"ph\":\"X\",\"ts\":" << render_us(ts_seconds)
      << ",\"dur\":" << render_us(dur_seconds) << ",\"pid\":" << pid << ",\"tid\":" << tid;
  write_args(out, args);
  out << '}';
}

void ChromeTraceWriter::counter(i32 pid, i32 tid, const std::string& series,
                                double ts_seconds, Bytes value) {
  begin_event() << "{\"name\":" << quote(series) << ",\"ph\":\"C\",\"ts\":"
                << render_us(ts_seconds) << ",\"pid\":" << pid << ",\"tid\":" << tid
                << ",\"args\":{\"bytes\":" << render(static_cast<u64>(value)) << "}}";
}

void ChromeTraceWriter::finish() {
  if (finished_) return;
  finished_ = true;
  // An empty trace is still a valid document.
  *out_ << (events_ == 0 ? "{\"traceEvents\":[\n]}\n" : "\n]}\n");
  out_->flush();
}

}  // namespace cello::trace
