// Buffer playground: drive a CHORD buffer, an LRU cache and a BRRIP cache
// with the same synthetic tensor-reuse trace and watch the policies diverge.
//
//   ./example_buffer_playground [capacity_KiB] [tensor_KiB] [rounds]
#include <cstdlib>
#include <iostream>

#include "cache/cache.hpp"
#include "chord/chord.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"

int main(int argc, char** argv) {
  using namespace cello;
  const Bytes capacity = (argc > 1 ? (u64)std::atoll(argv[1]) : 256) * 1024;
  const Bytes tensor_bytes = (argc > 2 ? (u64)std::atoll(argv[2]) : 96) * 1024;
  const int rounds = argc > 3 ? std::atoi(argv[3]) : 50;

  std::cout << "Buffer capacity " << format_bytes(static_cast<double>(capacity))
            << ", 4 tensors of " << format_bytes(static_cast<double>(tensor_bytes))
            << ", " << rounds << " rounds\n\n";

  // Trace: per round, tensor 0 ("A") is read; tensors 1..2 are written then
  // read 2 rounds later; tensor 3 is written once and read only every 8th
  // round (the CG "X" pattern).
  chord::ChordBuffer chord_buf(capacity, 16, /*riff=*/true);
  chord::ChordBuffer prelude_buf(capacity, 16, /*riff=*/false);
  cache::SetAssocCache lru(capacity, 16, 8, cache::Policy::Lru);
  cache::SetAssocCache brrip(capacity, 16, 8, cache::Policy::Brrip);

  auto meta = [&](i32 id, i32 uses, i64 dist) {
    chord::TensorMeta m;
    m.id = id;
    m.name = "T" + std::to_string(id);
    m.start_addr = 0x1000'0000ull + static_cast<Addr>(id) * 0x100'0000ull;
    m.bytes = tensor_bytes;
    m.remaining_uses = uses;
    m.next_use_distance = dist;
    return m;
  };
  Bytes chord_dram = 0, prelude_dram = 0;

  for (int r = 0; r < rounds; ++r) {
    auto drive = [&](i32 id, bool write, i32 uses, i64 dist) {
      const Addr base = 0x1000'0000ull + static_cast<Addr>(id) * 0x100'0000ull;
      lru.access_range(base, tensor_bytes, write);
      brrip.access_range(base, tensor_bytes, write);
      const auto c = write ? chord_buf.write_tensor(meta(id, uses, dist))
                           : chord_buf.read_tensor(meta(id, uses, dist));
      const auto p = write ? prelude_buf.write_tensor(meta(id, uses, dist))
                           : prelude_buf.read_tensor(meta(id, uses, dist));
      chord_dram += c.dram_bytes;
      prelude_dram += p.dram_bytes;
    };
    drive(0, false, rounds - r, 1);            // A: reused every round
    drive(1, true, 1, 2);                      // S-like: consumed soon
    drive(2, true, 2, 2);                      // R-like
    drive(1, false, 0, -1);
    drive(2, false, 1, 6);
    drive(3, r % 8 != 0, 1, 8 - (r % 8));      // X-like: long reuse distance
  }

  TextTable t({"policy", "DRAM traffic", "hit behaviour"});
  t.add_row({"CHORD (PRELUDE+RIFF)", format_bytes(static_cast<double>(chord_dram)),
             std::to_string(chord_buf.stats().read_hits) + " full-tensor read hits, " +
                 std::to_string(chord_buf.stats().riff_replacements) + " RIFF tail steals"});
  t.add_row({"PRELUDE only", format_bytes(static_cast<double>(prelude_dram)),
             std::to_string(prelude_buf.stats().read_hits) + " full-tensor read hits"});
  t.add_row({"LRU cache", format_bytes(static_cast<double>(lru.stats().dram_bytes())),
             format_double(100 * lru.stats().hit_rate(), 1) + "% line hit rate"});
  t.add_row({"BRRIP cache", format_bytes(static_cast<double>(brrip.stats().dram_bytes())),
             format_double(100 * brrip.stats().hit_rate(), 1) + "% line hit rate"});
  std::cout << t.to_string();

  std::cout << "\nCHORD state at the end (RIFF-index table):\n";
  TextTable e({"tensor", "resident", "freq", "dist"});
  for (const auto& entry : chord_buf.entries())
    e.add_row({entry.name, format_bytes(static_cast<double>(entry.resident_bytes())),
               std::to_string(entry.freq), std::to_string(entry.dist)});
  std::cout << e.to_string();
  return 0;
}
