// GCN layer inference: functionally compute Y = (A_hat X) W on a synthetic
// citation graph, then schedule and simulate the same layer on every
// accelerator configuration.
//
//   ./example_gnn_inference [dataset]   (cora | protein)
#include <cstdlib>
#include <iostream>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "linalg/dense.hpp"
#include "linalg/spmm.hpp"
#include "score/dependency.hpp"
#include "sparse/datasets.hpp"

int main(int argc, char** argv) {
  using namespace cello;
  const std::string name = argc > 1 ? argv[1] : "cora";
  const auto& spec = sparse::dataset_by_name(name);
  const auto a_hat = sparse::instantiate(spec);

  std::cout << "GCN layer on " << spec.name << ": " << spec.rows << " vertices, "
            << a_hat.nnz() << " edges, " << spec.gnn_in_features << " -> "
            << spec.gnn_out_features << " features\n\n";

  // Functional forward pass.
  Rng rng(7);
  linalg::DenseMatrix x(spec.rows, spec.gnn_in_features);
  for (auto& v : x.data()) v = rng.uniform(-1, 1);
  linalg::DenseMatrix w(spec.gnn_in_features, spec.gnn_out_features);
  for (auto& v : w.data()) v = rng.uniform(-0.1, 0.1);

  linalg::DenseMatrix h(spec.rows, spec.gnn_in_features);
  linalg::spmm(a_hat, x, h);
  linalg::DenseMatrix y(spec.rows, spec.gnn_out_features);
  linalg::gemm(h, w, y);
  std::cout << "forward pass done; |Y|_F = " << format_double(y.frobenius_norm(), 3) << "\n\n";

  // Scheduling view: the same layer as a registry workload ("gnn:cora" /
  // "gnn:protein" — the preset carries the Table VI shapes and the matrix).
  // The single intermediate is pipelineable (no delayed consumer), so
  // Cello == FLAT on GNN layers.
  const auto wl = sim::WorkloadRegistry::global().resolve("gnn:" + name);
  const auto cls = score::classify_scheduled(*wl.dag, wl.dag->topo_order());
  std::cout << "H dependency: " << score::to_string(cls.edge_kind[0]) << "\n\n";

  std::cout << compare_table(*wl.dag, sim::AcceleratorConfig{}, wl.matrix.get());
  return 0;
}
