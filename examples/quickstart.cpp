// Quickstart: build a block-CG workload, let SCORE classify & schedule it,
// and compare all Table IV accelerator configurations.
//
//   ./example_quickstart [M] [N] [nnz] [iterations]
#include <cstdlib>
#include <iostream>

#include "cello/cello.hpp"
#include "score/dependency.hpp"

int main(int argc, char** argv) {
  cello::workloads::CgShape shape;
  shape.m = argc > 1 ? std::atoll(argv[1]) : 81920;
  shape.n = argc > 2 ? std::atoll(argv[2]) : 16;
  shape.nnz = argc > 3 ? std::atoll(argv[3]) : 327680;
  shape.iterations = argc > 4 ? std::atoll(argv[4]) : 10;

  std::cout << "Block CG: M=" << shape.m << " N=" << shape.n << " nnz=" << shape.nnz
            << " iterations=" << shape.iterations << "\n\n";

  const auto dag = cello::workloads::build_cg_dag(shape);
  std::cout << "DAG: " << dag.ops().size() << " operators, " << dag.edges().size()
            << " edges, " << dag.tensors().size() << " tensor instances\n";

  // SCORE's view of the first iteration's dependencies (Fig. 7).
  const auto cls = cello::score::classify_scheduled(dag, dag.topo_order());
  int shown = 0;
  std::cout << "\nEdge classification (first iteration):\n";
  for (const auto& e : dag.edges()) {
    if (shown >= 12) break;
    std::cout << "  " << dag.op(e.src).name << " -> " << dag.op(e.dst).name << "  ["
              << dag.tensor(e.tensor).name << "]  "
              << cello::score::to_string(cls.edge_kind[e.id]) << "\n";
    ++shown;
  }

  cello::sim::AcceleratorConfig arch;  // Table V defaults: 4 MiB, 16384 MACs, 1 TB/s
  std::cout << "\n" << cello::compare_table(dag, arch) << "\n";
  return 0;
}
