// Quickstart: resolve a block-CG workload from the WorkloadRegistry, let
// SCORE classify & schedule it, compare all Table IV accelerator
// configurations, then fan a small spec-driven {workloads} x {configs} grid
// across the SweepRunner.
//
//   ./example_quickstart [M] [N] [nnz] [iterations]
#include <cstdlib>
#include <iostream>
#include <string>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "score/dependency.hpp"

int main(int argc, char** argv) {
  const long long m = argc > 1 ? std::atoll(argv[1]) : 81920;
  const long long n = argc > 2 ? std::atoll(argv[2]) : 16;
  const long long nnz = argc > 3 ? std::atoll(argv[3]) : 327680;
  const long long iters = argc > 4 ? std::atoll(argv[4]) : 10;

  // Workloads are registry specs: the same string works here, in sweeps, and
  // on the cello_cli command line.
  const std::string spec = "cg:m=" + std::to_string(m) + ",n=" + std::to_string(n) +
                           ",nnz=" + std::to_string(nnz) + ",iters=" + std::to_string(iters);
  const auto cg = cello::sim::WorkloadRegistry::global().resolve(spec);
  std::cout << "workload: " << cg.name << "\n";
  std::cout << "DAG: " << cg.dag->ops().size() << " operators, " << cg.dag->edges().size()
            << " edges, " << cg.dag->tensors().size() << " tensor instances\n";

  // SCORE's view of the first iteration's dependencies (Fig. 7).
  const auto cls = cello::score::classify_scheduled(*cg.dag, cg.dag->topo_order());
  int shown = 0;
  std::cout << "\nEdge classification (first iteration):\n";
  for (const auto& e : cg.dag->edges()) {
    if (shown >= 12) break;
    std::cout << "  " << cg.dag->op(e.src).name << " -> " << cg.dag->op(e.dst).name << "  ["
              << cg.dag->tensor(e.tensor).name << "]  "
              << cello::score::to_string(cls.edge_kind[e.id]) << "\n";
    ++shown;
  }

  cello::sim::AcceleratorConfig arch;  // Table V defaults: 4 MiB, 16384 MACs, 1 TB/s
  std::cout << "\n" << cello::compare_table(*cg.dag, arch) << "\n";

  // A spec-driven grid: every row's DAG, schedule and address map are built
  // once and shared read-only across the thread pool.
  std::cout << "Spec-driven sweep (Cello vs Flexagon):\n";
  const auto cells = cello::sim::SweepRunner().run(
      std::vector<std::string>{spec, "gnn:cora", "spmv", "sddmm:heads=4"},
      std::vector<std::string>{"Flexagon", "Cello"}, arch);
  for (const auto& cell : cells)
    std::cout << "  " << cell.workload << " / " << cell.config << ": "
              << cello::format_double(cell.metrics.gmacs_per_sec(), 1) << " GMACs/s, "
              << cello::format_bytes(static_cast<double>(cell.metrics.dram_bytes))
              << " DRAM\n";
  return 0;
}
