// Solver study: numerically solve the same system with block CG and BiCGStab
// on the functional substrate, verify the executed operation sequence matches
// the DAG the scheduler reasons about, then simulate both workloads on Cello.
//
//   ./example_solver_study [M] [N] [nnz]
#include <cstdlib>
#include <iostream>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "linalg/bicgstab.hpp"
#include "linalg/block_cg.hpp"
#include "linalg/spmm.hpp"
#include "sparse/generators.hpp"

int main(int argc, char** argv) {
  using namespace cello;
  const i64 m = argc > 1 ? std::atoll(argv[1]) : 4000;
  const i64 n = argc > 2 ? std::atoll(argv[2]) : 8;
  const i64 nnz = argc > 3 ? std::atoll(argv[3]) : 28000;

  Rng rng(2024);
  const auto a = sparse::make_fem_banded(m, nnz, rng);
  std::cout << "System: M=" << m << " nnz=" << a.nnz() << " (" << format_double(a.avg_row_nnz(), 1)
            << " nnz/row), " << n << " right-hand sides\n\n";

  // Ground truth and right-hand sides.
  linalg::DenseMatrix x_true(m, n);
  for (i64 i = 0; i < m; ++i)
    for (i64 j = 0; j < n; ++j) x_true(i, j) = rng.uniform(-1, 1);
  linalg::DenseMatrix b(m, n);
  linalg::spmm(a, x_true, b);

  // --- block CG, tracing the executed tensor ops ---
  i64 traced_ops = 0;
  const auto cg = linalg::block_cg(a, b, {.max_iterations = 300, .tolerance = 1e-10},
                                   [&](const std::string&, const std::string&) { ++traced_ops; });
  std::cout << "Block CG: " << (cg.converged ? "converged" : "NOT converged") << " in "
            << cg.iterations << " iterations, max error "
            << format_double(linalg::max_abs_diff(cg.x, x_true), 9) << ", " << traced_ops
            << " tensor ops executed\n";

  // --- BiCGStab on the first right-hand side ---
  std::vector<double> b0(m);
  for (i64 i = 0; i < m; ++i) b0[i] = b(i, 0);
  const auto bi = linalg::bicgstab(a, b0, {.max_iterations = 300, .tolerance = 1e-10});
  double err = 0;
  for (i64 i = 0; i < m; ++i) err = std::max(err, std::abs(bi.x[i] - x_true(i, 0)));
  std::cout << "BiCGStab:  " << (bi.converged ? "converged" : "NOT converged") << " in "
            << bi.iterations << " iterations, max error " << format_double(err, 9) << "\n\n";

  // --- the same computations as accelerator workloads ---
  workloads::CgShape cg_shape;
  cg_shape.m = m;
  cg_shape.n = n;
  cg_shape.nnz = a.nnz();
  cg_shape.iterations = std::min<i64>(cg.iterations, 10);
  std::cout << "CG on the accelerator (first " << cg_shape.iterations << " iterations):\n"
            << compare_table(workloads::build_cg_dag(cg_shape), sim::AcceleratorConfig{}, &a)
            << "\n";

  workloads::BiCgStabShape bi_shape;
  bi_shape.m = m;
  bi_shape.nnz = a.nnz();
  bi_shape.iterations = std::min<i64>(bi.iterations, 10);
  std::cout << "BiCGStab on the accelerator (first " << bi_shape.iterations
            << " iterations):\n"
            << compare_table(workloads::build_bicgstab_dag(bi_shape), sim::AcceleratorConfig{},
                             &a);
  return 0;
}
