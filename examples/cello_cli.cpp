// cello_cli — drive the full pipeline from the command line, optionally on a
// real Matrix Market file.  Configurations resolve by name in the
// sim::ConfigRegistry, so every Table IV preset AND every registered novel
// combination (SCORE+LRU, FLAT+CHORD, ...) is runnable.
//
// Usage:
//   ./example_cello_cli simulate  [--workload cg|bicgstab|gnn|resnet|power]
//                                 [--dataset <table6 name> | --mtx <file.mtx>]
//                                 [--n <rhs>] [--iters <k>] [--bw <GB/s>]
//                                 [--sram <MiB>] [--config <name>|all]
//   ./example_cello_cli sweep     [--workload ...] [--dataset ...] [--jobs <n>]
//                                 (all registered configs, parallel SweepRunner)
//   ./example_cello_cli classify  [--workload ...] [--dataset ...]
//   ./example_cello_cli report    [--workload ...] [--dataset ...]   (per-op breakdown)
//   ./example_cello_cli configs   (list registry entries)
//   ./example_cello_cli datasets
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "score/dependency.hpp"
#include "sim/report.hpp"
#include "sparse/datasets.hpp"
#include "sparse/matrix_market.hpp"
#include "workloads/poweriter.hpp"

namespace {

using namespace cello;

struct Options {
  std::string command = "simulate";
  std::string workload = "cg";
  std::string dataset = "shallow_water1";
  std::string mtx;
  std::string config = "all";
  i64 n = 16;
  i64 iters = 10;
  double bw_gbps = 1000;
  Bytes sram_mib = 4;
  u32 jobs = 0;  // 0 = hardware concurrency
};

Options parse(int argc, char** argv) {
  Options o;
  if (argc > 1 && argv[1][0] != '-') o.command = argv[1];
  for (int i = 2; i + 1 < argc + 1; ++i) {
    auto next = [&](const char* flag) -> std::optional<std::string> {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (auto v = next("--workload")) o.workload = *v;
    else if (auto v2 = next("--dataset")) o.dataset = *v2;
    else if (auto v3 = next("--mtx")) o.mtx = *v3;
    else if (auto v4 = next("--n")) o.n = std::stoll(*v4);
    else if (auto v5 = next("--iters")) o.iters = std::stoll(*v5);
    else if (auto v6 = next("--bw")) o.bw_gbps = std::stod(*v6);
    else if (auto v7 = next("--sram")) o.sram_mib = static_cast<Bytes>(std::stoull(*v7));
    else if (auto v8 = next("--config")) o.config = *v8;
    else if (auto v9 = next("--jobs")) o.jobs = static_cast<u32>(std::stoul(*v9));
  }
  return o;
}

int list_configs() {
  TextTable t({"name", "schedule", "buffer", "composition"});
  const auto& registry = sim::ConfigRegistry::global();
  for (const auto& name : registry.names()) {
    const auto& c = registry.at(name);
    t.add_row({c.name, sim::to_string(c.schedule), c.buffer_name, c.describe()});
  }
  std::cout << t.to_string();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  if (o.command == "configs") return list_configs();

  if (o.command == "datasets") {
    TextTable t({"name", "workload", "rows", "nnz", "GNN N", "GNN O"});
    for (const auto& d : sparse::table6_datasets())
      t.add_row({d.name, d.workload, std::to_string(d.rows), std::to_string(d.nnz),
                 std::to_string(d.gnn_in_features), std::to_string(d.gnn_out_features)});
    std::cout << t.to_string();
    return 0;
  }

  // Resolve the matrix: explicit .mtx beats the synthetic dataset.
  sparse::CsrMatrix matrix;
  std::string source;
  if (!o.mtx.empty()) {
    matrix = sparse::read_matrix_market_file(o.mtx);
    source = o.mtx;
  } else {
    matrix = sparse::instantiate(sparse::dataset_by_name(o.dataset));
    source = o.dataset + " (synthetic)";
  }
  std::cout << "matrix: " << source << "  M=" << matrix.rows() << "  nnz=" << matrix.nnz()
            << "\n";

  // Build the requested workload DAG.
  ir::TensorDag dag;
  if (o.workload == "cg") {
    dag = workloads::build_cg_dag({matrix.rows(), o.n, matrix.nnz(), o.iters, 4});
  } else if (o.workload == "bicgstab") {
    dag = workloads::build_bicgstab_dag({matrix.rows(), matrix.nnz(), 1, o.iters, 4});
  } else if (o.workload == "gnn") {
    const auto& spec = sparse::dataset_by_name(o.dataset);
    dag = workloads::build_gnn_dag({matrix.rows(), matrix.nnz(),
                                    spec.gnn_in_features ? spec.gnn_in_features : 64,
                                    spec.gnn_out_features ? spec.gnn_out_features : 16, 4});
  } else if (o.workload == "resnet") {
    dag = workloads::build_resnet_block_dag({});
  } else if (o.workload == "power") {
    dag = workloads::build_power_iteration_dag({matrix.rows(), matrix.nnz(), o.iters, 4});
  } else {
    std::cerr << "unknown workload: " << o.workload << "\n";
    return 1;
  }
  std::cout << "workload: " << o.workload << "  (" << dag.ops().size() << " ops, "
            << dag.edges().size() << " edges)\n\n";

  sim::AcceleratorConfig arch;
  arch.dram_bytes_per_sec = o.bw_gbps * 1e9;
  arch.sram_bytes = o.sram_mib * 1024 * 1024;

  if (o.command == "classify") {
    const auto cls = score::classify_scheduled(dag, dag.topo_order());
    TextTable t({"edge", "tensor", "dependency"});
    for (const auto& e : dag.edges())
      t.add_row({dag.op(e.src).name + " -> " + dag.op(e.dst).name,
                 dag.tensor(e.tensor).name, score::to_string(cls.edge_kind[e.id])});
    std::cout << t.to_string();
    return 0;
  }
  if (o.command == "report") {
    const sim::Simulator simulator(arch, &matrix);
    const auto m = simulator.run(dag, "Cello");
    std::cout << "Cello per-op breakdown:\n" << sim::per_op_report(m, arch) << "\n";
    std::cout << "Traffic by tensor:\n" << sim::per_tensor_report(m);
    return 0;
  }
  if (o.command == "sweep") {
    // Every registered configuration — presets and novel combinations — fanned
    // across a thread pool; ordering is deterministic.
    std::vector<sim::SweepWorkload> workloads;
    workloads.push_back({o.workload, std::move(dag), &matrix});
    const sim::SweepRunner runner(o.jobs);
    const auto cells = runner.run(workloads, sim::ConfigRegistry::global().names(), arch);
    TextTable t({"workload", "config", "GMACs/s", "time", "DRAM traffic"});
    for (const auto& cell : cells)
      t.add_row({cell.workload, cell.config, format_double(cell.metrics.gmacs_per_sec(), 2),
                 format_double(cell.metrics.seconds * 1e6, 1) + " us",
                 format_bytes(static_cast<double>(cell.metrics.dram_bytes))});
    std::cout << t.to_string();
    return 0;
  }
  if (o.command == "simulate") {
    if (o.config == "all") {
      std::cout << compare_table(dag, arch, &matrix);
      return 0;
    }
    const sim::Configuration* config = sim::ConfigRegistry::global().find(o.config);
    if (config == nullptr) {
      std::cerr << "unknown config: " << o.config << " (use 'all' or one of:";
      for (const auto& name : sim::ConfigRegistry::global().names()) std::cerr << " " << name;
      std::cerr << ")\n";
      return 1;
    }
    const sim::Simulator simulator(arch, &matrix);
    const auto m = simulator.run(dag, *config);
    std::cout << config->name << " (" << config->describe() << "): "
              << format_double(m.gmacs_per_sec(), 1) << " GMACs/s, "
              << format_bytes(static_cast<double>(m.dram_bytes)) << " DRAM, "
              << format_double(m.seconds * 1e6, 1) << " us\n";
    return 0;
  }
  std::cerr << "unknown command: " << o.command << "\n";
  return 1;
}
