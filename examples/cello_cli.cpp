// cello_cli — drive the full pipeline from the command line, optionally on a
// real Matrix Market file.
//
// Usage:
//   ./example_cello_cli simulate  [--workload cg|bicgstab|gnn|resnet|power]
//                                 [--dataset <table6 name> | --mtx <file.mtx>]
//                                 [--n <rhs>] [--iters <k>] [--bw <GB/s>]
//                                 [--sram <MiB>] [--config <name>|all]
//   ./example_cello_cli classify  [--workload ...] [--dataset ...]
//   ./example_cello_cli report    [--workload ...] [--dataset ...]   (per-op breakdown)
//   ./example_cello_cli datasets
#include <cstring>
#include <iostream>
#include <optional>
#include <string>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "score/dependency.hpp"
#include "sim/report.hpp"
#include "sparse/datasets.hpp"
#include "sparse/matrix_market.hpp"
#include "workloads/poweriter.hpp"

namespace {

using namespace cello;

struct Options {
  std::string command = "simulate";
  std::string workload = "cg";
  std::string dataset = "shallow_water1";
  std::string mtx;
  std::string config = "all";
  i64 n = 16;
  i64 iters = 10;
  double bw_gbps = 1000;
  Bytes sram_mib = 4;
};

Options parse(int argc, char** argv) {
  Options o;
  if (argc > 1 && argv[1][0] != '-') o.command = argv[1];
  for (int i = 2; i + 1 < argc + 1; ++i) {
    auto next = [&](const char* flag) -> std::optional<std::string> {
      if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) return std::string(argv[++i]);
      return std::nullopt;
    };
    if (auto v = next("--workload")) o.workload = *v;
    else if (auto v2 = next("--dataset")) o.dataset = *v2;
    else if (auto v3 = next("--mtx")) o.mtx = *v3;
    else if (auto v4 = next("--n")) o.n = std::stoll(*v4);
    else if (auto v5 = next("--iters")) o.iters = std::stoll(*v5);
    else if (auto v6 = next("--bw")) o.bw_gbps = std::stod(*v6);
    else if (auto v7 = next("--sram")) o.sram_mib = static_cast<Bytes>(std::stoull(*v7));
    else if (auto v8 = next("--config")) o.config = *v8;
  }
  return o;
}

std::optional<sim::ConfigKind> config_by_name(const std::string& name) {
  for (auto k : all_configs())
    if (name == sim::to_string(k)) return k;
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);

  if (o.command == "datasets") {
    TextTable t({"name", "workload", "rows", "nnz", "GNN N", "GNN O"});
    for (const auto& d : sparse::table6_datasets())
      t.add_row({d.name, d.workload, std::to_string(d.rows), std::to_string(d.nnz),
                 std::to_string(d.gnn_in_features), std::to_string(d.gnn_out_features)});
    std::cout << t.to_string();
    return 0;
  }

  // Resolve the matrix: explicit .mtx beats the synthetic dataset.
  sparse::CsrMatrix matrix;
  std::string source;
  if (!o.mtx.empty()) {
    matrix = sparse::read_matrix_market_file(o.mtx);
    source = o.mtx;
  } else {
    matrix = sparse::instantiate(sparse::dataset_by_name(o.dataset));
    source = o.dataset + " (synthetic)";
  }
  std::cout << "matrix: " << source << "  M=" << matrix.rows() << "  nnz=" << matrix.nnz()
            << "\n";

  // Build the requested workload DAG.
  ir::TensorDag dag;
  if (o.workload == "cg") {
    dag = workloads::build_cg_dag({matrix.rows(), o.n, matrix.nnz(), o.iters, 4});
  } else if (o.workload == "bicgstab") {
    dag = workloads::build_bicgstab_dag({matrix.rows(), matrix.nnz(), 1, o.iters, 4});
  } else if (o.workload == "gnn") {
    const auto& spec = sparse::dataset_by_name(o.dataset);
    dag = workloads::build_gnn_dag({matrix.rows(), matrix.nnz(),
                                    spec.gnn_in_features ? spec.gnn_in_features : 64,
                                    spec.gnn_out_features ? spec.gnn_out_features : 16, 4});
  } else if (o.workload == "resnet") {
    dag = workloads::build_resnet_block_dag({});
  } else if (o.workload == "power") {
    dag = workloads::build_power_iteration_dag({matrix.rows(), matrix.nnz(), o.iters, 4});
  } else {
    std::cerr << "unknown workload: " << o.workload << "\n";
    return 1;
  }
  std::cout << "workload: " << o.workload << "  (" << dag.ops().size() << " ops, "
            << dag.edges().size() << " edges)\n\n";

  sim::AcceleratorConfig arch;
  arch.dram_bytes_per_sec = o.bw_gbps * 1e9;
  arch.sram_bytes = o.sram_mib * 1024 * 1024;

  if (o.command == "classify") {
    const auto cls = score::classify_scheduled(dag, dag.topo_order());
    TextTable t({"edge", "tensor", "dependency"});
    for (const auto& e : dag.edges())
      t.add_row({dag.op(e.src).name + " -> " + dag.op(e.dst).name,
                 dag.tensor(e.tensor).name, score::to_string(cls.edge_kind[e.id])});
    std::cout << t.to_string();
    return 0;
  }
  if (o.command == "report") {
    const auto m = run(dag, sim::ConfigKind::Cello, arch, &matrix);
    std::cout << "Cello per-op breakdown:\n" << sim::per_op_report(m, arch) << "\n";
    std::cout << "Traffic by tensor:\n" << sim::per_tensor_report(m);
    return 0;
  }
  if (o.command == "simulate") {
    if (o.config == "all") {
      std::cout << compare_table(dag, arch, &matrix);
    } else if (auto k = config_by_name(o.config)) {
      const auto m = run(dag, *k, arch, &matrix);
      std::cout << sim::to_string(*k) << ": " << format_double(m.gmacs_per_sec(), 1)
                << " GMACs/s, " << format_bytes(static_cast<double>(m.dram_bytes))
                << " DRAM, " << format_double(m.seconds * 1e6, 1) << " us\n";
    } else {
      std::cerr << "unknown config: " << o.config << " (use 'all' or a Table IV name)\n";
      return 1;
    }
    return 0;
  }
  std::cerr << "unknown command: " << o.command << "\n";
  return 1;
}
