// cello_cli — drive the full pipeline from the command line.  Workloads and
// configurations both resolve by name: workloads in the sim::WorkloadRegistry
// (spec strings like "cg:m=65536,n=16", "gnn:cora", "spmv:mm=file.mtx"),
// configurations in the sim::ConfigRegistry (every Table IV preset AND every
// registered novel combination).
//
// Usage:
//   ./example_cello_cli run       [--workload <spec>]... [--config <name>|all]
//                                 [--bw <GB/s>] [--sram <MiB>]
//                                 [--nodes <n>] [--topology mesh|torus:RxC|ring|crossbar]
//                                 [--trace out.json]  (op-level Perfetto trace;
//                                  needs one --workload and a named --config)
//   ./example_cello_cli sweep     [--workload <spec>]... [--jobs <n>]
//                                 [--nodes <n>[,<n>...]] [--topology <kind>[,<kind>...]]
//                                 [--shard <i>/<k>] [--shard-mode contiguous|strided]
//                                 [--out results.json|results.csv]
//                                 [--checkpoint <journal>] [--resume]
//                                 [--keep-going] [--retries <n>]
//                                 [--trace out.json --trace-cell W,C|W,F,C|all]...
//                                 (trace grid cells, by 0-based
//                                  workload/fabric/config indices, to
//                                  Perfetto-loadable trace_event files —
//                                  byte-identical to tracing direct runs.
//                                  --trace-cell repeats to trace several
//                                  cells, or "all" traces every cell; with
//                                  more than one traced cell each writes
//                                  out.cell<N>.json, N the flattened
//                                  row-major cell id)
//                                 (all registered configs, parallel SweepRunner;
//                                  one immutable DAG/schedule per workload row;
//                                  --shard runs one deterministic slice of the
//                                  grid, --out writes a machine-readable,
//                                  bit-exact result file instead of a table.
//                                  --checkpoint journals each completed cell
//                                  crash-safely; --resume continues a killed
//                                  run from its journal, byte-identical to an
//                                  uninterrupted sweep.  --keep-going
//                                  quarantines failing cells as error records
//                                  instead of aborting; --retries re-runs
//                                  transient cell failures)
//   ./example_cello_cli merge     <out.json> <shard.json>...
//                                 (recombine shard files — any order — into the
//                                  exact row-major file a full single-process
//                                  sweep of the same grid writes, byte for byte)
//   ./example_cello_cli classify  [--workload <spec>]
//   ./example_cello_cli report    [--workload <spec>]      (per-op breakdown)
//   ./example_cello_cli workloads (list registered workload kinds + parameters)
//   ./example_cello_cli configs   (list registry entries)
//   ./example_cello_cli datasets
//
// Legacy flags --dataset/--mtx/--n/--iters still work: they fold into each
// spec's parameters where the kind accepts them, unless the spec already
// sets them ("simulate" is kept as an alias of "run").  One behavior change
// vs the pre-registry CLI: without --dataset, each kind resolves its own
// documented default dataset (bicgstab -> nasa4704, gnn -> cora, power ->
// G2_circuit) instead of the old global shallow_water1 default.
#include <algorithm>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "noc/topology.hpp"
#include "score/dependency.hpp"
#include "sim/report.hpp"
#include "sparse/datasets.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cello;

struct Options {
  std::string command = "run";
  std::vector<std::string> workloads;  ///< registry spec strings; empty = {"cg"}
  std::optional<std::string> dataset;  ///< legacy flags, folded into the specs
  std::optional<std::string> mtx;
  std::optional<i64> n;
  std::optional<i64> iters;
  std::string config = "all";
  std::optional<double> bw_gbps;  ///< default 1000
  std::optional<Bytes> sram_mib;  ///< default 4
  u32 jobs = 0;  // 0 = hardware concurrency
  std::optional<std::string> nodes;     ///< run: one count; sweep: comma list
  std::optional<std::string> topology;  ///< run: one spec; sweep: comma list
  std::optional<std::string> shard;       ///< "i/k" slice of the sweep grid
  std::optional<std::string> shard_mode;  ///< contiguous (default) | strided
  std::optional<std::string> out;      ///< sweep: write results here (.json/.csv)
  std::optional<std::string> checkpoint;  ///< sweep: crash-safe cell journal path
  bool resume = false;                    ///< sweep: continue from the journal
  bool keep_going = false;                ///< sweep: quarantine failing cells
  u32 retries = 0;                        ///< sweep: extra attempts per failing cell
  std::optional<std::string> trace;  ///< run/sweep: Chrome trace_event output path
  std::vector<std::string> trace_cells;  ///< sweep: "W,C" / "W,F,C" cells, or "all"
  std::vector<std::string> positional;  ///< merge: <out.json> <shard.json>...
};

Options parse(int argc, char** argv) {
  Options o;
  if (argc > 1 && argv[1][0] != '-') o.command = argv[1];
  for (int i = 2; i + 1 < argc + 1; ++i) {
    auto next = [&](const char* flag) -> std::optional<std::string> {
      if (std::strcmp(argv[i], flag) != 0) return std::nullopt;
      if (i + 1 >= argc) throw Error(std::string("flag ") + flag + " expects a value");
      return std::string(argv[++i]);
    };
    if (auto v = next("--workload")) o.workloads.push_back(*v);
    else if (auto v2 = next("--dataset")) o.dataset = *v2;
    else if (auto v3 = next("--mtx")) o.mtx = *v3;
    else if (auto v4 = next("--n")) o.n = std::stoll(*v4);
    else if (auto v5 = next("--iters")) o.iters = std::stoll(*v5);
    else if (auto v6 = next("--bw")) o.bw_gbps = std::stod(*v6);
    else if (auto v7 = next("--sram")) o.sram_mib = static_cast<Bytes>(std::stoull(*v7));
    else if (auto v8 = next("--config")) o.config = *v8;
    else if (auto v9 = next("--jobs")) o.jobs = static_cast<u32>(std::stoul(*v9));
    else if (auto vn = next("--nodes")) o.nodes = *vn;
    else if (auto vt = next("--topology")) o.topology = *vt;
    else if (auto v10 = next("--shard")) o.shard = *v10;
    else if (auto v11 = next("--shard-mode")) o.shard_mode = *v11;
    else if (auto v12 = next("--out")) o.out = *v12;
    else if (auto v13 = next("--checkpoint")) o.checkpoint = *v13;
    else if (auto v14 = next("--retries")) o.retries = static_cast<u32>(std::stoul(*v14));
    else if (auto v15 = next("--trace")) o.trace = *v15;
    else if (auto v16 = next("--trace-cell")) o.trace_cells.push_back(*v16);
    else if (std::strcmp(argv[i], "--resume") == 0) o.resume = true;
    else if (std::strcmp(argv[i], "--keep-going") == 0) o.keep_going = true;
    else if (argv[i][0] == '-')
      // A typo'd flag ("--shards 2/3") must not silently run a different
      // sweep whose mistake only surfaces at merge time; a known flag with
      // its value missing throws from next() above.
      throw Error(std::string("unknown flag: ") + argv[i]);
    else o.positional.push_back(argv[i]);
  }
  if (o.command != "merge" && !o.positional.empty())
    throw Error("unexpected argument: " + o.positional.front());
  // Flags a command does not consume are rejected rather than silently
  // ignored ("run --out x.json" must not print a table and write nothing;
  // "merge --workload gnn" must not merge an unrelated grid without comment).
  if (o.command != "sweep" && (o.shard || o.out || o.shard_mode))
    throw Error("--shard/--shard-mode/--out apply only to the sweep command");
  if (o.command != "sweep" && (o.checkpoint || o.resume || o.keep_going || o.retries != 0))
    throw Error("--checkpoint/--resume/--keep-going/--retries apply only to the sweep command");
  if ((o.nodes || o.topology) && o.command != "sweep" && o.command != "run" &&
      o.command != "simulate")
    throw Error("--nodes/--topology apply only to the run and sweep commands");
  if (o.topology && !o.nodes)
    throw Error("--topology needs --nodes to know how many chips to lay out");
  if (o.resume && !o.checkpoint)
    throw Error("--resume needs --checkpoint <journal> to know what to resume from");
  if (o.trace && o.command != "run" && o.command != "simulate" && o.command != "sweep")
    throw Error("--trace applies only to the run and sweep commands");
  if (!o.trace_cells.empty() && o.command != "sweep")
    throw Error("--trace-cell applies only to the sweep command");
  if (!o.trace_cells.empty() && !o.trace)
    throw Error("--trace-cell needs --trace <out.json> for the events to land in");
  if (o.command == "sweep" && o.trace && o.trace_cells.empty())
    throw Error("sweep --trace needs --trace-cell to pick the traced cells");
  if (std::find(o.trace_cells.begin(), o.trace_cells.end(), "all") != o.trace_cells.end() &&
      o.trace_cells.size() != 1)
    throw Error("--trace-cell all already traces every cell: pass it alone");
  if (o.trace && o.command != "sweep") {
    if (o.workloads.size() > 1)
      throw Error("--trace records one run: pass exactly one --workload");
    if (o.config == "all")
      throw Error("--trace records one run: pick a single --config (not 'all')");
  }
  if (o.command == "merge" &&
      (!o.workloads.empty() || o.dataset || o.mtx || o.n || o.iters || o.bw_gbps ||
       o.sram_mib || o.config != "all" || o.jobs != 0))
    throw Error("merge takes only file arguments: merge <out.json> <shard.json>...");
  if (o.workloads.empty()) o.workloads.push_back("cg");
  return o;
}

/// The legacy flags lose to parameters the spec itself sets, and only fold
/// into kinds that actually accept the parameter (so `--workload resnet
/// --dataset fv1` keeps working as it did before specs existed).
std::vector<sim::WorkloadSpec> workload_specs(const Options& o) {
  std::vector<sim::WorkloadSpec> specs;
  for (const auto& text : o.workloads) {
    sim::WorkloadSpec spec = sim::WorkloadSpec::parse(text);
    const sim::WorkloadKind* kind = sim::WorkloadRegistry::global().find(spec.kind);
    auto accepts = [&](const char* key) {
      if (kind == nullptr) return true;  // unknown kind: let resolve() report it
      for (const auto& p : kind->params)
        if (p.name == key) return true;
      return false;
    };
    auto set_if_absent = [&](const char* key, const std::string& value) {
      if (accepts(key) && !spec.params.count(key)) spec.params[key] = value;
    };
    // A spec naming any matrix source (mm/dataset/gen/m) wins outright: the
    // legacy source flags then apply only to the other --workload rows.
    const bool spec_has_source = spec.params.count("mm") || spec.params.count("dataset") ||
                                 spec.params.count("gen") || spec.params.count("m");
    if (!spec_has_source) {
      if (o.mtx) set_if_absent("mm", *o.mtx);
      else if (o.dataset) set_if_absent("dataset", *o.dataset);
    }
    if (o.n) set_if_absent("n", std::to_string(*o.n));
    if (o.iters) set_if_absent("iters", std::to_string(*o.iters));
    specs.push_back(std::move(spec));
  }
  return specs;
}

int list_configs() {
  TextTable t({"name", "schedule", "buffer", "composition"});
  const auto& registry = sim::ConfigRegistry::global();
  for (const auto& name : registry.names()) {
    const auto& c = registry.at(name);
    t.add_row({c.name, sim::to_string(c.schedule), c.buffer_name, c.describe()});
  }
  std::cout << t.to_string();
  return 0;
}

int list_workloads() {
  const auto& registry = sim::WorkloadRegistry::global();
  for (const auto& name : registry.names()) {
    const auto& kind = registry.at(name);
    std::cout << kind.name << " — " << kind.description << "\n";
    for (const auto& p : kind.params)
      std::cout << "    " << p.name << "=" << p.default_value << "  " << p.doc << "\n";
  }
  std::cout << "\nspec grammar: kind[:k=v,...]  e.g. \"cg:m=65536,n=16,iters=10\", "
               "\"gnn:cora\", \"spmv:mm=file.mtx\"\n";
  return 0;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot write '" + path + "'");
  out << content;
  if (!out.flush()) throw Error("failed writing '" + path + "'");
}

std::vector<std::string> split_csv(const std::string& text) {
  std::vector<std::string> out;
  size_t at = 0;
  while (at <= text.size()) {
    const size_t comma = text.find(',', at);
    const size_t end = comma == std::string::npos ? text.size() : comma;
    out.push_back(text.substr(at, end - at));
    if (comma == std::string::npos) break;
    at = comma + 1;
  }
  return out;
}

/// Cross "--nodes 1,4,16" with "--topology mesh,torus" into the canonical
/// fabric axis, nodes-major ("1", "mesh:2x2", "torus:2x2", "mesh:4x4", ...).
/// A single chip has no fabric, so n=1 collapses to one "1" entry whatever
/// the topology list says; resolve_topology validates each (kind, count)
/// pair, including explicit shapes that contradict a count.
std::vector<std::string> fabric_specs(const Options& o) {
  if (!o.nodes) return {};
  const std::vector<std::string> topos =
      o.topology ? split_csv(*o.topology) : std::vector<std::string>{"mesh"};
  std::vector<std::string> fabs;
  for (const std::string& count_text : split_csv(*o.nodes)) {
    if (count_text.empty() || count_text.find_first_not_of("0123456789") != std::string::npos)
      throw Error("--nodes expects a comma list of chip counts, got '" + count_text + "'");
    const i64 count = std::stoll(count_text);
    for (const std::string& topo : topos) {
      const std::string spec = noc::resolve_topology(topo, count).to_string();
      if (std::find(fabs.begin(), fabs.end(), spec) == fabs.end()) fabs.push_back(spec);
    }
  }
  return fabs;
}

/// "--trace-cell W,C" — or "W,F,C" when the grid has a fabric axis — with
/// 0-based workload/fabric/configuration indices; returns the flattened
/// row-major cell id.  Out-of-range indices are rejected here, with the axis
/// extents, instead of surfacing as an anonymous grid-bounds error later.
size_t parse_trace_cell(const std::string& text, const sim::SweepGrid& grid) {
  const std::vector<std::string> parts = split_csv(text);
  if (parts.size() != 2 && parts.size() != 3)
    throw Error("--trace-cell expects W,C or W,F,C (0-based indices), got '" + text + "'");
  std::vector<size_t> idx;
  for (const auto& part : parts) {
    if (part.empty() || part.find_first_not_of("0123456789") != std::string::npos)
      throw Error("--trace-cell expects numeric indices, got '" + text + "'");
    idx.push_back(static_cast<size_t>(std::stoull(part)));
  }
  if (parts.size() == 2 && grid.has_fabric_axis())
    throw Error("this sweep has a fabric axis: --trace-cell needs W,F,C");
  const size_t wi = idx[0];
  const size_t fi = parts.size() == 3 ? idx[1] : 0;
  const size_t ci = parts.size() == 3 ? idx[2] : idx[1];
  if (wi >= grid.workloads.size() || fi >= grid.fabrics.size() || ci >= grid.configs.size())
    throw Error("--trace-cell " + text + " outside the grid (" +
                std::to_string(grid.workloads.size()) + " workloads x " +
                std::to_string(grid.fabrics.size()) + " fabrics x " +
                std::to_string(grid.configs.size()) + " configs)");
  return (wi * grid.fabrics.size() + fi) * grid.configs.size() + ci;
}

/// Per-cell trace file naming: "out.json" + cell 7 -> "out.cell7.json" (no
/// extension: "out" -> "out.cell7").  N is the flattened row-major cell id —
/// the same number --trace-cell's W,C / W,F,C indices flatten to — so a file
/// maps back to its grid coordinates without opening it.
std::string trace_cell_path(const std::string& base, size_t cell) {
  const size_t slash = base.find_last_of('/');
  const size_t dot = base.find_last_of('.');
  const std::string tag = ".cell" + std::to_string(cell);
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return base + tag;
  return base.substr(0, dot) + tag + base.substr(dot);
}

/// "--shard i/k" with 1-based i in [1, k]; plan_shard re-validates the range.
/// Both numbers must consume their whole token — "2/3x" must not silently
/// run shard 2/3.
void parse_shard_flag(const std::string& text, u32& index, u32& count) {
  const auto fail = [&]() -> u32 {
    throw Error("--shard expects i/k (e.g. 2/3), got '" + text + "'");
  };
  const size_t slash = text.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= text.size()) fail();
  const auto parse_u32 = [&](const std::string& part) -> u32 {
    if (part.empty() || part.find_first_not_of("0123456789") != std::string::npos)
      return fail();
    char* end = nullptr;
    const unsigned long v = std::strtoul(part.c_str(), &end, 10);
    if (end != part.c_str() + part.size() || v > 0xffffffffUL) return fail();
    return static_cast<u32>(v);
  };
  index = parse_u32(text.substr(0, slash));
  count = parse_u32(text.substr(slash + 1));
}

int merge_command(const Options& o) {
  if (o.positional.size() < 2) {
    std::cerr << "usage: cello_cli merge <out.json> <shard.json>...\n";
    return 1;
  }
  std::vector<sim::ShardResult> shards;
  shards.reserve(o.positional.size() - 1);
  // shard_from_json_file prefixes every load/parse failure with its path, so
  // one bad file among dozens is quarantined by name instead of aborting the
  // merge with an anonymous parse error.
  for (size_t i = 1; i < o.positional.size(); ++i)
    shards.push_back(sim::shard_from_json_file(o.positional[i]));
  const size_t shard_count = shards.size();
  sim::ShardResult full;
  full.grid = shards.front().grid;
  full.results = sim::merge_shards(std::move(shards));
  // A merged file IS a full single-process result file: shard 1 of 1.
  full.plan = sim::plan_shard(full.grid, 1, 1, sim::ShardMode::Contiguous);
  write_file(o.positional[0], sim::shard_to_json(full));
  std::cout << "merged " << shard_count << " shard(s), " << full.results.size()
            << " cells -> " << o.positional[0] << "\n";
  return 0;
}

void print_workload(const sim::Workload& wl) {
  std::cout << "workload: " << wl.name << "  (" << wl.dag->ops().size() << " ops, "
            << wl.dag->edges().size() << " edges)";
  if (wl.matrix)
    std::cout << "  matrix: M=" << wl.matrix->rows() << " nnz=" << wl.matrix->nnz();
  else
    std::cout << "  matrix: shape-only";
  std::cout << "\n";
}

}  // namespace

int run_cli(int argc, char** argv) {
  const Options o = parse(argc, argv);

  if (o.command == "configs") return list_configs();
  if (o.command == "workloads") return list_workloads();

  if (o.command == "datasets") {
    TextTable t({"name", "workload", "rows", "nnz", "GNN N", "GNN O"});
    for (const auto& d : sparse::table6_datasets())
      t.add_row({d.name, d.workload, std::to_string(d.rows), std::to_string(d.nnz),
                 std::to_string(d.gnn_in_features), std::to_string(d.gnn_out_features)});
    std::cout << t.to_string();
    return 0;
  }

  // Pure file-to-file recombination: no workloads are built or simulated.
  if (o.command == "merge") return merge_command(o);

  // Validate the command before building workloads: a typo must not trigger
  // (or mask its error behind) DAG and matrix construction.
  if (o.command != "classify" && o.command != "report" && o.command != "sweep" &&
      o.command != "run" && o.command != "simulate") {
    std::cerr << "unknown command: " << o.command << "\n";
    return 1;
  }

  sim::AcceleratorConfig arch;
  arch.dram_bytes_per_sec = o.bw_gbps.value_or(1000) * 1e9;
  arch.sram_bytes = o.sram_mib.value_or(4) * 1024 * 1024;
  if (o.nodes && o.command != "sweep") {
    // run/simulate: one fabric on the arch itself (sweeps ride the grid's
    // fabric axis instead, keeping the shared arch single-node).
    if (o.nodes->find(',') != std::string::npos)
      throw Error("run takes a single --nodes count; comma lists are for sweep");
    if (o.topology && o.topology->find(',') != std::string::npos)
      throw Error("run takes a single --topology; comma lists are for sweep");
    if (o.nodes->empty() || o.nodes->find_first_not_of("0123456789") != std::string::npos)
      throw Error("--nodes expects a chip count, got '" + *o.nodes + "'");
    const noc::TopologySpec spec =
        noc::resolve_topology(o.topology.value_or("mesh"), std::stoll(*o.nodes));
    arch.nodes = spec.nodes();
    arch.topology = spec.to_string();
  }

  {
    const auto specs = workload_specs(o);

    if (o.command == "sweep") {
      // Every workload row under every registered configuration, fanned
      // across a thread pool; each row shares one immutable DAG and one
      // schedule per schedule policy.  Ordering is deterministic.  The grid
      // is pinned (canonical specs + config names + arch fingerprint) so
      // --shard slices taken on different machines merge back losslessly —
      // and resolution happens inside run_shard, scoped to the shard, so a
      // slice never builds (or needs the datasets of) rows it does not run.
      std::vector<std::string> spec_texts;
      spec_texts.reserve(specs.size());
      for (const auto& spec : specs) spec_texts.push_back(spec.to_string());
      const sim::SweepGrid grid = sim::make_grid(
          spec_texts, sim::ConfigRegistry::global().names(), arch, fabric_specs(o));
      u32 shard_index = 1, shard_count = 1;
      if (o.shard) parse_shard_flag(*o.shard, shard_index, shard_count);
      const sim::ShardPlan plan = sim::plan_shard(
          grid, shard_index, shard_count,
          sim::shard_mode_from_string(o.shard_mode.value_or("contiguous")));
      sim::SweepOptions sweep_options;
      sweep_options.keep_going = o.keep_going;
      sweep_options.retries = o.retries;
      sweep_options.checkpoint = o.checkpoint.value_or("");
      sweep_options.resume = o.resume;
      std::ofstream trace_stream;
      std::optional<trace::ChromeTraceWriter> tracer;
      // Multi-cell tracing: one lazily-created writer per traced cell (the
      // callback runs on pool workers, hence the mutex), each writing to the
      // --trace path with ".cell<id>" spliced in before the extension.
      struct CellTrace {
        std::string path;
        std::ofstream stream;
        std::optional<trace::ChromeTraceWriter> writer;
      };
      std::map<size_t, CellTrace> cell_traces;
      std::mutex cell_traces_mu;
      const bool trace_all = !o.trace_cells.empty() && o.trace_cells.front() == "all";
      if (o.trace && o.trace_cells.size() == 1 && !trace_all) {
        // One named cell keeps the historical behavior: the trace lands at
        // the --trace path itself, no ".cell<id>" tag.
        const size_t cell = parse_trace_cell(o.trace_cells.front(), grid);
        if (std::find(plan.cells.begin(), plan.cells.end(), cell) == plan.cells.end())
          throw Error("--trace-cell " + o.trace_cells.front() + " (cell " +
                      std::to_string(cell) + ") is not in this shard's slice");
        trace_stream.open(*o.trace, std::ios::binary);
        if (!trace_stream) throw Error("cannot write '" + *o.trace + "'");
        tracer.emplace(trace_stream);
        sweep_options.trace_cell = static_cast<i64>(cell);
        sweep_options.trace_sink = &*tracer;
      } else if (o.trace) {
        std::set<size_t> selected;
        if (!trace_all) {
          for (const auto& text : o.trace_cells) {
            const size_t cell = parse_trace_cell(text, grid);
            if (std::find(plan.cells.begin(), plan.cells.end(), cell) == plan.cells.end())
              throw Error("--trace-cell " + text + " (cell " + std::to_string(cell) +
                          ") is not in this shard's slice");
            selected.insert(cell);
          }
        }
        sweep_options.trace_sink_for =
            [&cell_traces, &cell_traces_mu, &o, trace_all,
             selected = std::move(selected)](size_t cell) -> trace::TraceSink* {
          if (!trace_all && selected.find(cell) == selected.end()) return nullptr;
          std::lock_guard<std::mutex> lock(cell_traces_mu);
          auto it = cell_traces.find(cell);
          if (it == cell_traces.end()) {
            it = cell_traces.try_emplace(cell).first;
            it->second.path = trace_cell_path(*o.trace, cell);
            it->second.stream.open(it->second.path, std::ios::binary);
            if (!it->second.stream) throw Error("cannot write '" + it->second.path + "'");
            it->second.writer.emplace(it->second.stream);
          }
          return &*it->second.writer;
        };
      }
      const sim::SweepRunner runner(o.jobs);
      auto cells = runner.run_shard(grid, plan, sweep_options);
      if (tracer) {
        tracer->finish();
        if (!trace_stream.flush()) throw Error("failed writing '" + *o.trace + "'");
        std::cout << "wrote trace " << *o.trace << " (" << tracer->events() << " events)\n";
      }
      for (auto& [cell, ct] : cell_traces) {
        ct.writer->finish();
        if (!ct.stream.flush()) throw Error("failed writing '" + ct.path + "'");
        std::cout << "wrote trace " << ct.path << " (cell " << cell << ", "
                  << ct.writer->events() << " events)\n";
      }
      size_t failed = 0;
      for (const auto& cell : cells)
        if (!cell.ok()) ++failed;
      if (o.out) {
        // A CSV export drops the grid/plan metadata merge needs; a shard of
        // a split sweep written as CSV would be unrecoverable.
        if (o.out->ends_with(".csv") && plan.count > 1)
          throw Error("CSV cannot describe a mergeable shard; use a .json --out with --shard");
        if (o.out->ends_with(".csv")) {
          write_file(*o.out, sim::results_to_csv(cells));
        } else {
          sim::ShardResult shard{grid, plan, std::move(cells)};
          write_file(*o.out, sim::shard_to_json(shard));
        }
        std::cout << "wrote " << *o.out << " (shard " << plan.index << "/" << plan.count
                  << ", " << plan.cells.size() << " of " << grid.cells() << " cells)\n";
        if (failed > 0) {
          std::cerr << "warning: " << failed << " of " << plan.cells.size()
                    << " cells failed and were quarantined (--keep-going)\n";
          return 2;
        }
        return 0;
      }
      const bool fabric_axis = grid.has_fabric_axis();
      TextTable t(fabric_axis
                      ? std::vector<std::string>{"workload", "fabric", "config", "GMACs/s",
                                                 "time", "DRAM traffic", "NoC traffic",
                                                 "par eff"}
                      : std::vector<std::string>{"workload", "config", "GMACs/s", "time",
                                                 "DRAM traffic"});
      for (const auto& cell : cells) {
        std::vector<std::string> row{cell.workload};
        if (fabric_axis) row.push_back(cell.fabric.empty() ? "1" : cell.fabric);
        row.push_back(cell.config);
        if (!cell.ok()) {
          row.insert(row.end(), fabric_axis ? 5 : 3, "-");
          row[fabric_axis ? 3 : 2] = "FAILED";
        } else {
          row.push_back(format_double(cell.metrics.gmacs_per_sec(), 2));
          row.push_back(format_double(cell.metrics.seconds * 1e6, 1) + " us");
          row.push_back(format_bytes(static_cast<double>(cell.metrics.dram_bytes)));
          if (fabric_axis) {
            row.push_back(cell.metrics.nodes > 1
                              ? format_bytes(static_cast<double>(cell.metrics.noc_bytes))
                              : std::string("-"));
            row.push_back(cell.metrics.nodes > 1
                              ? format_double(cell.metrics.parallel_efficiency, 2)
                              : std::string("-"));
          }
        }
        t.add_row(std::move(row));
      }
      std::cout << t.to_string();
      if (failed > 0) {
        for (const auto& cell : cells)
          if (!cell.ok()) std::cerr << "failed: " << cell.error << "\n";
        std::cerr << "warning: " << failed << " of " << plan.cells.size()
                  << " cells failed and were quarantined (--keep-going)\n";
        return 2;
      }
      return 0;
    }

    // Resolve through the registry: each distinct spec's DAG is built once
    // and shared immutably with every command below.
    std::vector<sim::Workload> workloads;
    workloads.reserve(specs.size());
    for (const auto& spec : specs)
      workloads.push_back(sim::WorkloadRegistry::global().resolve(spec));

    if (o.command == "classify") {
      for (const sim::Workload& wl : workloads) {
        print_workload(wl);
        const auto cls = score::classify_scheduled(*wl.dag, wl.dag->topo_order());
        TextTable t({"edge", "tensor", "dependency"});
        for (const auto& e : wl.dag->edges())
          t.add_row({wl.dag->op(e.src).name + " -> " + wl.dag->op(e.dst).name,
                     wl.dag->tensor(e.tensor).name, score::to_string(cls.edge_kind[e.id])});
        std::cout << t.to_string();
      }
      return 0;
    }
    if (o.command == "report") {
      for (const sim::Workload& wl : workloads) {
        print_workload(wl);
        const sim::Simulator simulator(arch, wl.matrix.get());
        const auto m = simulator.run(*wl.dag, sim::ConfigRegistry::global().at("Cello"));
        std::cout << "Cello per-op breakdown:\n" << sim::per_op_report(m, arch) << "\n";
        std::cout << "Traffic by tensor:\n" << sim::per_tensor_report(m);
      }
      return 0;
    }
    // run / simulate
    const sim::Configuration* config =
        o.config == "all" ? nullptr : sim::ConfigRegistry::global().find(o.config);
    if (o.config != "all" && config == nullptr) {
      std::cerr << "unknown config: " << o.config << " (use 'all' or one of:";
      for (const auto& name : sim::ConfigRegistry::global().names()) std::cerr << " " << name;
      std::cerr << ")\n";
      return 1;
    }
    for (const sim::Workload& wl : workloads) {
      print_workload(wl);
      if (config == nullptr) {
        std::cout << compare_table(*wl.dag, arch, wl.matrix.get()) << "\n";
        continue;
      }
      const sim::Simulator simulator(arch, wl.matrix.get());
      sim::RunArtifacts artifacts;
      std::ofstream trace_stream;
      std::optional<trace::ChromeTraceWriter> tracer;
      if (o.trace) {
        trace_stream.open(*o.trace, std::ios::binary);
        if (!trace_stream) throw Error("cannot write '" + *o.trace + "'");
        tracer.emplace(trace_stream);
        artifacts.trace = &*tracer;
      }
      const auto m = simulator.run(*wl.dag, *config, artifacts);
      std::cout << config->name << " (" << config->describe() << "): "
                << format_double(m.gmacs_per_sec(), 1) << " GMACs/s, "
                << format_bytes(static_cast<double>(m.dram_bytes)) << " DRAM, "
                << format_double(m.seconds * 1e6, 1) << " us\n";
      if (tracer) {
        tracer->finish();
        if (!trace_stream.flush()) throw Error("failed writing '" + *o.trace + "'");
        std::cout << "wrote trace " << *o.trace << " (" << tracer->events() << " events)\n";
      }
    }
    return 0;
  }
}

int main(int argc, char** argv) {
  // Catches cello::Error (bad specs, unknown datasets, unreadable .mtx) and
  // the std:: exceptions the numeric flag parsing can throw.
  try {
    return run_cli(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
