// Multi-node scaling study (Sec. V-B "Scalable Dataflow"): compare NoC
// traffic when pipelines are split across nodes (move the skewed tensor)
// versus SCORE's cluster-local schedule (broadcast/reduce the small tensors),
// across node counts and problem shapes.
//
//   ./example_multinode_scaling [M] [N]
#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "noc/mesh.hpp"

int main(int argc, char** argv) {
  using namespace cello;
  const i64 m = argc > 1 ? std::atoll(argv[1]) : 1000000;
  const i64 n = argc > 2 ? std::atoll(argv[2]) : 16;

  std::cout << "Pipelining ops 4->5 of CG across a mesh: M=" << m << ", N=N'=" << n << "\n\n";

  TextTable t({"nodes", "mesh", "bcast+reduce hops", "naive words (move R)",
               "SCORE words (move Lambda/Gamma)", "traffic reduction", "NoC energy saved"});
  for (i64 nodes : {2, 4, 8, 16, 32, 64, 128}) {
    noc::MeshNoc mesh;
    mesh.nodes = nodes;
    const auto tr = noc::compare_multinode(m, n, n, mesh);
    const double saved_pj = (tr.naive_words - tr.score_words) * mesh.hop_energy_pj_per_word;
    t.add_row({std::to_string(nodes),
               std::to_string(mesh.side()) + "x" + std::to_string(mesh.side()),
               std::to_string(mesh.broadcast_hops() + mesh.reduce_hops()),
               format_double(tr.naive_words, 0), format_double(tr.score_words, 0),
               format_double(tr.ratio(), 0) + "x",
               format_double(saved_pj / 1e6, 2) + " uJ"});
  }
  std::cout << t.to_string();

  std::cout << "\nCrossover check: SCORE's strategy wins whenever M >> N * hops.  With\n"
               "M=" << m << " one cluster already holds the whole small tensor, so the\n"
               "skewed rank is partitioned across nodes and pipelines never span the NoC\n"
               "(Fig. 8 bottom).\n";
  return 0;
}
