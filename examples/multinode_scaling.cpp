// Multi-node scaling study (Sec. V-B "Scalable Dataflow"): compare NoC
// traffic when pipelines are split across nodes (move the skewed tensor)
// versus SCORE's cluster-local schedule (broadcast/reduce the small tensors),
// across node counts and problem shapes.
//
//   ./example_multinode_scaling [M] [N]
#include <cstdlib>
#include <iostream>

#include "common/format.hpp"
#include "noc/mesh.hpp"
#include "noc/topology.hpp"
#include "sim/partition.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/workload_registry.hpp"

int main(int argc, char** argv) {
  using namespace cello;
  const i64 m = argc > 1 ? std::atoll(argv[1]) : 1000000;
  const i64 n = argc > 2 ? std::atoll(argv[2]) : 16;

  std::cout << "Pipelining ops 4->5 of CG across a mesh: M=" << m << ", N=N'=" << n << "\n\n";

  TextTable t({"nodes", "mesh", "bcast+reduce hops", "naive words (move R)",
               "SCORE words (move Lambda/Gamma)", "traffic reduction", "NoC energy saved"});
  for (i64 nodes : {2, 4, 8, 16, 32, 64, 128}) {
    noc::MeshNoc mesh;
    mesh.nodes = nodes;
    const auto tr = noc::compare_multinode(m, n, n, mesh);
    const double saved_pj = (tr.naive_words - tr.score_words) * mesh.hop_energy_pj_per_word;
    t.add_row({std::to_string(nodes),
               std::to_string(mesh.side()) + "x" + std::to_string(mesh.side()),
               std::to_string(mesh.broadcast_hops() + mesh.reduce_hops()),
               format_double(tr.naive_words, 0), format_double(tr.score_words, 0),
               format_double(tr.ratio(), 0) + "x",
               format_double(saved_pj / 1e6, 2) + " uJ"});
  }
  std::cout << t.to_string();

  std::cout << "\nCrossover check: SCORE's strategy wins whenever M >> N * hops.  With\n"
               "M=" << m << " one cluster already holds the whole small tensor, so the\n"
               "skewed rank is partitioned across nodes and pipelines never span the NoC\n"
               "(Fig. 8 bottom).\n\n";

  // The full routed path: shard the dominant rank of a real workload DAG,
  // simulate one node's slice under the Cello preset, and fold per-link NoC
  // traffic back in.  Ring vs mesh shows the topology term: the same
  // collectives saturate a ring's root links long before a mesh's.
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("gnn:cora");
  sim::AcceleratorConfig arch;
  const sim::Simulator single(arch, wl.matrix.get());
  const sim::Configuration& cello = sim::ConfigRegistry::global().at("Cello");
  const double base = single.run(*wl.dag, cello).seconds;
  std::cout << "gnn:cora under the Cello preset, routed NoC fold (1 node: "
            << format_double(base * 1e6, 1) << " us):\n";
  TextTable rt({"fabric", "time", "NoC byte-hops", "naive bytes", "max-link util",
                "par eff"});
  for (const std::string topo : {"mesh", "torus", "ring"}) {
    for (const i64 nodes : {4, 16, 64}) {
      sim::AcceleratorConfig multi = arch;
      const noc::TopologySpec spec = noc::resolve_topology(topo, nodes);
      multi.nodes = nodes;
      multi.topology = spec.to_string();
      const sim::Simulator simulator(multi, wl.matrix.get());
      const sim::RunMetrics mm = simulator.run(*wl.dag, cello);
      rt.add_row({spec.to_string(), format_double(mm.seconds * 1e6, 1) + " us",
                  format_bytes(static_cast<double>(mm.noc_bytes)),
                  format_bytes(static_cast<double>(mm.naive_noc_bytes)),
                  format_double(mm.max_link_utilization * 100, 1) + "%",
                  format_double(mm.parallel_efficiency, 2)});
    }
  }
  std::cout << rt.to_string();
  return 0;
}
