// Sec. VI-B: size of the buffer-allocation search space — explicit scratchpad
// over a DAG vs. op-by-op vs. CHORD's DAG-level policy decisions.
#include <cmath>

#include "bench_util.hpp"
#include "score/search_space.hpp"
#include "workloads/cg.hpp"

int main() {
  using namespace cello;
  bench::print_header("Buffer-allocation search-space size", "Sec. VI-B");

  // The paper's running example: a 4 MiB buffer of 32-bit words shared by
  // five contending tensors (P, R, S, X, A slices of a CG iteration).
  const i64 buffer_words = 4 * 1024 * 1024 / 4;  // 2^20
  score::SearchSpaceModel m{buffer_words, 5};
  const std::vector<i64> tensor_words(5, 1 << 20);
  const std::vector<i64> slice_words(5, 1 << 18);

  const double step1 = m.log10_slice_allocation();
  const double step2_free = m.log10_line_arrangements();
  const double step2_blocks = m.log10_block_arrangements();
  const double step3_free = m.log10_element_choices(tensor_words, slice_words);
  const double step3_contig = m.log10_contiguous_choices(tensor_words, slice_words);
  const double static_plan = step1 + step2_blocks + step3_contig;
  const double with_time = m.log10_time_varying(static_plan, 2);
  const double op_by_op = score::SearchSpaceModel::log10_op_by_op(buffer_words, 7);

  workloads::CgShape shape;
  shape.m = 1000000;
  shape.n = 16;
  shape.nnz = 9000000;
  shape.iterations = 10;
  const auto dag = workloads::build_cg_dag(shape);
  const double chord = score::SearchSpaceModel::chord_choices(
      static_cast<i64>(dag.ops().size()), static_cast<i64>(dag.edges().size()));

  TextTable t({"allocation strategy", "choices (log10)", "choices"});
  t.add_row({"(1) slice sizes across 5 tensors, C(size+4,4)", format_double(step1, 1),
             format_sci(step1)});
  t.add_row({"(2a) arranging individual lines, size!", format_double(step2_free, 0), "~"});
  t.add_row({"(2b) arranging contiguous blocks, T!", format_double(step2_blocks, 1),
             format_sci(step2_blocks)});
  t.add_row({"(3a) free slice-element choice, prod C(Ti,slice)", format_double(step3_free, 1),
             format_sci(step3_free)});
  t.add_row({"(3b) contiguous slices, prod (Ti-slice+1)", format_double(step3_contig, 1),
             format_sci(step3_contig)});
  t.add_row({"static DAG-level plan (1)+(2b)+(3b)", format_double(static_plan, 1),
             format_sci(static_plan)});
  t.add_row({"(4) time-varying plan, 2 allocation epochs", format_double(with_time, 1),
             format_sci(with_time)});
  t.add_row({"op-by-op baseline (7-op DAG)", format_double(op_by_op, 1),
             format_sci(op_by_op)});
  t.add_row({"CHORD: RIFF decisions, O(nodes+edges)", format_double(std::log10(chord), 1),
             format_double(chord, 0)});
  std::cout << t.to_string();

  std::cout << "\nPaper headline: ~1e15 op-by-op, ~1e80 with DAG-level reuse, ~1e2 for\n"
               "CHORD.  Our factor decomposition lands the op-by-op baseline at ~1e15,\n"
               "the time-varying DAG-level plan beyond 1e80, and CHORD at ~1e2 — and the\n"
               "scratchpad plan must be re-derived for EVERY new problem shape, while\n"
               "CHORD only consumes DAG metadata the scheduler already has.\n";
  return 0;
}
