// Fig. 1: the tensor-dependency graph of CG intermediates across two loop
// iterations — emitted as Graphviz DOT plus a per-tensor consumer summary so
// the complex cross-iteration structure is inspectable without a renderer.
#include "bench_util.hpp"
#include "workloads/cg.hpp"

int main() {
  using namespace cello;
  bench::print_header("CG tensor-dependency graph across two iterations", "Fig. 1");

  workloads::CgShape shape;
  shape.m = 1000000;
  shape.n = 8;
  shape.nnz = 9000000;
  shape.iterations = 2;
  const auto dag = workloads::build_cg_dag(shape);

  std::cout << dag.to_dot() << "\n";

  TextTable t({"tensor", "producer", "consumers", "crosses iterations"});
  for (const auto& tensor : dag.tensors()) {
    const auto consumers = dag.consumers(tensor.id);
    if (consumers.empty()) continue;
    std::string cons;
    bool crosses = false;
    const auto prod = dag.producer(tensor.id);
    const std::string prod_name = prod ? dag.op(*prod).name : "(external)";
    for (auto c : consumers) {
      cons += dag.op(c).name + " ";
      if (prod && dag.op(*prod).name.back() != dag.op(c).name.back()) crosses = true;
    }
    t.add_row({tensor.name, prod_name, cons, crosses ? "yes" : "no"});
  }
  std::cout << t.to_string();
  std::cout << "\nPaper context: the DAG's transitive and cross-iteration edges (P feeds\n"
               "four ops of the next iteration; X and R feed their own line next time\n"
               "around) are exactly what simple producer/consumer pipelining cannot\n"
               "serve, motivating SCORE + CHORD.\n";
  return 0;
}
