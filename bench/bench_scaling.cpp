// Multi-node scaling of Cello on CG (Sec. V-B system-level consequence):
// cluster-local pipelines with small-tensor reduction/broadcast scale nearly
// linearly; shipping skewed intermediates across the NoC would not.
#include "bench_util.hpp"
#include "sim/multinode.hpp"

int main() {
  using namespace cello;
  bench::print_header("Multi-node scaling of Cello on CG", "Sec. V-B scalable dataflow");

  const auto& spec = sparse::dataset_by_name("G2_circuit");
  const auto arch = bench::table5_config();

  auto shard_builder = [&](i64 nodes) {
    workloads::CgShape s = bench::cg_shape_for(spec, 16);
    s.m = std::max<i64>(64, s.m / nodes);      // dominant rank partitioned
    s.nnz = std::max<i64>(s.m, s.nnz / nodes); // row-sharded sparse matrix
    return workloads::build_cg_dag(s);
  };

  TextTable t({"nodes", "per-node time", "NoC bytes (SCORE)", "NoC bytes (naive)",
               "total GMACs/s", "parallel efficiency"});
  for (i64 nodes : {1, 2, 4, 8, 16, 32}) {
    const auto mm = sim::simulate_multinode(shard_builder, sim::ConfigKind::Cello, arch, nodes);
    t.add_row({std::to_string(nodes), format_double(mm.per_node.seconds * 1e6, 1) + " us",
               format_bytes(static_cast<double>(mm.noc_bytes)),
               format_bytes(static_cast<double>(mm.naive_noc_bytes)),
               format_double(mm.total_gmacs_per_sec, 1),
               format_double(100 * mm.parallel_efficiency, 1) + "%"});
  }
  std::cout << t.to_string();
  std::cout << "\nSCORE's NoC traffic is the small Greek tensors times tree hops; the\n"
               "naive pipeline-splitting strategy would move every skewed intermediate\n"
               "(orders of magnitude more bytes), which is why the schedule keeps\n"
               "pipelines inside a node and partitions the dominant rank (Fig. 8).\n";
  return 0;
}
