// Fig. 12: throughput of all Table IV configurations on block CG across the
// Table VI PDE datasets (fv1, shallow_water1, G2_circuit), N in {1, 16} and
// memory bandwidth in {250 GB/s, 1 TB/s}.  Also prints the roofline context
// for fv1 (the paper plots that dataset on a roofline) and the Table I
// analogue: achieved fraction of peak.
#include "bench_util.hpp"
#include "mem/roofline.hpp"

int main() {
  using namespace cello;
  bench::print_header("CG performance across datasets, N and bandwidth", "Fig. 12");

  const char* datasets[] = {"fv1", "shallow_water1", "G2_circuit"};
  std::vector<double> cello_speedups;

  for (const char* name : datasets) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    for (i64 n : {1, 16}) {
      for (double bw : {250e9, 1e12}) {
        workloads::CgShape shape = bench::cg_shape_for(spec, n);
        shape.nnz = matrix.nnz();  // exact generated count
        const auto dag = workloads::build_cg_dag(shape);
        const auto arch = bench::table5_config(bw);

        std::cout << "dataset=" << name << " (M=" << spec.rows << ", nnz=" << matrix.nnz()
                  << ")  N=" << n << "  BW=" << format_rate(bw, "B/s") << "\n";
        TextTable t({"config", "GMACs/s", "DRAM traffic", "speedup vs Flexagon"});
        double base = 0;
        for (auto kind : all_configs()) {
          const auto m = run(dag, kind, arch, &matrix);
          if (kind == sim::ConfigKind::Flexagon) base = m.seconds;
          if (kind == sim::ConfigKind::Cello) cello_speedups.push_back(base / m.seconds);
          t.add_row({sim::to_string(kind), format_double(m.gmacs_per_sec(), 1),
                     format_bytes(static_cast<double>(m.dram_bytes)),
                     format_double(base / m.seconds, 2) + "x"});
        }
        std::cout << t.to_string() << "\n";
      }
    }
  }

  std::cout << "Cello geomean speedup over the oracle op-by-op baseline: "
            << format_double(geomean(cello_speedups), 2) << "x (paper: ~4x geomean "
            << "across its workload suite)\n";

  // Roofline context for fv1 (the first plot of Fig. 12) and the Table I
  // analogue: CG as a fraction of peak.
  const auto& fv1 = sparse::dataset_by_name("fv1");
  const auto fv1_m = sparse::instantiate(fv1);
  workloads::CgShape shape = bench::cg_shape_for(fv1, 16);
  shape.nnz = fv1_m.nnz();
  const auto dag = workloads::build_cg_dag(shape);
  const auto arch = bench::table5_config();
  mem::Roofline roof{static_cast<double>(arch.num_macs) * arch.clock_hz,
                     arch.dram_bytes_per_sec};
  std::cout << "\nfv1 N=16 on the roofline (peak " << format_rate(roof.peak_flops_per_sec,
                                                                  "MACs/s")
            << ", ridge " << format_double(roof.ridge_ops_per_byte(), 1) << " ops/B):\n";
  TextTable r({"config", "achieved AI (MACs/B)", "achieved GMACs/s", "% of roofline at AI",
               "% of peak (Table I analogue)"});
  for (auto kind : {sim::ConfigKind::Flexagon, sim::ConfigKind::Cello}) {
    const auto m = run(dag, kind, arch, &fv1_m);
    const double att = roof.attainable(m.intensity());
    r.add_row({sim::to_string(kind), format_double(m.intensity(), 2),
               format_double(m.gmacs_per_sec(), 1),
               format_double(100.0 * m.gmacs_per_sec() * 1e9 / att, 1) + "%",
               format_double(100.0 * m.gmacs_per_sec() * 1e9 / roof.peak_flops_per_sec, 2) +
                   "%"});
  }
  std::cout << r.to_string();
  std::cout << "\n(Table I context: real HPCG runs reach 0.3-3% of peak; an op-by-op\n"
               "accelerator stays in that regime, while inter-operation reuse lifts it.)\n";
  return 0;
}
