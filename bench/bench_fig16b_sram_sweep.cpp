// Fig. 16(b): Cello sensitivity to CHORD capacity {1, 4, 16} MiB on CG
// shallow_water1 at N in {1, 16}.
#include "bench_util.hpp"

int main() {
  using namespace cello;
  bench::print_header("Cello sensitivity to CHORD (SRAM) capacity", "Fig. 16(b)");

  const auto& spec = sparse::dataset_by_name("shallow_water1");
  const auto matrix = sparse::instantiate(spec);

  for (i64 n : {1, 16}) {
    auto shape = bench::cg_shape_for(spec, n);
    shape.nnz = matrix.nnz();
    const auto dag = workloads::build_cg_dag(shape);

    std::cout << "dataset=shallow_water1  N=" << n << "\n";
    TextTable t({"CHORD size", "GMACs/s", "DRAM traffic", "vs 4 MiB"});
    double base_traffic = 0;
    for (Bytes mib : {1ull, 4ull, 16ull}) {
      const auto arch = bench::table5_config(1e12, mib * 1024 * 1024);
      const auto m = run(dag, sim::ConfigKind::Cello, arch, &matrix);
      if (mib == 4) base_traffic = static_cast<double>(m.dram_bytes);
      t.add_row({std::to_string(mib) + " MiB", format_double(m.gmacs_per_sec(), 1),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 base_traffic > 0
                     ? format_double(static_cast<double>(m.dram_bytes) / base_traffic, 2)
                     : "-"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "Expected shape: at N=16 the working set exceeds small CHORDs, so traffic\n"
               "falls steadily with capacity; at N=1 the 4 MiB and 16 MiB points are both\n"
               "'sufficiently large' and coincide (paper Sec. VII-C2).\n";
  return 0;
}
