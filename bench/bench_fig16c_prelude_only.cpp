// Fig. 16(c): the PRELUDE-only ablation vs Flexagon, FLAT and full Cello on
// CG shallow_water1 at N in {1, 16}.
#include "bench_util.hpp"

int main() {
  using namespace cello;
  bench::print_header("PRELUDE-only ablation on CG", "Fig. 16(c)");

  const auto& spec = sparse::dataset_by_name("shallow_water1");
  const auto matrix = sparse::instantiate(spec);

  for (i64 n : {1, 16}) {
    auto shape = bench::cg_shape_for(spec, n);
    shape.nnz = matrix.nnz();
    const auto dag = workloads::build_cg_dag(shape);
    const auto arch = bench::table5_config();

    std::cout << "dataset=shallow_water1  N=" << n << "\n";
    TextTable t({"config", "GMACs/s", "DRAM traffic", "speedup vs Flexagon"});
    double base = 0;
    for (auto kind : {sim::ConfigKind::Flexagon, sim::ConfigKind::Flat,
                      sim::ConfigKind::PreludeOnly, sim::ConfigKind::Cello}) {
      const auto m = run(dag, kind, arch, &matrix);
      if (kind == sim::ConfigKind::Flexagon) base = m.seconds;
      t.add_row({sim::to_string(kind), format_double(m.gmacs_per_sec(), 1),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 format_double(base / m.seconds, 2) + "x"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "Expected shape: PRELUDE alone already beats Flexagon and FLAT (writeback\n"
               "support matters more than pipelining for CG), but RIFF's reuse-frequency\n"
               "priorities close the remaining gap; PRELUDE-only sits closer to Cello at\n"
               "N=1 (tensors small relative to the SRAM) than at N=16.\n";
  return 0;
}
