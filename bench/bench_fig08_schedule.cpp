// Fig. 8: the CG iteration schedule (pipeline groups, loop orders, buffer
// bindings) and the multi-node dataflow argument (move small tensors across
// the NoC, not the skewed ones).
#include "bench_util.hpp"
#include "noc/mesh.hpp"
#include "score/schedule.hpp"
#include "workloads/cg.hpp"

int main() {
  using namespace cello;
  bench::print_header("SCORE schedule for one CG iteration + multi-node dataflow",
                      "Fig. 8");

  workloads::CgShape shape;
  shape.m = 1000000;
  shape.n = 16;
  shape.nnz = 9000000;
  shape.iterations = 3;  // show iteration 2: steady state with live successors
  const auto dag = workloads::build_cg_dag(shape);
  const auto sched = score::build_schedule(dag);

  TextTable t({"step", "op", "loop order (outer->inner)", "pipeline group", "output ->"});
  for (size_t i = 8; i < 16 && i < sched.steps.size(); ++i) {  // steady-state iteration 2
    const auto& step = sched.steps[i];
    const auto& op = dag.op(step.op);
    std::string order;
    for (const auto& r : step.loop_order) order += r + " ";
    t.add_row({std::to_string(i), op.name, order, std::to_string(step.pipeline_group),
               std::string(score::to_string(sched.residency[op.output]))});
  }
  std::cout << t.to_string();
  std::cout << "\nswizzles required: " << sched.swizzle_count
            << " (SCORE keeps every skewed tensor m-major)\n";

  // Multi-node traffic comparison (Fig. 8 bottom): pipelining split across
  // nodes moves SIZE_R = M*N words; SCORE's cluster-local schedule moves the
  // small Greek tensors with broadcast+reduce hops instead.
  std::cout << "\nMulti-node NoC traffic for the op4->op5 stage (M=1e6, N=16):\n";
  TextTable noc_t({"nodes", "naive: move R (words)", "SCORE: move small x hops (words)",
                   "reduction"});
  for (i64 nodes : {4, 16, 64}) {
    noc::MeshNoc mesh;
    mesh.nodes = nodes;
    const auto tr = noc::compare_multinode(shape.m, shape.n, shape.n, mesh);
    noc_t.add_row({std::to_string(nodes), format_double(tr.naive_words, 0),
                   format_double(tr.score_words, 0),
                   format_double(tr.ratio(), 0) + "x"});
  }
  std::cout << noc_t.to_string();
  return 0;
}
