// Google-benchmark microbenchmarks of the buffer models themselves: per-event
// cost of cache lookups vs CHORD tensor-granularity operations.  These back
// the complexity argument of Sec. VI-B(1)/(2): a CHORD event touches one
// index-table entry, a cache access performs an associativity-wide lookup per
// line.
#include <benchmark/benchmark.h>

#include "cache/cache.hpp"
#include "chord/chord.hpp"
#include "common/rng.hpp"

namespace {

using namespace cello;

void BM_CacheAccess(benchmark::State& state) {
  cache::SetAssocCache c(4ull << 20, 16, 8,
                         state.range(0) == 0 ? cache::Policy::Lru : cache::Policy::Brrip);
  Rng rng(1);
  std::vector<Addr> addrs(4096);
  for (auto& a : addrs) a = (rng.bounded(1u << 22)) & ~0xFull;
  size_t i = 0;
  for (auto _ : state) {
    c.access(addrs[i++ & 4095], false);
    benchmark::DoNotOptimize(c.stats().hits);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CacheAccess)->Arg(0)->Arg(1)->Name("cache_line_access/policy");

void BM_CacheRangeStream(benchmark::State& state) {
  cache::SetAssocCache c(4ull << 20, 16, 8, cache::Policy::Lru);
  Addr cursor = 0;
  for (auto _ : state) {
    c.access_range(cursor, 4096, false);  // 256 lines per iteration
    cursor += 4096;
    benchmark::DoNotOptimize(c.stats().misses);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_CacheRangeStream);

void BM_ChordTensorEvent(benchmark::State& state) {
  chord::ChordBuffer buf(4ull << 20, 16, /*riff=*/state.range(0) != 0);
  Rng rng(2);
  i64 step = 0;
  for (auto _ : state) {
    chord::TensorMeta m;
    m.id = static_cast<i32>(step % 12);
    m.name = "T";
    m.start_addr = 0x1000'0000ull + static_cast<Addr>(m.id) * 0x100'0000ull;
    m.bytes = 64 * 1024;
    m.remaining_uses = static_cast<i32>(rng.bounded(6));
    m.next_use_distance = 1 + static_cast<i64>(rng.bounded(9));
    if (step % 3 == 0)
      buf.write_tensor(m);
    else
      buf.read_tensor(m);
    ++step;
    benchmark::DoNotOptimize(buf.stats().dram_read_bytes);
  }
  // One "event" covers a whole 64 KiB tensor: operand-granularity bookkeeping.
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ChordTensorEvent)->Arg(0)->Arg(1)->Name("chord_tensor_event/riff");

}  // namespace

BENCHMARK_MAIN();
