// Fig. 2: arithmetic intensity of regular vs. skewed GEMMs (same MAC count)
// and where each lands on the roofline at 1 TB/s with 32-bit words.
#include "bench_util.hpp"
#include "mem/roofline.hpp"
#include "score/intraop.hpp"

int main() {
  using namespace cello;
  bench::print_header("Arithmetic intensity and roofline, regular vs skewed GEMM",
                      "Fig. 2 (a) and (b)");

  const sim::AcceleratorConfig arch = bench::table5_config();
  mem::Roofline roof;
  roof.peak_flops_per_sec = static_cast<double>(arch.num_macs) * arch.clock_hz;
  roof.bandwidth_bytes_per_sec = arch.dram_bytes_per_sec;

  struct Case {
    const char* name;
    i64 m, k, n;
  };
  // Both GEMMs perform ~134M multiplies; only the aspect ratio differs.
  const Case cases[] = {
      {"Regular GEMM (512x512x512)", 512, 512, 512},
      {"Skewed GEMM (524288x16x16)", 524288, 16, 16},
  };

  TextTable t({"GEMM", "MACs", "AI (ops/byte)", "attainable (GMACs/s)", "bound",
               "AI limit N/2 (ops/word)"});
  for (const auto& c : cases) {
    const double ai = mem::gemm_best_intensity(c.m, c.k, c.n, 4);
    const double att = roof.attainable(ai);
    t.add_row({c.name, std::to_string(c.m * c.k * c.n), format_double(ai, 2),
               format_double(att / 1e9, 1),
               roof.memory_bound(ai) ? "memory-bound" : "compute-bound",
               format_double(mem::skewed_gemm_limit_ops_per_word(c.n), 1)});
  }
  std::cout << t.to_string();
  std::cout << "\nRoofline ridge point: " << format_double(roof.ridge_ops_per_byte(), 2)
            << " ops/byte at " << format_rate(roof.peak_flops_per_sec, "MACs/s") << "\n";

  // Close the loop with the intra-op mapping search: the oracle traffic the
  // Best Intra-layer baseline assumes is actually reachable on a 4 MiB
  // buffer — and still leaves the skewed GEMM memory-bound.
  std::cout << "\nTile-mapping search on the 4 MiB buffer (Timeloop-lite):\n";
  TextTable ms({"GEMM", "best mapping", "DRAM words", "oracle words", "oracle reached"});
  for (const auto& c : cases) {
    const auto r = score::search_best_mapping({c.m, c.k, c.n, 4}, arch.sram_bytes);
    ms.add_row({c.name, r.best.to_string(), format_double(r.best_words / 1e6, 2) + "M",
                format_double(r.oracle / 1e6, 2) + "M", r.oracle_achieved() ? "yes" : "no"});
  }
  std::cout << ms.to_string();
  std::cout << "\nPaper: regular ~42.7 ops/byte (compute-bound), skewed ~2 ops/byte "
               "(memory-bound); the skewed GEMM cannot exceed N/2 ops/word even with a "
               "perfect schedule (Eq. 4) — confirmed above: the best mapping hits the "
               "oracle and the oracle is still memory-bound.\n";
  return 0;
}
