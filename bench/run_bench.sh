#!/usr/bin/env bash
# Build the release preset, run the trace-sim throughput benchmark, and write
# BENCH_tracesim.json at the repo root.  If bench/baseline_tracesim.json
# exists (the pre-optimization recording), each benchmark also gets a
# baseline_ms and speedup column so PRs can quote the delta directly.
#
# Usage: bench/run_bench.sh [extra google-benchmark args...]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset release >/dev/null
# CMake doesn't even create the target when Google Benchmark is absent; say
# so instead of dying on a bare "unknown target" and leaving a stale
# BENCH_tracesim.json in place.
if ! cmake --build --preset release --target bench_perf_tracesim -j "$(nproc)"; then
  echo "error: could not build bench_perf_tracesim" >&2
  echo "       (is Google Benchmark installed? CMake skips the target without it)" >&2
  exit 1
fi
[[ -x ./build-release/bench_perf_tracesim ]] || {
  echo "error: build-release/bench_perf_tracesim is missing after a successful build" >&2
  exit 1
}

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
# Median of 3 repetitions: single-shot numbers swing with machine noise.
./build-release/bench_perf_tracesim \
  --benchmark_repetitions=3 \
  --benchmark_out="$raw" --benchmark_out_format=json "$@"

python3 - "$raw" "$repo/bench/baseline_tracesim.json" "$repo/BENCH_tracesim.json" <<'EOF'
import json, sys, os

raw_path, baseline_path, out_path = sys.argv[1:4]


def die(msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(1)


def load_json(path, what):
    # A benchmark binary killed mid-write (OOM, ^C) leaves truncated JSON;
    # surface that as a one-line error instead of a traceback, and never let
    # it silently produce an empty BENCH_tracesim.json.
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        die(f"cannot read {what} '{path}': {e}")
    except json.JSONDecodeError as e:
        die(f"{what} '{path}' is not valid JSON (truncated benchmark run?): {e}")


raw = load_json(raw_path, "benchmark output")
if not isinstance(raw, dict) or not raw.get("benchmarks"):
    die(f"benchmark output '{raw_path}' has no benchmarks — the run produced nothing")
if "context" not in raw:
    die(f"benchmark output '{raw_path}' is missing its context block")

baseline = {}
if os.path.exists(baseline_path):
    for b in load_json(baseline_path, "baseline").get("benchmarks", []):
        if "name" not in b or "real_time_ms" not in b:
            die(f"baseline '{baseline_path}' row {b!r} lacks name/real_time_ms")
        baseline[b["name"]] = b["real_time_ms"]

medians = [b for b in raw.get("benchmarks", [])
           if b.get("run_type") == "aggregate" and b.get("aggregate_name") == "median"]
if not medians:  # single-repetition runs have no aggregates
    medians = [b for b in raw.get("benchmarks", []) if b.get("run_type") == "iteration"]

benchmarks = []
for b in medians:
    if b.get("time_unit") != "ms":
        die(f"benchmark row {b.get('name', '?')} reports in "
            f"{b.get('time_unit', 'no unit')}, expected ms")
    name = b["run_name"] if "run_name" in b else b["name"]
    entry = {
        "name": name,
        "real_time_ms": round(b["real_time"], 3),
        "cpu_time_ms": round(b["cpu_time"], 3),
    }
    if "dram_bytes" in b:
        entry["dram_bytes"] = int(b["dram_bytes"])
    # Setup-path rows report their one-time (or per-iteration construction)
    # setup cost as a counter, so the perf trajectory separates setup cost
    # from steady-state replay cost.
    if "setup_ms" in b:
        entry["setup_ms"] = round(b["setup_ms"], 4)
    # Trace rows also record their event/byte volume, so the trajectory
    # catches a serialization change that balloons trace output.
    for k in ("trace_events", "trace_bytes"):
        if k in b:
            entry[k] = int(b[k])
    if name in baseline:
        entry["baseline_ms"] = baseline[name]
        entry["speedup"] = round(baseline[name] / b["real_time"], 2)
    benchmarks.append(entry)

out = {
    "generated_by": "bench/run_bench.sh",
    "benchmark": "bench_perf_tracesim",
    "context": {k: raw["context"].get(k) for k in ("host_name", "num_cpus", "library_version")},
    "benchmarks": benchmarks,
}
import math


def geomean(xs):
    return math.exp(sum(math.log(x) for x in xs) / len(xs))


# Aggregate speedup over the cache-bound rows (Flex+LRU / Flex+BRRIP).
cache_bound = [e["speedup"] for e in benchmarks
               if "speedup" in e and ("FlexLru" in e["name"] or "FlexBrrip" in e["name"])]
if cache_bound:
    out["speedup_geomean_cache_bound"] = round(geomean(cache_bound), 2)

# Per-category geomeans (time, and speedup where the baseline has the row):
# one line per category so BENCH_*.json trajectories compare across PRs
# without re-deriving them.  A row belongs to the first prefix that matches.
CATEGORIES = ["Replay", "Sweep", "DagBuild", "ReuseIndex", "LlmDecode",
              "Multinode", "TraceOverhead", "Cg", "Resnet"]
categories = {}
for e in benchmarks:
    stem = e["name"].removeprefix("BM_")
    cat = next((c for c in CATEGORIES if stem.startswith(c)), "Other")
    categories.setdefault(cat, []).append(e)
out["categories"] = {
    cat: {
        "rows": len(rows),
        "geomean_real_time_ms": round(geomean([r["real_time_ms"] for r in rows]), 3),
        **({"geomean_speedup": round(geomean([r["speedup"] for r in rows if "speedup" in r]), 2)}
           if any("speedup" in r for r in rows) else {}),
    }
    for cat, rows in sorted(categories.items())
}

json.dump(out, open(out_path, "w"), indent=2)
print(f"wrote {out_path} ({len(benchmarks)} benchmarks)")
for e in benchmarks:
    s = f"  {e['name']:<28} {e['real_time_ms']:>10.3f} ms"
    if "speedup" in e:
        s += f"   ({e['speedup']}x vs baseline {e['baseline_ms']} ms)"
    print(s)
for cat, agg in out["categories"].items():
    s = (f"geomean {cat:<14} {agg['geomean_real_time_ms']:>10.3f} ms"
         f" over {agg['rows']} row(s)")
    if "geomean_speedup" in agg:
        s += f", {agg['geomean_speedup']}x vs baseline"
    print(s)
EOF
