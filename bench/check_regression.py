#!/usr/bin/env python3
"""Fail (exit 1) when benchmark rows regress beyond a tolerance vs a baseline.

    bench/check_regression.py CURRENT.json BASELINE.json [--max-ratio 1.25]
                              [--filter REGEX]

CURRENT is either a raw google-benchmark --benchmark_out file or a
bench/run_bench.sh summary (BENCH_tracesim.json); BASELINE likewise (the
checked-in bench/baseline_tracesim.json uses the summary shape).  When a
benchmark was run with repetitions the median aggregate is used, matching
run_bench.sh.  Rows are matched by name; only names present in BOTH files are
compared, and at least one comparison is required (exit 2 otherwise, so a
typo'd --filter cannot pass vacuously).
"""
import argparse
import json
import re
import sys

_UNIT_TO_MS = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}


def rows_ms(path):
    """name -> real_time in ms, from either supported file shape.

    Unreadable, truncated or shape-drifted files exit 2 with a one-line
    diagnosis: a CI gate must never pass (or spew a traceback) because its
    input was half a file.
    """
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read benchmark file '{path}': {e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: '{path}' is not valid JSON (truncated benchmark run?): {e}")
    if not isinstance(doc, dict):
        sys.exit(f"error: '{path}' is not a benchmark document (top level is "
                 f"{type(doc).__name__}, expected an object)")
    entries = doc.get("benchmarks", [])
    if not isinstance(entries, list) or not all(isinstance(e, dict) for e in entries):
        sys.exit(f"error: '{path}': \"benchmarks\" must be a list of objects")
    try:
        # run_bench.sh summary shape: real_time_ms, one row per benchmark.
        if any("real_time_ms" in e for e in entries):
            return {e["name"]: float(e["real_time_ms"])
                    for e in entries if "real_time_ms" in e}
        # Raw google-benchmark shape: prefer median aggregates when present.
        medians = [e for e in entries
                   if e.get("run_type") == "aggregate" and e.get("aggregate_name") == "median"]
        picked = medians or [e for e in entries
                             if e.get("run_type", "iteration") == "iteration"]
        out = {}
        for e in picked:
            name = e.get("run_name", e["name"])
            out[name] = float(e["real_time"]) * _UNIT_TO_MS[e.get("time_unit", "ns")]
        return out
    except (KeyError, TypeError, ValueError) as e:
        sys.exit(f"error: '{path}': malformed benchmark row: {e!r}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--max-ratio", type=float, default=1.25,
                    help="fail when current/baseline exceeds this (default 1.25 = +25%%)")
    ap.add_argument("--filter", default=None, help="only compare names matching this regex")
    args = ap.parse_args()

    current = rows_ms(args.current)
    baseline = rows_ms(args.baseline)
    pattern = re.compile(args.filter) if args.filter else None

    compared, regressions, unbaselined = [], [], []
    for name in sorted(current):
        if pattern and not pattern.search(name):
            continue
        if name not in baseline:
            unbaselined.append(name)
            continue
        ratio = current[name] / baseline[name]
        compared.append((name, current[name], baseline[name], ratio))
        if ratio > args.max_ratio:
            regressions.append(name)

    # New rows are legitimate before a baseline re-recording, but make them
    # visible: an ungated row must never read as a gated one.
    for name in unbaselined:
        print(f"warning: {name} has no baseline row — not gated", file=sys.stderr)

    if not compared:
        print(f"error: no benchmark names shared between {args.current} and "
              f"{args.baseline}" + (f" matching /{args.filter}/" if args.filter else ""),
              file=sys.stderr)
        return 2

    width = max(len(n) for n, *_ in compared)
    for name, cur, base, ratio in compared:
        flag = "  REGRESSION" if name in regressions else ""
        print(f"  {name:<{width}}  {cur:>10.3f} ms  vs baseline {base:>10.3f} ms "
              f"({ratio:.2f}x){flag}")
    if regressions:
        print(f"FAIL: {len(regressions)} row(s) regressed beyond {args.max_ratio:.2f}x: "
              + ", ".join(regressions), file=sys.stderr)
        return 1
    print(f"OK: {len(compared)} row(s) within {args.max_ratio:.2f}x of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
