// Ablations of Cello's design knobs beyond the paper's figures
// (DESIGN.md §7): hold budget, register-file capacity, RIFF-index entry
// count, and swizzle minimization.
#include "bench_util.hpp"
#include "score/schedule.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/resnet.hpp"

int main() {
  using namespace cello;
  bench::print_header("Design-knob ablations", "DESIGN.md §7");

  // --- (1) pipeline-buffer hold budget on ResNet (SET/Cello need to *hold*
  //     the skip tensor; too small a budget forces writeback) ---------------
  {
    const auto dag = workloads::build_resnet_block_dag({});
    std::cout << "Hold budget vs ResNet skip-connection servicing:\n";
    TextTable t({"hold budget", "SET DRAM traffic", "Cello DRAM traffic"});
    for (Bytes kib : {256ull, 512ull, 1024ull, 2048ull}) {
      auto arch = bench::table5_config(250e9);
      arch.hold_budget_bytes = kib * 1024;
      const auto set_m = run(dag, sim::ConfigKind::Set, arch);
      const auto cello_m = run(dag, sim::ConfigKind::Cello, arch);
      t.add_row({std::to_string(kib) + " KiB",
                 format_bytes(static_cast<double>(set_m.dram_bytes)),
                 format_bytes(static_cast<double>(cello_m.dram_bytes))});
    }
    std::cout << t.to_string();
    std::cout << "(the skip tensor is 784x512x2B = 784 KiB: below that budget SET must\n"
                 " spill it to DRAM, while Cello reroutes it through CHORD and keeps it\n"
                 " on chip — the co-design's robustness to the pipeline-buffer split)\n\n";
  }

  // --- (2) register-file capacity on CG: too small and the Greek tensors
  //     start competing for CHORD entries ------------------------------------
  {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    auto shape = bench::cg_shape_for(spec, 16);
    const auto dag = workloads::build_cg_dag(shape);
    std::cout << "Register-file capacity vs CG traffic (Cello):\n";
    TextTable t({"RF bytes", "DRAM traffic", "GMACs/s"});
    for (Bytes b : {512ull, 4096ull, 65536ull}) {
      auto arch = bench::table5_config();
      arch.rf_bytes = b;
      const auto m = run(dag, sim::ConfigKind::Cello, arch);
      t.add_row({format_bytes(static_cast<double>(b)),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 format_double(m.gmacs_per_sec(), 1)});
    }
    std::cout << t.to_string();
    std::cout << "(N=16 Greek tensors are 1 KiB; a 512 B RF pushes them into CHORD, "
                 "where\n they are cheap but occupy index entries)\n\n";
  }

  // --- (3) RIFF-index entry count on BiCGStab (more live bases than CG) -----
  {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    workloads::BiCgStabShape b;
    b.m = spec.rows;
    b.nnz = spec.nnz;
    b.iterations = 10;
    const auto dag = workloads::build_bicgstab_dag(b);
    std::cout << "RIFF-index table entries vs BiCGStab traffic (Cello):\n";
    TextTable t({"entries", "DRAM traffic"});
    for (u32 entries : {2u, 4u, 8u, 64u}) {
      auto arch = bench::table5_config();
      arch.chord_entries = entries;
      const auto m = run(dag, sim::ConfigKind::Cello, arch);
      t.add_row({std::to_string(entries), format_bytes(static_cast<double>(m.dram_bytes))});
    }
    std::cout << t.to_string();
    std::cout << "(the paper's 64 entries are comfortable: BiCGStab has ~12 live bases; "
                 "2\n entries force most operands straight to DRAM)\n\n";
  }

  // --- (4) swizzle minimization on/off --------------------------------------
  {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    auto shape = bench::cg_shape_for(spec, 16);
    const auto dag = workloads::build_cg_dag(shape);
    score::ScheduleOptions on, off;
    off.minimize_swizzle = false;
    const auto s_on = score::build_schedule(dag, on);
    const auto s_off = score::build_schedule(dag, off);
    std::cout << "Swizzle minimization: " << s_on.swizzle_count
              << " transforms with the majority-vote layout vs " << s_off.swizzle_count
              << " with producer-preferred layout.\n";
    std::cout << "(CG's skewed tensors are consistently m-major, so SCORE reaches zero; "
                 "the\n knob matters for DAGs whose consumers disagree on layout)\n";
  }
  return 0;
}
