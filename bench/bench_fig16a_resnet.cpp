// Fig. 16(a): ResNet conv3_x residual block — performance and off-chip energy
// for all configurations including the SET baseline, at 250 GB/s and 1 TB/s.
#include "bench_util.hpp"
#include "workloads/resnet.hpp"

int main() {
  using namespace cello;
  bench::print_header("ResNet residual block performance and energy", "Fig. 16(a)");

  const auto dag = workloads::build_resnet_block_dag({});
  for (double bw : {250e9, 1e12}) {
    const auto arch = bench::table5_config(bw);
    std::cout << "memory bandwidth = " << format_rate(bw, "B/s") << "\n";
    TextTable t({"config", "GMACs/s", "DRAM traffic", "relative energy", "bound"});
    double base_energy = 0;
    for (auto kind : all_configs()) {
      const auto m = run(dag, kind, arch);
      if (kind == sim::ConfigKind::Flexagon) base_energy = m.offchip_energy_pj;
      const double compute_s = arch.compute_seconds(m.total_macs);
      t.add_row({sim::to_string(kind), format_double(m.gmacs_per_sec(), 1),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 format_double(m.offchip_energy_pj / base_energy, 3),
                 m.seconds <= compute_s * 1.05 ? "compute" : "memory"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "Expected shape: SET == Cello (both hold the skip tensor on chip),\n"
               "FLAT in between (pipelines T1/T2 but spills the skip input), Flexagon\n"
               "worst; at 1 TB/s the block is compute-bound (AI threshold 16.4 ops/B),\n"
               "at 250 GB/s the threshold rises to 65.5 ops/B and buffering matters.\n";
  return 0;
}
