// Fig. 11: toy three-step trace contrasting CHORD's operand-level policies
// with LRU and BRRIP line-level replacement on an 8-line buffer.
#include "bench_util.hpp"
#include "cache/cache.hpp"
#include "chord/chord.hpp"

namespace {

using namespace cello;

constexpr Bytes kLine = 16;
// The figure's buffer holds half a tensor (4 slots of 2 elements vs
// 8-element tensors), which is what exposes the line-level pathologies.
constexpr Bytes kCap = 4 * kLine;

chord::TensorMeta tensor_meta(i32 id, Addr start, Bytes bytes, i32 uses, i64 dist) {
  chord::TensorMeta m;
  m.id = id;
  m.name = "T" + std::to_string(id + 1);
  m.start_addr = start;
  m.bytes = bytes;
  m.remaining_uses = uses;
  m.next_use_distance = dist;
  return m;
}

std::string cache_lines_held(const cache::SetAssocCache& c, Addr start, Bytes bytes,
                             const std::string& label) {
  u64 held = 0;
  for (Addr a = start; a < start + bytes; a += kLine)
    if (c.contains(a)) ++held;
  return label + ":" + std::to_string(held) + "/" + std::to_string(bytes / kLine);
}

}  // namespace

int main() {
  using namespace cello;
  bench::print_header("Toy trace: operand-level CHORD vs line-level LRU/BRRIP", "Fig. 11");

  // Four tensors of 8 lines each (T1..T4); the buffer holds 8 lines total.
  const Addr t1 = 0x0, t3 = 0x2000, t4 = 0x3000;
  const Bytes sz = 8 * kLine;

  cache::SetAssocCache lru(kCap, kLine, 4, cache::Policy::Lru);
  cache::SetAssocCache brrip(kCap, kLine, 4, cache::Policy::Brrip);
  chord::ChordBuffer chord_buf(kCap, kLine, /*riff=*/true);

  auto stream = [&](cache::SetAssocCache& c, Addr start, bool write) {
    c.access_range(start, sz, write);
  };

  TextTable t({"step", "action", "LRU holds", "BRRIP holds", "CHORD resident"});

  // Step 1: write T1 (T1 will be re-referenced from its head later).
  stream(lru, t1, true);
  stream(brrip, t1, true);
  chord_buf.write_tensor(tensor_meta(0, t1, sz, /*uses=*/2, /*dist=*/1));
  t.add_row({"1", "write T1", cache_lines_held(lru, t1, sz, "T1"),
             cache_lines_held(brrip, t1, sz, "T1"),
             "T1:" + std::to_string(chord_buf.resident_bytes(0) / kLine) + "/8"});

  // Step 2: T3 = T1 . T2 (T2 streams from the RF): read T1, write T3.
  // T3 is needed sooner than T1's next use -> RIFF overwrites T1.
  stream(lru, t1, false);
  stream(lru, t3, true);
  stream(brrip, t1, false);
  stream(brrip, t3, true);
  chord_buf.read_tensor(tensor_meta(0, t1, sz, /*uses=*/1, /*dist=*/5));
  chord_buf.write_tensor(tensor_meta(2, t3, sz, /*uses=*/2, /*dist=*/1));
  t.add_row({"2", "read T1, write T3",
             cache_lines_held(lru, t1, sz, "T1") + " " + cache_lines_held(lru, t3, sz, "T3"),
             cache_lines_held(brrip, t1, sz, "T1") + " " +
                 cache_lines_held(brrip, t3, sz, "T3"),
             "T1:" + std::to_string(chord_buf.resident_bytes(0) / kLine) + "/8 T3:" +
                 std::to_string(chord_buf.resident_bytes(2) / kLine) + "/8"});

  // Step 3: T5 = T3 . T4 (T4 in RF, T5 pipelined): read T3 again.
  u64 lru_miss0 = lru.stats().misses, brrip_miss0 = brrip.stats().misses;
  const Bytes chord_dram0 = chord_buf.stats().dram_bytes();
  stream(lru, t3, false);
  stream(brrip, t3, false);
  const auto r = chord_buf.read_tensor(tensor_meta(2, t3, sz, /*uses=*/1, /*dist=*/1));
  t.add_row({"3", "read T3 (the payoff)",
             std::to_string(lru.stats().misses - lru_miss0) + " misses",
             std::to_string(brrip.stats().misses - brrip_miss0) + " misses",
             std::to_string((chord_buf.stats().dram_bytes() - chord_dram0) / kLine) +
                 " lines from DRAM"});
  std::cout << t.to_string();
  (void)t4;
  (void)r;

  std::cout << "\nPaper story: LRU keeps the *tail* of whatever streamed last, so the\n"
               "head of the next-needed tensor always misses; BRRIP resists the scan but\n"
               "still holds stale T1 lines; CHORD keeps whole-operand prefixes ordered by\n"
               "DAG reuse (RIFF evicted T1 for the sooner-needed T3): step 3 hits on the\nresident head and re-reads only the unplaced tail.\n";
  return 0;
}
