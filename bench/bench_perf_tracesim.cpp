// Trace-driven simulation throughput (the Fig. 16(b) shape): CG on
// shallow_water1 and a ResNet conv3_x block pushed through the cache-backed
// Table IV baselines (Flex+LRU, Flex+BRRIP) at several SRAM capacities, plus
// Cello as the analytic-policy reference point.
//
// These are the configurations whose wall time bounds every sweep in the
// repo, so this binary seeds the perf trajectory: bench/run_bench.sh runs it
// and writes BENCH_tracesim.json, which future PRs diff against.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

const sparse::CsrMatrix& shallow_water_matrix() {
  static const sparse::CsrMatrix m =
      sparse::instantiate(sparse::dataset_by_name("shallow_water1"));
  return m;
}

const ir::TensorDag& cg_dag() {
  static const ir::TensorDag dag = [] {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    auto shape = bench::cg_shape_for(spec, 16, /*iterations=*/5);
    shape.nnz = shallow_water_matrix().nnz();
    return workloads::build_cg_dag(shape);
  }();
  return dag;
}

const ir::TensorDag& resnet_dag() {
  static const ir::TensorDag dag = workloads::build_resnet_block_dag({});
  return dag;
}

void run_config(benchmark::State& state, const ir::TensorDag& dag,
                const sparse::CsrMatrix* matrix, const char* config_name) {
  const auto arch =
      bench::table5_config(1e12, static_cast<Bytes>(state.range(0)) * 1024 * 1024);
  const sim::Simulator simulator(arch, matrix);
  const sim::Configuration& config = sim::ConfigRegistry::global().at(config_name);
  Bytes dram_bytes = 0;
  for (auto _ : state) {
    const sim::RunMetrics m = simulator.run(dag, config);
    dram_bytes = m.dram_bytes;
    benchmark::DoNotOptimize(dram_bytes);
  }
  state.counters["dram_bytes"] =
      benchmark::Counter(static_cast<double>(dram_bytes));
}

void BM_CgFlexLru(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+LRU");
}
void BM_CgFlexBrrip(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+BRRIP");
}
void BM_ResnetFlexLru(benchmark::State& s) { run_config(s, resnet_dag(), nullptr, "Flex+LRU"); }
void BM_ResnetFlexBrrip(benchmark::State& s) {
  run_config(s, resnet_dag(), nullptr, "Flex+BRRIP");
}
void BM_CgCello(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Cello");
}

}  // namespace

// SRAM capacity in MiB — the Fig. 16(b) sweep points.
BENCHMARK(BM_CgFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgCello)->Arg(4)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
