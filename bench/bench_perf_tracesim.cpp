// Trace-driven simulation throughput (the Fig. 16(b) shape): CG on
// shallow_water1 and a ResNet conv3_x block pushed through the cache-backed
// Table IV baselines (Flex+LRU, Flex+BRRIP) at several SRAM capacities, plus
// Cello as the analytic-policy reference point.
//
// These are the configurations whose wall time bounds every sweep in the
// repo, so this binary seeds the perf trajectory: bench/run_bench.sh runs it
// and writes BENCH_tracesim.json, which future PRs diff against.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "sim/registry.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

const sparse::CsrMatrix& shallow_water_matrix() {
  static const sparse::CsrMatrix m =
      sparse::instantiate(sparse::dataset_by_name("shallow_water1"));
  return m;
}

const ir::TensorDag& cg_dag() {
  static const ir::TensorDag dag = [] {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    auto shape = bench::cg_shape_for(spec, 16, /*iterations=*/5);
    shape.nnz = shallow_water_matrix().nnz();
    return workloads::build_cg_dag(shape);
  }();
  return dag;
}

const ir::TensorDag& resnet_dag() {
  static const ir::TensorDag dag = workloads::build_resnet_block_dag({});
  return dag;
}

void run_config(benchmark::State& state, const ir::TensorDag& dag,
                const sparse::CsrMatrix* matrix, const char* config_name) {
  const auto arch =
      bench::table5_config(1e12, static_cast<Bytes>(state.range(0)) * 1024 * 1024);
  const sim::Simulator simulator(arch, matrix);
  const sim::Configuration& config = sim::ConfigRegistry::global().at(config_name);
  Bytes dram_bytes = 0;
  for (auto _ : state) {
    const sim::RunMetrics m = simulator.run(dag, config);
    dram_bytes = m.dram_bytes;
    benchmark::DoNotOptimize(dram_bytes);
  }
  state.counters["dram_bytes"] =
      benchmark::Counter(static_cast<double>(dram_bytes));
}

void BM_CgFlexLru(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+LRU");
}
void BM_CgFlexBrrip(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+BRRIP");
}
void BM_ResnetFlexLru(benchmark::State& s) { run_config(s, resnet_dag(), nullptr, "Flex+LRU"); }
void BM_ResnetFlexBrrip(benchmark::State& s) {
  run_config(s, resnet_dag(), nullptr, "Flex+BRRIP");
}
void BM_CgCello(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Cello");
}

// ---- sweep-level rows -------------------------------------------------------
// A one-workload grid over the analytic/CHORD configurations, where schedule
// construction dominates each cell.  The shared row exercises SweepRunner's
// per-(workload, schedule-policy) Schedule/AddressMap cache (8 cells, 2
// schedule builds); the rebuild row replays the pre-cache behavior (one
// schedule + address map per cell) and is the recorded baseline the shared
// row's speedup is quoted against.  threads=1 so the delta is purely
// algorithmic, not thread-pool scaling.

const std::vector<std::string>& sweep_config_names() {
  static const std::vector<std::string> kNames = {
      "Flexagon", "FLAT",           "SET",        "Prelude-only",
      "Cello",    "SCORE+explicit", "FLAT+CHORD", "SET+CHORD"};
  return kNames;
}

const sim::Workload& sweep_cg_workload() {
  static const sim::Workload wl = sim::WorkloadRegistry::global().resolve("cg:iters=20,n=16");
  return wl;
}

void BM_SweepCgAnalyticShared(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const std::vector<sim::Workload> workloads = {sweep_cg_workload()};
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    const auto cells = runner.run(workloads, sweep_config_names(), arch);
    benchmark::DoNotOptimize(cells.back().metrics.dram_bytes);
  }
}

void BM_SweepCgAnalyticRebuild(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const auto& wl = sweep_cg_workload();
  const auto& registry = sim::ConfigRegistry::global();
  const sim::Simulator simulator(arch, wl.matrix.get());
  for (auto _ : state) {
    Bytes dram_bytes = 0;
    for (const auto& name : sweep_config_names())
      dram_bytes += simulator.run(*wl.dag, registry.at(name)).dram_bytes;
    benchmark::DoNotOptimize(dram_bytes);
  }
}

// The same grid as BM_SweepCgAnalyticShared, but split into 3 contiguous
// shards run back-to-back and recombined with merge_shards — the overhead of
// distributing a sweep (per-shard schedule rebuilds, plan/validate/merge
// bookkeeping) shows up as the delta against the Shared row.  threads=1 so
// the comparison is purely algorithmic.
void BM_SweepSharded(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const sim::SweepGrid grid =
      sim::make_grid({"cg:iters=20,n=16"}, sweep_config_names(), arch);
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    std::vector<sim::ShardResult> shards(3);
    for (u32 i = 1; i <= 3; ++i) {
      shards[i - 1].grid = grid;
      shards[i - 1].plan = sim::plan_shard(grid, i, 3);
      shards[i - 1].results = runner.run_shard(grid, shards[i - 1].plan);
    }
    const auto merged = sim::merge_shards(shards);
    benchmark::DoNotOptimize(merged.back().metrics.dram_bytes);
  }
}

}  // namespace

// SRAM capacity in MiB — the Fig. 16(b) sweep points.
BENCHMARK(BM_CgFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgCello)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepCgAnalyticShared)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepCgAnalyticRebuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepSharded)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
