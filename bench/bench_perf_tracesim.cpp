// Trace-driven simulation throughput (the Fig. 16(b) shape): CG on
// shallow_water1 and a ResNet conv3_x block pushed through the cache-backed
// Table IV baselines (Flex+LRU, Flex+BRRIP) at several SRAM capacities, plus
// Cello as the analytic-policy reference point.
//
// These are the configurations whose wall time bounds every sweep in the
// repo, so this binary seeds the perf trajectory: bench/run_bench.sh runs it
// and writes BENCH_tracesim.json, which future PRs diff against.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <sstream>

#include "bench_util.hpp"
#include "noc/topology.hpp"
#include "sim/access_stream.hpp"
#include "sim/policies/cache_policy.hpp"
#include "sim/policies/schedule_policy.hpp"
#include "sim/registry.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "trace/trace.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

const sparse::CsrMatrix& shallow_water_matrix() {
  static const sparse::CsrMatrix m =
      sparse::instantiate(sparse::dataset_by_name("shallow_water1"));
  return m;
}

const ir::TensorDag& cg_dag() {
  static const ir::TensorDag dag = [] {
    const auto& spec = sparse::dataset_by_name("shallow_water1");
    auto shape = bench::cg_shape_for(spec, 16, /*iterations=*/5);
    shape.nnz = shallow_water_matrix().nnz();
    return workloads::build_cg_dag(shape);
  }();
  return dag;
}

const ir::TensorDag& resnet_dag() {
  static const ir::TensorDag dag = workloads::build_resnet_block_dag({});
  return dag;
}

void run_config(benchmark::State& state, const ir::TensorDag& dag,
                const sparse::CsrMatrix* matrix, const char* config_name) {
  const auto arch =
      bench::table5_config(1e12, static_cast<Bytes>(state.range(0)) * 1024 * 1024);
  const sim::Simulator simulator(arch, matrix);
  const sim::Configuration& config = sim::ConfigRegistry::global().at(config_name);
  Bytes dram_bytes = 0;
  for (auto _ : state) {
    const sim::RunMetrics m = simulator.run(dag, config);
    dram_bytes = m.dram_bytes;
    benchmark::DoNotOptimize(dram_bytes);
  }
  state.counters["dram_bytes"] =
      benchmark::Counter(static_cast<double>(dram_bytes));
}

void BM_CgFlexLru(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+LRU");
}
void BM_CgFlexBrrip(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Flex+BRRIP");
}
void BM_ResnetFlexLru(benchmark::State& s) { run_config(s, resnet_dag(), nullptr, "Flex+LRU"); }
void BM_ResnetFlexBrrip(benchmark::State& s) {
  run_config(s, resnet_dag(), nullptr, "Flex+BRRIP");
}
void BM_CgCello(benchmark::State& s) {
  run_config(s, cg_dag(), &shallow_water_matrix(), "Cello");
}

// ---- trace overhead row -----------------------------------------------------
// The BM_CgCello cell narrated into an in-memory ChromeTraceWriter every
// iteration: the delta against BM_CgCello is the full cost of op-level
// tracing (per-step capture + event formatting + streaming serialization),
// and the trace_events / trace_bytes counters record the trace volume in the
// BENCH_tracesim.json trajectory so serialization changes stay visible.
void BM_TraceOverhead(benchmark::State& state) {
  const auto arch =
      bench::table5_config(1e12, static_cast<Bytes>(state.range(0)) * 1024 * 1024);
  const sim::Simulator simulator(arch, &shallow_water_matrix());
  const sim::Configuration& config = sim::ConfigRegistry::global().at("Cello");
  u64 events = 0, bytes = 0;
  for (auto _ : state) {
    std::ostringstream out;
    trace::ChromeTraceWriter writer(out);
    sim::RunArtifacts art;
    art.trace = &writer;
    const sim::RunMetrics m = simulator.run(cg_dag(), config, art);
    writer.finish();
    events = writer.events();
    bytes = out.str().size();
    benchmark::DoNotOptimize(m.dram_bytes);
  }
  state.counters["trace_events"] = benchmark::Counter(static_cast<double>(events));
  state.counters["trace_bytes"] = benchmark::Counter(static_cast<double>(bytes));
}

// ---- sweep-level rows -------------------------------------------------------
// A one-workload grid over the analytic/CHORD configurations, where schedule
// construction dominates each cell.  The shared row exercises SweepRunner's
// per-(workload, schedule-policy) Schedule/AddressMap cache (8 cells, 2
// schedule builds); the rebuild row replays the pre-cache behavior (one
// schedule + address map per cell) and is the recorded baseline the shared
// row's speedup is quoted against.  threads=1 so the delta is purely
// algorithmic, not thread-pool scaling.

const std::vector<std::string>& sweep_config_names() {
  static const std::vector<std::string> kNames = {
      "Flexagon", "FLAT",           "SET",        "Prelude-only",
      "Cello",    "SCORE+explicit", "FLAT+CHORD", "SET+CHORD"};
  return kNames;
}

const sim::Workload& sweep_cg_workload() {
  static const sim::Workload wl = sim::WorkloadRegistry::global().resolve("cg:iters=20,n=16");
  return wl;
}

void BM_SweepCgAnalyticShared(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const std::vector<sim::Workload> workloads = {sweep_cg_workload()};
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    const auto cells = runner.run(workloads, sweep_config_names(), arch);
    benchmark::DoNotOptimize(cells.back().metrics.dram_bytes);
  }
}

void BM_SweepCgAnalyticRebuild(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const auto& wl = sweep_cg_workload();
  const auto& registry = sim::ConfigRegistry::global();
  const sim::Simulator simulator(arch, wl.matrix.get());
  for (auto _ : state) {
    Bytes dram_bytes = 0;
    for (const auto& name : sweep_config_names())
      dram_bytes += simulator.run(*wl.dag, registry.at(name)).dram_bytes;
    benchmark::DoNotOptimize(dram_bytes);
  }
}

// The same grid as BM_SweepCgAnalyticShared, but split into 3 contiguous
// shards run back-to-back and recombined with merge_shards — the overhead of
// distributing a sweep (per-shard schedule rebuilds, plan/validate/merge
// bookkeeping) shows up as the delta against the Shared row.  threads=1 so
// the comparison is purely algorithmic.
void BM_SweepSharded(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const sim::SweepGrid grid =
      sim::make_grid({"cg:iters=20,n=16"}, sweep_config_names(), arch);
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    std::vector<sim::ShardResult> shards(3);
    for (u32 i = 1; i <= 3; ++i) {
      shards[i - 1].grid = grid;
      shards[i - 1].plan = sim::plan_shard(grid, i, 3);
      shards[i - 1].results = runner.run_shard(grid, shards[i - 1].plan);
    }
    const auto merged = sim::merge_shards(shards);
    benchmark::DoNotOptimize(merged.back().metrics.dram_bytes);
  }
}

// ---- setup-path rows --------------------------------------------------------
// Per-cell *setup* cost, separated from steady-state replay cost (the
// setup_ms counter feeds the BENCH_tracesim.json perf trajectory).

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

// Construct + destroy the sweep CG workload's DAG (the cold half of a
// WorkloadRegistry::resolve of "cg:iters=20,n=16").  The arena backing makes
// both ends cheap: payloads bump-allocate, teardown frees chunks not nodes.
void BM_DagBuild(benchmark::State& state) {
  const auto shape = bench::cg_shape_for(sparse::dataset_by_name("shallow_water1"), 16,
                                         /*iterations=*/20);
  double build_seconds = 0;
  i64 iters = 0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    const ir::TensorDag dag = workloads::build_cg_dag(shape);
    build_seconds += seconds_since(t0);
    ++iters;
    benchmark::DoNotOptimize(dag.ops().size());
  }
  // Construction-only share of the row (the rest is destruction).
  state.counters["setup_ms"] =
      benchmark::Counter(iters > 0 ? build_seconds * 1e3 / static_cast<double>(iters) : 0);
}

// The 8-cell analytic CG grid with *fully shared* immutable setup — one
// AddressMap, one Schedule + ReuseIndex per schedule-options slot — and one
// pooled RunScratch reset between cells.  The recorded baseline row is the
// same grid pre-PR (shared Schedule+AddressMap, but per-cell BaseReuse
// rebuild and fresh per-cell run state), so the speedup isolates the
// ReuseIndex share + scratch pooling.  setup_ms reports the one-time shared
// prebuild.
void BM_ReuseIndexShared(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const auto& wl = sweep_cg_workload();
  const auto& registry = sim::ConfigRegistry::global();
  const sim::Simulator simulator(arch, wl.matrix.get());

  const auto t0 = std::chrono::steady_clock::now();
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
  std::vector<score::ScheduleOptions> keys;
  std::vector<size_t> slot_of;
  std::vector<score::Schedule> scheds;
  std::vector<score::ReuseIndex> indexes;
  for (const auto& name : sweep_config_names()) {
    const auto opts = simulator.schedule_options(registry.at(name));
    size_t slot = 0;
    while (slot < keys.size() && !(keys[slot] == opts)) ++slot;
    if (slot == keys.size()) {
      keys.push_back(opts);
      scheds.push_back(score::build_schedule(*wl.dag, opts));
      indexes.push_back(
          score::ReuseIndex::build(*wl.dag, scheds.back(), map.base_of, map.entries.size()));
    }
    slot_of.push_back(slot);
  }
  const double setup_ms = seconds_since(t0) * 1e3;

  sim::RunScratch scratch;
  for (auto _ : state) {
    Bytes dram_bytes = 0;
    for (size_t ci = 0; ci < sweep_config_names().size(); ++ci) {
      const sim::Configuration& config = registry.at(sweep_config_names()[ci]);
      sim::RunArtifacts art;
      art.schedule = &scheds[slot_of[ci]];
      art.address_map = &map;
      art.reuse_index = &indexes[slot_of[ci]];
      art.scratch = &scratch;
      dram_bytes += simulator.run(*wl.dag, config, art).dram_bytes;
    }
    benchmark::DoNotOptimize(dram_bytes);
  }
  state.counters["setup_ms"] = benchmark::Counter(setup_ms);
}

// ---- LLM decode rows --------------------------------------------------------
// The documented budget-exceeding decode (KV extent ~8.4 MB across 2 layers
// vs 4 MiB SRAM) through the KV-cache ring, the LRU baseline it beats, and
// Cello.  These bound the wall time of llm sweep cells.

const sim::Workload& llm_workload() {
  static const sim::Workload wl = sim::WorkloadRegistry::global().resolve(
      "llm:d_model=512,seq=2048,decode_steps=8,layers=2");
  return wl;
}

void BM_LlmDecodeFlexKv(benchmark::State& s) {
  run_config(s, *llm_workload().dag, nullptr, "Flex+KV");
}
void BM_LlmDecodeFlexLru(benchmark::State& s) {
  run_config(s, *llm_workload().dag, nullptr, "Flex+LRU");
}
void BM_LlmDecodeCello(benchmark::State& s) {
  run_config(s, *llm_workload().dag, nullptr, "Cello");
}

// One llm workload over the analytic grid + Flex+KV through the shared-setup
// sweep path, so llm cells ride the same cache/pool trajectory as CG.
void BM_LlmDecodeSweepShared(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  std::vector<std::string> names = sweep_config_names();
  names.push_back("Flex+KV");
  const std::vector<sim::Workload> workloads = {llm_workload()};
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    const auto cells = runner.run(workloads, names, arch);
    benchmark::DoNotOptimize(cells.back().metrics.dram_bytes);
  }
}

// ---- capture/replay rows ----------------------------------------------------
// The AccessStream capture/replay split (sim/access_stream.hpp): one stream
// per (workload, routing key) amortizes address generation — CSR gathers,
// operand partitioning, span emission — across every cache geometry in a
// sweep column, and periodic streams fast-forward once the cache state
// cycles.  BM_ReplaySweepTable4 is the acceptance row: one CG workload fanned
// across all seven Table IV presets through SweepRunner; the Direct row is
// the same grid with CELLO_DISABLE_REPLAY=1 (the recorded pre-PR baseline it
// is quoted against ran the direct path without the hoisted span emitter).
// threads=1 so the delta is purely algorithmic.

void BM_ReplaySweepTable4(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const std::vector<sim::Workload> workloads = {sweep_cg_workload()};
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    const auto cells = runner.run(workloads, sim::ConfigRegistry::table4_names(), arch);
    benchmark::DoNotOptimize(cells.back().metrics.dram_bytes);
  }
}

void BM_ReplaySweepTable4Direct(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const std::vector<sim::Workload> workloads = {sweep_cg_workload()};
  const sim::SweepRunner runner(/*threads=*/1);
  setenv("CELLO_DISABLE_REPLAY", "1", 1);
  for (auto _ : state) {
    const auto cells = runner.run(workloads, sim::ConfigRegistry::table4_names(), arch);
    benchmark::DoNotOptimize(cells.back().metrics.dram_bytes);
  }
  unsetenv("CELLO_DISABLE_REPLAY");
}

// Capture cost alone (the one-time half the sweep amortizes): schedule,
// address map and router are prebuilt, the loop times span derivation +
// period detection over the real shallow_water1 CSR.
void BM_ReplayCapture(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const auto& wl = sweep_cg_workload();
  const sim::Simulator simulator(arch, wl.matrix.get());
  const sim::Configuration& config = sim::ConfigRegistry::global().at("Flex+LRU");
  const score::Schedule sched = simulator.make_schedule(*wl.dag, config);
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
  const sim::Router router(*wl.dag, sched, config.schedule, config.allow_delayed_hold, arch);
  size_t spans = 0;
  for (auto _ : state) {
    const sim::AccessStream stream =
        sim::AccessStream::capture(*wl.dag, sched, map, wl.matrix.get(), arch, router);
    spans = stream.spans();
    benchmark::DoNotOptimize(spans);
  }
  state.counters["spans"] = benchmark::Counter(static_cast<double>(spans));
}

// Batched replay: LRU + BRRIP at two SRAM budgets over one pass of a single
// captured stream, in occurrence lockstep (CachePolicy::replay_many) — the
// kernel an autotuner search driver would sit on top of.
void BM_ReplayMany(benchmark::State& state) {
  const auto base = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const auto& wl = sweep_cg_workload();
  const sim::Simulator simulator(base, wl.matrix.get());
  const sim::Configuration& config = sim::ConfigRegistry::global().at("Flex+LRU");
  const score::Schedule sched = simulator.make_schedule(*wl.dag, config);
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
  const sim::Router router(*wl.dag, sched, config.schedule, config.allow_delayed_hold, base);
  const sim::AccessStream stream =
      sim::AccessStream::capture(*wl.dag, sched, map, wl.matrix.get(), base, router);

  std::vector<std::unique_ptr<sim::CachePolicy>> policies;
  std::vector<sim::CachePolicy*> ptrs;
  for (const Bytes sram : {1ull << 20, 4ull << 20}) {
    for (const cache::Policy p : {cache::Policy::Lru, cache::Policy::Brrip}) {
      auto arch = base;
      arch.sram_bytes = sram;
      policies.push_back(std::make_unique<sim::CachePolicy>(arch, p));
      ptrs.push_back(policies.back().get());
    }
  }
  std::vector<std::vector<sim::BufferService>> services;
  for (auto _ : state) {
    for (auto& p : policies) p->reset();
    const bool ok = sim::CachePolicy::replay_many(stream, ptrs, services);
    benchmark::DoNotOptimize(ok);
  }
}

// ---- multi-chip rows --------------------------------------------------------
// The arch-driven scale-out path (Sec. V-B): partition the dominant rank,
// simulate one node's shard, price the routed NoC collectives, fold back.
// BM_MultinodeGnn pins the single-cell cost (gnn:cora on a 16-node torus,
// where partition + routing ride on top of a now-smaller per-node run);
// BM_MultinodeCgScaling pins a whole {1,4,16,64}-node fabric-axis column
// through run_shard — the wall time of one scale-out sweep row per config,
// including the shared 1-node baselines and per-fabric partition cache.

const sim::Workload& gnn_workload() {
  static const sim::Workload wl = sim::WorkloadRegistry::global().resolve("gnn:cora");
  return wl;
}

void BM_MultinodeGnn(benchmark::State& state) {
  auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  arch.nodes = state.range(0);
  arch.topology = noc::resolve_topology("torus", arch.nodes).to_string();
  const auto& wl = gnn_workload();
  const sim::Simulator simulator(arch, wl.matrix.get());
  const sim::Configuration& config = sim::ConfigRegistry::global().at("Cello");
  Bytes noc_bytes = 0;
  for (auto _ : state) {
    const sim::RunMetrics m = simulator.run(*wl.dag, config);
    noc_bytes = m.noc_bytes;
    benchmark::DoNotOptimize(noc_bytes);
  }
  state.counters["noc_bytes"] = benchmark::Counter(static_cast<double>(noc_bytes));
}

void BM_MultinodeCgScaling(benchmark::State& state) {
  const auto arch = bench::table5_config(1e12, 4ull * 1024 * 1024);
  const std::vector<std::string> fabrics = {"1", "mesh:2x2", "mesh:4x4", "mesh:8x8"};
  const sim::SweepGrid grid =
      sim::make_grid({"cg:iters=20,n=16"}, {"Flexagon", "Cello"}, arch, fabrics);
  const sim::SweepRunner runner(/*threads=*/1);
  for (auto _ : state) {
    const auto cells = runner.run_shard(grid, sim::plan_shard(grid, 1, 1));
    benchmark::DoNotOptimize(cells.back().metrics.noc_bytes);
  }
}

}  // namespace

// SRAM capacity in MiB — the Fig. 16(b) sweep points.
BENCHMARK(BM_CgFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexLru)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ResnetFlexBrrip)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CgCello)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TraceOverhead)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepCgAnalyticShared)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepCgAnalyticRebuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SweepSharded)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DagBuild)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReuseIndexShared)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LlmDecodeFlexKv)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LlmDecodeFlexLru)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LlmDecodeCello)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LlmDecodeSweepShared)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplaySweepTable4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplaySweepTable4Direct)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplayCapture)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ReplayMany)->Unit(benchmark::kMillisecond);
// Node count on the torus fabric — the scale-out single-cell row.
BENCHMARK(BM_MultinodeGnn)->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MultinodeCgScaling)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
