// Fig. 15: area and per-access energy of a 4 MiB buffet, cache and CHORD.
#include "bench_util.hpp"
#include "mem/sram_model.hpp"

int main() {
  using namespace cello;
  bench::print_header("Area and per-access energy of 4 MiB buffer structures", "Fig. 15");

  const mem::SramModel sram({4ull * 1024 * 1024, 16, 8});

  TextTable a({"structure", "data (mm^2)", "tag (mm^2)", "ctrl/meta (mm^2)", "total (mm^2)"});
  TextTable e({"structure", "data (pJ)", "tag (pJ)", "metadata (pJ)", "total (pJ/access)"});
  for (auto kind : {mem::BufferKind::Buffet, mem::BufferKind::Cache, mem::BufferKind::Chord}) {
    const auto area = sram.area(kind);
    a.add_row({mem::to_string(kind), format_double(area.data_mm2, 2),
               format_double(area.tag_mm2, 2), format_double(area.controller_mm2, 2),
               format_double(area.total(), 2)});
    const auto energy = sram.access_energy(kind);
    e.add_row({mem::to_string(kind), format_double(energy.data_pj, 1),
               format_double(energy.tag_pj, 1), format_double(energy.metadata_pj, 1),
               format_double(energy.total(), 1)});
  }
  std::cout << a.to_string() << "\n" << e.to_string();
  std::cout << "\nPaper anchors: buffet 6.72 mm^2 (+2% controller), cache 9.87 mm^2\n"
               "(6.59 data + 1.85 tag + peripherals), CHORD 6.74 mm^2 (RIFF-index table\n"
               "is ~0.01x the cache tag array); cache tag energy is comparable to its\n"
               "data energy while CHORD reads one 512-bit entry per tensor.\n";
  return 0;
}
