// Fig. 14: off-chip energy of every configuration relative to the explicit
// best-intra baseline, geomeaned per workload class (lower is better).
#include <map>

#include "bench_util.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/gnn.hpp"

int main() {
  using namespace cello;
  bench::print_header("Relative off-chip energy per workload (geomean)", "Fig. 14");

  const auto arch = bench::table5_config();
  // workload class -> config -> list of relative energies across datasets.
  std::map<std::string, std::map<std::string, std::vector<double>>> rel;

  auto record = [&](const std::string& klass, const ir::TensorDag& dag,
                    const sparse::CsrMatrix* matrix) {
    double base = 0;
    for (auto kind : all_configs()) {
      const auto m = run(dag, kind, arch, matrix);
      if (kind == sim::ConfigKind::Flexagon) base = m.offchip_energy_pj;
      rel[klass][sim::to_string(kind)].push_back(m.offchip_energy_pj / base);
    }
  };

  for (const char* name : {"fv1", "shallow_water1", "G2_circuit"}) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    for (i64 n : {1, 16}) {
      auto shape = bench::cg_shape_for(spec, n);
      shape.nnz = matrix.nnz();
      record("PDE solvers (CG)", workloads::build_cg_dag(shape), &matrix);
    }
  }
  for (const char* name : {"fv1", "shallow_water1", "nasa4704"}) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    workloads::BiCgStabShape b;
    b.m = spec.rows;
    b.nnz = matrix.nnz();
    b.iterations = 10;
    record("PDE solvers (BiCGStab)", workloads::build_bicgstab_dag(b), &matrix);
  }
  for (const char* name : {"cora", "protein"}) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    workloads::GnnShape g;
    g.vertices = spec.rows;
    g.nnz = matrix.nnz();
    g.in_features = spec.gnn_in_features;
    g.out_features = spec.gnn_out_features;
    record("GNN", workloads::build_gnn_dag(g), &matrix);
  }

  std::vector<std::string> header = {"workload"};
  for (auto kind : all_configs()) header.push_back(sim::to_string(kind));
  TextTable t(header);
  std::vector<double> cello_rel;
  for (const auto& [klass, per_config] : rel) {
    std::vector<std::string> row = {klass};
    for (auto kind : all_configs()) {
      const auto& xs = per_config.at(sim::to_string(kind));
      const double g = geomean(xs);
      if (kind == sim::ConfigKind::Cello)
        cello_rel.insert(cello_rel.end(), xs.begin(), xs.end());
      row.push_back(format_double(g, 3));
    }
    t.add_row(std::move(row));
  }
  std::cout << t.to_string();
  const double overall = geomean(cello_rel);
  std::cout << "\nCello overall off-chip energy vs Flexagon: " << format_double(overall, 3)
            << " (" << format_double(100 * (1 - overall), 1)
            << "% reduction; paper reports 64-83% per workload, 4x geomean)\n";
  return 0;
}
