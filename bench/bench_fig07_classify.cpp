// Fig. 7: output of Algorithm 2 on the first CG iteration and on the ResNet
// residual block — node dominances and colored edge classes.
#include "bench_util.hpp"
#include "score/dependency.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

void dump(const cello::ir::TensorDag& dag, const std::string& title, size_t max_edges) {
  using namespace cello;
  const auto cls = score::classify_scheduled(dag, dag.topo_order());

  std::cout << title << "\n  nodes: ";
  size_t shown = 0;
  for (const auto& op : dag.ops()) {
    if (shown++ >= 10) break;
    std::cout << op.name << "(" << ir::to_string(op.dominance())
              << (op.kind == ir::OpKind::Inverse ? ",inv" : "") << ") ";
  }
  std::cout << "\n";

  TextTable t({"edge", "tensor", "dependency"});
  shown = 0;
  for (const auto& e : dag.edges()) {
    if (shown++ >= max_edges) break;
    t.add_row({dag.op(e.src).name + " -> " + dag.op(e.dst).name, dag.tensor(e.tensor).name,
               score::to_string(cls.edge_kind[e.id])});
  }
  std::cout << t.to_string() << "\n";
}

}  // namespace

int main() {
  using namespace cello;
  bench::print_header("Algorithm 2 dependency classification", "Fig. 7");

  workloads::CgShape shape;
  shape.m = 1000000;
  shape.n = 16;
  shape.nnz = 9000000;
  shape.iterations = 2;
  dump(workloads::build_cg_dag(shape), "First iteration of the CG loop:", 16);
  dump(workloads::build_resnet_block_dag({}), "ResNet residual block:", 8);

  std::cout << "Paper expectation: CG ops 1/3/4/7 are 'U' (op 1 via the compressed\n"
               "contraction), 2a/5 are 'C', 2b/6 are inverses; S->4, R->7, X->3' and\n"
               "P->3'/7' are delayed writeback (brick red), P->2a' is delayed hold, and\n"
               "the ResNet skip edge is delayed hold (cyan) over all-'bal' nodes.\n";
  return 0;
}
