#!/usr/bin/env python3
"""Validate a Chrome trace_event JSON file written by cello's ChromeTraceWriter.

    bench/check_trace.py TRACE.json [--min-events N]

Checks the properties Perfetto / chrome://tracing rely on, plus the repo's own
determinism contract:

  * the document is one JSON object with a "traceEvents" array;
  * every event is an object carrying name / ph / ts / pid / tid;
  * phases are limited to the set the simulator emits (M metadata, X complete
    span, C counter);
  * X spans have a non-negative dur and ts;
  * counter samples are non-decreasing in time per (pid, tid, name) series;
  * every (pid, tid) that carries events was declared via process_name /
    thread_name metadata;
  * at least --min-events events are present (default 10, so an empty-but-
    well-formed file cannot pass a smoke test vacuously).

Exit 0 on success (printing a one-line summary), 1 on any violation, 2 on an
unreadable/unparseable input — a CI step must never pass on half a file.
"""
import argparse
import json
import sys


def die(code, msg):
    print(f"error: {msg}", file=sys.stderr)
    sys.exit(code)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace_event JSON file")
    parser.add_argument("--min-events", type=int, default=10,
                        help="fail when fewer events are present (default 10)")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except OSError as e:
        die(2, f"cannot read '{args.trace}': {e}")
    except json.JSONDecodeError as e:
        die(2, f"'{args.trace}' is not valid JSON (truncated trace?): {e}")

    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        die(1, "top level must be an object with a 'traceEvents' array")
    events = doc["traceEvents"]

    named_tracks = set()  # (pid, tid) declared via thread_name metadata
    named_pids = set()    # pid declared via process_name metadata
    used_tracks = set()
    counter_clock = {}    # (pid, tid, name) -> last ts
    phases = {"M": 0, "X": 0, "C": 0}

    for i, e in enumerate(events):
        where = f"event {i}"
        if not isinstance(e, dict):
            die(1, f"{where}: not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                die(1, f"{where}: missing '{key}'")
        ph = e["ph"]
        if ph not in phases:
            die(1, f"{where}: unexpected phase {ph!r} (simulator emits M/X/C)")
        phases[ph] += 1
        pid, tid = e["pid"], e["tid"]

        if ph == "M":
            if e["name"] == "process_name":
                named_pids.add(pid)
            elif e["name"] == "thread_name":
                named_tracks.add((pid, tid))
            else:
                die(1, f"{where}: unexpected metadata {e['name']!r}")
            continue

        used_tracks.add((pid, tid))
        ts = e["ts"]
        if not isinstance(ts, (int, float)) or ts < 0:
            die(1, f"{where}: ts {ts!r} is not a non-negative number")
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                die(1, f"{where}: X span dur {dur!r} is not a non-negative number")
        else:  # C
            series = (pid, tid, e["name"])
            if series in counter_clock and ts < counter_clock[series]:
                die(1, f"{where}: counter series {e['name']!r} went backwards "
                       f"({counter_clock[series]} -> {ts})")
            counter_clock[series] = ts

    for pid, tid in sorted(used_tracks):
        if (pid, tid) not in named_tracks:
            die(1, f"track (pid={pid}, tid={tid}) carries events but was never "
                   f"named via thread_name metadata")
        if pid not in named_pids:
            die(1, f"pid {pid} carries events but was never named via "
                   f"process_name metadata")

    if len(events) < args.min_events:
        die(1, f"only {len(events)} events (< --min-events {args.min_events})")

    print(f"ok: {len(events)} events "
          f"({phases['X']} spans, {phases['C']} counters, {phases['M']} metadata) "
          f"across {len(used_tracks)} tracks")


if __name__ == "__main__":
    main()
