// Fig. 13: GNN layers (cora, protein) and BiCGStab (fv1, shallow_water1,
// nasa4704, N=1) across all configurations.
#include "bench_util.hpp"
#include "workloads/bicgstab.hpp"
#include "workloads/gnn.hpp"

int main() {
  using namespace cello;
  bench::print_header("GNN layer and BiCGStab performance", "Fig. 13");

  std::cout << "--- GCN layers ---\n";
  for (const char* name : {"cora", "protein"}) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    workloads::GnnShape g;
    g.vertices = spec.rows;
    g.nnz = matrix.nnz();
    g.in_features = spec.gnn_in_features;
    g.out_features = spec.gnn_out_features;
    const auto dag = workloads::build_gnn_dag(g);
    const auto arch = bench::table5_config();

    std::cout << "dataset=" << name << " (M=" << g.vertices << ", N=" << g.in_features
              << ", O=" << g.out_features << ")\n";
    TextTable t({"config", "GMACs/s", "DRAM traffic", "speedup vs Flexagon"});
    double base = 0;
    for (auto kind : all_configs()) {
      const auto m = run(dag, kind, arch, &matrix);
      if (kind == sim::ConfigKind::Flexagon) base = m.seconds;
      t.add_row({sim::to_string(kind), format_double(m.gmacs_per_sec(), 1),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 format_double(base / m.seconds, 2) + "x"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "Expected shape: Cello == FLAT (the single intermediate is pipelineable\n"
               "with no delayed dependency); caches suffer on cora's large feature map.\n\n";

  std::cout << "--- BiCGStab (N=1) ---\n";
  for (const char* name : {"fv1", "shallow_water1", "nasa4704"}) {
    const auto& spec = sparse::dataset_by_name(name);
    const auto matrix = sparse::instantiate(spec);
    workloads::BiCgStabShape b;
    b.m = spec.rows;
    b.nnz = matrix.nnz();
    b.iterations = 10;
    const auto dag = workloads::build_bicgstab_dag(b);
    const auto arch = bench::table5_config();

    std::cout << "dataset=" << name << " (M=" << b.m << ", nnz=" << b.nnz << ")\n";
    TextTable t({"config", "GMACs/s", "DRAM traffic", "speedup vs Flexagon"});
    double base = 0;
    for (auto kind : all_configs()) {
      const auto m = run(dag, kind, arch, &matrix);
      if (kind == sim::ConfigKind::Flexagon) base = m.seconds;
      t.add_row({sim::to_string(kind), format_double(m.gmacs_per_sec(), 1),
                 format_bytes(static_cast<double>(m.dram_bytes)),
                 format_double(base / m.seconds, 2) + "x"});
    }
    std::cout << t.to_string() << "\n";
  }
  std::cout << "Expected shape: like CG, every BiCGStab vector has delayed downstream\n"
               "consumers, so Cello outperforms the pipelining-only baselines.\n";
  return 0;
}
