// Shared helpers for the per-figure bench binaries.
#pragma once

#include <iostream>
#include <string>
#include <vector>

#include "cello/cello.hpp"
#include "common/format.hpp"
#include "common/stats.hpp"
#include "sparse/datasets.hpp"

namespace cello::bench {

inline sim::AcceleratorConfig table5_config(double bandwidth_bytes_per_sec = 1e12,
                                            Bytes sram = 4ull * 1024 * 1024) {
  sim::AcceleratorConfig arch;
  arch.sram_bytes = sram;
  arch.dram_bytes_per_sec = bandwidth_bytes_per_sec;
  return arch;
}

/// CG workload for a Table VI dataset at block width n.
inline workloads::CgShape cg_shape_for(const sparse::DatasetSpec& spec, i64 n,
                                       i64 iterations = 10) {
  workloads::CgShape s;
  s.m = spec.rows;
  s.n = n;
  s.nnz = spec.nnz;
  s.iterations = iterations;
  return s;
}

inline void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "\n=== " << title << " ===\n";
  std::cout << "(reproduces " << paper_ref << ")\n\n";
}

}  // namespace cello::bench
