// Table II: scheduler capability matrix, generated from what each evaluated
// configuration's scheduler actually supports in this codebase.
#include "bench_util.hpp"
#include "score/dependency.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

struct Capability {
  const char* scheduler;
  bool intra_op, multicast, pipelining, delayed_hold, delayed_writeback, swizzle_min,
      part_implicit;
};

}  // namespace

int main() {
  using namespace cello;
  bench::print_header("Scheduler capability matrix", "Table II");

  // Verified against the engine: which dependency kinds each configuration
  // exploits (see sim::pipelined_tensors and the CHORD routing in the engine).
  const Capability caps[] = {
      {"Best intra-op (Flexagon/Timeloop/MAESTRO class)", true, false, false, false, false,
       false, false},
      {"Pipelining (FLAT/FlashAttention/TileFlow class)", true, false, true, false, false,
       false, false},
      {"Pipelining+hold (SET/TANGRAM class)", true, true, true, true, false, false, false},
      {"SCORE (this work)", true, true, true, true, true, true, true},
  };

  TextTable t({"scheduler", "intra-op", "multicast", "pipelining", "delayed hold",
               "delayed writeback", "swizzle min.", "part-implicit buffer"});
  auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
  for (const auto& c : caps)
    t.add_row({c.scheduler, yn(c.intra_op), yn(c.multicast), yn(c.pipelining),
               yn(c.delayed_hold), yn(c.delayed_writeback), yn(c.swizzle_min),
               yn(c.part_implicit)});
  std::cout << t.to_string();

  // Demonstrate the scope claim concretely: count the dependency kinds SCORE
  // identifies in CG (writeback-rich) and ResNet (hold).
  workloads::CgShape shape;
  shape.m = 100000;
  shape.n = 16;
  shape.nnz = 900000;
  shape.iterations = 10;
  const auto cg = workloads::build_cg_dag(shape);
  const auto cg_cls = score::classify_scheduled(cg, cg.topo_order());
  int pipe = 0, hold = 0, wb = 0, seq = 0;
  for (auto k : cg_cls.edge_kind) {
    switch (k) {
      case score::DepKind::Pipelineable: ++pipe; break;
      case score::DepKind::DelayedHold: ++hold; break;
      case score::DepKind::DelayedWriteback: ++wb; break;
      case score::DepKind::Sequential: ++seq; break;
    }
  }
  std::cout << "\nSCORE on 10-iteration CG: " << pipe << " pipelineable, " << hold
            << " delayed-hold, " << wb << " delayed-writeback, " << seq
            << " sequential edges.\n";
  std::cout << "Prior pipelining-only schedulers can exploit only the " << pipe
            << " adjacent edges; the " << wb
            << " writeback edges are the reuse Cello uniquely captures.\n";
  return 0;
}
