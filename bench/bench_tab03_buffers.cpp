// Table III: buffer-mechanism property matrix plus measured evidence from the
// implemented models (metadata footprint, per-access energy structure).
#include "bench_util.hpp"
#include "chord/chord.hpp"
#include "mem/sram_model.hpp"

int main() {
  using namespace cello;
  bench::print_header("On-chip buffer mechanism comparison", "Table III");

  TextTable t({"mechanism", "exposure", "placement granularity", "online policy",
               "HW overhead", "SW burden"});
  t.add_row({"Cache (LRU/BRRIP)", "implicit", "line", "yes", "highest", "lowest"});
  t.add_row({"Scratchpad", "explicit", "line", "no", "lowest", "highest"});
  t.add_row({"Buffets", "explicit", "tile (credit)", "no", "low", "high"});
  t.add_row({"Tailors", "hybrid", "tile+word", "yes", "low", "high"});
  t.add_row({"CHORD (this work)", "hybrid (coarse explicit, cycle implicit)", "object",
             "yes", "low", "low"});
  std::cout << t.to_string();

  // Quantify the metadata claims with the implemented models.
  const mem::SramModel sram({4ull * 1024 * 1024, 16, 8});
  const auto cache_area = sram.area(mem::BufferKind::Cache);
  const double riff_table_bits = 64.0 * 512.0;
  const double cache_tag_bits =
      (4.0 * 1024 * 1024 / 16) * (28 + 2 + 1 + 1);  // tag + rrpv + valid + dirty per line

  std::cout << "\nMetadata footprint at 4 MiB:\n";
  std::cout << "  cache tag/state array : " << format_double(cache_tag_bits / 8 / 1024, 1)
            << " KiB (" << format_double(cache_area.tag_mm2, 2) << " mm^2)\n";
  std::cout << "  CHORD RIFF-index table: " << format_double(riff_table_bits / 8 / 1024, 1)
            << " KiB (64 entries x 512 b) -> " << format_double(riff_table_bits / cache_tag_bits, 4)
            << "x of the cache tag bits\n";

  // Per-event metadata work: CHORD touches one table entry; a cache touches
  // `assoc` tags per lookup and updates recency on every hit.
  chord::ChordBuffer buf(4096, 16, true);
  chord::TensorMeta m;
  m.id = 0;
  m.name = "T";
  m.start_addr = 0x1000;
  m.bytes = 2048;
  m.remaining_uses = 3;
  m.next_use_distance = 1;
  buf.write_tensor(m);
  buf.read_tensor(m);
  std::cout << "\nCHORD metadata events for one tensor write+read: reads="
            << buf.stats().metadata_reads << " updates=" << buf.stats().metadata_updates
            << " (a cache would perform " << 2048 / 16 * 2
            << " per-line tag lookups for the same traffic)\n";
  return 0;
}
