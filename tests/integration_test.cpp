// Cross-module integration tests: the paper-shape assertions every figure
// relies on, run end-to-end (workload builder -> SCORE -> simulator) over a
// parameter grid.
#include <gtest/gtest.h>

#include "cello/cello.hpp"
#include "sparse/datasets.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigKind;

struct GridPoint {
  const char* dataset;
  i64 n;
  double bandwidth;
};

class CgGridTest : public ::testing::TestWithParam<GridPoint> {};

TEST_P(CgGridTest, PaperShapeHolds) {
  const auto& p = GetParam();
  const auto& spec = sparse::dataset_by_name(p.dataset);
  workloads::CgShape shape;
  shape.m = spec.rows;
  shape.n = p.n;
  shape.nnz = spec.nnz;
  shape.iterations = 10;
  const auto dag = workloads::build_cg_dag(shape);

  AcceleratorConfig arch;
  arch.dram_bytes_per_sec = p.bandwidth;

  const auto flex = run(dag, ConfigKind::Flexagon, arch);
  const auto flat = run(dag, ConfigKind::Flat, arch);
  const auto set = run(dag, ConfigKind::Set, arch);
  const auto prelude = run(dag, ConfigKind::PreludeOnly, arch);
  const auto cello_m = run(dag, ConfigKind::Cello, arch);

  // Fig. 12 orderings.
  EXPECT_EQ(flat.dram_bytes, flex.dram_bytes) << "FLAT gains nothing on CG";
  EXPECT_EQ(set.dram_bytes, flex.dram_bytes) << "SET gains nothing on CG";
  EXPECT_LT(cello_m.dram_bytes, flex.dram_bytes);
  EXPECT_LE(cello_m.dram_bytes, prelude.dram_bytes);
  EXPECT_LT(cello_m.seconds, flex.seconds);

  // Fig. 14: energy reduction between 20% and 99.9%.
  const double rel = cello_m.offchip_energy_pj / flex.offchip_energy_pj;
  EXPECT_GT(rel, 0.001);
  EXPECT_LT(rel, 0.8);
}

INSTANTIATE_TEST_SUITE_P(
    Fig12Grid, CgGridTest,
    ::testing::Values(GridPoint{"fv1", 1, 1e12}, GridPoint{"fv1", 16, 1e12},
                      GridPoint{"fv1", 16, 250e9}, GridPoint{"shallow_water1", 1, 1e12},
                      GridPoint{"shallow_water1", 16, 1e12},
                      GridPoint{"shallow_water1", 16, 250e9},
                      GridPoint{"G2_circuit", 16, 1e12}),
    [](const ::testing::TestParamInfo<GridPoint>& info) {
      return std::string(info.param.dataset) + "_n" + std::to_string(info.param.n) + "_bw" +
             std::to_string(static_cast<int>(info.param.bandwidth / 1e9));
    });

TEST(Integration, CachesLoseToExplicitOnLargeWorkingSets) {
  // The paper's Fig. 12 claim, scoped to working sets exceeding the SRAM.
  const auto& spec = sparse::dataset_by_name("shallow_water1");
  const auto matrix = sparse::instantiate(spec);
  workloads::CgShape shape;
  shape.m = spec.rows;
  shape.n = 16;
  shape.nnz = matrix.nnz();
  shape.iterations = 5;
  const auto dag = workloads::build_cg_dag(shape);
  AcceleratorConfig arch;
  const auto flex = run(dag, ConfigKind::Flexagon, arch, &matrix);
  const auto lru = run(dag, ConfigKind::FlexLru, arch, &matrix);
  const auto brrip = run(dag, ConfigKind::FlexBrrip, arch, &matrix);
  EXPECT_GE(lru.dram_bytes, flex.dram_bytes);
  EXPECT_GE(brrip.dram_bytes, flex.dram_bytes);
}

TEST(Integration, CachesWinOnInCacheWorkingSets) {
  // ...and the complementary regime: everything fits, so hits dominate.
  const auto& spec = sparse::dataset_by_name("fv1");
  const auto matrix = sparse::instantiate(spec);
  workloads::CgShape shape;
  shape.m = spec.rows;
  shape.n = 16;
  shape.nnz = matrix.nnz();
  shape.iterations = 5;
  const auto dag = workloads::build_cg_dag(shape);
  AcceleratorConfig arch;
  const auto flex = run(dag, ConfigKind::Flexagon, arch, &matrix);
  const auto lru = run(dag, ConfigKind::FlexLru, arch, &matrix);
  EXPECT_LT(lru.dram_bytes, flex.dram_bytes);
}

TEST(Integration, RunAllReturnsPaperOrder) {
  const auto dag = workloads::build_gnn_dag({500, 2500, 32, 8});
  const auto results = run_all(dag, AcceleratorConfig{});
  ASSERT_EQ(results.size(), 7u);
  EXPECT_EQ(results.front().first, "Flexagon");
  EXPECT_EQ(results.back().first, "Cello");
}

TEST(Integration, CompareTableMentionsEveryConfig) {
  const auto dag = workloads::build_gnn_dag({500, 2500, 32, 8});
  const auto table = compare_table(dag, AcceleratorConfig{});
  for (auto kind : all_configs())
    EXPECT_NE(table.find(sim::to_string(kind)), std::string::npos) << sim::to_string(kind);
}

TEST(Integration, BandwidthSweepPreservesTraffic) {
  // Analytic configs: DRAM traffic is schedule-determined, independent of BW.
  const auto dag = workloads::build_cg_dag({9604, 16, 85264, 5, 4});
  AcceleratorConfig fast, slow;
  fast.dram_bytes_per_sec = 1e12;
  slow.dram_bytes_per_sec = 250e9;
  for (auto kind : {ConfigKind::Flexagon, ConfigKind::Flat, ConfigKind::Cello}) {
    const auto f = run(dag, kind, fast);
    const auto s = run(dag, kind, slow);
    EXPECT_EQ(f.dram_bytes, s.dram_bytes) << sim::to_string(kind);
    EXPECT_GE(s.seconds, f.seconds) << sim::to_string(kind);
  }
}

TEST(Integration, MoreIterationsMoreTrafficButBetterAmortization) {
  // A reused on-chip, so per-iteration Cello traffic falls with iterations.
  AcceleratorConfig arch;
  const auto d3 = workloads::build_cg_dag({81920, 16, 327680, 3, 4});
  const auto d10 = workloads::build_cg_dag({81920, 16, 327680, 10, 4});
  const auto m3 = run(d3, ConfigKind::Cello, arch);
  const auto m10 = run(d10, ConfigKind::Cello, arch);
  EXPECT_GT(m10.dram_bytes, m3.dram_bytes);
  EXPECT_LT(static_cast<double>(m10.dram_bytes) / 10.0,
            static_cast<double>(m3.dram_bytes) / 3.0);
}

TEST(Integration, ChordEntryStarvationDegradesGracefully) {
  const auto dag = workloads::build_cg_dag({81920, 16, 327680, 5, 4});
  AcceleratorConfig rich, poor;
  poor.chord_entries = 2;
  const auto m_rich = run(dag, ConfigKind::Cello, rich);
  const auto m_poor = run(dag, ConfigKind::Cello, poor);
  EXPECT_GE(m_poor.dram_bytes, m_rich.dram_bytes);
}

TEST(Integration, HoldBudgetDemotionOnResNet) {
  const auto dag = workloads::build_resnet_block_dag({});
  AcceleratorConfig roomy, tight;
  tight.hold_budget_bytes = 64 * 1024;  // cannot hold the 784 KiB skip tensor
  const auto m_roomy = run(dag, ConfigKind::Cello, roomy);
  const auto m_tight = run(dag, ConfigKind::Cello, tight);
  EXPECT_GT(m_tight.dram_bytes, 0u);
  EXPECT_LE(m_roomy.dram_bytes, m_tight.dram_bytes);
}

}  // namespace
