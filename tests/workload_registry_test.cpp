// Tests for sim::WorkloadSpec parsing and the sim::WorkloadRegistry: name /
// override round-trips, dataset-preset shorthand, error handling for unknown
// kinds and malformed parameters, and build-once DAG sharing.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "sim/address_map.hpp"
#include "sim/workload_registry.hpp"
#include "sim/workload_spec.hpp"
#include "sparse/datasets.hpp"
#include "workloads/cg.hpp"
#include "workloads/sddmm.hpp"
#include "workloads/spmv.hpp"

namespace {

using namespace cello;
using sim::WorkloadRegistry;
using sim::WorkloadSpec;

// ---- WorkloadSpec parsing ----------------------------------------------------

TEST(WorkloadSpec, ParsesKindOnly) {
  const auto spec = WorkloadSpec::parse("cg");
  EXPECT_EQ(spec.kind, "cg");
  EXPECT_TRUE(spec.params.empty());
  EXPECT_EQ(spec.to_string(), "cg");
}

TEST(WorkloadSpec, ParsesParameters) {
  const auto spec = WorkloadSpec::parse("cg:m=65536,n=16,iters=10");
  EXPECT_EQ(spec.kind, "cg");
  ASSERT_EQ(spec.params.size(), 3u);
  EXPECT_EQ(spec.params.at("m"), "65536");
  EXPECT_EQ(spec.params.at("n"), "16");
  EXPECT_EQ(spec.params.at("iters"), "10");
}

TEST(WorkloadSpec, BareTokenIsDatasetShorthand) {
  const auto spec = WorkloadSpec::parse("gnn:cora");
  EXPECT_EQ(spec.kind, "gnn");
  EXPECT_EQ(spec.params.at("dataset"), "cora");
  EXPECT_EQ(spec.to_string(), "gnn:dataset=cora");
}

TEST(WorkloadSpec, CanonicalFormRoundTrips) {
  const auto spec = WorkloadSpec::parse("spmv:n=4,mm=path.mtx,iters=7");
  const std::string canonical = spec.to_string();
  EXPECT_EQ(canonical, "spmv:iters=7,mm=path.mtx,n=4");  // sorted keys
  EXPECT_EQ(WorkloadSpec::parse(canonical), spec);       // parse . to_string = id
}

TEST(WorkloadSpec, MalformedSpecsThrow) {
  EXPECT_THROW(WorkloadSpec::parse(""), Error);            // no kind
  EXPECT_THROW(WorkloadSpec::parse(":m=4"), Error);        // empty kind
  EXPECT_THROW(WorkloadSpec::parse("cg:"), Error);         // trailing colon
  EXPECT_THROW(WorkloadSpec::parse("cg:m="), Error);       // empty value
  EXPECT_THROW(WorkloadSpec::parse("cg:=4"), Error);       // empty key
  EXPECT_THROW(WorkloadSpec::parse("cg:m=4,,n=8"), Error); // empty parameter
  EXPECT_THROW(WorkloadSpec::parse("cg:m=4,m=8"), Error);  // duplicate key
}

// ---- WorkloadRegistry --------------------------------------------------------

TEST(WorkloadRegistry, ListsBuiltInKinds) {
  const auto names = WorkloadRegistry::global().names();
  for (const char* kind : {"cg", "bicgstab", "gnn", "power", "resnet", "spmv", "sddmm", "llm"})
    EXPECT_NE(std::find(names.begin(), names.end(), kind), names.end()) << kind;
}

TEST(WorkloadRegistry, UnknownKindThrowsListingRegistered) {
  try {
    WorkloadRegistry::global().resolve("warp9:m=4");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("warp9"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("cg"), std::string::npos);  // lists the kinds
  }
}

TEST(WorkloadRegistry, UnknownParameterThrows) {
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=1024,itres=5"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("resnet:dataset=cora"), Error);
  // hidden= is meaningless on a single-layer GCN: ineffective, so rejected.
  EXPECT_THROW(WorkloadRegistry::global().resolve("gnn:cora,hidden=256"), Error);
}

TEST(WorkloadRegistry, UnknownParameterErrorListsAllowedKeys) {
  // A typo'd key must name its valid neighbors: the builder consumed every
  // key it understands, so the error can list them for the kind.
  try {
    WorkloadRegistry::global().resolve("llm:layer=12");
    FAIL() << "expected Error";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("layer"), std::string::npos) << msg;
    EXPECT_NE(msg.find("allowed keys for kind 'llm'"), std::string::npos) << msg;
    for (const char* key :
         {"layers", "heads", "d_model", "seq", "decode_steps", "d_ff", "gqa", "words"})
      EXPECT_NE(msg.find(key), std::string::npos) << key << " missing from: " << msg;
  }
}

TEST(WorkloadRegistry, MalformedParameterValueThrows) {
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=abc"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=12x"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=1024,words=-1"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=1024,words=0"), Error);
  // Explicit zero / negative shapes fail loudly instead of silently falling
  // back to the default dataset or default occupancy.
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=0"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:m=-5"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("spmv:gen=fem,m=100,nnz=0"), Error);
}

TEST(WorkloadRegistry, ConflictingMatrixSourcesThrow) {
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:dataset=fv1,mm=a.mtx"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:dataset=fv1,m=100"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:nnz=100"), Error);  // nnz without m
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:gen=fem"), Error);  // gen without m
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:gen=warp,m=100"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:dataset=not_a_dataset"), Error);
  EXPECT_THROW(WorkloadRegistry::global().resolve("cg:dataset=fv1,seed=2"), Error);
}

TEST(WorkloadRegistry, ShapeOnlySpecMatchesDirectBuilder) {
  const auto wl = WorkloadRegistry::global().resolve("cg:m=1000,nnz=9000,n=8,iters=10");
  ASSERT_NE(wl.dag, nullptr);
  EXPECT_EQ(wl.matrix, nullptr);  // shape-only: no backing matrix
  EXPECT_EQ(wl.kind, "cg");
  const auto direct = workloads::build_cg_dag({1000, 8, 9000, 10, 4});
  EXPECT_EQ(wl.dag->ops().size(), direct.ops().size());
  EXPECT_EQ(wl.dag->tensors().size(), direct.tensors().size());
  EXPECT_EQ(wl.dag->edges().size(), direct.edges().size());
}

TEST(WorkloadRegistry, DatasetPresetCarriesMatrixAndFeatures) {
  const auto wl = WorkloadRegistry::global().resolve("gnn:cora");
  ASSERT_NE(wl.matrix, nullptr);
  const auto& spec = sparse::dataset_by_name("cora");
  EXPECT_EQ(wl.matrix->rows(), spec.rows);
  EXPECT_EQ(wl.dag->ops().size(), 2u);
  // Table VI feature widths flow from the preset into the DAG shapes.
  for (const auto& t : wl.dag->tensors())
    if (t.name == "X") {
      EXPECT_EQ(t.dim_of("n"), spec.gnn_in_features);
    } else if (t.name == "Y") {
      EXPECT_EQ(t.dim_of("o"), spec.gnn_out_features);
    }
}

TEST(WorkloadRegistry, GnnFeatureOverridesBeatPreset) {
  const auto wl = WorkloadRegistry::global().resolve("gnn:cora,in=32,out=4");
  for (const auto& t : wl.dag->tensors())
    if (t.name == "X") {
      EXPECT_EQ(t.dim_of("n"), 32);
    }
}

TEST(WorkloadRegistry, ResolveCachesByCanonicalSpec) {
  auto& registry = WorkloadRegistry::global();
  const auto a = registry.resolve("spmv:m=512,nnz=4096,iters=3");
  // Different surface syntax, same canonical spec: the same build is shared.
  const auto b = registry.resolve(WorkloadSpec::parse("spmv:nnz=4096,iters=3,m=512"));
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.dag.get(), b.dag.get());
}

TEST(WorkloadRegistry, GeneratorSourceBuildsRealMatrix) {
  const auto wl = WorkloadRegistry::global().resolve("spmv:gen=fem,m=500,nnz=3000,seed=7");
  ASSERT_NE(wl.matrix, nullptr);
  EXPECT_EQ(wl.matrix->rows(), 500);
  EXPECT_GT(wl.matrix->nnz(), 0);
  // Deterministic: the same spec resolves to the cached identical matrix.
  const auto again = WorkloadRegistry::global().resolve("spmv:gen=fem,m=500,nnz=3000,seed=7");
  EXPECT_EQ(wl.matrix.get(), again.matrix.get());
}

TEST(WorkloadRegistry, UserKindsCanBeRegistered) {
  sim::WorkloadRegistry registry;  // private registry, not the global one
  registry.add({"toy",
                "toy spmv",
                {},
                [](sim::WorkloadParams& p) {
                  sim::Workload w;
                  w.dag = std::make_shared<const ir::TensorDag>(workloads::build_spmv_dag(
                      {p.get_i64("m", 64), 256, 1, 2, 4}));
                  return w;
                }});
  const auto wl = registry.resolve("toy:m=128");
  EXPECT_EQ(wl.kind, "toy");
  EXPECT_EQ(wl.name, "toy:m=128");
  ASSERT_NE(wl.dag, nullptr);
  EXPECT_THROW(registry.add({"toy", "dup", {}, [](sim::WorkloadParams&) { return sim::Workload{}; }}),
               Error);
}

// ---- new workload kinds ------------------------------------------------------

TEST(SpmvDag, Structure) {
  const auto dag = workloads::build_spmv_dag({1000, 9000, 1, 5, 4});
  EXPECT_EQ(dag.ops().size(), 5u);
  EXPECT_EQ(dag.edges().size(), 4u);  // x@i chains into the next SpMV
  EXPECT_EQ(dag.external_tensors().size(), 2u);  // A, x@0
  EXPECT_EQ(dag.op(0).macs(), 9000);
  EXPECT_EQ(dag.op(0).dominance(), ir::Dominance::Uncontracted);
  int results = 0;
  for (const auto& t : dag.tensors())
    if (t.is_result) {
      ++results;
      EXPECT_EQ(t.name, "x@5");
    }
  EXPECT_EQ(results, 1);
  dag.validate();
}

TEST(SddmmDag, SparseAttentionStructure) {
  const auto dag = workloads::build_sddmm_dag({2708, 9464, 64, 2, 4, true});
  EXPECT_EQ(dag.ops().size(), 4u);   // (sddmm + spmm) x 2 heads
  EXPECT_EQ(dag.edges().size(), 2u); // S_h pipelines into its spmm
  for (const auto& op : dag.ops()) EXPECT_EQ(op.macs(), 9464 * 64) << op.name;
  int sparse_intermediates = 0, results = 0;
  for (const auto& t : dag.tensors()) {
    if (t.name.starts_with("S")) {
      ++sparse_intermediates;
      EXPECT_EQ(t.storage, ir::Storage::CompressedSparse);
      EXPECT_EQ(t.nnz, 9464);
    }
    if (t.is_result) ++results;
  }
  EXPECT_EQ(sparse_intermediates, 2);
  EXPECT_EQ(results, 2);  // one O_h per head
  dag.validate();
}

TEST(SddmmDag, HeadsDoNotAliasInTheAddressMap) {
  // Per-head projections are distinct buffers: only the mask M is shared.
  // The '@' versioning convention would fold Q_1/Q_2 onto one base, so the
  // head suffix deliberately avoids it.
  const auto dag = workloads::build_sddmm_dag({1000, 8000, 32, 2, 4, true});
  const auto map = sim::AddressMap::build(dag);
  // Bases: M + {Q, K, V, S, O} per head.
  EXPECT_EQ(map.entries.size(), 1u + 5u * 2u);
}

TEST(SddmmDag, SddmmOnlyMode) {
  const auto dag = workloads::build_sddmm_dag({1000, 8000, 32, 1, 4, false});
  EXPECT_EQ(dag.ops().size(), 1u);
  EXPECT_EQ(dag.edges().size(), 0u);
  int results = 0;
  for (const auto& t : dag.tensors())
    if (t.is_result) {
      ++results;
      EXPECT_EQ(t.name, "S_1");
    }
  EXPECT_EQ(results, 1);
}

}  // namespace
