// Robustness tests for sweep result persistence (sim/result_io, sim/shard):
// truncated or garbled result files must fail with precise typed errors, a
// merge must name its bad input file, and quarantined-failure records must
// round-trip both JSON and CSV bit-exactly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/failpoint.hpp"
#include "sim/result_io.hpp"
#include "sim/shard.hpp"

namespace {

using namespace cello;
using sim::ShardResult;
using sim::SweepGrid;
using sim::SweepResult;

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
}

/// A small shard whose results are synthetic (no simulation): every row names
/// its grid cell, which is all shard_from_json validates.
ShardResult synthetic_shard() {
  const sim::AcceleratorConfig arch;
  ShardResult shard;
  shard.grid = sim::make_grid({"cg:m=9604,nnz=85264,n=16,iters=3"}, {"Flexagon", "Cello"},
                              arch);
  shard.plan = sim::plan_shard(shard.grid, 1, 1);
  for (const size_t cell : shard.plan.cells) {
    SweepResult r;
    r.workload = shard.grid.workloads[cell / shard.grid.configs.size()];
    r.config = shard.grid.configs[cell % shard.grid.configs.size()];
    r.metrics.seconds = 0.1 * static_cast<double>(cell + 1);
    r.metrics.dram_bytes = 1000 + cell;
    shard.results.push_back(std::move(r));
  }
  return shard;
}

TEST(ResultIoRobustness, ErrorRecordRoundTripsJson) {
  SweepResult r;
  r.workload = "cg:m=16,n=4";
  r.config = "Cello";
  r.error = "sweep cell 3 (workload 'cg:m=16,n=4', config 'Cello') failed: boom";
  std::string text;
  sim::result_to_json(text, r, 0);
  const SweepResult back = sim::result_from_json(sim::json_parse(text));
  EXPECT_EQ(back.workload, r.workload);
  EXPECT_EQ(back.config, r.config);
  EXPECT_EQ(back.error, r.error);
  EXPECT_FALSE(back.ok());
}

TEST(ResultIoRobustness, CleanResultsEmitNoErrorKey) {
  // Byte-compatibility: a clean run's JSON must look exactly like it did
  // before quarantine records existed.
  SweepResult r;
  r.workload = "cg:m=16,n=4";
  r.config = "Cello";
  std::string text;
  sim::result_to_json(text, r, 0);
  EXPECT_EQ(text.find("\"error\""), std::string::npos) << text;
}

TEST(ResultIoRobustness, EmptyErrorMessageIsRejected) {
  SweepResult r;
  r.workload = "w";
  r.config = "c";
  r.error = "x";
  std::string text;
  sim::result_to_json(text, r, 0);
  const size_t at = text.find("\"x\"");
  ASSERT_NE(at, std::string::npos);
  const std::string empty_error = text.substr(0, at) + "\"\"" + text.substr(at + 3);
  EXPECT_THROW(sim::result_from_json(sim::json_parse(empty_error)), Error);
}

TEST(ResultIoRobustness, ErrorRecordRoundTripsCsvWithHostileCharacters) {
  std::vector<SweepResult> rows(2);
  rows[0].workload = "cg:m=16,n=4";
  rows[0].config = "Cello";
  rows[1].workload = "gnn:cora";
  rows[1].config = "FLAT";
  rows[1].error = "failed: \"quoted\", with, commas\nand a newline";
  const std::string csv = sim::results_to_csv(rows);
  const auto back = sim::results_from_csv(csv);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_TRUE(back[0].ok());
  EXPECT_EQ(back[1].error, rows[1].error);
}

TEST(ResultIoRobustness, TruncatedCsvFailsWithPreciseMessage) {
  std::vector<SweepResult> rows(1);
  rows[0].workload = "w";
  rows[0].config = "c";
  const std::string csv = sim::results_to_csv(rows);

  EXPECT_THROW(sim::results_from_csv(""), Error);
  try {
    sim::results_from_csv(csv.substr(0, csv.size() / 2));
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    // Either the header or a row is cut; both must say what is wrong.
    const std::string msg = e.what();
    EXPECT_TRUE(msg.find("CSV") != std::string::npos) << msg;
  }
  // A file with a drifted header is a different format, not a sweep export.
  const std::string drifted = "nope," + csv;
  try {
    sim::results_from_csv(drifted);
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unexpected header"), std::string::npos) << e.what();
  }
}

TEST(ResultIoRobustness, MalformedHexfloatsAreRejected) {
  EXPECT_EQ(sim::parse_hex_double("0x1.8p1"), 3.0);
  EXPECT_THROW(sim::parse_hex_double(""), Error);
  EXPECT_THROW(sim::parse_hex_double("bogus"), Error);
  EXPECT_THROW(sim::parse_hex_double("0x1.8p1 trailing"), Error);
  EXPECT_THROW(sim::parse_hex_double("0x1.8p1garbage"), Error);
}

TEST(ResultIoRobustness, EveryTruncatedShardPrefixFailsCleanly) {
  // SIGKILL can cut a result file at any byte.  No prefix may parse as a
  // complete shard, and every one must fail with a typed error - not UB.
  const std::string text = sim::shard_to_json(synthetic_shard());
  // Stop before the closing brace: a cut inside trailing whitespace is not a
  // truncation the parser could (or should) detect.
  const size_t last_meaningful = text.find_last_of('}');
  ASSERT_NE(last_meaningful, std::string::npos);
  for (size_t len = 0; len <= last_meaningful; len += 7) {
    try {
      sim::shard_from_json(text.substr(0, len));
      FAIL() << "prefix of " << len << " bytes parsed as a full shard";
    } catch (const Error&) {
      // expected: typed, catchable, message already validated elsewhere
    }
  }
  EXPECT_EQ(sim::shard_from_json(text).results.size(), 2u);  // positive control
}

TEST(ResultIoRobustness, UnknownResultKeysAreRejected) {
  SweepResult r;
  r.workload = "w";
  r.config = "c";
  std::string text;
  sim::result_to_json(text, r, 0);
  std::string drifted = "{\"surprise\": 1, ";
  drifted.append(text, 1, std::string::npos);
  try {
    sim::result_from_json(sim::json_parse(drifted));
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown key"), std::string::npos) << e.what();
  }
}

TEST(ResultIoRobustness, ShardFileLoaderNamesTheBadFile) {
  const ShardResult shard = synthetic_shard();
  const std::string good_path = "/tmp/cello_resio_good.json";
  const std::string bad_path = "/tmp/cello_resio_bad.json";
  const std::string text = sim::shard_to_json(shard);
  write_file(good_path, text);
  write_file(bad_path, text.substr(0, text.size() / 2));

  EXPECT_EQ(sim::shard_from_json_file(good_path).results.size(), shard.results.size());
  try {
    sim::shard_from_json_file(bad_path);
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(bad_path), std::string::npos) << e.what();
  }
  try {
    sim::shard_from_json_file("/tmp/cello_resio_not_here.json");
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("cello_resio_not_here"), std::string::npos)
        << e.what();
  }
  std::remove(good_path.c_str());
  std::remove(bad_path.c_str());
}

TEST(ResultIoRobustness, ShardParseFailpointInjectsALoadFailure) {
  const std::string path = "/tmp/cello_resio_failpoint.json";
  write_file(path, sim::shard_to_json(synthetic_shard()));
  failpoint::arm("shard.parse", "throw@1");
  try {
    sim::shard_from_json_file(path);
    FAIL() << "expected the injected fault";
  } catch (const Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_NE(msg.find("injected fault"), std::string::npos) << msg;
  }
  failpoint::disarm_all();
  EXPECT_NO_THROW(sim::shard_from_json_file(path));  // disarmed: loads again
  std::remove(path.c_str());
}

}  // namespace
