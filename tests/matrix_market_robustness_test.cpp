// Robustness tests for the MatrixMarket reader (sparse/matrix_market):
// malformed banners, truncated bodies, hostile size lines and out-of-range
// entries must all produce clean typed cello::Error, never UB or bad_alloc.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/error.hpp"
#include "sparse/matrix_market.hpp"

namespace {

using namespace cello;

sparse::CsrMatrix parse(const std::string& text) {
  std::istringstream in(text);
  return sparse::read_matrix_market(in);
}

TEST(MatrixMarketRobustness, WellFormedInputStillParses) {
  // Positive control: the hardening must not reject valid files.
  const auto m = parse(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "3 3 3\n"
      "1 1 1.5\n"
      "2 3 -2\n"
      "3 2 0.25\n");
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 3);
}

TEST(MatrixMarketRobustness, PatternAndSymmetricStillParse) {
  const auto m = parse(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 3\n");
  EXPECT_EQ(m.nnz(), 3);  // (2,1) mirrored to (1,2); diagonal (3,3) not
}

struct BadCase {
  const char* name;
  const char* text;
  const char* expect;  ///< substring the error message must contain
};

TEST(MatrixMarketRobustness, MalformedInputsFailCleanlyAndNameTheProblem) {
  const BadCase cases[] = {
      {"empty stream", "", "empty matrix market stream"},
      {"wrong banner", "%%NotMatrixMarket matrix coordinate real general\n1 1 0\n",
       "not a MatrixMarket file"},
      {"wrong object", "%%MatrixMarket vector coordinate real general\n1 1 0\n",
       "unsupported MatrixMarket object"},
      {"array format", "%%MatrixMarket matrix array real general\n1 1\n1.0\n",
       "coordinate format"},
      {"complex field", "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
       "unsupported MatrixMarket field"},
      {"skew symmetry", "%%MatrixMarket matrix coordinate real skew-symmetric\n2 2 1\n2 1 1\n",
       "unsupported symmetry"},
      {"eof before size line", "%%MatrixMarket matrix coordinate real general\n% only\n",
       "ends before the size line"},
      {"garbled size line", "%%MatrixMarket matrix coordinate real general\nthree by three\n",
       "bad size line"},
      {"negative dims", "%%MatrixMarket matrix coordinate real general\n-3 3 1\n1 1 1\n",
       "bad size line"},
      {"nnz beyond capacity", "%%MatrixMarket matrix coordinate real general\n2 2 9\n"
       "1 1 1\n",
       "size line claims"},
      {"huge lying nnz", "%%MatrixMarket matrix coordinate real general\n"
       "3000000000 3000000000 8999999999999999999\n1 1 1\n",
       "truncated matrix market body"},
      {"truncated body", "%%MatrixMarket matrix coordinate real general\n3 3 3\n1 1 1\n",
       "truncated matrix market body at entry 1"},
      {"malformed entry", "%%MatrixMarket matrix coordinate real general\n3 3 1\nx y z\n",
       "malformed entry 0"},
      {"missing value", "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 2\n",
       "missing its value"},
      {"row out of range", "%%MatrixMarket matrix coordinate real general\n3 3 1\n4 1 1\n",
       "row 4 outside [1, 3]"},
      {"zero-based col", "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 0 1\n",
       "col 0 outside [1, 3]"},
  };
  for (const auto& c : cases) {
    try {
      parse(c.text);
      FAIL() << c.name << ": expected cello::Error";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find(c.expect), std::string::npos)
          << c.name << ": got '" << e.what() << "'";
    } catch (const std::exception& e) {
      FAIL() << c.name << ": wrong exception type: " << e.what();
    }
  }
}

TEST(MatrixMarketRobustness, MissingFileNamesThePath) {
  try {
    sparse::read_matrix_market_file("/tmp/cello_definitely_not_here.mtx");
    FAIL() << "expected cello::Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("/tmp/cello_definitely_not_here.mtx"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
