// Differential testing: the fast operand-granularity ChordBuffer used by the
// simulator vs. the word-granular ChordRefModel that transcribes the Fig. 10
// hardware pseudocode.  Identical traces must produce identical traffic and
// identical resident prefixes.
#include <gtest/gtest.h>

#include "chord/chord.hpp"
#include "chord/chord_ref.hpp"
#include "common/rng.hpp"

namespace {

using namespace cello;
using chord::ChordBuffer;
using chord::ChordRefModel;
using chord::TensorMeta;

TensorMeta meta(i32 id, Bytes bytes, i32 uses, i64 dist) {
  TensorMeta m;
  m.id = id;
  m.name = "T" + std::to_string(id);
  m.start_addr = 0x1000'0000ull + static_cast<Addr>(id) * 0x100'0000ull;
  m.bytes = bytes;
  m.remaining_uses = uses;
  m.next_use_distance = dist;
  return m;
}

TEST(ChordDiff, SimpleWriteReadAgree) {
  ChordBuffer fast(1024, 16, true);
  ChordRefModel ref(1024, 4, true);
  const auto m = meta(0, 1500, 2, 1);
  const auto wf = fast.write_tensor(m);
  const auto wr = ref.write_tensor(m);
  EXPECT_EQ(wf.sram_bytes, wr.sram_bytes);
  EXPECT_EQ(wf.dram_bytes, wr.dram_bytes);
  const auto rf = fast.read_tensor(m);
  const auto rr = ref.read_tensor(m);
  EXPECT_EQ(rf.sram_bytes, rr.sram_bytes);
  EXPECT_EQ(rf.dram_bytes, rr.dram_bytes);
}

TEST(ChordDiff, RiffEvictionAgrees) {
  ChordBuffer fast(1024, 16, true);
  ChordRefModel ref(1024, 4, true);
  fast.write_tensor(meta(0, 1024, 1, 7));
  ref.write_tensor(meta(0, 1024, 1, 7));
  const auto m = meta(1, 512, 3, 1);
  const auto wf = fast.write_tensor(m);
  const auto wr = ref.write_tensor(m);
  EXPECT_EQ(wf.sram_bytes, wr.sram_bytes);
  EXPECT_EQ(fast.resident_bytes(0), ref.resident_bytes(0));
  EXPECT_EQ(fast.resident_bytes(1), ref.resident_bytes(1));
}

TEST(ChordDiff, RefPhysicalLayoutHoldsPrefixes) {
  ChordRefModel ref(1024, 4, true);
  ref.write_tensor(meta(0, 512, 2, 3));
  ref.write_tensor(meta(1, 256, 2, 2));
  ref.write_tensor(meta(2, 512, 4, 1));  // evicts tails of 0 and/or 1
  ref.check_invariants();
  EXPECT_EQ(ref.occupied_bytes(), 1024u);
}

struct DiffParam {
  Bytes capacity;
  bool riff;
  u64 seed;
};

class ChordDifferentialTest : public ::testing::TestWithParam<DiffParam> {};

TEST_P(ChordDifferentialTest, RandomTracesAgreeExactly) {
  const auto [capacity, riff, seed] = GetParam();
  ChordBuffer fast(capacity, 16, riff);
  ChordRefModel ref(capacity, 4, riff);
  Rng rng(seed);

  constexpr i32 kTensors = 8;
  std::vector<Bytes> sizes(kTensors);
  for (auto& s : sizes) s = 4 * (1 + rng.bounded(400));  // word-aligned

  for (int step = 0; step < 1500; ++step) {
    const i32 id = static_cast<i32>(rng.bounded(kTensors));
    const i32 uses = static_cast<i32>(rng.bounded(6));
    const i64 dist = uses == 0 ? -1 : static_cast<i64>(1 + rng.bounded(9));
    const auto m = meta(id, sizes[id], uses, dist);
    const double dice = rng.uniform();
    if (dice < 0.45) {
      const auto a = fast.write_tensor(m);
      const auto b = ref.write_tensor(m);
      ASSERT_EQ(a.sram_bytes, b.sram_bytes) << "write step " << step;
      ASSERT_EQ(a.dram_bytes, b.dram_bytes) << "write step " << step;
    } else if (dice < 0.9) {
      const auto a = fast.read_tensor(m);
      const auto b = ref.read_tensor(m);
      ASSERT_EQ(a.sram_bytes, b.sram_bytes) << "read step " << step;
      ASSERT_EQ(a.dram_bytes, b.dram_bytes) << "read step " << step;
    } else {
      fast.retire(id);
      ref.retire(id);
    }
    for (i32 t = 0; t < kTensors; ++t)
      ASSERT_EQ(fast.resident_bytes(t), ref.resident_bytes(t))
          << "tensor " << t << " at step " << step;
    ASSERT_NO_THROW(ref.check_invariants()) << "step " << step;
    ASSERT_NO_THROW(fast.check_invariants()) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Traces, ChordDifferentialTest,
    ::testing::Values(DiffParam{1024, true, 1}, DiffParam{1024, false, 2},
                      DiffParam{4096, true, 3}, DiffParam{4096, true, 4},
                      DiffParam{512, true, 5}, DiffParam{16384, false, 6},
                      DiffParam{16384, true, 7}),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      return std::string(info.param.riff ? "riff" : "prelude") + "_cap" +
             std::to_string(info.param.capacity) + "_seed" + std::to_string(info.param.seed);
    });

TEST(ChordRef, CycleCountAdvances) {
  ChordRefModel ref(1024, 4, true);
  ref.write_tensor(meta(0, 512, 2, 1));
  const u64 c1 = ref.cycles();
  ref.read_tensor(meta(0, 512, 1, 1));
  EXPECT_GT(ref.cycles(), c1);
}

TEST(ChordRef, RetireReleasesSlots) {
  ChordRefModel ref(1024, 4, true);
  ref.write_tensor(meta(0, 1024, 2, 1));
  EXPECT_EQ(ref.occupied_bytes(), 1024u);
  ref.retire(0);
  EXPECT_EQ(ref.occupied_bytes(), 0u);
  ref.check_invariants();
}

}  // namespace
