// Tests for CHORD: PRELUDE fill/spill, RIFF tensor-granularity replacement,
// the Fig. 9 scenario, index-table bookkeeping, and randomized invariants.
#include <gtest/gtest.h>

#include "chord/chord.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace {

using namespace cello;
using chord::ChordBuffer;
using chord::TensorMeta;

TensorMeta meta(i32 id, Bytes bytes, i32 uses, i64 dist, Addr start = 0) {
  TensorMeta m;
  m.id = id;
  m.name = "T" + std::to_string(id);
  m.start_addr = start ? start : 0x1000'0000ull + static_cast<Addr>(id) * 0x100'0000ull;
  m.bytes = bytes;
  m.remaining_uses = uses;
  m.next_use_distance = dist;
  return m;
}

TEST(Prelude, TensorFitsEntirely) {
  ChordBuffer buf(1024, 16, /*riff=*/false);
  const auto r = buf.write_tensor(meta(0, 512, /*uses=*/2, /*dist=*/1));
  EXPECT_EQ(r.sram_bytes, 512u);
  EXPECT_EQ(r.dram_bytes, 0u);
  EXPECT_EQ(buf.resident_bytes(0), 512u);
  buf.check_invariants();
}

TEST(Prelude, OverflowSpillsTailToDram) {
  // Fig. 9 left: the part that could not fit goes to DRAM; the head stays.
  ChordBuffer buf(1024, 16, false);
  const auto r = buf.write_tensor(meta(0, 1500, 2, 1));
  EXPECT_EQ(r.sram_bytes, 1024u);
  EXPECT_EQ(r.dram_bytes, 476u);
  EXPECT_EQ(buf.resident_bytes(0), 1024u);
  EXPECT_GE(buf.stats().prelude_spills, 1u);
  buf.check_invariants();
}

TEST(Prelude, ReadHitsResidentPrefixOnly) {
  ChordBuffer buf(1024, 16, false);
  buf.write_tensor(meta(0, 1500, 3, 1));
  const auto r = buf.read_tensor(meta(0, 1500, 2, 1));
  EXPECT_EQ(r.sram_bytes, 1024u);  // head of the tensor (PRELUDE keeps it)
  EXPECT_EQ(r.dram_bytes, 476u);   // spilled tail re-read from DRAM
  EXPECT_EQ(buf.stats().read_misses, 1u);
}

TEST(Prelude, NoReplacementAcrossTensors) {
  // Without RIFF, a second tensor cannot evict the first.
  ChordBuffer buf(1024, 16, false);
  buf.write_tensor(meta(0, 1024, 2, 9));               // fills completely, far reuse
  const auto r = buf.write_tensor(meta(1, 512, 5, 1));  // hotter, but PRELUDE won't evict
  EXPECT_EQ(r.sram_bytes, 0u);
  EXPECT_EQ(r.dram_bytes, 512u);
  EXPECT_EQ(buf.resident_bytes(0), 1024u);
  EXPECT_EQ(buf.resident_bytes(1), 0u);
}

TEST(Riff, HigherPriorityEvictsVictimTail) {
  // Fig. 9 right: the tail of X gets evicted; the head of R is enqueued.
  ChordBuffer buf(1024, 16, /*riff=*/true);
  buf.write_tensor(meta(0, 1024, /*uses=*/1, /*dist=*/7));  // "X": far reuse
  const auto r = buf.write_tensor(meta(1, 512, /*uses=*/3, /*dist=*/1));  // "R": near reuse
  EXPECT_EQ(r.sram_bytes, 512u);
  EXPECT_EQ(r.dram_bytes, 0u);
  EXPECT_EQ(buf.resident_bytes(0), 512u);  // X lost its tail
  EXPECT_EQ(buf.resident_bytes(1), 512u);  // R resident head-first
  EXPECT_GE(buf.stats().riff_replacements, 1u);
  buf.check_invariants();
}

TEST(Riff, LowerPriorityDoesNotEvict) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 1024, 3, 1));               // hot
  const auto r = buf.write_tensor(meta(1, 512, 1, 9));  // colder: goes to DRAM
  EXPECT_EQ(r.dram_bytes, 512u);
  EXPECT_EQ(buf.resident_bytes(0), 1024u);
}

TEST(Riff, EqualPriorityDoesNotEvict) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 1024, 2, 3));
  const auto r = buf.write_tensor(meta(1, 512, 2, 3));
  EXPECT_EQ(r.dram_bytes, 512u);  // strict priority required
}

TEST(Riff, DistanceBeatsFrequency) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 1024, /*uses=*/10, /*dist=*/7));  // frequent but far
  const auto r = buf.write_tensor(meta(1, 256, /*uses=*/2, /*dist=*/1));  // near
  EXPECT_EQ(r.sram_bytes, 256u);
  EXPECT_EQ(buf.resident_bytes(0), 768u);
}

TEST(Riff, DeadTensorLosesToEverything) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 1024, /*uses=*/3, /*dist=*/2));
  buf.update_reuse(0, /*remaining=*/0, /*dist=*/-1);  // now dead
  const auto r = buf.write_tensor(meta(1, 512, 1, 8));
  EXPECT_EQ(r.sram_bytes, 512u);
  EXPECT_EQ(buf.resident_bytes(0), 512u);
}

TEST(Riff, StealsFromMultipleVictims) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 512, 1, 9));
  buf.write_tensor(meta(1, 512, 1, 8));
  const auto r = buf.write_tensor(meta(2, 1024, 5, 1));  // needs both victims
  EXPECT_EQ(r.sram_bytes, 1024u);
  EXPECT_EQ(buf.resident_bytes(0), 0u);
  EXPECT_EQ(buf.resident_bytes(1), 0u);
  buf.check_invariants();
}

TEST(Chord, ReadAllocatesForFutureUses) {
  // An external tensor (e.g. the sparse A) installs on first read.
  ChordBuffer buf(1024, 16, true);
  const auto first = buf.read_tensor(meta(0, 800, /*uses=*/9, /*dist=*/8));
  EXPECT_EQ(first.dram_bytes, 800u);  // cold
  const auto second = buf.read_tensor(meta(0, 800, 8, 8));
  EXPECT_EQ(second.sram_bytes, 800u);  // now resident
  EXPECT_EQ(second.dram_bytes, 0u);
}

TEST(Chord, ReadWithoutFutureUseDoesNotAllocate) {
  ChordBuffer buf(1024, 16, true);
  buf.read_tensor(meta(0, 800, /*uses=*/0, /*dist=*/-1));
  EXPECT_EQ(buf.resident_bytes(0), 0u);
  EXPECT_TRUE(buf.entries().empty());
}

TEST(Chord, RetireFreesSpace) {
  ChordBuffer buf(1024, 16, true);
  buf.write_tensor(meta(0, 1024, 2, 1));
  EXPECT_EQ(buf.free_bytes(), 0u);
  buf.retire(0);
  EXPECT_EQ(buf.free_bytes(), 1024u);
  EXPECT_FALSE(buf.entry(0).has_value());
}

TEST(Chord, RewriteOverwritesInPlace) {
  ChordBuffer buf(2048, 16, true);
  buf.write_tensor(meta(0, 1000, 3, 2));
  const auto r = buf.write_tensor(meta(0, 1000, 2, 2));  // new version, same base
  EXPECT_EQ(r.sram_bytes, 1000u);
  EXPECT_EQ(r.dram_bytes, 0u);
  EXPECT_EQ(buf.occupied_bytes(), 1000u);  // no double allocation
}

TEST(Chord, EntryLimitSendsOverflowToDram) {
  ChordBuffer buf(1u << 20, 16, true, /*max_entries=*/2);
  buf.write_tensor(meta(0, 64, 2, 1));
  buf.write_tensor(meta(1, 64, 2, 1));
  const auto r = buf.write_tensor(meta(2, 64, 2, 1));
  EXPECT_EQ(r.dram_bytes, 64u);
  EXPECT_EQ(buf.entries().size(), 2u);
}

TEST(Chord, IndexTableBookkeeping) {
  // Fig. 10: start/end indices are word positions in the data array and
  // resident slices are contiguous in queue order.
  ChordBuffer buf(4096, 16, true);
  buf.write_tensor(meta(0, 1024, 4, 2));
  buf.write_tensor(meta(1, 512, 3, 1));
  const auto e0 = buf.entry(0), e1 = buf.entry(1);
  ASSERT_TRUE(e0 && e1);
  EXPECT_EQ(e0->start_index, 0);
  EXPECT_EQ(e0->end_index, 256);  // 1024 B / 4 B words
  EXPECT_EQ(e1->start_index, 256);
  EXPECT_EQ(e1->end_index, 384);
  EXPECT_EQ(e0->end_chord, e0->start_tensor + 1024);
  EXPECT_EQ(e0->end_tensor, e0->start_tensor + 1024);
}

TEST(Chord, StatsTrafficConservation) {
  ChordBuffer buf(1024, 16, true);
  const auto w = buf.write_tensor(meta(0, 1500, 2, 1));
  EXPECT_EQ(w.sram_bytes + w.dram_bytes, 1500u);
  const auto r = buf.read_tensor(meta(0, 1500, 1, 1));
  EXPECT_EQ(r.sram_bytes + r.dram_bytes, 1500u);
}

// ---- randomized invariants (property test) ----------------------------------

struct ChordProp {
  Bytes capacity;
  bool riff;
};

class ChordPropertyTest : public ::testing::TestWithParam<ChordProp> {};

TEST_P(ChordPropertyTest, InvariantsHoldUnderRandomTraces) {
  const auto [capacity, riff] = GetParam();
  ChordBuffer buf(capacity, 16, riff);
  Rng rng(riff ? 101 : 202);

  constexpr i32 kTensors = 12;
  for (int step = 0; step < 3000; ++step) {
    const i32 id = static_cast<i32>(rng.bounded(kTensors));
    const Bytes bytes = 16 * (1 + rng.bounded(200));
    const i32 uses = static_cast<i32>(rng.bounded(8));
    const i64 dist = uses == 0 ? -1 : static_cast<i64>(1 + rng.bounded(10));
    const double dice = rng.uniform();
    if (dice < 0.45) {
      const auto r = buf.write_tensor(meta(id, bytes, uses, dist));
      ASSERT_EQ(r.sram_bytes + r.dram_bytes, bytes);
    } else if (dice < 0.9) {
      const auto r = buf.read_tensor(meta(id, bytes, uses, dist));
      ASSERT_EQ(r.sram_bytes + r.dram_bytes, bytes);
    } else {
      buf.retire(id);
    }
    ASSERT_NO_THROW(buf.check_invariants()) << "step " << step;
    ASSERT_LE(buf.occupied_bytes(), capacity);
  }
}

INSTANTIATE_TEST_SUITE_P(
    CapacityAndPolicy, ChordPropertyTest,
    ::testing::Values(ChordProp{1024, true}, ChordProp{1024, false}, ChordProp{8192, true},
                      ChordProp{8192, false}, ChordProp{64 * 1024, true}),
    [](const ::testing::TestParamInfo<ChordProp>& info) {
      return (info.param.riff ? std::string("riff_") : std::string("prelude_")) +
             std::to_string(info.param.capacity);
    });

}  // namespace
