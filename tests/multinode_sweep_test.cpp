// End-to-end multi-chip sweep (the ISSUE 8 acceptance grid): {1,4,16,64}
// nodes x {mesh,torus} x two presets on GNN, as a first-class fabric axis of
// the sharded sweep.  Pins:
//  * sweep-path results are bit-identical to the direct Simulator::run
//    multi-node path (same fold, same pooled artifacts);
//  * shard / merge / checkpoint round-trips stay byte-identical with the
//    fabric axis in play;
//  * the Sec. V-B score-vs-naive traffic gap is visible in every multi-node
//    row, and the whole merged file matches a checked-in golden byte for
//    byte (CELLO_UPDATE_GOLDENS=1 to refresh after an intended change).
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "noc/topology.hpp"
#include "sim/checkpoint.hpp"
#include "sim/registry.hpp"
#include "sim/result_io.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/workload_registry.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::SweepGrid;
using sim::SweepResult;
using sim::SweepRunner;

const std::vector<std::string>& acceptance_fabrics() {
  // --nodes 1,4,16,64 --topology mesh,torus, already canonicalized.
  static const std::vector<std::string> fabrics{"1",         "mesh:2x2",  "torus:2x2",
                                                "mesh:4x4",  "torus:4x4", "mesh:8x8",
                                                "torus:8x8"};
  return fabrics;
}

SweepGrid acceptance_grid() {
  const AcceleratorConfig arch;
  return sim::make_grid({"gnn:cora"}, {"Flexagon", "Cello"}, arch, acceptance_fabrics());
}

u64 dbits(double v) {
  u64 u;
  static_assert(sizeof u == sizeof v);
  std::memcpy(&u, &v, sizeof u);
  return u;
}

TEST(MultinodeSweep, GridCrossesFabricsBetweenWorkloadsAndConfigs) {
  const SweepGrid grid = acceptance_grid();
  EXPECT_TRUE(grid.has_fabric_axis());
  EXPECT_EQ(grid.cells(), 1u * 7u * 2u);
  // Duplicate and non-canonical fabric spellings are rejected up front.
  EXPECT_THROW(sim::make_grid({"gnn:cora"}, {"Cello"}, AcceleratorConfig{}, {"1", "1"}), Error);
  EXPECT_THROW(sim::make_grid({"gnn:cora"}, {"Cello"}, AcceleratorConfig{},
                              {"mesh:4", "mesh:2x2"}),
               Error);
  // A multi-node arch cannot host a grid: node counts ride the fabric axis.
  AcceleratorConfig multi;
  multi.nodes = 4;
  EXPECT_THROW(sim::make_grid({"gnn:cora"}, {"Cello"}, multi), Error);
}

TEST(MultinodeSweep, SweepCellsMatchDirectSimulatorBitForBit) {
  const SweepGrid grid = acceptance_grid();
  const auto results = SweepRunner(/*threads=*/2).run_shard(grid, sim::plan_shard(grid, 1, 1));
  ASSERT_EQ(results.size(), grid.cells());
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("gnn:cora");
  for (const SweepResult& cell : results) {
    ASSERT_TRUE(cell.ok()) << cell.error;
    AcceleratorConfig arch = grid.arch;
    const noc::TopologySpec spec =
        noc::TopologySpec::parse(cell.fabric.empty() ? "1" : cell.fabric);
    arch.nodes = spec.nodes();
    arch.topology = spec.to_string();
    const sim::Simulator simulator(arch, wl.matrix.get());
    const sim::RunMetrics direct =
        simulator.run(*wl.dag, sim::ConfigRegistry::global().at(cell.config));
    const std::string ctx = cell.fabric + "/" + cell.config;
    EXPECT_EQ(dbits(direct.seconds), dbits(cell.metrics.seconds)) << ctx;
    EXPECT_EQ(direct.nodes, cell.metrics.nodes) << ctx;
    EXPECT_EQ(direct.total_macs, cell.metrics.total_macs) << ctx;
    EXPECT_EQ(direct.dram_bytes, cell.metrics.dram_bytes) << ctx;
    EXPECT_EQ(direct.noc_bytes, cell.metrics.noc_bytes) << ctx;
    EXPECT_EQ(direct.naive_noc_bytes, cell.metrics.naive_noc_bytes) << ctx;
    EXPECT_EQ(dbits(direct.noc_seconds), dbits(cell.metrics.noc_seconds)) << ctx;
    EXPECT_EQ(dbits(direct.parallel_efficiency), dbits(cell.metrics.parallel_efficiency))
        << ctx;
    EXPECT_EQ(dbits(direct.offchip_energy_pj), dbits(cell.metrics.offchip_energy_pj)) << ctx;
  }
}

TEST(MultinodeSweep, ScoreVsNaiveTrafficGapIsVisible) {
  const SweepGrid grid = acceptance_grid();
  const auto results = SweepRunner(2).run_shard(grid, sim::plan_shard(grid, 1, 1));
  for (const SweepResult& cell : results) {
    ASSERT_TRUE(cell.ok()) << cell.error;
    if (cell.metrics.nodes <= 1) {
      EXPECT_EQ(cell.metrics.noc_bytes, 0) << cell.fabric;
      EXPECT_EQ(cell.metrics.naive_noc_bytes, 0) << cell.fabric;
      continue;
    }
    EXPECT_GT(cell.metrics.noc_bytes, 0) << cell.fabric;
    EXPECT_GT(cell.metrics.naive_noc_bytes, 0) << cell.fabric;
    EXPECT_GT(cell.metrics.noc_seconds, 0.0) << cell.fabric;
    EXPECT_GT(cell.metrics.parallel_efficiency, 0.0) << cell.fabric;
    // Sec. V-B: cluster-local pipelines ship only the small m-free tensors;
    // the naive pipeline split ships the skewed intermediates.  Up to 16
    // nodes even the routed byte-hops stay well under the naive byte count
    // (at 64 the per-hop inflation overtakes it — exactly the saturation the
    // busiest-link term is there to show).
    if (cell.metrics.nodes <= 16)
      EXPECT_LT(cell.metrics.noc_bytes, cell.metrics.naive_noc_bytes / 4) << cell.fabric;
  }
}

TEST(MultinodeSweep, ShardMergeAndCheckpointRoundTripByteIdentically) {
  const SweepGrid grid = acceptance_grid();

  // Full single-process run: the reference file.
  sim::ShardResult full;
  full.grid = grid;
  full.plan = sim::plan_shard(grid, 1, 1);
  full.results = SweepRunner(2).run_shard(grid, full.plan);
  const std::string reference = sim::shard_to_json(full);

  // The same grid as three strided shards, merged in scrambled order.
  std::vector<sim::ShardResult> shards;
  for (u32 i : {2u, 3u, 1u}) {
    sim::ShardResult s;
    s.grid = grid;
    s.plan = sim::plan_shard(grid, i, 3, sim::ShardMode::Strided);
    s.results = SweepRunner(2).run_shard(grid, s.plan);
    shards.push_back(std::move(s));
  }
  sim::ShardResult merged;
  merged.grid = grid;
  merged.results = sim::merge_shards(std::move(shards));
  merged.plan = sim::plan_shard(grid, 1, 1);
  EXPECT_EQ(sim::shard_to_json(merged), reference);

  // Shard-file JSON round-trips through parse losslessly (fabrics included).
  const sim::ShardResult reloaded = sim::shard_from_json(reference);
  EXPECT_EQ(reloaded.grid.fabrics, grid.fabrics);
  EXPECT_EQ(sim::shard_to_json(reloaded), reference);

  // Checkpointed run: journal every cell, then resume with nothing left to
  // do — recovered payloads must reproduce the reference byte for byte.
  const std::string journal =
      std::string("/tmp/cello_multinode_sweep_") + std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());
  sim::SweepOptions opts;
  opts.checkpoint = journal;
  sim::ShardResult ck;
  ck.grid = grid;
  ck.plan = sim::plan_shard(grid, 1, 1);
  ck.results = SweepRunner(2).run_shard(grid, ck.plan, opts);
  opts.resume = true;
  sim::ShardResult resumed;
  resumed.grid = grid;
  resumed.plan = sim::plan_shard(grid, 1, 1);
  resumed.results = SweepRunner(2).run_shard(grid, resumed.plan, opts);
  EXPECT_EQ(sim::shard_to_json(ck), reference);
  EXPECT_EQ(sim::shard_to_json(resumed), reference);
  std::remove(journal.c_str());

  // CSV export carries the fabric and NoC columns and round-trips exactly.
  const std::string csv = sim::results_to_csv(full.results);
  EXPECT_NE(csv.find(",fabric,"), std::string::npos);
  EXPECT_NE(csv.find("torus:8x8"), std::string::npos);
  const auto back = sim::results_from_csv(csv);
  ASSERT_EQ(back.size(), full.results.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].fabric, full.results[i].fabric);
    EXPECT_EQ(back[i].metrics.nodes, full.results[i].metrics.nodes);
    EXPECT_EQ(back[i].metrics.noc_bytes, full.results[i].metrics.noc_bytes);
    EXPECT_EQ(dbits(back[i].metrics.noc_seconds), dbits(full.results[i].metrics.noc_seconds));
  }
}

TEST(MultinodeSweep, MergedFileMatchesCheckedInGolden) {
  const char* path = CELLO_SOURCE_DIR "/tests/goldens/multinode_sweep_gnn.json";
  sim::ShardResult full;
  full.grid = acceptance_grid();
  full.plan = sim::plan_shard(full.grid, 1, 1);
  full.results = SweepRunner(2).run_shard(full.grid, full.plan);
  const std::string current = sim::shard_to_json(full);

  if (std::getenv("CELLO_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << current;
    GTEST_SKIP() << "golden updated";
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " — run CELLO_UPDATE_GOLDENS=1 ./multinode_sweep_test";
  std::ostringstream buf;
  buf << in.rdbuf();
  EXPECT_EQ(current, buf.str())
      << "multi-node sweep drifted from the checked-in golden; if intended, refresh with "
         "CELLO_UPDATE_GOLDENS=1 ./multinode_sweep_test";
}

}  // namespace
