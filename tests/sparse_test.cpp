// Tests for the sparse substrate: CSR container, synthetic generators
// (parameterized over the Table VI datasets) and Matrix Market I/O.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "sparse/csr.hpp"
#include "sparse/datasets.hpp"
#include "sparse/generators.hpp"
#include "sparse/matrix_market.hpp"

namespace {

using namespace cello;
using sparse::CsrMatrix;
using sparse::Triplet;

TEST(Csr, FromTripletsSortsAndSumsDuplicates) {
  const std::vector<Triplet> ts = {{1, 2, 3.0}, {0, 0, 1.0}, {1, 2, 2.0}, {1, 0, 4.0}};
  const auto m = CsrMatrix::from_triplets(2, 3, ts);
  m.validate();
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_EQ(m.row_nnz(0), 1);
  EXPECT_EQ(m.row_nnz(1), 2);
  // Row 1: (0, 4.0), (2, 5.0) — duplicates summed, columns sorted.
  EXPECT_EQ(m.col_idx()[1], 0);
  EXPECT_DOUBLE_EQ(m.values()[2], 5.0);
}

TEST(Csr, RejectsOutOfRangeTriplets) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{2, 0, 1.0}}), Error);
  EXPECT_THROW(CsrMatrix::from_triplets(2, 2, {{0, -1, 1.0}}), Error);
}

TEST(Csr, TransposeRoundTrip) {
  Rng rng(5);
  std::vector<Triplet> ts;
  for (int i = 0; i < 50; ++i)
    ts.push_back({static_cast<i64>(rng.bounded(10)), static_cast<i64>(rng.bounded(7)),
                  rng.uniform()});
  const auto m = CsrMatrix::from_triplets(10, 7, ts);
  const auto mtt = m.transpose().transpose();
  ASSERT_EQ(mtt.nnz(), m.nnz());
  for (i64 k = 0; k < m.nnz(); ++k) {
    EXPECT_EQ(mtt.col_idx()[k], m.col_idx()[k]);
    EXPECT_DOUBLE_EQ(mtt.values()[k], m.values()[k]);
  }
}

TEST(Csr, SpmvMatchesDense) {
  const auto m = CsrMatrix::from_triplets(3, 3, {{0, 0, 2.0}, {0, 2, 1.0}, {1, 1, 3.0},
                                                 {2, 0, -1.0}, {2, 2, 4.0}});
  const std::vector<double> x = {1.0, 2.0, 3.0};
  std::vector<double> y(3);
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
}

TEST(Csr, StreamBytesFormula) {
  const auto m = CsrMatrix::from_triplets(4, 4, {{0, 0, 1.0}, {3, 3, 1.0}});
  EXPECT_EQ(m.stream_bytes(4), 2u * 8 + 5u * 4);
}

TEST(Csr, RowOccupancyStats) {
  const auto m = CsrMatrix::from_triplets(3, 3, {{0, 0, 1.0}, {0, 1, 1.0}, {1, 1, 1.0}});
  EXPECT_DOUBLE_EQ(m.max_row_nnz(), 2.0);
  EXPECT_NEAR(m.avg_row_nnz(), 1.0, 1e-12);
}

// ---- generators (parameterized over the Table VI datasets) -----------------

class DatasetGeneratorTest : public ::testing::TestWithParam<sparse::DatasetSpec> {};

TEST_P(DatasetGeneratorTest, MatchesPublishedShapeStats) {
  const auto& spec = GetParam();
  const auto m = sparse::instantiate(spec);
  m.validate();
  EXPECT_EQ(m.rows(), spec.rows);
  EXPECT_EQ(m.cols(), spec.rows);
  // nnz within 25% of the published count (duplicate collapses / symmetry).
  EXPECT_GT(m.nnz(), spec.nnz * 3 / 4) << spec.name;
  EXPECT_LT(m.nnz(), spec.nnz * 5 / 4) << spec.name;
}

TEST_P(DatasetGeneratorTest, DeterministicAcrossCalls) {
  const auto& spec = GetParam();
  const auto a = sparse::instantiate(spec);
  const auto b = sparse::instantiate(spec);
  ASSERT_EQ(a.nnz(), b.nnz());
  for (i64 k = 0; k < std::min<i64>(a.nnz(), 500); ++k)
    EXPECT_DOUBLE_EQ(a.values()[k], b.values()[k]);
}

INSTANTIATE_TEST_SUITE_P(Table6, DatasetGeneratorTest,
                         ::testing::ValuesIn(sparse::table6_datasets()),
                         [](const ::testing::TestParamInfo<sparse::DatasetSpec>& info) {
                           return info.param.name;
                         });

TEST(Generators, FemBandedIsDiagonallyDominant) {
  Rng rng(1);
  const auto m = sparse::make_fem_banded(500, 3500, rng);
  for (i64 r = 0; r < m.rows(); ++r) {
    double diag = 0, off = 0;
    for (i64 k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) {
      if (m.col_idx()[k] == r)
        diag = m.values()[k];
      else
        off += std::abs(m.values()[k]);
    }
    EXPECT_GT(diag, off) << "row " << r;
  }
}

TEST(Generators, CircuitHasIrregularRows) {
  Rng rng(2);
  const auto m = sparse::make_circuit(2000, 14000, rng);
  EXPECT_GT(m.max_row_nnz(), 2.0 * m.avg_row_nnz());  // hub rows exist
}

TEST(Generators, PowerLawGraphRowsAreNormalized) {
  Rng rng(3);
  const auto m = sparse::make_powerlaw_graph(1000, 5000, rng);
  for (i64 r = 0; r < m.rows(); ++r) {
    double s = 0;
    for (i64 k = m.row_ptr()[r]; k < m.row_ptr()[r + 1]; ++k) s += m.values()[k];
    EXPECT_NEAR(s, 1.0, 1e-9) << "row " << r;
  }
}

TEST(Generators, DatasetLookup) {
  EXPECT_EQ(sparse::dataset_by_name("fv1").rows, 9604);
  EXPECT_EQ(sparse::dataset_by_name("cora").gnn_in_features, 1433);
  EXPECT_THROW(sparse::dataset_by_name("nope"), Error);
}

// ---- matrix market ----------------------------------------------------------

TEST(MatrixMarket, RoundTrip) {
  const auto m = CsrMatrix::from_triplets(3, 4, {{0, 1, 2.5}, {2, 3, -1.0}, {1, 0, 7.0}});
  std::stringstream ss;
  sparse::write_matrix_market(m, ss);
  const auto back = sparse::read_matrix_market(ss);
  ASSERT_EQ(back.rows(), 3);
  ASSERT_EQ(back.cols(), 4);
  ASSERT_EQ(back.nnz(), 3);
  for (i64 k = 0; k < 3; ++k) EXPECT_DOUBLE_EQ(back.values()[k], m.values()[k]);
}

TEST(MatrixMarket, ReadsSymmetric) {
  std::stringstream ss("%%MatrixMarket matrix coordinate real symmetric\n"
                       "3 3 2\n1 1 5.0\n3 1 2.0\n");
  const auto m = sparse::read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 3);  // (0,0), (2,0), (0,2)
  std::vector<double> x = {1, 0, 0}, y(3);
  m.spmv(x, y);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(MatrixMarket, ReadsPattern) {
  std::stringstream ss("%%MatrixMarket matrix coordinate pattern general\n"
                       "2 2 2\n1 1\n2 2\n");
  const auto m = sparse::read_matrix_market(ss);
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.values()[0], 1.0);
}

TEST(MatrixMarket, RejectsGarbage) {
  std::stringstream ss("not a matrix\n");
  EXPECT_THROW(sparse::read_matrix_market(ss), Error);
}

TEST(MatrixMarket, RejectsTruncatedBody) {
  std::stringstream ss("%%MatrixMarket matrix coordinate real general\n3 3 5\n1 1 1.0\n");
  EXPECT_THROW(sparse::read_matrix_market(ss), Error);
}

}  // namespace
