// score::ReuseIndex / ReuseCursor / RunScratch pinning.
//
// The shared-setup fast path (immutable ReuseIndex + pooled RunScratch) must
// be bit-identical to a fresh, all-state-rebuilt Simulator::run for every
// Table IV preset — this is what lets SweepRunner share one index per
// (workload, schedule-policy) pair and reset one scratch per worker between
// cells.  Also pins the counting-pass index builder against a reference
// sort-based construction (the retired BaseReuse algorithm).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/workload_registry.hpp"

namespace {

using namespace cello;

void expect_same_metrics(const sim::RunMetrics& a, const sim::RunMetrics& b,
                         const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.total_macs, b.total_macs) << what;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << what;
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes) << what;
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes) << what;
  EXPECT_EQ(a.offchip_energy_pj, b.offchip_energy_pj) << what;
  EXPECT_EQ(a.onchip_energy_pj, b.onchip_energy_pj) << what;
  EXPECT_EQ(a.sram_line_accesses, b.sram_line_accesses) << what;
  EXPECT_EQ(a.traffic_by_tensor, b.traffic_by_tensor) << what;
  ASSERT_EQ(a.per_op.size(), b.per_op.size()) << what;
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    EXPECT_EQ(a.per_op[i].op, b.per_op[i].op) << what << " op " << i;
    EXPECT_EQ(a.per_op[i].macs, b.per_op[i].macs) << what << " op " << i;
    EXPECT_EQ(a.per_op[i].dram_bytes, b.per_op[i].dram_bytes) << what << " op " << i;
  }
}

/// The retired per-cell construction: interleave every tensor's use
/// positions into its base's bucket, then sort each bucket.
std::vector<std::vector<i64>> sort_based_reference(const ir::TensorDag& dag,
                                                   const score::Schedule& sched,
                                                   const sim::AddressMap& map) {
  std::vector<std::vector<i64>> uses(map.entries.size());
  for (const auto& t : dag.tensors())
    for (i64 p : sched.use_positions[t.id]) uses[map.base_id(t.id)].push_back(p);
  for (auto& u : uses) std::sort(u.begin(), u.end());
  return uses;
}

const std::vector<std::string>& workload_specs() {
  // CG over a real matrix (exercises the trace-driven CSR gather) + GNN.
  static const std::vector<std::string> kSpecs = {"cg:iters=5,n=16", "gnn:cora"};
  return kSpecs;
}

// Shared immutable index + one RunScratch reused sequentially across every
// (workload, preset) cell — cursor resets and pooled-policy resets included —
// must reproduce fresh per-cell runs exactly.
TEST(ReuseIndex, SharedIndexAndScratchBitIdenticalAcrossPresets) {
  const sim::AcceleratorConfig arch;
  const auto& registry = sim::ConfigRegistry::global();
  sim::RunScratch scratch;  // deliberately shared across all cells below

  for (const auto& spec : workload_specs()) {
    const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec);
    const sim::Simulator simulator(arch, wl.matrix.get());
    const sim::AddressMap map = sim::AddressMap::build(*wl.dag);

    for (const auto& name : sim::ConfigRegistry::table4_names()) {
      const sim::Configuration& config = registry.at(name);
      const score::Schedule sched = simulator.make_schedule(*wl.dag, config);
      const score::ReuseIndex index =
          score::ReuseIndex::build(*wl.dag, sched, map.base_of, map.entries.size());

      const sim::RunMetrics fresh = simulator.run(*wl.dag, config);
      sim::RunArtifacts art;
      art.schedule = &sched;
      art.address_map = &map;
      art.reuse_index = &index;
      art.scratch = &scratch;
      const sim::RunMetrics shared = simulator.run(*wl.dag, config, art);
      expect_same_metrics(fresh, shared, wl.name + "/" + name);
    }
  }
}

// Re-running the same cell through the same scratch must change nothing: the
// cursor rewind and every pooled policy's reset() restore constructed state.
TEST(ReuseIndex, ScratchResetIsCompleteBetweenRuns) {
  const sim::AcceleratorConfig arch;
  const auto& registry = sim::ConfigRegistry::global();
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("cg:iters=5,n=16");
  const sim::Simulator simulator(arch, wl.matrix.get());
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);

  sim::RunScratch scratch;
  for (const auto& name : sim::ConfigRegistry::table4_names()) {
    const sim::Configuration& config = registry.at(name);
    const score::Schedule sched = simulator.make_schedule(*wl.dag, config);
    const score::ReuseIndex index =
        score::ReuseIndex::build(*wl.dag, sched, map.base_of, map.entries.size());
    sim::RunArtifacts art;
    art.schedule = &sched;
    art.address_map = &map;
    art.reuse_index = &index;
    art.scratch = &scratch;
    const sim::RunMetrics first = simulator.run(*wl.dag, config, art);
    const sim::RunMetrics again = simulator.run(*wl.dag, config, art);
    expect_same_metrics(first, again, "repeat/" + name);
  }
}

// The counting-pass builder must produce exactly the positions the sort-based
// reference produces: same per-base counts, same ascending order.
TEST(ReuseIndex, CountingBuildMatchesSortReference) {
  const sim::AcceleratorConfig arch;
  const auto& registry = sim::ConfigRegistry::global();
  const std::vector<std::string> specs = {"cg:m=4096,n=16,iters=4", "gnn:cora",
                                          "resnet:spatial=784"};
  // Cello (pipelining) and Flexagon (op-by-op) cover both ScheduleOptions
  // slots a sweep distinguishes.
  const std::vector<std::string> configs = {"Cello", "Flexagon"};

  for (const auto& spec : specs) {
    const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec);
    const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
    const sim::Simulator simulator(arch, wl.matrix.get());
    for (const auto& name : configs) {
      const score::Schedule sched = simulator.make_schedule(*wl.dag, registry.at(name));
      const score::ReuseIndex index =
          score::ReuseIndex::build(*wl.dag, sched, map.base_of, map.entries.size());
      const auto reference = sort_based_reference(*wl.dag, sched, map);

      ASSERT_EQ(index.num_bases(), reference.size()) << spec << "/" << name;
      for (size_t b = 0; b < reference.size(); ++b) {
        ASSERT_EQ(index.count(static_cast<i32>(b)), reference[b].size())
            << spec << "/" << name << " base " << b;
        for (size_t k = 0; k < reference[b].size(); ++k)
          EXPECT_EQ(index.positions()[index.offsets()[b] + k], reference[b][k])
              << spec << "/" << name << " base " << b << " pos " << k;
      }
    }
  }
}

// Cursor queries at monotone positions agree with direct counting over the
// index, including bases with no uses at all (external results).
TEST(ReuseIndex, CursorMatchesDirectCount) {
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("cg:m=4096,n=16,iters=3");
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
  const sim::Simulator simulator{sim::AcceleratorConfig{}};
  const score::Schedule sched =
      simulator.make_schedule(*wl.dag, sim::ConfigRegistry::global().at("Cello"));
  const score::ReuseIndex index =
      score::ReuseIndex::build(*wl.dag, sched, map.base_of, map.entries.size());

  score::ReuseCursor cursor;
  cursor.reset(index);
  const i64 steps = static_cast<i64>(sched.steps.size());
  for (i64 pos = -1; pos <= steps; ++pos) {
    for (size_t b = 0; b < index.num_bases(); ++b) {
      const i32 base = static_cast<i32>(b);
      i32 want_remaining = 0;
      i64 want_next = -1;
      for (u32 k = index.offsets()[b]; k < index.offsets()[b + 1]; ++k) {
        const i64 p = index.positions()[k];
        if (p > pos) {
          ++want_remaining;
          if (want_next < 0) want_next = p - pos;
        }
      }
      EXPECT_EQ(cursor.remaining_after(index, base, pos), want_remaining)
          << "base " << b << " pos " << pos;
      EXPECT_EQ(cursor.next_distance(index, base, pos), want_next)
          << "base " << b << " pos " << pos;
    }
  }
}

}  // namespace
