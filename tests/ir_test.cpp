// Unit tests for the tensor-algebra IR: descriptors, einsum dominance, DAG
// structure and the transitivity analyses Algorithm 2 depends on.
#include <gtest/gtest.h>

#include "common/error.hpp"
#include "ir/dag.hpp"

namespace {

using namespace cello;
using ir::Dominance;
using ir::EinsumOp;
using ir::OpKind;
using ir::OpRank;
using ir::TensorDag;
using ir::TensorDesc;

TensorDesc dense2d(const std::string& name, i64 d0, i64 d1, Bytes word = 4) {
  TensorDesc t;
  t.name = name;
  t.ranks = {"m", "n"};
  t.dims = {d0, d1};
  t.word_bytes = word;
  return t;
}

TEST(TensorDesc, DenseBytesAndElements) {
  const TensorDesc t = dense2d("T", 100, 8);
  EXPECT_EQ(t.elements(), 800);
  EXPECT_EQ(t.bytes(), 3200u);
}

TEST(TensorDesc, SparseBytesCountValuesCoordsRowptr) {
  TensorDesc t;
  t.name = "A";
  t.ranks = {"m", "k"};
  t.dims = {1000, 1000};
  t.storage = ir::Storage::CompressedSparse;
  t.nnz = 5000;
  t.word_bytes = 4;
  // 5000 values * 4B + 5000 cols * 4B + 1001 rowptr * 4B
  EXPECT_EQ(t.bytes(), 5000u * 4 + 5000u * 4 + 1001u * 4);
  EXPECT_EQ(t.elements(), 5000);
}

TEST(TensorDesc, RankQueries) {
  const TensorDesc t = dense2d("T", 10, 20);
  EXPECT_TRUE(t.has_rank("m"));
  EXPECT_FALSE(t.has_rank("k"));
  EXPECT_EQ(t.dim_of("n"), 20);
  EXPECT_THROW(t.dim_of("zz"), Error);
}

TEST(EinsumOp, MacsFromRanksAndOverride) {
  EinsumOp op;
  op.name = "gemm";
  op.ranks = {OpRank{"m", 10, false, -1}, OpRank{"k", 20, true, -1}, OpRank{"n", 30, false, -1}};
  EXPECT_EQ(op.macs(), 6000);
  op.macs_override = 42;
  EXPECT_EQ(op.macs(), 42);
}

TEST(EinsumOp, UncontractedDominance) {
  EinsumOp op;
  op.ranks = {OpRank{"m", 1000000, false, -1}, OpRank{"k", 16, true, -1},
              OpRank{"n", 16, false, -1}};
  EXPECT_EQ(op.dominance(), Dominance::Uncontracted);
  EXPECT_EQ(op.dominant_rank().name, "m");
}

TEST(EinsumOp, ContractedDominance) {
  EinsumOp op;
  op.ranks = {OpRank{"m", 1000000, true, -1}, OpRank{"n'", 16, false, -1},
              OpRank{"n", 16, false, -1}};
  EXPECT_EQ(op.dominance(), Dominance::Contracted);
}

TEST(EinsumOp, BalancedDominance) {
  // ResNet-like conv GEMM: 784 / 512 / 128 all within the dominance ratio.
  EinsumOp op;
  op.ranks = {OpRank{"m", 784, false, -1}, OpRank{"k", 512, true, -1},
              OpRank{"n", 128, false, -1}};
  EXPECT_EQ(op.dominance(), Dominance::Balanced);
}

TEST(EinsumOp, CompressedRankUsesEffectiveExtent) {
  // SpMM: the contracted rank is compressed — effective extent is the row
  // occupancy, so the op is uncontracted-dominant (the 'U*' node of Fig. 7).
  EinsumOp op;
  op.ranks = {OpRank{"m", 100000, false, -1}, OpRank{"k", 100000, true, 9},
              OpRank{"n", 16, false, -1}};
  EXPECT_EQ(op.dominance(), Dominance::Uncontracted);
  EXPECT_EQ(op.dominant_rank().name, "m");
}

TEST(EinsumOp, ToStringCoverage) {
  EXPECT_STREQ(ir::to_string(Dominance::Uncontracted), "U");
  EXPECT_STREQ(ir::to_string(Dominance::Contracted), "C");
  EXPECT_STREQ(ir::to_string(Dominance::Balanced), "bal");
  EXPECT_STREQ(ir::to_string(OpKind::Inverse), "inverse");
}

// ---- DAG structure ----------------------------------------------------------

/// Diamond with a transitive shortcut:   a -> b -> d,  a -> c -> d,  a -> d.
struct DiamondFixture {
  TensorDag dag;
  ir::OpId a, b, c, d;
  ir::EdgeId shortcut;

  DiamondFixture() {
    auto mk_tensor = [&](const std::string& n) { return dag.add_tensor(dense2d(n, 64, 64)); };
    const auto ta = mk_tensor("Ta"), tb = mk_tensor("Tb"), tc = mk_tensor("Tc"),
               td = mk_tensor("Td"), tin = mk_tensor("Tin");
    dag.mark_external(tin);
    auto mk_op = [&](const std::string& n, std::vector<ir::TensorId> ins, ir::TensorId out) {
      EinsumOp op;
      op.name = n;
      op.inputs = std::move(ins);
      op.output = out;
      op.ranks = {OpRank{"m", 64, false, -1}, OpRank{"n", 64, false, -1}};
      return dag.add_op(op);
    };
    a = mk_op("a", {tin}, ta);
    b = mk_op("b", {ta}, tb);
    c = mk_op("c", {ta, tb}, tc);
    d = mk_op("d", {ta, tc}, td);
    dag.add_edge(a, b, ta);
    dag.add_edge(b, c, tb);
    dag.add_edge(a, c, ta);
    dag.add_edge(c, d, tc);
    shortcut = dag.add_edge(a, d, ta);
    dag.validate();
  }
};

TEST(TensorDag, TopoOrderIsProgramOrder) {
  DiamondFixture f;
  const auto order = f.dag.topo_order();
  EXPECT_EQ(order, (std::vector<ir::OpId>{f.a, f.b, f.c, f.d}));
}

TEST(TensorDag, LongestPathPrefersIndirectRoute) {
  DiamondFixture f;
  EXPECT_EQ(f.dag.longest_path_len(f.a, f.d), 3);  // a->b->c->d
  const auto path = f.dag.longest_path(f.a, f.d);
  EXPECT_EQ(path, (std::vector<ir::OpId>{f.a, f.b, f.c, f.d}));
}

TEST(TensorDag, TransitiveEdgeDetection) {
  DiamondFixture f;
  EXPECT_TRUE(f.dag.is_transitive(f.dag.edge(f.shortcut)));
  // a->b is on the longest path: not transitive.
  EXPECT_FALSE(f.dag.is_transitive(f.dag.edge(0)));
}

TEST(TensorDag, ScheduleDistance) {
  DiamondFixture f;
  const auto order = f.dag.topo_order();
  EXPECT_EQ(f.dag.schedule_distance(f.dag.edge(f.shortcut), order), 3);
  EXPECT_EQ(f.dag.schedule_distance(f.dag.edge(0), order), 1);
}

TEST(TensorDag, ConsumersAndProducer) {
  DiamondFixture f;
  const auto ta = f.dag.op(f.a).output;
  const auto consumers = f.dag.consumers(ta);
  EXPECT_EQ(consumers.size(), 3u);  // b, c, d
  EXPECT_EQ(f.dag.producer(ta), std::optional<ir::OpId>(f.a));
  EXPECT_FALSE(f.dag.producer(f.dag.external_tensors().front()).has_value());
}

TEST(TensorDag, EdgeTensorMustMatchProducerOutput) {
  DiamondFixture f;
  const auto tb = f.dag.op(f.b).output;
  EXPECT_THROW(f.dag.add_edge(f.a, f.d, tb), Error);  // Tb is not a's output
}

TEST(TensorDag, CycleDetection) {
  TensorDag dag;
  const auto t1 = dag.add_tensor(dense2d("T1", 4, 4));
  const auto t2 = dag.add_tensor(dense2d("T2", 4, 4));
  EinsumOp op1, op2;
  op1.name = "p";
  op1.inputs = {t2};
  op1.output = t1;
  op1.ranks = {OpRank{"m", 4, false, -1}};
  op2.name = "q";
  op2.inputs = {t1};
  op2.output = t2;
  op2.ranks = {OpRank{"m", 4, false, -1}};
  const auto a = dag.add_op(op1);
  const auto b = dag.add_op(op2);
  dag.add_edge(a, b, t1);
  dag.add_edge(b, a, t2);
  EXPECT_THROW(dag.topo_order(), Error);
}

TEST(TensorDag, DotExportMentionsNodesAndTransitivity) {
  DiamondFixture f;
  const std::string dot = f.dag.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("(T)"), std::string::npos);  // transitive edge marker
}

TEST(TensorDag, ValidateRejectsNonConsumedEdge) {
  TensorDag dag;
  const auto t1 = dag.add_tensor(dense2d("T1", 4, 4));
  const auto t2 = dag.add_tensor(dense2d("T2", 4, 4));
  const auto t3 = dag.add_tensor(dense2d("T3", 4, 4));
  dag.mark_external(t3);
  EinsumOp op1, op2;
  op1.name = "p";
  op1.inputs = {t3};
  op1.output = t1;
  op1.ranks = {OpRank{"m", 4, false, -1}};
  op2.name = "q";
  op2.inputs = {t3};  // does NOT consume t1
  op2.output = t2;
  op2.ranks = {OpRank{"m", 4, false, -1}};
  const auto a = dag.add_op(op1);
  const auto b = dag.add_op(op2);
  dag.add_edge(a, b, t1);
  EXPECT_THROW(dag.validate(), Error);
}

}  // namespace
