// Tests for the LLM decode subsystem: the llm: workload builder (append-only
// KV-cache chains in the TensorDag), the KvCachePolicy buffer model, and the
// sweep-pool bit-identity guarantees the policy must uphold.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cello/cello.hpp"
#include "common/error.hpp"
#include "sim/policies/kv_cache_policy.hpp"
#include "sim/workload_registry.hpp"
#include "workloads/llm.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigRegistry;
using sim::Simulator;
using sim::SweepRunner;

// ---- llm DAG structure -------------------------------------------------------

TEST(LlmDag, StructureAndAppendChains) {
  workloads::LlmShape shape;  // layers=2, heads=8, d_model=512, seq=128, T=8
  const auto dag = workloads::build_llm_decode_dag(shape);
  // 8 ops per (layer, step): qkv, k_append, v_append, attn, ctx, proj, mlp1, mlp2.
  EXPECT_EQ(dag.ops().size(), 2u * 8u * 8u);
  dag.validate();

  // Each layer's K/V chain: external prefill head at extent seq, then one
  // appended row per step, annotated append-only with the right delta.
  const Bytes row = 512 * 2;  // kv_width * word_bytes (gqa == heads)
  int chain_heads = 0, chain_links = 0;
  for (const auto& t : dag.tensors()) {
    if (!t.append_only) continue;
    if (t.append_prev == ir::kInvalidTensor) {
      ++chain_heads;
      EXPECT_EQ(dag.appended_bytes(t.id), t.bytes());
      EXPECT_EQ(t.bytes(), 128 * row);  // prefill extent
    } else {
      ++chain_links;
      EXPECT_EQ(dag.appended_bytes(t.id), row);  // exactly one new row
      EXPECT_GT(t.bytes(), dag.tensor(t.append_prev).bytes());
    }
  }
  EXPECT_EQ(chain_heads, 2 * 2);             // K + V per layer
  EXPECT_EQ(chain_links, 2 * 2 * 8);         // one link per step
  // '@' instances fold onto one base whose footprint is the FINAL extent.
  const auto map = sim::AddressMap::build(dag);
  bool saw_k1 = false;
  for (const auto& e : map.entries)
    if (e.base == "K_1") {
      saw_k1 = true;
      EXPECT_EQ(e.bytes, (128 + 8) * row);
    }
  EXPECT_TRUE(saw_k1);
}

TEST(LlmDag, Seq0PrefillOnlyAndGqa) {
  // seq=0: the chain head is an empty cache — builds, validates, simulates.
  workloads::LlmShape shape;
  shape.seq = 0;
  shape.layers = 1;
  shape.decode_steps = 4;
  const auto dag = workloads::build_llm_decode_dag(shape);
  for (const auto& t : dag.tensors())
    if (t.append_only && t.append_prev == ir::kInvalidTensor) {
      EXPECT_EQ(t.bytes(), 0u);
    }
  const auto m = Simulator(AcceleratorConfig{}).run(dag, ConfigRegistry::global().at("Cello"));
  EXPECT_GT(m.total_macs, 0);
  EXPECT_GT(m.seconds, 0.0);

  // GQA shrinks the KV row: kv_width = (d_model / heads) * gqa.
  workloads::LlmShape gqa = shape;
  gqa.gqa = 2;  // 8 query heads sharing 2 KV heads
  const auto gdag = workloads::build_llm_decode_dag(gqa);
  const Bytes gqa_row = (512 / 8) * 2 * 2;  // head_dim * kv_heads * word_bytes
  for (const auto& t : gdag.tensors())
    if (t.append_only && t.append_prev != ir::kInvalidTensor) {
      EXPECT_EQ(gdag.appended_bytes(t.id), gqa_row);
    }
  EXPECT_THROW(workloads::build_llm_decode_dag({.heads = 8, .gqa = 3}), Error);
  EXPECT_THROW(workloads::build_llm_decode_dag({.heads = 8, .d_model = 100}), Error);
}

// ---- KvCachePolicy unit behavior ---------------------------------------------

chord::TensorMeta kv_meta(i32 id, Bytes extent, Bytes appended) {
  chord::TensorMeta m;
  m.id = id;
  m.name = "K_" + std::to_string(id);
  m.bytes = extent;
  m.append_only = true;
  m.appended_bytes = appended;
  return m;
}

TEST(KvCachePolicy, AppendWritesPinAndReadsHitResident) {
  AcceleratorConfig arch;
  arch.sram_bytes = 1 << 20;
  sim::KvCachePolicy policy(arch);
  // Chain head: 1000-byte prefill pins dirty, no DRAM traffic yet.
  auto svc = policy.write_tensor(kv_meta(1, 1000, 1000));
  EXPECT_EQ(svc.total(), 0u);
  EXPECT_EQ(policy.resident_bytes(), 1000u);
  // Step read over the grown extent: resident prefix hits, tail misses.
  svc = policy.read_tensor(kv_meta(1, 1200, 200));
  EXPECT_EQ(svc.dram_read, 200u);
  EXPECT_EQ(svc.dram_write, 0u);
  EXPECT_EQ(policy.stats().kv_read_hit_bytes, 1000u);
  EXPECT_EQ(policy.stats().kv_read_miss_bytes, 200u);
  EXPECT_EQ(policy.resident_bytes(), 1200u);  // fetched tail re-installed
  // Non-append tensors stream at full footprint, untouched by the ring.
  chord::TensorMeta weight;
  weight.id = 7;
  weight.name = "W";
  weight.bytes = 4096;
  EXPECT_EQ(policy.read_tensor(weight).dram_read, 4096u);
  EXPECT_EQ(policy.write_tensor(weight).dram_write, 4096u);
  EXPECT_EQ(policy.resident_bytes(), 1200u);
}

TEST(KvCachePolicy, RingWrapEvictsOldestAndSpillsDirty) {
  AcceleratorConfig arch;
  arch.sram_bytes = 1000;  // tiny budget: the ring must wrap
  sim::KvCachePolicy policy(arch);
  // Ten dirty 300-byte appends against a 1000-byte budget.
  Bytes spilled = 0;
  for (i32 step = 0; step < 10; ++step) {
    const Bytes extent = 300u * (step + 1);
    spilled += policy.write_tensor(kv_meta(1, extent, 300)).dram_write;
  }
  EXPECT_LE(policy.resident_bytes(), arch.sram_bytes);
  EXPECT_GT(policy.stats().ring_evictions, 0u);
  // Every evicted segment was dirty (pinned on write, never written through):
  // total traffic = total appended - still-resident.
  EXPECT_EQ(spilled, 3000u - policy.resident_bytes());
  EXPECT_EQ(policy.stats().kv_spill_bytes, spilled);
  EXPECT_EQ(policy.stats().peak_resident_bytes, 1200u);  // 900 + 300 before evict

  // Retire releases residency without writeback; drain then has nothing.
  policy.retire(1);
  EXPECT_EQ(policy.resident_bytes(), 0u);
  EXPECT_FALSE(policy.drain({}).has_value());
}

TEST(KvCachePolicy, DrainWritesBackLiveDirtyRowsOnce) {
  AcceleratorConfig arch;
  sim::KvCachePolicy policy(arch);
  policy.write_tensor(kv_meta(1, 500, 500));
  policy.write_tensor(kv_meta(2, 800, 800));
  const auto items = policy.drain({});
  ASSERT_TRUE(items.has_value());
  ASSERT_EQ(items->size(), 2u);
  EXPECT_EQ((*items)[0].base, "K_1");  // deterministic: sorted by base id
  EXPECT_EQ((*items)[0].dram_write, 500u);
  EXPECT_EQ((*items)[1].dram_write, 800u);
  EXPECT_FALSE(policy.drain({}).has_value());  // second drain: nothing dirty
}

TEST(KvCachePolicy, ResetRestoresConstructedState) {
  AcceleratorConfig arch;
  arch.sram_bytes = 1000;
  sim::KvCachePolicy policy(arch);
  ASSERT_TRUE(policy.reusable());

  auto exercise = [&]() {
    std::vector<Bytes> trace;
    for (i32 step = 0; step < 6; ++step) {
      const Bytes extent = 250u * (step + 1);
      trace.push_back(policy.write_tensor(kv_meta(1, extent, 250)).dram_write);
      trace.push_back(policy.read_tensor(kv_meta(1, extent, 0)).dram_read);
    }
    const auto items = policy.drain({});
    trace.push_back(items ? items->size() : 0);
    trace.push_back(policy.stats().kv_spill_bytes);
    trace.push_back(policy.stats().peak_resident_bytes);
    return trace;
  };
  const auto fresh = exercise();
  policy.reset();
  EXPECT_EQ(policy.resident_bytes(), 0u);
  EXPECT_EQ(exercise(), fresh);  // bit-identical replay through the pool path
}

// ---- end-to-end decode behavior ----------------------------------------------

TEST(LlmDecode, PerStepKvGrowthVisibleInMetrics) {
  // Under explicit buffers every step rewrites the full cache extent, so the
  // scheduled append/attention ops get strictly costlier step over step —
  // the per-step KV growth the IR annotation carries into RunMetrics.
  const auto wl = sim::WorkloadRegistry::global().resolve("llm:layers=1,seq=512");
  const auto m =
      Simulator(AcceleratorConfig{}).run(*wl.dag, ConfigRegistry::global().at("Flexagon"));
  Bytes early = 0, late = 0;
  for (const auto& op : m.per_op) {
    if (op.op == "attn_1@0") early = op.dram_bytes;
    if (op.op == "attn_1@7") late = op.dram_bytes;
  }
  ASSERT_GT(early, 0u);
  EXPECT_GT(late, early);
}

TEST(LlmDecode, DecodePastSramBudgetSpills) {
  // KV footprint (~8.4 MB across 2 layers) far past a 1 MiB budget: the KV
  // ring must wrap and the spill traffic must show up against the K/V bases.
  const auto wl =
      sim::WorkloadRegistry::global().resolve("llm:d_model=512,seq=2048,decode_steps=8,layers=2");
  AcceleratorConfig small;
  small.sram_bytes = 1 << 20;
  const auto m = Simulator(small).run(*wl.dag, ConfigRegistry::global().at("Flex+KV"));
  Bytes kv_write = 0;
  for (const auto& [base, bytes] : m.traffic_by_tensor)
    if (base.starts_with("K_") || base.starts_with("V_")) kv_write += bytes;
  EXPECT_GT(kv_write, 0u) << "budget-exceeding decode must spill KV traffic";
}

TEST(LlmDecode, KvCacheBeatsLruOnDocumentedConfig) {
  // The documented win (README): KV extent 8.4 MB > 4 MiB SRAM makes LRU
  // thrash weights against cache lines; the append-aware ring does not.
  const auto wl =
      sim::WorkloadRegistry::global().resolve("llm:d_model=512,seq=2048,decode_steps=8,layers=2");
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto& registry = ConfigRegistry::global();
  const auto kv = simulator.run(*wl.dag, registry.at("Flex+KV"));
  const auto lru = simulator.run(*wl.dag, registry.at("Flex+LRU"));
  const auto explicit_buf = simulator.run(*wl.dag, registry.at("Flexagon"));
  EXPECT_LT(kv.dram_bytes, lru.dram_bytes);
  EXPECT_LT(kv.dram_bytes, explicit_buf.dram_bytes);
}

// ---- sweep pooling bit-identity ----------------------------------------------

TEST(LlmSweep, PooledCellsBitIdenticalToFreshRuns) {
  // llm cells across the sweep pool (shared prebuild + RunScratch reset with
  // pooled KV policies) must match cache-free per-cell Simulator runs and be
  // thread-count invariant — mirroring sweep_test for the new policy.
  const std::vector<std::string> spec_texts = {
      "llm:layers=1,seq=256,decode_steps=4",
      "llm:d_model=256,decode_steps=6,gqa=2",
  };
  std::vector<std::string> config_names = ConfigRegistry::table4_names();
  config_names.push_back("Flex+KV");
  const AcceleratorConfig arch;

  const auto serial = SweepRunner(/*threads=*/1).run(spec_texts, config_names, arch);
  const auto parallel = SweepRunner(/*threads=*/4).run(spec_texts, config_names, arch);
  ASSERT_EQ(serial.size(), spec_texts.size() * config_names.size());
  ASSERT_EQ(parallel.size(), serial.size());

  const auto& registry = ConfigRegistry::global();
  for (size_t wi = 0; wi < spec_texts.size(); ++wi) {
    const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec_texts[wi]);
    const Simulator simulator(arch);
    for (size_t ci = 0; ci < config_names.size(); ++ci) {
      const auto& s = serial[wi * config_names.size() + ci];
      const auto& p = parallel[wi * config_names.size() + ci];
      EXPECT_EQ(s.metrics.seconds, p.metrics.seconds) << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.dram_bytes, p.metrics.dram_bytes) << s.workload << "/" << s.config;
      // Cache-free reference rebuilds schedule, map and policy per cell.
      const auto reference = simulator.run(*wl.dag, registry.at(config_names[ci]));
      EXPECT_EQ(s.metrics.seconds, reference.seconds) << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.dram_read_bytes, reference.dram_read_bytes)
          << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.dram_write_bytes, reference.dram_write_bytes)
          << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.sram_line_accesses, reference.sram_line_accesses)
          << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.onchip_energy_pj, reference.onchip_energy_pj)
          << s.workload << "/" << s.config;
      EXPECT_EQ(s.metrics.traffic_by_tensor, reference.traffic_by_tensor)
          << s.workload << "/" << s.config;
    }
  }
}

}  // namespace
