// Tests for the per-op / per-tensor reporting layer.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "sim/report.hpp"
#include "workloads/cg.hpp"

namespace {

using namespace cello;

sim::RunMetrics cg_metrics(sim::ConfigKind kind) {
  const auto dag = workloads::build_cg_dag({9604, 16, 85264, 3, 4});
  return sim::simulate(dag, kind, sim::AcceleratorConfig{});
}

TEST(Report, PerOpRowsCoverEveryStep) {
  const auto m = cg_metrics(sim::ConfigKind::Cello);
  EXPECT_EQ(m.per_op.size(), 24u);  // 8 ops x 3 iterations
  i64 macs = 0;
  Bytes dram = 0;
  for (const auto& r : m.per_op) {
    macs += r.macs;
    dram += r.dram_bytes;
  }
  EXPECT_EQ(macs, m.total_macs);
  // Per-op rows cover all traffic except the end-of-run drains.
  EXPECT_LE(dram, m.dram_bytes);
  EXPECT_GE(dram + 1024 * 1024, m.dram_bytes);
}

TEST(Report, CacheConfigAlsoFillsPerOp) {
  const auto m = cg_metrics(sim::ConfigKind::FlexLru);
  EXPECT_EQ(m.per_op.size(), 24u);
}

TEST(Report, PerOpReportRendersBoundColumn) {
  const auto m = cg_metrics(sim::ConfigKind::Flexagon);
  const auto text = sim::per_op_report(m, sim::AcceleratorConfig{});
  EXPECT_NE(text.find("memory"), std::string::npos);
  EXPECT_NE(text.find("1@1"), std::string::npos);
}

TEST(Report, PerOpReportTruncates) {
  const auto m = cg_metrics(sim::ConfigKind::Flexagon);
  const auto text = sim::per_op_report(m, sim::AcceleratorConfig{}, 4);
  EXPECT_NE(text.find("more ops"), std::string::npos);
}

TEST(Report, PerTensorSharesSumBelowHundred) {
  const auto m = cg_metrics(sim::ConfigKind::Cello);
  const auto text = sim::per_tensor_report(m);
  EXPECT_NE(text.find("%"), std::string::npos);
  EXPECT_NE(text.find("A"), std::string::npos);  // the sparse matrix appears
}

TEST(Report, CsvHasHeaderAndRows) {
  const auto m = cg_metrics(sim::ConfigKind::Cello);
  const auto csv = sim::per_op_csv(m);
  EXPECT_EQ(csv.find("op,macs,dram_bytes"), 0u);
  // header + 24 rows
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 25);
}

}  // namespace
