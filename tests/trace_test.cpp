// trace::ChromeTraceWriter + Simulator run tracing.
//
// Traces are *simulated-time* narrations, so they must be deterministic to
// the byte: a checked-in golden pins the exact serialization for one CG cell
// (CELLO_UPDATE_GOLDENS=1 ./trace_test to refresh after an intended change),
// schema assertions pin the Chrome trace_event grammar Perfetto expects, and
// equality tests pin that (a) arming a sink never perturbs the metrics and
// (b) a sweep's --trace-cell bytes equal a direct Simulator::run's bytes.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "sim/registry.hpp"
#include "sim/result_io.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sim/workload_registry.hpp"
#include "trace/trace.hpp"

namespace {

using namespace cello;

const char* golden_path() { return CELLO_SOURCE_DIR "/tests/goldens/trace_cg_cello.json"; }

/// Trace one run of `spec` under configuration `name` and return the exact
/// ChromeTraceWriter bytes (finish() included).
std::string trace_run(const std::string& spec, const std::string& name,
                      const sim::AcceleratorConfig& arch = {}) {
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec);
  const sim::Simulator simulator(arch, wl.matrix.get());
  std::ostringstream out;
  {
    trace::ChromeTraceWriter writer(out);
    sim::RunArtifacts art;
    art.trace = &writer;
    simulator.run(*wl.dag, sim::ConfigRegistry::global().at(name), art);
  }
  return out.str();
}

TEST(Trace, GoldenBytesForCgCello) {
  const std::string got = trace_run("cg:m=2048,n=8,iters=2", "Cello");

  if (std::getenv("CELLO_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << got;
    ASSERT_TRUE(out.good()) << "failed to write " << golden_path();
    return;
  }
  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << golden_path()
                         << " — run with CELLO_UPDATE_GOLDENS=1 to generate";
  std::stringstream want;
  want << in.rdbuf();
  EXPECT_EQ(got, want.str())
      << "trace serialization drifted; CELLO_UPDATE_GOLDENS=1 ./trace_test if intended";
}

TEST(Trace, TwoRunsAreByteIdentical) {
  const std::string a = trace_run("gnn:cora", "SCORE+LRU");
  const std::string b = trace_run("gnn:cora", "SCORE+LRU");
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// The emitted document must be one valid JSON object shaped like the Chrome
// trace_event format: {"traceEvents": [...]}, every event carrying name / ph /
// ts / pid / tid, ph limited to the phases we emit (M metadata, X complete
// span, C counter), X durations non-negative, and counter timestamps
// non-decreasing per (pid, tid, name) series.
TEST(Trace, DocumentMatchesChromeTraceSchema) {
  const std::string text = trace_run("cg:dataset=fv1,iters=3,n=8", "Cello");
  const sim::JsonValue doc = sim::json_parse(text);

  ASSERT_EQ(doc.type, sim::JsonValue::Type::Object);
  const sim::JsonValue& events = doc.at("traceEvents");
  ASSERT_EQ(events.type, sim::JsonValue::Type::Array);
  ASSERT_FALSE(events.items.empty());

  int spans = 0, counters = 0, metas = 0;
  std::map<std::string, double> counter_clock;  // per-series last ts
  for (const auto& e : events.items) {
    ASSERT_EQ(e.type, sim::JsonValue::Type::Object);
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "X" || ph == "C" || ph == "M") << "unexpected phase " << ph;
    EXPECT_FALSE(e.at("name").as_string().empty());
    EXPECT_GE(e.at("pid").as_i64(), 0);
    EXPECT_GE(e.at("tid").as_i64(), 0);

    if (ph == "M") {
      ++metas;
      continue;  // metadata events have no timestamp semantics
    }
    const double ts = e.at("ts").as_double();
    EXPECT_GE(ts, 0.0);
    if (ph == "X") {
      ++spans;
      EXPECT_GE(e.at("dur").as_double(), 0.0);
    } else {
      ++counters;
      const std::string series = e.at("pid").scalar + "/" + e.at("tid").scalar + "/" +
                                 e.at("name").as_string();
      auto it = counter_clock.find(series);
      if (it != counter_clock.end()) {
        EXPECT_GE(ts, it->second) << "counter series " << series << " went backwards";
      }
      counter_clock[series] = ts;
      const sim::JsonValue& args = e.at("args");
      EXPECT_EQ(args.type, sim::JsonValue::Type::Object);
      EXPECT_GE(args.at("bytes").as_i64(), 0);
    }
  }
  EXPECT_GT(spans, 0) << "no compute/dram spans emitted";
  EXPECT_GT(counters, 0) << "no buffer-occupancy samples emitted";
  EXPECT_GE(metas, 2) << "track metadata (process_name/thread_name) missing";
}

// Arming a sink must not perturb the simulation: same metrics to the bit.
TEST(Trace, TracedRunMetricsEqualUntracedRun) {
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("spmv:dataset=fv1,iters=2");
  const sim::Simulator simulator({}, wl.matrix.get());
  const sim::Configuration& config = sim::ConfigRegistry::global().at("Flex+BRRIP");

  const sim::RunMetrics plain = simulator.run(*wl.dag, config);
  std::ostringstream out;
  trace::ChromeTraceWriter writer(out);
  sim::RunArtifacts art;
  art.trace = &writer;
  const sim::RunMetrics traced = simulator.run(*wl.dag, config, art);

  EXPECT_EQ(plain.seconds, traced.seconds);
  EXPECT_EQ(plain.dram_bytes, traced.dram_bytes);
  EXPECT_EQ(plain.onchip_energy_pj, traced.onchip_energy_pj);
  EXPECT_EQ(plain.offchip_energy_pj, traced.offchip_energy_pj);
  EXPECT_EQ(plain.sram_line_accesses, traced.sram_line_accesses);
  EXPECT_EQ(plain.traffic_by_tensor, traced.traffic_by_tensor);
}

// SweepOptions::trace_cell narrates exactly the selected cell, and the bytes
// equal a direct Simulator::run of that cell with the same sink — shared
// schedules, reuse indexes, router tables and pooled scratch included.
TEST(Trace, SweepTraceCellBytesEqualDirectRun) {
  const std::vector<std::string> specs = {"cg:m=2048,n=8,iters=2", "gnn:cora"};
  const std::vector<std::string> configs = {"Flexagon", "Cello", "SCORE+LRU"};
  const sim::AcceleratorConfig arch;
  auto& wreg = sim::WorkloadRegistry::global();
  auto& creg = sim::ConfigRegistry::global();

  std::vector<sim::Workload> workloads;
  for (const auto& s : specs) workloads.push_back(wreg.resolve(s));
  std::vector<sim::Configuration> cfgs;
  for (const auto& c : configs) cfgs.push_back(creg.at(c));

  // Trace cell (workload 1, config 1): gnn:cora under Cello.
  const i64 cell = 1 * static_cast<i64>(configs.size()) + 1;
  std::ostringstream from_sweep;
  {
    trace::ChromeTraceWriter writer(from_sweep);
    sim::SweepOptions opts;
    opts.trace_cell = cell;
    opts.trace_sink = &writer;
    const auto cells = sim::SweepRunner(/*threads=*/3).run(workloads, cfgs, arch, opts);
    ASSERT_EQ(cells.size(), specs.size() * configs.size());
  }
  const std::string direct = trace_run("gnn:cora", "Cello", arch);
  EXPECT_FALSE(direct.empty());
  EXPECT_EQ(from_sweep.str(), direct);
}

TEST(Trace, SweepTraceCellRequiresSinkAndBounds) {
  auto& wreg = sim::WorkloadRegistry::global();
  auto& creg = sim::ConfigRegistry::global();
  const std::vector<sim::Workload> workloads = {wreg.resolve("cg:m=2048,n=8,iters=2")};
  const std::vector<sim::Configuration> configs = {creg.at("Cello")};

  sim::SweepOptions no_sink;
  no_sink.trace_cell = 0;  // no sink
  EXPECT_THROW(sim::SweepRunner(1).run(workloads, configs, {}, no_sink), Error);

  std::ostringstream out;
  trace::ChromeTraceWriter writer(out);
  sim::SweepOptions out_of_grid;
  out_of_grid.trace_cell = 99;  // 1x1 grid
  out_of_grid.trace_sink = &writer;
  EXPECT_THROW(sim::SweepRunner(1).run(workloads, configs, {}, out_of_grid), Error);
}

// Multi-node runs add a NoC track whose "collectives" span starts where the
// slowest shard finishes.
TEST(Trace, MultinodeRunEmitsCollectivesSpan) {
  sim::AcceleratorConfig arch;
  arch.nodes = 4;
  arch.topology = "mesh:2x2";
  const std::string text = trace_run("gnn:cora", "Cello", arch);
  const sim::JsonValue doc = sim::json_parse(text);

  bool saw_collectives = false, saw_noc_track = false;
  for (const auto& e : doc.at("traceEvents").items) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    if (ph == "X" && name == "collectives") {
      saw_collectives = true;
      const sim::JsonValue& args = e.at("args");
      EXPECT_EQ(args.at("nodes").as_i64(), 4);
      EXPECT_GE(args.at("noc_bytes").as_i64(), 0);
    }
    if (ph == "M" && name == "thread_name" &&
        e.at("args").at("name").as_string() == "noc")
      saw_noc_track = true;
  }
  EXPECT_TRUE(saw_collectives);
  EXPECT_TRUE(saw_noc_track);
}

TEST(Trace, FinishIsIdempotentAndCountsEvents) {
  std::ostringstream out;
  trace::ChromeTraceWriter writer(out);
  writer.track(0, 0, "p", "t");
  writer.span(0, 0, "op", 0.0, 1e-6, {trace::arg("macs", i64{42})});
  writer.counter(0, 0, "occ", 1e-6, Bytes{128});
  writer.finish();
  const std::string once = out.str();
  writer.finish();  // idempotent: no extra bytes
  EXPECT_EQ(out.str(), once);
  // track() expands to process_name + thread_name metadata events.
  EXPECT_EQ(writer.events(), 4u);
  EXPECT_NO_THROW(sim::json_parse(once));
}

// The pre-PR-9 overloads still resolve (as [[deprecated]] shims) and agree
// with the one real run(dag, config, artifacts) signature.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Trace, DeprecatedRunShimsMatchBundleApi) {
  const sim::Workload wl = sim::WorkloadRegistry::global().resolve("cg:m=2048,n=8,iters=2");
  const sim::Simulator simulator{sim::AcceleratorConfig{}};
  const sim::RunMetrics want = simulator.run(*wl.dag, sim::ConfigRegistry::global().at("Cello"));

  const sim::RunMetrics by_name = simulator.run(*wl.dag, "Cello");
  const sim::RunMetrics by_kind = simulator.run(*wl.dag, sim::ConfigKind::Cello);
  EXPECT_EQ(by_name.seconds, want.seconds);
  EXPECT_EQ(by_kind.seconds, want.seconds);
  EXPECT_EQ(by_name.dram_bytes, want.dram_bytes);
  EXPECT_EQ(by_kind.dram_bytes, want.dram_bytes);

  const sim::Configuration& config = sim::ConfigRegistry::global().at("Cello");
  const score::Schedule sched = simulator.make_schedule(*wl.dag, config);
  const sim::AddressMap map = sim::AddressMap::build(*wl.dag);
  const sim::RunMetrics positional = simulator.run(*wl.dag, config, sched, map);
  EXPECT_EQ(positional.seconds, want.seconds);
  EXPECT_EQ(positional.dram_bytes, want.dram_bytes);
}
#pragma GCC diagnostic pop

}  // namespace
