// Table IV footnote: Sequential Pipeline vs Parallel Pipeline changes timing
// (no concurrent stage overlap) but never DRAM traffic.
#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigKind;
using sim::PipelineStyle;

TEST(PipelineStyle, TrafficIdenticalTimingDiffers) {
  const auto dag = workloads::build_resnet_block_dag({});
  AcceleratorConfig pp, sp;
  pp.dram_bytes_per_sec = sp.dram_bytes_per_sec = 250e9;
  sp.pipeline_style = PipelineStyle::Sequential;
  for (auto kind : {ConfigKind::Flat, ConfigKind::Set, ConfigKind::Cello}) {
    const auto a = sim::simulate(dag, kind, pp);
    const auto b = sim::simulate(dag, kind, sp);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes) << sim::to_string(kind);
    EXPECT_LE(a.seconds, b.seconds) << sim::to_string(kind);
  }
}

TEST(PipelineStyle, NoEffectOnOpByOpConfigs) {
  const auto dag = workloads::build_gnn_dag({1000, 5000, 64, 16});
  AcceleratorConfig pp, sp;
  sp.pipeline_style = PipelineStyle::Sequential;
  const auto a = sim::simulate(dag, ConfigKind::Flexagon, pp);
  const auto b = sim::simulate(dag, ConfigKind::Flexagon, sp);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(PipelineStyle, SequentialStillBeatsFlexagonViaTraffic) {
  // Even without stage overlap, the traffic elimination alone wins (the
  // paper's note: SP "does not impact the DRAM accesses").
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  AcceleratorConfig sp;
  sp.pipeline_style = PipelineStyle::Sequential;
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, sp);
  const auto flat = sim::simulate(dag, ConfigKind::Flat, sp);
  EXPECT_LT(flat.seconds, flex.seconds);
}

}  // namespace
