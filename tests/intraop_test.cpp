// Tests for the intra-op mapping cost model: the oracle baseline the
// paper's Best Intra-layer configuration assumes must actually be reachable
// by a tile search when (and only when) the small tensor fits on chip.
#include <gtest/gtest.h>

#include "mem/roofline.hpp"
#include "score/intraop.hpp"

namespace {

using namespace cello;
using score::GemmMapping;
using score::GemmShape;

TEST(IntraOp, OracleFormulaMatchesEq3) {
  const GemmShape s{512, 512, 512, 4};
  EXPECT_DOUBLE_EQ(score::oracle_words(s), 3.0 * 512 * 512);
  EXPECT_NEAR(score::oracle_intensity_ops_per_word(s), 512.0 / 3.0, 1e-9);
}

TEST(IntraOp, SkewedIntensityApproachesNOver2) {
  // Eq. 4: K/M -> 0 with K == N gives N/2 ops/word.
  const GemmShape s{524288, 16, 16, 4};
  EXPECT_NEAR(score::oracle_intensity_ops_per_word(s), 16.0 / 2.0, 0.01);
}

TEST(IntraOp, UntiledContractionSpillsPartialSums) {
  // With the output tiled as well, slicing the contraction forces partial-sum
  // spills: every k-tile re-reads and re-writes the output tile.
  const GemmShape s{64, 64, 64, 4};
  const GemmMapping bad{8, 1, 64};   // 64 partial-sum rounds per output tile
  const GemmMapping good{8, 64, 64};  // full contraction per output tile
  EXPECT_GT(score::dram_words(s, bad), score::dram_words(s, good));
}

TEST(IntraOp, ResidentOutputAbsorbsPartialSums) {
  // ...but if the whole output stays on chip, k-tiling costs nothing.
  const GemmShape s{64, 64, 64, 4};
  EXPECT_DOUBLE_EQ(score::dram_words(s, {64, 1, 64}), score::dram_words(s, {64, 64, 64}));
}

TEST(IntraOp, MappingFitCheck) {
  const GemmShape s{1024, 1024, 1024, 4};
  EXPECT_TRUE((GemmMapping{16, 16, 16}.fits(s, 4096)));    // 768 words
  EXPECT_FALSE((GemmMapping{64, 64, 64}.fits(s, 4096)));   // 12288 words
}

class MappingSearchTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(MappingSearchTest, SearchNeverBeatsOracle) {
  const auto r = score::search_best_mapping(GetParam(), 4ull << 20);
  EXPECT_GE(r.best_words, r.oracle * 0.999);
  EXPECT_GT(r.mappings_evaluated, 0);
}

TEST_P(MappingSearchTest, BestMappingRespectsCapacity) {
  const auto& s = GetParam();
  const auto r = score::search_best_mapping(s, 4ull << 20);
  EXPECT_TRUE(r.best.fits(s, 4ull << 20)) << r.best.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MappingSearchTest,
    ::testing::Values(GemmShape{512, 512, 512, 4},      // regular
                      GemmShape{524288, 16, 16, 4},     // CG-skewed
                      GemmShape{784, 512, 128, 2},      // ResNet conv
                      GemmShape{2708, 1433, 7, 4}),     // GCN transform
    [](const ::testing::TestParamInfo<GemmShape>& info) {
      return "m" + std::to_string(info.param.m) + "_k" + std::to_string(info.param.k) + "_n" +
             std::to_string(info.param.n);
    });

TEST(IntraOp, SkewedGemmReachesOracleWith4MiB) {
  // The small 16x16 tensor trivially fits: the tile search achieves the
  // oracle, confirming the Best Intra-layer baseline is realizable.
  const auto r = score::search_best_mapping({524288, 16, 16, 4}, 4ull << 20);
  EXPECT_TRUE(r.oracle_achieved()) << r.best.to_string() << " words=" << r.best_words;
}

TEST(IntraOp, RegularGemmReachesOracleWith4MiB) {
  const auto r = score::search_best_mapping({512, 512, 512, 4}, 4ull << 20);
  EXPECT_TRUE(r.oracle_achieved());
}

TEST(IntraOp, TinyBufferCannotReachOracle) {
  // 1 KiB cannot hold a 512-wide operand slice: traffic exceeds the oracle.
  const auto r = score::search_best_mapping({4096, 512, 512, 4}, 1024);
  EXPECT_FALSE(r.oracle_achieved());
  EXPECT_GT(r.best_words, r.oracle * 1.5);
}

TEST(IntraOp, EvenOracleSkewedGemmIsMemoryBound) {
  // The roofline closes the argument: best-case skewed intensity sits far
  // left of the ridge point at Table V parameters.
  const GemmShape s{524288, 16, 16, 4};
  mem::Roofline roof{16384.0 * 1e9, 1e12};
  const double ai_bytes = score::oracle_intensity_ops_per_word(s) / 4.0;
  EXPECT_TRUE(roof.memory_bound(ai_bytes));
  const GemmShape reg{512, 512, 512, 4};
  EXPECT_FALSE(roof.memory_bound(score::oracle_intensity_ops_per_word(reg) / 4.0));
}

}  // namespace
