// Tests for the parallel SweepRunner: deterministic ordering and
// bit-identical agreement with serial execution.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "cello/cello.hpp"
#include "common/error.hpp"
#include "sim/policies/explicit_buffers.hpp"
#include "sparse/datasets.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigRegistry;
using sim::Simulator;
using sim::SweepRunner;
using sim::SweepWorkload;

std::vector<SweepWorkload> two_workloads() {
  std::vector<SweepWorkload> w;
  w.push_back({"cg", workloads::build_cg_dag({9604, 16, 85264, 3, 4})});
  w.push_back({"gnn", workloads::build_gnn_dag({1000, 5000, 64, 16})});
  return w;
}

TEST(Sweep, MatchesSerialRunAllBitIdentical) {
  const auto workloads_vec = two_workloads();
  const auto& config_names = ConfigRegistry::table4_names();
  const AcceleratorConfig arch;

  const auto cells = SweepRunner(/*threads=*/4).run(workloads_vec, config_names, arch);
  ASSERT_EQ(cells.size(), workloads_vec.size() * config_names.size());

  for (size_t wi = 0; wi < workloads_vec.size(); ++wi) {
    // Serial reference: the facade's run_all over the same workload.
    const auto serial = run_all(workloads_vec[wi].dag, arch);
    ASSERT_EQ(serial.size(), config_names.size());
    for (size_t ci = 0; ci < config_names.size(); ++ci) {
      const auto& cell = cells[wi * config_names.size() + ci];
      EXPECT_EQ(cell.workload, workloads_vec[wi].name);
      EXPECT_EQ(cell.config, config_names[ci]);
      EXPECT_EQ(cell.config, serial[ci].first);
      EXPECT_EQ(cell.metrics.seconds, serial[ci].second.seconds) << cell.config;
      EXPECT_EQ(cell.metrics.dram_bytes, serial[ci].second.dram_bytes) << cell.config;
      EXPECT_EQ(cell.metrics.onchip_energy_pj, serial[ci].second.onchip_energy_pj)
          << cell.config;
      EXPECT_EQ(cell.metrics.sram_line_accesses, serial[ci].second.sram_line_accesses)
          << cell.config;
    }
  }
}

TEST(Sweep, DeterministicAcrossThreadCounts) {
  const auto workloads_vec = two_workloads();
  const std::vector<std::string> config_names = {"Flexagon", "Cello", "SCORE+LRU",
                                                 "FLAT+CHORD"};
  const AcceleratorConfig arch;
  const auto serial = SweepRunner(/*threads=*/1).run(workloads_vec, config_names, arch);
  const auto parallel = SweepRunner(/*threads=*/5).run(workloads_vec, config_names, arch);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].workload, parallel[i].workload);
    EXPECT_EQ(serial[i].config, parallel[i].config);
    EXPECT_EQ(serial[i].metrics.seconds, parallel[i].metrics.seconds) << serial[i].config;
    EXPECT_EQ(serial[i].metrics.dram_bytes, parallel[i].metrics.dram_bytes)
        << serial[i].config;
  }
}

TEST(Sweep, SharedMatrixContextIsSafeAcrossThreads) {
  const auto spec = sparse::dataset_by_name("fv1");
  const auto matrix = sparse::instantiate(spec);
  std::vector<SweepWorkload> w;
  w.push_back({"cg", workloads::build_cg_dag({spec.rows, 16, matrix.nnz(), 2, 4}), &matrix});
  const AcceleratorConfig arch;
  const std::vector<std::string> config_names = {"Flex+LRU", "Flex+BRRIP", "Cello"};
  const auto cells = SweepRunner(/*threads=*/3).run(w, config_names, arch);
  for (size_t ci = 0; ci < config_names.size(); ++ci) {
    const auto reference =
        Simulator(arch, &matrix).run(w[0].dag, ConfigRegistry::global().at(config_names[ci]));
    EXPECT_EQ(cells[ci].metrics.dram_bytes, reference.dram_bytes) << config_names[ci];
    EXPECT_EQ(cells[ci].metrics.seconds, reference.seconds) << config_names[ci];
  }
}

TEST(Sweep, EmptyGridIsEmpty) {
  const AcceleratorConfig arch;
  EXPECT_TRUE(SweepRunner()
                  .run(std::vector<SweepWorkload>{}, std::vector<sim::Configuration>{}, arch)
                  .empty());
  EXPECT_TRUE(SweepRunner()
                  .run(std::vector<sim::Workload>{}, std::vector<sim::Configuration>{}, arch)
                  .empty());
}

// The schedule/address-map cache must be unobservable in the results: a
// spec-driven sweep (shared DAG + one schedule per (workload, policy) pair,
// fanned across threads) must be bit-identical to serial, cache-free
// Simulator::run calls that rebuild the schedule for every single cell.
TEST(Sweep, ScheduleCacheBitIdenticalToCacheFreeSerialRuns) {
  const std::vector<std::string> spec_texts = {
      "cg:m=9604,nnz=85264,n=16,iters=3",  // shape-only, analytic policies
      "spmv:dataset=fv1,iters=4,n=4",      // real matrix: exercises cache traces
      "sddmm:dataset=cora,heads=2",
  };
  // Mixed schedule policies on purpose: OpByOp, AdjacentPipeline and Score
  // rows each share one cached schedule per workload.
  const std::vector<std::string> config_names = {"Flexagon", "Flex+LRU", "FLAT",
                                                 "SET",      "Cello",    "SCORE+BRRIP"};
  const AcceleratorConfig arch;

  const auto cells = SweepRunner(/*threads=*/4).run(spec_texts, config_names, arch);
  ASSERT_EQ(cells.size(), spec_texts.size() * config_names.size());

  const auto& registry = sim::ConfigRegistry::global();
  for (size_t wi = 0; wi < spec_texts.size(); ++wi) {
    const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec_texts[wi]);
    const Simulator simulator(arch, wl.matrix.get());
    for (size_t ci = 0; ci < config_names.size(); ++ci) {
      const auto& cell = cells[wi * config_names.size() + ci];
      EXPECT_EQ(cell.workload, wl.name);
      EXPECT_EQ(cell.config, config_names[ci]);
      // Cache-free reference: rebuilds schedule + address map per cell.
      const auto reference = simulator.run(*wl.dag, registry.at(config_names[ci]));
      EXPECT_EQ(cell.metrics.seconds, reference.seconds) << cell.workload << "/" << cell.config;
      EXPECT_EQ(cell.metrics.dram_read_bytes, reference.dram_read_bytes)
          << cell.workload << "/" << cell.config;
      EXPECT_EQ(cell.metrics.dram_write_bytes, reference.dram_write_bytes)
          << cell.workload << "/" << cell.config;
      EXPECT_EQ(cell.metrics.sram_line_accesses, reference.sram_line_accesses)
          << cell.workload << "/" << cell.config;
      EXPECT_EQ(cell.metrics.onchip_energy_pj, reference.onchip_energy_pj)
          << cell.workload << "/" << cell.config;
      EXPECT_EQ(cell.metrics.traffic_by_tensor, reference.traffic_by_tensor)
          << cell.workload << "/" << cell.config;
    }
  }
}

// Resolving the same canonical spec twice must not rebuild: the sweep's rows
// genuinely share one immutable DAG.
TEST(Sweep, SpecResolutionSharesOneDag) {
  auto& registry = sim::WorkloadRegistry::global();
  const auto a = registry.resolve("cg:m=2048,n=8,iters=2");
  const auto b = registry.resolve("cg:m=2048,n=8,iters=2");
  EXPECT_EQ(a.dag.get(), b.dag.get());
  EXPECT_EQ(a.matrix.get(), b.matrix.get());

  // Same workload listed twice: both rows report the canonical name and
  // identical metrics.
  const AcceleratorConfig arch;
  const auto cells = SweepRunner(/*threads=*/2).run(
      std::vector<std::string>{"cg:m=2048,n=8,iters=2", "cg:m=2048,n=8,iters=2"},
      std::vector<std::string>{"Cello"}, arch);
  ASSERT_EQ(cells.size(), 2u);
  EXPECT_EQ(cells[0].workload, "cg:iters=2,m=2048,n=8");
  EXPECT_EQ(cells[0].metrics.seconds, cells[1].metrics.seconds);
  EXPECT_EQ(cells[0].metrics.dram_bytes, cells[1].metrics.dram_bytes);
}

// Worker-affine tiling hands each worker a run of consecutive same-config
// cells (so pooled policies reset instead of rebuilding), but the tiling must
// be invisible in the output: any thread count, including counts that don't
// divide the grid, produces bit-identical row-major results.
TEST(Sweep, WorkerAffineTilingBitIdenticalAcrossThreadCounts) {
  // 3 workloads x 7 configs = 21 cells: prime-ish shapes so chunk boundaries
  // land mid-run for every thread count below.
  const std::vector<std::string> specs = {"cg:m=4096,n=8,iters=2", "gnn:cora",
                                          "spmv:dataset=fv1,iters=2"};
  const std::vector<std::string> configs = {"Flexagon", "Flex+LRU",    "Flex+BRRIP", "FLAT",
                                            "SET",      "SCORE+BRRIP", "Cello"};
  const AcceleratorConfig arch;

  const auto reference = SweepRunner(/*threads=*/1).run(specs, configs, arch);
  ASSERT_EQ(reference.size(), specs.size() * configs.size());
  for (u32 threads : {2u, 3u, 5u, 8u}) {
    const auto cells = SweepRunner(threads).run(specs, configs, arch);
    ASSERT_EQ(cells.size(), reference.size()) << threads << " threads";
    for (size_t i = 0; i < cells.size(); ++i) {
      EXPECT_EQ(cells[i].workload, reference[i].workload) << threads << " threads cell " << i;
      EXPECT_EQ(cells[i].config, reference[i].config) << threads << " threads cell " << i;
      EXPECT_EQ(cells[i].metrics.seconds, reference[i].metrics.seconds)
          << threads << " threads cell " << i;
      EXPECT_EQ(cells[i].metrics.dram_bytes, reference[i].metrics.dram_bytes)
          << threads << " threads cell " << i;
      EXPECT_EQ(cells[i].metrics.onchip_energy_pj, reference[i].metrics.onchip_energy_pj)
          << threads << " threads cell " << i;
      EXPECT_EQ(cells[i].metrics.traffic_by_tensor, reference[i].metrics.traffic_by_tensor)
          << threads << " threads cell " << i;
    }
  }
}

TEST(Sweep, CellErrorsPropagateAfterJoin) {
  auto workloads_vec = two_workloads();
  sim::Configuration broken;  // no buffer factory: Simulator::run throws
  broken.name = "broken";
  const AcceleratorConfig arch;
  EXPECT_THROW(SweepRunner(/*threads=*/2).run(workloads_vec, {broken}, arch), Error);
}

TEST(Sweep, FirstFailureAbandonsRemainingCells) {
  // A single-threaded sweep whose very first cell throws must not burn the
  // rest of the grid: the failed flag stops the job loop before any of the
  // later (counting) configurations run.
  const auto workloads_vec = two_workloads();
  const AcceleratorConfig arch;

  auto counting_factory = [](std::atomic<int>& counter) {
    return [&counter](const sim::AcceleratorConfig& a) {
      ++counter;
      return sim::explicit_buffers()(a);
    };
  };

  std::atomic<int> runs_after_failure{0};
  std::vector<sim::Configuration> configs;
  sim::Configuration throwing = sim::make_configuration(
      "throws", sim::SchedulePolicy::OpByOp,
      [](const sim::AcceleratorConfig&) -> std::unique_ptr<sim::BufferPolicy> {
        throw Error("injected cell failure");
      },
      "throws");
  configs.push_back(throwing);
  for (int i = 0; i < 4; ++i)
    configs.push_back(sim::make_configuration("count" + std::to_string(i),
                                              sim::SchedulePolicy::OpByOp,
                                              counting_factory(runs_after_failure), "EB"));

  EXPECT_THROW(SweepRunner(/*threads=*/1).run(workloads_vec, configs, arch), Error);
  // Job 0 threw; jobs 1..9 must all have been skipped.
  EXPECT_EQ(runs_after_failure.load(), 0);
}

}  // namespace
