// Capture/replay split of the trace-driven cache path (sim/access_stream.hpp,
// cache/cache_replay.hpp): replaying a captured AccessStream must be
// bit-identical to direct service_op simulation — per metric field, per op —
// on every golden workload under all seven Table IV presets (plus Flex+KV,
// which is trace-driven but not replayable and must be untouched by the
// plumbing).  Also pins: capture determinism (fingerprint + field level),
// replay_many ≡ N independent replays, the CELLO_DISABLE_REPLAY escape hatch,
// and the scalar replay engine (CELLO_DISABLE_AVX512) against the SIMD one.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "sim/access_stream.hpp"
#include "sim/policies/cache_policy.hpp"
#include "sim/policies/schedule_policy.hpp"
#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/sweep.hpp"
#include "sparse/datasets.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using namespace cello::sim;

/// Scoped setenv: restores (unsets) on destruction so a failing EXPECT can't
/// leak the toggle into later tests.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) { setenv(name, value, 1); }
  ~ScopedEnv() { unsetenv(name_); }

 private:
  const char* name_;
};

void expect_metrics_equal(const RunMetrics& a, const RunMetrics& b, const std::string& what) {
  EXPECT_EQ(a.seconds, b.seconds) << what;
  EXPECT_EQ(a.total_macs, b.total_macs) << what;
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes) << what;
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes) << what;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << what;
  EXPECT_EQ(a.sram_line_accesses, b.sram_line_accesses) << what;
  EXPECT_EQ(a.onchip_energy_pj, b.onchip_energy_pj) << what;
  EXPECT_EQ(a.offchip_energy_pj, b.offchip_energy_pj) << what;
  EXPECT_EQ(a.traffic_by_tensor, b.traffic_by_tensor) << what;
  ASSERT_EQ(a.per_op.size(), b.per_op.size()) << what;
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    EXPECT_EQ(a.per_op[i].op, b.per_op[i].op) << what << " op " << i;
    EXPECT_EQ(a.per_op[i].macs, b.per_op[i].macs) << what << " op " << i;
    EXPECT_EQ(a.per_op[i].dram_bytes, b.per_op[i].dram_bytes) << what << " op " << i;
  }
}

/// The metrics-golden workload set: synthetic CG (periodic — exercises the
/// period detector and fast-forward), GNN and ResNet (linear streams), and CG
/// over a real sparse matrix (CSR gather capture).
std::vector<SweepWorkload> golden_workloads(const sparse::CsrMatrix& fv1) {
  std::vector<SweepWorkload> wls;
  wls.push_back({"cg", workloads::build_cg_dag({81920, 16, 327680, 5, 4}), nullptr});
  wls.push_back({"gnn", workloads::build_gnn_dag({2708, 9464, 1433, 7}), nullptr});
  wls.push_back({"resnet", workloads::build_resnet_block_dag({}), nullptr});
  wls.push_back(
      {"cg_fv1",
       workloads::build_cg_dag({sparse::dataset_by_name("fv1").rows, 16, fv1.nnz(), 3, 4}),
       &fv1});
  return wls;
}

// Sweep-level bit-identity: the full golden grid — every golden workload x
// all seven Table IV presets + Flex+KV — run with stream replay vs run with
// the escape hatch (which suppresses capture entirely, so every cell takes
// the direct service_op path).
TEST(AccessStream, SweepReplayBitIdenticalOnGoldens) {
  const sparse::CsrMatrix fv1 = sparse::instantiate(sparse::dataset_by_name("fv1"));
  const auto wls = golden_workloads(fv1);
  std::vector<std::string> configs = ConfigRegistry::table4_names();
  configs.push_back("Flex+KV");
  const AcceleratorConfig arch;
  const SweepRunner runner(2);

  const auto fast = runner.run(wls, configs, arch);
  std::vector<SweepResult> slow;
  {
    ScopedEnv off("CELLO_DISABLE_REPLAY", "1");
    slow = runner.run(wls, configs, arch);
  }

  ASSERT_EQ(fast.size(), slow.size());
  ASSERT_EQ(fast.size(), wls.size() * configs.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    ASSERT_TRUE(fast[i].ok()) << fast[i].error;
    ASSERT_TRUE(slow[i].ok()) << slow[i].error;
    expect_metrics_equal(fast[i].metrics, slow[i].metrics,
                         fast[i].workload + "/" + fast[i].config);
  }
}

// Simulator-level identity on the real-matrix golden: capture a stream, run
// with it attached vs without, for both cache presets and both replay
// engines (AVX-512 and scalar), plus the per-run escape hatch.
TEST(AccessStream, DirectRunReplayMatchesServiceOp) {
  const sparse::CsrMatrix fv1 = sparse::instantiate(sparse::dataset_by_name("fv1"));
  const ir::TensorDag dag =
      workloads::build_cg_dag({sparse::dataset_by_name("fv1").rows, 16, fv1.nnz(), 5, 4});
  const AcceleratorConfig arch;
  const Simulator simulator(arch, &fv1);

  for (const char* cname : {"Flex+LRU", "Flex+BRRIP"}) {
    const auto& config = ConfigRegistry::global().at(cname);
    const score::Schedule sched = simulator.make_schedule(dag, config);
    const AddressMap map = AddressMap::build(dag);
    const Router router(dag, sched, config.schedule, config.allow_delayed_hold, arch);
    const AccessStream stream = AccessStream::capture(dag, sched, map, &fv1, arch, router);
    EXPECT_TRUE(stream.compatible(arch));
    EXPECT_EQ(stream.schedule_steps, sched.steps.size());

    RunArtifacts direct_art;
    direct_art.schedule = &sched;
    direct_art.address_map = &map;
    const RunMetrics direct = simulator.run(dag, config, direct_art);

    RunArtifacts replay_art = direct_art;
    replay_art.access_stream = &stream;
    const RunMetrics replayed = simulator.run(dag, config, replay_art);
    expect_metrics_equal(direct, replayed, std::string(cname) + " simd replay");

    {
      ScopedEnv scalar("CELLO_DISABLE_AVX512", "1");
      const RunMetrics scalar_replayed = simulator.run(dag, config, replay_art);
      expect_metrics_equal(direct, scalar_replayed, std::string(cname) + " scalar replay");
    }
    {
      ScopedEnv off("CELLO_DISABLE_REPLAY", "1");
      const RunMetrics escaped = simulator.run(dag, config, replay_art);
      expect_metrics_equal(direct, escaped, std::string(cname) + " escape hatch");
    }
  }
}

// Two captures of the same slot must be identical — fingerprint and every
// header/array field — and the synthetic-CG stream must actually be periodic
// (otherwise the fast-forward path is silently untested).
TEST(AccessStream, CaptureIsDeterministic) {
  const ir::TensorDag dag = workloads::build_cg_dag({81920, 16, 327680, 5, 4});
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto& config = ConfigRegistry::global().at("Flex+LRU");
  const score::Schedule sched = simulator.make_schedule(dag, config);
  const AddressMap map = AddressMap::build(dag);
  const Router router(dag, sched, config.schedule, config.allow_delayed_hold, arch);

  const AccessStream a = AccessStream::capture(dag, sched, map, nullptr, arch, router);
  const AccessStream b = AccessStream::capture(dag, sched, map, nullptr, arch, router);

  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.line_bytes, b.line_bytes);
  EXPECT_EQ(a.rf_bytes, b.rf_bytes);
  EXPECT_EQ(a.schedule_steps, b.schedule_steps);
  EXPECT_EQ(a.prefix_steps, b.prefix_steps);
  EXPECT_EQ(a.period_steps, b.period_steps);
  EXPECT_EQ(a.period_count, b.period_count);
  EXPECT_EQ(a.suffix_steps, b.suffix_steps);
  EXPECT_EQ(a.addr, b.addr);
  EXPECT_EQ(a.len, b.len);
  EXPECT_EQ(a.write, b.write);
  EXPECT_EQ(a.op_end, b.op_end);
  EXPECT_EQ(a.min_addr, b.min_addr);
  EXPECT_EQ(a.max_addr, b.max_addr);
  EXPECT_EQ(a.total_lines, b.total_lines);

  EXPECT_GT(a.period_steps, 0u) << "iterative CG should capture as periodic";
  EXPECT_GE(a.period_count, 2u);
  EXPECT_EQ(a.materialized_steps() + a.period_steps * (a.period_count - 1),
            a.schedule_steps);
}

// replay_many must equal N independent replay() calls — same per-step
// services, same final cache state — across mixed policies and geometries.
TEST(AccessStream, ReplayManyMatchesIndependentReplays) {
  const ir::TensorDag dag = workloads::build_cg_dag({81920, 16, 327680, 5, 4});
  const AcceleratorConfig base;
  const Simulator simulator(base);
  const auto& config = ConfigRegistry::global().at("Flex+LRU");
  const score::Schedule sched = simulator.make_schedule(dag, config);
  const AddressMap map = AddressMap::build(dag);
  const Router router(dag, sched, config.schedule, config.allow_delayed_hold, base);
  const AccessStream stream = AccessStream::capture(dag, sched, map, nullptr, base, router);

  // LRU / BRRIP across two SRAM budgets: four distinct cache geometries.
  struct Geometry {
    cache::Policy policy;
    Bytes sram;
  };
  const std::vector<Geometry> geoms = {{cache::Policy::Lru, 1ull << 20},
                                       {cache::Policy::Lru, 4ull << 20},
                                       {cache::Policy::Brrip, 1ull << 20},
                                       {cache::Policy::Brrip, 4ull << 20}};

  std::vector<std::unique_ptr<CachePolicy>> batch, solo;
  std::vector<CachePolicy*> batch_ptrs;
  for (const auto& g : geoms) {
    AcceleratorConfig arch = base;
    arch.sram_bytes = g.sram;
    batch.push_back(std::make_unique<CachePolicy>(arch, g.policy));
    solo.push_back(std::make_unique<CachePolicy>(arch, g.policy));
    batch_ptrs.push_back(batch.back().get());
  }

  std::vector<std::vector<BufferService>> batch_services;
  ASSERT_TRUE(CachePolicy::replay_many(stream, batch_ptrs, batch_services));
  ASSERT_EQ(batch_services.size(), geoms.size());

  for (size_t p = 0; p < geoms.size(); ++p) {
    std::vector<BufferService> services;
    ASSERT_TRUE(solo[p]->replay(stream, services));
    ASSERT_EQ(batch_services[p].size(), services.size()) << "policy " << p;
    for (size_t s = 0; s < services.size(); ++s) {
      EXPECT_EQ(batch_services[p][s].dram_read, services[s].dram_read)
          << "policy " << p << " step " << s;
      EXPECT_EQ(batch_services[p][s].dram_write, services[s].dram_write)
          << "policy " << p << " step " << s;
    }
    EXPECT_EQ(batch[p]->cache().valid_lines(), solo[p]->cache().valid_lines())
        << "policy " << p;
    EXPECT_EQ(batch[p]->occupancy_bytes(), solo[p]->occupancy_bytes()) << "policy " << p;
  }
}

// A geometry-incompatible stream must be refused (caller falls back to
// service_op), and a dirty policy must be refused until reset.
TEST(AccessStream, ReplayRefusesIncompatibleOrDirtyState) {
  const ir::TensorDag dag = workloads::build_cg_dag({81920, 16, 327680, 3, 4});
  const AcceleratorConfig arch;
  const Simulator simulator(arch);
  const auto& config = ConfigRegistry::global().at("Flex+LRU");
  const score::Schedule sched = simulator.make_schedule(dag, config);
  const AddressMap map = AddressMap::build(dag);
  const Router router(dag, sched, config.schedule, config.allow_delayed_hold, arch);
  const AccessStream stream = AccessStream::capture(dag, sched, map, nullptr, arch, router);

  AcceleratorConfig other = arch;
  other.line_bytes = arch.line_bytes * 2;
  CachePolicy mismatched(other, cache::Policy::Lru);
  std::vector<BufferService> services;
  EXPECT_FALSE(mismatched.replay(stream, services));
  EXPECT_TRUE(services.empty());

  CachePolicy dirty(arch, cache::Policy::Lru);
  ASSERT_TRUE(dirty.replay(stream, services));
  std::vector<BufferService> again;
  EXPECT_FALSE(dirty.replay(stream, again)) << "second replay without reset must refuse";
  dirty.reset();
  EXPECT_TRUE(dirty.replay(stream, again)) << "reset policy replays again";
  ASSERT_EQ(services.size(), again.size());
  for (size_t s = 0; s < services.size(); ++s) {
    EXPECT_EQ(services[s].dram_read, again[s].dram_read) << "step " << s;
    EXPECT_EQ(services[s].dram_write, again[s].dram_write) << "step " << s;
  }
}

}  // namespace
