// Unit tests for the common substrate: RNG, statistics, formatting, checks.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hpp"
#include "common/format.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace {

using namespace cello;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const u64 v = rng.bounded(17);
    EXPECT_LT(v, 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Rng rng(3);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    const double u = rng.uniform(-2.5, 4.0);
    EXPECT_GE(u, -2.5);
    EXPECT_LT(u, 4.0);
  }
}

TEST(Rng, NormalHasReasonableMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sumsq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(Stats, MeanAndGeomean) {
  const std::vector<double> xs = {1.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 7.0 / 3.0);
  EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Stats, GeomeanRejectsNonPositive) {
  const std::vector<double> xs = {1.0, 0.0};
  EXPECT_THROW(geomean(xs), Error);
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, SummaryFields) {
  const std::vector<double> xs = {1.0, 4.0};
  const Summary s = summarize(xs);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.geomean, 2.0, 1e-12);
}

TEST(Stats, EmptyThrows) {
  const std::vector<double> xs;
  EXPECT_THROW(mean(xs), Error);
  EXPECT_THROW(min_of(xs), Error);
}

TEST(Format, Bytes) {
  EXPECT_EQ(format_bytes(512), "512.00 B");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
  EXPECT_EQ(format_bytes(4.0 * 1024 * 1024), "4.00 MiB");
}

TEST(Format, Rate) {
  EXPECT_EQ(format_rate(2.5e9, "FLOP/s"), "2.50 GFLOP/s");
  EXPECT_EQ(format_rate(999.0, "op/s"), "999.00 op/s");
}

TEST(Format, Sci) {
  EXPECT_EQ(format_sci(80.0), "1.0e+80");
  EXPECT_EQ(format_sci(15.3, 1), "2.0e+15");
}

TEST(Format, TableAlignsAndValidates) {
  TextTable t({"a", "long_header"});
  t.add_row({"x", "1"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a "), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Check, ThrowsWithContext) {
  try {
    CELLO_CHECK_MSG(1 == 2, "custom " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("custom 42"), std::string::npos);
  }
}

TEST(Types, CeilDivAndLiterals) {
  EXPECT_EQ(ceil_div<i64>(10, 3), 4);
  EXPECT_EQ(ceil_div<i64>(9, 3), 3);
  EXPECT_EQ(4_KiB, 4096u);
  EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
}

}  // namespace
