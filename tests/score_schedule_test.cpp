// Tests for SCORE scheduling: loop orders, pipeline realization, swizzle
// minimization, residency binding and the reuse metadata handed to CHORD.
#include <gtest/gtest.h>

#include <cmath>

#include "score/schedule.hpp"
#include "score/search_space.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using score::DepKind;
using score::Residency;

workloads::CgShape cg_shape() {
  workloads::CgShape s;
  s.m = 100000;
  s.n = 16;
  s.nnz = 900000;
  s.iterations = 3;
  return s;
}

const score::Schedule& cg_schedule() {
  static const auto dag = workloads::build_cg_dag(cg_shape());
  static const auto sched = score::build_schedule(dag);
  return sched;
}

const ir::TensorDag& cg_dag() {
  static const auto dag = workloads::build_cg_dag(cg_shape());
  return dag;
}

i64 find_step(const ir::TensorDag& dag, const score::Schedule& s, const std::string& op_name) {
  for (size_t i = 0; i < s.steps.size(); ++i)
    if (dag.op(s.steps[i].op).name == op_name) return static_cast<i64>(i);
  return -1;
}

TEST(Schedule, StepsCoverAllOpsInProgramOrder) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  ASSERT_EQ(s.steps.size(), dag.ops().size());
  for (size_t i = 0; i < s.steps.size(); ++i) EXPECT_EQ(s.steps[i].op, static_cast<i32>(i));
}

TEST(Schedule, DominantRankOutermost) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  // op 2a (contracted-dominant, not a pipe source) keeps m outermost so the
  // large tensors stream while Delta accumulates in the RF.
  const i64 step = find_step(dag, s, "2a@1");
  ASSERT_GE(step, 0);
  EXPECT_EQ(s.steps[step].loop_order.front(), "m");
}

TEST(Schedule, PipeSourceKeepsUncontractedOutermost) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  const i64 step = find_step(dag, s, "7@1");  // sources the P pipeline
  ASSERT_GE(step, 0);
  EXPECT_EQ(s.steps[step].loop_order.front(), "m");
}

TEST(Schedule, CgRealizedPipelineEdges) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  int realized = 0;
  for (const auto& e : dag.edges()) {
    if (!s.edge_realized[e.id]) continue;
    ++realized;
    const auto k = s.deps.edge_kind[e.id];
    EXPECT_TRUE(k == DepKind::Pipelineable || k == DepKind::DelayedHold);
  }
  // Per full iteration: 1->2a (S), 4->5 (R), 7->1' (P), 7->2a' (P hold).
  EXPECT_GE(realized, 8);
}

TEST(Schedule, CgResidencyBinding) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  for (const auto& t : dag.tensors()) {
    const std::string base = workloads::base_name(t.name);
    if (base == "Delta" || base == "Lambda" || base == "Gamma" || base == "Phi") {
      if (!dag.consumers(t.id).empty()) {
        EXPECT_EQ(s.residency[t.id], Residency::RegisterFile) << t.name;
      }
    }
    if ((base == "S" || base == "R") && !dag.consumers(t.id).empty()) {
      EXPECT_EQ(s.residency[t.id], Residency::Chord) << t.name;
    }
    if (base == "X" && !dag.consumers(t.id).empty()) {
      EXPECT_EQ(s.residency[t.id], Residency::Chord) << t.name;
    }
  }
}

TEST(Schedule, CgHasNoSwizzles) {
  // SCORE picks the m-major layout for every skewed tensor: no transforms.
  EXPECT_EQ(cg_schedule().swizzle_count, 0);
}

TEST(Schedule, GnnIntermediatePipelined) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  const auto s = score::build_schedule(dag);
  ASSERT_EQ(dag.edges().size(), 1u);
  EXPECT_TRUE(s.edge_realized[0]);
  const auto h = dag.edge(0).tensor;
  EXPECT_EQ(s.residency[h], Residency::PipelineBuffer);
}

TEST(Schedule, ResNetAllEdgesRealized) {
  const auto dag = workloads::build_resnet_block_dag({});
  const auto s = score::build_schedule(dag);
  for (const auto& e : dag.edges()) EXPECT_TRUE(s.edge_realized[e.id]);
  // Feature maps live in the pipeline buffer.
  for (const auto& t : dag.tensors()) {
    if (t.name == "T0" || t.name == "T1") {
      EXPECT_EQ(s.residency[t.id], Residency::PipelineBuffer) << t.name;
    }
  }
}

TEST(Schedule, PipeliningOffDemotesEverything) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  score::ScheduleOptions opts;
  opts.enable_pipelining = false;
  const auto s = score::build_schedule(dag, opts);
  EXPECT_FALSE(s.edge_realized[0]);
  EXPECT_EQ(s.deps.edge_kind[0], DepKind::Sequential);
}

TEST(Schedule, PipelineGroupsSplitAtUnrealizedEdges) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  // 1@1 and 2a@1 share a group (realized S edge); 2a@1 and 2b@1 do not.
  const i64 s1 = find_step(dag, s, "1@1");
  const i64 s2a = find_step(dag, s, "2a@1");
  const i64 s2b = find_step(dag, s, "2b@1");
  EXPECT_EQ(s.steps[s1].pipeline_group, s.steps[s2a].pipeline_group);
  EXPECT_NE(s.steps[s2a].pipeline_group, s.steps[s2b].pipeline_group);
}

TEST(Schedule, ReuseMetadataForChord) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  // X@1 produced at step of op 3@1, consumed only by 3@2 (8 steps later).
  ir::TensorId x1 = ir::kInvalidTensor;
  for (const auto& t : dag.tensors())
    if (t.name == "X@1") x1 = t.id;
  ASSERT_NE(x1, ir::kInvalidTensor);
  const i64 produce_step = find_step(dag, s, "3@1");
  EXPECT_EQ(s.remaining_uses_after(x1, produce_step), 1);
  EXPECT_EQ(s.next_use_distance(x1, produce_step), 8);
  // After its single consumption there is no further use.
  const i64 consume_step = find_step(dag, s, "3@2");
  EXPECT_EQ(s.remaining_uses_after(x1, consume_step), 0);
  EXPECT_EQ(s.next_use_distance(x1, consume_step), -1);
}

TEST(Schedule, PositionOf) {
  const auto& dag = cg_dag();
  const auto& s = cg_schedule();
  EXPECT_EQ(s.position_of(s.steps[3].op), 3);
  EXPECT_EQ(s.position_of(static_cast<ir::OpId>(9999)), -1);
  (void)dag;
}

// ---- search-space model (Sec. VI-B) -----------------------------------------

TEST(SearchSpace, BinomialAndFactorial) {
  EXPECT_NEAR(score::log10_binomial(5, 2), std::log10(10.0), 1e-9);
  EXPECT_NEAR(score::log10_factorial(5), std::log10(120.0), 1e-9);
}

TEST(SearchSpace, SliceAllocationScalesAsSizeToTensors) {
  score::SearchSpaceModel m{1 << 20, 5};
  // C(size+4, 4) ~ size^4 / 4!: just over 22 decimal digits.
  const double l = m.log10_slice_allocation();
  EXPECT_GT(l, 20.0);
  EXPECT_LT(l, 25.0);
}

TEST(SearchSpace, OpByOpMatchesPaperOrder) {
  // ~10^15 for the 7-operator CG DAG on a 2^20-word buffer.
  const double l = score::SearchSpaceModel::log10_op_by_op(1 << 20, 7);
  EXPECT_GT(l, 14.0);
  EXPECT_LT(l, 16.5);
}

TEST(SearchSpace, ChordIsTiny) {
  EXPECT_LE(score::SearchSpaceModel::chord_choices(80, 162), 300.0);
}

TEST(SearchSpace, OrderingMatchesPaperStory) {
  score::SearchSpaceModel m{1 << 20, 5};
  const std::vector<i64> tensors(5, 1 << 20), slices(5, 1 << 18);
  const double op_by_op = score::SearchSpaceModel::log10_op_by_op(1 << 20, 7);
  const double dag_static = m.log10_slice_allocation() + m.log10_block_arrangements() +
                            m.log10_contiguous_choices(tensors, slices);
  const double time_varying = m.log10_time_varying(dag_static, 2);
  const double chord = std::log10(score::SearchSpaceModel::chord_choices(80, 162));
  EXPECT_LT(chord, 3.0);
  EXPECT_LT(op_by_op, dag_static);
  EXPECT_GT(time_varying, 80.0);  // the paper's headline 10^80 scale
}

TEST(SearchSpace, LineArrangementsAreAstronomical) {
  score::SearchSpaceModel m{1 << 20, 5};
  EXPECT_GT(m.log10_line_arrangements(), 1e6);  // size! is beyond astronomical
}

TEST(SearchSpace, ElementChoicesExceedContiguous) {
  score::SearchSpaceModel m{1 << 20, 2};
  const std::vector<i64> tensors = {1 << 12, 1 << 12};
  const std::vector<i64> slices = {1 << 10, 1 << 10};
  EXPECT_GT(m.log10_element_choices(tensors, slices),
            m.log10_contiguous_choices(tensors, slices));
}

}  // namespace
