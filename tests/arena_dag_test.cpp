// Arena-backed TensorDag lifetime + ArenaVector semantics.
//
// The payload spans of a DAG's nodes live in the DAG's own bump arena; these
// tests pin the ownership rules — copies re-intern into their own arena,
// moves keep spans valid, heap-built nodes intern on add — and walk every
// span after the originals die.  Run under the asan preset these double as
// dangling-span detectors (an aliasing bug reads freed arena chunks).
#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "ir/arena.hpp"
#include "ir/dag.hpp"
#include "workloads/cg.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

workloads::CgShape small_cg() { return {4096, 8, 32768, 3, 4}; }

/// Touch every arena-resident payload byte of the DAG.
void walk_all_spans(const ir::TensorDag& dag) {
  size_t rank_chars = 0;
  i64 dim_sum = 0;
  for (const auto& t : dag.tensors()) {
    ASSERT_EQ(t.ranks.size(), t.dims.size()) << t.name;
    for (const auto& r : t.ranks) rank_chars += r.size();
    for (i64 d : t.dims) dim_sum += d;
  }
  i64 op_rank_sum = 0;
  for (const auto& op : dag.ops()) {
    for (const auto& r : op.ranks) op_rank_sum += r.effective() + static_cast<i64>(r.name.size());
    for (ir::TensorId in : op.inputs) ASSERT_GE(in, 0);
    ASSERT_GE(op.macs(), 0) << op.name;
  }
  EXPECT_GT(rank_chars, 0u);
  EXPECT_GT(dim_sum, 0);
  EXPECT_GT(op_rank_sum, 0);
}

TEST(ArenaDag, PayloadsLiveInTheDagArena) {
  const ir::TensorDag dag = workloads::build_cg_dag(small_cg());
  // Rank names, dims and operand lists all landed in the arena.
  EXPECT_GT(dag.arena().bytes_used(), 0u);
  EXPECT_GE(dag.arena().bytes_reserved(), dag.arena().bytes_used());
  walk_all_spans(dag);
}

TEST(ArenaDag, MoveKeepsSpansValid) {
  ir::TensorDag dag = workloads::build_cg_dag(small_cg());
  const std::string dot_before = dag.to_dot();
  ir::TensorDag moved = std::move(dag);
  walk_all_spans(moved);
  EXPECT_EQ(moved.to_dot(), dot_before);
  moved.validate();
}

TEST(ArenaDag, CopyOutlivesTheOriginal) {
  ir::TensorDag copy;
  std::string dot_before;
  {
    const ir::TensorDag original = workloads::build_resnet_block_dag({});
    dot_before = original.to_dot();
    copy = original;
    // The copy re-interned into its own arena; no payload is shared.
    EXPECT_GT(copy.arena().bytes_used(), 0u);
  }  // original (and its arena) destroyed here
  walk_all_spans(copy);
  EXPECT_EQ(copy.to_dot(), dot_before);
  copy.validate();
}

TEST(ArenaDag, HeapBuiltNodesInternOnAdd) {
  // The legacy construction style: free-standing nodes, no arena binding.
  ir::TensorDag dag;
  ir::TensorDesc t;
  t.name = "T";
  t.ranks = {"m", "n"};
  t.dims = {64, 16};
  const ir::TensorId tid = dag.add_tensor(t);
  ir::TensorDesc u;
  u.name = "U";
  u.ranks = {"m", "n"};
  u.dims = {64, 16};
  const ir::TensorId uid = dag.add_tensor(u);

  ir::EinsumOp op;
  op.name = "copy";
  op.inputs = {tid};
  op.output = uid;
  op.ranks = {ir::OpRank{"m", 64, false, -1}, ir::OpRank{"n", 16, false, -1}};
  dag.add_op(op);

  // `t`/`op` still own their (heap) payloads; the stored nodes are interned.
  EXPECT_EQ(t.ranks.size(), 2u);
  EXPECT_EQ(op.inputs.size(), 1u);
  EXPECT_TRUE(dag.tensor(tid).ranks.interned_in(dag.arena()));
  EXPECT_TRUE(dag.tensor(tid).dims.interned_in(dag.arena()));
  EXPECT_TRUE(dag.op(0).ranks.interned_in(dag.arena()));
  EXPECT_TRUE(dag.op(0).inputs.interned_in(dag.arena()));
  EXPECT_EQ(dag.tensor(tid).ranks[0], "m");
  EXPECT_EQ(dag.tensor(uid).dims[1], 16);
  dag.validate();
}

TEST(ArenaDag, NewTensorPathMatchesLegacyPath) {
  ir::TensorDag via_new;
  {
    ir::TensorDesc t = via_new.new_tensor();
    t.name = "T";
    t.ranks = {"m"};
    t.dims = {8};
    via_new.add_tensor(t);
    ir::EinsumOp op = via_new.new_op();
    op.name = "gen";
    op.output = 0;
    op.ranks = {ir::OpRank{"m", 8, false, -1}};
    via_new.add_op(op);
  }
  ir::TensorDag legacy;
  {
    ir::TensorDesc t;
    t.name = "T";
    t.ranks = {"m"};
    t.dims = {8};
    legacy.add_tensor(t);
    ir::EinsumOp op;
    op.name = "gen";
    op.output = 0;
    op.ranks = {ir::OpRank{"m", 8, false, -1}};
    legacy.add_op(op);
  }
  EXPECT_EQ(via_new.to_dot(), legacy.to_dot());
  EXPECT_TRUE(via_new.tensor(0).ranks.interned_in(via_new.arena()));
}

TEST(ArenaVector, GrowthAndAssignmentInBothModes) {
  // Heap mode.
  ir::ArenaVector<i32> heap;
  for (i32 i = 0; i < 100; ++i) heap.push_back(i);
  ASSERT_EQ(heap.size(), 100u);
  for (i32 i = 0; i < 100; ++i) EXPECT_EQ(heap[static_cast<size_t>(i)], i);
  heap = {7, 8, 9};
  ASSERT_EQ(heap.size(), 3u);
  EXPECT_EQ(heap.front(), 7);
  EXPECT_EQ(heap.back(), 9);
  std::vector<i32> from_vec = {1, 2, 3, 4};
  heap = std::move(from_vec);
  ASSERT_EQ(heap.size(), 4u);

  // Arena mode: growth re-bumps, contents survive, destruction frees nothing.
  ir::Arena arena;
  ir::ArenaVector<std::string> bound(&arena);
  for (int i = 0; i < 50; ++i) bound.push_back("rank" + std::to_string(i));
  ASSERT_EQ(bound.size(), 50u);
  EXPECT_EQ(bound[49], "rank49");
  EXPECT_TRUE(bound.interned_in(arena));
  EXPECT_GT(arena.bytes_used(), 0u);

  // Copying an arena-bound vector detaches it from the arena.  (`other` is
  // declared first: an ArenaVector must never outlive the arena it is
  // interned in — the TensorDag declares its arena first for this reason.)
  ir::Arena other;
  ir::ArenaVector<std::string> detached(bound);
  EXPECT_FALSE(detached.interned_in(arena));
  EXPECT_EQ(detached[10], bound[10]);

  // intern() is idempotent and re-homes heap payloads.
  detached.intern(other);
  EXPECT_TRUE(detached.interned_in(other));
  const std::string* data_before = &detached[0];
  detached.intern(other);
  EXPECT_EQ(&detached[0], data_before);  // no-op: already in this arena
}

TEST(ArenaDag, MoveAssignOverNonEmptyDagReleasesOldArenaSafely) {
  ir::TensorDag dag = workloads::build_cg_dag(small_cg());
  walk_all_spans(dag);
  // Assigning over a non-empty DAG must destroy the old nodes before the old
  // arena (asan catches the reversed order as a use-after-free).
  dag = workloads::build_resnet_block_dag({});
  walk_all_spans(dag);
  dag.validate();

  // Copy-assign over non-empty goes through the same path.
  const ir::TensorDag source = workloads::build_cg_dag({1024, 4, 8192, 2, 4});
  dag = source;
  walk_all_spans(dag);
  EXPECT_EQ(dag.to_dot(), source.to_dot());
}

TEST(ArenaVector, PushBackSelfReferenceSurvivesGrowth) {
  ir::ArenaVector<std::string> v;
  v.push_back("a-sufficiently-long-string-to-defeat-SSO-entirely-0");
  // Keep pushing v[0]; growth relocations must not invalidate the argument.
  for (int i = 0; i < 40; ++i) v.push_back(v[0]);
  for (size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], v[0]);
}

TEST(ArenaDag, ManyBuildDestroyCyclesAreStable) {
  for (int i = 0; i < 20; ++i) {
    const ir::TensorDag dag = workloads::build_cg_dag({1024, 4, 8192, 2, 4});
    EXPECT_EQ(dag.ops().size(), 16u);  // 8 ops per CG iteration
    walk_all_spans(dag);
  }
}

}  // namespace
