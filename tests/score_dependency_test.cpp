// Tests for the Algorithm 2 dependency classifier: adjacent rules, delayed
// hold vs. writeback on transitive edges, multicast detection, and the
// expected classification of the paper's workloads (Fig. 7).
#include <gtest/gtest.h>

#include "score/dependency.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;
using ir::EinsumOp;
using ir::OpKind;
using ir::OpRank;
using ir::TensorDag;
using ir::TensorDesc;
using score::DepKind;

TensorDesc skewed(const std::string& name, i64 m, i64 n) {
  TensorDesc t;
  t.name = name;
  t.ranks = {"m", "n"};
  t.dims = {m, n};
  return t;
}

/// Chain builder: ops with chosen dominance connected linearly.
struct ChainBuilder {
  TensorDag dag;
  ir::TensorId last_tensor = ir::kInvalidTensor;
  ir::OpId last_op = ir::kInvalidOp;
  i64 m = 100000, n = 16;

  ir::OpId add(const std::string& name, ir::Dominance dom, OpKind kind = OpKind::TensorMac) {
    const ir::TensorId out = dag.add_tensor(skewed("t_" + name, m, n));
    EinsumOp op;
    op.name = name;
    op.kind = kind;
    op.output = out;
    if (last_tensor != ir::kInvalidTensor) op.inputs = {last_tensor};
    switch (dom) {
      case ir::Dominance::Uncontracted:
        op.ranks = {OpRank{"m", m, false, -1}, OpRank{"j", n, true, -1},
                    OpRank{"n", n, false, -1}};
        break;
      case ir::Dominance::Contracted:
        op.ranks = {OpRank{"m", m, true, -1}, OpRank{"n'", n, false, -1},
                    OpRank{"n", n, false, -1}};
        break;
      case ir::Dominance::Balanced:
        op.ranks = {OpRank{"m", 784, false, -1}, OpRank{"n", 512, true, -1},
                    OpRank{"o", 128, false, -1}};
        break;
    }
    const ir::OpId o = dag.add_op(op);
    if (last_op != ir::kInvalidOp) dag.add_edge(last_op, o, last_tensor);
    last_tensor = out;
    last_op = o;
    return o;
  }
};

TEST(Classify, UncontractedToSharedIsPipelineable) {
  ChainBuilder b;
  b.add("u1", ir::Dominance::Uncontracted);
  b.add("u2", ir::Dominance::Uncontracted);
  const auto c = score::classify(b.dag);
  EXPECT_EQ(c.edge_kind[0], DepKind::Pipelineable);
}

TEST(Classify, ContractedSourceIsSequential) {
  ChainBuilder b;
  b.add("c1", ir::Dominance::Contracted);
  b.add("u1", ir::Dominance::Uncontracted);
  const auto c = score::classify(b.dag);
  EXPECT_EQ(c.edge_kind[0], DepKind::Sequential);
}

TEST(Classify, InverseSourceIsSequential) {
  ChainBuilder b;
  b.add("inv", ir::Dominance::Uncontracted, OpKind::Inverse);
  b.add("u1", ir::Dominance::Uncontracted);
  const auto c = score::classify(b.dag);
  EXPECT_EQ(c.edge_kind[0], DepKind::Sequential);
}

TEST(Classify, UnsharedDominanceIsSequential) {
  // Destination's dominant rank does not index the edge tensor.
  TensorDag dag;
  const auto t0 = dag.add_tensor(skewed("t0", 100000, 16));
  const auto t1 = dag.add_tensor(skewed("t1", 100000, 16));
  EinsumOp p;
  p.name = "p";
  p.output = t0;
  p.ranks = {OpRank{"m", 100000, false, -1}, OpRank{"n", 16, false, -1}};
  const auto po = dag.add_op(p);
  EinsumOp q;  // dominant rank "z" is not a rank of t0
  q.name = "q";
  q.inputs = {t0};
  q.output = t1;
  q.ranks = {OpRank{"z", 1000000, false, -1}, OpRank{"m", 100000, true, -1},
             OpRank{"n", 16, false, -1}};
  const auto qo = dag.add_op(q);
  dag.add_edge(po, qo, t0);
  const auto c = score::classify(dag);
  EXPECT_EQ(c.edge_kind[0], DepKind::Sequential);
  EXPECT_TRUE(score::dominance_unshared(dag.op(qo), dag.tensor(t0)));
}

TEST(Classify, TransitiveOverPipelineChainIsDelayedHold) {
  // a -> b -> c all pipelineable, plus transitive a -> c.
  ChainBuilder b;
  const auto a = b.add("a", ir::Dominance::Uncontracted);
  const auto ta = b.last_tensor;
  b.add("b", ir::Dominance::Uncontracted);
  const auto c_op = b.add("c", ir::Dominance::Uncontracted);
  // make c also consume ta (transitive edge).
  auto& ops = const_cast<std::vector<EinsumOp>&>(b.dag.ops());
  ops[c_op].inputs.push_back(ta);
  const auto e = b.dag.add_edge(a, c_op, ta);
  const auto cls = score::classify(b.dag);
  EXPECT_EQ(cls.edge_kind[e], DepKind::DelayedHold);
}

TEST(Classify, TransitiveOverContractedHopIsDelayedWriteback) {
  // a -> C -> c with contracted middle node: a -> c must be written back.
  ChainBuilder b;
  const auto a = b.add("a", ir::Dominance::Uncontracted);
  const auto ta = b.last_tensor;
  b.add("mid", ir::Dominance::Contracted);
  const auto c_op = b.add("c", ir::Dominance::Uncontracted);
  auto& ops = const_cast<std::vector<EinsumOp>&>(b.dag.ops());
  ops[c_op].inputs.push_back(ta);
  const auto e = b.dag.add_edge(a, c_op, ta);
  const auto cls = score::classify(b.dag);
  EXPECT_EQ(cls.edge_kind[e], DepKind::DelayedWriteback);
}

TEST(Classify, MulticastCountsDirectEdgesOnly) {
  // One producer feeding two parallel consumers directly.
  ChainBuilder b;
  const auto a = b.add("a", ir::Dominance::Uncontracted);
  const auto ta = b.last_tensor;
  // Two independent consumers of ta.
  for (int i = 0; i < 2; ++i) {
    const auto out = b.dag.add_tensor(skewed("out" + std::to_string(i), b.m, b.n));
    EinsumOp op;
    op.name = "cons" + std::to_string(i);
    op.inputs = {ta};
    op.output = out;
    op.ranks = {OpRank{"m", b.m, false, -1}, OpRank{"j", b.n, true, -1},
                OpRank{"n", b.n, false, -1}};
    const auto o = b.dag.add_op(op);
    b.dag.add_edge(a, o, ta);
  }
  const auto cls = score::classify(b.dag);
  EXPECT_EQ(cls.numcast[a], 2);
  EXPECT_TRUE(cls.parallel_multicast[a]);
}

// ---- scheduled classifier on the paper's workloads ---------------------------

TEST(ClassifyScheduled, CgFirstIterationMatchesFig7) {
  workloads::CgShape shape;
  shape.m = 100000;
  shape.n = 16;
  shape.nnz = 900000;
  shape.iterations = 2;
  const auto dag = workloads::build_cg_dag(shape);
  const auto cls = score::classify_scheduled(dag, dag.topo_order());

  auto kind_of = [&](const std::string& src, const std::string& dst) {
    for (const auto& e : dag.edges())
      if (dag.op(e.src).name == src && dag.op(e.dst).name == dst) return cls.edge_kind[e.id];
    ADD_FAILURE() << "no edge " << src << " -> " << dst;
    return DepKind::Sequential;
  };

  EXPECT_EQ(kind_of("1@1", "2a@1"), DepKind::Pipelineable);
  EXPECT_EQ(kind_of("1@1", "4@1"), DepKind::DelayedWriteback);  // S
  EXPECT_EQ(kind_of("4@1", "5@1"), DepKind::Pipelineable);      // R
  EXPECT_EQ(kind_of("4@1", "7@1"), DepKind::DelayedWriteback);  // R
  EXPECT_EQ(kind_of("2a@1", "2b@1"), DepKind::Sequential);      // contracted source
  EXPECT_EQ(kind_of("2b@1", "3@1"), DepKind::Sequential);       // inverse source
  EXPECT_EQ(kind_of("5@1", "6@1"), DepKind::Sequential);        // contracted source
  EXPECT_EQ(kind_of("7@1", "1@2"), DepKind::Pipelineable);      // P into next iter
  EXPECT_EQ(kind_of("7@1", "2a@2"), DepKind::DelayedHold);      // P held through op 1
  EXPECT_EQ(kind_of("7@1", "3@2"), DepKind::DelayedWriteback);  // P delayed
  EXPECT_EQ(kind_of("3@1", "3@2"), DepKind::DelayedWriteback);  // X self-dependency
  EXPECT_EQ(kind_of("4@1", "4@2"), DepKind::DelayedWriteback);  // R cross-iteration
}

TEST(ClassifyScheduled, ResNetSkipIsDelayedHold) {
  const auto dag = workloads::build_resnet_block_dag({});
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  bool found_skip = false;
  for (const auto& e : dag.edges()) {
    if (dag.op(e.src).name == "conv0" && dag.op(e.dst).name == "add") {
      EXPECT_EQ(cls.edge_kind[e.id], DepKind::DelayedHold);
      found_skip = true;
    } else {
      EXPECT_EQ(cls.edge_kind[e.id], DepKind::Pipelineable)
          << dag.op(e.src).name << " -> " << dag.op(e.dst).name;
    }
  }
  EXPECT_TRUE(found_skip);
}

TEST(ClassifyScheduled, GnnEdgeIsPipelineable) {
  const auto dag = workloads::build_gnn_dag({2708, 9464, 1433, 7});
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  ASSERT_EQ(dag.edges().size(), 1u);
  EXPECT_EQ(cls.edge_kind[0], DepKind::Pipelineable);
}

TEST(ClassifyScheduled, EveryEdgeGetsClassified) {
  workloads::CgShape shape;
  shape.m = 50000;
  shape.n = 8;
  shape.nnz = 400000;
  shape.iterations = 5;
  const auto dag = workloads::build_cg_dag(shape);
  const auto cls = score::classify_scheduled(dag, dag.topo_order());
  EXPECT_EQ(cls.edge_kind.size(), dag.edges().size());
  EXPECT_EQ(cls.numcast.size(), dag.ops().size());
}

TEST(ClassifyScheduled, DistantEdgesNeverPipelineable) {
  workloads::CgShape shape;
  shape.m = 50000;
  shape.n = 8;
  shape.nnz = 400000;
  shape.iterations = 4;
  const auto dag = workloads::build_cg_dag(shape);
  const auto order = dag.topo_order();
  const auto cls = score::classify_scheduled(dag, order);
  for (const auto& e : dag.edges()) {
    if (dag.schedule_distance(e, order) > 1) {
      EXPECT_NE(cls.edge_kind[e.id], DepKind::Pipelineable)
          << dag.op(e.src).name << " -> " << dag.op(e.dst).name;
    }
  }
}

TEST(ClassifyScheduled, RejectsNonTopologicalOrder) {
  const auto dag = workloads::build_gnn_dag({100, 500, 16, 4});
  std::vector<ir::OpId> reversed = dag.topo_order();
  std::reverse(reversed.begin(), reversed.end());
  EXPECT_THROW(score::classify_scheduled(dag, reversed), Error);
}

TEST(Classify, LiteralAndScheduledAgreeOnChains) {
  // On a pure chain the schedule follows the longest path, so both notions
  // of transitivity coincide.
  ChainBuilder b;
  b.add("a", ir::Dominance::Uncontracted);
  b.add("b", ir::Dominance::Uncontracted);
  b.add("c", ir::Dominance::Uncontracted);
  const auto c1 = score::classify(b.dag);
  const auto c2 = score::classify_scheduled(b.dag, b.dag.topo_order());
  EXPECT_EQ(c1.edge_kind, c2.edge_kind);
}

TEST(Classify, ToStringCoverage) {
  EXPECT_STREQ(score::to_string(DepKind::Sequential), "sequential");
  EXPECT_STREQ(score::to_string(DepKind::Pipelineable), "pipelineable");
  EXPECT_STREQ(score::to_string(DepKind::DelayedHold), "delayed_hold");
  EXPECT_STREQ(score::to_string(DepKind::DelayedWriteback), "delayed_writeback");
}

}  // namespace
