// Detail tests for engine internals, the facade, swizzle-demotion and the
// Matrix Market file path.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "cello/cello.hpp"
#include "score/schedule.hpp"
#include "sim/engine.hpp"
#include "sparse/matrix_market.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::ConfigKind;

TEST(EngineDetail, EnergyFieldsPopulated) {
  const auto dag = workloads::build_cg_dag({9604, 16, 85264, 3, 4});
  for (auto kind : all_configs()) {
    const auto m = sim::simulate(dag, kind, AcceleratorConfig{});
    EXPECT_GT(m.offchip_energy_pj, 0.0) << sim::to_string(kind);
    EXPECT_GT(m.onchip_energy_pj, 0.0) << sim::to_string(kind);
    EXPECT_GT(m.sram_line_accesses, 0u) << sim::to_string(kind);
    EXPECT_DOUBLE_EQ(m.total_energy_pj(), m.offchip_energy_pj + m.onchip_energy_pj);
  }
}

TEST(EngineDetail, CacheEnergyIncludesTagCost) {
  // Same traffic structure, but the cache pays tag lookups: per-SRAM-access
  // energy must exceed the explicit configurations'.
  const auto dag = workloads::build_cg_dag({9604, 16, 85264, 3, 4});
  const auto lru = sim::simulate(dag, ConfigKind::FlexLru, AcceleratorConfig{});
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, AcceleratorConfig{});
  const double lru_per_access = lru.onchip_energy_pj / static_cast<double>(lru.sram_line_accesses);
  const double flex_per_access =
      flex.onchip_energy_pj / static_cast<double>(flex.sram_line_accesses);
  EXPECT_GT(lru_per_access, flex_per_access);
}

TEST(EngineDetail, FacadeRunMatchesSimulate) {
  const auto dag = workloads::build_gnn_dag({500, 2500, 32, 8});
  const auto a = run(dag, ConfigKind::Cello, AcceleratorConfig{});
  const auto b = sim::simulate(dag, ConfigKind::Cello, AcceleratorConfig{});
  EXPECT_EQ(a.dram_bytes, b.dram_bytes);
  EXPECT_DOUBLE_EQ(a.seconds, b.seconds);
}

TEST(EngineDetail, MakeScheduleDisablesPipeliningForOpByOpConfigs) {
  const auto dag = workloads::build_gnn_dag({500, 2500, 32, 8});
  const auto flex = sim::make_schedule(dag, ConfigKind::Flexagon, AcceleratorConfig{});
  const auto cello_s = sim::make_schedule(dag, ConfigKind::Cello, AcceleratorConfig{});
  EXPECT_FALSE(flex.edge_realized[0]);
  EXPECT_TRUE(cello_s.edge_realized[0]);
}

TEST(EngineDetail, DeterministicAcrossRuns) {
  const auto dag = workloads::build_cg_dag({9604, 16, 85264, 5, 4});
  for (auto kind : {ConfigKind::Cello, ConfigKind::FlexBrrip}) {
    const auto a = sim::simulate(dag, kind, AcceleratorConfig{});
    const auto b = sim::simulate(dag, kind, AcceleratorConfig{});
    EXPECT_EQ(a.dram_bytes, b.dram_bytes) << sim::to_string(kind);
    EXPECT_DOUBLE_EQ(a.seconds, b.seconds) << sim::to_string(kind);
  }
}

TEST(SwizzleDemotion, LayoutConflictBreaksPipelining) {
  // Producer emits m-major; the consumer's outermost loop walks a rank the
  // tensor does not share as its major — the codependence conditions fail and
  // the pipelineable edge demotes to sequential.
  ir::TensorDag dag;
  ir::TensorDesc tin;
  tin.name = "In";
  tin.ranks = {"m", "n"};
  tin.dims = {100000, 16};
  const auto in_id = dag.add_tensor(tin);
  dag.mark_external(in_id);
  ir::TensorDesc t0 = tin;
  t0.name = "T0";
  const auto t0_id = dag.add_tensor(t0);
  ir::TensorDesc t1;
  t1.name = "T1";
  t1.ranks = {"z", "n"};
  t1.dims = {200000, 16};
  const auto t1_id = dag.add_tensor(t1);

  ir::EinsumOp p;
  p.name = "produce";
  p.inputs = {in_id};
  p.output = t0_id;
  p.ranks = {ir::OpRank{"m", 100000, false, -1}, ir::OpRank{"n", 16, false, -1}};
  const auto po = dag.add_op(p);

  // Consumer contracts over m but its dominant rank z is unshared with T0 —
  // Algorithm 2 rule 3 makes the edge sequential outright.
  ir::EinsumOp c;
  c.name = "consume";
  c.inputs = {t0_id};
  c.output = t1_id;
  c.ranks = {ir::OpRank{"z", 200000, false, -1}, ir::OpRank{"m", 100000, true, -1},
             ir::OpRank{"n", 16, false, -1}};
  const auto co = dag.add_op(c);
  dag.add_edge(po, co, t0_id);

  const auto sched = score::build_schedule(dag);
  EXPECT_FALSE(sched.edge_realized[0]);
  EXPECT_EQ(sched.deps.edge_kind[0], score::DepKind::Sequential);
  // And the simulator charges full traffic for T0.
  const auto flex = sim::simulate(dag, ConfigKind::Flexagon, AcceleratorConfig{});
  const auto cel = sim::simulate(dag, ConfigKind::Cello, AcceleratorConfig{});
  EXPECT_GT(cel.dram_bytes, 0u);
  EXPECT_LE(cel.dram_bytes, flex.dram_bytes);
}

TEST(MatrixMarketFile, RoundTripThroughDisk) {
  const auto m = sparse::CsrMatrix::from_triplets(
      4, 4, {{0, 1, 1.5}, {2, 3, -2.0}, {3, 0, 0.25}, {1, 1, 9.0}});
  const std::string path = "/tmp/cello_mm_test.mtx";
  sparse::write_matrix_market_file(m, path);
  const auto back = sparse::read_matrix_market_file(path);
  ASSERT_EQ(back.nnz(), m.nnz());
  for (i64 k = 0; k < m.nnz(); ++k) {
    EXPECT_EQ(back.col_idx()[k], m.col_idx()[k]);
    EXPECT_DOUBLE_EQ(back.values()[k], m.values()[k]);
  }
  std::remove(path.c_str());
}

TEST(MatrixMarketFile, MissingFileThrows) {
  EXPECT_THROW(sparse::read_matrix_market_file("/tmp/definitely_not_here.mtx"), Error);
}

}  // namespace
