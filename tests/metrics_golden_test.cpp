// Golden regression test: RunMetrics for all seven Table IV presets on CG,
// GNN and ResNet (plus CG over a real sparse matrix, which exercises the CSR
// gather path of the trace-driven caches) must stay bit-identical across
// refactors of the simulation hot path.
//
// Doubles are serialized as hexfloats, so comparison is exact.  To refresh
// after an *intended* behavioral change:
//
//   CELLO_UPDATE_GOLDENS=1 ./build/metrics_golden_test
//
// and commit the updated tests/goldens/table4_metrics.txt.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/registry.hpp"
#include "sim/simulator.hpp"
#include "sim/workload_registry.hpp"
#include "sparse/datasets.hpp"
#include "workloads/cg.hpp"
#include "workloads/gnn.hpp"
#include "workloads/resnet.hpp"

namespace {

using namespace cello;

const char* golden_path() { return CELLO_SOURCE_DIR "/tests/goldens/table4_metrics.txt"; }

std::string hex_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  return buf;
}

/// FNV-1a over the per-op (macs, dram_bytes) sequence: pins the whole per-op
/// breakdown without a line per op.
u64 per_op_hash(const sim::RunMetrics& m) {
  u64 h = 1469598103934665603ull;
  auto mix = [&h](u64 v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (const auto& op : m.per_op) {
    mix(static_cast<u64>(op.macs));
    mix(op.dram_bytes);
  }
  return h;
}

std::string format_record(const std::string& workload, const std::string& config,
                          const sim::RunMetrics& m) {
  std::ostringstream os;
  os << workload << '|' << config << " seconds=" << hex_double(m.seconds)
     << " macs=" << m.total_macs << " read=" << m.dram_read_bytes
     << " write=" << m.dram_write_bytes << " dram=" << m.dram_bytes
     << " offchip=" << hex_double(m.offchip_energy_pj)
     << " onchip=" << hex_double(m.onchip_energy_pj) << " sram=" << m.sram_line_accesses
     << " ops=" << m.per_op.size() << " ophash=" << std::hex << per_op_hash(m) << std::dec
     << " traffic=";
  bool first = true;
  for (const auto& [base, bytes] : m.traffic_by_tensor) {
    if (!first) os << ';';
    os << base << ':' << bytes;
    first = false;
  }
  return os.str();
}

std::vector<std::string> current_lines() {
  struct Workload {
    std::string name;
    ir::TensorDag dag;
    const sparse::CsrMatrix* matrix = nullptr;
  };
  static const sparse::CsrMatrix fv1 =
      sparse::instantiate(sparse::dataset_by_name("fv1"));

  std::vector<Workload> wls;
  wls.push_back({"cg", workloads::build_cg_dag({81920, 16, 327680, 5, 4}), nullptr});
  wls.push_back({"gnn", workloads::build_gnn_dag({2708, 9464, 1433, 7}), nullptr});
  wls.push_back({"resnet", workloads::build_resnet_block_dag({}), nullptr});
  wls.push_back(
      {"cg_fv1",
       workloads::build_cg_dag({sparse::dataset_by_name("fv1").rows, 16, fv1.nnz(), 3, 4}),
       &fv1});

  const sim::AcceleratorConfig arch;
  const auto& registry = sim::ConfigRegistry::global();
  std::vector<std::string> lines;
  for (const auto& wl : wls) {
    const sim::Simulator simulator(arch, wl.matrix);
    for (const auto& name : sim::ConfigRegistry::table4_names())
      lines.push_back(format_record(wl.name, name, simulator.run(wl.dag, registry.at(name))));
  }

  // LLM decode rows: the Table IV presets plus the KV-cache configuration
  // (registered after the combos, so not part of table4_names).  The second
  // spec is the documented budget-exceeding decode where Flex+KV beats LRU.
  std::vector<std::string> llm_configs = sim::ConfigRegistry::table4_names();
  llm_configs.push_back("Flex+KV");
  for (const char* spec : {"llm:layers=1,seq=256,decode_steps=4",
                           "llm:d_model=512,seq=2048,decode_steps=8,layers=2"}) {
    const sim::Workload wl = sim::WorkloadRegistry::global().resolve(spec);
    const sim::Simulator simulator(arch);
    for (const auto& name : llm_configs)
      lines.push_back(format_record(wl.name, name, simulator.run(*wl.dag, registry.at(name))));
  }
  return lines;
}

TEST(MetricsGolden, Table4PresetsBitIdentical) {
  const auto lines = current_lines();

  if (std::getenv("CELLO_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(golden_path());
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path();
    for (const auto& line : lines) out << line << '\n';
    GTEST_SKIP() << "goldens regenerated at " << golden_path();
  }

  std::ifstream in(golden_path());
  ASSERT_TRUE(in.good()) << "missing " << golden_path()
                         << " — run with CELLO_UPDATE_GOLDENS=1 to generate";
  std::vector<std::string> golden;
  for (std::string line; std::getline(in, line);)
    if (!line.empty()) golden.push_back(line);

  ASSERT_EQ(golden.size(), lines.size());
  for (size_t i = 0; i < lines.size(); ++i) EXPECT_EQ(lines[i], golden[i]) << "record " << i;
}

}  // namespace
