// Tests for the distributed-sweep subsystem: hexfloat-exact result I/O
// (sim/result_io), deterministic shard planning, self-describing shard files
// and the loud-failure merge (sim/shard), and SweepRunner::run_shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "cello/cello.hpp"
#include "common/error.hpp"

namespace {

using namespace cello;
using sim::AcceleratorConfig;
using sim::RunMetrics;
using sim::ShardMode;
using sim::ShardPlan;
using sim::ShardResult;
using sim::SweepGrid;
using sim::SweepResult;
using sim::SweepRunner;

u64 bits(double v) { return std::bit_cast<u64>(v); }

/// Bitwise equality on every field, including the nested breakdowns.
void expect_bit_equal(const RunMetrics& a, const RunMetrics& b, const std::string& ctx) {
  EXPECT_EQ(bits(a.seconds), bits(b.seconds)) << ctx;
  EXPECT_EQ(a.total_macs, b.total_macs) << ctx;
  EXPECT_EQ(a.dram_bytes, b.dram_bytes) << ctx;
  EXPECT_EQ(a.dram_read_bytes, b.dram_read_bytes) << ctx;
  EXPECT_EQ(a.dram_write_bytes, b.dram_write_bytes) << ctx;
  EXPECT_EQ(bits(a.offchip_energy_pj), bits(b.offchip_energy_pj)) << ctx;
  EXPECT_EQ(bits(a.onchip_energy_pj), bits(b.onchip_energy_pj)) << ctx;
  EXPECT_EQ(a.sram_line_accesses, b.sram_line_accesses) << ctx;
  EXPECT_EQ(a.traffic_by_tensor, b.traffic_by_tensor) << ctx;
  ASSERT_EQ(a.per_op.size(), b.per_op.size()) << ctx;
  for (size_t i = 0; i < a.per_op.size(); ++i) {
    EXPECT_EQ(a.per_op[i].op, b.per_op[i].op) << ctx;
    EXPECT_EQ(a.per_op[i].macs, b.per_op[i].macs) << ctx;
    EXPECT_EQ(a.per_op[i].dram_bytes, b.per_op[i].dram_bytes) << ctx;
  }
}

// ---- result I/O -------------------------------------------------------------

TEST(ResultIo, MetricsJsonRoundTripIsHexfloatExact) {
  // Doubles chosen to break decimal round-trips: non-terminating binary
  // fractions, a denormal, the largest finite double, and negative zero.
  const double awkward[] = {1.0 / 3.0,   0.1,  6.62607015e-34, 5e-324,
                            1.7976931348623157e308, -0.0, 12345.678901234567};
  for (const double v : awkward) {
    RunMetrics m;
    m.seconds = v;
    m.offchip_energy_pj = v * 3.0;
    m.onchip_energy_pj = -v;
    m.total_macs = 123456789012345;
    m.dram_bytes = 9007199254740993ull;  // 2^53 + 1: not representable as double
    m.dram_read_bytes = 7;
    m.dram_write_bytes = 2;
    m.sram_line_accesses = 42;
    m.traffic_by_tensor = {{"A", 1024}, {"x_0", 9007199254740993ull}};
    m.per_op.push_back({"spmm", 10, 4096});
    m.per_op.push_back({"dot", 0, 0});

    std::string text;
    sim::metrics_to_json(text, m, 0);
    const RunMetrics back = sim::metrics_from_json(sim::json_parse(text));
    expect_bit_equal(m, back, "seconds=" + sim::hex_double(v));
  }
}

TEST(ResultIo, SweepResultJsonAndCsvRoundTrip) {
  std::vector<SweepResult> rows(2);
  rows[0].workload = "cg:iters=2,m=2048,n=8";
  rows[0].config = "Flex+LRU";
  rows[0].metrics.seconds = 1.0 / 7.0;
  rows[0].metrics.total_macs = 99;
  rows[0].metrics.dram_bytes = 12345;
  rows[0].metrics.offchip_energy_pj = 0.3;
  rows[0].metrics.traffic_by_tensor = {{"A", 7}, {"p", 11}};
  rows[0].metrics.per_op.push_back({"spmv.0", 5, 9});
  rows[1].workload = "w,with \"commas\"";  // CSV quoting path
  rows[1].config = "SCORE+LRU";
  rows[1].metrics.onchip_energy_pj = 5e-324;

  std::string text;
  sim::result_to_json(text, rows[0], 0);
  const SweepResult back = sim::result_from_json(sim::json_parse(text));
  EXPECT_EQ(back.workload, rows[0].workload);
  EXPECT_EQ(back.config, rows[0].config);
  expect_bit_equal(rows[0].metrics, back.metrics, "json result");

  const std::string csv = sim::results_to_csv(rows);
  const std::vector<SweepResult> parsed = sim::results_from_csv(csv);
  ASSERT_EQ(parsed.size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(parsed[i].workload, rows[i].workload);
    EXPECT_EQ(parsed[i].config, rows[i].config);
    expect_bit_equal(rows[i].metrics, parsed[i].metrics, "csv row " + std::to_string(i));
  }
}

TEST(ResultIo, MalformedInputFailsLoudly) {
  EXPECT_THROW(sim::json_parse("{"), Error);
  EXPECT_THROW(sim::json_parse("{} trailing"), Error);
  EXPECT_THROW(sim::json_parse("{\"a\": 01x}"), Error);
  EXPECT_THROW(sim::parse_hex_double("0x1.8p+"), Error);
  EXPECT_THROW(sim::parse_hex_double("1.5 extra"), Error);
  // Missing and unknown metric keys both reject.
  EXPECT_THROW(sim::metrics_from_json(sim::json_parse("{\"seconds\": \"0x0p+0\"}")), Error);
  std::string full;
  sim::metrics_to_json(full, RunMetrics{}, 0);
  std::string extra = full;
  extra.insert(extra.find('}'), "");  // keep valid
  const std::string with_unknown =
      "{\"bogus\": 1, " + full.substr(full.find('{') + 1);
  EXPECT_THROW(sim::metrics_from_json(sim::json_parse(with_unknown)), Error);
  // CSV with a reserved character in a tensor name refuses to serialize.
  std::vector<SweepResult> rows(1);
  rows[0].metrics.traffic_by_tensor = {{"bad;name", 1}};
  EXPECT_THROW(sim::results_to_csv(rows), Error);
}

// ---- shard planning ---------------------------------------------------------

TEST(Shard, PlansCoverTheGridExactlyOnceForAnyK) {
  const SweepGrid grid = sim::make_grid(
      {"cg:m=512,n=4,iters=1", "cg:m=1024,n=4,iters=1", "cg:m=2048,n=4,iters=1"},
      {"Flexagon", "FLAT", "SET", "Cello"}, AcceleratorConfig{});
  ASSERT_EQ(grid.cells(), 12u);
  for (const u32 k : {1u, 2u, 3u, 7u}) {
    for (const ShardMode mode : {ShardMode::Contiguous, ShardMode::Strided}) {
      std::vector<size_t> all;
      for (u32 i = 1; i <= k; ++i) {
        const ShardPlan plan = sim::plan_shard(grid, i, k, mode);
        EXPECT_TRUE(std::is_sorted(plan.cells.begin(), plan.cells.end()));
        if (mode == ShardMode::Contiguous && !plan.cells.empty()) {
          EXPECT_EQ(plan.cells.back() - plan.cells.front() + 1, plan.cells.size());
        }
        if (mode == ShardMode::Strided) {
          for (size_t j = 0; j < plan.cells.size(); ++j)
            EXPECT_EQ(plan.cells[j], (i - 1) + j * k);
        }
        all.insert(all.end(), plan.cells.begin(), plan.cells.end());
      }
      std::sort(all.begin(), all.end());
      ASSERT_EQ(all.size(), grid.cells()) << "k=" << k << " mode=" << sim::to_string(mode);
      for (size_t j = 0; j < all.size(); ++j) EXPECT_EQ(all[j], j);
    }
  }
  EXPECT_THROW(sim::plan_shard(grid, 0, 3), Error);
  EXPECT_THROW(sim::plan_shard(grid, 4, 3), Error);
  EXPECT_THROW(sim::plan_shard(grid, 1, 0), Error);

  // A 1/1 plan is the full grid under either mode; it canonicalizes to
  // Contiguous so full and merged files stay byte-identical no matter which
  // --shard-mode the sweeps ran with.
  EXPECT_EQ(sim::plan_shard(grid, 1, 1, ShardMode::Strided).mode, ShardMode::Contiguous);
}

TEST(Shard, FingerprintTracksTheGridDefinition) {
  const AcceleratorConfig arch;
  const SweepGrid a = sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Flexagon", "Cello"}, arch);
  const SweepGrid same = sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Flexagon", "Cello"}, arch);
  EXPECT_EQ(a.fingerprint, same.fingerprint);

  const SweepGrid other_spec =
      sim::make_grid({"cg:m=512,n=4,iters=2"}, {"Flexagon", "Cello"}, arch);
  EXPECT_NE(a.fingerprint, other_spec.fingerprint);
  const SweepGrid other_configs =
      sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Cello", "Flexagon"}, arch);
  EXPECT_NE(a.fingerprint, other_configs.fingerprint);
  AcceleratorConfig other_arch;
  other_arch.sram_bytes *= 2;
  const SweepGrid grown =
      sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Flexagon", "Cello"}, other_arch);
  EXPECT_NE(a.fingerprint, grown.fingerprint);
  // Aliases canonicalize to the registered name, so they fingerprint equal.
  const SweepGrid alias = sim::make_grid({"cg:m=512,n=4,iters=1"},
                                         {"Flexagon", "SCORE+CHORD"}, arch);
  EXPECT_EQ(alias.configs[1], "Cello");
  EXPECT_EQ(a.fingerprint, alias.fingerprint);
}

// ---- merge ------------------------------------------------------------------

/// Shared fixture grid: two workloads (one with a real matrix, so the
/// trace-driven cache path is exercised) under four mixed-policy configs.
const SweepGrid& merge_grid() {
  static const SweepGrid grid = sim::make_grid(
      {"cg:m=9604,nnz=85264,n=16,iters=3", "spmv:dataset=fv1,iters=2,n=2"},
      {"Flexagon", "Flex+LRU", "Cello", "FLAT"}, AcceleratorConfig{});
  return grid;
}

ShardResult run_one_shard(const SweepGrid& grid, u32 index, u32 count, ShardMode mode) {
  ShardResult shard;
  shard.grid = grid;
  shard.plan = sim::plan_shard(grid, index, count, mode);
  shard.results = SweepRunner(/*threads=*/2).run_shard(grid, shard.plan);
  return shard;
}

TEST(Shard, MergedShuffledShardsAreBitIdenticalToSerialSweep) {
  const SweepGrid& grid = merge_grid();

  // Three strided shards, serialized to files and parsed back, arriving in
  // shuffled order.
  std::vector<ShardResult> shards;
  for (const u32 i : {2u, 3u, 1u})
    shards.push_back(sim::shard_from_json(
        sim::shard_to_json(run_one_shard(grid, i, 3, ShardMode::Strided))));
  const std::vector<SweepResult> merged = sim::merge_shards(shards);

  // Serial single-process reference over the same grid.
  const std::vector<SweepResult> serial =
      SweepRunner(/*threads=*/1).run(grid.workloads, grid.configs, grid.arch);
  ASSERT_EQ(merged.size(), serial.size());
  for (size_t i = 0; i < merged.size(); ++i) {
    EXPECT_EQ(merged[i].workload, serial[i].workload);
    EXPECT_EQ(merged[i].config, serial[i].config);
    expect_bit_equal(merged[i].metrics, serial[i].metrics,
                     merged[i].workload + "/" + merged[i].config);
  }

  // And the merged *file* is byte-identical to a full single-process shard
  // file of the same grid — the CI sharded-sweep matrix asserts exactly this.
  ShardResult full;
  full.grid = grid;
  full.plan = sim::plan_shard(grid, 1, 1, ShardMode::Contiguous);
  full.results = SweepRunner(/*threads=*/2).run_shard(grid, full.plan);
  ShardResult from_merge;
  from_merge.grid = grid;
  from_merge.plan = sim::plan_shard(grid, 1, 1, ShardMode::Contiguous);
  from_merge.results = merged;
  EXPECT_EQ(sim::shard_to_json(full), sim::shard_to_json(from_merge));
}

TEST(Shard, ContiguousShardsMergeToo) {
  const SweepGrid& grid = merge_grid();
  std::vector<ShardResult> shards;
  for (const u32 i : {3u, 1u, 2u})
    shards.push_back(run_one_shard(grid, i, 3, ShardMode::Contiguous));
  const std::vector<SweepResult> merged = sim::merge_shards(shards);
  const std::vector<SweepResult> full =
      SweepRunner(/*threads=*/2).run(grid.workloads, grid.configs, grid.arch);
  ASSERT_EQ(merged.size(), full.size());
  for (size_t i = 0; i < merged.size(); ++i)
    expect_bit_equal(merged[i].metrics, full[i].metrics,
                     merged[i].workload + "/" + merged[i].config);
}

TEST(Shard, MergeRejectsMissingDuplicateAndForeignShards) {
  const AcceleratorConfig arch;
  const SweepGrid grid =
      sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Flexagon", "FLAT"}, arch);
  const ShardResult s1 = run_one_shard(grid, 1, 3, ShardMode::Contiguous);
  const ShardResult s2 = run_one_shard(grid, 2, 3, ShardMode::Contiguous);
  const ShardResult s3 = run_one_shard(grid, 3, 3, ShardMode::Contiguous);

  // The happy path first: any arrival order reassembles.
  EXPECT_EQ(sim::merge_shards({s3, s1, s2}).size(), grid.cells());

  EXPECT_THROW(sim::merge_shards({s1, s2}), Error);          // missing shard 3
  EXPECT_THROW(sim::merge_shards({s1, s1, s2}), Error);      // duplicate shard 1
  EXPECT_THROW(sim::merge_shards({}), Error);                // nothing at all

  // Foreign grid: same shape, different workload definition.
  const SweepGrid foreign =
      sim::make_grid({"cg:m=512,n=4,iters=2"}, {"Flexagon", "FLAT"}, arch);
  EXPECT_NE(foreign.fingerprint, grid.fingerprint);
  const ShardResult f1 = run_one_shard(foreign, 1, 3, ShardMode::Contiguous);
  EXPECT_THROW(sim::merge_shards({f1, s2, s3}), Error);

  // Mode and count disagreements.
  const ShardResult strided1 = run_one_shard(grid, 1, 3, ShardMode::Strided);
  EXPECT_THROW(sim::merge_shards({strided1, s2, s3}), Error);
  const ShardResult half1 = run_one_shard(grid, 1, 2, ShardMode::Contiguous);
  const ShardResult half2 = run_one_shard(grid, 2, 2, ShardMode::Contiguous);
  EXPECT_THROW(sim::merge_shards({half1, s2}), Error);
  EXPECT_EQ(sim::merge_shards({half2, half1}).size(), grid.cells());
}

TEST(Shard, ShardFilesAreSelfDescribingAndTamperEvident) {
  const AcceleratorConfig arch;
  const SweepGrid grid =
      sim::make_grid({"cg:m=512,n=4,iters=1"}, {"Flexagon", "FLAT"}, arch);
  ShardResult shard = run_one_shard(grid, 1, 3, ShardMode::Contiguous);
  const std::string text = sim::shard_to_json(shard);

  // Round-trip preserves everything, including the derived cell list.
  const ShardResult back = sim::shard_from_json(text);
  EXPECT_EQ(back.grid.fingerprint, grid.fingerprint);
  EXPECT_EQ(back.grid.workloads, grid.workloads);
  EXPECT_EQ(back.grid.configs, grid.configs);
  EXPECT_EQ(back.plan.cells, shard.plan.cells);
  ASSERT_EQ(back.results.size(), shard.results.size());
  for (size_t i = 0; i < back.results.size(); ++i)
    expect_bit_equal(back.results[i].metrics, shard.results[i].metrics, "round trip");

  // An unknown format tag refuses to load.
  std::string wrong_format = text;
  wrong_format.replace(wrong_format.find("cello-sweep/1"), 13, "cello-sweep/9");
  EXPECT_THROW(sim::shard_from_json(wrong_format), Error);

  // A shard index outside 1..count refuses to load.
  std::string wrong_index = text;
  wrong_index.replace(wrong_index.find("\"index\": 1"), 10, "\"index\": 4");
  EXPECT_THROW(sim::shard_from_json(wrong_index), Error);

  // Result count disagreeing with the plan refuses to load.
  ShardResult truncated = shard;
  truncated.results.pop_back();
  EXPECT_THROW(sim::shard_from_json(sim::shard_to_json(truncated)), Error);

  // A result row naming the wrong cell refuses to load.
  ShardResult renamed = shard;
  renamed.results[0].config = "FLAT";  // cell 0 is Flexagon
  EXPECT_THROW(sim::shard_from_json(sim::shard_to_json(renamed)), Error);
}

TEST(Shard, RunShardPrebuildsOnlyWhatItTouches) {
  // A one-cell shard of a grid whose other row uses a different schedule
  // policy must still be bit-identical to the same cell of the full run —
  // i.e. the filtered prebuild changes nothing observable.
  const SweepGrid grid = sim::make_grid({"cg:m=2048,n=8,iters=2"},
                                        {"Flexagon", "Cello"}, AcceleratorConfig{});
  for (u32 i = 1; i <= 2; ++i) {
    const ShardPlan plan = sim::plan_shard(grid, i, 2, ShardMode::Contiguous);
    ASSERT_EQ(plan.cells.size(), 1u);
    const auto cells = SweepRunner(/*threads=*/1).run_shard(grid, plan);
    const auto full = SweepRunner(/*threads=*/1).run(grid.workloads, grid.configs, grid.arch);
    ASSERT_EQ(cells.size(), 1u);
    expect_bit_equal(cells[0].metrics, full[plan.cells[0]].metrics,
                     "shard " + std::to_string(i) + "/2");
  }
}

}  // namespace
